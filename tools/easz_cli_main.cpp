// easz — command-line codec front end.
//
//   easz compress   <in.ppm> <out.easz> [--codec jpeg|bpg] [--quality Q]
//                   [--erase T] [--patch N] [--sub B] [--vertical]
//   easz decompress <in.easz> <out.ppm>  [--model ckpt] [--neighbor-fill]
//   easz info       <in.easz>
//
// The compressed file is the self-describing container from
// core/container.hpp; decompression reconstructs with the transformer when a
// model checkpoint is available (assets/recon_p16_b2_d64.ckpt by default for
// the canonical configuration) and falls back to neighbour fill otherwise.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "codec/codec.hpp"
#include "core/container.hpp"
#include "core/deblock.hpp"
#include "image/io_ppm.hpp"
#include "nn/serialize.hpp"
#include "util/flags.hpp"

namespace {

using namespace easz;
using util::flag_value;
using util::has_flag;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  easz compress   <in.ppm> <out.easz> [--codec jpeg|bpg] "
               "[--quality Q] [--erase T] [--patch N] [--sub B] [--vertical]\n"
               "  easz decompress <in.easz> <out.ppm> [--model ckpt] "
               "[--neighbor-fill]\n"
               "  easz info       <in.easz>\n");
  return 2;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string in_path = argv[0];
  const std::string out_path = argv[1];
  const std::string codec_name = flag_value(argc, argv, "--codec", "jpeg");
  const int quality = std::atoi(flag_value(argc, argv, "--quality", "70"));
  const int erase = std::atoi(flag_value(argc, argv, "--erase", "2"));
  const int patch = std::atoi(flag_value(argc, argv, "--patch", "16"));
  const int sub = std::atoi(flag_value(argc, argv, "--sub", "2"));

  const image::Image img = image::read_pnm(in_path);
  auto codec = codec::make_classical_codec(codec_name, quality);
  core::EaszConfig cfg;
  cfg.patchify = {.patch = patch, .sub_patch = sub};
  cfg.erased_per_row = erase;
  cfg.axis = has_flag(argc, argv, "--vertical") ? core::SqueezeAxis::kVertical
                                                : core::SqueezeAxis::kHorizontal;
  core::EaszPipeline pipeline(cfg, *codec, nullptr);
  const core::EaszCompressed c = pipeline.encode(img);
  core::write_container(c, cfg.patchify, codec_name, out_path);
  std::printf("%s: %dx%d -> %zu bytes (%.3f bpp, mask %zu B, codec %s q%d, "
              "erase %d/%d)\n",
              out_path.c_str(), img.width(), img.height(), c.size_bytes(),
              c.bpp(), c.mask_bytes.size(), codec_name.c_str(), quality, erase,
              cfg.patchify.grid());
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string in_path = argv[0];
  const std::string out_path = argv[1];
  const core::ParsedContainer parsed = core::read_container(in_path);
  auto codec = codec::make_classical_codec(parsed.codec_name, 70);

  core::EaszConfig cfg;
  cfg.patchify = parsed.patchify;
  cfg.erased_per_row = parsed.compressed.erased_per_row;
  cfg.axis = parsed.compressed.axis;

  const bool canonical = parsed.patchify.patch == 16 &&
                         parsed.patchify.sub_patch == 2;
  std::unique_ptr<core::ReconstructionModel> model;
  if (!has_flag(argc, argv, "--neighbor-fill")) {
    core::ReconModelConfig mc;
    mc.patchify = parsed.patchify;
    mc.d_model = 64;
    mc.num_heads = 4;
    mc.ffn_hidden = 128;
    util::Pcg32 rng(11);
    model = std::make_unique<core::ReconstructionModel>(mc, rng);
    const char* explicit_path = flag_value(argc, argv, "--model", nullptr);
    bool loaded = false;
    if (explicit_path != nullptr) {
      auto params = model->parameters();
      nn::load_parameters(params, explicit_path);  // throws on failure
      loaded = true;
    } else if (canonical) {
      for (const char* path : {"assets/recon_p16_b2_d64.ckpt",
                               "../assets/recon_p16_b2_d64.ckpt"}) {
        try {
          auto params = model->parameters();
          nn::load_parameters(params, path);
          loaded = true;
          break;
        } catch (const std::exception&) {
        }
      }
    }
    if (!loaded) {
      std::fprintf(stderr,
                   "warning: no model checkpoint found; using neighbour "
                   "fill\n");
      model.reset();
    }
  }

  core::EaszPipeline pipeline(cfg, *codec, model.get());
  const image::Image out = model != nullptr
                               ? pipeline.decode(parsed.compressed)
                               : pipeline.decode_neighbor_fill(parsed.compressed);
  image::write_pnm(out, out_path);
  std::printf("%s: %dx%d reconstructed (%s)\n", out_path.c_str(), out.width(),
              out.height(), model != nullptr ? "transformer" : "neighbour fill");
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) return usage();
  const core::ParsedContainer parsed = core::read_container(argv[0]);
  const auto& c = parsed.compressed;
  std::printf("easz container: %dx%d (padded %dx%d)\n", c.full_width,
              c.full_height, c.padded_width, c.padded_height);
  std::printf("  codec: %s, payload %zu bytes, mask %zu bytes, %.3f bpp\n",
              parsed.codec_name.c_str(), c.payload.bytes.size(),
              c.mask_bytes.size(), c.bpp());
  std::printf("  patchify: n=%d b=%d (grid %d), erase %d/row (%.1f %%), %s\n",
              parsed.patchify.patch, parsed.patchify.sub_patch,
              parsed.patchify.grid(), c.erased_per_row,
              100.0 * c.erased_per_row / parsed.patchify.grid(),
              c.axis == core::SqueezeAxis::kVertical ? "vertical"
                                                     : "horizontal");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "compress") return cmd_compress(argc - 2, argv + 2);
  if (cmd == "decompress") return cmd_decompress(argc - 2, argv + 2);
  if (cmd == "info") return cmd_info(argc - 2, argv + 2);
  return usage();
}
