// Offline pretraining (paper §IV-A): trains the reconstruction model on
// synthetic CIFAR-like content with random masks and saves a checkpoint
// under assets/. Benches and examples load the checkpoint when present and
// fall back to quick training otherwise.
//
// Usage: easz_pretrain [steps] [out_dir]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/recon_model.hpp"
#include "core/trainer.hpp"
#include "data/synth.hpp"
#include "nn/serialize.hpp"

int main(int argc, char** argv) {
  using namespace easz;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 2500;
  const std::string out_dir = argc > 2 ? argv[2] : "assets";

  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 2};
  cfg.channels = 3;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.ffn_hidden = 128;

  util::Pcg32 rng(11);
  core::ReconstructionModel model(cfg, rng);
  std::printf("model: %zu parameters (%.2f MB)\n", model.num_parameters(),
              model.model_bytes() / 1048576.0);

  core::TrainerConfig tcfg;
  tcfg.batch_patches = 8;
  tcfg.use_perceptual = false;
  tcfg.lr = 2e-3F;
  tcfg.min_erase_ratio = 0.1F;
  tcfg.max_erase_ratio = 0.45F;
  core::Trainer trainer(model, tcfg, rng);

  std::vector<image::Image> corpus;
  util::Pcg32 data_rng(11 ^ 0xDA7A);
  for (int i = 0; i < 64; ++i) {
    if (i % 4 == 3) {
      corpus.push_back(data::synth_texture(32, 32, data_rng));
    } else if (i % 4 == 2) {
      corpus.push_back(data::synth_cartoon(32, 32, data_rng));
    } else {
      corpus.push_back(data::synth_photo(32, 32, data_rng));
    }
  }

  // Step-decay schedule: /4 at 60 %, /4 again at 85 %.
  const int phase1 = steps * 3 / 5;
  const int phase2 = steps * 17 / 20 - phase1;
  const int phase3 = steps - phase1 - phase2;
  float loss = 0.0F;
  core::TrainStats s1 = trainer.train(corpus, phase1);
  loss = s1.final_loss();
  std::printf("phase1 done (%d steps): loss %.5f\n", phase1, loss);
  trainer.optimizer().config().lr = 5e-4F;
  core::TrainStats s2 = trainer.train(corpus, phase2);
  std::printf("phase2 done (%d steps): loss %.5f\n", phase2, s2.final_loss());
  trainer.optimizer().config().lr = 1.2e-4F;
  core::TrainStats s3 = trainer.train(corpus, phase3);
  std::printf("phase3 done (%d steps): loss %.5f\n", phase3, s3.final_loss());

  const std::string path = out_dir + "/recon_p16_b2_d64.ckpt";
  auto params = model.parameters();
  nn::save_parameters(params, path);
  std::printf("saved %s\n", path.c_str());
  return 0;
}
