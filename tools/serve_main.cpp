// easz_serve — reconstruction-server traffic driver.
//
// Spins up the concurrent batched ReconServer and replays one of the
// testbed's modeled edge workloads against it:
//
//   easz_serve [--scenario wildlife|industrial|mixed|all] [--workers N]
//              [--clients N] [--frames N] [--batch P] [--queue N]
//              [--cache-mb MB] [--cache-shards N] [--reject]
//              [--time-scale S] [--json out.json] [--kernel-threads N]
//              [--tenants name:weight[:rate[:burst[:inflight[:precision]]]],...]
//              [--async] [--precision fp32|int8|auto]
//              [--trace-out trace.json] [--stats-every S] [--stats-out f.jsonl]
//              [--pipeline-depth N] [--pin-workers] [--shape-llc] [--llc BYTES]
//              [--slo-p95-ms MS] [--save-checkpoint f.ckpt] [--reload f.ckpt]
//              [--inject-fault-every N]
//              [--listen PORT [--host ADDR] [--max-conns N]]
//              [--connect HOST:PORT [--verify N]]
//
// Networked tier (DESIGN.md §11): --listen turns the replay driver into a
// long-running TCP replica — the wire-protocol front-end (ServeTransport)
// rides the same canonical model and ServerConfig the replay modes use, so
// a replica and an in-process run are byte-identical deployments. The
// process serves until SIGTERM/SIGINT, then stops the transport, drains,
// and writes a final stats JSON ({"port":…,"stats":…}) to --json or stdout
// — the CI networked smoke asserts per-replica cache hits from exactly that
// file. --connect is the other half: it builds the SAME traces the replay
// modes use (the model is deterministic, so client and replica agree on
// every weight), drives them over sockets with one connection per modeled
// client, and with --verify N cross-checks the first N ok-responses
// byte-for-byte against a local single-worker decode of the same request —
// the loopback-equals-in-process guarantee, asserted end to end.
//
// All numeric flags reject garbage: `--workers junk` is a fatal usage error
// (util/parse.hpp), NOT a silent std::atoi zero — which used to mean
// "manual stepping mode" and a server that never made progress.
//
// Overload resilience (DESIGN.md §10): --slo-p95-ms arms the per-tenant
// degradation ladder — when a tenant's observed p95 (or oldest queued
// wait) breaches the target, its requests step down through int8 →
// no-deblock → coarse-fill → shed until pressure clears. --save-checkpoint
// writes the serving model (ESZ1 params + EAZQ sidecar when quantized)
// after startup calibration; --reload watches that path and hot-swaps the
// checkpoint into the running server (no drain: in-flight batches finish
// on their pinned version). A reload triggers on SIGHUP or when the poll
// (every --stats-every seconds, else 250ms) first observes the file or a
// newer mtime. Point --save-checkpoint and --reload at the same path for a
// self-contained swap exercise — the CI reload smoke does exactly that.
// --inject-fault-every N makes every Nth decode action throw, driving the
// hardened failure path under replay traffic; the CI fault smoke asserts
// requests.failed > 0 with a clean drain and exit.
//
// Staged-pipeline knobs (DESIGN.md §9): --pipeline-depth bounds how many
// reconstructed requests may park in the forward→assemble ring per worker
// (1 = near-lockstep stages, 2-3 overlap forward N with assemble N-1);
// --pin-workers pins serve workers and kernel-pool lanes round-robin
// across the process's allowed CPUs (graceful no-op where unsupported);
// --shape-llc caps batches so the forward's working set stays LLC-resident,
// against --llc BYTES (0 = detect). None of these change output bytes.
//
// Observability (DESIGN.md §8): --trace-out exports the request-span ring of
// the LAST replayed scenario as Chrome trace-event JSON (open in
// chrome://tracing or Perfetto). --stats-every S emits one JSON-lines rate
// report (req/s, shed/s, cache-hit ratio, queue depth) per S seconds of
// replay from the server's metric registry, to --stats-out (default stdout);
// a final line always flushes at scenario end, so even replays shorter than
// one interval produce output.
//
// --precision selects the reconstruct stage's numeric path (DESIGN.md §7).
// int8/auto quantize the model at startup: a loadgen-style synthetic
// sample is pushed through the fp32 path with activation observers on,
// then every Linear freezes per-output-channel int8 weights. A tenant's
// trailing :fp32/:int8 field pins that tenant regardless of the default.
//
// --kernel-threads sizes the tensor::kern pool the transformer forward
// (reconstruct stage) runs on; 0 keeps the pool at hardware concurrency.
//
// --tenants registers per-fleet policy, e.g.
//   easz_serve --tenants wildlife:3,industrial:1
// gives the wildlife fleet 3x the industrial fleet's worker share (WDRR
// weights); optional suffixes add a token-bucket rate (req/s), burst and
// max-inflight quota: wildlife:3:50:100:32. Traces tag each request with
// the fleet that produced it, so policy applies end to end.
//
// --async drives the server open-loop through submit_async callbacks
// instead of one blocking future per request.
//
// --time-scale replays arrivals on the modeled clock (1 = real time,
// 0 = as fast as possible, the default). --reject switches backpressure
// from blocking to load shedding. The JSON report contains one entry per
// scenario with client-side latency (overall and per tenant) and the
// server's stage + tenant stats.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "codec/bpg_like.hpp"
#include "codec/jpeg_like.hpp"
#include "data/synth.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"
#include "testbed/loadgen.hpp"
#include "util/flags.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

namespace {

using namespace easz;
using util::flag_value;
using util::has_flag;

// Parses "name:weight[:rate[:burst[:inflight[:precision]]]],..." into tenant
// configs. Every numeric field is strict (util/parse.hpp): a typo like
// "wildlife:3x" or "wildlife:3:fast" is a fatal usage error, not a tenant
// silently registered with weight 0 / no rate limit.
std::vector<serve::TenantConfig> parse_tenants(const std::string& spec) {
  std::vector<serve::TenantConfig> out;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    serve::TenantConfig t;
    std::vector<std::string> fields;
    std::size_t fstart = 0;
    while (fstart <= entry.size()) {
      std::size_t fend = entry.find(':', fstart);
      if (fend == std::string::npos) fend = entry.size();
      fields.push_back(entry.substr(fstart, fend - fstart));
      fstart = fend + 1;
    }
    if (fields.size() > 6) {
      throw std::invalid_argument(
          "--tenants entry \"" + entry +
          "\": too many fields (name:weight[:rate[:burst[:inflight"
          "[:precision]]]])");
    }
    t.name = fields[0];
    if (t.name.empty()) {
      throw std::invalid_argument("--tenants entry \"" + entry +
                                  "\": empty tenant name");
    }
    const std::string where = "--tenants " + t.name;
    if (fields.size() > 1) {
      t.weight = util::parse_int32(fields[1], where + " weight", 1, 1 << 20);
    }
    if (fields.size() > 2) {
      t.rate_per_s = util::parse_double(fields[2], where + " rate", 0.0, 1e9);
    }
    if (fields.size() > 3) {
      t.burst = util::parse_double(fields[3], where + " burst", 0.0, 1e9);
    }
    if (fields.size() > 4) {
      t.max_inflight =
          util::parse_int32(fields[4], where + " inflight", 0, 1 << 20);
    }
    if (fields.size() > 5 && !fields[5].empty()) {
      if (fields[5] == "fp32") {
        t.precision = serve::TenantPrecision::kFp32;
      } else if (fields[5] == "int8") {
        t.precision = serve::TenantPrecision::kInt8;
      } else {
        throw std::invalid_argument("tenant precision must be fp32 or int8: " +
                                    fields[5]);
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

// Periodic JSON-lines stats emitter: samples a server's metric registry
// every `interval_s` on a background thread and writes one
// Registry::delta_json line per interval (rates + totals + gauges). stop()
// always emits a final line covering the tail interval, so short replays
// still produce non-empty output — the CI smoke test depends on that.
class StatsReporter {
 public:
  StatsReporter(serve::ReconServer& server, double interval_s, std::FILE* out)
      : server_(server), out_(out) {
    prev_ = server_.obs().snapshot();
    thread_ = std::thread([this, interval_s] {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_cv_.wait_for(
          lock, std::chrono::duration<double>(interval_s),
          [this] { return stopping_; })) {
        emit_line();
      }
    });
  }

  ~StatsReporter() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> lock(mu_);
    emit_line();  // tail interval: guarantees at least one line per scenario
    std::fflush(out_);
  }

 private:
  void emit_line() {  // callers hold mu_
    const obs::Registry::Snapshot cur = server_.obs().snapshot();
    std::fprintf(out_, "%s\n",
                 obs::Registry::delta_json(prev_, cur).c_str());
    prev_ = cur;
  }

  serve::ReconServer& server_;
  std::FILE* out_;
  obs::Registry::Snapshot prev_;
  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

// SIGHUP sets this; the ReloadWatcher's next poll consumes it. sig_atomic_t
// because a signal handler may not touch anything heavier.
volatile std::sig_atomic_t g_reload_signal = 0;

void handle_sighup(int) { g_reload_signal = 1; }

// SIGTERM/SIGINT in --listen mode: the serve loop polls this and shuts the
// replica down cleanly (stop transport -> drain -> final stats JSON).
volatile std::sig_atomic_t g_shutdown_signal = 0;

void handle_shutdown(int) { g_shutdown_signal = 1; }

// Hot-reload watcher: polls a checkpoint path on a background thread and
// deploys it into the running server via ReconServer::deploy_model (atomic
// slot swap — in-flight batches finish on their pinned version, no drain).
// Triggers on SIGHUP, on first observing the file, and on any later mtime
// change. A failed load/validate logs and keeps serving the old version:
// a bad checkpoint on disk must never take the server down.
class ReloadWatcher {
 public:
  ReloadWatcher(serve::ReconServer& server, std::string path,
                core::ReconModelConfig mcfg, double poll_s)
      : server_(server), path_(std::move(path)), mcfg_(mcfg) {
    thread_ = std::thread([this, poll_s] {
      std::unique_lock<std::mutex> lock(mu_);
      // Check-then-wait: a checkpoint already on disk deploys on the first
      // pass instead of one poll interval late.
      while (true) {
        poll_once();
        if (stop_cv_.wait_for(lock, std::chrono::duration<double>(poll_s),
                              [this] { return stopping_; })) {
          return;
        }
      }
    });
  }

  ~ReloadWatcher() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
  }

  [[nodiscard]] std::uint64_t deploys() const { return deploys_.load(); }

 private:
  void poll_once() {
    const bool signalled = g_reload_signal != 0;
    if (signalled) g_reload_signal = 0;
    std::error_code ec;
    if (!std::filesystem::exists(path_, ec) || ec) return;
    const auto mtime = std::filesystem::last_write_time(path_, ec);
    if (ec) return;
    const bool changed = !seen_ || mtime != last_mtime_;
    if (!signalled && !changed) return;
    seen_ = true;
    last_mtime_ = mtime;
    try {
      deploy();
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "reload: %s rejected: %s (still serving model v%llu)\n",
                   path_.c_str(), e.what(),
                   static_cast<unsigned long long>(server_.model_version()));
    }
  }

  void deploy() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) throw std::runtime_error("cannot read " + path_);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(size > 0 ? static_cast<std::size_t>(size)
                                             : 0);
    const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size()) throw std::runtime_error("short read " + path_);

    // Fresh model of the serving architecture; every weight comes from the
    // file (the rng init is fully overwritten by the parameter load).
    util::Pcg32 rng(1);
    auto model = std::make_shared<core::ReconstructionModel>(mcfg_, rng);
    auto params = model->parameters();
    const auto sidecar = nn::deserialize_checkpoint_with_quant(params, bytes);
    if (sidecar.has_value()) model->apply_quant_sidecar(*sidecar);
    const std::uint64_t version = server_.deploy_model(std::move(model));
    deploys_.fetch_add(1);
    std::printf("reload: %s deployed as model v%llu (%s)\n", path_.c_str(),
                static_cast<unsigned long long>(version),
                sidecar.has_value() ? "ESZ1+EAZQ" : "ESZ1, fp32 only");
  }

  serve::ReconServer& server_;
  const std::string path_;
  const core::ReconModelConfig mcfg_;
  std::atomic<std::uint64_t> deploys_{0};
  bool seen_ = false;
  std::filesystem::file_time_type last_mtime_;
  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) try {
  // Every numeric flag goes through util::parse_* — garbage, trailing
  // characters and out-of-range values are usage errors (caught below,
  // printed, exit 2), never silent zeros.
  const std::string scenario = flag_value(argc, argv, "--scenario", "all");
  const int workers = util::parse_int32(
      flag_value(argc, argv, "--workers", "4"), "--workers", 0, 1024);
  const int clients = util::parse_int32(
      flag_value(argc, argv, "--clients", "6"), "--clients", 1, 1 << 20);
  const int frames = util::parse_int32(
      flag_value(argc, argv, "--frames", "8"), "--frames", 1, 1 << 20);
  const int batch = util::parse_int32(flag_value(argc, argv, "--batch", "32"),
                                      "--batch", 1, 1 << 20);
  const int queue = util::parse_int32(flag_value(argc, argv, "--queue", "64"),
                                      "--queue", 1, 1 << 24);
  const double cache_mb = util::parse_double(
      flag_value(argc, argv, "--cache-mb", "64"), "--cache-mb", 0.0, 1e6);
  const double time_scale =
      util::parse_double(flag_value(argc, argv, "--time-scale", "0"),
                         "--time-scale", 0.0, 1e6);
  const int kernel_threads =
      util::parse_int32(flag_value(argc, argv, "--kernel-threads", "0"),
                        "--kernel-threads", 0, 1024);
  const int cache_shards =
      util::parse_int32(flag_value(argc, argv, "--cache-shards", "8"),
                        "--cache-shards", 1, 1 << 16);
  const std::string tenants_spec = flag_value(argc, argv, "--tenants", "");
  const bool async = has_flag(argc, argv, "--async");
  const char* json_path = flag_value(argc, argv, "--json", nullptr);
  const char* trace_out = flag_value(argc, argv, "--trace-out", nullptr);
  const double stats_every =
      util::parse_double(flag_value(argc, argv, "--stats-every", "0"),
                         "--stats-every", 0.0, 1e6);
  const char* stats_out_path = flag_value(argc, argv, "--stats-out", nullptr);
  const int pipeline_depth =
      util::parse_int32(flag_value(argc, argv, "--pipeline-depth", "2"),
                        "--pipeline-depth", 1, 64);
  const bool pin_workers = has_flag(argc, argv, "--pin-workers");
  const bool shape_llc = has_flag(argc, argv, "--shape-llc");
  const std::size_t llc_bytes = static_cast<std::size_t>(
      util::parse_int(flag_value(argc, argv, "--llc", "0"), "--llc", 0,
                      1LL << 40));
  const double slo_p95_ms =
      util::parse_double(flag_value(argc, argv, "--slo-p95-ms", "0"),
                         "--slo-p95-ms", 0.0, 1e9);
  const int inject_fault_every = util::parse_int32(
      flag_value(argc, argv, "--inject-fault-every", "0"),
      "--inject-fault-every", 0, 1 << 30);
  const char* save_ckpt =
      flag_value(argc, argv, "--save-checkpoint", nullptr);
  const char* reload_path = flag_value(argc, argv, "--reload", nullptr);
  // Networked tier: --listen makes this process a TCP replica; --connect
  // drives traces at one over sockets. Mutually exclusive with each other.
  const char* listen_flag = flag_value(argc, argv, "--listen", nullptr);
  const int listen_port =
      listen_flag == nullptr
          ? -1
          : util::parse_int32(listen_flag, "--listen", 0, 65535);
  const std::string listen_host =
      flag_value(argc, argv, "--host", "127.0.0.1");
  const int max_conns =
      util::parse_int32(flag_value(argc, argv, "--max-conns", "256"),
                        "--max-conns", 1, 1 << 20);
  const char* connect_flag = flag_value(argc, argv, "--connect", nullptr);
  const int verify_n = util::parse_int32(
      flag_value(argc, argv, "--verify", "8"), "--verify", 0, 1 << 20);
  if (listen_flag != nullptr && connect_flag != nullptr) {
    std::fprintf(stderr, "--listen and --connect are mutually exclusive\n");
    return 2;
  }
  const std::string precision_flag =
      flag_value(argc, argv, "--precision", "fp32");
  serve::PrecisionPolicy precision = serve::PrecisionPolicy::kFp32;
  if (precision_flag == "int8") {
    precision = serve::PrecisionPolicy::kInt8;
  } else if (precision_flag == "auto") {
    precision = serve::PrecisionPolicy::kAuto;
  } else if (precision_flag != "fp32") {
    std::fprintf(stderr, "unknown --precision '%s' (fp32|int8|auto)\n",
                 precision_flag.c_str());
    return 2;
  }

  std::printf("easz_serve: %d workers, batch %d, queue %d/tenant, "
              "cache %.0f MB x%d shards, %s backpressure, %s submit, "
              "kernel threads %s, precision %s, pipeline depth %d%s%s\n",
              workers, batch, queue, cache_mb, cache_shards,
              has_flag(argc, argv, "--reject") ? "reject" : "block",
              async ? "async" : "blocking",
              kernel_threads > 0 ? std::to_string(kernel_threads).c_str()
                                 : "auto",
              precision_flag.c_str(), pipeline_depth,
              pin_workers ? ", pinned workers" : "",
              shape_llc ? ", llc-shaped batches" : "");
  if (slo_p95_ms > 0.0) {
    std::printf("degradation ladder armed: p95 SLO %.1f ms\n", slo_p95_ms);
  }
  const std::vector<serve::TenantConfig> tenants =
      parse_tenants(tenants_spec);
  for (const serve::TenantConfig& t : tenants) {
    std::printf("tenant %-12s weight %d, rate %s/s, burst %s, inflight %s\n",
                t.name.c_str(), t.weight,
                t.rate_per_s > 0 ? std::to_string(t.rate_per_s).c_str()
                                 : "unlimited",
                t.burst > 0 ? std::to_string(t.burst).c_str() : "auto",
                t.max_inflight > 0 ? std::to_string(t.max_inflight).c_str()
                                   : "unlimited");
  }

  // Canonical serving model (matches the examples' p16/b2/d64 deployment).
  core::ReconModelConfig mcfg;
  mcfg.patchify = {.patch = 16, .sub_patch = 2};
  mcfg.channels = 3;
  mcfg.d_model = 64;
  mcfg.num_heads = 4;
  mcfg.ffn_hidden = 128;
  util::Pcg32 rng(11);
  core::ReconstructionModel model(mcfg, rng);

  codec::JpegLikeCodec jpeg(75);
  codec::BpgLikeCodec bpg(60);

  // Quantization is needed when the server default is int8/auto OR any
  // tenant pins int8 (the per-tenant override works regardless of the
  // default, so it must be able to trigger calibration by itself).
  const bool any_tenant_int8 =
      std::any_of(tenants.begin(), tenants.end(), [](const auto& t) {
        return t.precision == serve::TenantPrecision::kInt8;
      });
  if (precision != serve::PrecisionPolicy::kFp32 || any_tenant_int8) {
    // Loadgen-style calibration sample: synthetic frames shaped like the
    // traces below, pushed through the production decode path at both
    // erase ratios and axes the scenarios use, so the observers see the
    // activation ranges serving will.
    std::vector<core::ReconstructionModel::CalibSample> samples;
    util::Pcg32 calib_rng(0xCA1B);
    for (int i = 0; i < 6; ++i) {
      const image::Image img = data::synth_photo(96, 64, calib_rng);
      core::EaszConfig cfg;
      cfg.patchify = mcfg.patchify;
      cfg.erased_per_row = 1 + i % 2;
      cfg.axis = i % 2 == 0 ? core::SqueezeAxis::kHorizontal
                            : core::SqueezeAxis::kVertical;
      cfg.mask_seed = 7 + i;
      const core::EaszPipeline pipeline(cfg, jpeg, &model);
      const core::DecodedTokens d = pipeline.decode_tokens(pipeline.encode(img));
      samples.push_back({d.tokens, d.recon_mask});
    }
    model.calibrate_and_quantize(samples);
    std::printf("quantized: %zu calibration samples, int8 weights frozen\n",
                samples.size());
  }

  if (save_ckpt != nullptr) {
    // One file carries both sections when quantized, so reloading it
    // restores the full int8 plan — required for a hot swap under an int8
    // default or any tenant int8 pin (deploy_model rejects unquantized
    // checkpoints there).
    const auto params = model.parameters();
    const std::vector<std::uint8_t> bytes =
        model.is_quantized()
            ? nn::serialize_checkpoint_with_quant(params,
                                                  model.quant_sidecar())
            : nn::serialize_parameters(params);
    if (std::FILE* f = std::fopen(save_ckpt, "wb")) {
      std::fwrite(bytes.data(), 1, bytes.size(), f);
      std::fclose(f);
      std::printf("saved checkpoint %s (%zu bytes, %s)\n", save_ckpt,
                  bytes.size(),
                  model.is_quantized() ? "ESZ1+EAZQ" : "ESZ1");
    } else {
      std::fprintf(stderr, "cannot write %s\n", save_ckpt);
      return 1;
    }
  }

  serve::ServerConfig scfg;
  scfg.workers = workers;
  scfg.max_queue = queue;
  scfg.max_batch_patches = batch;
  scfg.cache_bytes = static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
  scfg.backpressure = has_flag(argc, argv, "--reject")
                          ? serve::BackpressurePolicy::kReject
                          : serve::BackpressurePolicy::kBlock;
  scfg.kernel_threads = kernel_threads;
  scfg.cache_shards = cache_shards;
  scfg.tenants = tenants;
  scfg.precision = precision;
  scfg.pipeline_depth = pipeline_depth;
  scfg.pin_workers = pin_workers;
  scfg.shape_batches_to_llc = shape_llc;
  scfg.llc_bytes = llc_bytes;
  scfg.ladder.slo_p95_s = slo_p95_ms / 1000.0;
  if (inject_fault_every > 0) {
    // Resilience smoke hook: every Nth decode action throws, exercising the
    // hardened failure path (exact accounting, quota/token refund, clean
    // drain) under real replay traffic. The loadgen settles erred futures/
    // callbacks like any client would, so the replay completes normally.
    auto decode_count = std::make_shared<std::atomic<int>>(0);
    scfg.fault_injection = [decode_count,
                            inject_fault_every](serve::StageAction stage) {
      if (stage == serve::StageAction::kDecode &&
          decode_count->fetch_add(1) % inject_fault_every ==
              inject_fault_every - 1) {
        throw std::runtime_error("injected decode fault (smoke)");
      }
    };
    std::printf("fault injection armed: every %d%s decode throws\n",
                inject_fault_every, inject_fault_every == 2 ? "nd" : "th");
  }

#if defined(__unix__) || defined(__APPLE__)
  if (reload_path != nullptr) std::signal(SIGHUP, handle_sighup);
#endif

  if (listen_port >= 0) {
    // Replica mode: serve the wire protocol until SIGTERM/SIGINT. The
    // stepping harness (workers == 0) has no worker to run socket traffic,
    // so it is a usage error here — exactly the misconfiguration the old
    // atoi behaviour used to reach silently via `--workers junk`.
    if (workers < 1) {
      std::fprintf(stderr,
                   "--listen requires --workers >= 1 (workers=0 is the "
                   "manual-stepping harness; it cannot serve a socket)\n");
      return 2;
    }
    std::signal(SIGTERM, handle_shutdown);
    std::signal(SIGINT, handle_shutdown);

    serve::ReconServer server(scfg, model);
    server.register_codec("jpeg", &jpeg);
    server.register_codec("bpg", &bpg);

    serve::TransportConfig tcfg;
    tcfg.host = listen_host;
    tcfg.port = listen_port;
    tcfg.max_connections = max_conns;
    serve::ServeTransport transport(server, tcfg);
    std::printf("easz_serve: listening on %s:%d (%d workers)\n",
                listen_host.c_str(), transport.port(), workers);
    std::fflush(stdout);

    std::FILE* stats_file = stdout;
    if (stats_every > 0.0 && stats_out_path != nullptr) {
      stats_file = std::fopen(stats_out_path, "w");
      if (stats_file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", stats_out_path);
        return 1;
      }
    }
    std::unique_ptr<StatsReporter> reporter;
    if (stats_every > 0.0) {
      reporter =
          std::make_unique<StatsReporter>(server, stats_every, stats_file);
    }
    std::unique_ptr<ReloadWatcher> reloader;
    if (reload_path != nullptr) {
      reloader = std::make_unique<ReloadWatcher>(
          server, reload_path, mcfg, stats_every > 0.0 ? stats_every : 0.25);
    }

    while (g_shutdown_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("easz_serve: shutting down\n");
    transport.stop();  // no new frames past this point
    server.drain();    // every accepted request settles before stats
    if (reloader) reloader->stop();
    if (reporter) reporter->stop();
    if (stats_file != stdout) std::fclose(stats_file);

    // Final stats: the networked smoke reads cache hits / request counts
    // from this JSON, so it must flush even without --stats-every.
    const std::string final_json =
        "{\"port\":" + std::to_string(transport.port()) +
        ",\"stats\":" + server.stats().to_json() + "}";
    if (json_path != nullptr) {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fputs(final_json.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", json_path);
      } else {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
      }
    } else {
      std::printf("%s\n", final_json.c_str());
    }
    return 0;
  }

  std::vector<testbed::LoadTrace> traces;
  if (scenario == "wildlife" || scenario == "all") {
    traces.push_back(testbed::make_wildlife_burst_trace(
        model, jpeg, clients, /*bursts=*/2, /*frames_per_burst=*/frames / 2));
  }
  if (scenario == "industrial" || scenario == "all") {
    traces.push_back(
        testbed::make_industrial_stream_trace(model, jpeg, clients, frames));
  }
  if (scenario == "mixed" || scenario == "all") {
    traces.push_back(
        testbed::make_heterogeneous_trace(model, jpeg, clients, frames));
  }
  if (traces.empty()) {
    std::fprintf(stderr,
                 "unknown --scenario '%s' (wildlife|industrial|mixed|all)\n",
                 scenario.c_str());
    return 2;
  }

  if (connect_flag != nullptr) {
    // Socket fleet mode: drive the traces at a remote replica (or router).
    const std::string spec = connect_flag;
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
      std::fprintf(stderr, "--connect expects HOST:PORT, got \"%s\"\n",
                   spec.c_str());
      return 2;
    }
    const std::string host = spec.substr(0, colon);
    const int port = util::parse_int32(spec.substr(colon + 1),
                                       "--connect port", 1, 65535);

    // Byte-identity cross-check: a local single-worker server over the SAME
    // deterministic model decodes a sample of requests, and the socket
    // response's float pixels must match its output exactly. Requires the
    // remote replica to run the same default precision (both sides default
    // fp32); --verify 0 disables.
    std::unique_ptr<serve::ReconServer> verify_server;
    if (verify_n > 0) {
      serve::ServerConfig vcfg = scfg;
      vcfg.workers = 1;
      vcfg.fault_injection = nullptr;
      verify_server = std::make_unique<serve::ReconServer>(vcfg, model);
      verify_server->register_codec("jpeg", &jpeg);
      verify_server->register_codec("bpg", &bpg);
    }
    int verified = 0;
    int mismatches = 0;

    util::Table t({"scenario", "events", "done", "drop", "fail", "wall s",
                   "req/s", "p50 ms", "p99 ms"});
    std::string json = "[";
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const testbed::LoadTrace& trace = traces[i];
      testbed::SocketReplayOptions opts;
      opts.host = host;
      opts.port = port;
      opts.time_scale = time_scale;
      if (verify_server) {
        opts.on_response = [&](const testbed::LoadEvent& ev,
                               const serve::wire::WireResponse& resp) {
          if (verified >= verify_n) return;
          ++verified;
          serve::SubmitResult local = verify_server->submit(ev.request);
          if (!local.accepted) {
            ++mismatches;
            std::fprintf(stderr, "verify: local decode shed (tenant %s)\n",
                         ev.request.tenant.c_str());
            return;
          }
          const serve::ServeResponse lr = local.response.get();
          const serve::wire::WireResponse expect =
              serve::wire::make_ok_response(lr);
          if (expect.width != resp.width || expect.height != resp.height ||
              expect.channels != resp.channels ||
              expect.pixels != resp.pixels) {
            ++mismatches;
            std::fprintf(stderr,
                         "verify: response bytes differ from local decode "
                         "(image %zu, %dx%dx%d vs %dx%dx%d)\n",
                         ev.image_index, resp.width, resp.height,
                         resp.channels, expect.width, expect.height,
                         expect.channels);
          }
        };
      }
      const testbed::ReplayReport report =
          testbed::replay_trace_sockets(trace, opts);
      t.add_row({trace.name, std::to_string(trace.events.size()),
                 std::to_string(report.completed),
                 std::to_string(report.rejected),
                 std::to_string(report.failed),
                 util::Table::num(report.wall_s, 2),
                 util::Table::num(report.throughput_rps, 1),
                 util::Table::num(report.latency_p50_s * 1e3, 1),
                 util::Table::num(report.latency_p99_s * 1e3, 1)});
      json += report.to_json();
      if (i + 1 < traces.size()) json += ",";
    }
    json += "]";
    std::printf("\n");
    t.print();
    if (verify_n > 0) {
      std::printf("verify: %d responses cross-checked against local decode, "
                  "%d mismatches\n",
                  verified, mismatches);
    }
    if (json_path != nullptr) {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fputs(json.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", json_path);
      } else {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
      }
    }
    return mismatches > 0 ? 1 : 0;
  }

  std::FILE* stats_file = stdout;
  if (stats_every > 0.0 && stats_out_path != nullptr) {
    stats_file = std::fopen(stats_out_path, "w");
    if (stats_file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", stats_out_path);
      return 1;
    }
  }

  util::Table t({"scenario", "events", "done", "drop", "fail", "wall s",
                 "req/s", "p50 ms", "p99 ms", "hit%", "patch/fwd"});
  std::string json = "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const testbed::LoadTrace& trace = traces[i];
    // Fresh server per scenario so stats do not bleed across workloads.
    serve::ReconServer server(scfg, model);
    server.register_codec("jpeg", &jpeg);
    server.register_codec("bpg", &bpg);

    testbed::ReplayOptions opts;
    opts.time_scale = time_scale;
    opts.async = async;
    opts.registry = &server.obs();  // client.* counters land next to serve.*
    std::unique_ptr<StatsReporter> reporter;
    if (stats_every > 0.0) {
      reporter = std::make_unique<StatsReporter>(server, stats_every,
                                                 stats_file);
    }
    std::unique_ptr<ReloadWatcher> reloader;
    if (reload_path != nullptr) {
      reloader = std::make_unique<ReloadWatcher>(
          server, reload_path, mcfg,
          stats_every > 0.0 ? stats_every : 0.25);
    }
    const testbed::ReplayReport report =
        testbed::replay_trace(trace, server, opts);
    if (reloader) reloader->stop();
    if (reporter) reporter->stop();
    // The ring holds the most recent trace_spans spans, so with multiple
    // scenarios the export reflects the LAST one (each runs a fresh server).
    if (trace_out != nullptr && i + 1 == traces.size()) {
      if (std::FILE* f = std::fopen(trace_out, "w")) {
        const std::string chrome = server.trace().to_chrome_json();
        std::fputs(chrome.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s (%s trace)\n", trace_out, trace.name.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", trace_out);
        return 1;
      }
    }

    const auto& s = report.server;
    const double hit_pct =
        s.cache_hits + s.cache_misses == 0
            ? 0.0
            : 100.0 * static_cast<double>(s.cache_hits) /
                  static_cast<double>(s.cache_hits + s.cache_misses);
    t.add_row({trace.name, std::to_string(trace.events.size()),
               std::to_string(report.completed),
               std::to_string(report.rejected), std::to_string(report.failed),
               util::Table::num(report.wall_s, 2),
               util::Table::num(report.throughput_rps, 1),
               util::Table::num(report.latency_p50_s * 1e3, 1),
               util::Table::num(report.latency_p99_s * 1e3, 1),
               util::Table::num(hit_pct, 0),
               util::Table::num(s.mean_batch_size(), 1)});
    json += report.to_json();
    if (i + 1 < traces.size()) json += ",";

    std::printf("\n--- %s ---\n%s", trace.name.c_str(),
                s.to_string().c_str());
    // The headline the kernel layer exists for: per-batch transformer
    // forward time, visible without digging through the stage table.
    std::printf("forward: p50 %.2f ms  p95 %.2f ms over %llu batches "
                "(%d kernel threads)\n",
                s.reconstruct.p50_s * 1e3, s.reconstruct.p95_s * 1e3,
                static_cast<unsigned long long>(s.batches), s.kernel_threads);
    // The classical half of the decode budget: interleaved-rANS + fast-DCT
    // codec throughput, per stage.
    std::printf("codec decode: %.1f MP/s over %llu requests\n",
                s.codec_decode_mpps(),
                static_cast<unsigned long long>(s.codec_decode.count));
    for (const testbed::ReplayReport::TenantOutcome& to : report.tenants) {
      std::printf("client view %-12s done %d drop %d fail %d  "
                  "p50 %.1f ms  p95 %.1f ms\n",
                  to.tenant.c_str(), to.completed, to.rejected, to.failed,
                  to.latency_p50_s * 1e3, to.latency_p95_s * 1e3);
    }
  }
  json += "]";

  if (stats_file != stdout) std::fclose(stats_file);

  std::printf("\n");
  t.print();

  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "easz_serve: %s\n", e.what());
  return 2;
}
