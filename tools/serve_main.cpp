// easz_serve — reconstruction-server traffic driver.
//
// Spins up the concurrent batched ReconServer and replays one of the
// testbed's modeled edge workloads against it:
//
//   easz_serve [--scenario wildlife|industrial|mixed|all] [--workers N]
//              [--clients N] [--frames N] [--batch P] [--queue N]
//              [--cache-mb MB] [--reject] [--time-scale S] [--json out.json]
//              [--kernel-threads N]
//
// --kernel-threads sizes the tensor::kern pool the transformer forward
// (reconstruct stage) runs on; 0 keeps the pool at hardware concurrency.
//
// --time-scale replays arrivals on the modeled clock (1 = real time,
// 0 = as fast as possible, the default). --reject switches backpressure
// from blocking to load shedding. The JSON report contains one entry per
// scenario with client-side latency and the server's stage stats.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "codec/bpg_like.hpp"
#include "codec/jpeg_like.hpp"
#include "serve/server.hpp"
#include "testbed/loadgen.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace easz;
using util::flag_value;
using util::has_flag;

}  // namespace

int main(int argc, char** argv) try {
  const std::string scenario = flag_value(argc, argv, "--scenario", "all");
  const int workers = std::atoi(flag_value(argc, argv, "--workers", "4"));
  const int clients = std::atoi(flag_value(argc, argv, "--clients", "6"));
  const int frames = std::atoi(flag_value(argc, argv, "--frames", "8"));
  const int batch = std::atoi(flag_value(argc, argv, "--batch", "32"));
  const int queue = std::atoi(flag_value(argc, argv, "--queue", "64"));
  const double cache_mb =
      std::atof(flag_value(argc, argv, "--cache-mb", "64"));
  const double time_scale =
      std::atof(flag_value(argc, argv, "--time-scale", "0"));
  const int kernel_threads =
      std::atoi(flag_value(argc, argv, "--kernel-threads", "0"));
  const char* json_path = flag_value(argc, argv, "--json", nullptr);

  std::printf("easz_serve: %d workers, batch %d, queue %d, cache %.0f MB, "
              "%s backpressure, kernel threads %s\n",
              workers, batch, queue, cache_mb,
              has_flag(argc, argv, "--reject") ? "reject" : "block",
              kernel_threads > 0 ? std::to_string(kernel_threads).c_str()
                                 : "auto");

  // Canonical serving model (matches the examples' p16/b2/d64 deployment).
  core::ReconModelConfig mcfg;
  mcfg.patchify = {.patch = 16, .sub_patch = 2};
  mcfg.channels = 3;
  mcfg.d_model = 64;
  mcfg.num_heads = 4;
  mcfg.ffn_hidden = 128;
  util::Pcg32 rng(11);
  const core::ReconstructionModel model(mcfg, rng);

  codec::JpegLikeCodec jpeg(75);
  codec::BpgLikeCodec bpg(60);

  serve::ServerConfig scfg;
  scfg.workers = workers;
  scfg.max_queue = queue;
  scfg.max_batch_patches = batch;
  scfg.cache_bytes = static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
  scfg.backpressure = has_flag(argc, argv, "--reject")
                          ? serve::BackpressurePolicy::kReject
                          : serve::BackpressurePolicy::kBlock;
  scfg.kernel_threads = kernel_threads;

  std::vector<testbed::LoadTrace> traces;
  if (scenario == "wildlife" || scenario == "all") {
    traces.push_back(testbed::make_wildlife_burst_trace(
        model, jpeg, clients, /*bursts=*/2, /*frames_per_burst=*/frames / 2));
  }
  if (scenario == "industrial" || scenario == "all") {
    traces.push_back(
        testbed::make_industrial_stream_trace(model, jpeg, clients, frames));
  }
  if (scenario == "mixed" || scenario == "all") {
    traces.push_back(
        testbed::make_heterogeneous_trace(model, jpeg, clients, frames));
  }
  if (traces.empty()) {
    std::fprintf(stderr,
                 "unknown --scenario '%s' (wildlife|industrial|mixed|all)\n",
                 scenario.c_str());
    return 2;
  }

  util::Table t({"scenario", "events", "done", "drop", "fail", "wall s",
                 "req/s", "p50 ms", "p99 ms", "hit%", "patch/fwd"});
  std::string json = "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const testbed::LoadTrace& trace = traces[i];
    // Fresh server per scenario so stats do not bleed across workloads.
    serve::ReconServer server(scfg, model);
    server.register_codec("jpeg", &jpeg);
    server.register_codec("bpg", &bpg);

    testbed::ReplayOptions opts;
    opts.time_scale = time_scale;
    const testbed::ReplayReport report =
        testbed::replay_trace(trace, server, opts);

    const auto& s = report.server;
    const double hit_pct =
        s.cache_hits + s.cache_misses == 0
            ? 0.0
            : 100.0 * static_cast<double>(s.cache_hits) /
                  static_cast<double>(s.cache_hits + s.cache_misses);
    t.add_row({trace.name, std::to_string(trace.events.size()),
               std::to_string(report.completed),
               std::to_string(report.rejected), std::to_string(report.failed),
               util::Table::num(report.wall_s, 2),
               util::Table::num(report.throughput_rps, 1),
               util::Table::num(report.latency_p50_s * 1e3, 1),
               util::Table::num(report.latency_p99_s * 1e3, 1),
               util::Table::num(hit_pct, 0),
               util::Table::num(s.mean_batch_size(), 1)});
    json += report.to_json();
    if (i + 1 < traces.size()) json += ",";

    std::printf("\n--- %s ---\n%s", trace.name.c_str(),
                s.to_string().c_str());
    // The headline the kernel layer exists for: per-batch transformer
    // forward time, visible without digging through the stage table.
    std::printf("forward: p50 %.2f ms  p95 %.2f ms over %llu batches "
                "(%d kernel threads)\n",
                s.reconstruct.p50_s * 1e3, s.reconstruct.p95_s * 1e3,
                static_cast<unsigned long long>(s.batches), s.kernel_threads);
    // The classical half of the decode budget: interleaved-rANS + fast-DCT
    // codec throughput, per stage.
    std::printf("codec decode: %.1f MP/s over %llu requests\n",
                s.codec_decode_mpps(),
                static_cast<unsigned long long>(s.codec_decode.count));
  }
  json += "]";

  std::printf("\n");
  t.print();

  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "easz_serve: %s\n", e.what());
  return 2;
}
