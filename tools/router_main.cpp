// easz_router — consistent-hash front door for a fleet of easz_serve
// --listen replicas (DESIGN.md §11.3).
//
//   easz_router --replicas HOST:PORT[,HOST:PORT...] [--port P] [--host A]
//               [--vnodes N] [--max-conns N] [--connect-timeout S]
//               [--stats-every S] [--json out.json]
//
// Clients speak the same wire protocol to the router as to a replica; the
// router forwards each request to the replica owning its routing_hash on
// the ring (payload/mask/codec/geometry/precision — the result-cache key),
// so byte-identical resends always land on the replica whose cache shard
// already holds them. Runs until SIGTERM/SIGINT, then closes the front
// door, drains the legs and writes per-replica fan-out / forwarded /
// failed counts and latency percentiles as JSON to --json (or stdout).
// --stats-every S additionally emits that JSON every S seconds while
// serving. All numeric flags are strict (util/parse.hpp): garbage is a
// usage error, never a silently-zero port or vnode count.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/router.hpp"
#include "util/flags.hpp"
#include "util/parse.hpp"

namespace {

using namespace easz;
using util::flag_value;

volatile std::sig_atomic_t g_shutdown = 0;
void handle_shutdown(int) { g_shutdown = 1; }

// Parses "HOST:PORT[,HOST:PORT...]" strictly: every entry must carry a
// non-empty host and an in-range port.
std::vector<serve::RouterConfig::Replica> parse_replicas(
    const std::string& spec) {
  std::vector<serve::RouterConfig::Replica> out;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      throw std::invalid_argument("--replicas entry \"" + entry +
                                  "\": expected HOST:PORT");
    }
    serve::RouterConfig::Replica r;
    r.host = entry.substr(0, colon);
    r.port = util::parse_int32(entry.substr(colon + 1),
                               "--replicas " + entry + " port", 1, 65535);
    out.push_back(std::move(r));
  }
  if (out.empty()) {
    throw std::invalid_argument("--replicas: need at least one HOST:PORT");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const char* replicas_flag = flag_value(argc, argv, "--replicas", nullptr);
  if (replicas_flag == nullptr) {
    std::fprintf(stderr,
                 "usage: easz_router --replicas HOST:PORT[,HOST:PORT...] "
                 "[--port P] [--host A] [--vnodes N] [--max-conns N] "
                 "[--connect-timeout S] [--stats-every S] [--json out.json]\n");
    return 2;
  }

  serve::RouterConfig cfg;
  cfg.replicas = parse_replicas(replicas_flag);
  cfg.front.host = flag_value(argc, argv, "--host", "127.0.0.1");
  cfg.front.port = util::parse_int32(flag_value(argc, argv, "--port", "0"),
                                     "--port", 0, 65535);
  cfg.front.max_connections =
      util::parse_int32(flag_value(argc, argv, "--max-conns", "256"),
                        "--max-conns", 1, 1 << 20);
  cfg.vnodes = util::parse_int32(flag_value(argc, argv, "--vnodes", "64"),
                                 "--vnodes", 1, 1 << 16);
  cfg.connect_timeout_s =
      util::parse_double(flag_value(argc, argv, "--connect-timeout", "10"),
                         "--connect-timeout", 0.1, 3600.0);
  const double stats_every =
      util::parse_double(flag_value(argc, argv, "--stats-every", "0"),
                         "--stats-every", 0.0, 1e6);
  const char* json_path = flag_value(argc, argv, "--json", nullptr);

  std::signal(SIGTERM, handle_shutdown);
  std::signal(SIGINT, handle_shutdown);

  serve::ReplicaRouter router(cfg);
  std::printf("easz_router: listening on %s:%d, %zu replicas x %d vnodes\n",
              cfg.front.host.c_str(), router.port(), cfg.replicas.size(),
              cfg.vnodes);
  std::fflush(stdout);

  double since_stats = 0.0;
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    since_stats += 0.1;
    if (stats_every > 0.0 && since_stats >= stats_every) {
      since_stats = 0.0;
      std::printf("%s\n", router.stats_json().c_str());
      std::fflush(stdout);
    }
  }
  std::printf("easz_router: shutting down\n");
  router.stop();

  const std::string stats = router.stats_json();
  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fputs(stats.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  } else {
    std::printf("%s\n", stats.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "easz_router: %s\n", e.what());
  return 2;
}
