// Ablation — deployment sweep across edge devices, servers and links.
//
// The paper motivates Easz with devices weaker than the TX2 (§II names the
// Raspberry Pi 4) and suggests A100-class servers for the reconstruction
// stage (§IV-B). This bench prices the same workload across the whole grid:
// the weaker the edge and the fatter the server, the larger Easz's
// advantage — and on a GPU-less Pi the neural codecs become unusable
// (minutes per frame) while Easz is unchanged.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/jpeg_like.hpp"
#include "neural_codec/conv_autoencoder.hpp"
#include "testbed/scenario.hpp"

int main() {
  using namespace easz;
  bench::print_header(
      "Ablation — device/link deployment sweep (512x768, 0.4 bpp)",
      "Easz's edge cost is device-insensitive; NN codecs collapse on weak "
      "edges; an A100 server shrinks Easz's dominant reconstruction stage");

  constexpr int kW = 512;
  constexpr int kH = 768;
  constexpr double kPayload = 0.4 / 8.0 * kW * kH;

  util::Pcg32 rng(151);
  core::ReconstructionModel model(core::ReconModelConfig{}, rng);
  codec::JpegLikeCodec jpeg(60);
  neural_codec::ConvAutoencoderCodec mbt(neural_codec::mbt_lite_spec(), 50, 152);

  struct Deployment {
    const char* name;
    testbed::DeviceModel edge;
    testbed::DeviceModel server;
    testbed::NetworkLink link;
  };
  const Deployment grid[] = {
      {"TX2 -> 2080Ti / WiFi", testbed::jetson_tx2(),
       testbed::desktop_2080ti(), testbed::wifi_link()},
      {"Pi4 -> 2080Ti / WiFi", testbed::raspberry_pi4(),
       testbed::desktop_2080ti(), testbed::wifi_link()},
      {"TX2 -> A100 / WiFi", testbed::jetson_tx2(), testbed::a100_server(),
       testbed::wifi_link()},
      {"Pi4 -> A100 / LTE-IoT", testbed::raspberry_pi4(),
       testbed::a100_server(), testbed::lte_iot_link()},
  };

  util::Table t({"deployment", "Easz edge ms", "Easz e2e ms", "MBT edge ms",
                 "MBT e2e ms", "Easz speedup"});
  for (const auto& d : grid) {
    const testbed::Scenario s(d.edge, d.server, d.link);
    const testbed::PipelineCost easz =
        s.run_easz(jpeg, model, kW, kH, 2, kPayload);
    const testbed::PipelineCost nn = s.run_codec(mbt, kW, kH, kPayload);
    const double easz_edge =
        easz.latency.erase_squeeze_s + easz.latency.encode_s;
    t.add_row({d.name, util::Table::num(easz_edge * 1e3, 0),
               util::Table::num(easz.latency.end_to_end_s() * 1e3, 0),
               util::Table::num(nn.latency.encode_s * 1e3, 0),
               util::Table::num(nn.latency.end_to_end_s() * 1e3, 0),
               util::Table::num(nn.latency.end_to_end_s() /
                                    easz.latency.end_to_end_s(), 1) + "x"});
  }
  t.print();
  std::printf(
      "Shape check: the NN codec's edge encode explodes on the Pi 4 (no\n"
      "GPU) while Easz's edge stage stays in tens of milliseconds on every\n"
      "device; the A100 server cuts Easz's reconstruction-dominated total.\n");
  return 0;
}
