// Classical codec substrate bench (ISSUE 3 acceptance bench): rANS MB/s
// (scalar v1 vs interleaved v2), DCT blocks/s (unrolled/GEMM-routed vs the
// seed's naive triple loop), and whole-codec encode/decode MP/s at 1 and 4
// kernel threads with byte-identical output asserted across pool widths.
//
// Usage: bench_codec [out.json] [--smoke]
// Emits a human table on stdout and a JSON report to out.json
// (default bench_codec.json). --smoke shrinks workloads for CI while
// keeping the same report schema.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codec/bpg_like.hpp"
#include "codec/dct.hpp"
#include "codec/jpeg_like.hpp"
#include "data/synth.hpp"
#include "entropy/rans.hpp"
#include "obs/perf_counters.hpp"
#include "obs/registry.hpp"
#include "tensor/kernels.hpp"
#include "util/prng.hpp"

namespace {

using namespace easz;
using Clock = std::chrono::steady_clock;

template <typename F>
double time_best_s(F&& fn, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

// The seed's naive triple-loop DCT, kept here as the bench baseline.
class NaiveDct {
 public:
  explicit NaiveDct(int n) : n_(n), basis_(static_cast<std::size_t>(n) * n) {
    const double pi = 3.14159265358979323846;
    for (int k = 0; k < n; ++k) {
      const double ck = k == 0 ? std::sqrt(1.0 / n) : std::sqrt(2.0 / n);
      for (int x = 0; x < n; ++x) {
        basis_[static_cast<std::size_t>(k) * n + x] = static_cast<float>(
            ck * std::cos((2.0 * x + 1.0) * k * pi / (2.0 * n)));
      }
    }
    scratch_.resize(static_cast<std::size_t>(n) * n);
  }
  void forward(float* block) {
    const int n = n_;
    for (int y = 0; y < n; ++y) {
      for (int k = 0; k < n; ++k) {
        float acc = 0.0F;
        for (int x = 0; x < n; ++x) acc += block[y * n + x] * basis_[k * n + x];
        scratch_[static_cast<std::size_t>(y) * n + k] = acc;
      }
    }
    for (int k = 0; k < n; ++k) {
      for (int x = 0; x < n; ++x) {
        float acc = 0.0F;
        for (int y = 0; y < n; ++y) {
          acc += basis_[k * n + y] * scratch_[static_cast<std::size_t>(y) * n + x];
        }
        block[k * n + x] = acc;
      }
    }
  }
  void inverse(float* block) {
    const int n = n_;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        float acc = 0.0F;
        for (int k = 0; k < n; ++k) acc += basis_[k * n + y] * block[k * n + x];
        scratch_[static_cast<std::size_t>(y) * n + x] = acc;
      }
    }
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        float acc = 0.0F;
        for (int k = 0; k < n; ++k) {
          acc += scratch_[static_cast<std::size_t>(y) * n + k] * basis_[k * n + x];
        }
        block[y * n + x] = acc;
      }
    }
  }

 private:
  int n_;
  std::vector<float> basis_;
  std::vector<float> scratch_;
};

// Coefficient-shaped symbol stream: heavy EOB/level/zero-run mix like the
// bpg codec emits on natural content.
std::vector<int> coeff_stream(std::size_t count) {
  std::vector<int> symbols;
  symbols.reserve(count);
  util::Pcg32 rng(7);
  for (std::size_t i = 0; i < count; ++i) {
    const float u = rng.next_float();
    int s;
    if (u < 0.35F) {
      s = 253;  // EOB
    } else if (u < 0.6F) {
      s = 92 + static_cast<int>(rng.next_below(9));  // small levels
    } else if (u < 0.8F) {
      s = 193 + static_cast<int>(rng.next_below(12));  // zero runs
    } else {
      s = static_cast<int>(rng.next_below(193));
    }
    symbols.push_back(s);
  }
  return symbols;
}

struct CodecFigures {
  double encode_mpps_1t = 0.0;
  double decode_mpps_1t = 0.0;
  double encode_mpps_4t = 0.0;
  double decode_mpps_4t = 0.0;
  double bpp = 0.0;
};

CodecFigures run_codec(codec::ImageCodec& c, const image::Image& img,
                       int reps) {
  CodecFigures f;
  const double mp = static_cast<double>(img.pixel_count()) / 1e6;
  const auto measure = [&](int threads, double* enc_out, double* dec_out) {
    tensor::kern::set_threads(threads);
    codec::Compressed comp = c.encode(img);  // warm
    image::Image dec = c.decode(comp);
    *enc_out = mp / time_best_s([&] { comp = c.encode(img); }, reps);
    *dec_out = mp / time_best_s([&] { dec = c.decode(comp); }, reps);
    f.bpp = comp.bpp();
    return dec;
  };
  const image::Image d1 = measure(1, &f.encode_mpps_1t, &f.decode_mpps_1t);
  const image::Image d4 = measure(4, &f.encode_mpps_4t, &f.decode_mpps_4t);
  // Block-parallel output must be byte-identical across pool widths.
  if (d1.data().size() != d4.data().size() ||
      std::memcmp(d1.data().data(), d4.data().data(),
                  d1.data().size() * sizeof(float)) != 0) {
    std::fprintf(stderr, "FATAL: %s decode differs across thread counts\n",
                 c.name().c_str());
    std::exit(2);
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "bench_codec.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (argv[i][0] != '-') {
      out_path = argv[i];
    }
  }

  std::printf("bench_codec: entropy/transform/codec substrate "
              "(%s workload)\n\n", smoke ? "smoke" : "full");

  // ---- rANS ---------------------------------------------------------------
  const std::size_t sym_count = smoke ? (1U << 18U) : (1U << 21U);
  const int rans_reps = smoke ? 5 : 10;
  const std::vector<int> symbols = coeff_stream(sym_count);
  std::vector<std::uint64_t> counts(255, 0);
  for (const int s : symbols) ++counts[static_cast<std::size_t>(s)];
  const auto table = entropy::FrequencyTable::from_counts(counts);
  const auto enc_v1 = entropy::rans_encode(symbols, table);
  const auto enc_v2 = entropy::rans_encode_interleaved(symbols, table);
  table.ensure_lookup();

  std::vector<int> sink;
  const double t_v1 = time_best_s(
      [&] {
        sink = entropy::rans_decode(enc_v1.data(), enc_v1.size(), sym_count,
                                    table);
      },
      rans_reps);
  const double t_v2 = time_best_s(
      [&] {
        sink = entropy::rans_decode_interleaved(enc_v2.data(), enc_v2.size(),
                                                sym_count, table);
      },
      rans_reps);
  const double t_v2_scalar = time_best_s(
      [&] {
        sink = entropy::detail::rans_decode_interleaved_scalar(
            enc_v2.data(), enc_v2.size(), sym_count, table);
      },
      rans_reps);
  const double t_enc_v2 = time_best_s(
      [&] {
        auto e = entropy::rans_encode_interleaved(symbols, table);
        if (e.empty()) std::exit(3);
      },
      rans_reps);
  const double msym = static_cast<double>(sym_count) / 1e6;
  const double rans_decode_mbps_v1 =
      static_cast<double>(enc_v1.size()) / t_v1 / 1e6;
  const double rans_decode_mbps_v2 =
      static_cast<double>(enc_v2.size()) / t_v2 / 1e6;
  const double rans_speedup = t_v1 / t_v2;
  std::printf("rANS on bpg coefficient streams (%zu symbols, %.2f bits/sym "
              "entropy):\n", sym_count, table.entropy_bits());
  std::printf("  scalar v1 decode          %8.1f Msym/s  %7.1f MB/s\n",
              msym / t_v1, rans_decode_mbps_v1);
  std::printf("  interleaved v2 decode     %8.1f Msym/s  %7.1f MB/s  "
              "(%.2fx scalar)\n",
              msym / t_v2, rans_decode_mbps_v2, rans_speedup);
  std::printf("  interleaved scalar kernel %8.1f Msym/s (forced, no AVX2)\n",
              msym / t_v2_scalar);
  std::printf("  interleaved v2 encode     %8.1f Msym/s\n", msym / t_enc_v2);
  std::printf("  avx2 kernel available: %s\n\n",
              entropy::detail::rans_interleaved_avx2_available() ? "yes"
                                                                 : "no");

  // ---- DCT ----------------------------------------------------------------
  const int dct_iters = smoke ? 20000 : 100000;
  double dct_blocks_per_s[3] = {0, 0, 0};
  double naive_blocks_per_s[3] = {0, 0, 0};
  const int sizes[3] = {8, 16, 32};
  std::printf("DCT forward+inverse pairs:\n");
  // Seeded once, OUTSIDE the size loop (bench seeding policy, see
  // bench/common.hpp): re-seeding per iteration would hand every size the
  // same leading stream and make cross-size variance meaningless.
  util::Pcg32 dct_rng(9);
  for (int si = 0; si < 3; ++si) {
    const int n = sizes[si];
    codec::Dct2d dct(n);
    NaiveDct naive(n);
    std::vector<float> block(static_cast<std::size_t>(n) * n);
    for (auto& v : block) v = dct_rng.next_float() * 255.0F - 128.0F;
    const int iters = dct_iters * 64 / (n * n);
    const double t_fast = time_best_s(
        [&] {
          for (int i = 0; i < iters; ++i) {
            dct.forward(block.data());
            dct.inverse(block.data());
          }
        },
        3);
    const double t_naive = time_best_s(
        [&] {
          for (int i = 0; i < iters; ++i) {
            naive.forward(block.data());
            naive.inverse(block.data());
          }
        },
        3);
    dct_blocks_per_s[si] = iters / t_fast;
    naive_blocks_per_s[si] = iters / t_naive;
    std::printf("  %2dx%-2d  %10.0f pairs/s  (naive %10.0f, %.2fx)\n", n, n,
                dct_blocks_per_s[si], naive_blocks_per_s[si],
                dct_blocks_per_s[si] / naive_blocks_per_s[si]);
  }
  std::printf("\n");

  // ---- whole codecs -------------------------------------------------------
  const int dim = smoke ? 192 : 512;
  const int codec_reps = smoke ? 3 : 6;
  util::Pcg32 img_rng(42);
  const image::Image img = data::synth_photo(dim, dim, img_rng);
  codec::JpegLikeCodec jpeg(75);
  codec::BpgLikeCodec bpg(50);
  const CodecFigures fj = run_codec(jpeg, img, codec_reps);
  const CodecFigures fb = run_codec(bpg, img, codec_reps);
  tensor::kern::set_threads(1);
  std::printf("codecs on %dx%d synth photo (MP/s):\n", dim, dim);
  std::printf("  %-5s %5s  enc 1t %6.2f  dec 1t %6.2f  enc 4t %6.2f  "
              "dec 4t %6.2f  (%.2f bpp)\n",
              "jpeg", "", fj.encode_mpps_1t, fj.decode_mpps_1t,
              fj.encode_mpps_4t, fj.decode_mpps_4t, fj.bpp);
  std::printf("  %-5s %5s  enc 1t %6.2f  dec 1t %6.2f  enc 4t %6.2f  "
              "dec 4t %6.2f  (%.2f bpp)\n",
              "bpg", "", fb.encode_mpps_1t, fb.decode_mpps_1t,
              fb.encode_mpps_4t, fb.decode_mpps_4t, fb.bpp);

  // ---- JSON ---------------------------------------------------------------
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"smoke\":%s,"
               "\"rans\":{\"symbols\":%zu,\"entropy_bits\":%.4f,"
               "\"scalar_decode_msyms\":%.3f,\"interleaved_decode_msyms\":%.3f,"
               "\"interleaved_scalar_kernel_msyms\":%.3f,"
               "\"interleaved_encode_msyms\":%.3f,"
               "\"decode_speedup_interleaved_vs_scalar\":%.4f,"
               "\"avx2_available\":%s},",
               smoke ? "true" : "false", sym_count, table.entropy_bits(),
               msym / t_v1, msym / t_v2, msym / t_v2_scalar, msym / t_enc_v2,
               rans_speedup,
               entropy::detail::rans_interleaved_avx2_available() ? "true"
                                                                  : "false");
  std::fprintf(f, "\"dct\":{");
  for (int si = 0; si < 3; ++si) {
    std::fprintf(f,
                 "\"n%d\":{\"pairs_per_s\":%.1f,\"naive_pairs_per_s\":%.1f,"
                 "\"speedup\":%.4f}%s",
                 sizes[si], dct_blocks_per_s[si], naive_blocks_per_s[si],
                 dct_blocks_per_s[si] / naive_blocks_per_s[si],
                 si + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "},\"codecs\":{");
  const auto dump_codec = [&](const char* name, const CodecFigures& fig,
                              bool comma) {
    std::fprintf(f,
                 "\"%s\":{\"encode_mpps_1t\":%.4f,\"decode_mpps_1t\":%.4f,"
                 "\"encode_mpps_4t\":%.4f,\"decode_mpps_4t\":%.4f,"
                 "\"bpp\":%.4f}%s",
                 name, fig.encode_mpps_1t, fig.decode_mpps_1t,
                 fig.encode_mpps_4t, fig.decode_mpps_4t, fig.bpp,
                 comma ? "," : "");
  };
  dump_codec("jpeg", fj, true);
  dump_codec("bpg", fb, false);

  // Hardware counters around a 1-thread bpg decode burst (the stage the
  // block-parallel work targets); "unavailable" per counter when the kernel
  // forbids perf_event_open. Always carries the llc_miss key (ROADMAP 2).
  obs::PerfReading perf;
  {
    codec::Compressed comp = bpg.encode(img);
    obs::PerfCounters counters;
    obs::PerfScope scope(counters, perf);
    for (int r = 0; r < codec_reps; ++r) (void)bpg.decode(comp);
  }
  std::printf("hardware counters (1-thread bpg decode burst)\n  %s\n",
              perf.to_json().c_str());

  // Registry totals accumulated during the runs above: wavefront/block task
  // counts from the codecs plus the kern pool's steal counters.
  const obs::Registry::Snapshot reg = obs::Registry::global().snapshot();
  std::fprintf(f, "},\"perf\":%s,\"obs_totals\":{", perf.to_json().c_str());
  for (std::size_t i = 0; i < reg.counters.size(); ++i) {
    std::fprintf(f, "%s\"%s\":%llu", i == 0 ? "" : ",",
                 reg.counters[i].first.c_str(),
                 static_cast<unsigned long long>(reg.counters[i].second));
  }
  std::fprintf(f, "}}\n");
  std::fclose(f);
  std::printf("\nJSON report: %s\n", out_path.c_str());
  return 0;
}
