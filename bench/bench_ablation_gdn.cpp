// Ablation — GDN vs leaky-ReLU activations in the neural-codec baselines.
//
// The published codecs (Ballé, MBT, Cheng) all use generalized divisive
// normalization between conv stages; our lite baselines default to leaky
// ReLU for CPU speed. This bench pretrains both variants identically and
// compares reconstruction error and rate at matched quality — quantifying
// what the activation substitution costs (DESIGN.md §2).
#include <cstdio>

#include "bench/common.hpp"
#include "neural_codec/conv_autoencoder.hpp"

int main() {
  using namespace easz;
  bench::print_header(
      "Ablation — GDN vs leaky-ReLU in the MBT-lite baseline",
      "GDN is the published codecs' activation; the lite default is leaky "
      "ReLU. Matched pretraining quantifies the substitution");

  neural_codec::ConvCodecSpec relu_spec = neural_codec::mbt_lite_spec();
  neural_codec::ConvCodecSpec gdn_spec = neural_codec::mbt_lite_spec();
  gdn_spec.use_gdn = true;

  neural_codec::ConvAutoencoderCodec relu_codec(relu_spec, 60, 161);
  neural_codec::ConvAutoencoderCodec gdn_codec(gdn_spec, 60, 161);
  relu_codec.pretrain(80);
  gdn_codec.pretrain(80);

  util::Pcg32 rng(162);
  util::Table t({"image", "relu bpp", "relu MSE", "gdn bpp", "gdn MSE"});
  double relu_mse_sum = 0;
  double gdn_mse_sum = 0;
  for (int i = 0; i < 3; ++i) {
    const image::Image img = data::synth_photo(64, 64, rng);
    const codec::Compressed cr = relu_codec.encode(img);
    const codec::Compressed cg = gdn_codec.encode(img);
    const double mr = metrics::mse(img, relu_codec.decode(cr));
    const double mg = metrics::mse(img, gdn_codec.decode(cg));
    relu_mse_sum += mr;
    gdn_mse_sum += mg;
    t.add_row({std::to_string(i), util::Table::num(cr.bpp(), 3),
               util::Table::num(mr, 5), util::Table::num(cg.bpp(), 3),
               util::Table::num(mg, 5)});
  }
  t.print();
  std::printf(
      "Shape check: GDN dominates at equal training (lower rate AND lower\n"
      "MSE: relu avg %.5f vs gdn %.5f) — consistent with the published\n"
      "codecs' choice of activation. The leaky-ReLU default in the lite\n"
      "baselines trades this quality for CPU speed; the figure-level\n"
      "comparisons are unaffected since all codec variants share it.\n",
      relu_mse_sum / 3, gdn_mse_sum / 3);
  return 0;
}
