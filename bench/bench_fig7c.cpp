// Fig. 7(c) reproduction: erase block size (b = 1, 2, 4) and erase ratio
// (12.5 % - 50 %) vs reconstruction MSE and inference time.
//
// Paper: smaller blocks reconstruct better (higher local correlation);
// b=2 is ~6x faster than b=1 with only slightly worse MSE; doubling b from
// 2 to 4 roughly doubles speed and MSE. MSE rises with erase ratio.
#include <cstdio>

#include "bench/common.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace easz;
  bench::print_header(
      "Fig. 7(c) — patch size & erase ratio vs MSE and inference time",
      "MSE rises with erase ratio; smaller b lower MSE but slower "
      "(b=1 ~6x slower than b=2)");

  // Same pixel footprint (16x16 patches), different sub-patch sizes.
  struct Config {
    int b;
    core::PatchifyConfig cfg;
    bench::BenchModel model;
  };
  std::vector<Config> configs;
  configs.push_back({1, {.patch = 8, .sub_patch = 1},
                     bench::make_trained_model({.patch = 8, .sub_patch = 1},
                                               48, 120, 73)});
  configs.push_back({2, {.patch = 16, .sub_patch = 2},
                     bench::make_trained_model({.patch = 16, .sub_patch = 2},
                                               48, 120, 74)});
  configs.push_back({4, {.patch = 32, .sub_patch = 4},
                     bench::make_trained_model({.patch = 32, .sub_patch = 4},
                                               48, 120, 75)});

  const data::DatasetSpec spec = data::kodak_like_spec(0.2F);
  image::Image img = data::load_image(spec, 2);
  img = img.crop(0, 0, img.width() / 32 * 32, img.height() / 32 * 32);

  util::Pcg32 mask_rng(76);
  util::Table t({"erase ratio", "b", "recon MSE", "infer time s"});
  for (const int t8 : {1, 2, 3, 4}) {  // T of grid 8 -> 12.5..50 %
    for (auto& c : configs) {
      const core::EraseMask mask =
          core::make_row_conditional_mask(8, t8, mask_rng);
      const tensor::Tensor tokens = core::image_to_tokens(img, c.cfg);
      util::Stopwatch watch;
      const tensor::Tensor recon = c.model.model->reconstruct(tokens, mask);
      const double seconds = watch.elapsed_seconds();
      const image::Image out = core::tokens_to_image(
          recon, img.width(), img.height(), 3, c.cfg);
      t.add_row({util::Table::num(t8 / 8.0 * 100.0, 1) + " %",
                 std::to_string(c.b),
                 util::Table::num(metrics::mse(img, out), 6),
                 util::Table::num(seconds, 3)});
    }
  }
  t.print();
  std::printf(
      "Shape check: time(b=1) >> time(b=2) > time(b=4) and, within a b, MSE\n"
      "rises with the erase ratio. The paper additionally finds MSE(b=1)\n"
      "lowest; with this bench's short CPU training budget b=2 edges out\n"
      "b=1 (3-dim tokens train slowly), while b=4's penalty matches.\n");
  return 0;
}
