// Fig. 8 reproduction: end-to-end compression performance.
//  (a-c) Brisque / Pi / Tres vs BPP for JPEG, JPEG+Easz ("Easz"), MBT, Cheng
//  (d)   end-to-end latency vs BPP on the TX2->server testbed
//
// Paper: Easz lifts JPEG to be competitive with the neural codecs on all
// three perceptual metrics, while its end-to-end latency (~2.6 s average) is
// ~89 % below MBT/Cheng's.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/jpeg_like.hpp"
#include "metrics/noref.hpp"
#include "neural_codec/conv_autoencoder.hpp"
#include "testbed/scenario.hpp"

namespace {

using namespace easz;

struct Point {
  double bpp, brisque, pi, tres;
};

Point measure(const image::Image& ref, const image::Image& out, double bytes) {
  return {bytes * 8.0 / (static_cast<double>(ref.width()) * ref.height()),
          metrics::brisque_proxy(out), metrics::pi_proxy(out),
          metrics::tres_proxy(out)};
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 8 — end-to-end rate-quality and latency",
      "(a) JPEG+Easz beats MBT/Cheng on Brisque; (b) matches on Pi; (c) "
      "between MBT and Cheng on Tres; (d) ~89 % lower latency than MBT/Cheng");

  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 2};
  const bench::BenchModel bm = bench::make_trained_model(cfg, 64, 200, 111);
  util::Pcg32 mask_rng(112);
  const core::EraseMask mask = core::make_row_conditional_mask(8, 2, mask_rng);

  const data::DatasetSpec spec = data::kodak_like_spec(0.2F);
  image::Image img = data::load_image(spec, 3);
  img = img.crop(0, 0, img.width() / 16 * 16, img.height() / 16 * 16);

  codec::JpegLikeCodec jpeg(50);
  neural_codec::ConvAutoencoderCodec& mbt = neural_codec::shared_mbt_lite();
  neural_codec::ConvAutoencoderCodec& cheng = neural_codec::shared_cheng_lite();

  std::printf("\n(a-c) Rate-quality sweep (Brisque/Pi lower better, Tres higher):\n");
  util::Table t({"method", "bpp", "Brisque", "Pi", "Tres"});

  for (const int q : {10, 25, 45, 70}) {
    jpeg.set_quality(q);
    const codec::Compressed c = jpeg.encode(img);
    const Point p = measure(img, jpeg.decode(c), static_cast<double>(c.bytes.size()));
    t.add_row({"JPEG q" + std::to_string(q), util::Table::num(p.bpp, 3),
               util::Table::num(p.brisque, 1), util::Table::num(p.pi, 2),
               util::Table::num(p.tres, 1)});
  }
  for (const int q : {15, 35, 60, 85}) {
    jpeg.set_quality(q);
    const image::Image squeezed = core::erase_and_squeeze(img, mask, cfg);
    const codec::Compressed payload = jpeg.encode(squeezed);
    const image::Image zero_filled = core::unsqueeze(
        jpeg.decode(payload), mask, cfg, img.width(), img.height());
    const tensor::Tensor recon =
        bm.model->reconstruct(core::image_to_tokens(zero_filled, cfg), mask);
    const image::Image out = core::deblock_erased(
        core::tokens_to_image(recon, img.width(), img.height(), 3, cfg), mask,
        cfg);
    const Point p = measure(
        img, out,
        static_cast<double>(payload.bytes.size() + mask.to_bytes().size()));
    t.add_row({"Easz(JPEG q" + std::to_string(q) + ")",
               util::Table::num(p.bpp, 3), util::Table::num(p.brisque, 1),
               util::Table::num(p.pi, 2), util::Table::num(p.tres, 1)});
  }
  for (auto* nn : {&mbt, &cheng}) {
    for (const int q : {25, 50, 75}) {
      nn->set_quality(q);
      const codec::Compressed c = nn->encode(img);
      const Point p =
          measure(img, nn->decode(c), static_cast<double>(c.bytes.size()));
      t.add_row({std::string(nn->name()) + " q" + std::to_string(q),
                 util::Table::num(p.bpp, 3), util::Table::num(p.brisque, 1),
                 util::Table::num(p.pi, 2), util::Table::num(p.tres, 1)});
    }
  }
  t.print();

  std::printf("\n(d) End-to-end latency vs bpp (512x768 via testbed, ms):\n");
  const testbed::Scenario scenario = testbed::paper_testbed();
  util::Pcg32 rng(113);
  core::ReconstructionModel paper_model(core::ReconModelConfig{}, rng);
  util::Table td({"bpp", "Easz", "MBT", "Cheng"});
  double easz_avg = 0.0;
  double nn_avg = 0.0;
  const std::vector<double> bpps = {0.1, 0.3, 0.5, 0.7, 0.9};
  for (const double bpp : bpps) {
    const double payload = bpp / 8.0 * 512 * 768;
    const double easz_ms =
        scenario.run_easz(jpeg, paper_model, 512, 768, 2, payload)
            .latency.end_to_end_s() * 1e3;
    const double mbt_ms =
        scenario.run_codec(mbt, 512, 768, payload).latency.end_to_end_s() * 1e3;
    const double cheng_ms =
        scenario.run_codec(cheng, 512, 768, payload).latency.end_to_end_s() *
        1e3;
    easz_avg += easz_ms / bpps.size();
    nn_avg += 0.5 * (mbt_ms + cheng_ms) / bpps.size();
    td.add_row({util::Table::num(bpp, 1), util::Table::num(easz_ms, 0),
                util::Table::num(mbt_ms, 0), util::Table::num(cheng_ms, 0)});
  }
  td.print();
  std::printf(
      "Average Easz latency: %.0f ms (paper 2568 ms); reduction vs MBT/Cheng "
      "mean: %.1f %% (paper 89 %%)\n",
      easz_avg, 100.0 * (1.0 - easz_avg / nn_avg));
  return 0;
}
