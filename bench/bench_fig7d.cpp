// Fig. 7(d) reproduction: fine-tuning the CIFAR-pretrained model on the
// target dataset reduces loss across patch sizes b in {1, 2, 4}.
//
// Paper: loss curves decrease over fine-tuning epochs for every patch size,
// with smaller b converging to lower loss.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace easz;
  bench::print_header(
      "Fig. 7(d) — fine-tuning on Kodak-like after CIFAR-like pretraining",
      "loss decreases with fine-tuning epochs for b = 1, 2, 4; smaller b "
      "reaches lower loss");

  const data::DatasetSpec spec = data::kodak_like_spec(0.15F);
  std::vector<image::Image> kodak;
  for (int i = 0; i < 4; ++i) kodak.push_back(data::load_image(spec, i));

  util::Table t({"fine-tune step", "loss b=1", "loss b=2", "loss b=4"});
  constexpr int kSteps = 60;
  constexpr int kLogEvery = 10;
  std::vector<std::vector<float>> histories;

  const core::PatchifyConfig cfgs[] = {{.patch = 8, .sub_patch = 1},
                                       {.patch = 16, .sub_patch = 2},
                                       {.patch = 32, .sub_patch = 4}};
  for (int k = 0; k < 3; ++k) {
    // "Pretraining": the shared CIFAR-like-trained bench model.
    bench::BenchModel bm = bench::make_trained_model(cfgs[k], 48, 100, 81 + k);
    // Fine-tune on the Kodak-like corpus.
    util::Pcg32 rng(91 + k);
    core::TrainerConfig tcfg;
    tcfg.batch_patches = 8;
    tcfg.use_perceptual = false;
    tcfg.lr = 1e-3F;
    core::Trainer trainer(*bm.model, tcfg, rng);
    const core::TrainStats stats = trainer.train(kodak, kSteps);
    histories.push_back(stats.loss_history);
  }

  for (int s = kLogEvery - 1; s < kSteps; s += kLogEvery) {
    // Smooth over the logging window to de-noise single-batch losses.
    std::array<double, 3> avg{};
    for (int k = 0; k < 3; ++k) {
      for (int j = s - kLogEvery + 1; j <= s; ++j) avg[k] += histories[k][j];
      avg[k] /= kLogEvery;
    }
    t.add_row({std::to_string(s + 1), util::Table::num(avg[0], 4),
               util::Table::num(avg[1], 4), util::Table::num(avg[2], 4)});
  }
  t.print();
  std::printf(
      "Shape check: every column decreases from the first to the last row\n"
      "(fine-tuning helps at all b), reproducing Fig. 7(d)'s trend.\n");
  return 0;
}
