// Ablation (DESIGN.md §5.4): one model for every erase ratio.
//
// The paper's agility claim rests on training with randomly drawn masks so a
// single model serves any ratio (no model switching on rate changes). This
// bench compares a ratio-specialised model (trained only at 25 %) against
// the shared model (trained across 10-45 %) when both are evaluated at
// several ratios.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace easz;
  bench::print_header(
      "Ablation — shared any-ratio model vs ratio-specialised model",
      "random-mask training generalises: the shared model stays close to the "
      "specialist at its home ratio and beats it off-ratio");

  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 2};
  // Specialist: trained only at T=2 (25 %). Shared: trained across ratios.
  const bench::BenchModel specialist =
      bench::make_trained_model(cfg, 48, 150, 141, 0.24F, 0.26F);
  const bench::BenchModel shared =
      bench::make_trained_model(cfg, 48, 150, 141, 0.10F, 0.45F);

  const data::DatasetSpec spec = data::kodak_like_spec(0.2F);
  image::Image img = data::load_image(spec, 5);
  img = img.crop(0, 0, img.width() / 16 * 16, img.height() / 16 * 16);
  const tensor::Tensor tokens = core::image_to_tokens(img, cfg);

  util::Pcg32 mask_rng(142);
  util::Table t({"erase ratio", "specialist (25% only) MSE", "shared MSE"});
  for (const int t8 : {1, 2, 3, 4}) {
    const core::EraseMask mask = core::make_row_conditional_mask(8, t8, mask_rng);
    const auto run = [&](const bench::BenchModel& m) {
      const tensor::Tensor recon = m.model->reconstruct(tokens, mask);
      const image::Image out = core::tokens_to_image(
          recon, img.width(), img.height(), 3, cfg);
      return metrics::mse(img, out);
    };
    t.add_row({util::Table::num(t8 / 8.0 * 100, 1) + " %",
               util::Table::num(run(specialist), 5),
               util::Table::num(run(shared), 5)});
  }
  t.print();
  std::printf(
      "Shape check: the shared model's MSE degrades gracefully across the\n"
      "whole ratio range — the agility property that lets Easz switch\n"
      "compression levels without switching models.\n");
  return 0;
}
