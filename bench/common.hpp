// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary prints (a) the workload it ran (including any
// resolution scaling applied to keep CPU runtimes sane) and (b) the paper's
// reported numbers next to ours, so EXPERIMENTS.md can be regenerated from
// bench output alone.
//
// SEEDING POLICY: construct every Pcg32 exactly once, OUTSIDE any loop
// whose iterations are meant to be compared or averaged, and let it
// advance across iterations. Re-seeding inside the loop hands every
// iteration the same leading stream, so "variance" across iterations
// collapses to re-measuring one workload — the reported spread (and any
// cross-config comparison) becomes meaningless. When a sweep needs
// per-config determinism instead (one model per config), derive the seed
// from the SWEEP INDEX, never from a config field that can collide
// (bench_ablation_patchify's `121 + c.n` once gave both n=16 configs
// identical training streams). Deliberate same-seed reuse to replay one
// workload under two implementations (bench_micro's rANS trio) is fine —
// that is reproduction, not variance measurement.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/deblock.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "data/datasets.hpp"
#include "data/synth.hpp"
#include "metrics/distortion.hpp"
#include "nn/serialize.hpp"
#include "util/table.hpp"

namespace easz::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Small-but-real reconstruction model used by the quality benches.
/// Pretrained on CIFAR-like synthetic content (paper §IV-A pretrains on
/// CIFAR-10), deterministically per seed.
struct BenchModel {
  core::ReconModelConfig config;
  std::unique_ptr<core::ReconstructionModel> model;
};

inline BenchModel make_trained_model(core::PatchifyConfig patchify,
                                     int d_model, int steps,
                                     std::uint64_t seed = 11,
                                     float min_ratio = 0.1F,
                                     float max_ratio = 0.45F) {
  BenchModel bm;
  bm.config.patchify = patchify;
  bm.config.channels = 3;
  bm.config.d_model = d_model;
  bm.config.num_heads = 4;
  bm.config.ffn_hidden = d_model * 2;
  util::Pcg32 rng(seed);
  bm.model = std::make_unique<core::ReconstructionModel>(bm.config, rng);

  // A long-pretrained checkpoint (tools/easz_pretrain) supersedes quick
  // training when present and the architecture matches — the paper's
  // offline-pretraining phase. Only the canonical p16/b2/d64 model ships.
  if (patchify.patch == 16 && patchify.sub_patch == 2 && d_model == 64) {
    for (const char* path : {"assets/recon_p16_b2_d64.ckpt",
                             "../assets/recon_p16_b2_d64.ckpt"}) {
      try {
        auto params = bm.model->parameters();
        nn::load_parameters(params, path);
        std::printf("[bench] loaded pretrained checkpoint %s\n", path);
        return bm;
      } catch (const std::exception&) {
        // fall through to quick training
      }
    }
  }

  core::TrainerConfig tcfg;
  tcfg.batch_patches = 8;
  tcfg.use_perceptual = false;  // L1-only keeps bench startup fast
  tcfg.lr = 1.5e-3F;
  tcfg.min_erase_ratio = min_ratio;
  tcfg.max_erase_ratio = max_ratio;
  core::Trainer trainer(*bm.model, tcfg, rng);

  // Training corpus: mixed content matching the evaluation sets (photos,
  // high-frequency textures, hard-edged shapes), CIFAR-patch sized.
  std::vector<image::Image> corpus;
  util::Pcg32 data_rng(seed ^ 0xDA7A);
  const int side = patchify.patch * 2;
  for (int i = 0; i < 12; ++i) {
    if (i % 4 == 3) {
      corpus.push_back(data::synth_texture(side, side, data_rng));
    } else if (i % 4 == 2) {
      corpus.push_back(data::synth_cartoon(side, side, data_rng));
    } else {
      corpus.push_back(data::synth_photo(side, side, data_rng));
    }
  }
  trainer.train(corpus, steps);
  return bm;
}

/// Compressed size of an image under a codec, in bytes.
inline double payload_bytes(const codec::ImageCodec& codec,
                            const image::Image& img) {
  return static_cast<double>(codec.encode(img).bytes.size());
}

}  // namespace easz::bench
