// Fig. 6 reproduction: efficiency on the Jetson TX2.
//  (a) end-to-end latency breakdown: Easz vs MBT vs Cheng
//  (b) encode power (CPU + GPU watts)
//  (c) encode memory footprint (GB)
//
// Paper: Easz's erase-and-squeeze is 0.7 % of end-to-end latency and
// reconstruction 74 %; Easz cuts total power 71.3 % / 59.9 % vs MBT / Cheng
// with zero GPU power, and memory 45.8 % / 47.1 % (1.05 vs 1.93 / 1.98 GB).
#include <cstdio>

#include "bench/common.hpp"
#include "codec/jpeg_like.hpp"
#include "neural_codec/conv_autoencoder.hpp"
#include "testbed/scenario.hpp"

int main() {
  using namespace easz;
  bench::print_header(
      "Fig. 6 — efficiency on the TX2 (512x768, ~0.4 bpp payloads)",
      "(a) E&S 0.7 % of latency, recon 74 %; (b) -71.3 %/-59.9 % power, no "
      "edge GPU power; (c) 1.05 vs 1.93/1.98 GB");

  const testbed::Scenario scenario = testbed::paper_testbed();
  constexpr int kW = 512;
  constexpr int kH = 768;
  constexpr double kPayload = 0.4 / 8.0 * kW * kH;  // 0.4 bpp

  util::Pcg32 rng(61);
  core::ReconstructionModel model(core::ReconModelConfig{}, rng);
  codec::JpegLikeCodec jpeg(60);
  neural_codec::ConvAutoencoderCodec mbt(neural_codec::mbt_lite_spec(), 50, 62);
  neural_codec::ConvAutoencoderCodec cheng(neural_codec::cheng_lite_spec(), 50, 63);

  const testbed::PipelineCost easz =
      scenario.run_easz(jpeg, model, kW, kH, /*erased_per_row=*/2, kPayload);
  const testbed::PipelineCost c_mbt = scenario.run_codec(mbt, kW, kH, kPayload);
  const testbed::PipelineCost c_cheng =
      scenario.run_codec(cheng, kW, kH, kPayload);

  const auto ms = [](double s) { return util::Table::num(s * 1e3, 0); };

  std::printf("\n(a) Latency breakdown (ms):\n");
  util::Table ta({"stage", "Easz", "MBT", "Cheng"});
  ta.add_row({"erase&squeeze", ms(easz.latency.erase_squeeze_s), "-", "-"});
  ta.add_row({"compress (edge)", ms(easz.latency.encode_s),
              ms(c_mbt.latency.encode_s), ms(c_cheng.latency.encode_s)});
  ta.add_row({"transmit", ms(easz.latency.transmit_s),
              ms(c_mbt.latency.transmit_s), ms(c_cheng.latency.transmit_s)});
  ta.add_row({"decompress (server)", ms(easz.latency.decode_s),
              ms(c_mbt.latency.decode_s), ms(c_cheng.latency.decode_s)});
  ta.add_row({"reconstruct (server)", ms(easz.latency.reconstruct_s), "-", "-"});
  ta.add_row({"total", ms(easz.latency.end_to_end_s()),
              ms(c_mbt.latency.end_to_end_s()),
              ms(c_cheng.latency.end_to_end_s())});
  ta.print();
  std::printf(
      "  E&S share: %.1f %% of Easz total (paper 0.7 %%); recon share: %.1f %% "
      "(paper 74 %%)\n",
      100.0 * easz.latency.erase_squeeze_s / easz.latency.end_to_end_s(),
      100.0 * easz.latency.reconstruct_s / easz.latency.end_to_end_s());

  std::printf("\n(b) Edge encode power (W):\n");
  util::Table tb({"method", "CPU W", "GPU W", "total W"});
  const auto add_power = [&](const char* name, const testbed::PipelineCost& c) {
    tb.add_row({name, util::Table::num(c.edge.cpu_power_w, 2),
                util::Table::num(c.edge.gpu_power_w, 2),
                util::Table::num(c.edge.total_power_w(), 2)});
  };
  add_power("Easz", easz);
  add_power("MBT", c_mbt);
  add_power("Cheng", c_cheng);
  tb.print();
  std::printf(
      "  Power reduction vs MBT: %.1f %% (paper 71.3 %%), vs Cheng: %.1f %% "
      "(paper 59.9 %%)\n",
      100.0 * (1.0 - easz.edge.total_power_w() / c_mbt.edge.total_power_w()),
      100.0 * (1.0 - easz.edge.total_power_w() / c_cheng.edge.total_power_w()));

  std::printf("\n(c) Edge encode memory (GB):\n");
  util::Table tc({"method", "GB (paper)"});
  tc.add_row({"Easz", util::Table::num(easz.edge.memory_bytes / 1e9, 2) + " (1.05)"});
  tc.add_row({"MBT", util::Table::num(c_mbt.edge.memory_bytes / 1e9, 2) + " (1.93)"});
  tc.add_row({"Cheng", util::Table::num(c_cheng.edge.memory_bytes / 1e9, 2) + " (1.98)"});
  tc.print();
  return 0;
}
