// Fig. 1 reproduction: NN compressors on a Jetson TX2 — transmission vs
// model-load vs encode latency for a 512x768 image.
//
// The four baselines are priced through the analytic testbed. Model bytes
// and per-pixel encode FLOPs approximate the published architectures;
// `load_init_s` captures framework graph-building time, which dominates the
// paper's load numbers for the heavier models (11.6 s for Cheng-anchor).
#include <cstdio>

#include "bench/common.hpp"
#include "testbed/scenario.hpp"

namespace {

struct Fig1Entry {
  const char* name;
  double model_bytes;
  double encode_flops_per_px;
  double load_init_s;
  // Paper's reported milliseconds (transmission, load, encode).
  double paper_transmit_ms;
  double paper_load_ms;
  double paper_encode_ms;
};

// A stand-in codec description so Scenario::run_codec can price it without
// instantiating real networks.
class AnalyticCodec final : public easz::codec::ImageCodec {
 public:
  AnalyticCodec(const Fig1Entry& e) : e_(e) {}
  [[nodiscard]] std::string name() const override { return e_.name; }
  [[nodiscard]] easz::codec::Compressed encode(
      const easz::image::Image&) const override {
    throw std::logic_error("analytic only");
  }
  [[nodiscard]] easz::image::Image decode(
      const easz::codec::Compressed&) const override {
    throw std::logic_error("analytic only");
  }
  void set_quality(int) override {}
  [[nodiscard]] int quality() const override { return 50; }
  [[nodiscard]] double encode_flops(int w, int h) const override {
    return e_.encode_flops_per_px * w * h;
  }
  [[nodiscard]] double decode_flops(int w, int h) const override {
    return 0.8 * e_.encode_flops_per_px * w * h;
  }
  [[nodiscard]] std::size_t model_bytes() const override {
    return static_cast<std::size_t>(e_.model_bytes);
  }

 private:
  Fig1Entry e_;
};

}  // namespace

int main() {
  using namespace easz;
  bench::print_header(
      "Fig. 1 — NN compressors on the edge (512x768 image, Jetson TX2)",
      "loading + encoding take seconds (up to 18 s) while transmission is "
      "~0.15 s; the gap motivates edge-compute-free compression");

  const testbed::Scenario scenario = testbed::paper_testbed();
  constexpr int kW = 512;
  constexpr int kH = 768;
  // Paper transmissions are ~60 KB payloads (≈1.2 bpp across methods).
  constexpr double kPayload = 60e3;

  const Fig1Entry entries[] = {
      // name, model MB, flops/px, init_s, paper(tx, load, enc)
      {"balle2017 (factorized)", 20e6, 11e3, 0.02, 151, 286, 374},
      {"balle2018 (hyperprior)", 40e6, 13e3, 0.02, 162, 552, 413},
      {"minnen2018 (MBT)", 98e6, 450e3, 0.05, 163, 1361, 17952},
      {"cheng2020 (anchor)", 120e6, 500e3, 10.0, 152, 11600, 18015},
  };

  util::Table table({"method", "transmit ms (paper)", "load ms (paper)",
                     "encode ms (paper)"});
  for (const auto& e : entries) {
    AnalyticCodec codec(e);
    const testbed::PipelineCost c = scenario.run_codec(
        codec, kW, kH, kPayload, {.load_init_s = e.load_init_s});
    table.add_row(
        {e.name,
         util::Table::num(c.latency.transmit_s * 1e3, 0) + " (" +
             util::Table::num(e.paper_transmit_ms, 0) + ")",
         util::Table::num(c.latency.model_load_s * 1e3, 0) + " (" +
             util::Table::num(e.paper_load_ms, 0) + ")",
         util::Table::num(c.latency.encode_s * 1e3, 0) + " (" +
             util::Table::num(e.paper_encode_ms, 0) + ")"});
  }
  table.print();
  std::printf(
      "Shape check: encode and load exceed transmission by 1-2 orders of\n"
      "magnitude for the autoregressive models, reproducing the paper's gap.\n");
  return 0;
}
