// Table II reproduction: Easz as an enhancement layer for existing
// compressors — JPEG, BPG, MBT, Cheng, each alone vs +Easz, on Kodak-like
// (~0.4 bpp) and CLIC-like (~0.3 bpp) data.
//
// Paper: +Easz consistently improves the perceptual metrics (Brisque and Pi
// down, Tres up) at equal-or-lower BPP for every base codec on both sets.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "codec/bpg_like.hpp"
#include "codec/jpeg_like.hpp"
#include "metrics/noref.hpp"
#include "neural_codec/conv_autoencoder.hpp"

namespace {

using namespace easz;

struct Scores {
  double bpp = 0.0;
  double brisque = 0.0;
  double pi = 0.0;
  double tres = 0.0;
};

Scores score_image(const image::Image& ref, const image::Image& out,
                   double bits) {
  Scores s;
  s.bpp = bits / (static_cast<double>(ref.width()) * ref.height());
  s.brisque = metrics::brisque_proxy(out);
  s.pi = metrics::pi_proxy(out);
  s.tres = metrics::tres_proxy(out);
  return s;
}

// Finds the codec quality whose plain-encoding bpp is closest to target.
int quality_for_bpp(codec::ImageCodec& codec, const image::Image& img,
                    double target_bpp) {
  int best_q = 50;
  double best_err = 1e18;
  for (const int q : {3, 6, 10, 16, 25, 40, 60, 80}) {
    codec.set_quality(q);
    const double bpp = codec.encode(img).bpp();
    const double err = std::fabs(bpp - target_bpp);
    if (err < best_err) {
      best_err = err;
      best_q = q;
    }
  }
  return best_q;
}

}  // namespace

int main() {
  bench::print_header(
      "Table II — enhancement of existing compressors (Kodak-like ~0.4 bpp, "
      "CLIC-like ~0.3 bpp)",
      "+Easz improves Brisque/Pi/Tres at comparable BPP for JPEG, BPG, MBT "
      "and Cheng on both datasets");

  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 2};
  const bench::BenchModel bm = bench::make_trained_model(cfg, 64, 200, 101);
  util::Pcg32 mask_rng(102);
  const core::EraseMask mask = core::make_row_conditional_mask(8, 2, mask_rng);

  // Base codecs. The neural pair is pretrained once (deterministic).
  codec::JpegLikeCodec jpeg(50);
  codec::BpgLikeCodec bpg(20);
  neural_codec::ConvAutoencoderCodec& mbt = neural_codec::shared_mbt_lite();
  neural_codec::ConvAutoencoderCodec& cheng = neural_codec::shared_cheng_lite();
  std::vector<std::pair<const char*, codec::ImageCodec*>> codecs = {
      {"JPEG", &jpeg}, {"BPG", &bpg}, {"MBT", &mbt}, {"Cheng", &cheng}};

  struct DatasetRun {
    const char* name;
    data::DatasetSpec spec;
    double target_bpp;
    // Paper row (org -> +Easz) for Brisque on this dataset, for the header.
    const char* paper_note;
  };
  const DatasetRun runs[] = {
      {"Kodak-like", data::kodak_like_spec(0.2F), 0.4,
       "paper Brisque org->+Easz: JPEG 43.1->22.3, BPG 30.7->23.3, "
       "MBT 28.1->18.6, Cheng 29.2->20.5"},
      {"CLIC-like", data::clic_like_spec(0.15F), 0.3,
       "paper Brisque org->+Easz: JPEG 60.5->23.6, BPG 40.0->25.3, "
       "MBT 32.2->18.4, Cheng 35.4->21.6"},
  };

  for (const auto& run : runs) {
    std::printf("\n%s (target %.1f bpp). %s\n", run.name, run.target_bpp,
                run.paper_note);
    util::Table t({"codec", "org bpp", "org Brisque", "org Pi", "org Tres",
                   "+Easz bpp", "+Easz Brisque", "+Easz Pi", "+Easz Tres"});

    const int image_count = 2;
    for (auto& [name, codec] : codecs) {
      Scores org_acc;
      Scores easz_acc;
      for (int i = 0; i < image_count; ++i) {
        image::Image img = data::load_image(run.spec, i);
        img = img.crop(0, 0, img.width() / 16 * 16, img.height() / 16 * 16);
        const int q = quality_for_bpp(*codec, img, run.target_bpp);
        codec->set_quality(q);

        // Plain codec.
        const codec::Compressed plain = codec->encode(img);
        const Scores so = score_image(img, codec->decode(plain),
                                      8.0 * plain.bytes.size());
        // +Easz at slightly higher inner quality (squeezed input is smaller,
        // so the bit budget allows it — the paper holds BPP roughly equal).
        const image::Image squeezed = core::erase_and_squeeze(img, mask, cfg);
        const codec::Compressed payload = codec->encode(squeezed);
        const image::Image decoded = codec->decode(payload);
        const image::Image zero_filled = core::unsqueeze(
            decoded, mask, cfg, img.width(), img.height());
        const tensor::Tensor recon =
            bm.model->reconstruct(core::image_to_tokens(zero_filled, cfg), mask);
        const image::Image out = core::deblock_erased(
            core::tokens_to_image(recon, img.width(), img.height(), 3, cfg),
            mask, cfg);
        const Scores se = score_image(
            img, out, 8.0 * (payload.bytes.size() + mask.to_bytes().size()));

        org_acc.bpp += so.bpp / image_count;
        org_acc.brisque += so.brisque / image_count;
        org_acc.pi += so.pi / image_count;
        org_acc.tres += so.tres / image_count;
        easz_acc.bpp += se.bpp / image_count;
        easz_acc.brisque += se.brisque / image_count;
        easz_acc.pi += se.pi / image_count;
        easz_acc.tres += se.tres / image_count;
      }
      t.add_row({name, util::Table::num(org_acc.bpp, 3),
                 util::Table::num(org_acc.brisque, 1),
                 util::Table::num(org_acc.pi, 2),
                 util::Table::num(org_acc.tres, 1),
                 util::Table::num(easz_acc.bpp, 3),
                 util::Table::num(easz_acc.brisque, 1),
                 util::Table::num(easz_acc.pi, 2),
                 util::Table::num(easz_acc.tres, 1)});
    }
    t.print();
  }
  std::printf(
      "Shape check: for every codec row, +Easz bpp <= org bpp (squeezed\n"
      "input) while Brisque/Pi improve (drop) and Tres improves (rises),\n"
      "matching Table II's direction on both datasets.\n");
  return 0;
}
