// Ablation (DESIGN.md §5.2): the two-stage patchify complexity claim.
//
// Paper §III-B: confining attention to n x n patches with b x b sub-patch
// tokens reduces attention complexity from O((hw)^2) to O(hw * n^2 / b^4) —
// 4096x fewer operations for a 256x256 image at n=32, b=4. This bench
// reports the analytic attention FLOPs and the measured reconstruction time
// across patch configurations.
#include <cstdio>

#include "bench/common.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace easz;
  bench::print_header(
      "Ablation — two-stage patchify complexity (paper §III-B analysis)",
      "n=32, b=4 reduces a 256x256 image's attention cost by ~4096x vs "
      "pixel-token attention; measured time tracks the analytic count");

  constexpr int kW = 96;   // scaled from 256 to keep the n-sweep quick
  constexpr int kH = 96;

  // Analytic attention term for the whole image: patches * tokens^2 * d.
  const auto attention_ops = [&](int n, int b, int d_model) {
    const double patches = static_cast<double>(kW) * kH / (n * n);
    const double tokens = static_cast<double>(n / b) * (n / b);
    return patches * tokens * tokens * d_model;
  };
  const double pixel_token_ops =
      static_cast<double>(kW) * kH * kW * kH * 48.0;  // one global attention

  util::Table t({"config", "attention ops", "vs pixel-token", "measured s"});
  struct Cfg {
    int n, b;
  };
  const Cfg cfgs[] = {Cfg{8, 1}, Cfg{16, 2}, Cfg{32, 4}, Cfg{16, 4}};
  for (std::size_t ci = 0; ci < std::size(cfgs); ++ci) {
    const Cfg c = cfgs[ci];
    const core::PatchifyConfig pc{.patch = c.n, .sub_patch = c.b};
    // Seed by sweep INDEX, not by c.n: the old `121 + c.n` collided for
    // the two n=16 configs, training them on identical streams and hiding
    // any b-dependence in the comparison (bench seeding policy,
    // bench/common.hpp).
    bench::BenchModel bm = bench::make_trained_model(
        pc, 48, 10, 121 + static_cast<std::uint64_t>(ci));
    const data::DatasetSpec spec = data::kodak_like_spec(0.25F);
    image::Image img = data::load_image(spec, 0).crop(0, 0, kW, kH);
    const core::EraseMask mask = core::make_diagonal_mask(pc.grid());
    const tensor::Tensor tokens = core::image_to_tokens(img, pc);
    util::Stopwatch watch;
    (void)bm.model->reconstruct(tokens, mask);
    const double ops = attention_ops(c.n, c.b, 48);
    t.add_row({"n=" + std::to_string(c.n) + " b=" + std::to_string(c.b),
               util::Table::num(ops, 0),
               util::Table::num(pixel_token_ops / ops, 0) + "x fewer",
               util::Table::num(watch.elapsed_seconds(), 3)});
  }
  t.print();
  std::printf(
      "Shape check: every two-stage config is orders of magnitude below the\n"
      "pixel-token attention cost, reproducing the paper's 4096x argument.\n");
  return 0;
}
