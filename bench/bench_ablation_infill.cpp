// Ablation (DESIGN.md §5.3/Fig. 2b): what fills the erased positions.
//
// Compares zero-fill (no reconstruction), nearest-neighbour fill (the
// paper's Fig. 2(b) alternative) and the transformer's zero-vector-infill
// reconstruction, at several erase ratios. The learned reconstruction must
// dominate both baselines for the paper's design to pay off.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/jpeg_like.hpp"
#include "metrics/noref.hpp"

int main() {
  using namespace easz;
  bench::print_header(
      "Ablation — erased-content infill strategies",
      "learned reconstruction dominates on perceptual quality (Brisque); "
      "neighbour fill is MSE-competitive but leaves blocky repeats");

  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 2};
  const bench::BenchModel bm = bench::make_trained_model(cfg, 64, 200, 131);

  // Mixed content: smooth photo (4), high-frequency texture (7), hard-edged
  // cartoon (6). Neighbour copying looks fine on the photo but fails on
  // texture phase and cartoon edges; the learned model must win on average.
  const data::DatasetSpec spec = data::kodak_like_spec(0.2F);
  std::vector<image::Image> images;
  for (const int idx : {4, 7, 6}) {
    image::Image img = data::load_image(spec, idx);
    images.push_back(img.crop(0, 0, img.width() / 16 * 16,
                              img.height() / 16 * 16));
  }

  codec::JpegLikeCodec jpeg(85);
  util::Pcg32 mask_rng(132);

  util::Table t({"erase ratio", "zero MSE", "neigh MSE", "model MSE",
                 "neigh Brisque", "model Brisque"});
  for (const int t8 : {1, 2, 3}) {
    const core::EraseMask mask = core::make_row_conditional_mask(8, t8, mask_rng);
    double zero_mse = 0;
    double neigh_mse = 0;
    double learned_mse = 0;
    double neigh_brisque = 0;
    double learned_brisque = 0;
    for (const auto& img : images) {
      const image::Image squeezed = core::erase_and_squeeze(img, mask, cfg);
      const codec::Compressed payload = jpeg.encode(squeezed);
      const image::Image decoded = jpeg.decode(payload);

      const image::Image zero_filled = core::unsqueeze(
          decoded, mask, cfg, img.width(), img.height());
      const image::Image neighbour = core::unsqueeze_neighbor_fill(
          decoded, mask, cfg, img.width(), img.height());
      const tensor::Tensor recon =
          bm.model->reconstruct(core::image_to_tokens(zero_filled, cfg), mask);
      const image::Image learned = core::deblock_erased(
          core::tokens_to_image(recon, img.width(), img.height(), 3, cfg),
          mask, cfg);
      zero_mse += metrics::mse(img, zero_filled) / images.size();
      neigh_mse += metrics::mse(img, neighbour) / images.size();
      learned_mse += metrics::mse(img, learned) / images.size();
      neigh_brisque += metrics::brisque_proxy(neighbour) / images.size();
      learned_brisque += metrics::brisque_proxy(learned) / images.size();
    }
    t.add_row({util::Table::num(t8 / 8.0 * 100, 1) + " %",
               util::Table::num(zero_mse, 5),
               util::Table::num(neigh_mse, 5),
               util::Table::num(learned_mse, 5),
               util::Table::num(neigh_brisque, 1),
               util::Table::num(learned_brisque, 1)});
  }
  t.print();
  std::printf(
      "Shape check: the learned model wins the perceptual axis (Brisque) at\n"
      "every ratio; neighbour fill is MSE-competitive at these small (2 px)\n"
      "cells but its copied blocks read as unnatural statistics.\n");
  return 0;
}
