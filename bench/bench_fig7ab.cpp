// Fig. 7(a)(b) reproduction: full-pipeline ablation of the erase strategy.
// Brisque-vs-BPP curves for JPEG (resp. BPG) alone, +Easz (proposed mask)
// and +random mask.
//
// Paper: the proposed mask achieves better (lower) Brisque at equal BPP than
// the random mask, and +Easz beats the plain codec at low rates.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/bpg_like.hpp"
#include "codec/jpeg_like.hpp"
#include "metrics/noref.hpp"

namespace {

using namespace easz;

struct CurvePoint {
  double bpp = 0.0;
  double brisque = 0.0;
};

// Runs the full pipeline (erase -> codec -> decode -> reconstruct) with the
// given mask and returns rate/quality. Mask side-channel bytes count toward
// the rate like the paper's 128-byte masks.
CurvePoint run_pipeline(const image::Image& img, codec::ImageCodec& codec,
                        const core::EraseMask& mask,
                        const core::PatchifyConfig& cfg,
                        const core::ReconstructionModel& model) {
  const image::Image squeezed = core::erase_and_squeeze(img, mask, cfg);
  const codec::Compressed payload = codec.encode(squeezed);
  const image::Image decoded = codec.decode(payload);
  const image::Image zero_filled = core::unsqueeze(
      decoded, mask, cfg, img.width(), img.height());
  const tensor::Tensor tokens = core::image_to_tokens(zero_filled, cfg);
  const tensor::Tensor recon = model.reconstruct(tokens, mask);
  const image::Image out = core::deblock_erased(
      core::tokens_to_image(recon, img.width(), img.height(), 3, cfg), mask,
      cfg);

  CurvePoint p;
  p.bpp = (static_cast<double>(payload.bytes.size()) + mask.to_bytes().size()) *
          8.0 / (static_cast<double>(img.width()) * img.height());
  p.brisque = metrics::brisque_proxy(out);
  return p;
}

CurvePoint run_plain(const image::Image& img, codec::ImageCodec& codec) {
  const codec::Compressed payload = codec.encode(img);
  CurvePoint p;
  p.bpp = payload.bpp();
  p.brisque = metrics::brisque_proxy(codec.decode(payload));
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 7(a)(b) — erase-strategy ablation over the full pipeline",
      "+Easz (proposed mask) reaches lower Brisque at equal BPP than +random "
      "and than the plain codec at low rates");

  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 2};
  const bench::BenchModel bm = bench::make_trained_model(cfg, 64, 200, 71);

  const data::DatasetSpec spec = data::kodak_like_spec(0.2F);
  image::Image img = data::load_image(spec, 1);
  img = img.crop(0, 0, img.width() / 16 * 16, img.height() / 16 * 16);

  util::Pcg32 mask_rng(72);
  const core::EraseMask proposed = core::make_row_conditional_mask(8, 2, mask_rng);
  const core::EraseMask random_mask = core::make_random_mask(8, 2, mask_rng);

  for (const char* codec_name : {"jpeg", "bpg"}) {
    auto codec = codec::make_classical_codec(codec_name, 50);
    std::printf("\n%s (Brisque lower = better):\n", codec_name);
    util::Table t({"quality", "plain bpp", "plain Brisque", "+Easz bpp",
                   "+Easz Brisque", "+random bpp", "+random Brisque"});
    const std::vector<int> qualities =
        codec_name[0] == 'j' ? std::vector<int>{15, 35, 60, 85}
                             : std::vector<int>{5, 10, 20, 35};
    for (const int q : qualities) {
      codec->set_quality(q);
      const CurvePoint plain = run_plain(img, *codec);
      const CurvePoint easz = run_pipeline(img, *codec, proposed, cfg, *bm.model);
      const CurvePoint rnd =
          run_pipeline(img, *codec, random_mask, cfg, *bm.model);
      t.add_row({std::to_string(q), util::Table::num(plain.bpp, 3),
                 util::Table::num(plain.brisque, 1),
                 util::Table::num(easz.bpp, 3), util::Table::num(easz.brisque, 1),
                 util::Table::num(rnd.bpp, 3), util::Table::num(rnd.brisque, 1)});
    }
    t.print();
  }
  std::printf(
      "Shape check: at matched quality the +Easz column spends fewer bits\n"
      "than plain (squeezed input) and scores better Brisque than +random.\n");
  return 0;
}
