// Server throughput: batched concurrent reconstruction vs single-thread
// sequential decode (ISSUE 1 acceptance bench).
//
// Workload: a fleet of small uploads sharing one deployment mask — the
// industrial-inspection shape, where cross-request batching pools many
// partial requests into full transformer batches. The sequential baseline
// decodes the same set on one thread via EaszPipeline::decode; the server
// runs `workers` threads with the result cache DISABLED so the comparison
// measures real reconstruction work, not memoisation. Output images are
// required to be byte-identical to the sequential decode.
//
// A second scenario exercises the multi-tenant scheduler: a mixed
// wildlife (weight 3) + industrial (weight 1) fleet replayed open-loop
// through submit_async, reporting per-tenant p50/p95 latency and
// rejected-request counters into the same JSON.
//
// A third section measures the observability substrate itself: the
// per-record cost of the lock-free stage histogram, and the end-to-end
// obs-on vs obs-off throughput delta of the server arm (best-of repeats).
// With --check-overhead the bench FAILS if the measured delta exceeds the
// documented 2% instrumentation budget (run in release CI only — debug
// builds and loaded machines are too noisy for a hard gate).
//
// A networked section runs the same fleet over real TCP: two replica
// servers behind the consistent-hash router on loopback, four socket
// clients, responses verified byte-for-byte against the sequential
// reference, and a second pass showing repeat keys landing as replica
// cache hits (Linux only; prints "unavailable" elsewhere).
//
// A fourth section measures the staged decode pipeline (DESIGN.md §9):
// depth-1 (near-lockstep stages) vs depth-N overlapped execution on the
// same fleet, per-stage occupancy and assemble-ring depth percentiles,
// per-stage LLC misses attributed action-by-action on a manually-stepped
// server, and an LLC-shaping A/B on the paper-scale d256 model comparing
// forward-stage misses per request with batch shaping on vs off. Outputs
// must stay byte-identical across every arm.
//
// Usage: bench_serve [out.json] [workers] [images] [--check-overhead]
//                    [--pipeline-depth N] [--pin-workers] [--llc BYTES]
// Emits a human table on stdout and a JSON report to out.json
// (default bench_serve.json).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "codec/jpeg_like.hpp"
#include "obs/histogram.hpp"
#include "obs/perf_counters.hpp"
#include "obs/registry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "testbed/loadgen.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace easz;
  bool check_overhead = false;
  bool pin_workers = false;
  int pipeline_depth = 2;
  std::size_t llc_override = 0;  // 0 = detect (sysfs/sysconf, else default)
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-overhead") == 0) {
      check_overhead = true;
    } else if (std::strcmp(argv[i], "--pin-workers") == 0) {
      pin_workers = true;
    } else if (std::strcmp(argv[i], "--pipeline-depth") == 0 && i + 1 < argc) {
      pipeline_depth = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--llc") == 0 && i + 1 < argc) {
      llc_override = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::string out_path =
      positional.size() > 0 ? positional[0] : "bench_serve.json";
  const int workers = positional.size() > 1 ? std::atoi(positional[1]) : 4;
  const int num_images = positional.size() > 2 ? std::atoi(positional[2]) : 48;

  bench::print_header(
      "bench_serve: concurrent batched server vs sequential decode",
      "the server side of asymmetric deployment must scale with cores and "
      "amortise transformer passes across requests");

  // Deterministic untrained model: reconstruction quality is irrelevant
  // here, only the forward-pass cost and bit-exactness are.
  core::ReconModelConfig mcfg;
  mcfg.patchify = {.patch = 16, .sub_patch = 4};
  mcfg.channels = 3;
  mcfg.d_model = 64;
  mcfg.num_heads = 4;
  mcfg.ffn_hidden = 128;
  util::Pcg32 rng(77);
  const core::ReconstructionModel model(mcfg, rng);

  codec::JpegLikeCodec jpeg(85);
  core::EaszConfig cfg;
  cfg.patchify = mcfg.patchify;
  cfg.erased_per_row = 1;
  cfg.mask_seed = 7;  // one deployment-wide mask: requests pool into batches
  const core::EaszPipeline pipeline(cfg, jpeg, &model);

  // Small frames (6 patches each): sequential forward passes are 6-patch,
  // the server's pooled ones are up to 32-patch.
  std::vector<core::EaszCompressed> requests;
  util::Pcg32 data_rng(1234);
  int total_patches = 0;
  for (int i = 0; i < num_images; ++i) {
    const image::Image img = data::synth_photo(48, 32, data_rng);
    requests.push_back(pipeline.encode(img));
    total_patches += (requests.back().padded_width / mcfg.patchify.patch) *
                     (requests.back().padded_height / mcfg.patchify.patch);
  }
  std::printf("workload: %d images, %d patches total, %d hardware threads\n",
              num_images, total_patches,
              static_cast<int>(std::thread::hardware_concurrency()));

  // ---- single-thread sequential baseline -------------------------------
  // Hardware counters ride along: this arm does the full decode +
  // reconstruct on the calling thread, so its LLC behaviour is the
  // per-request memory-hierarchy signature (counters are per-thread; the
  // server arm's work happens on workers where they cannot see it).
  std::vector<image::Image> reference;
  reference.reserve(requests.size());
  obs::PerfCounters perf_counters;
  obs::PerfReading perf;
  util::Stopwatch seq_watch;
  {
    obs::PerfScope perf_scope(perf_counters, perf);
    for (const core::EaszCompressed& c : requests) {
      reference.push_back(pipeline.decode(c));
    }
  }
  const double sequential_s = seq_watch.elapsed_seconds();

  // ---- batched concurrent server ---------------------------------------
  serve::ServerConfig scfg;
  scfg.workers = workers;
  scfg.max_queue = num_images;
  scfg.max_batch_patches = 32;
  scfg.cache_bytes = 0;  // measure reconstruction, not memoisation
  serve::ReconServer server(scfg, model);
  server.register_codec("jpeg", &jpeg);

  std::vector<std::future<serve::ServeResponse>> futures;
  futures.reserve(requests.size());
  util::Stopwatch srv_watch;
  for (const core::EaszCompressed& c : requests) {
    serve::ServeRequest req;
    req.compressed = c;
    req.codec = "jpeg";
    serve::SubmitResult res = server.submit(std::move(req));
    if (!res.accepted) {
      std::fprintf(stderr, "unexpected rejection\n");
      return 1;
    }
    futures.push_back(std::move(res.response));
  }
  std::vector<serve::ServeResponse> responses;
  responses.reserve(futures.size());
  for (std::future<serve::ServeResponse>& f : futures) {
    responses.push_back(f.get());
  }
  const double server_s = srv_watch.elapsed_seconds();  // before comparisons:
  bool identical = true;  // verification must not count against the server
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (responses[i].image->data() != reference[i].data()) identical = false;
  }
  const serve::ServerStatsSnapshot stats = server.stats();

  const double speedup = sequential_s / server_s;
  util::Table t({"arm", "wall s", "images/s", "patches/fwd"});
  // Sequential decode chunks per image, so its forward passes hold at most
  // one (here: small) image's patches.
  const double seq_patches_per_fwd =
      std::min<double>(core::EaszPipeline::kReconstructChunk,
                       static_cast<double>(total_patches) / num_images);
  t.add_row({"sequential 1-thread", util::Table::num(sequential_s, 3),
             util::Table::num(num_images / sequential_s, 2),
             util::Table::num(seq_patches_per_fwd, 1)});
  t.add_row({"server " + std::to_string(workers) + "-worker",
             util::Table::num(server_s, 3),
             util::Table::num(num_images / server_s, 2),
             util::Table::num(stats.mean_batch_size(), 1)});
  t.print();
  std::printf("speedup: %.2fx   outputs byte-identical: %s\n", speedup,
              identical ? "yes" : "NO");
  std::printf("%s", stats.to_string().c_str());

  char head[512];
  std::snprintf(
      head, sizeof(head),
      "{\"bench\":\"bench_serve\",\"images\":%d,\"patches\":%d,"
      "\"workers\":%d,\"hardware_threads\":%u,"
      "\"sequential_wall_s\":%.4f,\"sequential_images_per_s\":%.3f,"
      "\"server_wall_s\":%.4f,\"server_images_per_s\":%.3f,"
      "\"speedup\":%.3f,\"identical_output\":%s,\"server_stats\":",
      num_images, total_patches, workers,
      std::thread::hardware_concurrency(), sequential_s,
      num_images / sequential_s, server_s, num_images / server_s, speedup,
      identical ? "true" : "false");
  // ---- mixed two-tenant scenario (wildlife 3 : industrial 1) -----------
  // Open-loop async replay against a weighted multi-tenant server; the
  // wildlife fleet gets a rate cap so the report shows real rejected
  // counters next to per-tenant latency.
  serve::ServerConfig tcfg;
  tcfg.workers = workers;
  tcfg.max_queue = 16;
  tcfg.max_batch_patches = 32;
  tcfg.cache_bytes = 8ULL << 20;
  tcfg.cache_shards = 4;
  tcfg.backpressure = serve::BackpressurePolicy::kReject;
  tcfg.tenants = {
      // The burst-happy fleet gets a token bucket: an as-fast-as-possible
      // replay blows through the burst allowance, so shed_rate_limited is
      // exercised alongside queue-full drops.
      serve::TenantConfig{.name = "wildlife", .weight = 3,
                          .rate_per_s = 200.0, .burst = 12.0},
      serve::TenantConfig{.name = "industrial", .weight = 1},
  };
  serve::ReconServer tenant_server(tcfg, model);
  tenant_server.register_codec("jpeg", &jpeg);

  testbed::LoadTrace mixed;
  mixed.name = "two_tenant_mix";
  {
    const testbed::LoadTrace wildlife = testbed::make_wildlife_burst_trace(
        model, jpeg, /*cameras=*/4, /*bursts=*/2, /*frames_per_burst=*/4);
    const testbed::LoadTrace industrial =
        testbed::make_industrial_stream_trace(model, jpeg, /*stations=*/4,
                                              /*frames_per_station=*/6);
    // Keep the LoadTrace invariant intact in the merged trace: originals
    // are concatenated and each copied event's image_index is rebased.
    mixed.originals = wildlife.originals;
    mixed.originals.insert(mixed.originals.end(),
                           industrial.originals.begin(),
                           industrial.originals.end());
    mixed.events = wildlife.events;
    for (const testbed::LoadEvent& ev : industrial.events) {
      testbed::LoadEvent shifted = ev;
      shifted.image_index += wildlife.originals.size();
      mixed.events.push_back(std::move(shifted));
    }
    std::stable_sort(mixed.events.begin(), mixed.events.end(),
                     [](const testbed::LoadEvent& a,
                        const testbed::LoadEvent& b) {
                       return a.arrival_s < b.arrival_s;
                     });
  }
  testbed::ReplayOptions topts;
  topts.async = true;  // open-loop: submit_async callbacks, no futures held
  const testbed::ReplayReport tenant_report =
      testbed::replay_trace(mixed, tenant_server, topts);

  std::printf("\ntwo-tenant mix (wildlife w3, industrial w1, async): "
              "%d done, %d dropped, %d failed in %.3f s\n",
              tenant_report.completed, tenant_report.rejected,
              tenant_report.failed, tenant_report.wall_s);
  util::Table tt({"tenant", "done", "drop", "fail", "p50 ms", "p95 ms"});
  for (const testbed::ReplayReport::TenantOutcome& to : tenant_report.tenants) {
    tt.add_row({to.tenant, std::to_string(to.completed),
                std::to_string(to.rejected), std::to_string(to.failed),
                util::Table::num(to.latency_p50_s * 1e3, 1),
                util::Table::num(to.latency_p95_s * 1e3, 1)});
  }
  tt.print();

  // ---- networked tier: loopback sockets through the router -------------
  // The same fleet, but over real TCP: two replica servers behind a
  // consistent-hash router, a socket client per simulated camera, and the
  // responses checked byte-for-byte against the sequential reference. A
  // second identical pass shows cache affinity: every repeat key re-routes
  // to the replica whose result cache already holds it.
  bool net_identical = true;
  std::string networked_json =
      ",\"networked\":{\"available\":false}";
  try {
    serve::ServerConfig ncfg = scfg;
    ncfg.cache_bytes = 8ULL << 20;  // affinity pass needs a live cache
    serve::ReconServer replica0(ncfg, model);
    serve::ReconServer replica1(ncfg, model);
    replica0.register_codec("jpeg", &jpeg);
    replica1.register_codec("jpeg", &jpeg);
    serve::ServeTransport transport0(replica0, serve::TransportConfig{});
    serve::ServeTransport transport1(replica1, serve::TransportConfig{});
    serve::RouterConfig rcfg;
    rcfg.replicas = {{"127.0.0.1", transport0.port()},
                     {"127.0.0.1", transport1.port()}};
    serve::ReplicaRouter router(rcfg);

    testbed::LoadTrace net_trace;
    net_trace.name = "networked_fleet";
    for (int i = 0; i < num_images; ++i) {
      testbed::LoadEvent ev;
      ev.client_id = i % 4;  // 4 socket clients, closed-loop
      ev.image_index = static_cast<std::size_t>(i);
      ev.request.compressed = requests[i];
      ev.request.codec = "jpeg";
      net_trace.events.push_back(std::move(ev));
    }

    testbed::SocketReplayOptions nopts;
    nopts.port = router.port();
    nopts.on_response = [&](const testbed::LoadEvent& ev,
                            const serve::wire::WireResponse& resp) {
      if (resp.status != serve::wire::ResponseStatus::kOk) return;
      const std::vector<float>& want = reference[ev.image_index].data();
      if (resp.pixels.size() != want.size() * sizeof(float) ||
          std::memcmp(resp.pixels.data(), want.data(),
                      resp.pixels.size()) != 0) {
        net_identical = false;
      }
    };
    const testbed::ReplayReport pass1 =
        testbed::replay_trace_sockets(net_trace, nopts);
    const testbed::ReplayReport pass2 =
        testbed::replay_trace_sockets(net_trace, nopts);

    const std::uint64_t affinity_hits =
        replica0.stats().cache_hits + replica1.stats().cache_hits;
    std::printf(
        "\nnetworked (2 replicas behind easz_router, 4 socket clients): "
        "pass1 %d done in %.3f s (%.1f req/s), pass2 %d done, "
        "%llu/%d repeat keys were replica-cache hits, byte-identical: %s\n",
        pass1.completed, pass1.wall_s, pass1.throughput_rps, pass2.completed,
        static_cast<unsigned long long>(affinity_hits), num_images,
        net_identical ? "yes" : "NO");
    util::Table nt({"replica", "forwarded", "responses", "failed", "p50 ms",
                    "p95 ms"});
    std::string per_replica_json;
    for (int r = 0; r < 2; ++r) {
      const serve::ReplicaStats rs = router.replica_stats(r);
      nt.add_row({std::to_string(r), std::to_string(rs.forwarded),
                  std::to_string(rs.responses), std::to_string(rs.failed),
                  util::Table::num(rs.latency.quantile(50.0) * 1e3, 2),
                  util::Table::num(rs.latency.quantile(95.0) * 1e3, 2)});
      char rj[192];
      std::snprintf(rj, sizeof(rj),
                    "%s{\"forwarded\":%llu,\"responses\":%llu,"
                    "\"failed\":%llu,\"p50_s\":%.6f,\"p95_s\":%.6f}",
                    r == 0 ? "" : ",",
                    static_cast<unsigned long long>(rs.forwarded),
                    static_cast<unsigned long long>(rs.responses),
                    static_cast<unsigned long long>(rs.failed),
                    rs.latency.quantile(50.0), rs.latency.quantile(95.0));
      per_replica_json += rj;
    }
    nt.print();

    char nj[512];
    std::snprintf(
        nj, sizeof(nj),
        ",\"networked\":{\"available\":true,\"replicas\":2,"
        "\"completed\":%d,\"failed\":%d,\"wall_s\":%.4f,"
        "\"throughput_rps\":%.2f,\"affinity_cache_hits\":%llu,"
        "\"identical_output\":%s,\"per_replica\":[",
        pass1.completed, pass1.failed, pass1.wall_s, pass1.throughput_rps,
        static_cast<unsigned long long>(affinity_hits),
        net_identical ? "true" : "false");
    networked_json = std::string(nj) + per_replica_json + "]}";

    router.stop();
    transport0.stop();
    transport1.stop();
    replica0.drain();
    replica1.drain();
  } catch (const std::exception& e) {
    // Non-Linux builds have no epoll transport; report and move on rather
    // than failing the whole bench.
    std::printf("\nnetworked tier unavailable: %s\n", e.what());
  }

  // ---- staged pipeline: depth-1 vs depth-N -----------------------------
  // Same fleet, same workers, cache off; the only difference is how many
  // reconstructed batches may park in the assemble ring, i.e. how much the
  // ALU-bound forward of batch N overlaps the memory-bound assemble of
  // batch N-1. Best-of-3 per arm; bytes must match the sequential
  // reference in both.
  bool pipeline_identical = true;
  serve::ServerStatsSnapshot pipe_stats;
  const auto pipeline_arm = [&](int depth,
                                serve::ServerStatsSnapshot* out) -> double {
    serve::ServerConfig pcfg = scfg;
    pcfg.pipeline_depth = depth;
    pcfg.pin_workers = pin_workers;
    serve::ReconServer s(pcfg, model);
    s.register_codec("jpeg", &jpeg);
    std::vector<std::future<serve::ServeResponse>> fs;
    fs.reserve(requests.size());
    util::Stopwatch w;
    for (const core::EaszCompressed& c : requests) {
      serve::ServeRequest req;
      req.compressed = c;
      req.codec = "jpeg";
      fs.push_back(s.submit(std::move(req)).response);
    }
    for (std::size_t i = 0; i < fs.size(); ++i) {
      const serve::ServeResponse resp = fs[i].get();
      if (resp.image->data() != reference[i].data()) pipeline_identical = false;
    }
    const double wall = w.elapsed_seconds();
    if (out != nullptr) *out = s.stats();
    return wall;
  };
  double depth1_s = 1e100;
  double pipelined_s = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    depth1_s = std::min(depth1_s, pipeline_arm(1, nullptr));
    serve::ServerStatsSnapshot snap;
    const double wall = pipeline_arm(pipeline_depth, &snap);
    if (wall < pipelined_s) {
      pipelined_s = wall;
      pipe_stats = snap;
    }
  }
  const double pipe_ratio = depth1_s / pipelined_s;
  // Occupancy: fraction of total worker-seconds each stage kept busy.
  const double worker_s = std::max(1e-12, pipelined_s * workers);
  const double occ_decode = pipe_stats.stage_busy_decode_s / worker_s;
  const double occ_forward = pipe_stats.stage_busy_forward_s / worker_s;
  const double occ_assemble = pipe_stats.stage_busy_assemble_s / worker_s;
  std::printf(
      "\nstaged pipeline (%d workers%s): depth 1 %.4f s, depth %d %.4f s "
      "(%.2fx), byte-identical: %s\n",
      workers, pin_workers ? ", pinned" : "", depth1_s, pipeline_depth,
      pipelined_s, pipe_ratio, pipeline_identical ? "yes" : "NO");
  std::printf(
      "  occupancy: decode %.0f%% / forward %.0f%% / assemble %.0f%%, "
      "ring depth p50 %.1f p95 %.1f (cap %zu), %llu ring-full stalls\n",
      occ_decode * 100.0, occ_forward * 100.0, occ_assemble * 100.0,
      pipe_stats.ring_depth.p50_s, pipe_stats.ring_depth.p95_s,
      pipe_stats.assemble_ring_capacity,
      static_cast<unsigned long long>(pipe_stats.ring_full_stalls));

  // ---- per-stage LLC misses (manually-stepped server) ------------------
  // Hardware counters are per-thread, so attribution needs every stage on
  // the measuring thread: workers=0 mode steps the scheduler one action at
  // a time, and each step_stage() return value says which stage the
  // wrapped counter deltas belong to. A virtual clock flushes under-full
  // tail batches deterministically (age triggers fire only when we advance
  // it, so pooling behaviour does not depend on step timing).
  struct StageProfile {
    std::uint64_t miss[3] = {0, 0, 0};     // decode / forward / assemble
    std::uint64_t actions[3] = {0, 0, 0};
    bool llc_ok = false;
    int shaped_batch = 0;
    std::size_t llc_budget = 0;
    std::vector<std::shared_ptr<const image::Image>> images;
  };
  const auto stepped_profile =
      [&jpeg](const core::ReconstructionModel& m,
              const std::vector<core::EaszCompressed>& reqs, int depth,
              int max_batch, bool shape, std::size_t llc) -> StageProfile {
    double virtual_now = 0.0;
    serve::ServerConfig c;
    c.workers = 0;
    c.backpressure = serve::BackpressurePolicy::kReject;
    c.max_queue = static_cast<int>(reqs.size()) + 1;
    c.max_batch_patches = max_batch;
    c.max_batch_wait_s = 1.0;  // pool until full; flush via clock advance
    c.cache_bytes = 0;
    c.pipeline_depth = depth;
    c.shape_batches_to_llc = shape;
    c.llc_bytes = llc;
    c.sched_clock = [&virtual_now] { return virtual_now; };
    serve::ReconServer s(c, m);
    s.register_codec("jpeg", &jpeg);
    std::vector<std::future<serve::ServeResponse>> fs;
    fs.reserve(reqs.size());
    for (const core::EaszCompressed& rc : reqs) {
      serve::ServeRequest req;
      req.compressed = rc;
      req.codec = "jpeg";
      fs.push_back(s.submit(std::move(req)).response);
    }
    StageProfile prof;
    prof.shaped_batch = s.shaped_batch_patches(nn::Precision::kFp32);
    prof.llc_budget = s.llc_budget_bytes();
    obs::PerfCounters pc;
    int assembled = 0;
    int idle_streak = 0;
    while (assembled < static_cast<int>(reqs.size()) && idle_streak < 3) {
      pc.start();
      const serve::StageAction a = s.step_stage();
      const obs::PerfReading r = pc.stop();
      if (a == serve::StageAction::kIdle) {
        ++idle_streak;
        virtual_now += 2.0;  // trip age triggers for under-full tails
        continue;
      }
      idle_streak = 0;
      const int idx = a == serve::StageAction::kDecode    ? 0
                      : a == serve::StageAction::kForward ? 1
                                                          : 2;
      ++prof.actions[idx];
      if (r.llc_misses_ok) {
        prof.llc_ok = true;
        prof.miss[idx] += r.llc_misses;
      }
      if (a == serve::StageAction::kAssemble) ++assembled;
    }
    prof.images.reserve(fs.size());
    for (std::future<serve::ServeResponse>& f : fs) {
      prof.images.push_back(f.get().image);
    }
    return prof;
  };

  const StageProfile stage_prof =
      stepped_profile(model, requests, pipeline_depth, 32, false, 0);
  bool stepped_identical = true;
  for (std::size_t i = 0; i < stage_prof.images.size(); ++i) {
    if (stage_prof.images[i]->data() != reference[i].data()) {
      stepped_identical = false;
    }
  }
  pipeline_identical = pipeline_identical && stepped_identical;
  if (stage_prof.llc_ok) {
    std::printf(
        "  llc_miss by stage (stepped): decode %llu, forward %llu, "
        "assemble %llu\n",
        static_cast<unsigned long long>(stage_prof.miss[0]),
        static_cast<unsigned long long>(stage_prof.miss[1]),
        static_cast<unsigned long long>(stage_prof.miss[2]));
  } else {
    std::printf("  llc_miss by stage: unavailable (perf_event_open denied)\n");
  }

  // ---- LLC-conscious batch shaping A/B on the paper-scale model --------
  // The d64 bench model vanishes inside any L3; shaping only matters when
  // weights + a big pooled batch's activations contend for the cache. The
  // paper-scale d256 model is that regime: unshaped pools to one huge
  // forward, shaped picks the CacheBudget batch. Fewer forward-stage
  // misses per request with identical bytes is the whole point.
  core::ReconModelConfig paper_cfg = mcfg;
  paper_cfg.d_model = 256;
  paper_cfg.num_heads = 8;
  paper_cfg.ffn_hidden = 1024;
  util::Pcg32 paper_rng(99);
  const core::ReconstructionModel paper_model(paper_cfg, paper_rng);
  const core::EaszPipeline paper_pipe(cfg, jpeg, &paper_model);
  std::vector<core::EaszCompressed> paper_requests;
  util::Pcg32 paper_data_rng(4321);
  int paper_patches = 0;
  for (int i = 0; i < 8; ++i) {
    const image::Image img = data::synth_photo(96, 64, paper_data_rng);
    paper_requests.push_back(paper_pipe.encode(img));
    paper_patches +=
        (paper_requests.back().padded_width / mcfg.patchify.patch) *
        (paper_requests.back().padded_height / mcfg.patchify.patch);
  }
  const StageProfile unshaped = stepped_profile(
      paper_model, paper_requests, pipeline_depth, paper_patches, false,
      llc_override);
  const StageProfile shaped = stepped_profile(
      paper_model, paper_requests, pipeline_depth, paper_patches, true,
      llc_override);
  bool shaping_identical = true;
  for (std::size_t i = 0; i < paper_requests.size(); ++i) {
    if (shaped.images[i]->data() != unshaped.images[i]->data()) {
      shaping_identical = false;
    }
  }
  const double req_n = static_cast<double>(paper_requests.size());
  const double unshaped_fwd_miss = static_cast<double>(unshaped.miss[1]) / req_n;
  const double shaped_fwd_miss = static_cast<double>(shaped.miss[1]) / req_n;
  std::printf(
      "  llc shaping (d256, %d patches, budget %.1f MB): batch %d -> %d, "
      "forward llc_miss/req %.0f -> %.0f%s, byte-identical: %s\n",
      paper_patches, shaped.llc_budget / 1048576.0, paper_patches,
      shaped.shaped_batch, unshaped_fwd_miss, shaped_fwd_miss,
      shaped.llc_ok ? "" : " (counters unavailable)",
      shaping_identical ? "yes" : "NO");

  // ---- instrumentation overhead ----------------------------------------
  // (a) Raw record cost: mean ns per LatencyHistogram::record across a
  //     value sweep (every bucket region gets hit, no single-bucket branch
  //     predictor fantasy).
  double record_ns = 0.0;
  {
    obs::LatencyHistogram h;
    constexpr int kRecords = 1 << 20;
    util::Stopwatch sw;
    for (int i = 0; i < kRecords; ++i) {
      h.record(static_cast<double>(i & 4095) * 1e-6);
    }
    record_ns = sw.elapsed_seconds() / kRecords * 1e9;
    if (h.snapshot().count != kRecords) return 3;  // defeat dead-code elim
  }

  // (b) End-to-end: the server arm with observability on vs globally off
  //     (histograms, counters and spans all gated on obs::enabled()).
  //     Best-of-N per arm to suppress scheduler noise; the delta is the
  //     entire price of production telemetry.
  const auto server_arm_s = [&]() -> double {
    serve::ReconServer s(scfg, model);
    s.register_codec("jpeg", &jpeg);
    std::vector<std::future<serve::ServeResponse>> fs;
    fs.reserve(requests.size());
    util::Stopwatch w;
    for (const core::EaszCompressed& c : requests) {
      serve::ServeRequest req;
      req.compressed = c;
      req.codec = "jpeg";
      fs.push_back(s.submit(std::move(req)).response);
    }
    for (std::future<serve::ServeResponse>& f : fs) (void)f.get();
    return w.elapsed_seconds();
  };
  const int overhead_reps = 3;
  double on_s = 1e100;
  double off_s = 1e100;
  for (int r = 0; r < overhead_reps; ++r) {
    obs::set_enabled(true);
    on_s = std::min(on_s, server_arm_s());
    obs::set_enabled(false);
    off_s = std::min(off_s, server_arm_s());
  }
  obs::set_enabled(true);
  const double overhead_pct = (on_s - off_s) / off_s * 100.0;
  std::printf(
      "\nobservability: record %.1f ns, server obs-on %.4f s vs obs-off "
      "%.4f s (overhead %+.2f%%)\n",
      record_ns, on_s, off_s, overhead_pct);

  char obs_json[256];
  std::snprintf(obs_json, sizeof(obs_json),
                ",\"obs\":{\"record_ns\":%.2f,\"on_wall_s\":%.4f,"
                "\"off_wall_s\":%.4f,\"overhead_pct\":%.3f}",
                record_ns, on_s, off_s, overhead_pct);

  // Stage misses render as numbers when the counters opened and as
  // "unavailable" strings otherwise — same convention as PerfReading.
  char stage_miss_json[256];
  if (stage_prof.llc_ok) {
    std::snprintf(stage_miss_json, sizeof(stage_miss_json),
                  "{\"available\":true,\"decode\":%llu,\"forward\":%llu,"
                  "\"assemble\":%llu}",
                  static_cast<unsigned long long>(stage_prof.miss[0]),
                  static_cast<unsigned long long>(stage_prof.miss[1]),
                  static_cast<unsigned long long>(stage_prof.miss[2]));
  } else {
    std::snprintf(stage_miss_json, sizeof(stage_miss_json),
                  "{\"available\":false,\"decode\":\"unavailable\","
                  "\"forward\":\"unavailable\",\"assemble\":\"unavailable\"}");
  }
  char shaping_miss_json[160];
  if (shaped.llc_ok) {
    std::snprintf(shaping_miss_json, sizeof(shaping_miss_json),
                  "\"unshaped_forward_llc_miss_per_req\":%.1f,"
                  "\"shaped_forward_llc_miss_per_req\":%.1f",
                  unshaped_fwd_miss, shaped_fwd_miss);
  } else {
    std::snprintf(shaping_miss_json, sizeof(shaping_miss_json),
                  "\"unshaped_forward_llc_miss_per_req\":\"unavailable\","
                  "\"shaped_forward_llc_miss_per_req\":\"unavailable\"");
  }
  char pipeline_json[1024];
  std::snprintf(
      pipeline_json, sizeof(pipeline_json),
      ",\"serve_pipeline\":{\"depth\":%d,\"pin_workers\":%s,"
      "\"depth1_wall_s\":%.4f,\"pipelined_wall_s\":%.4f,"
      "\"pipelined_vs_unpipelined\":%.3f,\"identical_output\":%s,"
      "\"occupancy\":{\"decode\":%.3f,\"forward\":%.3f,\"assemble\":%.3f},"
      "\"ring_depth\":{\"p50\":%.1f,\"p95\":%.1f,\"cap\":%zu,"
      "\"full_stalls\":%llu},"
      "\"stage_llc_miss\":%s,"
      "\"llc_shaping\":{\"model_d\":%d,\"requests\":%zu,\"patches\":%d,"
      "\"budget_bytes\":%zu,\"unshaped_batch\":%d,\"shaped_batch\":%d,"
      "%s,\"identical_output\":%s}}"
      ",\"serve\":[{\"scenario\":\"pipelined_vs_depth1\","
      "\"pipelined_vs_unpipelined\":%.3f}]",
      pipeline_depth, pin_workers ? "true" : "false", depth1_s, pipelined_s,
      pipe_ratio, pipeline_identical ? "true" : "false", occ_decode,
      occ_forward, occ_assemble, pipe_stats.ring_depth.p50_s,
      pipe_stats.ring_depth.p95_s, pipe_stats.assemble_ring_capacity,
      static_cast<unsigned long long>(pipe_stats.ring_full_stalls),
      stage_miss_json, paper_cfg.d_model, paper_requests.size(),
      paper_patches, shaped.llc_budget, paper_patches, shaped.shaped_batch,
      shaping_miss_json, shaping_identical ? "true" : "false", pipe_ratio);

  const std::string json = std::string(head) + stats.to_json() +
                           ",\"two_tenant\":" + tenant_report.to_json() +
                           networked_json + pipeline_json + obs_json +
                           ",\"perf\":" + perf.to_json() + "}";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }
  std::printf("%s\n", json.c_str());
  if (check_overhead && overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: instrumentation overhead %.2f%% exceeds the 2%% "
                 "budget (obs-on %.4f s vs obs-off %.4f s)\n",
                 overhead_pct, on_s, off_s);
    return 4;
  }
  return identical && pipeline_identical && shaping_identical && net_identical
             ? 0
             : 1;
}
