// Server throughput: batched concurrent reconstruction vs single-thread
// sequential decode (ISSUE 1 acceptance bench).
//
// Workload: a fleet of small uploads sharing one deployment mask — the
// industrial-inspection shape, where cross-request batching pools many
// partial requests into full transformer batches. The sequential baseline
// decodes the same set on one thread via EaszPipeline::decode; the server
// runs `workers` threads with the result cache DISABLED so the comparison
// measures real reconstruction work, not memoisation. Output images are
// required to be byte-identical to the sequential decode.
//
// A second scenario exercises the multi-tenant scheduler: a mixed
// wildlife (weight 3) + industrial (weight 1) fleet replayed open-loop
// through submit_async, reporting per-tenant p50/p95 latency and
// rejected-request counters into the same JSON.
//
// A third section measures the observability substrate itself: the
// per-record cost of the lock-free stage histogram, and the end-to-end
// obs-on vs obs-off throughput delta of the server arm (best-of repeats).
// With --check-overhead the bench FAILS if the measured delta exceeds the
// documented 2% instrumentation budget (run in release CI only — debug
// builds and loaded machines are too noisy for a hard gate).
//
// Usage: bench_serve [out.json] [workers] [images] [--check-overhead]
// Emits a human table on stdout and a JSON report to out.json
// (default bench_serve.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "codec/jpeg_like.hpp"
#include "obs/histogram.hpp"
#include "obs/perf_counters.hpp"
#include "obs/registry.hpp"
#include "serve/server.hpp"
#include "testbed/loadgen.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace easz;
  bool check_overhead = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-overhead") == 0) {
      check_overhead = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::string out_path =
      positional.size() > 0 ? positional[0] : "bench_serve.json";
  const int workers = positional.size() > 1 ? std::atoi(positional[1]) : 4;
  const int num_images = positional.size() > 2 ? std::atoi(positional[2]) : 48;

  bench::print_header(
      "bench_serve: concurrent batched server vs sequential decode",
      "the server side of asymmetric deployment must scale with cores and "
      "amortise transformer passes across requests");

  // Deterministic untrained model: reconstruction quality is irrelevant
  // here, only the forward-pass cost and bit-exactness are.
  core::ReconModelConfig mcfg;
  mcfg.patchify = {.patch = 16, .sub_patch = 4};
  mcfg.channels = 3;
  mcfg.d_model = 64;
  mcfg.num_heads = 4;
  mcfg.ffn_hidden = 128;
  util::Pcg32 rng(77);
  const core::ReconstructionModel model(mcfg, rng);

  codec::JpegLikeCodec jpeg(85);
  core::EaszConfig cfg;
  cfg.patchify = mcfg.patchify;
  cfg.erased_per_row = 1;
  cfg.mask_seed = 7;  // one deployment-wide mask: requests pool into batches
  const core::EaszPipeline pipeline(cfg, jpeg, &model);

  // Small frames (6 patches each): sequential forward passes are 6-patch,
  // the server's pooled ones are up to 32-patch.
  std::vector<core::EaszCompressed> requests;
  util::Pcg32 data_rng(1234);
  int total_patches = 0;
  for (int i = 0; i < num_images; ++i) {
    const image::Image img = data::synth_photo(48, 32, data_rng);
    requests.push_back(pipeline.encode(img));
    total_patches += (requests.back().padded_width / mcfg.patchify.patch) *
                     (requests.back().padded_height / mcfg.patchify.patch);
  }
  std::printf("workload: %d images, %d patches total, %d hardware threads\n",
              num_images, total_patches,
              static_cast<int>(std::thread::hardware_concurrency()));

  // ---- single-thread sequential baseline -------------------------------
  // Hardware counters ride along: this arm does the full decode +
  // reconstruct on the calling thread, so its LLC behaviour is the
  // per-request memory-hierarchy signature (counters are per-thread; the
  // server arm's work happens on workers where they cannot see it).
  std::vector<image::Image> reference;
  reference.reserve(requests.size());
  obs::PerfCounters perf_counters;
  obs::PerfReading perf;
  util::Stopwatch seq_watch;
  {
    obs::PerfScope perf_scope(perf_counters, perf);
    for (const core::EaszCompressed& c : requests) {
      reference.push_back(pipeline.decode(c));
    }
  }
  const double sequential_s = seq_watch.elapsed_seconds();

  // ---- batched concurrent server ---------------------------------------
  serve::ServerConfig scfg;
  scfg.workers = workers;
  scfg.max_queue = num_images;
  scfg.max_batch_patches = 32;
  scfg.cache_bytes = 0;  // measure reconstruction, not memoisation
  serve::ReconServer server(scfg, model);
  server.register_codec("jpeg", &jpeg);

  std::vector<std::future<serve::ServeResponse>> futures;
  futures.reserve(requests.size());
  util::Stopwatch srv_watch;
  for (const core::EaszCompressed& c : requests) {
    serve::ServeRequest req;
    req.compressed = c;
    req.codec = "jpeg";
    serve::SubmitResult res = server.submit(std::move(req));
    if (!res.accepted) {
      std::fprintf(stderr, "unexpected rejection\n");
      return 1;
    }
    futures.push_back(std::move(res.response));
  }
  std::vector<serve::ServeResponse> responses;
  responses.reserve(futures.size());
  for (std::future<serve::ServeResponse>& f : futures) {
    responses.push_back(f.get());
  }
  const double server_s = srv_watch.elapsed_seconds();  // before comparisons:
  bool identical = true;  // verification must not count against the server
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (responses[i].image->data() != reference[i].data()) identical = false;
  }
  const serve::ServerStatsSnapshot stats = server.stats();

  const double speedup = sequential_s / server_s;
  util::Table t({"arm", "wall s", "images/s", "patches/fwd"});
  // Sequential decode chunks per image, so its forward passes hold at most
  // one (here: small) image's patches.
  const double seq_patches_per_fwd =
      std::min<double>(core::EaszPipeline::kReconstructChunk,
                       static_cast<double>(total_patches) / num_images);
  t.add_row({"sequential 1-thread", util::Table::num(sequential_s, 3),
             util::Table::num(num_images / sequential_s, 2),
             util::Table::num(seq_patches_per_fwd, 1)});
  t.add_row({"server " + std::to_string(workers) + "-worker",
             util::Table::num(server_s, 3),
             util::Table::num(num_images / server_s, 2),
             util::Table::num(stats.mean_batch_size(), 1)});
  t.print();
  std::printf("speedup: %.2fx   outputs byte-identical: %s\n", speedup,
              identical ? "yes" : "NO");
  std::printf("%s", stats.to_string().c_str());

  char head[512];
  std::snprintf(
      head, sizeof(head),
      "{\"bench\":\"bench_serve\",\"images\":%d,\"patches\":%d,"
      "\"workers\":%d,\"hardware_threads\":%u,"
      "\"sequential_wall_s\":%.4f,\"sequential_images_per_s\":%.3f,"
      "\"server_wall_s\":%.4f,\"server_images_per_s\":%.3f,"
      "\"speedup\":%.3f,\"identical_output\":%s,\"server_stats\":",
      num_images, total_patches, workers,
      std::thread::hardware_concurrency(), sequential_s,
      num_images / sequential_s, server_s, num_images / server_s, speedup,
      identical ? "true" : "false");
  // ---- mixed two-tenant scenario (wildlife 3 : industrial 1) -----------
  // Open-loop async replay against a weighted multi-tenant server; the
  // wildlife fleet gets a rate cap so the report shows real rejected
  // counters next to per-tenant latency.
  serve::ServerConfig tcfg;
  tcfg.workers = workers;
  tcfg.max_queue = 16;
  tcfg.max_batch_patches = 32;
  tcfg.cache_bytes = 8ULL << 20;
  tcfg.cache_shards = 4;
  tcfg.backpressure = serve::BackpressurePolicy::kReject;
  tcfg.tenants = {
      // The burst-happy fleet gets a token bucket: an as-fast-as-possible
      // replay blows through the burst allowance, so shed_rate_limited is
      // exercised alongside queue-full drops.
      serve::TenantConfig{.name = "wildlife", .weight = 3,
                          .rate_per_s = 200.0, .burst = 12.0},
      serve::TenantConfig{.name = "industrial", .weight = 1},
  };
  serve::ReconServer tenant_server(tcfg, model);
  tenant_server.register_codec("jpeg", &jpeg);

  testbed::LoadTrace mixed;
  mixed.name = "two_tenant_mix";
  {
    const testbed::LoadTrace wildlife = testbed::make_wildlife_burst_trace(
        model, jpeg, /*cameras=*/4, /*bursts=*/2, /*frames_per_burst=*/4);
    const testbed::LoadTrace industrial =
        testbed::make_industrial_stream_trace(model, jpeg, /*stations=*/4,
                                              /*frames_per_station=*/6);
    // Keep the LoadTrace invariant intact in the merged trace: originals
    // are concatenated and each copied event's image_index is rebased.
    mixed.originals = wildlife.originals;
    mixed.originals.insert(mixed.originals.end(),
                           industrial.originals.begin(),
                           industrial.originals.end());
    mixed.events = wildlife.events;
    for (const testbed::LoadEvent& ev : industrial.events) {
      testbed::LoadEvent shifted = ev;
      shifted.image_index += wildlife.originals.size();
      mixed.events.push_back(std::move(shifted));
    }
    std::stable_sort(mixed.events.begin(), mixed.events.end(),
                     [](const testbed::LoadEvent& a,
                        const testbed::LoadEvent& b) {
                       return a.arrival_s < b.arrival_s;
                     });
  }
  testbed::ReplayOptions topts;
  topts.async = true;  // open-loop: submit_async callbacks, no futures held
  const testbed::ReplayReport tenant_report =
      testbed::replay_trace(mixed, tenant_server, topts);

  std::printf("\ntwo-tenant mix (wildlife w3, industrial w1, async): "
              "%d done, %d dropped, %d failed in %.3f s\n",
              tenant_report.completed, tenant_report.rejected,
              tenant_report.failed, tenant_report.wall_s);
  util::Table tt({"tenant", "done", "drop", "fail", "p50 ms", "p95 ms"});
  for (const testbed::ReplayReport::TenantOutcome& to : tenant_report.tenants) {
    tt.add_row({to.tenant, std::to_string(to.completed),
                std::to_string(to.rejected), std::to_string(to.failed),
                util::Table::num(to.latency_p50_s * 1e3, 1),
                util::Table::num(to.latency_p95_s * 1e3, 1)});
  }
  tt.print();

  // ---- instrumentation overhead ----------------------------------------
  // (a) Raw record cost: mean ns per LatencyHistogram::record across a
  //     value sweep (every bucket region gets hit, no single-bucket branch
  //     predictor fantasy).
  double record_ns = 0.0;
  {
    obs::LatencyHistogram h;
    constexpr int kRecords = 1 << 20;
    util::Stopwatch sw;
    for (int i = 0; i < kRecords; ++i) {
      h.record(static_cast<double>(i & 4095) * 1e-6);
    }
    record_ns = sw.elapsed_seconds() / kRecords * 1e9;
    if (h.snapshot().count != kRecords) return 3;  // defeat dead-code elim
  }

  // (b) End-to-end: the server arm with observability on vs globally off
  //     (histograms, counters and spans all gated on obs::enabled()).
  //     Best-of-N per arm to suppress scheduler noise; the delta is the
  //     entire price of production telemetry.
  const auto server_arm_s = [&]() -> double {
    serve::ReconServer s(scfg, model);
    s.register_codec("jpeg", &jpeg);
    std::vector<std::future<serve::ServeResponse>> fs;
    fs.reserve(requests.size());
    util::Stopwatch w;
    for (const core::EaszCompressed& c : requests) {
      serve::ServeRequest req;
      req.compressed = c;
      req.codec = "jpeg";
      fs.push_back(s.submit(std::move(req)).response);
    }
    for (std::future<serve::ServeResponse>& f : fs) (void)f.get();
    return w.elapsed_seconds();
  };
  const int overhead_reps = 3;
  double on_s = 1e100;
  double off_s = 1e100;
  for (int r = 0; r < overhead_reps; ++r) {
    obs::set_enabled(true);
    on_s = std::min(on_s, server_arm_s());
    obs::set_enabled(false);
    off_s = std::min(off_s, server_arm_s());
  }
  obs::set_enabled(true);
  const double overhead_pct = (on_s - off_s) / off_s * 100.0;
  std::printf(
      "\nobservability: record %.1f ns, server obs-on %.4f s vs obs-off "
      "%.4f s (overhead %+.2f%%)\n",
      record_ns, on_s, off_s, overhead_pct);

  char obs_json[256];
  std::snprintf(obs_json, sizeof(obs_json),
                ",\"obs\":{\"record_ns\":%.2f,\"on_wall_s\":%.4f,"
                "\"off_wall_s\":%.4f,\"overhead_pct\":%.3f}",
                record_ns, on_s, off_s, overhead_pct);

  const std::string json = std::string(head) + stats.to_json() +
                           ",\"two_tenant\":" + tenant_report.to_json() +
                           obs_json + ",\"perf\":" + perf.to_json() + "}";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }
  std::printf("%s\n", json.c_str());
  if (check_overhead && overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: instrumentation overhead %.2f%% exceeds the 2%% "
                 "budget (obs-on %.4f s vs obs-off %.4f s)\n",
                 overhead_pct, on_s, off_s);
    return 4;
  }
  return identical ? 0 : 1;
}
