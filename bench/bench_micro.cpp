// Google-benchmark microbenchmarks for the hot kernels: erase-and-squeeze
// (the edge-side cost the paper claims is negligible), DCT, rANS and the
// transformer forward pass.
#include <benchmark/benchmark.h>

#include "codec/dct.hpp"
#include "codec/jpeg_like.hpp"
#include "core/recon_model.hpp"
#include "core/squeeze.hpp"
#include "data/synth.hpp"
#include "entropy/rans.hpp"
#include "util/prng.hpp"

namespace {

using namespace easz;

void BM_EraseAndSqueeze(benchmark::State& state) {
  util::Pcg32 rng(1);
  const image::Image img = data::synth_photo(512, 512, rng);
  const core::PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const core::EraseMask mask = core::make_row_conditional_mask(8, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::erase_and_squeeze(img, mask, cfg));
  }
  state.SetItemsProcessed(state.iterations() * img.pixel_count());
}
BENCHMARK(BM_EraseAndSqueeze);

void BM_JpegEncode(benchmark::State& state) {
  util::Pcg32 rng(2);
  const image::Image img = data::synth_photo(256, 256, rng);
  codec::JpegLikeCodec codec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(img));
  }
}
BENCHMARK(BM_JpegEncode)->Arg(25)->Arg(75);

void BM_Dct2d(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  codec::Dct2d dct(n);
  util::Pcg32 rng(3);
  std::vector<float> block(static_cast<std::size_t>(n) * n);
  for (auto& v : block) v = rng.next_float();
  for (auto _ : state) {
    dct.forward(block.data());
    dct.inverse(block.data());
    benchmark::DoNotOptimize(block.data());
  }
}
BENCHMARK(BM_Dct2d)->Arg(8)->Arg(16)->Arg(32);

// Forward-only 8x8 DCT: the jpeg hot kernel in isolation, so ablation runs
// catch regressions in the unrolled/FMA path specifically.
void BM_Dct8x8Forward(benchmark::State& state) {
  codec::Dct2d dct(8);
  util::Pcg32 rng(6);
  std::vector<float> block(64);
  for (auto& v : block) v = rng.next_float() * 255.0F - 128.0F;
  for (auto _ : state) {
    dct.forward(block.data());
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dct8x8Forward);

// Decode-only rANS with a prebuilt table: the serve-path hot loop (encode
// and table build excluded), scalar v1 vs interleaved v2.
void BM_RansDecode(benchmark::State& state) {
  util::Pcg32 rng(4);
  std::vector<int> symbols;
  for (int i = 0; i < 65536; ++i) {
    int s = 0;
    while (s < 63 && rng.next_float() < 0.6F) ++s;
    symbols.push_back(s);
  }
  std::vector<std::uint64_t> counts(64, 0);
  for (const int s : symbols) ++counts[s];
  const auto table = entropy::FrequencyTable::from_counts(counts);
  const auto encoded = entropy::rans_encode(symbols, table);
  table.ensure_lookup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropy::rans_decode(
        encoded.data(), encoded.size(), symbols.size(), table));
  }
  state.SetItemsProcessed(state.iterations() * symbols.size());
}
BENCHMARK(BM_RansDecode);

void BM_RansDecodeInterleaved(benchmark::State& state) {
  util::Pcg32 rng(4);
  std::vector<int> symbols;
  for (int i = 0; i < 65536; ++i) {
    int s = 0;
    while (s < 63 && rng.next_float() < 0.6F) ++s;
    symbols.push_back(s);
  }
  std::vector<std::uint64_t> counts(64, 0);
  for (const int s : symbols) ++counts[s];
  const auto table = entropy::FrequencyTable::from_counts(counts);
  const auto encoded = entropy::rans_encode_interleaved(symbols, table);
  table.ensure_lookup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropy::rans_decode_interleaved(
        encoded.data(), encoded.size(), symbols.size(), table));
  }
  state.SetItemsProcessed(state.iterations() * symbols.size());
}
BENCHMARK(BM_RansDecodeInterleaved);

void BM_RansRoundTrip(benchmark::State& state) {
  util::Pcg32 rng(4);
  std::vector<int> symbols;
  for (int i = 0; i < 65536; ++i) {
    int s = 0;
    while (s < 63 && rng.next_float() < 0.6F) ++s;
    symbols.push_back(s);
  }
  for (auto _ : state) {
    const auto buf = entropy::rans_encode_with_table(symbols, 64);
    benchmark::DoNotOptimize(
        entropy::rans_decode_with_table(buf.data(), buf.size(), symbols.size()));
  }
  state.SetBytesProcessed(state.iterations() * symbols.size());
}
BENCHMARK(BM_RansRoundTrip);

void BM_ReconstructPatchBatch(benchmark::State& state) {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.ffn_hidden = 128;
  util::Pcg32 rng(5);
  core::ReconstructionModel model(cfg, rng);
  tensor::Tensor tokens = tensor::Tensor::randn(
      {static_cast<int>(state.range(0)), cfg.patchify.tokens(),
       cfg.patchify.token_dim(3)},
      rng, 0.2F);
  const core::EraseMask mask = core::make_diagonal_mask(cfg.patchify.grid());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.reconstruct(tokens, mask));
  }
}
BENCHMARK(BM_ReconstructPatchBatch)->Arg(1)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
