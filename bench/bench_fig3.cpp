// Fig. 3 reproduction: proposed conditional-sampler masks vs random masks.
//  (a) file-saving ratio after JPEG, vs erase ratio, patch size p in {1, 2}
//  (b) reconstruction MSE vs erase ratio, same grid
//
// Paper: the proposed mask both compresses better under JPEG and
// reconstructs with lower MSE than unconstrained random masks at every
// erase ratio.
#include <cstdio>

#include "bench/common.hpp"
#include "codec/jpeg_like.hpp"

namespace {

using namespace easz;

// File saving: 1 - JPEG(squeezed)/JPEG(original).
double file_saving_ratio(const image::Image& img, const core::EraseMask& mask,
                         const core::PatchifyConfig& cfg,
                         codec::ImageCodec& codec) {
  const double orig = bench::payload_bytes(codec, img);
  const image::Image squeezed = core::erase_and_squeeze(img, mask, cfg);
  const double squeezed_bytes = bench::payload_bytes(codec, squeezed);
  return 1.0 - squeezed_bytes / orig;
}

double recon_mse(const image::Image& img, const core::EraseMask& mask,
                 const core::PatchifyConfig& cfg,
                 const core::ReconstructionModel& model) {
  const tensor::Tensor tokens = core::image_to_tokens(img, cfg);
  const tensor::Tensor recon = model.reconstruct(tokens, mask);
  const image::Image out = core::tokens_to_image(
      recon, img.width(), img.height(), img.channels(), cfg);
  return metrics::mse(img, out);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 3 — proposed vs random erase masks (Kodak-like, scaled 0.25)",
      "(a) higher file-saving ratio under JPEG at equal erase ratio; "
      "(b) lower reconstruction MSE (~1e-4 band at 10-30 %)");

  // p (sub-patch) in {1, 2} on a grid of 8, as in the paper's sweep.
  const core::PatchifyConfig cfg_p1{.patch = 8, .sub_patch = 1};
  const core::PatchifyConfig cfg_p2{.patch = 16, .sub_patch = 2};

  // One trained model per patch config (shared across erase ratios — the
  // paper's single-model-any-ratio property).
  const bench::BenchModel m1 = bench::make_trained_model(cfg_p1, 48, 120, 31);
  const bench::BenchModel m2 = bench::make_trained_model(cfg_p2, 48, 120, 32);

  const data::DatasetSpec spec = data::kodak_like_spec(0.25F);
  std::vector<image::Image> images;
  for (int i = 0; i < 2; ++i) {
    // Crop to patch multiples of both configs (lcm(8,16) = 16); a 128x96
    // window keeps the b=1 transformer sweep affordable on CPU.
    image::Image img = data::load_image(spec, i);
    images.push_back(img.crop(0, 0, 128, 96));
  }

  codec::JpegLikeCodec jpeg(75);
  util::Pcg32 mask_rng(77);

  util::Table ta({"erase ratio", "Easz p=1", "Rand p=1", "Easz p=2",
                  "Rand p=2"});
  util::Table tb({"erase ratio", "Easz p=1 MSE", "Rand p=1 MSE",
                  "Easz p=2 MSE", "Rand p=2 MSE"});

  for (const int t : {1, 2}) {  // T of 8 -> 12.5 %, 25 %
    const double ratio = t / 8.0;
    double save_e1 = 0;
    double save_r1 = 0;
    double save_e2 = 0;
    double save_r2 = 0;
    double mse_e1 = 0;
    double mse_r1 = 0;
    double mse_e2 = 0;
    double mse_r2 = 0;
    for (const auto& img : images) {
      const core::EraseMask easz1 = core::make_row_conditional_mask(8, t, mask_rng);
      const core::EraseMask rand1 = core::make_random_mask(8, t, mask_rng);
      save_e1 += file_saving_ratio(img, easz1, cfg_p1, jpeg);
      save_r1 += file_saving_ratio(img, rand1, cfg_p1, jpeg);
      save_e2 += file_saving_ratio(img, easz1, cfg_p2, jpeg);
      save_r2 += file_saving_ratio(img, rand1, cfg_p2, jpeg);
      mse_e1 += recon_mse(img, easz1, cfg_p1, *m1.model);
      mse_r1 += recon_mse(img, rand1, cfg_p1, *m1.model);
      mse_e2 += recon_mse(img, easz1, cfg_p2, *m2.model);
      mse_r2 += recon_mse(img, rand1, cfg_p2, *m2.model);
    }
    const double n = static_cast<double>(images.size());
    ta.add_row({util::Table::num(ratio * 100, 1) + " %",
                util::Table::num(save_e1 / n, 4), util::Table::num(save_r1 / n, 4),
                util::Table::num(save_e2 / n, 4), util::Table::num(save_r2 / n, 4)});
    tb.add_row({util::Table::num(ratio * 100, 1) + " %",
                util::Table::num(mse_e1 / n, 6), util::Table::num(mse_r1 / n, 6),
                util::Table::num(mse_e2 / n, 6), util::Table::num(mse_r2 / n, 6)});
  }

  std::printf("\n(a) File-saving ratio after JPEG (higher is better):\n");
  ta.print();
  std::printf("\n(b) Reconstruction MSE (lower is better):\n");
  tb.print();
  std::printf(
      "Shape check: Easz columns should dominate Rand columns — better\n"
      "saving in (a), lower MSE in (b) — at every erase ratio, as in Fig. 3.\n");
  return 0;
}
