// bench_infer — kernel-layer throughput report.
//
// Measures the grad-free tensor::kern fast path against the autograd
// substrate it replaced on the serving hot path, and writes a JSON report
// so the numbers land in CI artifacts:
//
//   bench_infer [--smoke] [--json out.json]
//
//   * GEMM GFLOP/s: naive i,p,j loop vs the register-tiled kernel, at 1
//     thread and at the pool default.
//   * Thread scaling on the batched (transformer-shaped) GEMM: 1 -> 2 -> 4
//     kernel threads.
//   * batched_matmul loop-order fix: the old per-(i,j) dot over
//     column-strided B vs the row-accumulate order tensor::bmm now uses.
//   * Transformer forward tokens/s: autograd forward() vs kernel infer(),
//     single- and multi-threaded, on the canonical serve model.
//   * Int8 path (DESIGN.md §7): quantized GEMM GOP/s vs the fp32 kernel on
//     the same shapes, and int8 vs fp32 forward tokens/s on calibrated
//     models — the headline the quantized path exists for (the target is
//     >= 1.8x fp32 at 1 thread on the d256 paper model; CI's regression
//     gate pins the measured ratio via scripts/check_bench_regression.py).
//
// --smoke shrinks sizes/reps for CI; the report schema is identical.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/recon_model.hpp"
#include "obs/perf_counters.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/flags.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace easz;
using util::flag_value;
using util::has_flag;
namespace kern = tensor::kern;

// Best-of-R wall time of fn() in seconds (first call warms caches/arenas
// and is *also* timed — best-of discards it unless it wins).
template <typename F>
double best_seconds(int reps, F&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    util::Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

// The autograd matmul's forward loop, on raw buffers (no DAG/alloc cost),
// as the GEMM baseline.
void naive_gemm(const float* a, const float* b, float* c, int m, int k,
                int n) {
  std::fill_n(c, static_cast<std::size_t>(m) * n, 0.0F);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = a[static_cast<std::size_t>(i) * k + p];
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float* orow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += aip * brow[j];
    }
  }
}

// The PRE-FIX batched_matmul inner loop: per-(i,j) dot products over p with
// column-strided B reads. Kept here as the bench baseline for the fix.
void bmm_dot_order(const float* a, const float* b, float* c, int batch, int m,
                   int k, int n) {
  for (int bi = 0; bi < batch; ++bi) {
    const float* ab = a + static_cast<std::size_t>(bi) * m * k;
    const float* bb = b + static_cast<std::size_t>(bi) * k * n;
    float* ob = c + static_cast<std::size_t>(bi) * m * n;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        const float* arow = ab + static_cast<std::size_t>(i) * k;
        float acc = 0.0F;
        for (int p = 0; p < k; ++p) {
          acc += arow[p] * bb[static_cast<std::size_t>(p) * n + j];
        }
        ob[static_cast<std::size_t>(i) * n + j] = acc;
      }
    }
  }
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) try {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const char* json_path = flag_value(argc, argv, "--json", nullptr);
  const int reps = smoke ? 3 : 7;
  const int hw = kern::default_threads();
  const int multi = std::min(4, std::max(2, hw));

  std::printf("bench_infer: %d hardware threads, %s mode\n", hw,
              smoke ? "smoke" : "full");
  std::string json = "{";
  json += "\"threads_available\":" + std::to_string(hw) +
          ",\"smoke\":" + (smoke ? std::string("true") : std::string("false"));

  util::Pcg32 rng(21);

  // ---- GEMM GFLOP/s -------------------------------------------------------
  {
    struct Size {
      int m, k, n;
      const char* what;
    };
    const std::vector<Size> sizes =
        smoke ? std::vector<Size>{{128, 64, 192, "qkv (d64 serve model)"},
                                  {128, 64, 128, "ffn fc1 (d64)"}}
              : std::vector<Size>{{512, 256, 768, "qkv (d256 paper model)"},
                                  {512, 256, 576, "ffn fc1 (d256)"},
                                  {512, 576, 256, "ffn fc2 (d256)"},
                                  {128, 64, 192, "qkv (d64 serve model)"}};
    util::Table t({"gemm m*k*n", "what", "naive GF/s", "kern@1 GF/s",
                   std::string("kern@") + std::to_string(multi) + " GF/s",
                   "kern/naive"});
    json += ",\"gemm\":[";
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const auto [m, k, n, what] = sizes[si];
      const tensor::Tensor a = tensor::Tensor::randn({m, k}, rng);
      const tensor::Tensor b = tensor::Tensor::randn({k, n}, rng);
      std::vector<float> c(static_cast<std::size_t>(m) * n);
      const double flops = 2.0 * m * k * n;

      const double t_naive = best_seconds(reps, [&] {
        naive_gemm(a.data().data(), b.data().data(), c.data(), m, k, n);
      });
      kern::set_threads(1);
      const double t_k1 = best_seconds(reps, [&] {
        kern::gemm(a.data().data(), k, b.data().data(), n, c.data(), n, m, k,
                   n);
      });
      kern::set_threads(multi);
      const double t_kn = best_seconds(reps, [&] {
        kern::gemm(a.data().data(), k, b.data().data(), n, c.data(), n, m, k,
                   n);
      });
      const double gf_naive = flops / t_naive / 1e9;
      const double gf_k1 = flops / t_k1 / 1e9;
      const double gf_kn = flops / t_kn / 1e9;
      t.add_row({std::to_string(m) + "x" + std::to_string(k) + "x" +
                     std::to_string(n),
                 what, util::Table::num(gf_naive, 2),
                 util::Table::num(gf_k1, 2), util::Table::num(gf_kn, 2),
                 util::Table::num(gf_k1 / gf_naive, 2)});
      json += std::string(si == 0 ? "" : ",") + "{\"m\":" + std::to_string(m) +
              ",\"k\":" + std::to_string(k) + ",\"n\":" + std::to_string(n) +
              ",\"naive_gflops\":" + json_num(gf_naive) +
              ",\"kern_gflops_t1\":" + json_num(gf_k1) +
              ",\"kern_gflops_multi\":" + json_num(gf_kn) +
              ",\"multi_threads\":" + std::to_string(multi) + "}";
    }
    json += "]";
    std::printf("\nGEMM (C = A*B, fp32)\n");
    t.print();
  }

  // ---- int8 GEMM vs fp32 kernel -------------------------------------------
  //
  // Measured through nn::Linear itself (infer vs infer_q), so the numbers
  // cover exactly the production path — build_quant's per-channel weight
  // quantization, the activation-quantize staging, and the fused dequant
  // epilogue — and cannot drift from the scheme the model executes.
  {
    struct Size {
      int m, k, n;
      const char* what;
    };
    const std::vector<Size> sizes =
        smoke ? std::vector<Size>{{128, 64, 192, "qkv (d64 serve model)"}}
              : std::vector<Size>{{512, 256, 768, "qkv (d256 paper model)"},
                                  {512, 256, 576, "ffn fc1 (d256)"},
                                  {512, 576, 256, "ffn fc2 (d256)"}};
    util::Table t({"gemm m*k*n", "what", "fp32 GF/s", "int8 GOP/s",
                   "int8/fp32"});
    json += ",\"gemm_int8\":[";
    kern::set_threads(1);
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const auto [m, k, n, what] = sizes[si];
      const tensor::Tensor a = tensor::Tensor::randn({m, k}, rng);
      nn::Linear lin(k, n, rng);
      float a_absmax = 0.0F;
      for (const float v : a.data()) {
        a_absmax = std::max(a_absmax, std::fabs(v));
      }
      lin.build_quant(a_absmax);
      std::vector<float> c(static_cast<std::size_t>(m) * n);
      const double ops = 2.0 * m * k * n;

      const double t_f32 = best_seconds(
          reps, [&] { lin.infer(a.data().data(), c.data(), m); });
      const double t_i8 = best_seconds(
          reps, [&] { lin.infer_q(a.data().data(), c.data(), m); });
      t.add_row({std::to_string(m) + "x" + std::to_string(k) + "x" +
                     std::to_string(n),
                 what, util::Table::num(ops / t_f32 / 1e9, 2),
                 util::Table::num(ops / t_i8 / 1e9, 2),
                 util::Table::num(t_f32 / t_i8, 2)});
      json += std::string(si == 0 ? "" : ",") + "{\"m\":" + std::to_string(m) +
              ",\"k\":" + std::to_string(k) + ",\"n\":" + std::to_string(n) +
              ",\"fp32_gflops\":" + json_num(ops / t_f32 / 1e9) +
              ",\"int8_gops\":" + json_num(ops / t_i8 / 1e9) +
              ",\"int8_vs_fp32\":" + json_num(t_f32 / t_i8) + "}";
    }
    json += "]";
    std::printf(
        "\nint8 Linear (quantize + u8*s8 + fused dequant vs fp32, 1 "
        "thread)\n");
    t.print();
  }

  // ---- thread scaling on the batched transformer GEMM ---------------------
  {
    const int m = smoke ? 256 : 512;
    const int k = smoke ? 128 : 256;
    const int n = smoke ? 384 : 768;
    const tensor::Tensor a = tensor::Tensor::randn({m, k}, rng);
    const tensor::Tensor b = tensor::Tensor::randn({k, n}, rng);
    std::vector<float> c(static_cast<std::size_t>(m) * n);
    const double flops = 2.0 * m * k * n;
    json += ",\"gemm_scaling\":{\"m\":" + std::to_string(m) +
            ",\"k\":" + std::to_string(k) + ",\"n\":" + std::to_string(n);
    std::printf("\nbatched GEMM thread scaling (%dx%dx%d)\n", m, k, n);
    double t1 = 0.0;
    for (const int threads : {1, 2, 4}) {
      kern::set_threads(threads);
      const double sec = best_seconds(reps, [&] {
        kern::gemm(a.data().data(), k, b.data().data(), n, c.data(), n, m, k,
                   n);
      });
      if (threads == 1) t1 = sec;
      std::printf("  threads=%d  %8.2f GFLOP/s  (scaling x%.2f)\n", threads,
                  flops / sec / 1e9, t1 / sec);
      json += ",\"t" + std::to_string(threads) +
              "_gflops\":" + json_num(flops / sec / 1e9);
      if (threads == 4) {
        json += ",\"scaling_1_to_4\":" + json_num(t1 / sec);
      }
    }
    json += "}";
  }

  // ---- batched_matmul loop-order fix --------------------------------------
  {
    struct Case {
      int batch, m, k, n;
    };
    const std::vector<Case> cases =
        smoke ? std::vector<Case>{{16, 64, 64, 64}}
              : std::vector<Case>{{32, 64, 64, 64}, {8, 64, 256, 64}};
    util::Table t({"bmm B*m*k*n", "dot-order ms", "row-accum ms", "speedup"});
    json += ",\"bmm\":[";
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      const auto [batch, m, k, n] = cases[ci];
      const tensor::Tensor a = tensor::Tensor::randn({batch, m, k}, rng);
      const tensor::Tensor b = tensor::Tensor::randn({batch, k, n}, rng);
      std::vector<float> c(static_cast<std::size_t>(batch) * m * n);
      const double t_old = best_seconds(reps, [&] {
        bmm_dot_order(a.data().data(), b.data().data(), c.data(), batch, m, k,
                      n);
      });
      // The fixed op, including its (unchanged) autograd node overhead.
      const double t_new =
          best_seconds(reps, [&] { (void)tensor::bmm(a, b); });
      t.add_row({std::to_string(batch) + "x" + std::to_string(m) + "x" +
                     std::to_string(k) + "x" + std::to_string(n),
                 util::Table::num(t_old * 1e3, 2),
                 util::Table::num(t_new * 1e3, 2),
                 util::Table::num(t_old / t_new, 2)});
      json += std::string(ci == 0 ? "" : ",") +
              "{\"batch\":" + std::to_string(batch) +
              ",\"m\":" + std::to_string(m) + ",\"k\":" + std::to_string(k) +
              ",\"n\":" + std::to_string(n) +
              ",\"dot_order_ms\":" + json_num(t_old * 1e3) +
              ",\"row_accum_ms\":" + json_num(t_new * 1e3) +
              ",\"speedup\":" + json_num(t_old / t_new) + "}";
    }
    json += "]";
    std::printf("\nbatched_matmul forward loop order (satellite fix)\n");
    t.print();
  }

  // ---- transformer forward: autograd vs kernel ----------------------------
  {
    struct ModelCase {
      const char* name;
      core::ReconModelConfig cfg;
      int batch;
    };
    std::vector<ModelCase> cases;
    {
      core::ReconModelConfig serve_cfg;
      serve_cfg.patchify = {.patch = 16, .sub_patch = 2};
      serve_cfg.channels = 3;
      serve_cfg.d_model = 64;
      serve_cfg.num_heads = 4;
      serve_cfg.ffn_hidden = 128;
      cases.push_back({"p16_b2_d64 (serve)", serve_cfg, smoke ? 4 : 8});
    }
    if (!smoke) {
      core::ReconModelConfig paper_cfg;  // defaults: p32/b4, d256
      cases.push_back({"p32_b4_d256 (paper)", paper_cfg, 4});
    }
    util::Table t({"model", "batch", "autograd tok/s", "kern@1 tok/s",
                   std::string("kern@") + std::to_string(multi) + " tok/s",
                   "kern@1/autograd"});
    json += ",\"forward\":[";
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      const ModelCase& mc = cases[ci];
      util::Pcg32 mrng(11);
      const core::ReconstructionModel model(mc.cfg, mrng);
      const int total = mc.cfg.patchify.tokens();
      const int token_dim = mc.cfg.patchify.token_dim(mc.cfg.channels);
      util::Pcg32 mask_rng(5);
      const core::EraseMask mask = core::make_row_conditional_mask(
          mc.cfg.patchify.grid(), std::max(1, mc.cfg.patchify.grid() / 4),
          mask_rng);
      const tensor::Tensor tokens =
          tensor::Tensor::randn({mc.batch, total, token_dim}, mrng, 0.3F);
      const double toks = static_cast<double>(mc.batch) * total;

      kern::set_threads(1);
      const double t_auto =
          best_seconds(reps, [&] { (void)model.forward(tokens, mask); });
      const double t_k1 =
          best_seconds(reps, [&] { (void)model.infer(tokens, mask); });
      kern::set_threads(multi);
      const double t_kn =
          best_seconds(reps, [&] { (void)model.infer(tokens, mask); });

      t.add_row({mc.name, std::to_string(mc.batch),
                 util::Table::num(toks / t_auto, 0),
                 util::Table::num(toks / t_k1, 0),
                 util::Table::num(toks / t_kn, 0),
                 util::Table::num(t_auto / t_k1, 2)});
      json += std::string(ci == 0 ? "" : ",") + "{\"config\":\"" + mc.name +
              "\",\"batch\":" + std::to_string(mc.batch) +
              ",\"autograd_tokens_per_s\":" + json_num(toks / t_auto) +
              ",\"kernel_t1_tokens_per_s\":" + json_num(toks / t_k1) +
              ",\"kernel_multi_tokens_per_s\":" + json_num(toks / t_kn) +
              ",\"kernel_vs_autograd_t1\":" + json_num(t_auto / t_k1) +
              ",\"multi_threads\":" + std::to_string(multi) + "}";
    }
    json += "]";
    std::printf("\ntransformer forward (tokens reconstructed per second)\n");
    t.print();
  }

  // ---- int8 vs fp32 forward -----------------------------------------------
  {
    struct ModelCase {
      const char* name;
      core::ReconModelConfig cfg;
      int batch;
    };
    std::vector<ModelCase> cases;
    {
      core::ReconModelConfig serve_cfg;
      serve_cfg.patchify = {.patch = 16, .sub_patch = 2};
      serve_cfg.channels = 3;
      serve_cfg.d_model = 64;
      serve_cfg.num_heads = 4;
      serve_cfg.ffn_hidden = 128;
      cases.push_back({"p16_b2_d64 (serve)", serve_cfg, smoke ? 4 : 8});
    }
    if (!smoke) {
      core::ReconModelConfig paper_cfg;  // defaults: p32/b4, d256
      cases.push_back({"p32_b4_d256 (paper)", paper_cfg, 4});
    }
    util::Table t({"model", "batch", "fp32@1 tok/s", "int8@1 tok/s",
                   std::string("int8@") + std::to_string(multi) + " tok/s",
                   "int8/fp32@1"});
    json += ",\"forward_int8\":[";
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      const ModelCase& mc = cases[ci];
      util::Pcg32 mrng(11);
      core::ReconstructionModel model(mc.cfg, mrng);
      const int total = mc.cfg.patchify.tokens();
      const int token_dim = mc.cfg.patchify.token_dim(mc.cfg.channels);
      util::Pcg32 mask_rng(5);
      const core::EraseMask mask = core::make_row_conditional_mask(
          mc.cfg.patchify.grid(), std::max(1, mc.cfg.patchify.grid() / 4),
          mask_rng);
      const tensor::Tensor tokens =
          tensor::Tensor::randn({mc.batch, total, token_dim}, mrng, 0.3F);
      model.calibrate_and_quantize({{tokens, mask}});
      const double toks = static_cast<double>(mc.batch) * total;

      kern::set_threads(1);
      const double t_f32 =
          best_seconds(reps, [&] { (void)model.infer(tokens, mask); });
      const double t_i8 = best_seconds(reps, [&] {
        (void)model.infer(tokens, mask, nn::Precision::kInt8);
      });
      kern::set_threads(multi);
      const double t_i8n = best_seconds(reps, [&] {
        (void)model.infer(tokens, mask, nn::Precision::kInt8);
      });

      t.add_row({mc.name, std::to_string(mc.batch),
                 util::Table::num(toks / t_f32, 0),
                 util::Table::num(toks / t_i8, 0),
                 util::Table::num(toks / t_i8n, 0),
                 util::Table::num(t_f32 / t_i8, 2)});
      json += std::string(ci == 0 ? "" : ",") + "{\"config\":\"" + mc.name +
              "\",\"batch\":" + std::to_string(mc.batch) +
              ",\"fp32_t1_tokens_per_s\":" + json_num(toks / t_f32) +
              ",\"int8_t1_tokens_per_s\":" + json_num(toks / t_i8) +
              ",\"int8_multi_tokens_per_s\":" + json_num(toks / t_i8n) +
              ",\"int8_vs_fp32_t1\":" + json_num(t_f32 / t_i8) +
              ",\"multi_threads\":" + std::to_string(multi) + "}";
    }
    json += "]";
    std::printf(
        "\ntransformer forward, int8 vs fp32 kernel (tokens per second)\n");
    t.print();
  }
  // ---- hardware counters (ROADMAP item 2: llc_miss in bench JSON) ---------
  //
  // Cycles/instructions/LLC refs+misses around a single-thread GEMM burst
  // at the serve-model qkv shape — the memory-hierarchy signature of the
  // kernel hot loop. Degrades to "unavailable" per counter when
  // perf_event_open is not permitted (see obs/perf_counters.hpp).
  {
    const int m = 128, k = 64, n = 192;
    const tensor::Tensor a = tensor::Tensor::randn({m, k}, rng);
    const tensor::Tensor b = tensor::Tensor::randn({k, n}, rng);
    std::vector<float> c(static_cast<std::size_t>(m) * n);
    kern::set_threads(1);
    obs::PerfCounters counters;
    obs::PerfReading reading;
    {
      obs::PerfScope scope(counters, reading);
      for (int r = 0; r < (smoke ? 4 : 32); ++r) {
        kern::gemm(a.data().data(), k, b.data().data(), n, c.data(), n, m, k,
                   n);
      }
    }
    json += ",\"perf\":" + reading.to_json();
    std::printf("\nhardware counters (1-thread GEMM %dx%dx%d burst)\n  %s\n",
                m, k, n, reading.to_json().c_str());
  }
  json += "}";
  kern::set_threads(kern::default_threads());

  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  } else {
    std::printf("\n%s\n", json.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_infer: %s\n", e.what());
  return 2;
}
