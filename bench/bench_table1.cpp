// Table I (and Fig. 4's quantitative core): Easz vs super-resolution
// reconstruction at an equal 25 % content-reduction budget on Kodak-like
// images. Paper: PSNR 28.96 vs 24.9-25.4, MS-SSIM 0.96 vs 0.93-0.94, model
// size 8.7 MB vs 67 MB.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "image/resize.hpp"
#include "sr/srnet.hpp"

namespace {

using namespace easz;

}  // namespace

int main() {
  bench::print_header(
      "Table I / Fig. 4 — Easz vs super-resolution on Kodak-like (25 % "
      "reduction)",
      "Easz: PSNR 28.96 / MS-SSIM 0.96 / 8.7 MB; SwinIR-realESRGAN-BSRGAN: "
      "~24.9-25.4 / 0.93-0.94 / 67 MB");

  // Easz at T=1 of grid 8 -> 12.5 % erased: Easz chooses its own operating
  // point (the flexibility §II claims SR lacks; SR is locked to 4x).
  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 2};
  const bench::BenchModel bm = bench::make_trained_model(cfg, 64, 400, 41);

  // The published SR models are FIXED 4x upscalers — that inflexibility is
  // exactly the paper's point (§II): they must operate at scale 0.25/axis
  // regardless of the budget the application wanted.
  const float scale = 0.25F;
  sr::SrNet swinir(sr::swinir_lite_spec(), 51);
  sr::SrNet realesrgan(sr::realesrgan_lite_spec(), 52);
  sr::SrNet bsrgan(sr::bsrgan_lite_spec(), 53);
  swinir.pretrain(150, scale);
  realesrgan.pretrain(150, scale);
  bsrgan.pretrain(150, scale);

  const data::DatasetSpec spec = data::kodak_like_spec(0.25F);
  util::Pcg32 mask_rng(42);
  const core::EraseMask mask = core::make_row_conditional_mask(8, 1, mask_rng);

  double psnr_easz = 0;
  double msssim_easz = 0;
  double psnr_sr[3] = {0, 0, 0};
  double msssim_sr[3] = {0, 0, 0};
  const sr::SrNet* nets[3] = {&swinir, &realesrgan, &bsrgan};

  // Mixed content like Kodak: photos AND detail-rich textures (indices 7,
  // 15 are texture images in the procedural set).
  const int indices[] = {0, 2, 7, 15};
  const int image_count = 4;
  for (const int i : indices) {
    image::Image img = data::load_image(spec, i);
    img = img.crop(0, 0, img.width() / 16 * 16, img.height() / 16 * 16);

    // Easz: erase 25 %, reconstruct erased sub-patches.
    const tensor::Tensor tokens = core::image_to_tokens(img, cfg);
    const tensor::Tensor recon = bm.model->reconstruct(tokens, mask);
    const image::Image easz_out = core::tokens_to_image(
        recon, img.width(), img.height(), 3, cfg);
    psnr_easz += metrics::psnr(img, easz_out);
    msssim_easz += metrics::ms_ssim(img, easz_out);

    // SR: downsample to 75 % of the pixels, learned upsample back.
    const int lw = static_cast<int>(img.width() * scale);
    const int lh = static_cast<int>(img.height() * scale);
    const image::Image low =
        image::resize(img, lw, lh, image::Filter::kBicubic);
    for (int k = 0; k < 3; ++k) {
      const image::Image up = nets[k]->upscale(low, img.width(), img.height());
      psnr_sr[k] += metrics::psnr(img, up);
      msssim_sr[k] += metrics::ms_ssim(img, up);
    }
  }

  const auto mb = [](std::size_t bytes) {
    return util::Table::num(static_cast<double>(bytes) / (1024.0 * 1024.0), 2) +
           " MB";
  };
  // The paper-scale Easz model (default config) carries the 8.7 MB claim;
  // the bench model above is a scaled-down stand-in for speed.
  util::Pcg32 size_rng(1);
  core::ReconstructionModel paper_model(core::ReconModelConfig{}, size_rng);

  util::Table t({"metric", "Easz", "SwinIR", "realESRGAN", "BSRGAN"});
  t.add_row({"PSNR (paper: 28.96 vs 24.86/24.85/25.35)",
             util::Table::num(psnr_easz / image_count, 2),
             util::Table::num(psnr_sr[0] / image_count, 2),
             util::Table::num(psnr_sr[1] / image_count, 2),
             util::Table::num(psnr_sr[2] / image_count, 2)});
  t.add_row({"MS-SSIM (paper: 0.96 vs 0.94/0.93/0.94)",
             util::Table::num(msssim_easz / image_count, 3),
             util::Table::num(msssim_sr[0] / image_count, 3),
             util::Table::num(msssim_sr[1] / image_count, 3),
             util::Table::num(msssim_sr[2] / image_count, 3)});
  t.add_row({"recon model size (paper: 8.7 MB vs 67 MB)",
             mb(paper_model.model_bytes()) + " (paper-scale cfg)",
             mb(swinir.model_bytes()) + " (lite; paper 67 MB)",
             mb(realesrgan.model_bytes()) + " (lite; paper 67 MB)",
             mb(bsrgan.model_bytes()) + " (lite; paper 67 MB)"});
  t.print();
  std::printf(
      "Shape check: with the pretrained checkpoint, Easz's direct pixel\n"
      "prediction beats the fixed-4x SR baselines on both PSNR and MS-SSIM\n"
      "at a much smaller model (8.7 MB vs 67 MB) — the paper's Table I.\n"
      "(Without the checkpoint the quick-trained fallback lands at PSNR\n"
      "parity; run tools/easz_pretrain first.)\n");
  return 0;
}
