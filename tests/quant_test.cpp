// Int8 quantized inference path (DESIGN.md §7).
//
// Three layers of guarantees, in increasing scope:
//
//  1. KERNEL EXACTNESS — gemm_u8s8's fp32 outputs are BIT-IDENTICAL to a
//     plain reference integer loop + the documented dequant formula, for
//     every dispatch path (AVX2/scalar is decided at runtime; the reference
//     here is always plain C), every tiling remainder, thread count and
//     epilogue combination. Integer accumulation is exact, and the AVX2
//     epilogue is an op-for-op intrinsic transcription of the scalar one,
//     so nothing may differ by even an ulp.
//  2. GOLDEN BYTES — a fixed-seed quantized layer's weights, scales and
//     outputs are pinned in tests/golden_int8.inc, so an epilogue or
//     quantizer refactor cannot drift silently even if it stays
//     self-consistent. (Regenerate ONLY for an intentional format change
//     with scripts/gen_golden_int8.cpp — Linear(32, 24, Pcg32(77)),
//     build_quant(1.75), infer_q over 8 rows of Pcg32(88) inputs in
//     [-2, 2]; w_q / w_scale bits / output bits are dumped as hex.)
//  3. ACCURACY — per-channel weight quantization + absmax calibration must
//     cost < 0.5 dB PSNR per image (not on the mean) against the fp32
//     reconstruction on a synthetic corpus, end to end through the real
//     pipeline; batch pooling and sidecar round-trips must reproduce int8
//     bytes exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "core/recon_model.hpp"
#include "core/trainer.hpp"
#include "data/synth.hpp"
#include "metrics/distortion.hpp"
#include "nn/module.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "tensor/kernels.hpp"
#include "util/prng.hpp"

namespace easz {
namespace {

namespace kern = tensor::kern;

#include "golden_int8.inc"

// ------------------------------------------------------ kernel exactness

struct QuantCase {
  std::vector<std::uint8_t> a_q;
  std::vector<std::int8_t> w_q;
  std::vector<float> dq_scale;
  std::vector<std::int32_t> col_sum;
  std::vector<float> bias;
  kern::PackedBInt8 packed;
};

QuantCase make_case(int m, int k, int n, util::Pcg32& rng) {
  QuantCase c;
  c.a_q.resize(static_cast<std::size_t>(m) * k);
  for (auto& v : c.a_q) v = static_cast<std::uint8_t>(rng.next_below(256));
  c.w_q.resize(static_cast<std::size_t>(k) * n);
  for (auto& v : c.w_q) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
  }
  c.dq_scale.resize(n);
  c.bias.resize(n);
  c.col_sum.assign(n, 0);
  for (int j = 0; j < n; ++j) {
    c.dq_scale[j] = 1e-4F + rng.next_float() * 1e-3F;
    c.bias[j] = rng.next_float() * 0.5F - 0.25F;
    for (int p = 0; p < k; ++p) {
      c.col_sum[j] += c.w_q[static_cast<std::size_t>(p) * n + j];
    }
  }
  c.packed = kern::pack_b_s8(c.w_q.data(), k, n);
  return c;
}

// The documented reference: exact integer dot product, then the dequant
// formula with the layer's own scalar GELU.
std::vector<float> reference_gemm(const QuantCase& c, int m, int k, int n,
                                  bool with_bias, bool gelu) {
  std::vector<float> out(static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(
                   c.a_q[static_cast<std::size_t>(i) * k + p]) *
               static_cast<std::int32_t>(
                   c.w_q[static_cast<std::size_t>(p) * n + j]);
      }
      float v = static_cast<float>(acc - kern::kActZeroPoint * c.col_sum[j]) *
                c.dq_scale[j];
      if (with_bias) v += c.bias[j];
      if (gelu) v = kern::gelu_scalar(v);
      out[static_cast<std::size_t>(i) * n + j] = v;
    }
  }
  return out;
}

TEST(QuantKernel, GemmBitIdenticalToReferenceIntegerLoop) {
  struct Shape {
    int m, k, n;
  };
  // Every remainder class: single element, odd k (pair padding), n below /
  // straddling / above the 16-column tile, m off the 4-row tile, and a
  // transformer-sized case that exercises the parallel row panels.
  const Shape shapes[] = {{1, 1, 1},    {3, 5, 7},    {4, 48, 12},
                          {5, 17, 24},  {8, 33, 16},  {33, 64, 50},
                          {16, 255, 33}, {61, 256, 768}};
  util::Pcg32 rng(4242);
  for (const Shape s : shapes) {
    const QuantCase c = make_case(s.m, s.k, s.n, rng);
    for (const bool with_bias : {false, true}) {
      for (const bool gelu : {false, true}) {
        for (const bool parallel : {false, true}) {
          std::vector<float> got(static_cast<std::size_t>(s.m) * s.n, -1.0F);
          kern::QuantGemmOpts opts;
          opts.bias = with_bias ? c.bias.data() : nullptr;
          opts.gelu = gelu;
          opts.parallel = parallel;
          kern::gemm_u8s8(c.a_q.data(), static_cast<std::size_t>(s.k),
                          c.packed, got.data(),
                          static_cast<std::size_t>(s.n), s.m, s.k, s.n,
                          c.dq_scale.data(), c.col_sum.data(), opts);
          const std::vector<float> want =
              reference_gemm(c, s.m, s.k, s.n, with_bias, gelu);
          ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                                   got.size() * sizeof(float)))
              << "m=" << s.m << " k=" << s.k << " n=" << s.n
              << " bias=" << with_bias << " gelu=" << gelu
              << " parallel=" << parallel;
        }
      }
    }
  }
}

TEST(QuantKernel, GemmIsThreadCountInvariant) {
  util::Pcg32 rng(77);
  const int m = 37, k = 96, n = 100;
  const QuantCase c = make_case(m, k, n, rng);
  kern::QuantGemmOpts opts;
  opts.bias = c.bias.data();
  opts.gelu = true;
  std::vector<float> base(static_cast<std::size_t>(m) * n);
  kern::set_threads(1);
  kern::gemm_u8s8(c.a_q.data(), k, c.packed, base.data(), n, m, k, n,
                  c.dq_scale.data(), c.col_sum.data(), opts);
  for (const int threads : {2, 4}) {
    kern::set_threads(threads);
    std::vector<float> got(base.size(), 0.0F);
    kern::gemm_u8s8(c.a_q.data(), k, c.packed, got.data(), n, m, k, n,
                    c.dq_scale.data(), c.col_sum.data(), opts);
    EXPECT_EQ(0,
              std::memcmp(got.data(), base.data(), got.size() * sizeof(float)))
        << threads << " threads";
  }
  kern::set_threads(kern::default_threads());
}

TEST(QuantKernel, QuantizeRoundsToNearestEvenWithZeroPoint128) {
  const float scale = 0.5F;  // q = round(x / 0.5) + 128
  const float xs[] = {0.0F,  0.5F,   -0.5F,  0.25F, 0.75F, 1e9F,
                      -1e9F, 63.5F, -64.0F, 0.124F, -0.3F, 1e30F};
  // round-to-nearest-EVEN: 0.25/0.5 = 0.5 -> 0; 0.75/0.5 = 1.5 -> 2.
  const std::uint8_t want[] = {128, 129, 127, 128, 130, 255,
                               0,   255, 0,   128,  127, 255};
  std::uint8_t got[12];
  kern::quantize_rows_u8(xs, got, 12, scale);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(want[i], got[i]) << "x=" << xs[i];
  }
  // The vector path (32 at a time) agrees with the scalar tail element by
  // element across a sweep that includes ties and clamps.
  std::vector<float> sweep(97);
  util::Pcg32 rng(5);
  for (auto& v : sweep) v = rng.next_float() * 300.0F - 150.0F;
  std::vector<std::uint8_t> all(sweep.size());
  kern::quantize_rows_u8(sweep.data(), all.data(), sweep.size(), 1.0F);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::uint8_t one = 0;
    kern::quantize_rows_u8(&sweep[i], &one, 1, 1.0F);
    EXPECT_EQ(one, all[i]) << "element " << i;
  }
}

TEST(QuantKernel, PackRejectsInvalidDimensions) {
  const std::int8_t b[4] = {1, 2, 3, 4};
  EXPECT_THROW((void)kern::pack_b_s8(b, 0, 4), std::invalid_argument);
  EXPECT_THROW((void)kern::pack_b_s8(b, 4, 0), std::invalid_argument);
  EXPECT_THROW((void)kern::pack_b_s8(b, 65537, 1), std::invalid_argument);
}

// ------------------------------------------------- per-channel quantizer

TEST(PerChannelScales, RoundTripWithinHalfStepAndSaturatesAtAbsmax) {
  util::Pcg32 rng(31);
  nn::Linear lin(48, 20, rng);
  lin.build_quant(1.0F);
  const nn::Linear::QuantState& q = lin.quant();
  ASSERT_EQ(20U, q.w_scale.size());
  ASSERT_EQ(48U * 20U, q.w_q.size());

  // Reconstruct the weight matrix from the layer's parameters() order:
  // weight first ([in, out] row-major), bias second.
  const std::vector<float> w = lin.parameters()[0].data();
  for (int j = 0; j < 20; ++j) {
    const float scale = q.w_scale[j];
    ASSERT_GT(scale, 0.0F);
    float absmax = 0.0F;
    bool saturated = false;
    for (int p = 0; p < 48; ++p) {
      const std::size_t idx = static_cast<std::size_t>(p) * 20 + j;
      const float dq = static_cast<float>(q.w_q[idx]) * scale;
      // Symmetric round-to-nearest: error <= scale / 2 (+ eps slack).
      EXPECT_LE(std::fabs(dq - w[idx]), scale * 0.5F + 1e-7F);
      absmax = std::max(absmax, std::fabs(w[idx]));
      if (std::abs(q.w_q[idx]) == 127) saturated = true;
    }
    // The channel absmax element must land on +-127 (that is what defines
    // the scale), so the full int8 range is used per channel.
    EXPECT_TRUE(saturated) << "channel " << j;
    EXPECT_NEAR(absmax / 127.0F, scale, 1e-9F);
  }
}

TEST(PerChannelScales, CalibrationObserversRecordInputAbsmax) {
  util::Pcg32 rng(7);
  nn::Linear lin(8, 4, rng);
  std::vector<float> x(3 * 8, 0.25F);
  x[13] = -3.75F;  // the absmax the observer must find
  std::vector<float> y(3 * 4);
  lin.infer(x.data(), y.data(), 3);
  EXPECT_EQ(0.0F, lin.observed_absmax()) << "observers off by default";
  nn::set_calibration(true);
  lin.infer(x.data(), y.data(), 3);
  nn::set_calibration(false);
  EXPECT_FLOAT_EQ(3.75F, lin.observed_absmax());
  lin.infer(x.data(), y.data(), 3);
  EXPECT_FLOAT_EQ(3.75F, lin.observed_absmax()) << "off again after";

  // RE-calibration must reflect the new distribution, not the widest
  // range ever seen.
  lin.reset_observed_absmax();
  x[13] = 0.25F;  // back to the flat 0.25 corpus
  nn::set_calibration(true);
  lin.infer(x.data(), y.data(), 3);
  nn::set_calibration(false);
  EXPECT_FLOAT_EQ(0.25F, lin.observed_absmax());
}

TEST(PerChannelScales, RecalibrationDropsStaleRanges) {
  util::Pcg32 rng(61);
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  core::ReconstructionModel model(cfg, rng);
  const core::EraseMask mask = core::make_diagonal_mask(cfg.patchify.grid());
  const int total = cfg.patchify.tokens();
  const int token_dim = cfg.patchify.token_dim(3);

  // Calibrate on a wild distribution, then on a tame one: the second
  // calibration's embed scale must match a from-scratch calibration on
  // the tame samples alone (stale observations forgotten).
  const tensor::Tensor wild =
      tensor::Tensor::randn({2, total, token_dim}, rng, 8.0F);
  const tensor::Tensor tame =
      tensor::Tensor::randn({2, total, token_dim}, rng, 0.2F);
  model.calibrate_and_quantize({{wild, mask}});
  const float wild_scale = model.quant_sidecar().layers[0].act_scale;
  model.calibrate_and_quantize({{tame, mask}});
  const float recal_scale = model.quant_sidecar().layers[0].act_scale;
  EXPECT_LT(recal_scale, wild_scale);

  util::Pcg32 rng2(61);
  core::ReconstructionModel fresh(cfg, rng2);
  (void)tensor::Tensor::randn({2, total, token_dim}, rng2, 8.0F);  // align rng
  const tensor::Tensor tame2 =
      tensor::Tensor::randn({2, total, token_dim}, rng2, 0.2F);
  fresh.calibrate_and_quantize({{tame2, mask}});
  EXPECT_FLOAT_EQ(fresh.quant_sidecar().layers[0].act_scale, recal_scale);
}

TEST(PerChannelScales, InferQWithoutQuantizationThrows) {
  util::Pcg32 rng(9);
  nn::Linear lin(4, 4, rng);
  std::vector<float> x(4), y(4);
  EXPECT_THROW(lin.infer_q(x.data(), y.data(), 1), std::logic_error);
  EXPECT_THROW((void)lin.quant(), std::logic_error);
}

// ---------------------------------------------------------- golden bytes

TEST(GoldenInt8, QuantizedWeightsAndScalesAreBitStable) {
  util::Pcg32 wrng(77);
  nn::Linear lin(32, 24, wrng);
  lin.build_quant(1.75F);
  const nn::Linear::QuantState& q = lin.quant();
  ASSERT_EQ(sizeof(kGoldenWq), q.w_q.size());
  EXPECT_EQ(0, std::memcmp(kGoldenWq, q.w_q.data(), q.w_q.size()));
  ASSERT_EQ(sizeof(kGoldenWScaleBits) / 4, q.w_scale.size());
  EXPECT_EQ(0, std::memcmp(kGoldenWScaleBits, q.w_scale.data(),
                           sizeof(kGoldenWScaleBits)));
}

TEST(GoldenInt8, ForwardOutputBytesArePinned) {
  util::Pcg32 wrng(77);
  nn::Linear lin(32, 24, wrng);
  lin.build_quant(1.75F);
  util::Pcg32 xrng(88);
  std::vector<float> x(8 * 32);
  for (auto& v : x) v = xrng.next_float() * 4.0F - 2.0F;
  std::vector<float> y(8 * 24);

  lin.infer_q(x.data(), y.data(), 8, /*fuse_gelu=*/false);
  ASSERT_EQ(sizeof(kGoldenOutPlainBits) / 4, y.size());
  EXPECT_EQ(0,
            std::memcmp(kGoldenOutPlainBits, y.data(), y.size() * 4))
      << "plain epilogue drifted from the golden bytes";

  lin.infer_q(x.data(), y.data(), 8, /*fuse_gelu=*/true);
  EXPECT_EQ(0, std::memcmp(kGoldenOutGeluBits, y.data(), y.size() * 4))
      << "GELU epilogue drifted from the golden bytes";
}

// ------------------------------------------------------ model-level int8

core::ReconModelConfig small_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

TEST(QuantModel, Int8WithoutQuantizationThrows) {
  util::Pcg32 rng(21);
  const core::ReconstructionModel model(small_config(), rng);
  EXPECT_FALSE(model.is_quantized());
  const core::EraseMask mask =
      core::make_diagonal_mask(small_config().patchify.grid());
  const tensor::Tensor tokens = tensor::Tensor::randn(
      {1, small_config().patchify.tokens(),
       small_config().patchify.token_dim(3)},
      rng, 0.3F);
  EXPECT_THROW((void)model.infer(tokens, mask, nn::Precision::kInt8),
               std::logic_error);
  EXPECT_THROW((void)model.quant_sidecar(), std::logic_error);
}

TEST(QuantModel, PooledBatchReproducesPerRequestBytes) {
  util::Pcg32 rng(22);
  core::ReconstructionModel model(small_config(), rng);
  const int total = small_config().patchify.tokens();
  const int token_dim = small_config().patchify.token_dim(3);
  const core::EraseMask mask =
      core::make_diagonal_mask(small_config().patchify.grid());
  const tensor::Tensor pooled =
      tensor::Tensor::randn({6, total, token_dim}, rng, 0.3F);
  model.calibrate_and_quantize({{pooled, mask}});

  const tensor::Tensor all =
      model.reconstruct(pooled, mask, nn::Precision::kInt8);
  // Static calibrated scales make every patch row's quantization local to
  // itself, so any split of the batch must reproduce identical bytes —
  // the property serve's cross-request batching relies on.
  const std::size_t per = static_cast<std::size_t>(total) * token_dim;
  for (const int split : {1, 2, 3}) {
    for (int start = 0; start < 6; start += split) {
      const int count = std::min(split, 6 - start);
      tensor::Tensor part({count, total, token_dim});
      std::copy_n(pooled.data().begin() + start * per, count * per,
                  part.data().begin());
      const tensor::Tensor got =
          model.reconstruct(part, mask, nn::Precision::kInt8);
      ASSERT_EQ(0, std::memcmp(got.data().data(),
                               all.data().data() + start * per,
                               count * per * sizeof(float)))
          << "split " << split << " start " << start;
    }
  }
}

TEST(QuantModel, SidecarRoundTripReproducesInt8Bytes) {
  util::Pcg32 rng_a(33);
  core::ReconstructionModel a(small_config(), rng_a);
  const int total = small_config().patchify.tokens();
  const int token_dim = small_config().patchify.token_dim(3);
  const core::EraseMask mask =
      core::make_diagonal_mask(small_config().patchify.grid());
  util::Pcg32 drng(34);
  const tensor::Tensor tokens =
      tensor::Tensor::randn({3, total, token_dim}, drng, 0.3F);
  a.calibrate_and_quantize({{tokens, mask}});
  const tensor::Tensor want = a.infer(tokens, mask, nn::Precision::kInt8);

  // Full checkpoint round trip: fp32 params + EAZQ sidecar in one buffer.
  const std::vector<std::uint8_t> bytes =
      nn::serialize_checkpoint_with_quant(a.parameters(), a.quant_sidecar());
  util::Pcg32 rng_b(99);  // different init — everything comes from the file
  core::ReconstructionModel b(small_config(), rng_b);
  auto params = b.parameters();
  const auto sidecar = nn::deserialize_checkpoint_with_quant(params, bytes);
  ASSERT_TRUE(sidecar.has_value());
  b.apply_quant_sidecar(*sidecar);
  ASSERT_TRUE(b.is_quantized());
  const tensor::Tensor got = b.infer(tokens, mask, nn::Precision::kInt8);
  EXPECT_EQ(0, std::memcmp(got.data().data(), want.data().data(),
                           got.numel() * sizeof(float)));

  // A plain checkpoint reports "no sidecar" instead of throwing.
  const std::vector<std::uint8_t> plain =
      nn::serialize_parameters(a.parameters());
  auto params2 = b.parameters();
  EXPECT_FALSE(
      nn::deserialize_checkpoint_with_quant(params2, plain).has_value());
}

TEST(QuantModel, SidecarDimensionMismatchThrows) {
  util::Pcg32 rng(41);
  core::ReconstructionModel model(small_config(), rng);
  const core::EraseMask mask =
      core::make_diagonal_mask(small_config().patchify.grid());
  const tensor::Tensor tokens = tensor::Tensor::randn(
      {1, small_config().patchify.tokens(),
       small_config().patchify.token_dim(3)},
      rng, 0.3F);
  model.calibrate_and_quantize({{tokens, mask}});
  nn::QuantSidecar sidecar = model.quant_sidecar();
  sidecar.layers.pop_back();
  EXPECT_THROW(model.apply_quant_sidecar(sidecar), std::invalid_argument);

  nn::QuantSidecar wrong = model.quant_sidecar();
  wrong.layers[0].in += 1;  // dims no longer match the embed layer
  EXPECT_THROW(model.apply_quant_sidecar(wrong), std::invalid_argument);
}

// ------------------------------------------------- end-to-end PSNR floor

TEST(QuantAccuracy, Int8PsnrWithinHalfDbOfFp32PerImage) {
  // A quickly-trained small model: accuracy deltas only mean something
  // when the fp32 baseline itself reconstructs structure.
  core::ReconModelConfig mcfg;
  mcfg.patchify = {.patch = 16, .sub_patch = 2};
  mcfg.channels = 3;
  mcfg.d_model = 48;
  mcfg.num_heads = 4;
  mcfg.ffn_hidden = 96;
  util::Pcg32 rng(55);
  core::ReconstructionModel model(mcfg, rng);
  core::TrainerConfig tcfg;
  tcfg.batch_patches = 8;
  tcfg.use_perceptual = false;
  tcfg.lr = 1.5e-3F;
  core::Trainer trainer(model, tcfg, rng);
  std::vector<image::Image> corpus;
  util::Pcg32 drng(56);
  for (int i = 0; i < 6; ++i) {
    corpus.push_back(i % 2 == 0 ? data::synth_photo(32, 32, drng)
                                : data::synth_cartoon(32, 32, drng));
  }
  trainer.train(corpus, 60);

  codec::JpegLikeCodec jpeg(80);
  core::EaszConfig cfg;
  cfg.patchify = mcfg.patchify;
  cfg.erased_per_row = 2;
  cfg.mask_seed = 7;
  const core::EaszPipeline pipeline(cfg, jpeg, &model);

  // The synthetic evaluation corpus, disjoint from training.
  std::vector<image::Image> eval;
  util::Pcg32 erng(57);
  eval.push_back(data::synth_photo(64, 48, erng));
  eval.push_back(data::synth_photo(48, 64, erng));
  eval.push_back(data::synth_cartoon(64, 64, erng));
  eval.push_back(data::synth_texture(48, 48, erng));

  // Calibrate on the decode path itself (what a server would see).
  std::vector<core::ReconstructionModel::CalibSample> samples;
  for (const image::Image& img : eval) {
    const core::DecodedTokens d = pipeline.decode_tokens(pipeline.encode(img));
    samples.push_back({d.tokens, d.recon_mask});
  }
  model.calibrate_and_quantize(samples);

  for (std::size_t i = 0; i < eval.size(); ++i) {
    const core::EaszCompressed c = pipeline.encode(eval[i]);
    const image::Image fp32 = pipeline.decode(c);
    const image::Image int8 = pipeline.decode(c, nn::Precision::kInt8);
    const double psnr_fp32 = metrics::psnr(eval[i], fp32);
    const double psnr_int8 = metrics::psnr(eval[i], int8);
    // Asserted PER IMAGE, not on the mean: one badly-quantized image is a
    // regression even if the average hides it.
    EXPECT_LE(psnr_fp32 - psnr_int8, 0.5)
        << "image " << i << ": fp32 " << psnr_fp32 << " dB vs int8 "
        << psnr_int8 << " dB";
  }
}

}  // namespace
}  // namespace easz
