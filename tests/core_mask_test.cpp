#include <gtest/gtest.h>

#include <cmath>

#include "core/mask.hpp"
#include "util/prng.hpp"

namespace easz::core {
namespace {

TEST(EraseMask, ConstructionValidation) {
  EXPECT_THROW(EraseMask(0, 0), std::invalid_argument);
  EXPECT_THROW(EraseMask(8, 8), std::invalid_argument);
  EXPECT_THROW(EraseMask(8, -1), std::invalid_argument);
  EXPECT_NO_THROW(EraseMask(8, 0));
}

TEST(EraseMask, SetAndQuery) {
  EraseMask m(4, 1);
  EXPECT_FALSE(m.erased(2, 3));
  m.set_erased(2, 3, true);
  EXPECT_TRUE(m.erased(2, 3));
  EXPECT_EQ(m.erased_cols(2), (std::vector<int>{3}));
  EXPECT_EQ(m.kept_cols(2), (std::vector<int>{0, 1, 2}));
}

TEST(EraseMask, KeptAndErasedIndicesPartitionGrid) {
  util::Pcg32 rng(1);
  const EraseMask m = make_row_conditional_mask(8, 2, rng);
  const auto kept = m.kept_indices();
  const auto erased = m.erased_indices();
  EXPECT_EQ(kept.size() + erased.size(), 64U);
  std::vector<bool> seen(64, false);
  for (const int i : kept) seen[i] = true;
  for (const int i : erased) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(EraseMask, SerializationRoundTrip) {
  util::Pcg32 rng(2);
  const EraseMask m = make_row_conditional_mask(8, 3, rng);
  const auto bytes = m.to_bytes();
  EXPECT_EQ(bytes.size(), 8U);  // 64 bits
  const EraseMask restored = EraseMask::from_bytes(bytes, 8, 3);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(restored.erased(r, c), m.erased(r, c));
    }
  }
}

TEST(EraseMask, PaperSizeClaim32x32MaskIs128Bytes) {
  const EraseMask m = make_diagonal_mask(32);
  EXPECT_EQ(m.to_bytes().size(), 128U);  // §IV-A
}

TEST(EraseMask, FromBytesRejectsShortBuffer) {
  EXPECT_THROW(EraseMask::from_bytes({0x00}, 8, 1), std::invalid_argument);
}

TEST(EraseMask, TransposedSwapsCoordinates) {
  util::Pcg32 rng(3);
  const EraseMask m = make_row_conditional_mask(8, 2, rng);
  const EraseMask t = m.transposed();
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) EXPECT_EQ(t.erased(c, r), m.erased(r, c));
  }
}

class RowSamplerSweep
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RowSamplerSweep, ExactlyTErasedPerRow) {
  const auto [grid, t] = GetParam();
  util::Pcg32 rng(grid * 100 + t);
  const EraseMask m = make_row_conditional_mask(grid, t, rng);
  EXPECT_TRUE(m.uniform_rows());
  EXPECT_EQ(m.erased_per_row(), t);
  EXPECT_NEAR(m.erase_ratio(), static_cast<double>(t) / grid, 1e-9);
}

TEST_P(RowSamplerSweep, KeptCountMatches) {
  const auto [grid, t] = GetParam();
  util::Pcg32 rng(grid * 991 + t);
  const EraseMask m = make_row_conditional_mask(grid, t, rng);
  EXPECT_EQ(static_cast<int>(m.kept_indices().size()), grid * (grid - t));
}

INSTANTIATE_TEST_SUITE_P(
    GridAndRatio, RowSamplerSweep,
    testing::Values(std::tuple{4, 1}, std::tuple{8, 1}, std::tuple{8, 2},
                    std::tuple{8, 4}, std::tuple{8, 6}, std::tuple{16, 4},
                    std::tuple{16, 8}, std::tuple{32, 8}, std::tuple{32, 16}));

TEST(RowSampler, IntraRowDistanceConstraintHolds) {
  // Plenty of room: N=16, T=3, delta=2 -> constraint must hold exactly.
  util::Pcg32 rng(4);
  SamplerConfig cfg;
  cfg.delta = 2;
  cfg.inter_delta = 0;
  const EraseMask m = make_row_conditional_mask(16, 3, rng, cfg);
  for (int r = 0; r < 16; ++r) {
    const auto cols = m.erased_cols(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      for (std::size_t j = i + 1; j < cols.size(); ++j) {
        EXPECT_GT(std::abs(cols[i] - cols[j]), 2);
      }
    }
  }
}

TEST(RowSampler, AvoidsContiguousHolesBetterThanRandom) {
  // Count horizontally adjacent erased pairs; the conditional sampler with
  // delta=1 has zero by construction, random has some.
  util::Pcg32 rng_a(5);
  util::Pcg32 rng_b(5);
  int adjacent_proposed = 0;
  int adjacent_random = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const EraseMask p = make_row_conditional_mask(8, 2, rng_a);
    const EraseMask r = make_random_mask(8, 2, rng_b);
    for (int row = 0; row < 8; ++row) {
      for (int col = 0; col + 1 < 8; ++col) {
        adjacent_proposed += p.erased(row, col) && p.erased(row, col + 1);
        adjacent_random += r.erased(row, col) && r.erased(row, col + 1);
      }
    }
  }
  EXPECT_EQ(adjacent_proposed, 0);
  EXPECT_GT(adjacent_random, 0);
}

TEST(RowSampler, RelaxesWhenConstraintsUnsatisfiable) {
  // N=8, T=4 and delta=3 cannot hold (needs columns spread > 3 apart * 4);
  // the sampler must still deliver exactly T per row.
  util::Pcg32 rng(6);
  SamplerConfig cfg;
  cfg.delta = 3;
  cfg.inter_delta = 3;
  const EraseMask m = make_row_conditional_mask(8, 4, rng, cfg);
  EXPECT_TRUE(m.uniform_rows());
}

TEST(RowSampler, DeterministicGivenSeed) {
  util::Pcg32 a(7);
  util::Pcg32 b(7);
  const EraseMask ma = make_row_conditional_mask(8, 2, a);
  const EraseMask mb = make_row_conditional_mask(8, 2, b);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) EXPECT_EQ(ma.erased(r, c), mb.erased(r, c));
  }
}

TEST(RandomMask, ErasesRequestedTotalAnywhereOnGrid) {
  util::Pcg32 rng(8);
  const EraseMask m = make_random_mask(8, 3, rng);
  EXPECT_EQ(m.erased_indices().size(), 24U);  // T * grid cells in total
}

TEST(RandomMask, RowsAreTypicallyNonUniform) {
  // Fully random placement should produce at least one draw with unequal
  // per-row counts across a few trials (overwhelmingly likely).
  util::Pcg32 rng(9);
  bool saw_non_uniform = false;
  for (int trial = 0; trial < 10 && !saw_non_uniform; ++trial) {
    saw_non_uniform = !make_random_mask(8, 2, rng).uniform_rows();
  }
  EXPECT_TRUE(saw_non_uniform);
}

TEST(DiagonalMask, MatchesPaperSpecialCase) {
  const EraseMask m = make_diagonal_mask(8);
  EXPECT_TRUE(m.uniform_rows());
  EXPECT_EQ(m.erased_per_row(), 1);
  for (int r = 0; r < 8; ++r) EXPECT_TRUE(m.erased(r, r));
}

TEST(DiagonalMask, OffsetWraps) {
  const EraseMask m = make_diagonal_mask(4, 2);
  EXPECT_TRUE(m.erased(0, 2));
  EXPECT_TRUE(m.erased(3, 1));
}

TEST(UniformMask, SameColumnsEveryRowLikeDownsampling) {
  const EraseMask m = make_uniform_mask(8, 4);
  EXPECT_TRUE(m.uniform_rows());
  const auto first = m.erased_cols(0);
  for (int r = 1; r < 8; ++r) EXPECT_EQ(m.erased_cols(r), first);
  EXPECT_EQ(static_cast<int>(first.size()), 4);
}

}  // namespace
}  // namespace easz::core
