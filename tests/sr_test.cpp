#include <gtest/gtest.h>

#include "codec/jpeg_like.hpp"
#include "data/synth.hpp"
#include "image/resize.hpp"
#include "metrics/distortion.hpp"
#include "sr/sr_codec.hpp"
#include "sr/srnet.hpp"
#include "util/prng.hpp"

namespace easz::sr {
namespace {

TEST(SrNet, PresetsHaveDistinctCapacities) {
  SrNet a(swinir_lite_spec(), 1);
  SrNet b(realesrgan_lite_spec(), 2);
  EXPECT_GT(a.num_parameters(), b.num_parameters());
}

TEST(SrNet, UpscaleProducesRequestedGeometry) {
  SrNet net(realesrgan_lite_spec(), 3);
  util::Pcg32 rng(4);
  const image::Image low = data::synth_photo(24, 18, rng);
  const image::Image up = net.upscale(low, 48, 36);
  EXPECT_EQ(up.width(), 48);
  EXPECT_EQ(up.height(), 36);
  for (const float v : up.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(SrNet, PretrainingBeatsUntrainedResidual) {
  SrNet net(realesrgan_lite_spec(), 5);
  util::Pcg32 rng(6);
  const image::Image img = data::synth_photo(48, 48, rng);
  const image::Image low =
      image::resize(img, 36, 36, image::Filter::kBicubic);

  const double before = metrics::mse(img, net.upscale(low, 48, 48));
  net.pretrain(60, 0.75F, 48);
  const double after = metrics::mse(img, net.upscale(low, 48, 48));
  EXPECT_LT(after, before);
}

TEST(SrNet, TrainedNetApproachesBicubicOrBetter) {
  SrNet net(swinir_lite_spec(), 7);
  net.pretrain(100, 0.75F, 48);
  util::Pcg32 rng(8);
  double net_mse = 0.0;
  double bicubic_mse = 0.0;
  for (int i = 0; i < 3; ++i) {
    const image::Image img = data::synth_photo(64, 64, rng);
    const image::Image low =
        image::resize(img, 48, 48, image::Filter::kBicubic);
    net_mse += metrics::mse(img, net.upscale(low, 64, 64));
    bicubic_mse += metrics::mse(
        img, image::resize(low, 64, 64, image::Filter::kBicubic));
  }
  EXPECT_LT(net_mse, bicubic_mse * 1.1);
}

TEST(DownUpCodec, RejectsBadScale) {
  codec::JpegLikeCodec jpeg(70);
  EXPECT_THROW(DownUpCodec(jpeg, 0.0F, nullptr), std::invalid_argument);
  EXPECT_THROW(DownUpCodec(jpeg, 1.0F, nullptr), std::invalid_argument);
}

TEST(DownUpCodec, ReducesRateVersusDirectCodec) {
  codec::JpegLikeCodec jpeg(70);
  DownUpCodec downup(jpeg, 0.5F, nullptr);
  util::Pcg32 rng(9);
  const image::Image img = data::synth_photo(96, 64, rng);
  EXPECT_LT(downup.encode(img).bpp(), jpeg.encode(img).bpp());
}

TEST(DownUpCodec, DecodeRestoresFullGeometry) {
  codec::JpegLikeCodec jpeg(70);
  DownUpCodec downup(jpeg, 0.5F, nullptr);
  util::Pcg32 rng(10);
  const image::Image img = data::synth_photo(80, 60, rng);
  const image::Image out = downup.decode(downup.encode(img));
  EXPECT_EQ(out.width(), 80);
  EXPECT_EQ(out.height(), 60);
  EXPECT_LT(metrics::mse(img, out), 0.05);
}

TEST(DownUpCodec, NameReflectsUpsampler) {
  codec::JpegLikeCodec jpeg(70);
  SrNet net(bsrgan_lite_spec(), 11);
  EXPECT_EQ(DownUpCodec(jpeg, 0.5F, nullptr).name(), "jpeg+down+bicubic");
  EXPECT_EQ(DownUpCodec(jpeg, 0.5F, &net).name(), "jpeg+down+bsrgan");
}

TEST(DownUpCodec, QualityKnobDelegatesToInner) {
  codec::JpegLikeCodec jpeg(70);
  DownUpCodec downup(jpeg, 0.5F, nullptr);
  downup.set_quality(30);
  EXPECT_EQ(jpeg.quality(), 30);
  EXPECT_EQ(downup.quality(), 30);
}

}  // namespace
}  // namespace easz::sr
