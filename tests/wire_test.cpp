// Wire-protocol strictness and router-ring tests (DESIGN.md §11).
//
// The contract under test mirrors tests/fuzz_parse_test.cpp's for the EAZC
// container: a frame that parses re-encodes to the identical bytes, and
// every malformed variant — truncation, trailing bytes, bad enum bytes,
// hostile length prefixes — throws WireError instead of yielding a frame
// that "mostly" parsed.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "data/synth.hpp"
#include "serve/router.hpp"
#include "serve/wire.hpp"
#include "util/prng.hpp"

namespace easz::serve::wire {
namespace {

core::ReconModelConfig tiny_model_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

// A realistic request: a synthetic photo pushed through the edge half of
// the pipeline, exactly what a camera fleet ships.
WireRequest sample_request(std::uint64_t seed = 5) {
  util::Pcg32 rng(seed);
  const image::Image img = data::synth_photo(48, 32, rng);
  codec::JpegLikeCodec jpeg(85);
  core::EaszConfig cfg;
  cfg.patchify = tiny_model_config().patchify;
  cfg.erased_per_row = 1;
  cfg.mask_seed = seed;
  const core::EaszPipeline edge(cfg, jpeg, nullptr);

  WireRequest req;
  req.client_tag = 0xDEADBEEFCAFE0000ULL + seed;
  req.tenant = "wildlife";
  req.precision = WirePrecision::kFp32;
  req.codec = "jpeg";
  req.compressed = edge.encode(img);
  return req;
}

// An ok-response carrying real pixels (the float-bit-exactness carrier).
WireResponse sample_response(std::uint64_t seed = 9) {
  util::Pcg32 rng(seed);
  ServeResponse served;
  served.image =
      std::make_shared<image::Image>(data::synth_photo(32, 24, rng));
  served.cache_hit = true;
  served.request_id = 41;
  served.rung = 2;
  served.model_version = 7;
  WireResponse resp = make_ok_response(served);
  resp.client_tag = 0x1234;
  return resp;
}

std::vector<std::uint8_t> body_of(const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), kLengthPrefixBytes);
  return {frame.begin() + kLengthPrefixBytes, frame.end()};
}

// ------------------------------------------------------------- round trip

TEST(WireTest, RequestRoundTripIsByteIdentical) {
  const WireRequest req = sample_request();
  const std::vector<std::uint8_t> frame = encode_request(req);
  const std::vector<std::uint8_t> body = body_of(frame);

  EXPECT_EQ(frame_kind(body), FrameKind::kRequest);
  const WireRequest parsed = parse_request(body);
  EXPECT_EQ(parsed.client_tag, req.client_tag);
  EXPECT_EQ(parsed.tenant, req.tenant);
  EXPECT_EQ(parsed.precision, req.precision);
  EXPECT_EQ(parsed.codec, req.codec);
  EXPECT_EQ(parsed.compressed.payload.bytes, req.compressed.payload.bytes);
  EXPECT_EQ(parsed.compressed.mask_bytes, req.compressed.mask_bytes);
  EXPECT_EQ(parsed.compressed.full_width, req.compressed.full_width);
  EXPECT_EQ(parsed.compressed.full_height, req.compressed.full_height);
  EXPECT_EQ(encode_request(parsed), frame);

  const ServeRequest sreq = parsed.to_serve_request();
  EXPECT_EQ(sreq.tenant, "wildlife");
  EXPECT_EQ(sreq.precision, TenantPrecision::kFp32);
  EXPECT_EQ(sreq.compressed.payload.bytes, req.compressed.payload.bytes);
}

TEST(WireTest, ResponseRoundTripIsByteIdentical) {
  const WireResponse resp = sample_response();
  const std::vector<std::uint8_t> frame = encode_response(resp);
  const std::vector<std::uint8_t> body = body_of(frame);

  EXPECT_EQ(frame_kind(body), FrameKind::kResponse);
  const WireResponse parsed = parse_response(body);
  EXPECT_EQ(parsed.client_tag, resp.client_tag);
  EXPECT_EQ(parsed.status, ResponseStatus::kOk);
  EXPECT_EQ(parsed.cache_hit, 1);
  EXPECT_EQ(parsed.request_id, 41U);
  EXPECT_EQ(parsed.model_version, 7U);
  EXPECT_EQ(parsed.rung, 2);
  EXPECT_EQ(parsed.pixels, resp.pixels);
  EXPECT_EQ(encode_response(parsed), frame);

  // Pixel bytes reassemble to the BIT-identical image.
  util::Pcg32 rng(9);
  const image::Image original = data::synth_photo(32, 24, rng);
  const image::Image rebuilt = parsed.to_image();
  ASSERT_EQ(rebuilt.width(), original.width());
  ASSERT_EQ(rebuilt.height(), original.height());
  ASSERT_EQ(rebuilt.channels(), original.channels());
  EXPECT_EQ(std::memcmp(rebuilt.data().data(), original.data().data(),
                        original.data().size() * sizeof(float)),
            0);
}

TEST(WireTest, ShedAndFailedResponsesRoundTrip) {
  WireResponse shed = make_shed_response(SubmitStatus::kRateLimited, 13);
  shed.client_tag = 99;
  const auto shed_body = body_of(encode_response(shed));
  const WireResponse shed_parsed = parse_response(shed_body);
  EXPECT_EQ(shed_parsed.status, ResponseStatus::kShed);
  EXPECT_EQ(static_cast<SubmitStatus>(shed_parsed.submit_status),
            SubmitStatus::kRateLimited);
  EXPECT_EQ(shed_parsed.client_tag, 99U);
  EXPECT_EQ(encode_response(shed_parsed), encode_response(shed));

  const WireResponse failed = make_failed_response("decode exploded", 14);
  const auto failed_body = body_of(encode_response(failed));
  const WireResponse failed_parsed = parse_response(failed_body);
  EXPECT_EQ(failed_parsed.status, ResponseStatus::kFailed);
  EXPECT_EQ(failed_parsed.error, "decode exploded");
  EXPECT_EQ(failed_parsed.request_id, 14U);
}

// ----------------------------------------------------------- strictness

TEST(WireTest, EveryTruncationOfARequestThrows) {
  const std::vector<std::uint8_t> body = body_of(
      encode_request(sample_request()));
  for (std::size_t len = 0; len < body.size(); ++len) {
    const std::vector<std::uint8_t> prefix(body.begin(), body.begin() + len);
    EXPECT_THROW(parse_request(prefix), WireError) << "prefix length " << len;
  }
}

TEST(WireTest, EveryTruncationOfAResponseThrows) {
  const std::vector<std::uint8_t> body =
      body_of(encode_response(sample_response()));
  for (std::size_t len = 0; len < body.size(); ++len) {
    const std::vector<std::uint8_t> prefix(body.begin(), body.begin() + len);
    EXPECT_THROW(parse_response(prefix), WireError)
        << "prefix length " << len;
  }
}

TEST(WireTest, TrailingBytesThrow) {
  std::vector<std::uint8_t> req = body_of(encode_request(sample_request()));
  req.push_back(0);
  EXPECT_THROW(parse_request(req), WireError);

  std::vector<std::uint8_t> resp =
      body_of(encode_response(sample_response()));
  resp.push_back(0xFF);
  EXPECT_THROW(parse_response(resp), WireError);
}

TEST(WireTest, BadMagicAndKindThrow) {
  std::vector<std::uint8_t> body = body_of(encode_request(sample_request()));
  std::vector<std::uint8_t> bad_magic = body;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(parse_request(bad_magic), WireError);
  EXPECT_THROW(frame_kind(bad_magic), WireError);

  std::vector<std::uint8_t> bad_kind = body;
  bad_kind[4] = 0x77;  // kind byte follows the u32 magic
  EXPECT_THROW(parse_request(bad_kind), WireError);
  EXPECT_THROW(frame_kind(bad_kind), WireError);

  // A response body handed to the request parser (and vice versa) throws.
  const auto resp_body = body_of(encode_response(sample_response()));
  EXPECT_THROW(parse_request(resp_body), WireError);
  EXPECT_THROW(parse_response(body), WireError);
}

// The fuzz contract from tests/fuzz_parse_test.cpp, applied to frames:
// corrupt ANY single byte and the parser must either throw WireError or
// produce a frame that re-encodes byte-identically to the corrupted input
// (i.e. the corruption landed in a spot whose every value is meaningful).
TEST(WireTest, BitFlipCorpusThrowsOrRoundTripsFaithfully) {
  const std::vector<std::uint8_t> req_body =
      body_of(encode_request(sample_request(21)));
  const std::vector<std::uint8_t> resp_body =
      body_of(encode_response(sample_response(22)));
  util::Pcg32 rng(0xF11F);

  auto sweep = [&](const std::vector<std::uint8_t>& clean, bool is_request) {
    // Exhaustive over the structural head; sampled over the blob tail.
    const std::size_t head = std::min<std::size_t>(clean.size(), 96);
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < head; ++i) positions.push_back(i);
    for (int i = 0; i < 400; ++i) {
      positions.push_back(head + rng.next_u32() % (clean.size() - head));
    }
    for (const std::size_t pos : positions) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> mutated = clean;
        mutated[pos] ^= static_cast<std::uint8_t>(1u << bit);
        try {
          if (is_request) {
            const WireRequest parsed = parse_request(mutated);
            EXPECT_EQ(body_of(encode_request(parsed)), mutated)
                << "request byte " << pos << " bit " << bit;
          } else {
            const WireResponse parsed = parse_response(mutated);
            EXPECT_EQ(body_of(encode_response(parsed)), mutated)
                << "response byte " << pos << " bit " << bit;
          }
        } catch (const WireError&) {
          // Rejected outright: equally acceptable.
        }
      }
    }
  };
  sweep(req_body, /*is_request=*/true);
  sweep(resp_body, /*is_request=*/false);
}

// ------------------------------------------------------------- deframer

TEST(WireTest, DeframerSplitsChunkedStreams) {
  const std::vector<std::uint8_t> f1 = encode_request(sample_request(31));
  const std::vector<std::uint8_t> f2 =
      encode_response(sample_response(32));
  std::vector<std::uint8_t> stream = f1;
  stream.insert(stream.end(), f2.begin(), f2.end());

  // One byte at a time: the worst-case TCP segmentation.
  Deframer d;
  std::vector<std::vector<std::uint8_t>> bodies;
  for (const std::uint8_t byte : stream) {
    d.feed(&byte, 1);
    while (auto body = d.next()) bodies.push_back(std::move(*body));
  }
  ASSERT_EQ(bodies.size(), 2U);
  EXPECT_EQ(bodies[0], body_of(f1));
  EXPECT_EQ(bodies[1], body_of(f2));
  EXPECT_EQ(d.buffered_bytes(), 0U);

  // Both frames in a single feed drain in one pass too.
  Deframer all;
  all.feed(stream.data(), stream.size());
  ASSERT_TRUE(all.next().has_value());
  ASSERT_TRUE(all.next().has_value());
  EXPECT_FALSE(all.next().has_value());
}

TEST(WireTest, DeframerRejectsOversizeLengthBeforeBuffering) {
  // A hostile 4-GB length prefix must be rejected from the 4 prefix bytes
  // alone — no body is ever buffered or allocated for it.
  Deframer d(1 << 20);
  const std::uint8_t hostile[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  d.feed(hostile, sizeof(hostile));
  EXPECT_THROW(d.next(), WireError);
  EXPECT_LE(d.buffered_bytes(), sizeof(hostile));

  // Exactly at the cap is still fine; one past it is not.
  Deframer at_cap(64);
  std::uint8_t prefix[4] = {64, 0, 0, 0};
  at_cap.feed(prefix, 4);
  EXPECT_FALSE(at_cap.next().has_value());  // waiting for the body: legal

  Deframer past_cap(64);
  prefix[0] = 65;
  past_cap.feed(prefix, 4);
  EXPECT_THROW(past_cap.next(), WireError);
}

// ---------------------------------------------------------- routing hash

TEST(WireTest, RoutingHashKeysOnCacheIdentityNotClientTag) {
  const WireRequest a = sample_request(51);
  WireRequest b = a;
  b.client_tag = a.client_tag + 1;  // correlation token: NOT part of the key
  EXPECT_EQ(routing_hash(a), routing_hash(b));

  WireRequest other_payload = a;
  other_payload.compressed.payload.bytes[0] ^= 1;
  EXPECT_NE(routing_hash(a), routing_hash(other_payload));

  WireRequest other_geometry = a;
  other_geometry.compressed.full_width += 16;
  EXPECT_NE(routing_hash(a), routing_hash(other_geometry));

  WireRequest other_precision = a;
  other_precision.precision = WirePrecision::kInt8;
  EXPECT_NE(routing_hash(a), routing_hash(other_precision));

  // Stable across processes/runs: the router and the test agree forever.
  EXPECT_EQ(routing_hash(a), routing_hash(sample_request(51)));
}

// ------------------------------------------------------------- hash ring

TEST(HashRingTest, RepeatKeysAlwaysLandOnTheSameReplica) {
  const HashRing ring(4, 64);
  util::Pcg32 rng(77);
  int same = 0;
  constexpr int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
    const std::size_t first = ring.lookup(key);
    // Ten repeats of the same key — the acceptance criterion is >= 90%
    // affinity; a deterministic ring delivers 100%.
    bool stable = true;
    for (int r = 0; r < 10; ++r) stable = stable && ring.lookup(key) == first;
    same += stable ? 1 : 0;
  }
  EXPECT_EQ(same, kKeys);
}

TEST(HashRingTest, SpreadsKeysAcrossAllReplicas) {
  const HashRing ring(4, 64);
  util::Pcg32 rng(78);
  std::vector<int> counts(4, 0);
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
    ++counts[ring.lookup(key)];
  }
  for (int i = 0; i < 4; ++i) {
    // Every replica takes a meaningful share; with 64 vnodes the split can
    // still be ~2x off fair for a 4-replica fleet, so assert against a
    // quarter of the fair share rather than exact balance.
    EXPECT_GT(counts[i], kKeys / 16) << "replica " << i;
  }
}

TEST(HashRingTest, ResizeRemapsOnlyAFractionOfKeys) {
  const HashRing three(3, 64);
  const HashRing four(4, 64);
  util::Pcg32 rng(79);
  int moved = 0;
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(rng.next_u32()) << 32) | rng.next_u32();
    if (three.lookup(key) != four.lookup(key)) ++moved;
  }
  // The consistent-hash property: growing 3 -> 4 replicas remaps ~1/4 of
  // the key space, not all of it. Allow generous slack over the ideal.
  EXPECT_LT(moved, kKeys / 2);
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, RejectsDegenerateConfigurations) {
  EXPECT_THROW(HashRing(0, 64), std::invalid_argument);
  EXPECT_THROW(HashRing(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace easz::serve::wire
