#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/prng.hpp"

namespace easz::tensor {
namespace {

// Central-difference gradient check: perturbs every element of `input` and
// compares numeric dLoss/dx against autograd.
void check_gradients(Tensor& input, const std::function<Tensor()>& loss_fn,
                     float eps = 1e-3F, float tol = 2e-2F) {
  Tensor loss = loss_fn();
  loss.zero_grad();
  loss = loss_fn();
  loss.backward();
  const std::vector<float> analytic = input.node()->grad;
  ASSERT_EQ(analytic.size(), input.numel());

  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float orig = input.data()[i];
    input.data()[i] = orig + eps;
    const float up = loss_fn().item();
    input.data()[i] = orig - eps;
    const float down = loss_fn().item();
    input.data()[i] = orig;
    const float numeric = (up - down) / (2.0F * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * std::max(1.0F, std::fabs(numeric)))
        << "element " << i;
  }
}

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24U);
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(0), 2);
}

TEST(Tensor, RejectsBadShape) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>(3)), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesDataAndGradient) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor b = a.reshape({3, 2});
  EXPECT_EQ(b.data()[4], 5.0F);
  Tensor loss = sum(mul(b, b));
  loss.backward();
  EXPECT_FLOAT_EQ(a.grad()[2], 6.0F);  // d(sum x^2)/dx = 2x
}

TEST(Tensor, DetachBreaksGraph) {
  Tensor a({2}, {1, 2}, true);
  Tensor b = scale(a, 3.0F).detach();
  EXPECT_FALSE(b.requires_grad());
  EXPECT_FLOAT_EQ(b.data()[1], 6.0F);
}

TEST(Tensor, BackwardRequiresScalar) {
  Tensor a({2}, {1, 2}, true);
  EXPECT_THROW(a.backward(), std::logic_error);
}

TEST(Ops, AddSubMulForward) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  EXPECT_FLOAT_EQ(add(a, b).data()[1], 22.0F);
  EXPECT_FLOAT_EQ(sub(a, b).data()[2], -27.0F);
  EXPECT_FLOAT_EQ(mul(a, b).data()[0], 10.0F);
  EXPECT_FLOAT_EQ(scale(a, -2.0F).data()[2], -6.0F);
  EXPECT_FLOAT_EQ(add_scalar(a, 0.5F).data()[0], 1.5F);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mse_loss(a, b), std::invalid_argument);
}

TEST(Ops, AddBroadcastBiasPattern) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  const Tensor y = add_broadcast(a, b);
  EXPECT_FLOAT_EQ(y.data()[0], 11.0F);
  EXPECT_FLOAT_EQ(y.data()[5], 36.0F);
}

TEST(Ops, AddBroadcastRejectsNonSuffix) {
  Tensor a({2, 3});
  Tensor b({2});
  EXPECT_THROW(add_broadcast(a, b), std::invalid_argument);
}

TEST(Ops, MatmulForwardKnownValues) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.data()[0], 19.0F);
  EXPECT_FLOAT_EQ(c.data()[1], 22.0F);
  EXPECT_FLOAT_EQ(c.data()[2], 43.0F);
  EXPECT_FLOAT_EQ(c.data()[3], 50.0F);
}

TEST(Ops, MatmulGradient) {
  util::Pcg32 rng(1);
  Tensor a = Tensor::randn({3, 4}, rng, 1.0F, true);
  Tensor b = Tensor::randn({4, 2}, rng, 1.0F, true);
  check_gradients(a, [&]() { return sum(mul(matmul(a, b), matmul(a, b))); });
  check_gradients(b, [&]() { return sum(mul(matmul(a, b), matmul(a, b))); });
}

TEST(Ops, BmmMatchesLoopedMatmul) {
  util::Pcg32 rng(2);
  Tensor a = Tensor::randn({2, 3, 4}, rng);
  Tensor b = Tensor::randn({2, 4, 5}, rng);
  const Tensor c = bmm(a, b);
  for (int bi = 0; bi < 2; ++bi) {
    Tensor a2({3, 4});
    Tensor b2({4, 5});
    std::copy_n(a.data().begin() + bi * 12, 12, a2.data().begin());
    std::copy_n(b.data().begin() + bi * 20, 20, b2.data().begin());
    const Tensor c2 = matmul(a2, b2);
    for (int i = 0; i < 15; ++i) {
      EXPECT_NEAR(c.data()[bi * 15 + i], c2.data()[i], 1e-5F);
    }
  }
}

TEST(Ops, BmmTransposeB) {
  util::Pcg32 rng(3);
  Tensor a = Tensor::randn({1, 2, 3}, rng);
  Tensor b = Tensor::randn({1, 4, 3}, rng);
  const Tensor c = bmm(a, b, true);  // [1,2,4]
  EXPECT_EQ(c.shape(), (Shape{1, 2, 4}));
  float expect = 0.0F;
  for (int p = 0; p < 3; ++p) expect += a.data()[3 + p] * b.data()[6 + p];
  EXPECT_NEAR(c.data()[1 * 4 + 2], expect, 1e-5F);
}

TEST(Ops, BmmGradient) {
  util::Pcg32 rng(4);
  Tensor a = Tensor::randn({2, 2, 3}, rng, 1.0F, true);
  Tensor b = Tensor::randn({2, 3, 2}, rng, 1.0F, true);
  check_gradients(a, [&]() { return sum(mul(bmm(a, b), bmm(a, b))); });
  check_gradients(b, [&]() { return sum(mul(bmm(a, b), bmm(a, b))); });
}

TEST(Ops, BmmTransposeGradient) {
  util::Pcg32 rng(5);
  Tensor a = Tensor::randn({1, 3, 4}, rng, 1.0F, true);
  Tensor b = Tensor::randn({1, 2, 4}, rng, 1.0F, true);
  check_gradients(a, [&]() { return sum(mul(bmm(a, b, true), bmm(a, b, true))); });
  check_gradients(b, [&]() { return sum(mul(bmm(a, b, true), bmm(a, b, true))); });
}

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Pcg32 rng(6);
  Tensor a = Tensor::randn({4, 7}, rng, 3.0F);
  const Tensor y = softmax(a);
  for (int r = 0; r < 4; ++r) {
    float s = 0.0F;
    for (int j = 0; j < 7; ++j) s += y.data()[r * 7 + j];
    EXPECT_NEAR(s, 1.0F, 1e-5F);
  }
}

TEST(Ops, SoftmaxStableForLargeLogits) {
  Tensor a({1, 3}, {1000.0F, 1000.0F, -1000.0F});
  const Tensor y = softmax(a);
  EXPECT_NEAR(y.data()[0], 0.5F, 1e-5F);
  EXPECT_NEAR(y.data()[2], 0.0F, 1e-6F);
}

TEST(Ops, SoftmaxGradient) {
  util::Pcg32 rng(7);
  Tensor a = Tensor::randn({2, 5}, rng, 1.0F, true);
  Tensor w = Tensor::randn({2, 5}, rng);
  check_gradients(a, [&]() { return sum(mul(softmax(a), w)); });
}

TEST(Ops, LayernormNormalisesRows) {
  util::Pcg32 rng(8);
  Tensor a = Tensor::randn({3, 16}, rng, 5.0F);
  Tensor gamma = Tensor::full({16}, 1.0F);
  Tensor beta = Tensor::zeros({16});
  const Tensor y = layernorm(a, gamma, beta);
  for (int r = 0; r < 3; ++r) {
    float mean = 0.0F;
    for (int j = 0; j < 16; ++j) mean += y.data()[r * 16 + j];
    mean /= 16.0F;
    float var = 0.0F;
    for (int j = 0; j < 16; ++j) {
      const float c = y.data()[r * 16 + j] - mean;
      var += c * c;
    }
    var /= 16.0F;
    EXPECT_NEAR(mean, 0.0F, 1e-4F);
    EXPECT_NEAR(var, 1.0F, 1e-2F);
  }
}

TEST(Ops, LayernormGradient) {
  util::Pcg32 rng(9);
  Tensor a = Tensor::randn({2, 6}, rng, 2.0F, true);
  Tensor gamma = Tensor::randn({6}, rng, 1.0F, true);
  Tensor beta = Tensor::randn({6}, rng, 1.0F, true);
  Tensor w = Tensor::randn({2, 6}, rng);
  const auto loss = [&]() { return sum(mul(layernorm(a, gamma, beta), w)); };
  check_gradients(a, loss);
  check_gradients(gamma, loss);
  check_gradients(beta, loss);
}

TEST(Ops, ActivationGradients) {
  util::Pcg32 rng(10);
  Tensor a = Tensor::randn({12}, rng, 1.5F, true);
  // Nudge values away from ReLU's kink where numeric gradients are invalid.
  for (auto& v : a.data()) {
    if (std::fabs(v) < 0.05F) v = 0.1F;
  }
  Tensor w = Tensor::randn({12}, rng);
  check_gradients(a, [&]() { return sum(mul(gelu(a), w)); });
  check_gradients(a, [&]() { return sum(mul(relu(a), w)); });
  check_gradients(a, [&]() { return sum(mul(sigmoid(a), w)); });
  check_gradients(a, [&]() { return sum(mul(tanh_op(a), w)); });
  check_gradients(a, [&]() { return sum(mul(leaky_relu(a, 0.1F), w)); });
}

TEST(Ops, SliceAndConcatRoundTrip) {
  util::Pcg32 rng(11);
  Tensor a = Tensor::randn({2, 3, 8}, rng);
  const Tensor left = slice_last(a, 0, 3);
  const Tensor mid = slice_last(a, 3, 2);
  const Tensor right = slice_last(a, 5, 3);
  const Tensor glued = concat_last({left, mid, right});
  EXPECT_EQ(glued.shape(), a.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(glued.data()[i], a.data()[i]);
  }
}

TEST(Ops, SliceGradient) {
  util::Pcg32 rng(12);
  Tensor a = Tensor::randn({2, 6}, rng, 1.0F, true);
  Tensor w = Tensor::randn({2, 3}, rng);
  check_gradients(a, [&]() { return sum(mul(slice_last(a, 2, 3), w)); });
}

TEST(Ops, ConcatGradient) {
  util::Pcg32 rng(13);
  Tensor a = Tensor::randn({2, 3}, rng, 1.0F, true);
  Tensor b = Tensor::randn({2, 2}, rng, 1.0F, true);
  Tensor w = Tensor::randn({2, 5}, rng);
  const auto loss = [&]() { return sum(mul(concat_last({a, b}), w)); };
  check_gradients(a, loss);
  check_gradients(b, loss);
}

TEST(Ops, SliceRejectsOutOfBounds) {
  Tensor a({2, 4});
  EXPECT_THROW(slice_last(a, 3, 2), std::invalid_argument);
  EXPECT_THROW(slice_last(a, -1, 2), std::invalid_argument);
}

TEST(Ops, GatherScatterRowsRoundTrip) {
  Tensor a({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<int> idx = {2, 0};
  const Tensor g = gather_rows(a, idx);
  EXPECT_FLOAT_EQ(g.data()[0], 5.0F);
  EXPECT_FLOAT_EQ(g.data()[2], 1.0F);
  const Tensor s = scatter_rows(g, idx, 4);
  EXPECT_FLOAT_EQ(s.data()[4], 5.0F);  // row 2 restored
  EXPECT_FLOAT_EQ(s.data()[2], 0.0F);  // row 1 zero-filled
}

TEST(Ops, GatherScatterGradients) {
  util::Pcg32 rng(14);
  Tensor a = Tensor::randn({4, 3}, rng, 1.0F, true);
  const std::vector<int> idx = {1, 3};
  Tensor w = Tensor::randn({2, 3}, rng);
  check_gradients(a, [&]() { return sum(mul(gather_rows(a, idx), w)); });

  Tensor b = Tensor::randn({2, 3}, rng, 1.0F, true);
  Tensor w2 = Tensor::randn({5, 3}, rng);
  check_gradients(b, [&]() { return sum(mul(scatter_rows(b, idx, 5), w2)); });
}

TEST(Ops, ScatterRejectsBadIndex) {
  Tensor a({2, 3});
  EXPECT_THROW(scatter_rows(a, {0, 5}, 4), std::invalid_argument);
  EXPECT_THROW(scatter_rows(a, {0}, 4), std::invalid_argument);
}

TEST(Ops, LossesKnownValues) {
  Tensor p({2}, {1.0F, 3.0F});
  Tensor t({2}, {0.0F, 1.0F});
  EXPECT_NEAR(mse_loss(p, t).item(), (1.0F + 4.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(l1_loss(p, t).item(), (1.0F + 2.0F) / 2.0F, 1e-6F);
}

TEST(Ops, LossGradients) {
  util::Pcg32 rng(15);
  Tensor p = Tensor::randn({6}, rng, 1.0F, true);
  Tensor t = Tensor::randn({6}, rng);
  check_gradients(p, [&]() { return mse_loss(p, t); });
  check_gradients(p, [&]() { return l1_loss(p, t); });
}

TEST(Ops, MeanIsSumOverN) {
  Tensor a({4}, {1, 2, 3, 4});
  EXPECT_NEAR(mean(a).item(), 2.5F, 1e-6F);
}

TEST(Ops, Conv2dKnownValues) {
  // 1x1x3x3 input, 1x1x2x2 all-ones kernel, stride 1, no pad -> 2x2 sums.
  Tensor a({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::full({1, 1, 2, 2}, 1.0F);
  Tensor none;
  const Tensor y = conv2d(a, w, none, 1, 0);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.data()[0], 12.0F);
  EXPECT_FLOAT_EQ(y.data()[3], 28.0F);
}

TEST(Ops, Conv2dStridePad) {
  Tensor a = Tensor::full({1, 1, 4, 4}, 1.0F);
  Tensor w = Tensor::full({2, 1, 3, 3}, 1.0F);
  Tensor bias({2}, {0.0F, 100.0F});
  const Tensor y = conv2d(a, w, bias, 2, 1);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2, 2}));
  EXPECT_FLOAT_EQ(y.data()[0], 4.0F);  // corner: 2x2 valid taps
  EXPECT_FLOAT_EQ(y.data()[4], 104.0F);
}

TEST(Ops, Conv2dGradient) {
  util::Pcg32 rng(16);
  Tensor a = Tensor::randn({1, 2, 4, 4}, rng, 1.0F, true);
  Tensor w = Tensor::randn({3, 2, 3, 3}, rng, 0.5F, true);
  Tensor bias = Tensor::randn({3}, rng, 0.5F, true);
  const auto loss = [&]() {
    const Tensor y = conv2d(a, w, bias, 2, 1);
    return sum(mul(y, y));
  };
  check_gradients(w, loss);
  check_gradients(bias, loss);
  check_gradients(a, loss);
}

TEST(Ops, ConvTransposeInvertsDownsampleShape) {
  util::Pcg32 rng(17);
  Tensor a = Tensor::randn({1, 3, 8, 8}, rng);
  Tensor w_down = Tensor::randn({5, 3, 4, 4}, rng, 0.2F);
  Tensor none;
  const Tensor down = conv2d(a, w_down, none, 2, 1);
  EXPECT_EQ(down.shape(), (Shape{1, 5, 4, 4}));
  Tensor w_up = Tensor::randn({5, 3, 4, 4}, rng, 0.2F);
  const Tensor up = conv2d_transpose(down, w_up, none, 2, 1);
  EXPECT_EQ(up.shape(), (Shape{1, 3, 8, 8}));
}

TEST(Ops, ConvTransposeGradient) {
  util::Pcg32 rng(18);
  Tensor a = Tensor::randn({1, 2, 3, 3}, rng, 1.0F, true);
  Tensor w = Tensor::randn({2, 3, 4, 4}, rng, 0.5F, true);
  Tensor bias = Tensor::randn({3}, rng, 0.5F, true);
  const auto loss = [&]() {
    const Tensor y = conv2d_transpose(a, w, bias, 2, 1);
    return sum(mul(y, y));
  };
  check_gradients(a, loss);
  check_gradients(w, loss);
  check_gradients(bias, loss);
}

TEST(Ops, ApplyPermutationReordersElements) {
  Tensor a({4}, {10, 20, 30, 40});
  const std::vector<std::size_t> src = {3, 2, 1, 0};
  const Tensor y = apply_permutation(a, src, {2, 2});
  EXPECT_EQ(y.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(y.data()[0], 40.0F);
  EXPECT_FLOAT_EQ(y.data()[3], 10.0F);
}

TEST(Ops, ApplyPermutationGradient) {
  util::Pcg32 rng(19);
  Tensor a = Tensor::randn({6}, rng, 1.0F, true);
  const std::vector<std::size_t> src = {5, 0, 3, 1, 4, 2};
  Tensor w = Tensor::randn({6}, rng);
  check_gradients(a, [&]() { return sum(mul(apply_permutation(a, src, {6}), w)); });
}

TEST(Ops, ApplyPermutationRejectsSizeMismatch) {
  Tensor a({4});
  EXPECT_THROW(apply_permutation(a, {0, 1, 2}, {3}), std::invalid_argument);
  EXPECT_THROW(apply_permutation(a, {0, 1, 2, 3}, {5}), std::invalid_argument);
}

// ---- negative paths / degenerate shapes -----------------------------------

TEST(Ops, MatmulRejectsIncompatibleShapes) {
  Tensor a({2, 3});
  Tensor b({4, 2});  // inner dim 3 != 4
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  Tensor c({3});  // rank 1
  EXPECT_THROW(matmul(a, c), std::invalid_argument);
  Tensor d({1, 2, 3});  // rank 3 belongs to bmm
  EXPECT_THROW(matmul(d, a), std::invalid_argument);
}

TEST(Ops, BmmRejectsIncompatibleShapes) {
  Tensor a({2, 3, 4});
  EXPECT_THROW(bmm(a, Tensor({3, 4, 5})), std::invalid_argument);  // batch
  EXPECT_THROW(bmm(a, Tensor({2, 5, 6})), std::invalid_argument);  // inner
  EXPECT_THROW(bmm(a, Tensor({4, 5})), std::invalid_argument);     // rank
  // transpose_b flips which dim must match k.
  EXPECT_THROW(bmm(a, Tensor({2, 4, 5}), true), std::invalid_argument);
  EXPECT_NO_THROW(bmm(a, Tensor({2, 5, 4}), true));
}

TEST(Ops, SoftmaxOneWideRowsAreAllOnes) {
  // d = 1: every row's distribution collapses to certainty. Degenerate but
  // legal (a 1-token attention context).
  Tensor a({4, 1}, {-100.0F, 0.0F, 3.5F, 100.0F});
  const Tensor y = softmax(a);
  for (int r = 0; r < 4; ++r) EXPECT_FLOAT_EQ(y.data()[r], 1.0F);
}

TEST(Ops, EmptyRowsAreUnrepresentable) {
  // Zero-sized dims are rejected at construction, so softmax can never see
  // an empty row — the throw happens before the op.
  EXPECT_THROW(Tensor({4, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({0}), std::invalid_argument);
}

TEST(Tensor, DetachCarriesDataAndDropsParents) {
  Tensor a({2, 2}, {1, 2, 3, 4}, true);
  Tensor b = mul(a, a);
  Tensor d = b.detach();
  // Same values as the source at detach time...
  EXPECT_EQ(d.data(), b.data());
  EXPECT_EQ(d.shape(), b.shape());
  // ...but outside the graph: no parents, no backward hook, no grad flow.
  EXPECT_TRUE(d.node()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(d.node()->backward_fn));
  EXPECT_FALSE(d.requires_grad());
  // Mutating the detached copy must not corrupt the graph's buffers
  // (reconstruct()'s paste-through relies on this).
  d.data()[0] = 99.0F;
  EXPECT_FLOAT_EQ(b.data()[0], 1.0F);
  // And backward through the original still works and ignores d.
  sum(b).backward();
  EXPECT_FLOAT_EQ(a.grad()[3], 8.0F);  // d(a^2)/da = 2a
}

TEST(Autograd, GradientAccumulatesAcrossUses) {
  Tensor a({1}, {3.0F}, true);
  // y = a * a + a => dy/da = 2a + 1 = 7
  Tensor y = add(mul(a, a), a);
  y.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 7.0F);
}

TEST(Autograd, DiamondGraphHandledOnce) {
  Tensor a({1}, {2.0F}, true);
  Tensor b = mul(a, a);        // 4
  Tensor c = add(b, b);        // 8, b used twice
  c.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 8.0F);  // d(2a^2)/da = 4a
}

TEST(Autograd, ZeroGradClears) {
  Tensor a({1}, {2.0F}, true);
  Tensor y = mul(a, a);
  y.backward();
  EXPECT_GT(a.grad().size(), 0U);
  y.zero_grad();
  EXPECT_TRUE(a.grad().empty());
}

}  // namespace
}  // namespace easz::tensor
