#include <gtest/gtest.h>

#include <cmath>

#include "codec/jpeg_like.hpp"
#include "core/patchify.hpp"
#include "core/pipeline.hpp"
#include "core/squeeze.hpp"
#include "core/trainer.hpp"
#include "data/synth.hpp"
#include "util/prng.hpp"

namespace easz::core {
namespace {

double image_mse(const image::Image& a, const image::Image& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.data().size());
}

TEST(Patchify, ConfigValidation) {
  PatchifyConfig bad{.patch = 32, .sub_patch = 5};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  PatchifyConfig good{.patch = 32, .sub_patch = 4};
  EXPECT_NO_THROW(good.validate());
  EXPECT_EQ(good.grid(), 8);
  EXPECT_EQ(good.tokens(), 64);
  EXPECT_EQ(good.token_dim(3), 48);
}

TEST(Patchify, TokensRoundTrip) {
  util::Pcg32 rng(1);
  const image::Image img = data::synth_photo(64, 64, rng);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const tensor::Tensor tokens = image_to_tokens(img, cfg);
  EXPECT_EQ(tokens.dim(0), 4);
  EXPECT_EQ(tokens.dim(1), 64);
  EXPECT_EQ(tokens.dim(2), 48);
  const image::Image back = tokens_to_image(tokens, 64, 64, 3, cfg);
  EXPECT_TRUE(back.approx_equal(img, 1e-6F));
}

TEST(Patchify, RoundTripWithPadding) {
  util::Pcg32 rng(2);
  const image::Image img = data::synth_photo(50, 45, rng);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 2};
  const tensor::Tensor tokens = image_to_tokens(img, cfg);
  EXPECT_EQ(tokens.dim(0), 4);  // 2x2 padded patches
  const image::Image back = tokens_to_image(tokens, 50, 45, 3, cfg);
  EXPECT_TRUE(back.approx_equal(img, 1e-6F));
}

TEST(Patchify, PixelPermutationMatchesDirectLayout) {
  util::Pcg32 rng(3);
  const image::Image img = data::synth_photo(32, 32, rng);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const tensor::Tensor tokens = image_to_tokens(img, cfg);
  const auto perm = tokens_to_patch_pixels_perm(1, 3, cfg);
  const tensor::Tensor pixels =
      tensor::apply_permutation(tokens, perm, {1, 3, 32, 32});
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        EXPECT_FLOAT_EQ(
            pixels.data()[(static_cast<std::size_t>(c) * 32 + y) * 32 + x],
            img.at(c, y, x));
      }
    }
  }
}

TEST(Squeeze, GeometryShrinksByEraseRatio) {
  util::Pcg32 rng(4);
  const image::Image img = data::synth_photo(64, 64, rng);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const EraseMask mask = make_row_conditional_mask(8, 2, rng);
  const image::Image squeezed = erase_and_squeeze(img, mask, cfg);
  EXPECT_EQ(squeezed.width(), 64 * 6 / 8);
  EXPECT_EQ(squeezed.height(), 64);
}

TEST(Squeeze, UnsqueezePlacesKeptContentExactly) {
  util::Pcg32 rng(5);
  const image::Image img = data::synth_photo(64, 32, rng);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const EraseMask mask = make_row_conditional_mask(8, 2, rng);
  const image::Image squeezed = erase_and_squeeze(img, mask, cfg);
  const image::Image restored = unsqueeze(squeezed, mask, cfg, 64, 32);

  const int b = cfg.sub_patch;
  for (int py = 0; py < 1; ++py) {
    for (int px = 0; px < 2; ++px) {
      for (int gy = 0; gy < 8; ++gy) {
        for (int gx = 0; gx < 8; ++gx) {
          const bool erased = mask.erased(gy, gx);
          for (int y = 0; y < b; ++y) {
            for (int x = 0; x < b; ++x) {
              const int iy = py * 32 + gy * b + y;
              const int ix = px * 32 + gx * b + x;
              if (erased) {
                EXPECT_FLOAT_EQ(restored.at(0, iy, ix), 0.0F);
              } else {
                EXPECT_FLOAT_EQ(restored.at(0, iy, ix), img.at(0, iy, ix));
              }
            }
          }
        }
      }
    }
  }
}

TEST(Squeeze, VerticalAxisRoundTrip) {
  util::Pcg32 rng(6);
  const image::Image img = data::synth_photo(32, 64, rng);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const EraseMask mask = make_row_conditional_mask(8, 2, rng);
  const image::Image squeezed =
      erase_and_squeeze(img, mask, cfg, SqueezeAxis::kVertical);
  EXPECT_EQ(squeezed.width(), 32);
  EXPECT_EQ(squeezed.height(), 64 * 6 / 8);
  const image::Image restored =
      unsqueeze(squeezed, mask, cfg, 32, 64, SqueezeAxis::kVertical);
  // Kept pixels must round-trip exactly; count zeros for erased.
  int zeros = 0;
  int exact = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (restored.at(0, y, x) == 0.0F) {
        ++zeros;
      } else if (restored.at(0, y, x) == img.at(0, y, x)) {
        ++exact;
      }
    }
  }
  EXPECT_GT(zeros, 0);
  EXPECT_GT(exact, 32 * 64 / 2);
}

TEST(Squeeze, NeighborFillLeavesNoZeroHoles) {
  util::Pcg32 rng(7);
  image::Image img = data::synth_photo(32, 32, rng);
  // Make strictly positive so zero implies an unfilled hole.
  for (auto& v : img.data()) v = 0.25F + v * 0.5F;
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const EraseMask mask = make_row_conditional_mask(8, 3, rng);
  const image::Image squeezed = erase_and_squeeze(img, mask, cfg);
  const image::Image filled =
      unsqueeze_neighbor_fill(squeezed, mask, cfg, 32, 32);
  for (const float v : filled.data()) EXPECT_GT(v, 0.0F);
}

TEST(Squeeze, NonUniformMaskPadsToWidestRow) {
  // Row 0 erases one sub-patch, the rest erase none: every squeezed row pads
  // to the full 8 kept sub-patches, so nothing is saved — the rate penalty
  // fully random masks pay.
  EraseMask mask(8, 1);
  mask.set_erased(0, 0, true);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  util::Pcg32 rng(77);
  const image::Image img = data::synth_photo(32, 32, rng);
  const image::Image squeezed = erase_and_squeeze(img, mask, cfg);
  EXPECT_EQ(squeezed.width(), 32);  // widest row keeps all 8 sub-patches
  const image::Image restored = unsqueeze(squeezed, mask, cfg, 32, 32);
  // Kept content round-trips; the single erased sub-patch is zero.
  EXPECT_FLOAT_EQ(restored.at(0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(restored.at(0, 10, 10), img.at(0, 10, 10));
}

TEST(Squeeze, FullyRandomMaskRoundTripsKeptContent) {
  util::Pcg32 rng(78);
  const image::Image img = data::synth_photo(32, 32, rng);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const EraseMask mask = make_random_mask(8, 2, rng);
  const image::Image squeezed = erase_and_squeeze(img, mask, cfg);
  const image::Image restored = unsqueeze(squeezed, mask, cfg, 32, 32);
  for (int gy = 0; gy < 8; ++gy) {
    for (int gx = 0; gx < 8; ++gx) {
      if (mask.erased(gy, gx)) continue;
      EXPECT_FLOAT_EQ(restored.at(0, gy * 4 + 1, gx * 4 + 1),
                      img.at(0, gy * 4 + 1, gx * 4 + 1));
    }
  }
}

TEST(Squeeze, RejectsNonMultipleDimensions) {
  util::Pcg32 rng(8);
  const image::Image img = data::synth_photo(48, 32, rng);
  const PatchifyConfig cfg{.patch = 32, .sub_patch = 4};
  const EraseMask mask = make_row_conditional_mask(8, 2, rng);
  EXPECT_THROW(erase_and_squeeze(img, mask, cfg), std::invalid_argument);
}

ReconModelConfig tiny_model_config() {
  // Small enough to run in tests, same structure as the paper model.
  ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

TEST(ReconModel, ForwardShape) {
  util::Pcg32 rng(9);
  ReconstructionModel model(tiny_model_config(), rng);
  tensor::Tensor tokens = tensor::Tensor::randn({3, 16, 48}, rng, 0.1F);
  const EraseMask mask = make_row_conditional_mask(4, 1, rng);
  const tensor::Tensor out = model.forward(tokens, mask);
  EXPECT_EQ(out.shape(), (tensor::Shape{3, 16, 48}));
}

TEST(ReconModel, ReconstructPastesKeptTokensExactly) {
  util::Pcg32 rng(10);
  ReconstructionModel model(tiny_model_config(), rng);
  tensor::Tensor tokens = tensor::Tensor::randn({2, 16, 48}, rng, 0.1F);
  for (auto& v : tokens.data()) v = std::clamp(v + 0.5F, 0.0F, 1.0F);
  const EraseMask mask = make_row_conditional_mask(4, 1, rng);
  const tensor::Tensor out = model.reconstruct(tokens, mask);
  for (const int j : mask.kept_indices()) {
    for (int b = 0; b < 2; ++b) {
      for (int d = 0; d < 48; ++d) {
        const std::size_t i = (static_cast<std::size_t>(b) * 16 + j) * 48 + d;
        EXPECT_FLOAT_EQ(out.data()[i], tokens.data()[i]);
      }
    }
  }
}

TEST(ReconModel, OutputClampedToUnitRange) {
  util::Pcg32 rng(11);
  ReconstructionModel model(tiny_model_config(), rng);
  tensor::Tensor tokens = tensor::Tensor::randn({1, 16, 48}, rng, 5.0F);
  const EraseMask mask = make_diagonal_mask(4);
  const tensor::Tensor out = model.reconstruct(tokens, mask);
  for (const float v : out.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(ReconModel, DefaultConfigMatchesPaperModelSize) {
  util::Pcg32 rng(12);
  ReconModelConfig cfg;  // defaults: d=192, ffn=384, 2+2 blocks, n=32, b=4
  ReconstructionModel model(cfg, rng);
  const double mb = static_cast<double>(model.model_bytes()) / (1024.0 * 1024.0);
  // Paper: 8.7 MB (abstract) / 8.4 MB (§III-B). Accept the band around it.
  EXPECT_GT(mb, 6.0);
  EXPECT_LT(mb, 11.0);
}

TEST(ReconModel, FlopsGrowWithBatchAndShrinkWithErasure) {
  util::Pcg32 rng(13);
  ReconstructionModel model(tiny_model_config(), rng);
  EXPECT_GT(model.flops_per_batch(2, 1), model.flops_per_batch(1, 1));
  EXPECT_GT(model.flops_per_batch(1, 0), model.flops_per_batch(1, 2));
}

TEST(Trainer, LossDecreasesOnTinyProblem) {
  util::Pcg32 rng(14);
  ReconstructionModel model(tiny_model_config(), rng);
  TrainerConfig tcfg;
  tcfg.batch_patches = 4;
  tcfg.use_perceptual = false;  // keep the test fast
  tcfg.lr = 2e-3F;
  Trainer trainer(model, tcfg, rng);

  std::vector<image::Image> images;
  for (int i = 0; i < 4; ++i) {
    images.push_back(data::synth_photo(32, 32, rng));
  }
  const TrainStats stats = trainer.train(images, 30);
  ASSERT_EQ(stats.loss_history.size(), 30U);
  // Compare first-5 and last-5 averages to smooth step noise.
  float head = 0.0F;
  float tail = 0.0F;
  for (int i = 0; i < 5; ++i) {
    head += stats.loss_history[i];
    tail += stats.loss_history[stats.loss_history.size() - 1 - i];
  }
  EXPECT_LT(tail, head * 0.9F);
}

TEST(Trainer, SamplePatchTokensShapes) {
  util::Pcg32 rng(15);
  const image::Image img = data::synth_photo(40, 40, rng);
  const PatchifyConfig cfg{.patch = 16, .sub_patch = 4};
  const tensor::Tensor tokens = sample_patch_tokens(img, cfg, 3, rng);
  EXPECT_EQ(tokens.shape(), (tensor::Shape{1, 16, 48}));
}

TEST(Trainer, RejectsTooSmallImages)  {
  util::Pcg32 rng(16);
  const image::Image img = data::synth_photo(8, 8, rng);
  const PatchifyConfig cfg{.patch = 16, .sub_patch = 4};
  EXPECT_THROW(sample_patch_tokens(img, cfg, 3, rng), std::invalid_argument);
}

class PipelineRoundTrip : public testing::TestWithParam<int> {};

TEST_P(PipelineRoundTrip, PreservesGeometryAndBoundsError) {
  const int erased_per_row = GetParam();
  util::Pcg32 rng(17);
  ReconstructionModel model(tiny_model_config(), rng);

  codec::JpegLikeCodec codec(85);
  EaszConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.erased_per_row = erased_per_row;
  EaszPipeline pipeline(cfg, codec, &model);

  const image::Image img = data::synth_photo(48, 32, rng);
  const EaszCompressed c = pipeline.encode(img);
  EXPECT_EQ(c.full_width, 48);
  EXPECT_EQ(c.full_height, 32);
  EXPECT_GT(c.mask_bytes.size(), 0U);

  const image::Image decoded = pipeline.decode(c);
  EXPECT_EQ(decoded.width(), 48);
  EXPECT_EQ(decoded.height(), 32);
  // Untrained model: error is large but must be bounded (outputs clamped).
  EXPECT_LT(image_mse(img, decoded), 1.0);
}

INSTANTIATE_TEST_SUITE_P(EraseCounts, PipelineRoundTrip, testing::Values(1, 2));

TEST(Pipeline, HigherEraseRatioShrinksPayload) {
  util::Pcg32 rng(18);
  codec::JpegLikeCodec codec(85);
  EaszConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};

  const image::Image img = data::synth_photo(64, 48, rng);
  double prev_bytes = 1e18;
  for (const int t : {0, 1, 2}) {
    cfg.erased_per_row = t;
    EaszPipeline pipeline(cfg, codec, nullptr);
    const EaszCompressed c = pipeline.encode(img);
    EXPECT_LT(static_cast<double>(c.payload.bytes.size()), prev_bytes);
    prev_bytes = static_cast<double>(c.payload.bytes.size());
  }
}

TEST(Pipeline, NeighborFillDecodeWorksWithoutModel) {
  util::Pcg32 rng(19);
  codec::JpegLikeCodec codec(85);
  EaszConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.erased_per_row = 1;
  EaszPipeline pipeline(cfg, codec, nullptr);

  const image::Image img = data::synth_photo(32, 32, rng);
  const EaszCompressed c = pipeline.encode(img);
  const image::Image filled = pipeline.decode_neighbor_fill(c);
  EXPECT_EQ(filled.width(), 32);
  EXPECT_LT(image_mse(img, filled), 0.05);
  EXPECT_THROW(pipeline.decode(c), std::logic_error);
}

TEST(Pipeline, MaskSeedSharedBetweenEncodeAndDecode) {
  util::Pcg32 rng(20);
  ReconstructionModel model(tiny_model_config(), rng);
  codec::JpegLikeCodec codec(90);
  EaszConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.erased_per_row = 1;
  cfg.mask_seed = 1234;
  EaszPipeline pipeline(cfg, codec, &model);
  const EraseMask a = pipeline.make_mask();
  const EraseMask b = pipeline.make_mask();
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(a.erased(r, c), b.erased(r, c));
  }
}

TEST(Pipeline, TrainedModelBeatsZeroFillSubstantially) {
  // Train briefly on the same content family, then check the transformer
  // reconstruction beats leaving zeros (sanity of the whole loop).
  util::Pcg32 rng(21);
  ReconstructionModel model(tiny_model_config(), rng);
  TrainerConfig tcfg;
  tcfg.batch_patches = 8;
  tcfg.use_perceptual = false;
  tcfg.lr = 2e-3F;
  Trainer trainer(model, tcfg, rng);
  std::vector<image::Image> train_images;
  for (int i = 0; i < 6; ++i) {
    train_images.push_back(data::synth_photo(32, 32, rng));
  }
  trainer.train(train_images, 60);

  codec::JpegLikeCodec codec(90);
  EaszConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.erased_per_row = 1;
  EaszPipeline with_model(cfg, codec, &model);

  const image::Image img = data::synth_photo(32, 32, rng);
  const EaszCompressed c = with_model.encode(img);

  // Zero-fill reference: unsqueeze without reconstruction.
  const image::Image squeezed = codec.decode(c.payload);
  const EraseMask mask =
      EraseMask::from_bytes(c.mask_bytes, 4, c.erased_per_row);
  const image::Image zero_filled =
      unsqueeze(squeezed, mask, cfg.patchify, c.padded_width, c.padded_height);

  const double mse_model = image_mse(img, with_model.decode(c));
  const double mse_zero = image_mse(img, zero_filled);
  EXPECT_LT(mse_model, mse_zero * 0.5);
}

}  // namespace
}  // namespace easz::core
