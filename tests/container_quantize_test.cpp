#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "codec/jpeg_like.hpp"
#include "core/container.hpp"
#include "data/datasets.hpp"
#include "metrics/distortion.hpp"
#include "nn/module.hpp"
#include "nn/quantize.hpp"
#include "testbed/device.hpp"
#include "util/prng.hpp"

namespace easz {
namespace {

core::EaszCompressed make_compressed() {
  util::Pcg32 rng(1);
  codec::JpegLikeCodec jpeg(70);
  core::EaszConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 2};
  cfg.erased_per_row = 2;
  core::EaszPipeline pipeline(cfg, jpeg, nullptr);
  return pipeline.encode(data::load_image(data::kodak_like_spec(0.1F), 0));
}

TEST(Container, RoundTripPreservesEverything) {
  const core::EaszCompressed c = make_compressed();
  const core::PatchifyConfig pc{.patch = 16, .sub_patch = 2};
  const auto bytes = core::serialize_container(c, pc, "jpeg");
  const core::ParsedContainer parsed = core::parse_container(bytes);

  EXPECT_EQ(parsed.codec_name, "jpeg");
  EXPECT_EQ(parsed.patchify.patch, 16);
  EXPECT_EQ(parsed.patchify.sub_patch, 2);
  EXPECT_EQ(parsed.compressed.full_width, c.full_width);
  EXPECT_EQ(parsed.compressed.full_height, c.full_height);
  EXPECT_EQ(parsed.compressed.padded_width, c.padded_width);
  EXPECT_EQ(parsed.compressed.erased_per_row, c.erased_per_row);
  EXPECT_EQ(parsed.compressed.mask_bytes, c.mask_bytes);
  EXPECT_EQ(parsed.compressed.payload.bytes, c.payload.bytes);
  EXPECT_EQ(parsed.compressed.payload.width, c.payload.width);
}

TEST(Container, FileRoundTrip) {
  const core::EaszCompressed c = make_compressed();
  const core::PatchifyConfig pc{.patch = 16, .sub_patch = 2};
  const std::string path = testing::TempDir() + "easz_container_test.easz";
  core::write_container(c, pc, "jpeg", path);
  const core::ParsedContainer parsed = core::read_container(path);
  EXPECT_EQ(parsed.compressed.payload.bytes, c.payload.bytes);
  std::remove(path.c_str());
}

TEST(Container, DecodableAfterRoundTrip) {
  const core::EaszCompressed c = make_compressed();
  const core::PatchifyConfig pc{.patch = 16, .sub_patch = 2};
  const auto parsed =
      core::parse_container(core::serialize_container(c, pc, "jpeg"));

  codec::JpegLikeCodec jpeg(70);
  core::EaszConfig cfg;
  cfg.patchify = parsed.patchify;
  cfg.erased_per_row = parsed.compressed.erased_per_row;
  core::EaszPipeline pipeline(cfg, jpeg, nullptr);
  const image::Image out = pipeline.decode_neighbor_fill(parsed.compressed);
  EXPECT_EQ(out.width(), c.full_width);
  EXPECT_EQ(out.height(), c.full_height);
}

TEST(Container, CorruptInputsThrow) {
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5};
  EXPECT_THROW(core::parse_container(garbage), std::runtime_error);

  const core::EaszCompressed c = make_compressed();
  const core::PatchifyConfig pc{.patch = 16, .sub_patch = 2};
  auto bytes = core::serialize_container(c, pc, "jpeg");
  bytes.resize(bytes.size() / 2);  // truncate
  EXPECT_THROW(core::parse_container(bytes), std::runtime_error);
  bytes[0] ^= 0xFF;  // break magic
  EXPECT_THROW(core::parse_container(bytes), std::runtime_error);
}

TEST(Quantize, RoundTripErrorBounded) {
  util::Pcg32 rng(2);
  nn::Linear layer(32, 32, rng);
  auto params = layer.parameters();
  const nn::QuantizedParams q = nn::quantize_int8(params);
  // Symmetric int8: error <= scale/2 = max|w|/254 per tensor.
  float max_abs = 0.0F;
  for (const float v : params[0].data()) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_LE(nn::max_abs_error(q, params), max_abs / 254.0 + 1e-7);
}

TEST(Quantize, QuartersTheCheckpointSize) {
  util::Pcg32 rng(3);
  nn::Linear layer(64, 64, rng);
  auto params = layer.parameters();
  const auto fp32_bytes = layer.model_bytes();
  const nn::QuantizedParams q = nn::quantize_int8(params);
  EXPECT_LT(q.byte_size(), fp32_bytes / 3);
}

TEST(Quantize, SerializationRoundTrip) {
  util::Pcg32 rng(4);
  nn::Linear a(16, 8, rng);
  auto pa = a.parameters();
  const nn::QuantizedParams q = nn::quantize_int8(pa);
  const auto bytes = nn::serialize_quantized(q);
  const nn::QuantizedParams restored = nn::deserialize_quantized(bytes);
  ASSERT_EQ(restored.tensors.size(), q.tensors.size());
  for (std::size_t i = 0; i < q.tensors.size(); ++i) {
    EXPECT_EQ(restored.tensors[i].values, q.tensors[i].values);
    EXPECT_FLOAT_EQ(restored.tensors[i].scale, q.tensors[i].scale);
  }
}

TEST(Quantize, FileRoundTripRestoresApproximateWeights) {
  util::Pcg32 rng(5);
  nn::Linear a(16, 8, rng);
  nn::Linear b(16, 8, rng);  // different init
  auto pa = a.parameters();
  auto pb = b.parameters();
  const std::string path = testing::TempDir() + "easz_int8_test.q8";
  nn::save_quantized(pa, path);
  nn::load_quantized(pb, path);
  for (std::size_t i = 0; i < pa[0].numel(); ++i) {
    EXPECT_NEAR(pb[0].data()[i], pa[0].data()[i], 0.05F);
  }
  std::remove(path.c_str());
}

TEST(Quantize, MismatchedShapesThrow) {
  util::Pcg32 rng(6);
  nn::Linear a(16, 8, rng);
  nn::Linear b(16, 9, rng);
  auto pa = a.parameters();
  auto pb = b.parameters();
  const nn::QuantizedParams q = nn::quantize_int8(pa);
  EXPECT_THROW(nn::dequantize_int8(q, pb), std::runtime_error);
}

TEST(Devices, NewPresetsOrderSensibly) {
  const auto pi = testbed::raspberry_pi4();
  const auto tx2 = testbed::jetson_tx2();
  const auto a100 = testbed::a100_server();
  EXPECT_LT(pi.nn_flops_per_s, tx2.nn_flops_per_s);
  EXPECT_GT(a100.nn_flops_per_s, testbed::desktop_2080ti().nn_flops_per_s);
  EXPECT_DOUBLE_EQ(pi.gpu_active_power_w, 0.0);
}

TEST(Devices, LteLinkSlowerThanWifi) {
  EXPECT_GT(testbed::lte_iot_link().transfer_s(50e3),
            testbed::wifi_link().transfer_s(50e3));
}

}  // namespace
}  // namespace easz
