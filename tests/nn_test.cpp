#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/adam.hpp"
#include "nn/gdn.hpp"
#include "nn/losses.hpp"
#include "nn/module.hpp"
#include "nn/serialize.hpp"
#include "nn/transformer.hpp"
#include "util/prng.hpp"

namespace easz::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Linear, ShapesAndBias) {
  util::Pcg32 rng(1);
  Linear fc(4, 3, rng);
  Tensor x = Tensor::full({2, 4}, 0.0F);
  const Tensor y = fc.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  // Zero input -> output equals bias (zero-initialised).
  for (const float v : y.data()) EXPECT_FLOAT_EQ(v, 0.0F);
}

TEST(Linear, SupportsLeadingBatchDims) {
  util::Pcg32 rng(2);
  Linear fc(5, 7, rng);
  Tensor x = Tensor::randn({2, 3, 5}, rng);
  EXPECT_EQ(fc.forward(x).shape(), (Shape{2, 3, 7}));
}

TEST(Linear, RejectsWrongInputDim) {
  util::Pcg32 rng(3);
  Linear fc(5, 7, rng);
  Tensor x({2, 4});
  EXPECT_THROW(fc.forward(x), std::invalid_argument);
}

TEST(Linear, ParameterCount) {
  util::Pcg32 rng(4);
  Linear fc(10, 20, rng);
  EXPECT_EQ(fc.num_parameters(), 10U * 20U + 20U);
  EXPECT_EQ(fc.model_bytes(), (10U * 20U + 20U) * 4U);
}

TEST(LayerNormModule, NormalisesAndLearnsAffine) {
  util::Pcg32 rng(5);
  LayerNorm ln(8);
  Tensor x = Tensor::randn({4, 8}, rng, 3.0F);
  const Tensor y = ln.forward(x);
  float mean = 0.0F;
  for (int j = 0; j < 8; ++j) mean += y.data()[j];
  EXPECT_NEAR(mean / 8.0F, 0.0F, 1e-4F);
  EXPECT_EQ(ln.parameters().size(), 2U);
}

TEST(Mha, OutputShapeMatchesInput) {
  util::Pcg32 rng(6);
  MultiHeadAttention mha(16, 4, rng);
  Tensor x = Tensor::randn({2, 9, 16}, rng);
  EXPECT_EQ(mha.forward(x).shape(), (Shape{2, 9, 16}));
}

TEST(Mha, RejectsIndivisibleHeads) {
  util::Pcg32 rng(7);
  EXPECT_THROW(MultiHeadAttention(10, 3, rng), std::invalid_argument);
}

TEST(Mha, AttentionMixesTokens) {
  // With distinct tokens, each output token must depend on the others:
  // changing token 0's input changes token 1's output.
  util::Pcg32 rng(8);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  const Tensor y1 = mha.forward(x);
  x.data()[3] += 1.0F;  // perturb token 0
  const Tensor y2 = mha.forward(x);
  float delta_token1 = 0.0F;
  for (int j = 0; j < 8; ++j) {
    delta_token1 += std::fabs(y2.data()[8 + j] - y1.data()[8 + j]);
  }
  EXPECT_GT(delta_token1, 1e-5F);
}

TEST(Mha, FlopsScaleQuadraticallyInTokens) {
  const double f1 = MultiHeadAttention::flops(1, 16, 64, 4);
  const double f2 = MultiHeadAttention::flops(1, 32, 64, 4);
  EXPECT_GT(f2, f1 * 2.0);  // superlinear growth from the T^2 term
}

TEST(TransformerBlockModule, ForwardShapeAndParamCount) {
  util::Pcg32 rng(9);
  TransformerBlock block(16, 4, 32, rng);
  Tensor x = Tensor::randn({2, 5, 16}, rng);
  EXPECT_EQ(block.forward(x).shape(), (Shape{2, 5, 16}));
  // qkv (16*48+48) + proj (16*16+16) + fc1 (16*32+32) + fc2 (32*16+16)
  // + 3 layernorms (2*16 each)
  const std::size_t expected = (16 * 48 + 48) + (16 * 16 + 16) +
                               (16 * 32 + 32) + (32 * 16 + 16) + 3 * 32;
  EXPECT_EQ(block.num_parameters(), expected);
}

TEST(TransformerBlockModule, TrainingReducesLoss) {
  // Tiny regression: learn to reproduce a fixed target from a fixed input.
  util::Pcg32 rng(10);
  TransformerBlock block(8, 2, 16, rng);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  Tensor target = Tensor::randn({1, 4, 8}, rng, 0.5F);

  Adam opt(block.parameters(), {.lr = 5e-3F, .weight_decay = 0.0F});
  float first_loss = 0.0F;
  float last_loss = 0.0F;
  for (int step = 0; step < 60; ++step) {
    Tensor loss = tensor::mse_loss(block.forward(x), target);
    if (step == 0) first_loss = loss.item();
    last_loss = loss.item();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.5F);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise (w - 3)^2 elementwise.
  Tensor w({4}, {0.0F, 1.0F, -2.0F, 5.0F}, true);
  Tensor target = Tensor::full({4}, 3.0F);
  Adam opt({w}, {.lr = 0.1F, .weight_decay = 0.0F});
  for (int i = 0; i < 300; ++i) {
    Tensor loss = tensor::mse_loss(w, target);
    loss.backward();
    opt.step();
  }
  for (const float v : w.data()) EXPECT_NEAR(v, 3.0F, 0.05F);
}

TEST(Adam, WeightDecayShrinksUnusedDirections) {
  Tensor w({1}, {5.0F}, true);
  Adam opt({w}, {.lr = 0.05F, .weight_decay = 0.5F});
  // Gradient-free steps: only decay acts — but step() skips parameters with
  // no gradient, so drive it with a zero-gradient loss.
  for (int i = 0; i < 50; ++i) {
    Tensor loss = tensor::scale(tensor::mse_loss(w, w.detach()), 1.0F);
    loss.backward();
    opt.step();
  }
  EXPECT_LT(std::fabs(w.data()[0]), 5.0F);
}

TEST(Losses, CombinedLossIsL1PlusLambdaPerceptual) {
  util::Pcg32 rng(11);
  Tensor pred = Tensor::randn({1, 1, 8, 8}, rng, 0.3F);
  Tensor target = Tensor::randn({1, 1, 8, 8}, rng, 0.3F);
  CombinedLoss loss(0.3F);
  const float combined = loss.forward(pred, target).item();
  const float l1 = tensor::l1_loss(pred, target).item();
  const float perceptual = perceptual_proxy_loss(pred, target).item();
  EXPECT_NEAR(combined, l1 + 0.3F * perceptual, 1e-5F);
}

TEST(Losses, PerceptualZeroForIdenticalImages) {
  util::Pcg32 rng(12);
  Tensor img = Tensor::randn({1, 3, 8, 8}, rng, 0.3F);
  EXPECT_NEAR(perceptual_proxy_loss(img, img).item(), 0.0F, 1e-7F);
}

TEST(Losses, PerceptualPenalisesStructuralDamage) {
  // Blurring an edge image should register a larger perceptual distance than
  // a small uniform brightness shift of equal L1 magnitude.
  Tensor edge({1, 1, 8, 8});
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      edge.data()[y * 8 + x] = x < 4 ? 0.0F : 1.0F;
    }
  }
  Tensor shifted = edge.detach();
  for (auto& v : shifted.data()) v += 0.1F;

  Tensor blurred = edge.detach();
  for (int y = 0; y < 8; ++y) {
    for (int x = 1; x < 7; ++x) {
      blurred.data()[y * 8 + x] =
          (edge.data()[y * 8 + x - 1] + edge.data()[y * 8 + x] +
           edge.data()[y * 8 + x + 1]) / 3.0F;
    }
  }

  const float d_shift = perceptual_proxy_loss(edge, shifted).item();
  const float d_blur = perceptual_proxy_loss(edge, blurred).item();
  EXPECT_GT(d_blur, d_shift);
}


TEST(Gdn, NearIdentityAtInitForSmallInputs) {
  util::Pcg32 rng(16);
  Gdn gdn(4, false, rng);
  Tensor x = Tensor::randn({1, 4, 3, 3}, rng, 0.05F);
  const Tensor y = gdn.forward(x);
  // denom ~ beta = 1 for tiny x, so y ~ x.
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y.data()[i], x.data()[i], 0.01F);
  }
}

TEST(Gdn, NormalisesLargeActivations) {
  util::Pcg32 rng(17);
  Gdn gdn(2, false, rng);
  Tensor x = Tensor::full({1, 2, 2, 2}, 20.0F);
  const Tensor y = gdn.forward(x);
  // Divisive normalisation compresses large magnitudes.
  for (const float v : y.data()) EXPECT_LT(std::fabs(v), 20.0F * 0.5F);
}

TEST(Gdn, InverseExpandsInsteadOfCompressing) {
  util::Pcg32 rng(18);
  Gdn gdn(2, false, rng);
  Gdn igdn(2, true, rng);
  Tensor x = Tensor::full({1, 2, 2, 2}, 5.0F);
  const float forward_mag = std::fabs(gdn.forward(x).data()[0]);
  const float inverse_mag = std::fabs(igdn.forward(x).data()[0]);
  EXPECT_LT(forward_mag, 5.0F);
  EXPECT_GT(inverse_mag, 5.0F);
}

TEST(Gdn, GradientsFlowThroughAllParameters) {
  util::Pcg32 rng(19);
  Gdn gdn(3, false, rng);
  Tensor x = Tensor::randn({1, 3, 2, 2}, rng, 0.5F, true);
  Tensor loss = tensor::sum(tensor::mul(gdn.forward(x), gdn.forward(x)));
  loss.backward();
  EXPECT_FALSE(x.grad().empty());
  for (const auto& p : gdn.parameters()) {
    EXPECT_FALSE(p.grad().empty());
    double norm = 0.0;
    for (const float g : p.grad()) norm += std::fabs(g);
    EXPECT_GT(norm, 0.0);
  }
}

TEST(Gdn, RejectsWrongChannelCount) {
  util::Pcg32 rng(20);
  Gdn gdn(4, false, rng);
  Tensor x({1, 3, 2, 2});
  EXPECT_THROW(gdn.forward(x), std::invalid_argument);
}

TEST(Serialize, RoundTripInMemory) {
  util::Pcg32 rng(13);
  Linear a(6, 4, rng);
  Linear b(6, 4, rng);
  auto pa = a.parameters();
  auto pb = b.parameters();
  // Different inits.
  EXPECT_NE(pa[0].data(), pb[0].data());
  const auto bytes = serialize_parameters(pa);
  deserialize_parameters(pb, bytes);
  EXPECT_EQ(pa[0].data(), pb[0].data());
  EXPECT_EQ(pa[1].data(), pb[1].data());
}

TEST(Serialize, FileRoundTrip) {
  util::Pcg32 rng(14);
  TransformerBlock a(8, 2, 16, rng);
  TransformerBlock b(8, 2, 16, rng);
  const std::string path = testing::TempDir() + "easz_ckpt_test.bin";
  auto pa = a.parameters();
  auto pb = b.parameters();
  save_parameters(pa, path);
  load_parameters(pb, path);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].data(), pb[i].data());
  }
  std::remove(path.c_str());
}

TEST(Serialize, MismatchedShapesThrow) {
  util::Pcg32 rng(15);
  Linear a(6, 4, rng);
  Linear b(6, 5, rng);
  auto pa = a.parameters();
  auto pb = b.parameters();
  const auto bytes = serialize_parameters(pa);
  EXPECT_THROW(deserialize_parameters(pb, bytes), std::runtime_error);
}

}  // namespace
}  // namespace easz::nn
