// CacheBudget: the analytic LLC working-set model behind serve batch
// shaping (DESIGN.md §9.2). Everything here is integer arithmetic on a
// configured LLC size, so the tests pin exact values: a hand-built
// footprint shapes to a hand-computable batch, clamps hold at both
// extremes (model dwarfed by / dwarfing the cache), and the per-precision
// split affords int8 deployments a strictly-larger-or-equal batch than
// fp32 inside the same cache. detect_llc_bytes() is deliberately NOT
// asserted against a value — it is machine-dependent; only its contract
// (never negative, callers substitute defaults for 0) matters.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <string>

#include "serve/cache_budget.hpp"

namespace easz::serve {
namespace {

// Round-number footprint so expected batches are mental arithmetic.
ModelFootprint toy_footprint() {
  ModelFootprint f;
  f.weight_bytes_fp32 = 500'000;
  f.weight_bytes_int8 = 160'000;
  f.act_bytes_per_patch_fp32 = 10'000;
  f.act_bytes_per_patch_int8 = 12'000;
  f.fixed_overhead_bytes = 50'000;
  return f;
}

core::ReconModelConfig paper_d256_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 256;
  cfg.num_heads = 8;
  cfg.ffn_hidden = 1024;
  return cfg;
}

TEST(CacheBudgetTest, ShapesDeterministicBatchFromConfiguredLlc) {
  // llc 1MB (decimal for easy math): budget = 1'000'000 / 100 * 75
  // = 750'000. Base fp32 working set = 500'000 + 50'000 = 550'000, leaving
  // 200'000 bytes => exactly 20 patches at 10'000 bytes each.
  const CacheBudget budget(toy_footprint(), 1'000'000);
  EXPECT_EQ(budget.llc_bytes(), 1'000'000U);
  EXPECT_EQ(budget.budget_bytes(), 750'000U);
  EXPECT_EQ(budget.working_set_bytes(0, nn::Precision::kFp32), 550'000U);
  EXPECT_EQ(budget.working_set_bytes(20, nn::Precision::kFp32), 750'000U);

  EXPECT_EQ(budget.shape_batch(64, nn::Precision::kFp32), 20);
  // The cap is a ceiling, not a target: smaller requests pass through.
  EXPECT_EQ(budget.shape_batch(8, nn::Precision::kFp32), 8);
  EXPECT_EQ(budget.shape_batch(20, nn::Precision::kFp32), 20);
  // Degenerate request sizes clamp to at least one patch.
  EXPECT_EQ(budget.shape_batch(0, nn::Precision::kFp32), 1);
  EXPECT_EQ(budget.shape_batch(-5, nn::Precision::kFp32), 1);

  // Same inputs, fresh instance: identical answer (no hidden state).
  const CacheBudget again(toy_footprint(), 1'000'000);
  EXPECT_EQ(again.shape_batch(64, nn::Precision::kFp32), 20);
}

TEST(CacheBudgetTest, WorkingSetIsAffineInBatchSize) {
  const CacheBudget budget(toy_footprint(), 1'000'000);
  const std::size_t base = budget.working_set_bytes(0, nn::Precision::kInt8);
  for (int b : {1, 3, 17, 128}) {
    EXPECT_EQ(budget.working_set_bytes(b, nn::Precision::kInt8),
              base + static_cast<std::size_t>(b) * 12'000U);
  }
}

TEST(CacheBudgetTest, TinyModelNeverShapesAboveRequest) {
  // A model that vanishes inside the LLC must not inflate the batch past
  // what the scheduler asked for — shaping only ever shrinks.
  ModelFootprint f;
  f.weight_bytes_fp32 = 4'096;
  f.weight_bytes_int8 = 2'048;
  f.act_bytes_per_patch_fp32 = 64;
  f.act_bytes_per_patch_int8 = 80;
  const CacheBudget budget(f, 32ULL << 20);
  EXPECT_EQ(budget.shape_batch(1, nn::Precision::kFp32), 1);
  EXPECT_EQ(budget.shape_batch(48, nn::Precision::kFp32), 48);
  EXPECT_EQ(budget.shape_batch(48, nn::Precision::kInt8), 48);
}

TEST(CacheBudgetTest, HugeModelClampsToSinglePatch) {
  // Weights alone overflow the cache: no batch size is cache-resident, so
  // shaping returns 1 (per-patch forwards would add overhead, not hits).
  ModelFootprint f;
  f.weight_bytes_fp32 = 512ULL << 20;
  f.weight_bytes_int8 = 128ULL << 20;
  f.act_bytes_per_patch_fp32 = 1 << 20;
  f.act_bytes_per_patch_int8 = 1 << 20;
  const CacheBudget budget(f, 8ULL << 20);
  EXPECT_EQ(budget.shape_batch(1, nn::Precision::kFp32), 1);
  EXPECT_EQ(budget.shape_batch(1024, nn::Precision::kFp32), 1);
  EXPECT_EQ(budget.shape_batch(1024, nn::Precision::kInt8), 1);
}

TEST(CacheBudgetTest, ZeroLlcFallsBackToDefault) {
  const CacheBudget budget(toy_footprint(), 0);
  EXPECT_EQ(budget.llc_bytes(), CacheBudget::kDefaultLlcBytes);
  EXPECT_GT(budget.shape_batch(1 << 20, nn::Precision::kFp32), 1);
}

TEST(CacheBudgetTest, AnalyticFootprintOrdersPrecisionsAndScales) {
  const ModelFootprint d256 = CacheBudget::footprint_of(paper_d256_config());
  // int8 parks ~4x fewer Linear-weight bytes but pays extra activation
  // bytes for the u8 A-copies.
  EXPECT_LT(d256.weight_bytes_int8, d256.weight_bytes_fp32);
  EXPECT_GT(d256.act_bytes_per_patch_int8, d256.act_bytes_per_patch_fp32);
  EXPECT_GT(d256.weight_bytes_fp32, 0U);
  EXPECT_GT(d256.fixed_overhead_bytes, 0U);

  // Monotone in model width: the shaping decision only needs ranking.
  core::ReconModelConfig small = paper_d256_config();
  small.d_model = 64;
  small.ffn_hidden = 256;
  const ModelFootprint d64 = CacheBudget::footprint_of(small);
  EXPECT_LT(d64.weight_bytes_fp32, d256.weight_bytes_fp32);
  EXPECT_LT(d64.act_bytes_per_patch_fp32, d256.act_bytes_per_patch_fp32);
}

TEST(CacheBudgetTest, MixedTenantShapingIsPerPrecision) {
  // The serve scheduler keys pending batches by (shape, precision); each
  // group is shaped with ITS precision. With the paper-scale model in a
  // cache it does not trivially fit, the int8 group affords at least the
  // fp32 batch — usually strictly more, since 4x fewer weight bytes are
  // resident.
  const ModelFootprint f = CacheBudget::footprint_of(paper_d256_config());
  const CacheBudget budget(f, 8ULL << 20);
  const int fp32 = budget.shape_batch(256, nn::Precision::kFp32);
  const int int8 = budget.shape_batch(256, nn::Precision::kInt8);
  EXPECT_GE(fp32, 1);
  EXPECT_LE(fp32, 256);
  EXPECT_GE(int8, fp32);

  // And both react to the cache actually shrinking: a quarter of the LLC
  // shapes no larger batches than the full LLC.
  const CacheBudget quarter(f, 2ULL << 20);
  EXPECT_LE(quarter.shape_batch(256, nn::Precision::kFp32), fp32);
  EXPECT_LE(quarter.shape_batch(256, nn::Precision::kInt8), int8);
}

TEST(CacheBudgetTest, DetectReturnsZeroOrPlausibleSize) {
  const std::size_t detected = CacheBudget::detect_llc_bytes();
  if (detected != 0) {
    EXPECT_GE(detected, 64ULL << 10);   // no L2/L3 smaller than 64KB
    EXPECT_LE(detected, 4096ULL << 20); // nor larger than 4GB
  }
}

// ---- sysfs fixture tests for detect_llc_bytes_in ------------------------
//
// Each fixture reproduces a real cpu0/cache/ layout (captured from hosts
// this has actually misdetected on) so the exact production parser runs
// against known topologies regardless of what machine CI lands on.

class SysfsFixture {
 public:
  SysfsFixture() {
    dir_ = std::filesystem::temp_directory_path() /
           ("easz_cache_fixture_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->line()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~SysfsFixture() { std::filesystem::remove_all(dir_); }

  void add_index(int index, const std::string& type, const std::string& level,
                 const std::string& size) {
    const std::filesystem::path base = dir_ / ("index" + std::to_string(index));
    std::filesystem::create_directories(base);
    // sysfs files end in a newline; reproduce that so the parser is tested
    // against the real format.
    if (!type.empty()) write(base / "type", type + "\n");
    if (!level.empty()) write(base / "level", level + "\n");
    if (!size.empty()) write(base / "size", size + "\n");
  }

  [[nodiscard]] std::string path() const { return dir_.string(); }

 private:
  static void write(const std::filesystem::path& p, const std::string& text) {
    std::FILE* f = std::fopen(p.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  std::filesystem::path dir_;
};

TEST(CacheBudgetTest, DetectFindsSharedL3OnDesktopTopology) {
  // Typical bare-metal layout: split L1 at index0/1, private unified L2 at
  // index2, shared unified L3 at index3. Only the L3 qualifies.
  SysfsFixture fx;
  fx.add_index(0, "Data", "1", "32K");
  fx.add_index(1, "Instruction", "1", "32K");
  fx.add_index(2, "Unified", "2", "512K");
  fx.add_index(3, "Unified", "3", "16384K");
  EXPECT_EQ(CacheBudget::detect_llc_bytes_in(fx.path()), 16384ULL << 10);
}

TEST(CacheBudgetTest, DetectIgnoresPerCoreL2OnlyHosts) {
  // The misdetection this guards against: VM/container guests often expose
  // only per-core caches, topping out at a unified L2. That L2 is NOT a
  // shared LLC — detection must return 0 so callers take the documented
  // kDefaultLlcBytes instead of shaping batches against a 4MB private
  // cache (or worse, a 256K one).
  SysfsFixture fx;
  fx.add_index(0, "Data", "1", "32K");
  fx.add_index(1, "Instruction", "1", "32K");
  fx.add_index(2, "Unified", "2", "4096K");
  EXPECT_EQ(CacheBudget::detect_llc_bytes_in(fx.path()), 0U);

  // And the downstream contract: 0 feeds through to the 8MB default.
  const CacheBudget budget(toy_footprint(),
                           CacheBudget::detect_llc_bytes_in(fx.path()));
  EXPECT_EQ(budget.llc_bytes(), CacheBudget::kDefaultLlcBytes);
}

TEST(CacheBudgetTest, DetectRequiresLevelFile) {
  // A Unified cache whose level file is missing cannot be placed in the
  // hierarchy — it could be an L2. Disqualify it rather than guess.
  SysfsFixture fx;
  fx.add_index(0, "Unified", "", "16M");
  EXPECT_EQ(CacheBudget::detect_llc_bytes_in(fx.path()), 0U);
}

TEST(CacheBudgetTest, DetectKeepsLargestQualifyingLevel) {
  // eDRAM-style L4 behind a 6M L3: the LLC is the largest level >= 3,
  // wherever sysfs put it in the index order.
  SysfsFixture fx;
  fx.add_index(0, "Unified", "4", "128M");
  fx.add_index(1, "Unified", "3", "6144K");
  fx.add_index(2, "Unified", "2", "256K");
  EXPECT_EQ(CacheBudget::detect_llc_bytes_in(fx.path()), 128ULL << 20);
}

TEST(CacheBudgetTest, DetectParsesSysfsSizeSuffixes) {
  SysfsFixture k, m, bare;
  k.add_index(0, "Unified", "3", "30720K");
  EXPECT_EQ(CacheBudget::detect_llc_bytes_in(k.path()), 30720ULL << 10);
  m.add_index(0, "Unified", "3", "24M");
  EXPECT_EQ(CacheBudget::detect_llc_bytes_in(m.path()), 24ULL << 20);
  bare.add_index(0, "Unified", "3", "8388608");
  EXPECT_EQ(CacheBudget::detect_llc_bytes_in(bare.path()), 8ULL << 20);
}

TEST(CacheBudgetTest, DetectHandlesEmptyOrMissingDir) {
  EXPECT_EQ(CacheBudget::detect_llc_bytes_in("/nonexistent/easz_no_such"), 0U);
}

}  // namespace
}  // namespace easz::serve
