#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "data/synth.hpp"
#include "obs/registry.hpp"
#include "serve/cache.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "testbed/loadgen.hpp"
#include "util/prng.hpp"

namespace easz::serve {
namespace {

core::ReconModelConfig tiny_model_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

image::Image test_image(int w, int h, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  return data::synth_photo(w, h, rng);
}

// ---------------------------------------------------------------- stats

TEST(ServeStats, PercentileNearestRank) {
  std::vector<double> s{5.0, 1.0, 2.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(s, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(ServeStats, SummaryAndJson) {
  // Golden exact percentiles: opt into the exact-sample reservoir.
  // Production rides the bounded-error histogram, whose error bound is
  // asserted separately in tests/obs_test.cpp.
  const bool prev_exact = obs::exact_percentiles();
  obs::set_exact_percentiles(true);
  StageStats st;
  for (int i = 1; i <= 100; ++i) st.record(i * 1e-3);
  const StageSummary s = st.summarize();
  obs::set_exact_percentiles(prev_exact);
  EXPECT_EQ(s.count, 100U);
  EXPECT_NEAR(s.p50_s, 50e-3, 1e-9);
  EXPECT_NEAR(s.p95_s, 95e-3, 1e-9);
  EXPECT_NEAR(s.p99_s, 99e-3, 1e-9);
  EXPECT_NEAR(s.max_s, 100e-3, 1e-9);

  ServerStatsSnapshot snap;
  snap.total = s;
  snap.batches = 4;
  snap.batched_patches = 10;
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"mean_batch_size\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"total\":{"), std::string::npos);
}

// ---------------------------------------------------------------- cache

std::shared_ptr<const image::Image> make_cached(int w, int h) {
  return std::make_shared<image::Image>(w, h, 3);
}

CacheKey key_of(std::uint64_t payload_hash) {
  CacheKey k;
  k.payload_hash = payload_hash;
  k.codec = "jpeg";
  return k;
}

TEST(ResultCacheTest, HitRefreshesRecency) {
  // Each 8x8x3 image costs 768 bytes; capacity fits exactly two.
  ResultCache cache(2 * 768);
  cache.put(key_of(1), make_cached(8, 8));
  cache.put(key_of(2), make_cached(8, 8));
  EXPECT_NE(cache.get(key_of(1)), nullptr);  // 1 becomes most-recent
  cache.put(key_of(3), make_cached(8, 8));   // evicts 2, not 1
  EXPECT_NE(cache.get(key_of(1)), nullptr);
  EXPECT_EQ(cache.get(key_of(2)), nullptr);
  EXPECT_NE(cache.get(key_of(3)), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1U);
  EXPECT_EQ(s.entries, 2U);
  EXPECT_LE(s.bytes, cache.capacity_bytes());
}

TEST(ResultCacheTest, OversizeEntriesAreNotAdmitted) {
  ResultCache cache(100);
  cache.put(key_of(1), make_cached(8, 8));  // 768 bytes > 100
  EXPECT_EQ(cache.get(key_of(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0U);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.put(key_of(1), make_cached(8, 8));
  EXPECT_EQ(cache.get(key_of(1)), nullptr);
}

TEST(ResultCacheTest, KeyDistinguishesGeometryAndPayload) {
  core::EaszCompressed a;
  a.payload.bytes = {1, 2, 3};
  a.mask_bytes = {0xF0};
  a.full_width = 32;
  a.full_height = 32;
  core::EaszCompressed b = a;
  b.full_width = 48;
  core::EaszCompressed c = a;
  c.payload.bytes = {1, 2, 4};
  EXPECT_EQ(make_cache_key(a, "jpeg"), make_cache_key(a, "jpeg"));
  EXPECT_FALSE(make_cache_key(a, "jpeg") == make_cache_key(b, "jpeg"));
  EXPECT_FALSE(make_cache_key(a, "jpeg") == make_cache_key(c, "jpeg"));
  EXPECT_FALSE(make_cache_key(a, "jpeg") == make_cache_key(a, "bpg"));
}

// ---------------------------------------------------------------- server

struct ServeFixture {
  util::Pcg32 rng{91};
  core::ReconstructionModel model{tiny_model_config(), rng};
  codec::JpegLikeCodec jpeg{85};

  core::EaszConfig edge_config(int erased, core::SqueezeAxis axis,
                               std::uint64_t mask_seed) {
    core::EaszConfig cfg;
    cfg.patchify = tiny_model_config().patchify;
    cfg.erased_per_row = erased;
    cfg.axis = axis;
    cfg.mask_seed = mask_seed;
    return cfg;
  }

  ServeRequest make_request(const image::Image& img, int erased = 1,
                            core::SqueezeAxis axis = core::SqueezeAxis::kHorizontal,
                            std::uint64_t mask_seed = 7) {
    const core::EaszPipeline edge(edge_config(erased, axis, mask_seed), jpeg,
                                  nullptr);
    ServeRequest r;
    r.compressed = edge.encode(img);
    r.codec = "jpeg";
    return r;
  }

  image::Image sequential_decode(const ServeRequest& r) {
    const core::EaszPipeline server_pipeline(
        edge_config(r.compressed.erased_per_row, r.compressed.axis, 7), jpeg,
        &model);
    return server_pipeline.decode(r.compressed);
  }
};

TEST(ReconServerTest, ThreadedStressMatchesSequentialDecodeExactly) {
  ServeFixture fx;
  constexpr int kClients = 6;
  constexpr int kImagesPerClient = 4;

  // Pre-build every request and its sequential reference result.
  std::vector<std::vector<ServeRequest>> requests(kClients);
  std::vector<std::vector<image::Image>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kImagesPerClient; ++i) {
      const auto axis = (c + i) % 2 == 0 ? core::SqueezeAxis::kHorizontal
                                         : core::SqueezeAxis::kVertical;
      const image::Image img =
          test_image(33 + 16 * c + i, 17 + 11 * i, 1000 + c * 100 + i);
      ServeRequest r = fx.make_request(img, 1 + c % 3, axis,
                                       /*mask_seed=*/40 + c % 2);
      expected[c].push_back(fx.sequential_decode(r));
      requests[c].push_back(std::move(r));
    }
  }

  ServerConfig cfg;
  cfg.workers = 4;
  cfg.max_queue = 64;
  cfg.max_batch_patches = 8;  // small, to force many cross-request batches
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  std::vector<std::vector<std::future<ServeResponse>>> futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kImagesPerClient; ++i) {
        SubmitResult res = server.submit(requests[c][i]);
        ASSERT_TRUE(res.accepted);
        futures[c].push_back(std::move(res.response));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kImagesPerClient; ++i) {
      const ServeResponse resp = futures[c][i].get();
      ASSERT_NE(resp.image, nullptr);
      const image::Image& got = *resp.image;
      const image::Image& want = expected[c][i];
      ASSERT_EQ(got.width(), want.width());
      ASSERT_EQ(got.height(), want.height());
      // Byte-identical: batching across requests must not change a single
      // float (per-patch results are batch-composition independent).
      EXPECT_EQ(got.data(), want.data()) << "client " << c << " image " << i;
    }
  }

  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kClients * kImagesPerClient));
  EXPECT_EQ(s.failed, 0U);
  EXPECT_GT(s.batches, 0U);
  // Every patch of every request went through exactly one forward pass.
  std::uint64_t expected_patches = 0;
  for (const auto& per_client : requests) {
    for (const ServeRequest& r : per_client) {
      const int patch = tiny_model_config().patchify.patch;
      expected_patches += static_cast<std::uint64_t>(
          (r.compressed.padded_width / patch) *
          (r.compressed.padded_height / patch));
    }
  }
  EXPECT_EQ(s.batched_patches, expected_patches);
  EXPECT_EQ(s.total.count, static_cast<std::uint64_t>(kClients * kImagesPerClient));

  // The codec-decode sub-stage is surfaced with one sample per decoded
  // request and a positive throughput figure, in both report formats.
  EXPECT_EQ(s.codec_decode.count,
            static_cast<std::uint64_t>(kClients * kImagesPerClient));
  EXPECT_GT(s.codec_pixels, 0U);
  EXPECT_GT(s.codec_decode_mpps(), 0.0);
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"codec_decode\":{"), std::string::npos);
  EXPECT_NE(json.find("\"codec_decode_mpps\":"), std::string::npos);
  EXPECT_NE(s.to_string().find("codec decode:"), std::string::npos);
}

TEST(ReconServerTest, CacheHitServesIdenticalImageWithoutRecompute) {
  ServeFixture fx;
  ServerConfig cfg;
  cfg.workers = 2;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  const ServeRequest req = fx.make_request(test_image(48, 32, 5));
  SubmitResult first = server.submit(req);
  ASSERT_TRUE(first.accepted);
  const ServeResponse r1 = first.response.get();
  EXPECT_FALSE(r1.cache_hit);

  const std::uint64_t batches_before = server.stats().batches;
  SubmitResult second = server.submit(req);
  ASSERT_TRUE(second.accepted);
  const ServeResponse r2 = second.response.get();
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r1.image->data(), r2.image->data());
  EXPECT_EQ(server.stats().batches, batches_before);  // no extra forward pass
  EXPECT_GE(server.stats().cache_hits, 1U);
}

TEST(ReconServerTest, RejectBackpressureShedsButCompletesAccepted) {
  ServeFixture fx;
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 1;
  cfg.cache_bytes = 0;  // identical resubmits must not shortcut the queue
  cfg.backpressure = BackpressurePolicy::kReject;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  const ServeRequest req = fx.make_request(test_image(64, 48, 6));
  int accepted = 0;
  int rejected = 0;
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    SubmitResult res = server.submit(req);
    if (res.accepted) {
      ++accepted;
      futures.push_back(std::move(res.response));
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);  // 32 instant submits cannot all fit a queue of 1
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(s.rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_LE(s.max_queue_depth, cfg.max_queue);
}

TEST(ReconServerTest, BlockBackpressureCompletesEverything) {
  ServeFixture fx;
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_queue = 2;
  cfg.cache_bytes = 0;
  cfg.backpressure = BackpressurePolicy::kBlock;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    SubmitResult res = server.submit(fx.make_request(test_image(48, 32, 7)));
    ASSERT_TRUE(res.accepted);  // kBlock never sheds
    futures.push_back(std::move(res.response));
  }
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(server.stats().rejected, 0U);
  EXPECT_EQ(server.stats().completed, 12U);
}

TEST(ReconServerTest, UnknownCodecFailsTheFuture) {
  ServeFixture fx;
  ReconServer server(ServerConfig{}, fx.model);
  ServeRequest req = fx.make_request(test_image(32, 32, 8));
  req.codec = "no-such-codec";
  SubmitResult res = server.submit(req);
  ASSERT_TRUE(res.accepted);
  EXPECT_THROW(res.response.get(), std::runtime_error);
  server.drain();
  EXPECT_EQ(server.stats().failed, 1U);
}

TEST(ReconServerTest, ChannelMismatchFailsTheFutureNotTheServer) {
  ServeFixture fx;
  ReconServer server(ServerConfig{}, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  // A grayscale upload through an RGB deployment must fail its own future
  // at the decode stage — a shape throw mid-batch would kill the process.
  const image::Image gray = test_image(32, 32, 12).to_gray();
  const core::EaszPipeline edge(
      fx.edge_config(1, core::SqueezeAxis::kHorizontal, 7), fx.jpeg, nullptr);
  ServeRequest req;
  req.compressed = edge.encode(gray);
  req.codec = "jpeg";
  SubmitResult res = server.submit(std::move(req));
  ASSERT_TRUE(res.accepted);
  EXPECT_THROW(res.response.get(), std::runtime_error);

  SubmitResult ok = server.submit(fx.make_request(test_image(32, 32, 12)));
  ASSERT_TRUE(ok.accepted);
  EXPECT_NO_THROW(ok.response.get());
}

TEST(ReconServerTest, CorruptMaskFailsTheFutureNotTheServer) {
  ServeFixture fx;
  ReconServer server(ServerConfig{}, fx.model);
  server.register_codec("jpeg", &fx.jpeg);
  ServeRequest bad = fx.make_request(test_image(32, 32, 9));
  bad.compressed.mask_bytes.pop_back();  // truncate the side channel
  SubmitResult res = server.submit(bad);
  ASSERT_TRUE(res.accepted);
  EXPECT_THROW(res.response.get(), std::exception);

  // The server survives and keeps serving.
  SubmitResult ok = server.submit(fx.make_request(test_image(32, 32, 9)));
  ASSERT_TRUE(ok.accepted);
  EXPECT_NO_THROW(ok.response.get());
}

// Codec whose decode stalls, to keep workers busy and the queue non-empty.
class SlowJpeg final : public codec::ImageCodec {
 public:
  explicit SlowJpeg(int ms) : ms_(ms) {}
  [[nodiscard]] std::string name() const override { return "slow"; }
  [[nodiscard]] codec::Compressed encode(const image::Image& img) const override {
    return inner_.encode(img);
  }
  [[nodiscard]] image::Image decode(const codec::Compressed& c) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    return inner_.decode(c);
  }
  void set_quality(int q) override { inner_.set_quality(q); }
  [[nodiscard]] int quality() const override { return inner_.quality(); }
  [[nodiscard]] double encode_flops(int w, int h) const override {
    return inner_.encode_flops(w, h);
  }
  [[nodiscard]] double decode_flops(int w, int h) const override {
    return inner_.decode_flops(w, h);
  }
  [[nodiscard]] std::size_t model_bytes() const override { return 0; }

 private:
  codec::JpegLikeCodec inner_{85};
  int ms_;
};

TEST(ReconServerTest, AgeTriggerPreventsRareMaskStarvation) {
  ServeFixture fx;
  SlowJpeg slow(20);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 4;
  cfg.max_batch_patches = 100000;  // never reached: only age/flush can launch
  cfg.max_batch_wait_s = 0.02;
  cfg.cache_bytes = 0;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);
  server.register_codec("slow", &slow);

  // The victim: a unique mask, decoded quickly, then parked in the pool.
  SubmitResult victim =
      server.submit(fx.make_request(test_image(32, 32, 70), 1,
                                    core::SqueezeAxis::kHorizontal,
                                    /*mask_seed=*/999));
  ASSERT_TRUE(victim.accepted);

  // The dominant stream: one shared mask, slow decodes, kBlock pacing keeps
  // the queue non-empty for ~30 x 20 ms of single-worker time.
  constexpr int kStream = 30;
  std::atomic<int> streamed{0};
  ServeRequest stream_req = fx.make_request(test_image(32, 32, 71));
  stream_req.codec = "slow";
  std::thread stream([&] {
    for (int i = 0; i < kStream; ++i) {
      if (server.submit(stream_req).accepted) {
        streamed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Without the age trigger the victim's under-full group only launches via
  // the flush condition — i.e. after the whole stream drains.
  const auto status = victim.response.wait_for(std::chrono::seconds(5));
  const int streamed_when_done = streamed.load(std::memory_order_relaxed);
  ASSERT_EQ(status, std::future_status::ready);
  EXPECT_LT(streamed_when_done, kStream)
      << "victim only completed after the dominant stream finished";
  EXPECT_NO_THROW(victim.response.get());
  stream.join();
  server.drain();
}

TEST(ReconServerTest, DrainWaitsForAllOutstanding) {
  ServeFixture fx;
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.cache_bytes = 0;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.submit(fx.make_request(test_image(48, 32, 10 + i)))
                    .accepted);
  }
  server.drain();
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed + s.failed, 6U);
  EXPECT_EQ(s.queue_depth, 0);
}

// ---------------------------------------------------------------- loadgen

TEST(LoadGenTest, IndustrialTraceBatchesAcrossRequests) {
  ServeFixture fx;
  testbed::LoadTrace trace = testbed::make_industrial_stream_trace(
      fx.model, fx.jpeg, /*stations=*/4, /*frames_per_station=*/3);
  ASSERT_EQ(trace.events.size(), 12U);
  // Shared deployment mask: identical mask bytes across stations.
  const auto& mask0 = trace.events[0].request.compressed.mask_bytes;
  for (const auto& ev : trace.events) {
    EXPECT_EQ(ev.request.compressed.mask_bytes, mask0);
  }
  // Arrivals are sorted and strictly positive spans.
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_GE(trace.events[i].arrival_s, trace.events[i - 1].arrival_s);
  }

  ServerConfig cfg;
  cfg.workers = 4;
  cfg.max_batch_patches = 64;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);
  const testbed::ReplayReport report = testbed::replay_trace(trace, server);
  EXPECT_EQ(report.completed, 12);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GT(report.server.cross_request_batches, 0U);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_NE(report.to_json().find("\"trace\":\"industrial_stream\""),
            std::string::npos);
}

TEST(LoadGenTest, WildlifeTraceProducesCacheHits) {
  ServeFixture fx;
  testbed::LoadTrace trace = testbed::make_wildlife_burst_trace(
      fx.model, fx.jpeg, /*cameras=*/2, /*bursts=*/2, /*frames_per_burst=*/4,
      /*duplicate_prob=*/1.0);  // every non-leading frame is a resend
  // Every non-leading burst frame is a byte-identical resend, so the trace
  // has far fewer unique frames than events.
  EXPECT_LT(trace.originals.size(), trace.events.size());

  ReconServer server(ServerConfig{}, fx.model);
  server.register_codec("jpeg", &fx.jpeg);
  const testbed::ReplayReport first = testbed::replay_trace(trace, server);
  EXPECT_EQ(first.completed, 16);
  // Duplicates submitted while the original is still in flight legitimately
  // miss; replaying the drained trace is deterministic: everything hits.
  const testbed::ReplayReport second = testbed::replay_trace(trace, server);
  EXPECT_EQ(second.completed, 16);
  EXPECT_GE(second.server.cache_hits - first.server.cache_hits, 16U);
  EXPECT_EQ(second.server.batches, first.server.batches);  // no new forwards
}

TEST(LoadGenTest, HeterogeneousTraceCompletesEverything) {
  ServeFixture fx;
  testbed::LoadTrace trace = testbed::make_heterogeneous_trace(
      fx.model, fx.jpeg, /*clients=*/3, /*frames_per_client=*/3);
  ASSERT_EQ(trace.events.size(), 9U);
  ServerConfig cfg;
  cfg.workers = 4;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);
  const testbed::ReplayReport report = testbed::replay_trace(trace, server);
  EXPECT_EQ(report.completed, 9);
  EXPECT_EQ(report.failed, 0);
}

}  // namespace
}  // namespace easz::serve
