// Networked serving tier integration tests (DESIGN.md §11): epoll transport
// loopback, disconnect-under-load settle-once, shed propagation, and the
// consistent-hash router end to end over real sockets.
//
// Everything binds 127.0.0.1 ephemeral ports, so tests run in parallel and
// sandboxed. The acceptance criterion the loopback tests pin down: a socket
// response's pixel bytes are IDENTICAL to the in-process submit() result —
// the wire tier adds a transport, not a numeric path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "data/synth.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"
#include "util/prng.hpp"

namespace easz::serve {
namespace {

core::ReconModelConfig tiny_model_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

struct NetFixture {
  util::Pcg32 rng{417};
  core::ReconstructionModel model{tiny_model_config(), rng};
  codec::JpegLikeCodec jpeg{85};

  ServeRequest make_request(std::uint64_t image_seed,
                            std::uint64_t mask_seed = 7,
                            const std::string& tenant = "") {
    util::Pcg32 img_rng(image_seed);
    const image::Image img = data::synth_photo(48, 32, img_rng);
    core::EaszConfig cfg;
    cfg.patchify = tiny_model_config().patchify;
    cfg.erased_per_row = 1;
    cfg.mask_seed = mask_seed;
    const core::EaszPipeline edge(cfg, jpeg, nullptr);
    ServeRequest r;
    r.compressed = edge.encode(img);
    r.codec = "jpeg";
    r.tenant = tenant;
    return r;
  }

  static wire::WireRequest to_wire(const ServeRequest& r,
                                   std::uint64_t tag) {
    wire::WireRequest w;
    w.client_tag = tag;
    w.tenant = r.tenant;
    w.codec = r.codec;
    w.compressed = r.compressed;
    return w;
  }

  std::unique_ptr<ReconServer> make_server(ServerConfig scfg) {
    auto server = std::make_unique<ReconServer>(scfg, model);
    server->register_codec("jpeg", &jpeg);
    return server;
  }
};

std::uint64_t counter_value(ReconServer& server, const std::string& name) {
  return server.obs().snapshot().counter(name);
}

// ------------------------------------------------------------- loopback

TEST(TransportTest, LoopbackResponsesAreByteIdenticalToInProcessSubmit) {
  NetFixture fx;
  ServerConfig scfg;
  scfg.workers = 2;
  auto reference = fx.make_server(scfg);  // in-process oracle
  auto served = fx.make_server(scfg);     // behind the socket
  ServeTransport transport(*served, TransportConfig{});

  WireClient client;
  client.connect("127.0.0.1", transport.port());

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const ServeRequest req = fx.make_request(seed);

    SubmitResult local = reference->submit(req);
    ASSERT_TRUE(local.accepted);
    const wire::WireResponse expect =
        wire::make_ok_response(local.response.get());

    const wire::WireResponse got =
        client.roundtrip(NetFixture::to_wire(req, seed));
    ASSERT_EQ(got.status, wire::ResponseStatus::kOk) << got.error;
    EXPECT_EQ(got.client_tag, seed);
    EXPECT_EQ(got.width, expect.width);
    EXPECT_EQ(got.height, expect.height);
    EXPECT_EQ(got.channels, expect.channels);
    EXPECT_EQ(got.pixels, expect.pixels) << "seed " << seed;
    EXPECT_GT(got.request_id, 0U);
  }

  // A byte-identical resend hits the replica's result cache and says so.
  const ServeRequest dup = fx.make_request(1);
  const wire::WireResponse hit =
      client.roundtrip(NetFixture::to_wire(dup, 99));
  ASSERT_EQ(hit.status, wire::ResponseStatus::kOk);
  EXPECT_EQ(hit.cache_hit, 1);

  transport.stop();
  served->drain();
}

TEST(TransportTest, MalformedFrameAnswersFailedAndKeepsConnection) {
  NetFixture fx;
  ServerConfig scfg;
  scfg.workers = 1;
  auto served = fx.make_server(scfg);
  ServeTransport transport(*served, TransportConfig{});

  WireClient client;
  client.connect("127.0.0.1", transport.port());

  // Valid framing, garbage body: the server answers kFailed instead of
  // dropping the connection — the stream is still in sync.
  std::vector<std::uint8_t> garbage = {8, 0, 0, 0, 'g', 'a', 'r',
                                       'b', 'a', 'g', 'e', '!'};
  client.send_frame(garbage);
  const wire::WireResponse failed = client.recv_response(10.0);
  EXPECT_EQ(failed.status, wire::ResponseStatus::kFailed);
  EXPECT_FALSE(failed.error.empty());
  EXPECT_EQ(counter_value(*served, "transport.parse_errors"), 1U);

  // The same connection still serves real traffic afterwards.
  const ServeRequest req = fx.make_request(5);
  const wire::WireResponse ok =
      client.roundtrip(NetFixture::to_wire(req, 1));
  EXPECT_EQ(ok.status, wire::ResponseStatus::kOk) << ok.error;

  transport.stop();
  served->drain();
}

TEST(TransportTest, OversizeFrameClosesTheConnection) {
  NetFixture fx;
  ServerConfig scfg;
  scfg.workers = 1;
  auto served = fx.make_server(scfg);
  TransportConfig tcfg;
  tcfg.max_frame_bytes = 1 << 16;
  ServeTransport transport(*served, tcfg);

  WireClient client;
  client.connect("127.0.0.1", transport.port());
  const std::vector<std::uint8_t> hostile = {0xFF, 0xFF, 0xFF, 0x7F};
  client.send_frame(hostile);
  // The framing is unrecoverable, so the server hangs up rather than
  // buffering 2 GB it will never parse.
  EXPECT_THROW(client.recv_response(10.0), std::runtime_error);

  transport.stop();
  served->drain();
}

// ------------------------------------------------- disconnect under load

TEST(TransportTest, DisconnectUnderLoadSettlesEveryRequestServerSide) {
  NetFixture fx;
  ServerConfig scfg;
  scfg.workers = 1;
  // Slow every decode down so the client can vanish while ALL its requests
  // are still in flight — the settle-once funnel must release each slot
  // and drop each response without anyone listening.
  scfg.fault_injection = [](StageAction stage) {
    if (stage == StageAction::kDecode) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  };
  auto served = fx.make_server(scfg);
  ServeTransport transport(*served, TransportConfig{});

  constexpr std::uint64_t kInflight = 4;
  {
    WireClient client;
    client.connect("127.0.0.1", transport.port());
    for (std::uint64_t i = 0; i < kInflight; ++i) {
      client.send_request(
          NetFixture::to_wire(fx.make_request(100 + i), i));
    }
    client.close();  // gone before any response can flush
  }

  // The server settles every accepted request (drain() returning at all is
  // the slot-release proof), and every response bytes-wise lands in the
  // dropped counter because the connection died first.
  served->drain();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (counter_value(*served, "transport.dropped_responses") < kInflight &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(counter_value(*served, "transport.dropped_responses"), kInflight);

  // The server is fully healthy afterwards: a fresh client round-trips.
  WireClient again;
  again.connect("127.0.0.1", transport.port());
  const wire::WireResponse ok =
      again.roundtrip(NetFixture::to_wire(fx.make_request(200), 1));
  EXPECT_EQ(ok.status, wire::ResponseStatus::kOk) << ok.error;

  transport.stop();
  served->drain();
}

TEST(TransportTest, ShedResponsesCarryTheSubmitReason) {
  NetFixture fx;
  ServerConfig scfg;
  scfg.workers = 1;
  TenantConfig tenant;
  tenant.name = "camera";
  tenant.max_inflight = 1;  // second pipelined request must shed on quota
  scfg.tenants = {tenant};
  scfg.fault_injection = [](StageAction stage) {
    if (stage == StageAction::kDecode) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };
  auto served = fx.make_server(scfg);
  ServeTransport transport(*served, TransportConfig{});

  WireClient client;
  client.connect("127.0.0.1", transport.port());
  client.send_request(
      NetFixture::to_wire(fx.make_request(300, 7, "camera"), 1));
  client.send_request(
      NetFixture::to_wire(fx.make_request(301, 7, "camera"), 2));

  int ok = 0;
  int shed = 0;
  for (int i = 0; i < 2; ++i) {
    const wire::WireResponse resp = client.recv_response(30.0);
    if (resp.status == wire::ResponseStatus::kOk) {
      ++ok;
    } else if (resp.status == wire::ResponseStatus::kShed) {
      ++shed;
      EXPECT_EQ(static_cast<SubmitStatus>(resp.submit_status),
                SubmitStatus::kQuotaExceeded);
      EXPECT_EQ(resp.client_tag, 2U);  // the shed answer is the 2nd submit
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shed, 1);

  transport.stop();
  served->drain();
}

// ---------------------------------------------------------------- router

TEST(RouterTest, RoutesThroughTwoReplicasWithCacheAffinity) {
  NetFixture fx;
  ServerConfig scfg;
  scfg.workers = 2;
  auto replica0 = fx.make_server(scfg);
  auto replica1 = fx.make_server(scfg);
  auto transport0 =
      std::make_unique<ServeTransport>(*replica0, TransportConfig{});
  auto transport1 =
      std::make_unique<ServeTransport>(*replica1, TransportConfig{});

  RouterConfig rcfg;
  rcfg.replicas = {{"127.0.0.1", transport0->port()},
                   {"127.0.0.1", transport1->port()}};
  ReplicaRouter router(rcfg);

  auto reference = fx.make_server(scfg);  // in-process oracle

  WireClient client;
  client.connect("127.0.0.1", router.port());

  // Distinct mask seeds spread the keys across the ring; each request is
  // sent twice, and the closed-loop resend MUST hit the cache of whichever
  // replica served the original — that is the affinity contract.
  constexpr std::uint64_t kDistinct = 8;
  std::uint64_t tag = 0;
  for (std::uint64_t i = 0; i < kDistinct; ++i) {
    const ServeRequest req = fx.make_request(400 + i, /*mask_seed=*/i);

    SubmitResult local = reference->submit(req);
    ASSERT_TRUE(local.accepted);
    const wire::WireResponse expect =
        wire::make_ok_response(local.response.get());

    const wire::WireResponse first =
        client.roundtrip(NetFixture::to_wire(req, ++tag));
    ASSERT_EQ(first.status, wire::ResponseStatus::kOk) << first.error;
    EXPECT_EQ(first.pixels, expect.pixels) << "request " << i;

    const wire::WireResponse resend =
        client.roundtrip(NetFixture::to_wire(req, ++tag));
    ASSERT_EQ(resend.status, wire::ResponseStatus::kOk) << resend.error;
    EXPECT_EQ(resend.cache_hit, 1) << "resend " << i
                                   << " missed its replica's cache";
    EXPECT_EQ(resend.pixels, expect.pixels);
  }

  // Both replicas took traffic, and every resend was a cache hit wherever
  // it landed: 100% of repeat keys stayed on their replica (criterion:
  // >= 90%).
  const ReplicaStats s0 = router.replica_stats(0);
  const ReplicaStats s1 = router.replica_stats(1);
  EXPECT_EQ(s0.forwarded + s1.forwarded, 2 * kDistinct);
  EXPECT_GT(s0.forwarded, 0U);
  EXPECT_GT(s1.forwarded, 0U);
  EXPECT_EQ(s0.responses + s1.responses, 2 * kDistinct);
  EXPECT_EQ(s0.failed + s1.failed, 0U);
  const std::uint64_t hits0 = replica0->stats().cache_hits;
  const std::uint64_t hits1 = replica1->stats().cache_hits;
  EXPECT_EQ(hits0 + hits1, kDistinct);

  router.stop();
  transport0->stop();
  transport1->stop();
  replica0->drain();
  replica1->drain();
}

TEST(RouterTest, DeadReplicaFailsFastInsteadOfHanging) {
  NetFixture fx;
  ServerConfig scfg;
  scfg.workers = 1;
  auto replica0 = fx.make_server(scfg);
  auto replica1 = fx.make_server(scfg);
  auto transport0 =
      std::make_unique<ServeTransport>(*replica0, TransportConfig{});
  auto transport1 =
      std::make_unique<ServeTransport>(*replica1, TransportConfig{});

  RouterConfig rcfg;
  rcfg.replicas = {{"127.0.0.1", transport0->port()},
                   {"127.0.0.1", transport1->port()}};
  ReplicaRouter router(rcfg);

  // Kill replica 0 under the router.
  transport0->stop();

  WireClient client;
  client.connect("127.0.0.1", router.port());

  // Every request gets SOME response — ok from the live replica, failed
  // for keys owned by the dead one. Nothing hangs.
  int ok = 0;
  int failed = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const ServeRequest req = fx.make_request(500 + i, /*mask_seed=*/i);
    const wire::WireResponse resp =
        client.roundtrip(NetFixture::to_wire(req, i + 1));
    if (resp.status == wire::ResponseStatus::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(resp.status, wire::ResponseStatus::kFailed);
      EXPECT_FALSE(resp.error.empty());
      ++failed;
    }
  }
  EXPECT_EQ(ok + failed, 8);
  EXPECT_GT(ok, 0);      // the live replica keeps serving its share
  EXPECT_GT(failed, 0);  // the dead replica's share fails fast

  router.stop();
  transport1->stop();
  replica1->drain();
  replica0->drain();
}

}  // namespace
}  // namespace easz::serve
