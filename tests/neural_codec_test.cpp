#include <gtest/gtest.h>

#include <cmath>

#include "data/synth.hpp"
#include "metrics/distortion.hpp"
#include "neural_codec/conv_autoencoder.hpp"
#include "neural_codec/entropy_bottleneck.hpp"
#include "util/prng.hpp"

namespace easz::neural_codec {
namespace {

TEST(EntropyBottleneck, LatentRoundTripExactAtQuantGrid) {
  util::Pcg32 rng(1);
  tensor::Tensor z = tensor::Tensor::randn({1, 4, 6, 6}, rng, 2.0F);
  const float step = 0.25F;
  const LatentCode code = encode_latents(z, step);
  const tensor::Tensor back = decode_latents(code, step);
  ASSERT_EQ(back.shape(), z.shape());
  for (std::size_t i = 0; i < z.numel(); ++i) {
    const float q = std::round(z.data()[i] / step) * step;
    EXPECT_NEAR(back.data()[i], q, 1e-5F);
  }
}

TEST(EntropyBottleneck, CoarserStepShrinksCode) {
  util::Pcg32 rng(2);
  tensor::Tensor z = tensor::Tensor::randn({1, 8, 16, 16}, rng, 1.0F);
  const LatentCode fine = encode_latents(z, 0.05F);
  const LatentCode coarse = encode_latents(z, 1.0F);
  EXPECT_LT(coarse.bytes.size(), fine.bytes.size());
}

TEST(EntropyBottleneck, RejectsBadStep) {
  tensor::Tensor z({1, 1, 2, 2});
  EXPECT_THROW(encode_latents(z, 0.0F), std::invalid_argument);
}

TEST(EntropyBottleneck, EntropyEstimateTracksStep) {
  util::Pcg32 rng(3);
  tensor::Tensor z = tensor::Tensor::randn({1, 4, 16, 16}, rng, 1.0F);
  EXPECT_GT(latent_entropy_bits(z, 0.05F), latent_entropy_bits(z, 1.0F));
}

TEST(ConvCodec, SpecsDifferentiateMbtAndCheng) {
  const ConvCodecSpec mbt = mbt_lite_spec();
  const ConvCodecSpec cheng = cheng_lite_spec();
  EXPECT_LT(mbt.stages, cheng.stages);
  EXPECT_LT(mbt.paper_encode_flops_per_px, cheng.paper_encode_flops_per_px);
  EXPECT_LT(mbt.paper_model_bytes, cheng.paper_model_bytes);
}

TEST(ConvCodec, RoundTripGeometryPreserved) {
  ConvAutoencoderCodec codec(mbt_lite_spec(), 60, 42);
  util::Pcg32 rng(4);
  const image::Image img = data::synth_photo(50, 38, rng);
  const codec::Compressed c = codec.encode(img);
  const image::Image out = codec.decode(c);
  EXPECT_EQ(out.width(), 50);
  EXPECT_EQ(out.height(), 38);
  EXPECT_EQ(out.channels(), 3);
}

TEST(ConvCodec, PretrainingImprovesReconstruction) {
  ConvAutoencoderCodec codec(mbt_lite_spec(), 70, 43);
  util::Pcg32 rng(5);
  const image::Image img = data::synth_photo(48, 48, rng);
  const double before = metrics::mse(img, codec.decode(codec.encode(img)));
  codec.pretrain(40, 32, 2);
  const double after = metrics::mse(img, codec.decode(codec.encode(img)));
  EXPECT_LT(after, before);
}

TEST(ConvCodec, QualityKnobTradesRateForDistortion) {
  ConvAutoencoderCodec codec(mbt_lite_spec(), 30, 44);
  codec.pretrain(40, 32, 2);
  util::Pcg32 rng(6);
  const image::Image img = data::synth_photo(48, 48, rng);

  codec.set_quality(5);
  const codec::Compressed low = codec.encode(img);
  const double mse_low = metrics::mse(img, codec.decode(low));
  codec.set_quality(90);
  const codec::Compressed high = codec.encode(img);
  const double mse_high = metrics::mse(img, codec.decode(high));

  EXPECT_LT(low.bpp(), high.bpp());
  EXPECT_LE(mse_high, mse_low * 1.05);
}

TEST(ConvCodec, PaperScaleCostReporting) {
  ConvAutoencoderCodec mbt(mbt_lite_spec(), 50, 45);
  ConvAutoencoderCodec cheng(cheng_lite_spec(), 50, 46);
  // The testbed consumes paper-scale numbers: ~1e11 FLOPs at 512x768.
  EXPECT_GT(mbt.encode_flops(768, 512), 1e10);
  EXPECT_GT(cheng.encode_flops(768, 512), mbt.encode_flops(768, 512));
  EXPECT_GT(mbt.model_bytes(), 50U * 1024 * 1024);
  EXPECT_GT(cheng.model_bytes(), mbt.model_bytes());
}

TEST(ConvCodec, DeterministicEncode) {
  ConvAutoencoderCodec codec(mbt_lite_spec(), 55, 47);
  util::Pcg32 rng(7);
  const image::Image img = data::synth_photo(32, 32, rng);
  EXPECT_EQ(codec.encode(img).bytes, codec.encode(img).bytes);
}

TEST(ConvCodec, ChengDownsamplesMoreAggressively) {
  ConvAutoencoderCodec mbt(mbt_lite_spec(), 50, 48);
  ConvAutoencoderCodec cheng(cheng_lite_spec(), 50, 49);
  EXPECT_EQ(mbt.downsample_factor(), 4);
  EXPECT_EQ(cheng.downsample_factor(), 8);
}


TEST(ConvCodec, GdnVariantRoundTripsAndTrains) {
  ConvCodecSpec spec = mbt_lite_spec();
  spec.use_gdn = true;
  ConvAutoencoderCodec codec(spec, 60, 50);
  util::Pcg32 rng(8);
  const image::Image img = data::synth_photo(32, 32, rng);
  const double before = metrics::mse(img, codec.decode(codec.encode(img)));
  codec.pretrain(30, 32, 1);
  const double after = metrics::mse(img, codec.decode(codec.encode(img)));
  EXPECT_LT(after, before);
  const image::Image out = codec.decode(codec.encode(img));
  EXPECT_EQ(out.width(), 32);
}

TEST(ConvCodec, GdnVariantHasMoreParameters) {
  ConvCodecSpec plain = mbt_lite_spec();
  ConvCodecSpec gdn = mbt_lite_spec();
  gdn.use_gdn = true;
  ConvAutoencoderCodec a(plain, 50, 51);
  ConvAutoencoderCodec b(gdn, 50, 52);
  EXPECT_GT(b.num_parameters(), a.num_parameters());
}

}  // namespace
}  // namespace easz::neural_codec
