// Coverage for the fast entropy substrate: interleaved-vs-scalar rANS
// equivalence, negative paths (truncation, corrupt lane offsets), the v1
// golden-stream backward-compat contract, and the one-pass FrequencyTable
// normalisation.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "entropy/rans.hpp"
#include "util/prng.hpp"

namespace easz::entropy {
namespace {

#include "golden_v1_streams.inc"

std::vector<int> skewed_symbols(int count, int alphabet, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<int> symbols;
  symbols.reserve(count);
  for (int i = 0; i < count; ++i) {
    int s = 0;
    while (s < alphabet - 1 && rng.next_float() < 0.55F) ++s;
    symbols.push_back(s);
  }
  return symbols;
}

FrequencyTable table_for(const std::vector<int>& symbols, int alphabet) {
  std::vector<std::uint64_t> counts(alphabet, 0);
  for (const int s : symbols) ++counts[s];
  return FrequencyTable::from_counts(counts, true);
}

TEST(RansInterleaved, RoundTripRandomSymbols) {
  util::Pcg32 rng(101);
  std::vector<int> symbols;
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(static_cast<int>(rng.next_below(64)));
  }
  const auto table = table_for(symbols, 64);
  const auto encoded = rans_encode_interleaved(symbols, table);
  EXPECT_EQ(rans_decode_interleaved(encoded.data(), encoded.size(),
                                    symbols.size(), table),
            symbols);
}

TEST(RansInterleaved, RoundTripSkewedSymbols) {
  const auto symbols = skewed_symbols(30000, 32, 103);
  const auto buffer = rans_encode_interleaved_with_table(symbols, 32);
  EXPECT_EQ(rans_decode_interleaved_with_table(buffer.data(), buffer.size(),
                                               symbols.size()),
            symbols);
}

TEST(RansInterleaved, RoundTripDegenerateOneSymbolAlphabet) {
  const std::vector<int> symbols(5000, 0);
  const std::vector<std::uint64_t> counts = {42};
  const auto table = FrequencyTable::from_counts(counts);
  const auto encoded = rans_encode_interleaved(symbols, table);
  EXPECT_EQ(rans_decode_interleaved(encoded.data(), encoded.size(),
                                    symbols.size(), table),
            symbols);
}

TEST(RansInterleaved, RoundTripWideAlphabet) {
  // Alphabet > 256 exercises the uint16 slot table variant.
  const auto symbols = skewed_symbols(20000, 500, 107);
  const auto buffer = rans_encode_interleaved_with_table(symbols, 500);
  EXPECT_EQ(rans_decode_interleaved_with_table(buffer.data(), buffer.size(),
                                               symbols.size()),
            symbols);
}

TEST(RansInterleaved, RoundTripShortCounts) {
  // Counts below / around the lane width hit the checked-tail path.
  for (const int count : {0, 1, 2, 3, 4, 5, 7, 9}) {
    const auto symbols = skewed_symbols(count, 16, 109 + count);
    const auto table = table_for(symbols.empty() ? std::vector<int>{0} : symbols, 16);
    const auto encoded = rans_encode_interleaved(symbols, table);
    EXPECT_EQ(rans_decode_interleaved(encoded.data(), encoded.size(),
                                      symbols.size(), table),
              symbols)
        << "count=" << count;
  }
}

TEST(RansInterleaved, DispatchedAndScalarKernelsAreByteExact) {
  const auto symbols = skewed_symbols(50000, 255, 113);
  const auto table = table_for(symbols, 255);
  const auto encoded = rans_encode_interleaved(symbols, table);
  const auto dispatched = rans_decode_interleaved(encoded.data(),
                                                  encoded.size(),
                                                  symbols.size(), table);
  const auto scalar = detail::rans_decode_interleaved_scalar(
      encoded.data(), encoded.size(), symbols.size(), table);
  EXPECT_EQ(dispatched, scalar);
  EXPECT_EQ(dispatched, symbols);
}

TEST(RansInterleaved, EncodeIsDeterministic) {
  const auto symbols = skewed_symbols(10000, 64, 127);
  const auto table = table_for(symbols, 64);
  EXPECT_EQ(rans_encode_interleaved(symbols, table),
            rans_encode_interleaved(symbols, table));
}

TEST(RansInterleaved, TruncatedStreamThrows) {
  const auto symbols = skewed_symbols(5000, 32, 131);
  const auto table = table_for(symbols, 32);
  auto encoded = rans_encode_interleaved(symbols, table);
  // Too small for even the lane header.
  EXPECT_THROW(rans_decode_interleaved(encoded.data(), 8, symbols.size(), table),
               std::out_of_range);
  // Drop the final lane's tail: decoding all symbols must fail, not wrap.
  encoded.resize(encoded.size() - 6);
  EXPECT_THROW(rans_decode_interleaved(encoded.data(), encoded.size(),
                                       symbols.size(), table),
               std::exception);
}

// Fuzz-style breadth behind the hand-picked negative cases above: over a
// seeded corpus, EVERY truncation length and hundreds of random byte
// corruptions must end in a clean throw or a decode (possibly of wrong
// symbols — that is entropy coding), never a crash or out-of-range read.
TEST(RansInterleaved, TruncationSweepThrowsAtEveryLength) {
  const auto symbols = skewed_symbols(3000, 24, 137);
  const auto table = table_for(symbols, 24);
  const auto encoded = rans_encode_interleaved(symbols, table);
  for (std::size_t n = 0; n < encoded.size(); ++n) {
    EXPECT_THROW(
        rans_decode_interleaved(encoded.data(), n, symbols.size(), table),
        std::exception)
        << "prefix " << n;
  }
  EXPECT_EQ(rans_decode_interleaved(encoded.data(), encoded.size(),
                                    symbols.size(), table),
            symbols);
}

TEST(RansInterleaved, RandomCorruptionNeverEscapesAsCrash) {
  const auto symbols = skewed_symbols(2000, 16, 139);
  const auto table = table_for(symbols, 16);
  const auto encoded = rans_encode_interleaved(symbols, table);
  util::Pcg32 fuzz(0xC0FE);
  int threw = 0, decoded = 0, wrong = 0;
  for (int trial = 0; trial < 600; ++trial) {
    auto mutated = encoded;
    const int flips = 1 + fuzz.next_int(0, 3);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos =
          fuzz.next_below(static_cast<std::uint32_t>(mutated.size()));
      mutated[pos] ^= static_cast<std::uint8_t>(1U << fuzz.next_int(0, 7));
    }
    try {
      const auto out = rans_decode_interleaved(mutated.data(), mutated.size(),
                                               symbols.size(), table);
      ++decoded;
      if (out != symbols) ++wrong;  // tolerated; crashing is not
    } catch (const std::exception&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw + decoded, 600);
  // The lane-offset/word-bounds validators must be load-bearing.
  EXPECT_GT(threw, 0);
}

TEST(RansInterleaved, CorruptLaneOffsetThrows) {
  const auto symbols = skewed_symbols(5000, 32, 137);
  const auto table = table_for(symbols, 32);
  auto encoded = rans_encode_interleaved(symbols, table);
  // Lane offsets must be monotone and in bounds; poison offset 2 to point
  // past the payload.
  auto poisoned = encoded;
  poisoned[4] = 0xFF;
  poisoned[5] = 0xFF;
  poisoned[6] = 0xFF;
  poisoned[7] = 0xFF;
  EXPECT_THROW(rans_decode_interleaved(poisoned.data(), poisoned.size(),
                                       symbols.size(), table),
               std::runtime_error);
  // Non-monotone offsets (lane 2 before lane 1).
  poisoned = encoded;
  poisoned[4] = 0x01;
  poisoned[5] = 0x00;
  poisoned[6] = 0x00;
  poisoned[7] = 0x00;
  EXPECT_THROW(rans_decode_interleaved(poisoned.data(), poisoned.size(),
                                       symbols.size(), table),
               std::exception);
}

TEST(RansV1, GoldenStreamStillDecodesBitExactly) {
  // Stream written by the seed (pre-interleave) encoder, checked in as
  // bytes. The v1 decode path must reproduce the original symbols forever.
  const std::vector<std::uint8_t> stream(
      kGoldenRansV1, kGoldenRansV1 + sizeof(kGoldenRansV1));
  const std::size_t count =
      sizeof(kGoldenRansV1Symbols) / sizeof(kGoldenRansV1Symbols[0]);
  const std::vector<int> expected(kGoldenRansV1Symbols,
                                  kGoldenRansV1Symbols + count);
  EXPECT_EQ(rans_decode_with_table(stream.data(), stream.size(), count),
            expected);
}

TEST(RansV1, EncodeStillRoundTripsAfterBackToFrontRewrite) {
  // The back-to-front emitter must produce streams the decoder accepts even
  // when the entropy estimate undershoots (tables that mismatch content).
  std::vector<int> symbols(20000, 0);
  util::Pcg32 rng(139);
  for (auto& s : symbols) s = static_cast<int>(rng.next_below(4));
  // Table heavily skewed toward symbol 0 while content is uniform: actual
  // bits/symbol far exceed the table entropy estimate, forcing the
  // grow-at-front path.
  std::vector<std::uint64_t> counts = {100000, 1, 1, 1};
  const auto table = FrequencyTable::from_counts(counts);
  const auto encoded = rans_encode(symbols, table);
  EXPECT_EQ(rans_decode(encoded.data(), encoded.size(), symbols.size(), table),
            symbols);
}

TEST(RansTable, NegativeLeftoverNormalisesInOnePass) {
  // Thousands of rare symbols each floored to 1 slot oversubscribe the
  // 2^14 budget; the proportional shrink must land exactly on kProbScale
  // with every observed symbol keeping >= 1 slot.
  std::vector<std::uint64_t> counts(10000, 1);
  counts[0] = 1000000;
  counts[1] = 500000;
  const auto table = FrequencyTable::from_counts(counts);
  std::uint64_t total = 0;
  for (int s = 0; s < table.alphabet_size(); ++s) total += table.freq(s);
  EXPECT_EQ(total, FrequencyTable::kProbScale);
  for (int s = 0; s < table.alphabet_size(); ++s) {
    EXPECT_GE(table.freq(s), 1U) << "symbol " << s;
  }
  EXPECT_GT(table.freq(0), table.freq(1));
  EXPECT_GT(table.freq(1), table.freq(2));
}

TEST(RansTable, NormalisationImpossibleThrows) {
  // More observed symbols than probability slots cannot be normalised.
  std::vector<std::uint64_t> counts(FrequencyTable::kProbScale + 1, 1);
  EXPECT_THROW(FrequencyTable::from_counts(counts), std::runtime_error);
}

TEST(RansTable, LookupIsLazyForEncodeOnlyTables) {
  std::vector<std::uint64_t> counts = {10, 20, 30};
  const auto table = FrequencyTable::from_counts(counts);
  EXPECT_FALSE(table.lookup_built());
  const auto encoded = rans_encode({0, 1, 2, 2}, table);
  EXPECT_FALSE(table.lookup_built());  // encode never pays for the lookup
  EXPECT_EQ(rans_decode(encoded.data(), encoded.size(), 4, table),
            (std::vector<int>{0, 1, 2, 2}));
  EXPECT_TRUE(table.lookup_built());
}

TEST(RansTable, PackedLookupMatchesCumulative) {
  const auto symbols = skewed_symbols(10000, 300, 149);
  const auto table = table_for(symbols, 300);
  table.ensure_lookup();
  for (int s = 0; s < table.alphabet_size(); ++s) {
    if (table.freq(s) == 0) continue;
    EXPECT_EQ(table.symbol_from_slot(table.cum_freq(s)), s);
    EXPECT_EQ(table.symbol_from_slot(table.cum_freq(s) + table.freq(s) - 1), s);
  }
}

}  // namespace
}  // namespace easz::entropy
