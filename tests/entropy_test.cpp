#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "entropy/arithmetic.hpp"
#include "entropy/bitstream.hpp"
#include "entropy/huffman.hpp"
#include "entropy/rans.hpp"
#include "util/prng.hpp"

namespace easz::entropy {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter bw;
  const std::vector<bool> bits = {true, false, true, true, false, false, true};
  for (const bool b : bits) bw.write_bit(b);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const bool b : bits) EXPECT_EQ(br.read_bit(), b);
}

TEST(BitStream, MultiBitFieldsRoundTrip) {
  BitWriter bw;
  bw.write_bits(0xDEADBEEFU, 32);
  bw.write_bits(0x5U, 3);
  bw.write_bits(0x1FFU, 9);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.read_bits(32), 0xDEADBEEFU);
  EXPECT_EQ(br.read_bits(3), 0x5U);
  EXPECT_EQ(br.read_bits(9), 0x1FFU);
}

TEST(BitStream, ExpGolombRoundTrip) {
  BitWriter bw;
  for (std::uint32_t v = 0; v < 200; ++v) bw.write_ue(v);
  for (std::int32_t v = -100; v <= 100; ++v) bw.write_se(v);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (std::uint32_t v = 0; v < 200; ++v) EXPECT_EQ(br.read_ue(), v);
  for (std::int32_t v = -100; v <= 100; ++v) EXPECT_EQ(br.read_se(), v);
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter bw;
  bw.write_bits(0xFF, 8);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  br.read_bits(8);
  EXPECT_THROW(br.read_bit(), std::out_of_range);
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter bw;
  bw.write_bits(0, 5);
  bw.write_bits(0, 13);
  EXPECT_EQ(bw.bit_count(), 18U);
}

TEST(Huffman, RoundTripSkewedDistribution) {
  std::vector<std::uint64_t> freq = {1000, 500, 100, 20, 4, 1};
  const auto code = HuffmanCode::from_frequencies(freq);

  util::Pcg32 rng(11);
  std::vector<int> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(static_cast<int>(rng.next_below(6)));
  }
  BitWriter bw;
  for (const int s : symbols) code.encode_symbol(bw, s);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const int s : symbols) EXPECT_EQ(code.decode_symbol(br), s);
}

TEST(Huffman, SkewedCodesAreShorterForFrequentSymbols) {
  std::vector<std::uint64_t> freq = {1000000, 10, 10, 10};
  const auto code = HuffmanCode::from_frequencies(freq);
  EXPECT_LE(code.lengths()[0], code.lengths()[1]);
  EXPECT_LE(code.lengths()[0], code.lengths()[3]);
}

TEST(Huffman, SingleSymbolAlphabetWorks) {
  std::vector<std::uint64_t> freq = {0, 42, 0};
  const auto code = HuffmanCode::from_frequencies(freq);
  BitWriter bw;
  for (int i = 0; i < 10; ++i) code.encode_symbol(bw, 1);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(code.decode_symbol(br), 1);
}

TEST(Huffman, LengthTableSerializationRoundTrip) {
  std::vector<std::uint64_t> freq = {100, 50, 25, 12, 6, 3, 1, 1};
  const auto code = HuffmanCode::from_frequencies(freq);
  BitWriter bw;
  code.write_lengths(bw);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  const auto restored = HuffmanCode::read_lengths(br, 8);
  EXPECT_EQ(restored.lengths(), code.lengths());
}

TEST(Huffman, AllZeroFrequenciesThrow) {
  std::vector<std::uint64_t> freq = {0, 0, 0};
  EXPECT_THROW(HuffmanCode::from_frequencies(freq), std::invalid_argument);
}

TEST(Huffman, EncodingAbsentSymbolThrows) {
  std::vector<std::uint64_t> freq = {10, 0, 10};
  const auto code = HuffmanCode::from_frequencies(freq);
  BitWriter bw;
  EXPECT_THROW(code.encode_symbol(bw, 1), std::invalid_argument);
}

TEST(Huffman, CompressionBeatsFixedWidthOnSkewedData) {
  // 16-symbol alphabet, geometric distribution.
  std::vector<std::uint64_t> freq(16);
  std::uint64_t f = 1U << 20U;
  for (auto& v : freq) {
    v = f;
    f = std::max<std::uint64_t>(1, f / 2);
  }
  const auto code = HuffmanCode::from_frequencies(freq);

  util::Pcg32 rng(13);
  std::vector<int> symbols;
  for (int i = 0; i < 20000; ++i) {
    // Sample geometric-ish: count leading successes.
    int s = 0;
    while (s < 15 && rng.next_float() < 0.5F) ++s;
    symbols.push_back(s);
  }
  BitWriter bw;
  for (const int s : symbols) code.encode_symbol(bw, s);
  // Fixed-width would need 4 bits/symbol; entropy here is ~2 bits.
  EXPECT_LT(bw.bit_count(), symbols.size() * 3);
}

TEST(Rans, FrequencyTableNormalisesToProbScale) {
  std::vector<std::uint64_t> counts = {5, 0, 17, 3, 1000};
  const auto table = FrequencyTable::from_counts(counts);
  std::uint32_t total = 0;
  for (int s = 0; s < table.alphabet_size(); ++s) total += table.freq(s);
  EXPECT_EQ(total, FrequencyTable::kProbScale);
  EXPECT_EQ(table.freq(1), 0U);
  EXPECT_GT(table.freq(4), table.freq(2));
}

TEST(Rans, LaplaceFloorGivesEverySymbolMass) {
  std::vector<std::uint64_t> counts = {0, 0, 100};
  const auto table = FrequencyTable::from_counts(counts, true);
  for (int s = 0; s < 3; ++s) EXPECT_GT(table.freq(s), 0U);
}

TEST(Rans, SlotLookupIsConsistentWithCumulative) {
  std::vector<std::uint64_t> counts = {10, 20, 30, 40};
  const auto table = FrequencyTable::from_counts(counts);
  for (int s = 0; s < 4; ++s) {
    if (table.freq(s) == 0) continue;
    EXPECT_EQ(table.symbol_from_slot(table.cum_freq(s)), s);
    EXPECT_EQ(table.symbol_from_slot(table.cum_freq(s) + table.freq(s) - 1), s);
  }
}

TEST(Rans, TableSerializationRoundTrip) {
  std::vector<std::uint64_t> counts = {1, 0, 999, 50, 0, 3};
  const auto table = FrequencyTable::from_counts(counts, true);
  const auto bytes = table.serialize();
  std::size_t consumed = 0;
  const auto restored =
      FrequencyTable::deserialize(bytes.data(), bytes.size(), &consumed);
  EXPECT_EQ(consumed, bytes.size());
  for (int s = 0; s < 6; ++s) EXPECT_EQ(restored.freq(s), table.freq(s));
}

TEST(Rans, RoundTripUniformSymbols) {
  util::Pcg32 rng(17);
  std::vector<int> symbols;
  for (int i = 0; i < 10000; ++i) {
    symbols.push_back(static_cast<int>(rng.next_below(64)));
  }
  std::vector<std::uint64_t> counts(64, 0);
  for (const int s : symbols) ++counts[s];
  const auto table = FrequencyTable::from_counts(counts);
  const auto encoded = rans_encode(symbols, table);
  const auto decoded =
      rans_decode(encoded.data(), encoded.size(), symbols.size(), table);
  EXPECT_EQ(decoded, symbols);
}

TEST(Rans, RoundTripSkewedSymbols) {
  util::Pcg32 rng(19);
  std::vector<int> symbols;
  for (int i = 0; i < 30000; ++i) {
    int s = 0;
    while (s < 31 && rng.next_float() < 0.6F) ++s;
    symbols.push_back(s);
  }
  const auto buffer = rans_encode_with_table(symbols, 32);
  const auto decoded =
      rans_decode_with_table(buffer.data(), buffer.size(), symbols.size());
  EXPECT_EQ(decoded, symbols);
}

TEST(Rans, CompressionApproachesEntropy) {
  // Highly skewed: ~0.47 bits/symbol entropy. rANS should get close; a
  // fixed-width code would need 6 bits.
  util::Pcg32 rng(23);
  std::vector<int> symbols;
  for (int i = 0; i < 50000; ++i) {
    symbols.push_back(rng.next_float() < 0.92F ? 0
                                               : static_cast<int>(rng.next_below(64)));
  }
  std::vector<std::uint64_t> counts(64, 0);
  for (const int s : symbols) ++counts[s];
  const auto table = FrequencyTable::from_counts(counts);
  const auto encoded = rans_encode(symbols, table);
  const double bits_per_symbol =
      static_cast<double>(encoded.size()) * 8.0 / static_cast<double>(symbols.size());
  EXPECT_LT(bits_per_symbol, table.entropy_bits() + 0.1);
}

TEST(Rans, EmptyishInputHandled) {
  std::vector<int> symbols = {0};
  const auto buffer = rans_encode_with_table(symbols, 4);
  const auto decoded = rans_decode_with_table(buffer.data(), buffer.size(), 1);
  EXPECT_EQ(decoded, symbols);
}

TEST(Rans, EncodingZeroFrequencySymbolThrows) {
  std::vector<std::uint64_t> counts = {100, 0};
  const auto table = FrequencyTable::from_counts(counts);
  EXPECT_THROW(rans_encode({1}, table), std::invalid_argument);
}

TEST(Rans, TruncatedStreamThrows) {
  std::vector<int> symbols(100, 1);
  std::vector<std::uint64_t> counts = {1, 100, 1};
  const auto table = FrequencyTable::from_counts(counts, true);
  auto encoded = rans_encode(symbols, table);
  encoded.resize(2);
  EXPECT_THROW(rans_decode(encoded.data(), encoded.size(), 100, table),
               std::out_of_range);
}


TEST(Arithmetic, BitRoundTripWithSharedContextTrajectory) {
  util::Pcg32 rng(31);
  std::vector<bool> bits;
  for (int i = 0; i < 20000; ++i) bits.push_back(rng.next_float() < 0.8F);

  ArithmeticEncoder enc;
  BinContext enc_ctx;
  for (const bool b : bits) enc.encode_bit(enc_ctx, b);
  const auto bytes = enc.finish();

  ArithmeticDecoder dec(bytes);
  BinContext dec_ctx;
  for (const bool b : bits) EXPECT_EQ(dec.decode_bit(dec_ctx), b);
}

TEST(Arithmetic, AdaptationApproachesSourceEntropy) {
  // p(1) = 0.95 source: entropy ~0.286 bits/bit. The adaptive coder should
  // land well under 0.5 bits/bit without any table.
  util::Pcg32 rng(32);
  std::vector<bool> bits;
  for (int i = 0; i < 50000; ++i) bits.push_back(rng.next_float() < 0.95F);
  ArithmeticEncoder enc;
  BinContext ctx;
  for (const bool b : bits) enc.encode_bit(ctx, b);
  const auto bytes = enc.finish();
  EXPECT_LT(static_cast<double>(bytes.size()) * 8.0 / bits.size(), 0.45);
}

TEST(Arithmetic, BypassBitsRoundTrip) {
  util::Pcg32 rng(33);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 500; ++i) words.push_back(rng.next_u32() & 0xFFFFU);
  ArithmeticEncoder enc;
  for (const auto w : words) enc.encode_bypass_bits(w, 16);
  const auto bytes = enc.finish();
  // Bypass coding is ~1 bit/bit; expect close to 1000 bytes.
  EXPECT_NEAR(static_cast<double>(bytes.size()), 1000.0, 40.0);
  ArithmeticDecoder dec(bytes);
  for (const auto w : words) EXPECT_EQ(dec.decode_bypass_bits(16), w);
}

TEST(Arithmetic, ValueCodecRoundTrip) {
  util::Pcg32 rng(34);
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Mixed magnitudes incl. zeros and large outliers.
    const float u = rng.next_float();
    values.push_back(u < 0.7F ? 0
                     : u < 0.95F ? rng.next_below(16)
                                 : rng.next_below(100000));
  }
  const auto bytes = arithmetic_encode_values(values);
  EXPECT_EQ(arithmetic_decode_values(bytes, values.size()), values);
}

TEST(Arithmetic, ValueCodecBeatsFixedWidthOnSkewedData) {
  // Mostly-zero stream: adaptive EG coding must land far below 8 bits/value.
  util::Pcg32 rng(35);
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 30000; ++i) {
    values.push_back(rng.next_float() < 0.9F ? 0 : rng.next_below(200));
  }
  const auto bytes = arithmetic_encode_values(values);
  EXPECT_LT(static_cast<double>(bytes.size()) * 8.0 / values.size(), 1.5);
}

TEST(Arithmetic, ContextProbabilityClampsAtExtremes) {
  BinContext ctx;
  for (int i = 0; i < 10000; ++i) ctx.update(true);
  EXPECT_LE(ctx.prob_one(), 0xFFFFU - 32);
  for (int i = 0; i < 10000; ++i) ctx.update(false);
  EXPECT_GE(ctx.prob_one(), 32);
}

}  // namespace
}  // namespace easz::entropy
