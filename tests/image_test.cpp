#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "data/synth.hpp"
#include "image/color.hpp"
#include "image/image.hpp"
#include "image/io_ppm.hpp"
#include "image/patches.hpp"
#include "image/resize.hpp"
#include "util/prng.hpp"

namespace easz::image {
namespace {

Image make_gradient(int w, int h, int channels) {
  Image img(w, h, channels);
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        img.at(c, y, x) =
            static_cast<float>(x + y + c) / static_cast<float>(w + h + channels);
      }
    }
  }
  return img;
}

TEST(Image, ConstructorRejectsBadShapes) {
  EXPECT_THROW(Image(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(Image(4, -1, 1), std::invalid_argument);
  EXPECT_THROW(Image(4, 4, 2), std::invalid_argument);
}

TEST(Image, AccessorsReadWhatWasWritten) {
  Image img(5, 4, 3);
  img.at(2, 3, 4) = 0.25F;
  EXPECT_FLOAT_EQ(img.at(2, 3, 4), 0.25F);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.0F);
}

TEST(Image, ClampedAccessorReplicatesBorder) {
  Image img = make_gradient(4, 4, 1);
  EXPECT_FLOAT_EQ(img.at_clamped(0, -5, 2), img.at(0, 0, 2));
  EXPECT_FLOAT_EQ(img.at_clamped(0, 2, 99), img.at(0, 2, 3));
}

TEST(Image, Quantize8SnapsToEighthBitGrid) {
  Image img(2, 1, 1);
  img.at(0, 0, 0) = 0.5F;
  img.at(0, 0, 1) = 1.7F;
  img.quantize8();
  EXPECT_NEAR(img.at(0, 0, 0), 128.0F / 255.0F, 1e-6F);
  EXPECT_FLOAT_EQ(img.at(0, 0, 1), 1.0F);
}

TEST(Image, ByteRoundTripIsLossless) {
  util::Pcg32 rng(3);
  Image img(16, 8, 3);
  for (auto& v : img.data()) v = rng.next_float();
  img.quantize8();
  const auto bytes = img.to_bytes();
  const Image restored = Image::from_bytes(bytes.data(), 16, 8, 3);
  EXPECT_TRUE(restored.approx_equal(img, 1e-6F));
}

TEST(Image, CropExtractsExpectedRegion) {
  Image img = make_gradient(10, 10, 3);
  const Image crop = img.crop(2, 3, 4, 5);
  EXPECT_EQ(crop.width(), 4);
  EXPECT_EQ(crop.height(), 5);
  EXPECT_FLOAT_EQ(crop.at(1, 0, 0), img.at(1, 3, 2));
  EXPECT_FLOAT_EQ(crop.at(2, 4, 3), img.at(2, 7, 5));
}

TEST(Image, CropRejectsOutOfBounds) {
  Image img(8, 8, 1);
  EXPECT_THROW(img.crop(4, 4, 8, 2), std::invalid_argument);
}

TEST(Image, PadToReplicatesEdges) {
  Image img = make_gradient(4, 4, 1);
  const Image padded = img.pad_to(6, 7);
  EXPECT_EQ(padded.width(), 6);
  EXPECT_EQ(padded.height(), 7);
  EXPECT_FLOAT_EQ(padded.at(0, 6, 5), img.at(0, 3, 3));
  EXPECT_FLOAT_EQ(padded.at(0, 2, 2), img.at(0, 2, 2));
}

TEST(Image, ToGrayUsesLumaWeights) {
  Image img(1, 1, 3);
  img.at(0, 0, 0) = 1.0F;
  img.at(1, 0, 0) = 0.0F;
  img.at(2, 0, 0) = 0.0F;
  EXPECT_NEAR(img.to_gray().at(0, 0, 0), 0.299F, 1e-5F);
}

TEST(IoPnm, ColorRoundTrip) {
  util::Pcg32 rng(5);
  Image img(20, 13, 3);
  for (auto& v : img.data()) v = rng.next_float();
  img.quantize8();
  const std::string path = testing::TempDir() + "easz_io_test.ppm";
  write_pnm(img, path);
  const Image restored = read_pnm(path);
  EXPECT_TRUE(restored.approx_equal(img, 1e-6F));
  std::remove(path.c_str());
}

TEST(IoPnm, GrayRoundTrip) {
  Image img = make_gradient(9, 7, 1);
  img.quantize8();
  const std::string path = testing::TempDir() + "easz_io_test.pgm";
  write_pnm(img, path);
  const Image restored = read_pnm(path);
  EXPECT_EQ(restored.channels(), 1);
  EXPECT_TRUE(restored.approx_equal(img, 1e-6F));
  std::remove(path.c_str());
}

TEST(IoPnm, MissingFileThrows) {
  EXPECT_THROW(read_pnm("/nonexistent/easz.ppm"), std::runtime_error);
}

TEST(Color, YcbcrRoundTripIsNearLossless) {
  util::Pcg32 rng(7);
  Image img(32, 32, 3);
  for (auto& v : img.data()) v = rng.next_float();
  const Image back = ycbcr_to_rgb(rgb_to_ycbcr(img));
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    EXPECT_NEAR(back.data()[i], img.data()[i], 2e-3F);
  }
}

TEST(Color, GrayImagePassesThrough) {
  Image img = make_gradient(8, 8, 1);
  EXPECT_TRUE(rgb_to_ycbcr(img).approx_equal(img));
}

TEST(Color, NeutralGrayHasCenteredChroma) {
  Image img(4, 4, 3);
  for (auto& v : img.data()) v = 0.5F;
  const Image ycc = rgb_to_ycbcr(img);
  EXPECT_NEAR(ycc.at(1, 2, 2), 0.5F, 1e-5F);
  EXPECT_NEAR(ycc.at(2, 2, 2), 0.5F, 1e-5F);
}

TEST(Color, DownUpSampleRecoversSmoothPlane) {
  Image plane(32, 32, 1);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      plane.at(0, y, x) = 0.5F + 0.3F * std::sin(x * 0.2F) * std::cos(y * 0.15F);
    }
  }
  const Image down = downsample2x(plane);
  EXPECT_EQ(down.width(), 16);
  const Image up = upsample2x(down, 32, 32);
  double err = 0.0;
  for (std::size_t i = 0; i < plane.data().size(); ++i) {
    err += std::abs(plane.data()[i] - up.data()[i]);
  }
  EXPECT_LT(err / plane.data().size(), 0.01);
}

TEST(Resize, IdentityWhenSameSize) {
  Image img = make_gradient(16, 12, 3);
  const Image same = resize(img, 16, 12, Filter::kBilinear);
  EXPECT_TRUE(same.approx_equal(img, 1e-4F));
}

TEST(Resize, DownUpRoundTripPreservesSmoothContent) {
  util::Pcg32 rng(9);
  const Image img = data::value_noise(64, 64, 32, 2, rng);
  for (const Filter f : {Filter::kBilinear, Filter::kBicubic}) {
    const Image down = resize(img, 32, 32, f);
    const Image up = resize(down, 64, 64, f);
    double err = 0.0;
    for (std::size_t i = 0; i < img.data().size(); ++i) {
      err += std::abs(img.data()[i] - up.data()[i]);
    }
    EXPECT_LT(err / img.data().size(), 0.02) << "filter " << static_cast<int>(f);
  }
}

TEST(Resize, BicubicBeatsBilinearOnBandlimitedContent) {
  // Smooth sinusoid below the post-decimation Nyquist rate: bicubic's
  // higher-order kernel reconstructs it more faithfully than bilinear.
  Image img(64, 64, 1);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      img.at(0, y, x) =
          0.5F + 0.4F * std::sin(0.35F * x) * std::cos(0.3F * y);
    }
  }
  double err_bl = 0.0;
  double err_bc = 0.0;
  const Image down_bl = resize(img, 32, 32, Filter::kBilinear);
  const Image up_bl = resize(down_bl, 64, 64, Filter::kBilinear);
  const Image down_bc = resize(img, 32, 32, Filter::kBicubic);
  const Image up_bc = resize(down_bc, 64, 64, Filter::kBicubic);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    err_bl += std::abs(img.data()[i] - up_bl.data()[i]);
    err_bc += std::abs(img.data()[i] - up_bc.data()[i]);
  }
  EXPECT_LT(err_bc, err_bl);
}

TEST(Resize, RejectsNonPositiveTargets) {
  Image img(4, 4, 1);
  EXPECT_THROW(resize(img, 0, 4), std::invalid_argument);
}

TEST(Patches, BlockGridCoversImage) {
  const BlockGrid g = block_grid(65, 33, 16);
  EXPECT_EQ(g.cols, 5);
  EXPECT_EQ(g.rows, 3);
}

TEST(Patches, SplitAssembleRoundTrip) {
  Image img = make_gradient(48, 32, 3);
  const auto blocks = split_into_blocks(img, 16);
  EXPECT_EQ(blocks.size(), 6U);
  const Image restored = assemble_from_blocks(blocks, 48, 32, 3, 16);
  EXPECT_TRUE(restored.approx_equal(img, 1e-6F));
}

TEST(Patches, SplitAssembleRoundTripNonDivisible) {
  Image img = make_gradient(50, 35, 1);
  const auto blocks = split_into_blocks(img, 16);
  const Image restored = assemble_from_blocks(blocks, 50, 35, 1, 16);
  EXPECT_TRUE(restored.approx_equal(img, 1e-6F));
}

TEST(Patches, AssembleRejectsWrongBlockCount) {
  Image img = make_gradient(32, 32, 1);
  auto blocks = split_into_blocks(img, 16);
  blocks.pop_back();
  EXPECT_THROW(assemble_from_blocks(blocks, 32, 32, 1, 16),
               std::invalid_argument);
}

}  // namespace
}  // namespace easz::image
