#include <gtest/gtest.h>

#include <cmath>

#include "codec/jpeg_like.hpp"
#include "data/synth.hpp"
#include "image/resize.hpp"
#include "metrics/distortion.hpp"
#include "metrics/noref.hpp"
#include "metrics/nss.hpp"
#include "util/prng.hpp"

namespace easz::metrics {
namespace {

image::Image add_noise(const image::Image& img, float sigma,
                       std::uint64_t seed) {
  util::Pcg32 rng(seed);
  image::Image out = img;
  for (auto& v : out.data()) {
    v = std::clamp(v + sigma * rng.next_gaussian(), 0.0F, 1.0F);
  }
  return out;
}

image::Image blur3(const image::Image& img) {
  image::Image out(img.width(), img.height(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        float acc = 0.0F;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            acc += img.at_clamped(c, y + dy, x + dx);
          }
        }
        out.at(c, y, x) = acc / 9.0F;
      }
    }
  }
  return out;
}

TEST(Distortion, MseZeroForIdentical) {
  util::Pcg32 rng(1);
  const image::Image img = data::synth_photo(64, 64, rng);
  EXPECT_DOUBLE_EQ(mse(img, img), 0.0);
  EXPECT_DOUBLE_EQ(psnr(img, img), 99.0);
}

TEST(Distortion, MseMatchesHandComputation) {
  image::Image a(2, 1, 1);
  image::Image b(2, 1, 1);
  a.at(0, 0, 0) = 1.0F;
  b.at(0, 0, 1) = 0.5F;
  // diffs: 1.0 and -0.5 -> (1 + 0.25)/2
  EXPECT_NEAR(mse(a, b), 0.625, 1e-9);
}

TEST(Distortion, PsnrDecreasesWithNoise) {
  util::Pcg32 rng(2);
  const image::Image img = data::synth_photo(96, 64, rng);
  const double p1 = psnr(img, add_noise(img, 0.01F, 3));
  const double p2 = psnr(img, add_noise(img, 0.05F, 4));
  EXPECT_GT(p1, p2);
  EXPECT_GT(p1, 35.0);
}

TEST(Distortion, ShapeMismatchThrows) {
  image::Image a(4, 4, 1);
  image::Image b(4, 5, 1);
  EXPECT_THROW(mse(a, b), std::invalid_argument);
}

TEST(Distortion, SsimOneForIdenticalAndLessForNoisy) {
  util::Pcg32 rng(5);
  const image::Image img = data::synth_photo(96, 64, rng);
  EXPECT_NEAR(ssim(img, img), 1.0, 1e-6);
  const double noisy = ssim(img, add_noise(img, 0.05F, 6));
  EXPECT_LT(noisy, 0.99);
  EXPECT_GT(noisy, 0.2);
}

TEST(Distortion, SsimPenalisesBlurMoreThanBrightnessShift) {
  util::Pcg32 rng(7);
  const image::Image img = data::synth_texture(96, 96, rng);
  image::Image shifted = img;
  for (auto& v : shifted.data()) v = std::clamp(v + 0.03F, 0.0F, 1.0F);
  const double s_shift = ssim(img, shifted);
  const double s_blur = ssim(img, blur3(img));
  EXPECT_GT(s_shift, s_blur);
}

TEST(Distortion, MsSsimTracksQuality) {
  util::Pcg32 rng(8);
  const image::Image img = data::synth_photo(192, 192, rng);
  EXPECT_NEAR(ms_ssim(img, img), 1.0, 1e-5);
  const double light = ms_ssim(img, add_noise(img, 0.02F, 9));
  const double heavy = ms_ssim(img, add_noise(img, 0.10F, 10));
  EXPECT_GT(light, heavy);
}

TEST(Distortion, MsSsimHandlesSmallImages) {
  util::Pcg32 rng(11);
  const image::Image img = data::synth_photo(48, 48, rng);
  const double v = ms_ssim(img, add_noise(img, 0.03F, 12));
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(Ggd, RecoversGaussianShape) {
  util::Pcg32 rng(13);
  std::vector<float> samples(20000);
  for (auto& v : samples) v = rng.next_gaussian() * 0.7F;
  const GgdFit fit = fit_ggd(samples);
  EXPECT_NEAR(fit.alpha, 2.0, 0.15);
  EXPECT_NEAR(fit.sigma, 0.7, 0.02);
}

TEST(Ggd, DetectsHeavyTails) {
  // Laplacian samples (alpha=1): inverse-CDF sampling.
  util::Pcg32 rng(14);
  std::vector<float> samples(20000);
  for (auto& v : samples) {
    const float u = rng.next_float() - 0.5F;
    v = -std::copysign(std::log(1.0F - 2.0F * std::fabs(u) + 1e-9F), u);
  }
  const GgdFit fit = fit_ggd(samples);
  EXPECT_NEAR(fit.alpha, 1.0, 0.15);
}

TEST(Aggd, SymmetricInputGivesZeroMean) {
  util::Pcg32 rng(15);
  std::vector<float> samples(20000);
  for (auto& v : samples) v = rng.next_gaussian();
  const AggdFit fit = fit_aggd(samples);
  EXPECT_NEAR(fit.mean, 0.0, 0.05);
  EXPECT_NEAR(fit.sigma_l, fit.sigma_r, 0.05);
}

TEST(Aggd, AsymmetryShowsInScales) {
  util::Pcg32 rng(16);
  std::vector<float> samples(20000);
  for (auto& v : samples) {
    const float g = rng.next_gaussian();
    v = g > 0.0F ? g * 2.0F : g * 0.5F;  // right-heavy
  }
  const AggdFit fit = fit_aggd(samples);
  EXPECT_GT(fit.sigma_r, fit.sigma_l * 1.5);
  EXPECT_GT(fit.mean, 0.0);
}

TEST(Mscn, NaturalImageCoefficientsNearUnitVariance) {
  util::Pcg32 rng(17);
  const image::Image img = data::synth_photo(128, 128, rng).to_gray();
  const image::Image m = mscn(img);
  double var = 0.0;
  for (const float v : m.data()) var += static_cast<double>(v) * v;
  var /= static_cast<double>(m.data().size());
  EXPECT_GT(var, 0.1);
  EXPECT_LT(var, 2.5);
}

TEST(Nss, FeatureVectorFiniteAndStable) {
  util::Pcg32 rng(18);
  const image::Image img = data::synth_photo(96, 96, rng);
  const NssFeatures f1 = nss_features(img);
  const NssFeatures f2 = nss_features(img);
  for (int k = 0; k < kNssFeatureCount; ++k) {
    EXPECT_TRUE(std::isfinite(f1[k]));
    EXPECT_DOUBLE_EQ(f1[k], f2[k]);
  }
}

TEST(Nss, RejectsTinyImages) {
  image::Image img(16, 16, 1);
  EXPECT_THROW(nss_features(img), std::invalid_argument);
}

TEST(Nss, SharpnessDropsUnderBlur) {
  util::Pcg32 rng(19);
  const image::Image img = data::synth_texture(96, 96, rng);
  EXPECT_GT(sharpness(img), sharpness(blur3(img)) * 1.1);
}

TEST(NoRef, CalibrationIsDeterministic) {
  const NoRefCalibration a = NoRefCalibration::from_synthetic_corpus(4, 96, 96);
  const NoRefCalibration b = NoRefCalibration::from_synthetic_corpus(4, 96, 96);
  for (int k = 0; k < kNssFeatureCount; ++k) {
    EXPECT_DOUBLE_EQ(a.mean[k], b.mean[k]);
  }
}

class NoRefMonotonicity : public testing::TestWithParam<int> {};

TEST_P(NoRefMonotonicity, ScoresWorsenWithJpegQualityDrop) {
  // The property every table/figure relies on: harder compression must make
  // brisque/pi worse (higher) and tres worse (lower), on average.
  const int seed = GetParam();
  util::Pcg32 rng(seed);
  const image::Image img = data::synth_photo(160, 128, rng);
  codec::JpegLikeCodec good(90);
  codec::JpegLikeCodec bad(4);
  const image::Image img_good = good.decode(good.encode(img));
  const image::Image img_bad = bad.decode(bad.encode(img));

  EXPECT_LT(brisque_proxy(img_good), brisque_proxy(img_bad));
  EXPECT_LT(pi_proxy(img_good), pi_proxy(img_bad));
  EXPECT_GT(tres_proxy(img_good), tres_proxy(img_bad));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoRefMonotonicity, testing::Values(21, 22, 23));

TEST(NoRef, PristineScoresLandInExpectedBands) {
  util::Pcg32 rng(24);
  const image::Image img = data::synth_photo(160, 128, rng);
  const double b = brisque_proxy(img);
  const double p = pi_proxy(img);
  const double t = tres_proxy(img);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 50.0);
  EXPECT_GT(p, 1.0);
  EXPECT_LT(p, 7.0);
  EXPECT_GT(t, 50.0);
  EXPECT_LE(t, 100.0);
}

TEST(NoRef, NoiseRaisesDeviation) {
  util::Pcg32 rng(25);
  const image::Image img = data::synth_photo(128, 96, rng);
  const auto& cal = NoRefCalibration::standard();
  EXPECT_LT(nss_deviation(img, cal), nss_deviation(add_noise(img, 0.1F, 26), cal));
}

}  // namespace
}  // namespace easz::metrics
