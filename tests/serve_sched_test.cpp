// Deterministic scheduler harness for the multi-tenant serve runtime.
//
// Concurrency invariants are usually stress-sampled; here they are PROVED
// on replayable schedules instead. Two hooks make that possible:
//
//   virtual clock   ServerConfig::sched_clock (and TenantRegistry's clock)
//                   replaces the scheduler's time source, so token-bucket
//                   refill and batch aging advance only when the test says
//                   so;
//   manual stepping workers = 0 starts no threads — the test pumps the
//                   scheduler one action at a time via ReconServer::step(),
//                   observing counters between actions. Every interleaving
//                   is the same interleaving on every run.
//
// On top of those this file proves: WDRR weighted fairness bounds with a
// flooding tenant present, exact admission (rate + quota) rejection
// counts, byte-identical outputs vs sequential decode at 1/4/8 workers,
// sharded-cache byte-accounting exactness under concurrent hammering, and
// per-shard eviction-order determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "data/synth.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "serve/tenant.hpp"
#include "tensor/kernels.hpp"
#include "testbed/loadgen.hpp"
#include "util/prng.hpp"

namespace easz::serve {
namespace {

core::ReconModelConfig tiny_model_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

image::Image test_image(int w, int h, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  return data::synth_photo(w, h, rng);
}

// Time that moves only when the test moves it.
struct VirtualClock {
  double t = 0.0;
  [[nodiscard]] ClockFn fn() {
    return [this] { return t; };
  }
};

struct SchedFixture {
  util::Pcg32 rng{91};
  core::ReconstructionModel model{tiny_model_config(), rng};
  codec::JpegLikeCodec jpeg{85};
  VirtualClock clock;

  /// Manual scheduling mode: no worker threads, every deposit batch-ready
  /// immediately, no cache, shed-don't-block — the deterministic baseline.
  ServerConfig manual_config() {
    ServerConfig cfg;
    cfg.workers = 0;
    cfg.max_queue = 1024;
    cfg.max_batch_wait_s = 0.0;
    cfg.cache_bytes = 0;
    cfg.backpressure = BackpressurePolicy::kReject;
    cfg.sched_clock = clock.fn();
    return cfg;
  }

  core::EaszConfig edge_config(int erased, core::SqueezeAxis axis,
                               std::uint64_t mask_seed) {
    core::EaszConfig cfg;
    cfg.patchify = tiny_model_config().patchify;
    cfg.erased_per_row = erased;
    cfg.axis = axis;
    cfg.mask_seed = mask_seed;
    return cfg;
  }

  ServeRequest make_request(const image::Image& img, const std::string& tenant,
                            int erased = 1,
                            core::SqueezeAxis axis = core::SqueezeAxis::kHorizontal,
                            std::uint64_t mask_seed = 7) {
    const core::EaszPipeline edge(edge_config(erased, axis, mask_seed), jpeg,
                                  nullptr);
    ServeRequest r;
    r.compressed = edge.encode(img);
    r.codec = "jpeg";
    r.tenant = tenant;
    return r;
  }

  image::Image sequential_decode(const ServeRequest& r,
                                 nn::Precision precision =
                                     nn::Precision::kFp32) {
    const core::EaszPipeline server_pipeline(
        edge_config(r.compressed.erased_per_row, r.compressed.axis, 7), jpeg,
        &model);
    return server_pipeline.decode(r.compressed, precision);
  }

  /// Post-training-quantizes the fixture model on decode-path samples (the
  /// activation distribution serving actually sees).
  void quantize_model() {
    std::vector<core::ReconstructionModel::CalibSample> samples;
    for (int i = 0; i < 3; ++i) {
      const image::Image img = test_image(40 + 8 * i, 24 + 8 * i, 600 + i);
      const core::EaszPipeline edge(
          edge_config(1 + i % 2, core::SqueezeAxis::kHorizontal, 7), jpeg,
          nullptr);
      const core::EaszPipeline server_pipeline(
          edge_config(1 + i % 2, core::SqueezeAxis::kHorizontal, 7), jpeg,
          &model);
      const core::DecodedTokens d =
          server_pipeline.decode_tokens(edge.encode(img));
      samples.push_back({d.tokens, d.recon_mask});
    }
    model.calibrate_and_quantize(samples);
  }
};

// By value: callers often pass a temporary snapshot (`server.stats()`).
TenantStatsSnapshot tenant_row(const ServerStatsSnapshot& s,
                               const std::string& name) {
  for (const TenantStatsSnapshot& t : s.tenants) {
    if (t.name == name) return t;
  }
  throw std::runtime_error("no tenant row: " + name);
}

// ------------------------------------------------- tenant registry (unit)

TEST(TenantRegistryTest, TokenBucketRefillsOnVirtualClock) {
  VirtualClock clock;
  TenantRegistry reg(clock.fn());
  reg.add({.name = "cam", .weight = 1, .rate_per_s = 2.0, .burst = 2.0,
           .max_inflight = 0});

  // The bucket primes at burst: two immediate admits, then dry.
  EXPECT_EQ(reg.try_admit("cam"), Admission::kAdmitted);
  EXPECT_EQ(reg.try_admit("cam"), Admission::kAdmitted);
  EXPECT_EQ(reg.try_admit("cam"), Admission::kRateLimited);

  clock.t = 0.5;  // 0.5 s * 2 tokens/s = exactly one token back
  EXPECT_EQ(reg.try_admit("cam"), Admission::kAdmitted);
  EXPECT_EQ(reg.try_admit("cam"), Admission::kRateLimited);

  clock.t = 10.0;  // long idle refills to burst, never beyond
  EXPECT_EQ(reg.try_admit("cam"), Admission::kAdmitted);
  EXPECT_EQ(reg.try_admit("cam"), Admission::kAdmitted);
  EXPECT_EQ(reg.try_admit("cam"), Admission::kRateLimited);

  const auto snap = reg.snapshot();
  bool found = false;
  for (const auto& t : snap) {
    if (t.name != "cam") continue;
    found = true;
    EXPECT_EQ(t.admitted, 5U);
    EXPECT_EQ(t.rate_limited, 3U);
    EXPECT_EQ(t.quota_rejected, 0U);
  }
  EXPECT_TRUE(found);
}

TEST(TenantRegistryTest, InflightQuotaHoldsUntilRelease) {
  TenantRegistry reg;
  reg.add({.name = "q", .weight = 1, .rate_per_s = 0.0, .burst = 0.0,
           .max_inflight = 2});
  EXPECT_EQ(reg.try_admit("q"), Admission::kAdmitted);
  EXPECT_EQ(reg.try_admit("q"), Admission::kAdmitted);
  EXPECT_EQ(reg.try_admit("q"), Admission::kQuotaExceeded);
  reg.release("q");
  EXPECT_EQ(reg.try_admit("q"), Admission::kAdmitted);
}

TEST(TenantRegistryTest, UnknownNamesResolveToDefault) {
  TenantRegistry reg;
  EXPECT_EQ(reg.resolve(""), TenantRegistry::kDefaultTenant);
  EXPECT_EQ(reg.resolve("nobody"), TenantRegistry::kDefaultTenant);
  reg.add({.name = "somebody", .weight = 2});
  EXPECT_EQ(reg.resolve("somebody"), "somebody");
  EXPECT_EQ(reg.weight("somebody"), 2);
  EXPECT_THROW(reg.add({.name = "", .weight = 1}), std::invalid_argument);
  EXPECT_THROW(reg.add({.name = "w", .weight = 0}), std::invalid_argument);
}

// ------------------------------------------------ deterministic scheduling

// The acceptance invariant: a 3:1-weighted tenant pair splits throughput
// 3:1 (within ±20%) even while a flooding third tenant keeps a huge
// backlog queued. Under the old FIFO the flood — submitted FIRST — would
// have been served to completion before either paying tenant saw a worker.
TEST(ServeSchedTest, WeightedFairnessHoldsUnderFloodingTenant) {
  SchedFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {
      TenantConfig{.name = "flood", .weight = 1},
      TenantConfig{.name = "wildlife", .weight = 3},
      TenantConfig{.name = "industrial", .weight = 1},
  };
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  // Flood first: 60 requests deep before the paying tenants submit one.
  std::vector<std::future<ServeResponse>> flood_futures;
  for (int i = 0; i < 60; ++i) {
    SubmitResult r = server.submit(fx.make_request(
        test_image(32, 32, 9000 + i), "flood", 1,
        core::SqueezeAxis::kHorizontal, /*mask_seed=*/101));
    ASSERT_TRUE(r.accepted);
    flood_futures.push_back(std::move(r.response));
  }
  std::vector<ServeRequest> wildlife, industrial;
  std::vector<std::future<ServeResponse>> w_futures, i_futures;
  for (int i = 0; i < 24; ++i) {
    wildlife.push_back(fx.make_request(test_image(32, 32, 100 + i), "wildlife",
                                       1, core::SqueezeAxis::kHorizontal,
                                       /*mask_seed=*/102));
    SubmitResult r = server.submit(wildlife.back());
    ASSERT_TRUE(r.accepted);
    w_futures.push_back(std::move(r.response));
  }
  for (int i = 0; i < 8; ++i) {
    industrial.push_back(fx.make_request(test_image(32, 32, 200 + i),
                                         "industrial", 1,
                                         core::SqueezeAxis::kVertical,
                                         /*mask_seed=*/103));
    SubmitResult r = server.submit(industrial.back());
    ASSERT_TRUE(r.accepted);
    i_futures.push_back(std::move(r.response));
  }

  // Pump the scheduler one action at a time; at the checkpoint where 25
  // requests have completed, WDRR must have split them 5 flood : 15
  // wildlife : 5 industrial — the exact weight ratio, reproducibly.
  bool checked = false;
  while (server.step()) {
    const ServerStatsSnapshot s = server.stats();
    if (!checked && s.completed == 25) {
      checked = true;
      const std::uint64_t w_done = tenant_row(s, "wildlife").completed;
      const std::uint64_t i_done = tenant_row(s, "industrial").completed;
      const std::uint64_t f_done = tenant_row(s, "flood").completed;
      // Deterministic schedule: the counts are exact, not just bounded.
      EXPECT_EQ(w_done, 15U);
      EXPECT_EQ(i_done, 5U);
      EXPECT_EQ(f_done, 5U);
      // The acceptance bound: 3:1 within ±20%.
      const double ratio =
          static_cast<double>(w_done) / static_cast<double>(i_done);
      EXPECT_GE(ratio, 3.0 * 0.8);
      EXPECT_LE(ratio, 3.0 * 1.2);
      // The flood is contained to its weight share, not starved: it is
      // still completing requests at 1/5 of service.
      EXPECT_GT(f_done, 0U);
    }
  }
  EXPECT_TRUE(checked);

  // Everyone drains eventually — containment, not starvation.
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, 92U);
  EXPECT_EQ(s.failed, 0U);

  // Priority scheduling must not change a single byte: every response is
  // identical to the sequential single-thread decode.
  for (std::size_t i = 0; i < wildlife.size(); ++i) {
    EXPECT_EQ(w_futures[i].get().image->data(),
              fx.sequential_decode(wildlife[i]).data());
  }
  for (std::size_t i = 0; i < industrial.size(); ++i) {
    EXPECT_EQ(i_futures[i].get().image->data(),
              fx.sequential_decode(industrial[i]).data());
  }
}

TEST(ServeSchedTest, QuotaRejectionCountsAreExact) {
  SchedFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {TenantConfig{.name = "edge", .weight = 1, .rate_per_s = 0.0,
                              .burst = 0.0, .max_inflight = 2}};
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  std::vector<std::future<ServeResponse>> futures;
  std::vector<SubmitStatus> statuses;
  for (int i = 0; i < 5; ++i) {
    SubmitResult r =
        server.submit(fx.make_request(test_image(32, 32, 300 + i), "edge"));
    statuses.push_back(r.status);
    if (r.accepted) futures.push_back(std::move(r.response));
  }
  ASSERT_EQ(futures.size(), 2U);  // quota admits exactly max_inflight
  EXPECT_EQ(statuses[0], SubmitStatus::kAccepted);
  EXPECT_EQ(statuses[1], SubmitStatus::kAccepted);
  EXPECT_EQ(statuses[2], SubmitStatus::kQuotaExceeded);
  EXPECT_EQ(statuses[3], SubmitStatus::kQuotaExceeded);
  EXPECT_EQ(statuses[4], SubmitStatus::kQuotaExceeded);

  {
    const ServerStatsSnapshot s = server.stats();
    const TenantStatsSnapshot& t = tenant_row(s, "edge");
    EXPECT_EQ(t.shed_quota, 3U);
    EXPECT_EQ(t.admitted, 2U);
    EXPECT_EQ(t.inflight, 2);
    EXPECT_EQ(s.rejected, 3U);
  }

  server.drain();  // manual mode: drain pumps step()
  for (auto& f : futures) EXPECT_NO_THROW(f.get());

  // Completion released the quota slots: the tenant can submit again.
  SubmitResult again =
      server.submit(fx.make_request(test_image(32, 32, 399), "edge"));
  EXPECT_EQ(again.status, SubmitStatus::kAccepted);
  server.drain();
  EXPECT_EQ(tenant_row(server.stats(), "edge").inflight, 0);
}

TEST(ServeSchedTest, RateLimitShedsExactlyAndRefillsOnVirtualClock) {
  SchedFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {TenantConfig{.name = "burst", .weight = 1,
                              .rate_per_s = 10.0, .burst = 4.0}};
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  int accepted = 0, rate_limited = 0;
  for (int i = 0; i < 50; ++i) {
    const SubmitStatus st = server
                                .submit(fx.make_request(
                                    test_image(32, 32, 400 + i), "burst"))
                                .status;
    if (st == SubmitStatus::kAccepted) ++accepted;
    if (st == SubmitStatus::kRateLimited) ++rate_limited;
  }
  // Frozen virtual clock: exactly the burst allowance is admitted.
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rate_limited, 46);

  fx.clock.t = 0.1;  // 0.1 s * 10/s = one token
  EXPECT_EQ(server.submit(fx.make_request(test_image(32, 32, 460), "burst"))
                .status,
            SubmitStatus::kAccepted);
  EXPECT_EQ(server.submit(fx.make_request(test_image(32, 32, 461), "burst"))
                .status,
            SubmitStatus::kRateLimited);

  server.drain();
  const TenantStatsSnapshot& t = tenant_row(server.stats(), "burst");
  EXPECT_EQ(t.shed_rate_limited, 47U);
  EXPECT_EQ(t.completed, 5U);  // every admitted request was served
  EXPECT_EQ(t.failed, 0U);
}

TEST(ServeSchedTest, QueueFullShedRefundsTheAdmissionToken) {
  SchedFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.max_queue = 1;
  cfg.tenants = {TenantConfig{.name = "cap", .weight = 1, .rate_per_s = 10.0,
                              .burst = 2.0}};
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  SubmitResult first =
      server.submit(fx.make_request(test_image(32, 32, 970), "cap"));
  ASSERT_EQ(first.status, SubmitStatus::kAccepted);  // occupies the slot

  // With the queue full, every shed must report kQueueFull and refund its
  // token — the bucket (burst 2) must NOT drain on requests that did no
  // work, which would misreport later sheds as kRateLimited.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(server.submit(fx.make_request(test_image(32, 32, 971 + i),
                                            "cap"))
                  .status,
              SubmitStatus::kQueueFull);
  }
  {
    const TenantStatsSnapshot t = tenant_row(server.stats(), "cap");
    EXPECT_EQ(t.shed_queue_full, 5U);
    EXPECT_EQ(t.shed_rate_limited, 0U);
    EXPECT_EQ(t.admitted, 1U);  // cancelled admissions are not counted
  }

  server.drain();
  EXPECT_NO_THROW(first.response.get());
  // The refunded token is still there on the frozen clock.
  EXPECT_EQ(server.submit(fx.make_request(test_image(32, 32, 980), "cap"))
                .status,
            SubmitStatus::kAccepted);
  server.drain();
}

TEST(ServeSchedTest, AgeTriggerFiresOnVirtualClockAdvance) {
  SchedFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.max_batch_wait_s = 5.0;       // virtual seconds
  cfg.max_batch_patches = 100000;   // only age/flush can launch a batch
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  // Three requests in three distinct mask groups keep the queue non-empty
  // (so the flush condition stays false) while the first group ages.
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    SubmitResult r = server.submit(
        fx.make_request(test_image(32, 32, 500 + i), "", 1,
                        core::SqueezeAxis::kHorizontal,
                        /*mask_seed=*/600 + i));
    ASSERT_TRUE(r.accepted);
    futures.push_back(std::move(r.response));
  }

  ASSERT_TRUE(server.step());  // decodes request 0; group parked, age 0
  EXPECT_EQ(server.stats().completed, 0U);
  EXPECT_EQ(server.stats().queue_depth, 2);

  // Frozen clock: the group is under-full and young, so the next step
  // must DECODE (queue drops), not batch.
  ASSERT_TRUE(server.step());
  EXPECT_EQ(server.stats().queue_depth, 1);
  EXPECT_EQ(server.stats().completed, 0U);

  // Advance past the linger window: the next step must LAUNCH the aged
  // group's forward (a batch appears) even though the queue is non-empty.
  // Under the staged pipeline the forward does NOT complete the request —
  // it parks it on the assemble ring for the next stage action.
  fx.clock.t = 5.1;
  EXPECT_EQ(server.step_stage(), StageAction::kForward);
  EXPECT_EQ(server.stats().queue_depth, 1);  // no decode happened
  EXPECT_EQ(server.stats().completed, 0U);
  EXPECT_EQ(server.stats().batches, 1U);

  // The very next step must be the assemble stage (it outranks decode in
  // the manual order), and only now does the completion appear.
  EXPECT_EQ(server.step_stage(), StageAction::kAssemble);
  EXPECT_EQ(server.stats().queue_depth, 1);
  EXPECT_EQ(server.stats().completed, 1U);

  server.drain();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ServeSchedTest, StepRequiresManualModeAndDrainsToIdle) {
  SchedFixture fx;
  ServerConfig threaded;
  threaded.workers = 2;
  ReconServer server(threaded, fx.model);
  EXPECT_THROW(server.step(), std::logic_error);

  ServerConfig manual = fx.manual_config();
  ReconServer stepped(manual, fx.model);
  stepped.register_codec("jpeg", &fx.jpeg);
  EXPECT_FALSE(stepped.step());  // nothing to do on an idle server
  ASSERT_TRUE(
      stepped.submit(fx.make_request(test_image(32, 32, 700), "")).accepted);
  int steps = 0;
  while (stepped.step()) ++steps;
  EXPECT_GE(steps, 3);  // at least one decode + one forward + one assemble
  EXPECT_EQ(stepped.stats().completed, 1U);
  EXPECT_EQ(stepped.stats().queue_depth, 0);
}

// ---------------------------------------------- staged pipeline, scripted

// One pipeline-stage action per step(), in a replayable order: the same
// submit sequence on a frozen clock yields the exact same stage-action
// trajectory on every run, the trajectory shows the staged shape (all
// decodes, then forward/assemble alternating — assemble outranks decode in
// the manual order), and the outputs stay byte-identical to sequential
// decode at every pipeline depth.
TEST(ServeSchedTest, PipelineStepTrajectoryIsReplayableAndStaged) {
  SchedFixture fx;
  constexpr int kRequests = 3;
  std::vector<ServeRequest> requests;
  std::vector<image::Image> expected;
  for (int i = 0; i < kRequests; ++i) {
    // Three distinct mask groups: each request is its own batch, so the
    // trajectory exercises three full forward+assemble rounds.
    ServeRequest r =
        fx.make_request(test_image(32, 32, 300 + i), "", 1,
                        core::SqueezeAxis::kHorizontal, /*mask_seed=*/70 + i);
    expected.push_back(fx.sequential_decode(r));
    requests.push_back(std::move(r));
  }

  auto run = [&](int depth) {
    ServerConfig cfg = fx.manual_config();
    cfg.pipeline_depth = depth;
    // Linger window + frozen clock: deposits park until the queue drains,
    // so the trajectory's decode and forward phases separate cleanly.
    cfg.max_batch_wait_s = 100.0;
    cfg.max_batch_patches = 1 << 20;
    ReconServer server(cfg, fx.model);
    server.register_codec("jpeg", &fx.jpeg);
    std::vector<std::future<ServeResponse>> futures;
    for (const ServeRequest& r : requests) {
      SubmitResult res = server.submit(r);
      EXPECT_TRUE(res.accepted);
      futures.push_back(std::move(res.response));
    }
    std::vector<StageAction> trajectory;
    std::uint64_t completed_before = 0;
    for (;;) {
      const StageAction action = server.step_stage();
      if (action == StageAction::kIdle) break;
      trajectory.push_back(action);
      // Exactly-one-action-per-call: a completion can only appear across a
      // step that ran the assemble stage, and then exactly one.
      const std::uint64_t completed = server.stats().completed;
      if (action == StageAction::kAssemble) {
        EXPECT_EQ(completed, completed_before + 1);
      } else {
        EXPECT_EQ(completed, completed_before);
      }
      completed_before = completed;
    }
    std::vector<image::Image> images;
    for (auto& f : futures) images.push_back(*f.get().image);
    const ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.stage_actions_decode, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(s.stage_actions_forward, s.batches);
    EXPECT_EQ(s.stage_actions_assemble, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(s.pipeline_depth, depth);
    return std::make_pair(trajectory, images);
  };

  for (const int depth : {1, 2, 3}) {
    const auto [trajectory, images] = run(depth);
    // Scripted shape: the flush condition holds back every batch until the
    // queue is empty, so the trajectory is 3 decodes, then alternating
    // forward/assemble (assemble preferred the moment the ring is
    // non-empty) — at EVERY depth, because the manual order drains the
    // ring before launching the next forward.
    const std::vector<StageAction> want = {
        StageAction::kDecode,   StageAction::kDecode, StageAction::kDecode,
        StageAction::kForward,  StageAction::kAssemble,
        StageAction::kForward,  StageAction::kAssemble,
        StageAction::kForward,  StageAction::kAssemble};
    EXPECT_EQ(trajectory, want) << "depth=" << depth;
    // Replay: the identical submit sequence yields the identical
    // trajectory AND identical bytes.
    const auto [replayed, replay_images] = run(depth);
    EXPECT_EQ(replayed, trajectory) << "depth=" << depth;
    for (int i = 0; i < kRequests; ++i) {
      EXPECT_EQ(images[i].data(), expected[i].data())
          << "depth=" << depth << " request " << i;
      EXPECT_EQ(replay_images[i].data(), expected[i].data())
          << "depth=" << depth << " request " << i;
    }
  }
}

// ----------------------------------------------- byte-identity, threaded

// The core serving contract survives the scheduler upgrade: under priority
// scheduling + cache sharding, at ANY worker count, outputs are
// byte-identical to the sequential single-thread decode.
TEST(ServeSchedTest, ByteIdenticalToSequentialDecodeAt148Workers) {
  SchedFixture fx;
  constexpr int kRequests = 18;

  std::vector<ServeRequest> requests;
  std::vector<image::Image> expected;
  const char* tenant_names[3] = {"wildlife", "industrial", "bulk"};
  for (int i = 0; i < kRequests; ++i) {
    const auto axis = i % 2 == 0 ? core::SqueezeAxis::kHorizontal
                                 : core::SqueezeAxis::kVertical;
    const image::Image img =
        test_image(33 + 7 * (i % 5), 17 + 11 * (i % 3), 800 + i);
    ServeRequest r = fx.make_request(img, tenant_names[i % 3], 1 + i % 3, axis,
                                     /*mask_seed=*/40 + i % 2);
    expected.push_back(fx.sequential_decode(r));
    requests.push_back(std::move(r));
  }

  // Every (worker count x pipeline depth) combination must reproduce the
  // sequential bytes: the staged pipeline reorders WHEN stages run, never
  // WHAT they compute. Depth 1 runs the stages near-lockstep (a forward
  // waits on the previous batch's assembly), depth 3 lets three windows
  // overlap — same bytes either way.
  for (const int workers : {1, 4, 8}) {
    for (const int depth : {1, 2, 3}) {
      ServerConfig cfg;
      cfg.workers = workers;
      cfg.pipeline_depth = depth;
      cfg.max_queue = 64;
      cfg.max_batch_patches = 8;  // force cross-request batches
      cfg.cache_bytes = 1ULL << 20;
      cfg.cache_shards = 4;
      cfg.tenants = {TenantConfig{.name = "wildlife", .weight = 3},
                     TenantConfig{.name = "industrial", .weight = 1},
                     TenantConfig{.name = "bulk", .weight = 2}};
      ReconServer server(cfg, fx.model);
      server.register_codec("jpeg", &fx.jpeg);

      std::vector<std::future<ServeResponse>> futures;
      for (const ServeRequest& r : requests) {
        SubmitResult res = server.submit(r);
        ASSERT_TRUE(res.accepted);
        futures.push_back(std::move(res.response));
      }
      for (int i = 0; i < kRequests; ++i) {
        const ServeResponse resp = futures[i].get();
        ASSERT_NE(resp.image, nullptr);
        EXPECT_EQ(resp.image->data(), expected[i].data())
            << "workers=" << workers << " depth=" << depth << " request "
            << i;
      }

      // Second pass rides the sharded cache and must stay byte-identical.
      for (int i = 0; i < kRequests; ++i) {
        const ServeResponse resp = server.submit(requests[i]).response.get();
        EXPECT_TRUE(resp.cache_hit);
        EXPECT_EQ(resp.image->data(), expected[i].data());
      }
      const ServerStatsSnapshot s = server.stats();
      EXPECT_EQ(s.failed, 0U);
      EXPECT_GE(s.cache_hits, static_cast<std::uint64_t>(kRequests));
      // Every request went through exactly one assemble-stage action.
      EXPECT_EQ(s.stage_actions_assemble,
                static_cast<std::uint64_t>(kRequests));
    }
  }
}

// LLC shaping and worker pinning are pure performance knobs: shaped batch
// sizes are a deterministic function of the configured LLC size, and
// neither knob may change a single output byte.
TEST(ServeSchedTest, LlcShapingAndPinningPreserveBytes) {
  SchedFixture fx;
  constexpr int kRequests = 6;
  std::vector<ServeRequest> requests;
  std::vector<image::Image> expected;
  for (int i = 0; i < kRequests; ++i) {
    ServeRequest r = fx.make_request(test_image(40, 28, 910 + i), "");
    expected.push_back(fx.sequential_decode(r));
    requests.push_back(std::move(r));
  }

  int shaped_before = 0;
  for (int pass = 0; pass < 2; ++pass) {
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.pin_workers = true;  // graceful no-op where unsupported
    cfg.shape_batches_to_llc = true;
    cfg.llc_bytes = 2ULL << 20;  // configured, not detected: deterministic
    cfg.max_batch_patches = 64;
    cfg.cache_bytes = 0;
    ReconServer server(cfg, fx.model);
    server.register_codec("jpeg", &fx.jpeg);

    const int shaped = server.shaped_batch_patches(nn::Precision::kFp32);
    EXPECT_GE(shaped, 1);
    EXPECT_LE(shaped, 64);
    if (pass == 0) {
      shaped_before = shaped;
    } else {
      EXPECT_EQ(shaped, shaped_before) << "shaping must be deterministic";
    }
    EXPECT_EQ(server.llc_budget_bytes(), 2ULL << 20);

    std::vector<std::future<ServeResponse>> futures;
    for (const ServeRequest& r : requests) {
      SubmitResult res = server.submit(r);
      ASSERT_TRUE(res.accepted);
      futures.push_back(std::move(res.response));
    }
    for (int i = 0; i < kRequests; ++i) {
      const ServeResponse resp = futures[i].get();
      ASSERT_NE(resp.image, nullptr);
      EXPECT_EQ(resp.image->data(), expected[i].data()) << "request " << i;
    }
    EXPECT_EQ(server.stats().shaped_batch_fp32, shaped);
  }
  // Restore the process-global pool to unpinned for later tests.
  tensor::kern::set_pin_threads(false);
}

// ------------------------------------------------------ mixed precision

// Tenants pinning different precisions share one server, one model and —
// crucially — the same erase masks, so without the precision tag in the
// batch-pool key their patches would pool into the same forward pass and
// every output byte would depend on batch-mate precision. The contract:
// each request's bytes equal an INDEPENDENT sequential decode at that
// request's precision, at every worker count, and the cache never serves
// one precision's image for the other.
TEST(ServeSchedTest, MixedPrecisionTenantsStayByteIdenticalPerPrecision) {
  SchedFixture fx;
  fx.quantize_model();
  ASSERT_TRUE(fx.model.is_quantized());

  constexpr int kRequests = 12;
  std::vector<ServeRequest> requests;
  std::vector<image::Image> expected;
  for (int i = 0; i < kRequests; ++i) {
    // hifi pins fp32, fast pins int8, the default tenant inherits the
    // server's kAuto (= int8 on a quantized model). SAME mask seed across
    // tenants: fp32 and int8 requests deliberately share erase masks.
    const char* tenant = i % 3 == 0 ? "hifi" : (i % 3 == 1 ? "fast" : "");
    const nn::Precision precision =
        i % 3 == 0 ? nn::Precision::kFp32 : nn::Precision::kInt8;
    const image::Image img = test_image(33 + 7 * (i % 4), 17 + 9 * (i % 3),
                                        700 + i);
    ServeRequest r = fx.make_request(img, tenant, 1 + i % 2);
    expected.push_back(fx.sequential_decode(r, precision));
    requests.push_back(std::move(r));
  }

  for (const int workers : {1, 4, 8}) {
    ServerConfig cfg;
    cfg.workers = workers;
    cfg.max_queue = 64;
    cfg.max_batch_patches = 8;  // force cross-request pooling pressure
    cfg.cache_bytes = 1ULL << 20;
    cfg.precision = PrecisionPolicy::kAuto;
    cfg.tenants = {
        TenantConfig{.name = "hifi", .precision = TenantPrecision::kFp32},
        TenantConfig{.name = "fast", .precision = TenantPrecision::kInt8},
    };
    ReconServer server(cfg, fx.model);
    server.register_codec("jpeg", &fx.jpeg);

    std::vector<std::future<ServeResponse>> futures;
    for (const ServeRequest& r : requests) {
      SubmitResult res = server.submit(r);
      ASSERT_TRUE(res.accepted);
      futures.push_back(std::move(res.response));
    }
    for (int i = 0; i < kRequests; ++i) {
      const ServeResponse resp = futures[i].get();
      ASSERT_NE(resp.image, nullptr);
      EXPECT_EQ(resp.image->data(), expected[i].data())
          << "workers=" << workers << " request " << i;
    }

    // Same blob through both pinned tenants: different bytes (the int8
    // path genuinely differs), and each comes back cache-consistent on a
    // second pass — the precision lives in the cache key.
    ServeRequest as_hifi = requests[1];  // a "fast" request originally
    as_hifi.tenant = "hifi";
    const ServeResponse hifi_resp = server.submit(as_hifi).response.get();
    const image::Image hifi_ref = fx.sequential_decode(as_hifi);
    EXPECT_EQ(hifi_resp.image->data(), hifi_ref.data());
    EXPECT_NE(hifi_resp.image->data(), expected[1].data())
        << "fp32 and int8 reconstructions of one blob should differ";
    for (int i = 0; i < kRequests; ++i) {
      const ServeResponse resp = server.submit(requests[i]).response.get();
      EXPECT_TRUE(resp.cache_hit);
      EXPECT_EQ(resp.image->data(), expected[i].data())
          << "cached bytes must stay per-precision (request " << i << ")";
    }

    const ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.failed, 0U);
    EXPECT_EQ(s.precision, "int8") << "kAuto on a quantized model";
    EXPECT_GT(s.batches_int8, 0U);
    EXPECT_LT(s.batches_int8, s.batches) << "fp32 batches ran too";
    EXPECT_EQ(tenant_row(s, "hifi").precision, "fp32");
    EXPECT_EQ(tenant_row(s, "fast").precision, "int8");
    EXPECT_EQ(tenant_row(s, "default").precision, "inherit");
  }
}

TEST(ServeSchedTest, Int8PolicyOnUnquantizedModelIsRejectedAtConstruction) {
  util::Pcg32 rng(121);
  core::ReconstructionModel raw(tiny_model_config(), rng);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.precision = PrecisionPolicy::kInt8;
  EXPECT_THROW((ReconServer{cfg, raw}), std::invalid_argument);

  ServerConfig tcfg;
  tcfg.workers = 1;
  tcfg.tenants = {
      TenantConfig{.name = "fast", .precision = TenantPrecision::kInt8}};
  EXPECT_THROW((ReconServer{tcfg, raw}), std::invalid_argument);

  // kAuto degrades to fp32 instead of throwing.
  ServerConfig acfg;
  acfg.workers = 1;
  acfg.precision = PrecisionPolicy::kAuto;
  ReconServer server(acfg, raw);
  EXPECT_EQ(server.stats().precision, "fp32");

  // A RUNTIME-added int8 pin fails at add() time too (configuration-time
  // failure, not a throw out of every later submit).
  EXPECT_THROW(server.tenants().add(TenantConfig{
                   .name = "late", .precision = TenantPrecision::kInt8}),
               std::invalid_argument);
  EXPECT_NO_THROW(server.tenants().add(TenantConfig{
      .name = "late", .precision = TenantPrecision::kFp32}));
}

// --------------------------------------------------------- async submit

TEST(ServeSchedTest, AsyncSubmitDeliversCallbacks) {
  SchedFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.cache_bytes = 1ULL << 20;
  cfg.cache_shards = 2;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  const ServeRequest good = fx.make_request(test_image(48, 32, 900), "");
  const image::Image want = fx.sequential_decode(good);

  std::shared_ptr<const image::Image> got;
  std::exception_ptr got_error;
  int calls = 0;
  ASSERT_EQ(server.submit_async(good,
                                [&](ServeResponse resp, std::exception_ptr e) {
                                  ++calls;
                                  got = resp.image;
                                  got_error = e;
                                }),
            SubmitStatus::kAccepted);
  EXPECT_EQ(calls, 0);  // not yet scheduled: manual mode
  server.drain();
  ASSERT_EQ(calls, 1);
  EXPECT_EQ(got_error, nullptr);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->data(), want.data());

  // Cache hit: the callback fires inline, before submit_async returns.
  calls = 0;
  bool hit = false;
  ASSERT_EQ(server.submit_async(good,
                                [&](ServeResponse resp, std::exception_ptr e) {
                                  ++calls;
                                  hit = resp.cache_hit;
                                  EXPECT_EQ(e, nullptr);
                                }),
            SubmitStatus::kAccepted);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(hit);

  // Failure path: the error lands in the callback, not on a dead future.
  ServeRequest bad = fx.make_request(test_image(48, 32, 901), "");
  bad.codec = "no-such-codec";
  calls = 0;
  ASSERT_EQ(server.submit_async(bad,
                                [&](ServeResponse, std::exception_ptr e) {
                                  ++calls;
                                  EXPECT_NE(e, nullptr);
                                }),
            SubmitStatus::kAccepted);
  server.drain();
  EXPECT_EQ(calls, 1);

  // Shed submits never invoke the callback: the status is the whole story.
  server.tenants().add({.name = "tight", .weight = 1, .rate_per_s = 1.0,
                        .burst = 1.0});
  calls = 0;
  ASSERT_EQ(server.submit_async(  // first request rides the burst token
                fx.make_request(test_image(48, 32, 902), "tight"),
                [&](ServeResponse, std::exception_ptr e) {
                  ++calls;
                  EXPECT_EQ(e, nullptr);
                }),
            SubmitStatus::kAccepted);
  server.drain();
  EXPECT_EQ(calls, 1);
  int shed_calls = 0;
  EXPECT_EQ(server.submit_async(  // bucket dry on the frozen virtual clock
                fx.make_request(test_image(48, 32, 903), "tight"),
                [&](ServeResponse, std::exception_ptr) { ++shed_calls; }),
            SubmitStatus::kRateLimited);
  EXPECT_EQ(shed_calls, 0);
}

// ------------------------------------------------------- sharded cache

std::shared_ptr<const image::Image> make_cached(int w, int h) {
  return std::make_shared<image::Image>(w, h, 3);
}

// Keys that all carry the SAME hash inputs but different payload bytes:
// they collide on shard AND hash bucket, and only full-byte equality
// separates them — the adversarial worst case for accounting.
CacheKey colliding_key(int i) {
  CacheKey k;
  k.payload_hash = 0xDEADBEEFULL;
  k.mask_hash = 0xFEEDULL;
  k.payload_bytes = {static_cast<std::uint8_t>(i & 0xFF),
                     static_cast<std::uint8_t>((i >> 8) & 0xFF)};
  k.codec = "jpeg";
  return k;
}

CacheKey spread_key(int i) {
  CacheKey k;
  k.payload_hash = 0x1234567ULL * static_cast<std::uint64_t>(i + 1);
  k.payload_bytes = {static_cast<std::uint8_t>(i & 0xFF)};
  k.codec = "bpg";
  return k;
}

TEST(ShardedCacheTest, RoutingIsStableAndBudgetSplitsEvenly) {
  ResultCache cache(80 * 1024, 4);
  EXPECT_EQ(cache.shards(), 4);
  EXPECT_EQ(cache.shard_capacity_bytes(), cache.capacity_bytes() / 4);
  for (int i = 0; i < 32; ++i) {
    const CacheKey k = spread_key(i);
    EXPECT_EQ(cache.shard_of(k), cache.shard_of(k));
    EXPECT_GE(cache.shard_of(k), 0);
    EXPECT_LT(cache.shard_of(k), 4);
  }
  // Colliding keys route to one shard by construction.
  const int home = cache.shard_of(colliding_key(0));
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(cache.shard_of(colliding_key(i)), home);
  }
  // An entry bigger than one shard's budget is refused even though it
  // would fit the total.
  cache.put(spread_key(100), make_cached(48, 48));  // 27.6 KB > 20 KB shard
  EXPECT_EQ(cache.get(spread_key(100)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0U);
}

TEST(ShardedCacheTest, ByteAccountingExactUnderConcurrentCollidingTraffic) {
  // Small budget so eviction churns constantly while 4 threads hammer a
  // mix of shard-colliding and spread keys with varying image sizes.
  ResultCache cache(64 * 1024, 4);
  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      util::Pcg32 rng(1000 + static_cast<std::uint64_t>(t));
      for (int op = 0; op < kOps; ++op) {
        const int i = rng.next_int(0, 23);
        const CacheKey key =
            op % 2 == 0 ? colliding_key(i) : spread_key(i);
        if (rng.next_float() < 0.6F) {
          const int side = 8 + 4 * rng.next_int(0, 3);  // 8..20 px
          cache.put(key, make_cached(side, side));
        } else {
          const auto hit = cache.get(key);
          if (hit) {
            EXPECT_GT(hit->sample_count(), 0U);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactness: the incremental byte counters equal a from-scratch audit of
  // every resident entry, and every shard respects its budget.
  const CacheStats total = cache.stats();
  EXPECT_EQ(total.bytes, cache.recompute_bytes());
  std::size_t summed = 0;
  for (int sh = 0; sh < cache.shards(); ++sh) {
    const CacheStats s = cache.shard_stats(sh);
    EXPECT_LE(s.bytes, cache.shard_capacity_bytes()) << "shard " << sh;
    summed += s.bytes;
  }
  EXPECT_EQ(summed, total.bytes);
  EXPECT_GT(total.evictions, 0U);  // the test meant to churn, verify it did
}

TEST(ShardedCacheTest, EvictionOrderIsDeterministicPerShard) {
  // The same operation sequence against two caches must evict the same
  // victims: per-shard LRU has no timing dependence.
  const auto run = [](ResultCache& cache) {
    util::Pcg32 rng(77);
    for (int op = 0; op < 600; ++op) {
      const int i = rng.next_int(0, 15);
      if (rng.next_float() < 0.5F) {
        cache.put(spread_key(i), make_cached(12, 12));
      } else {
        (void)cache.get(spread_key(i));
      }
    }
  };
  ResultCache a(16 * 1024, 4), b(16 * 1024, 4);
  run(a);
  run(b);
  const CacheStats sa = a.stats(), sb = b.stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.evictions, sb.evictions);
  EXPECT_EQ(sa.entries, sb.entries);
  EXPECT_EQ(sa.bytes, sb.bytes);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.get(spread_key(i)) != nullptr, b.get(spread_key(i)) != nullptr)
        << "key " << i;
  }

  // Classic LRU victim-selection check on a single shard, where global
  // order is exact: touching an entry saves it from eviction.
  // Entry cost: 12x12x3 float pixels + the 2-byte payload key charged
  // twice (map key + list entry). Capacity fits exactly two entries.
  ResultCache lru(2 * (12 * 12 * 3 * sizeof(float) + 2 * 2), 1);
  lru.put(colliding_key(1), make_cached(12, 12));
  lru.put(colliding_key(2), make_cached(12, 12));
  EXPECT_NE(lru.get(colliding_key(1)), nullptr);  // 1 becomes most-recent
  lru.put(colliding_key(3), make_cached(12, 12));  // evicts 2
  EXPECT_NE(lru.get(colliding_key(1)), nullptr);
  EXPECT_EQ(lru.get(colliding_key(2)), nullptr);
  EXPECT_NE(lru.get(colliding_key(3)), nullptr);
}

// --------------------------------------------- snapshot / report plumbing

TEST(ServeSchedTest, SnapshotCarriesTenantRowsInTextAndJson) {
  SchedFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {TenantConfig{.name = "wildlife", .weight = 3},
                 TenantConfig{.name = "industrial", .weight = 1}};
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);
  ASSERT_TRUE(
      server.submit(fx.make_request(test_image(32, 32, 950), "wildlife"))
          .accepted);
  server.drain();

  const ServerStatsSnapshot s = server.stats();
  ASSERT_GE(s.tenants.size(), 3U);  // default + wildlife + industrial
  EXPECT_EQ(tenant_row(s, "wildlife").completed, 1U);
  EXPECT_EQ(tenant_row(s, "wildlife").weight, 3);
  EXPECT_EQ(tenant_row(s, "industrial").submitted, 0U);

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"tenants\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wildlife\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_rate_limited\""), std::string::npos);
  EXPECT_NE(s.to_string().find("tenants:"), std::string::npos);
}

// ----------------------------------------------- observability (DESIGN §8)

// Request ids are minted at submit — one per submit, strictly unique, and
// carried on the response (accepted), the SubmitResult (shed) and the
// cache-hit short circuit alike, so every outcome is traceable.
TEST(ServeSchedTest, RequestIdsAreUniqueAcrossAllSubmitOutcomes) {
  SchedFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.cache_bytes = 4 << 20;  // enable the hit path
  cfg.tenants = {TenantConfig{.name = "q", .weight = 1, .rate_per_s = 0.0,
                              .burst = 0.0, .max_inflight = 2}};
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  std::set<std::uint64_t> ids;
  const ServeRequest req = fx.make_request(test_image(32, 32, 970), "q");

  // Two admits fill the quota; the third submit sheds — but still gets an id.
  SubmitResult a = server.submit(req);
  SubmitResult b = server.submit(fx.make_request(test_image(32, 32, 971), "q"));
  SubmitResult shed =
      server.submit(fx.make_request(test_image(32, 32, 972), "q"));
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  ASSERT_FALSE(shed.accepted);
  EXPECT_EQ(shed.status, SubmitStatus::kQuotaExceeded);
  for (const std::uint64_t id : {a.request_id, b.request_id, shed.request_id}) {
    EXPECT_NE(id, 0U);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate request id " << id;
  }

  server.drain();
  // The response echoes the id the submit was assigned.
  EXPECT_EQ(a.response.get().request_id, a.request_id);
  EXPECT_EQ(b.response.get().request_id, b.request_id);

  // A byte-identical resend hits the cache: fresh id, hit-flagged response.
  SubmitResult hit = server.submit(req);
  ASSERT_TRUE(hit.accepted);
  const ServeResponse hit_resp = hit.response.get();
  EXPECT_TRUE(hit_resp.cache_hit);
  EXPECT_EQ(hit_resp.request_id, hit.request_id);
  EXPECT_TRUE(ids.insert(hit.request_id).second);
}

// The loadgen's client-side registry view must agree exactly with the
// server's own accounting: every submit is exactly one of completed /
// shed-by-reason / failed on BOTH sides of the wire, per tenant.
TEST(ServeSchedTest, ClientRegistryCrossChecksServerCounters) {
  SchedFixture fx;
  ServerConfig cfg;  // threaded server, wall clock, reject backpressure
  cfg.workers = 2;
  cfg.max_queue = 2;  // tiny queue: queue-full sheds under the burst
  cfg.cache_bytes = 0;
  cfg.backpressure = BackpressurePolicy::kReject;
  cfg.tenants = {TenantConfig{.name = "industrial", .weight = 1,
                              .rate_per_s = 200.0, .burst = 4.0,
                              .max_inflight = 0}};
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  const testbed::LoadTrace trace = testbed::make_industrial_stream_trace(
      fx.model, fx.jpeg, /*stations=*/3, /*frames_per_station=*/6);
  testbed::ReplayOptions opts;
  opts.registry = &server.obs();
  const testbed::ReplayReport report =
      testbed::replay_trace(trace, server, opts);

  const ServerStatsSnapshot stats = server.stats();
  const obs::Registry::Snapshot reg = server.obs().snapshot();
  ASSERT_EQ(report.tenants.size(), 1U);
  const testbed::ReplayReport::TenantOutcome& client = report.tenants[0];
  EXPECT_EQ(client.tenant, "industrial");

  // Client outcome == client registry counters == server tenant row.
  const TenantStatsSnapshot row = tenant_row(stats, "industrial");
  EXPECT_EQ(reg.counter("client.industrial.completed"),
            static_cast<std::uint64_t>(client.completed));
  EXPECT_EQ(reg.counter("client.industrial.completed"), row.completed);
  EXPECT_EQ(reg.counter("client.industrial.failed"), row.failed);
  EXPECT_EQ(reg.counter("client.industrial.shed.queue_full"),
            row.shed_queue_full);
  EXPECT_EQ(reg.counter("client.industrial.shed.rate_limited"),
            row.shed_rate_limited);
  EXPECT_EQ(reg.counter("client.industrial.shed.quota"), row.shed_quota);
  EXPECT_EQ(client.shed_queue_full + client.shed_rate_limited +
                client.shed_quota,
            client.rejected);

  // Server-side hot counters agree with the mutex-guarded snapshot.
  EXPECT_EQ(reg.counter("serve.submitted"), stats.submitted);
  EXPECT_EQ(reg.counter("serve.completed"), stats.completed);
  EXPECT_EQ(reg.counter("serve.failed"), stats.failed);
  EXPECT_EQ(reg.counter("serve.shed.queue_full") +
                reg.counter("serve.shed.rate_limited") +
                reg.counter("serve.shed.quota"),
            stats.rejected);

  // Conservation: every submitted request settled exactly one way.
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected + stats.failed);

  // Sync-path replay records one id per settle (sheds mint ids too) and
  // they are unique — the trace-correctness invariant.
  EXPECT_EQ(client.request_ids.size(),
            static_cast<std::size_t>(client.completed + client.rejected));
  std::set<std::uint64_t> unique(client.request_ids.begin(),
                                 client.request_ids.end());
  EXPECT_EQ(unique.size(), client.request_ids.size());
  EXPECT_EQ(reg.gauge("client.industrial.max_request_id"),
            static_cast<std::int64_t>(*unique.rbegin()));
}

// The span ring must cover every pipeline stage of a completed request and
// key spans by the ids responses carried; the Chrome export renders them.
TEST(ServeSchedTest, TraceRingCoversAllStagesOfCompletedRequests) {
  SchedFixture fx;
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.cache_bytes = 4 << 20;
  cfg.trace_spans = 1024;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  std::vector<SubmitResult> results;
  for (int i = 0; i < 4; ++i) {
    results.push_back(
        server.submit(fx.make_request(test_image(32, 32, 980 + i), "")));
    ASSERT_TRUE(results.back().accepted);
  }
  std::set<std::uint64_t> ids;
  for (SubmitResult& r : results) ids.insert(r.response.get().request_id);
  // Byte-identical resend: exercises the cache-hit span.
  const ServeRequest dup = fx.make_request(test_image(32, 32, 980), "");
  ASSERT_TRUE(server.submit(dup).accepted);
  SubmitResult hit = server.submit(dup);
  ASSERT_TRUE(hit.accepted);
  ASSERT_TRUE(hit.response.get().cache_hit);
  server.drain();

  const std::vector<obs::TraceRing::Span> spans = server.trace().collect();
  ASSERT_FALSE(spans.empty());
  std::set<obs::SpanKind> kinds;
  std::set<std::uint64_t> total_ids;
  for (const obs::TraceRing::Span& s : spans) {
    kinds.insert(s.kind);
    if (s.kind == obs::SpanKind::kTotal) total_ids.insert(s.request_id);
    EXPECT_GE(s.duration_us, 0.0);
  }
  // Every stage of the normal path plus the cache-hit short circuit.
  for (const obs::SpanKind k :
       {obs::SpanKind::kQueueWait, obs::SpanKind::kDecode,
        obs::SpanKind::kCodecDecode, obs::SpanKind::kBatchWait,
        obs::SpanKind::kReconstruct, obs::SpanKind::kAssemble,
        obs::SpanKind::kTotal, obs::SpanKind::kCacheHit}) {
    EXPECT_TRUE(kinds.count(k)) << "missing span kind " << obs::span_name(k);
  }
  // Every completed request's id shows up as a total span.
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(total_ids.count(id)) << "no total span for request " << id;
  }

  const std::string chrome = server.trace().to_chrome_json();
  EXPECT_NE(chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"reconstruct\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"cache_hit\""), std::string::npos);
}

}  // namespace
}  // namespace easz::serve
