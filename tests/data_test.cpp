#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.hpp"
#include "data/synth.hpp"
#include "util/prng.hpp"

namespace easz::data {
namespace {

double plane_variance(const image::Image& img, int c) {
  double mean = 0.0;
  const std::size_t n = img.pixel_count();
  for (std::size_t i = 0; i < n; ++i) mean += img.plane(c)[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = img.plane(c)[i] - mean;
    var += d * d;
  }
  return var / static_cast<double>(n);
}

TEST(Synth, ValueNoiseInRangeAndNonTrivial) {
  util::Pcg32 rng(1);
  const image::Image img = value_noise(64, 64, 16, 4, rng);
  for (const float v : img.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
  EXPECT_GT(plane_variance(img, 0), 1e-4);
}

TEST(Synth, PhotoHasThreeChannelsAndStructure) {
  util::Pcg32 rng(2);
  const image::Image img = synth_photo(96, 64, rng);
  EXPECT_EQ(img.channels(), 3);
  for (int c = 0; c < 3; ++c) EXPECT_GT(plane_variance(img, c), 1e-4);
}

TEST(Synth, PhotoSpectrumDecays) {
  // Natural images have most energy at low spatial frequencies. Compare
  // local-difference energy (high frequency) with global variance: highly
  // correlated neighbours mean the ratio is well below white noise's 2.0.
  util::Pcg32 rng(3);
  const image::Image img = synth_photo(128, 128, rng).to_gray();
  double diff_energy = 0.0;
  std::size_t count = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 1; x < img.width(); ++x) {
      const double d = img.at(0, y, x) - img.at(0, y, x - 1);
      diff_energy += d * d;
      ++count;
    }
  }
  const double ratio =
      (diff_energy / static_cast<double>(count)) / plane_variance(img, 0);
  EXPECT_LT(ratio, 0.5);
}

TEST(Synth, CartoonHasHardEdges) {
  util::Pcg32 rng(4);
  const image::Image img = synth_cartoon(96, 96, rng).to_gray();
  // Count large neighbour jumps; cartoons should have some.
  int edges = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 1; x < img.width(); ++x) {
      if (std::fabs(img.at(0, y, x) - img.at(0, y, x - 1)) > 0.2F) ++edges;
    }
  }
  EXPECT_GT(edges, 20);
}

TEST(Synth, TextureHasHighFrequencyContent) {
  util::Pcg32 rng(5);
  const image::Image img = synth_texture(96, 96, rng).to_gray();
  double diff_energy = 0.0;
  std::size_t count = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 1; x < img.width(); ++x) {
      const double d = img.at(0, y, x) - img.at(0, y, x - 1);
      diff_energy += d * d;
      ++count;
    }
  }
  EXPECT_GT(diff_energy / static_cast<double>(count), 1e-4);
}

TEST(Datasets, SpecsMatchPaperShapes) {
  const DatasetSpec kodak = kodak_like_spec();
  EXPECT_EQ(kodak.width, 768);
  EXPECT_EQ(kodak.height, 512);
  EXPECT_EQ(kodak.count, 24);
  const DatasetSpec cifar = cifar_like_spec();
  EXPECT_EQ(cifar.width, 32);
  EXPECT_EQ(cifar.count, 1024);
}

TEST(Datasets, ScalingKeepsEvenDims) {
  const DatasetSpec s = kodak_like_spec(0.33F);
  EXPECT_EQ(s.width % 2, 0);
  EXPECT_EQ(s.height % 2, 0);
  EXPECT_GE(s.width, 32);
}

TEST(Datasets, LoadIsDeterministic) {
  const DatasetSpec spec = kodak_like_spec(0.25F);
  const image::Image a = load_image(spec, 3);
  const image::Image b = load_image(spec, 3);
  EXPECT_TRUE(a.approx_equal(b));
}

TEST(Datasets, DifferentIndicesDiffer) {
  const DatasetSpec spec = kodak_like_spec(0.25F);
  const image::Image a = load_image(spec, 0);
  const image::Image b = load_image(spec, 1);
  EXPECT_FALSE(a.approx_equal(b, 1e-3F));
}

TEST(Datasets, KodakAlternatesOrientation) {
  const DatasetSpec spec = kodak_like_spec(0.25F);
  const image::Image landscape = load_image(spec, 0);
  const image::Image portrait = load_image(spec, 4);
  EXPECT_GT(landscape.width(), landscape.height());
  EXPECT_LT(portrait.width(), portrait.height());
}

TEST(Datasets, IndexOutOfRangeThrows) {
  const DatasetSpec spec = cifar_like_spec();
  EXPECT_THROW(load_image(spec, spec.count), std::invalid_argument);
  EXPECT_THROW(load_image(spec, -1), std::invalid_argument);
}

TEST(Datasets, LoadAllReturnsCount) {
  DatasetSpec spec = cifar_like_spec();
  spec.count = 8;  // trim for test speed
  EXPECT_EQ(load_all(spec).size(), 8U);
}

}  // namespace
}  // namespace easz::data
