// Cross-module integration tests: full Easz stack against every codec
// family, serialization round trips through the pipeline, and the deblocking
// stage's contract.
#include <gtest/gtest.h>

#include "codec/bpg_like.hpp"
#include "codec/jpeg_like.hpp"
#include "core/deblock.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "data/datasets.hpp"
#include "metrics/distortion.hpp"
#include "neural_codec/conv_autoencoder.hpp"
#include "nn/serialize.hpp"
#include "sr/sr_codec.hpp"
#include "util/prng.hpp"

namespace easz {
namespace {

core::ReconModelConfig tiny_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

TEST(Integration, EaszOverEveryCodecFamily) {
  util::Pcg32 rng(1);
  core::ReconstructionModel model(tiny_config(), rng);

  codec::JpegLikeCodec jpeg(80);
  codec::BpgLikeCodec bpg(40);
  neural_codec::ConvAutoencoderCodec mbt(neural_codec::mbt_lite_spec(), 70, 2);
  mbt.pretrain(20, 32, 1);

  const image::Image img = data::load_image(data::kodak_like_spec(0.1F), 0);
  for (codec::ImageCodec* codec :
       std::initializer_list<codec::ImageCodec*>{&jpeg, &bpg, &mbt}) {
    core::EaszConfig cfg;
    cfg.patchify = tiny_config().patchify;
    cfg.erased_per_row = 1;
    core::EaszPipeline pipeline(cfg, *codec, &model);
    const core::EaszCompressed c = pipeline.encode(img);
    const image::Image out = pipeline.decode(c);
    EXPECT_EQ(out.width(), img.width()) << codec->name();
    EXPECT_EQ(out.height(), img.height()) << codec->name();
    EXPECT_LT(metrics::mse(img, out), 0.5) << codec->name();
  }
}

TEST(Integration, PipelineOverDownUpCodec) {
  // Easz composing with the SR pseudo-codec: double reduction (downsample
  // inside the codec, erasure outside) still round-trips geometrically.
  util::Pcg32 rng(3);
  core::ReconstructionModel model(tiny_config(), rng);
  codec::JpegLikeCodec jpeg(80);
  sr::DownUpCodec downup(jpeg, 0.5F, nullptr);
  core::EaszConfig cfg;
  cfg.patchify = tiny_config().patchify;
  cfg.erased_per_row = 1;
  core::EaszPipeline pipeline(cfg, downup, &model);
  const image::Image img = data::load_image(data::kodak_like_spec(0.1F), 1);
  const image::Image out = pipeline.decode(pipeline.encode(img));
  EXPECT_EQ(out.width(), img.width());
}

TEST(Integration, ModelCheckpointSurvivesPipelineUse) {
  util::Pcg32 rng(4);
  core::ReconstructionModel a(tiny_config(), rng);
  core::ReconstructionModel b(tiny_config(), rng);

  // Train `a` a little so weights are distinctive.
  core::TrainerConfig tcfg;
  tcfg.batch_patches = 2;
  tcfg.use_perceptual = false;
  core::Trainer trainer(a, tcfg, rng);
  std::vector<image::Image> corpus{data::load_image(data::cifar_like_spec(), 0),
                                   data::load_image(data::cifar_like_spec(), 1)};
  trainer.train(corpus, 5);

  auto pa = a.parameters();
  auto pb = b.parameters();
  const auto bytes = nn::serialize_parameters(pa);
  nn::deserialize_parameters(pb, bytes);

  // Identical weights -> identical reconstructions.
  codec::JpegLikeCodec jpeg(85);
  core::EaszConfig cfg;
  cfg.patchify = tiny_config().patchify;
  cfg.erased_per_row = 1;
  core::EaszPipeline pa_pipe(cfg, jpeg, &a);
  core::EaszPipeline pb_pipe(cfg, jpeg, &b);
  const image::Image img = data::load_image(data::kodak_like_spec(0.08F), 2);
  const core::EaszCompressed c = pa_pipe.encode(img);
  EXPECT_TRUE(pa_pipe.decode(c).approx_equal(pb_pipe.decode(c), 1e-6F));
}

TEST(Integration, VerticalAxisPipelineRoundTrip) {
  util::Pcg32 rng(5);
  core::ReconstructionModel model(tiny_config(), rng);
  codec::JpegLikeCodec jpeg(85);
  core::EaszConfig cfg;
  cfg.patchify = tiny_config().patchify;
  cfg.erased_per_row = 1;
  cfg.axis = core::SqueezeAxis::kVertical;
  core::EaszPipeline pipeline(cfg, jpeg, &model);
  const image::Image img = data::load_image(data::kodak_like_spec(0.1F), 3);
  const core::EaszCompressed c = pipeline.encode(img);
  const image::Image out = pipeline.decode(c);
  EXPECT_EQ(out.width(), img.width());
  EXPECT_EQ(out.height(), img.height());
  EXPECT_LT(metrics::mse(img, out), 0.5);
}

TEST(Deblock, IdentityAtZeroStrength) {
  util::Pcg32 rng(6);
  const image::Image img = data::load_image(data::cifar_like_spec(), 3);
  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 4};
  const core::EraseMask mask = core::make_diagonal_mask(4);
  const image::Image out = core::deblock_erased(img, mask, cfg, 0.0F);
  EXPECT_TRUE(out.approx_equal(img));
}

TEST(Deblock, SmoothsSeamsOnlyAroundErasedCells) {
  // Construct an image with a sharp discontinuity exactly at an erased cell
  // and a second one far from any erased cell; only the first may change.
  image::Image img(16, 16, 1);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) img.at(0, y, x) = 0.5F;
  }
  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 4};
  core::EraseMask mask(4, 1);
  for (int r = 0; r < 4; ++r) mask.set_erased(r, 0, true);  // column 0 erased

  img.at(0, 1, 0) = 1.0F;    // on erased cell (0,0)'s border band
  img.at(0, 9, 9) = 1.0F;    // inside kept cell (2,2), away from seams

  const image::Image out = core::deblock_erased(img, mask, cfg, 1.0F);
  EXPECT_LT(out.at(0, 1, 0), 0.99F);              // smoothed
  EXPECT_FLOAT_EQ(out.at(0, 9, 9), 1.0F);         // untouched
}

TEST(Deblock, ReducesSeamEnergyOnReconstruction) {
  // Synthetic "reconstruction" with noisy erased cells: deblocking must
  // reduce MSE against the clean reference.
  util::Pcg32 rng(7);
  const image::Image clean = data::load_image(data::kodak_like_spec(0.08F), 4);
  const core::PatchifyConfig cfg{.patch = 16, .sub_patch = 2};
  const core::EraseMask mask = core::make_row_conditional_mask(8, 2, rng);

  image::Image noisy = clean;
  const int b = cfg.sub_patch;
  for (int py = 0; py * cfg.patch < clean.height(); ++py) {
    for (int px = 0; px * cfg.patch < clean.width(); ++px) {
      for (int gy = 0; gy < 8; ++gy) {
        for (int gx = 0; gx < 8; ++gx) {
          if (!mask.erased(gy, gx)) continue;
          for (int c = 0; c < 3; ++c) {
            for (int y = 0; y < b; ++y) {
              for (int x = 0; x < b; ++x) {
                const int iy = py * cfg.patch + gy * b + y;
                const int ix = px * cfg.patch + gx * b + x;
                if (iy >= clean.height() || ix >= clean.width()) continue;
                noisy.at(c, iy, ix) = std::clamp(
                    noisy.at(c, iy, ix) + 0.1F * rng.next_gaussian(), 0.0F,
                    1.0F);
              }
            }
          }
        }
      }
    }
  }
  const image::Image deblocked = core::deblock_erased(noisy, mask, cfg, 1.0F);
  EXPECT_LT(metrics::mse(clean, deblocked), metrics::mse(clean, noisy));
}

}  // namespace
}  // namespace easz
