// Overload-resilience proofs for the serve runtime (DESIGN.md §10).
//
// Three contracts from the resilience work are proven here, all on the
// deterministic harness (virtual sched clock + workers = 0 manual stepping)
// unless a test is explicitly about threads:
//
//   degradation ladder   a scripted overload yields an EXACT, replayable
//                        rung trajectory (same submissions at the same
//                        virtual-clock instants → same rung sequence, at
//                        every pipeline depth), and a request served at
//                        rung R is byte-identical to a sequential
//                        EaszPipeline::decode at R's DecodeOptions;
//   versioned hot reload deploy_model swaps atomically with no drain:
//                        jobs pin their model slot at submit, so nothing
//                        ever runs on a torn batch — every response's bytes
//                        are a function of exactly resp.model_version;
//   hardened error paths a failing stage settles its requests exactly once
//                        (callback/future delivered, counters exact at any
//                        worker count), refunds the tenant's rate token and
//                        inflight slot, and never hangs drain().
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "data/synth.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/ladder.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "serve/tenant.hpp"
#include "util/prng.hpp"

namespace easz::serve {
namespace {

core::ReconModelConfig tiny_model_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.channels = 3;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 64;
  return cfg;
}

image::Image test_image(int w, int h, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  return data::synth_photo(w, h, rng);
}

// Time that moves only when the test moves it.
struct VirtualClock {
  double t = 0.0;
  [[nodiscard]] ClockFn fn() {
    return [this] { return t; };
  }
};

struct ResilienceFixture {
  util::Pcg32 rng{91};
  core::ReconstructionModel model{tiny_model_config(), rng};
  codec::JpegLikeCodec jpeg{85};
  VirtualClock clock;

  /// Manual scheduling mode: no worker threads, every deposit batch-ready
  /// immediately, no cache, shed-don't-block — the deterministic baseline.
  ServerConfig manual_config() {
    ServerConfig cfg;
    cfg.workers = 0;
    cfg.max_queue = 1024;
    cfg.max_batch_wait_s = 0.0;
    cfg.cache_bytes = 0;
    cfg.backpressure = BackpressurePolicy::kReject;
    cfg.sched_clock = clock.fn();
    return cfg;
  }

  core::EaszConfig edge_config(int erased, core::SqueezeAxis axis,
                               std::uint64_t mask_seed) {
    core::EaszConfig cfg;
    cfg.patchify = tiny_model_config().patchify;
    cfg.erased_per_row = erased;
    cfg.axis = axis;
    cfg.mask_seed = mask_seed;
    return cfg;
  }

  ServeRequest make_request(const image::Image& img, const std::string& tenant,
                            std::uint64_t mask_seed = 7) {
    const core::EaszPipeline edge(
        edge_config(1, core::SqueezeAxis::kHorizontal, mask_seed), jpeg,
        nullptr);
    ServeRequest r;
    r.compressed = edge.encode(img);
    r.codec = "jpeg";
    r.tenant = tenant;
    return r;
  }

  /// Sequential reference at explicit rung parameters, against `m`.
  image::Image decode_with(const core::ReconstructionModel& m,
                           const ServeRequest& r,
                           core::EaszPipeline::DecodeOptions options = {}) {
    const core::EaszPipeline server_pipeline(
        edge_config(r.compressed.erased_per_row, r.compressed.axis, 7), jpeg,
        &m);
    return server_pipeline.decode(r.compressed, options);
  }

  image::Image decode_at(const ServeRequest& r,
                         core::EaszPipeline::DecodeOptions options = {}) {
    return decode_with(model, r, options);
  }

  /// Post-training-quantizes `m` on decode-path samples.
  void quantize(core::ReconstructionModel& m) {
    std::vector<core::ReconstructionModel::CalibSample> samples;
    for (int i = 0; i < 3; ++i) {
      const image::Image img = test_image(40 + 8 * i, 24 + 8 * i, 600 + i);
      const core::EaszPipeline edge(
          edge_config(1 + i % 2, core::SqueezeAxis::kHorizontal, 7), jpeg,
          nullptr);
      const core::EaszPipeline server_pipeline(
          edge_config(1 + i % 2, core::SqueezeAxis::kHorizontal, 7), jpeg, &m);
      const core::DecodedTokens d =
          server_pipeline.decode_tokens(edge.encode(img));
      samples.push_back({d.tokens, d.recon_mask});
    }
    m.calibrate_and_quantize(samples);
  }

  void quantize_model() { quantize(model); }
};

// By value: callers often pass a temporary snapshot (`server.stats()`).
TenantStatsSnapshot tenant_row(const ServerStatsSnapshot& s,
                               const std::string& name) {
  for (const TenantStatsSnapshot& t : s.tenants) {
    if (t.name == name) return t;
  }
  throw std::runtime_error("no tenant row: " + name);
}

TenantAdmissionStats admission_row(const TenantRegistry& reg,
                                   const std::string& name) {
  for (const TenantAdmissionStats& t : reg.snapshot()) {
    if (t.name == name) return t;
  }
  throw std::runtime_error("no admission row: " + name);
}

/// The sequential DecodeOptions a rung promises byte-identity against,
/// for a tenant that inherits precision on a QUANTIZED deployment.
core::EaszPipeline::DecodeOptions rung_options(int rung) {
  core::EaszPipeline::DecodeOptions o;
  switch (rung) {
    case 0:
      break;
    case 1:
      o.precision = nn::Precision::kInt8;
      break;
    case 2:
      o.precision = nn::Precision::kInt8;
      o.deblock = false;
      break;
    case 3:
      o.coarse_fill = true;
      break;
    default:
      throw std::runtime_error("no decode options for rung");
  }
  return o;
}

// ----------------------------------------------------- ladder state machine

TEST(LadderUnitTest, RungPlansAreCumulative) {
  EXPECT_STREQ(ladder_rung_name(LadderRung::kFull), "full");
  EXPECT_STREQ(ladder_rung_name(LadderRung::kInt8), "int8");
  EXPECT_STREQ(ladder_rung_name(LadderRung::kNoDeblock), "no_deblock");
  EXPECT_STREQ(ladder_rung_name(LadderRung::kCoarse), "coarse");
  EXPECT_STREQ(ladder_rung_name(LadderRung::kShed), "shed");

  const RungPlan full = rung_plan(LadderRung::kFull);
  EXPECT_FALSE(full.use_int8);
  EXPECT_TRUE(full.deblock);
  EXPECT_FALSE(full.coarse_fill);
  EXPECT_FALSE(full.shed);

  const RungPlan int8 = rung_plan(LadderRung::kInt8);
  EXPECT_TRUE(int8.use_int8);
  EXPECT_TRUE(int8.deblock);

  // Each rung keeps the cheaper substitutions of the rungs below it.
  const RungPlan nodb = rung_plan(LadderRung::kNoDeblock);
  EXPECT_TRUE(nodb.use_int8);
  EXPECT_FALSE(nodb.deblock);
  EXPECT_FALSE(nodb.coarse_fill);

  const RungPlan coarse = rung_plan(LadderRung::kCoarse);
  EXPECT_FALSE(coarse.deblock);
  EXPECT_TRUE(coarse.coarse_fill);
  EXPECT_FALSE(coarse.shed);

  EXPECT_TRUE(rung_plan(LadderRung::kShed).shed);
}

TEST(LadderUnitTest, ObserveRotatesWindowsAndWalksOneRungWithHysteresis) {
  LadderConfig cfg;
  cfg.slo_p95_s = 1.0;
  cfg.window_s = 1.0;
  cfg.climb_ratio = 1.0;
  cfg.descend_ratio = 0.7;
  cfg.min_samples = 4;
  TenantLadder ladder(cfg);
  ASSERT_TRUE(ladder.enabled());

  // First observe only opens the window — no decision yet.
  EXPECT_EQ(ladder.observe(0.0, 50.0), LadderRung::kFull);
  // Mid-window pressure is invisible until the window rotates.
  EXPECT_EQ(ladder.observe(0.5, 50.0), LadderRung::kFull);
  // Rotation at exactly the SLO climbs exactly one rung.
  EXPECT_EQ(ladder.observe(1.0, 1.0), LadderRung::kInt8);
  EXPECT_EQ(ladder.transitions(), 1U);
  EXPECT_DOUBLE_EQ(ladder.last_pressure(), 1.0);
  // Hysteresis band (0.7, 1.0): neither climb nor descend.
  EXPECT_EQ(ladder.observe(2.0, 0.9), LadderRung::kInt8);
  // Sustained overload walks one rung per window, clamping at max_rung.
  EXPECT_EQ(ladder.observe(3.0, 5.0), LadderRung::kNoDeblock);
  EXPECT_EQ(ladder.observe(4.0, 5.0), LadderRung::kCoarse);
  EXPECT_EQ(ladder.observe(5.0, 5.0), LadderRung::kShed);
  EXPECT_EQ(ladder.observe(6.0, 99.0), LadderRung::kShed);
  // Recovery descends one rung per window too.
  EXPECT_EQ(ladder.observe(7.0, 0.0), LadderRung::kCoarse);
  EXPECT_EQ(ladder.observe(8.0, 0.0), LadderRung::kNoDeblock);
  // 4 climbs + 2 descends; the hysteresis hold and the clamp moved nothing.
  EXPECT_EQ(ladder.transitions(), 6U);
}

TEST(LadderUnitTest, P95TermNeedsMinSamplesAndQueueWaitLeads) {
  LadderConfig cfg;
  cfg.slo_p95_s = 1.0;
  cfg.window_s = 1.0;
  cfg.min_samples = 4;
  TenantLadder ladder(cfg);
  ladder.observe(0.0, 0.0);  // open the window

  // Three slow samples < min_samples: the p95 term is ignored and the empty
  // queue keeps pressure at zero — the ladder holds.
  for (int i = 0; i < 3; ++i) ladder.record_latency(3.0);
  EXPECT_EQ(ladder.observe(1.0, 0.0), LadderRung::kFull);

  // Four slow samples reach min_samples: p95/slo = 3.0 climbs the ladder
  // even with nothing queued (completed-request pressure, not queue wait).
  for (int i = 0; i < 4; ++i) ladder.record_latency(3.0);
  EXPECT_EQ(ladder.observe(2.0, 0.0), LadderRung::kInt8);
  EXPECT_DOUBLE_EQ(ladder.last_pressure(), 3.0);

  // Samples were cleared at rotation: the next window starts fresh.
  EXPECT_EQ(ladder.observe(3.0, 0.0), LadderRung::kFull);
}

TEST(LadderUnitTest, DisabledLadderAndMaxRungClamp) {
  TenantLadder off;  // default config: slo_p95_s = 0 disables the walk
  EXPECT_FALSE(off.enabled());
  off.record_latency(100.0);
  EXPECT_EQ(off.observe(0.0, 100.0), LadderRung::kFull);
  EXPECT_EQ(off.observe(10.0, 100.0), LadderRung::kFull);
  EXPECT_EQ(off.transitions(), 0U);

  LadderConfig cfg;
  cfg.slo_p95_s = 1.0;
  cfg.window_s = 1.0;
  cfg.max_rung = LadderRung::kCoarse;  // shedding forbidden by policy
  TenantLadder capped(cfg);
  capped.observe(0.0, 0.0);
  for (int w = 1; w <= 6; ++w) capped.observe(static_cast<double>(w), 50.0);
  EXPECT_EQ(capped.rung(), LadderRung::kCoarse);
}

// ------------------------------------------- scripted overload trajectories

struct TrajectoryLog {
  std::vector<int> rungs;  // response rung per submission; -1 = shed
  std::vector<std::vector<float>> bytes;  // response pixels; empty for shed
  std::uint64_t transitions = 0;
  std::uint64_t shed_overloaded = 0;
};

// One scripted overload against a quantized deployment, entirely on the
// virtual clock (slo 1s, window 1s, p95 term disabled via min_samples so the
// oldest-queued-wait pressure is the only input — exactly scriptable):
//
//   t=0..3  submit r0..r3 WITHOUT stepping: the queue ages 1s per window,
//           so each rotation climbs one rung (full→int8→no_deblock→coarse);
//   t=4     submit r4: pressure 4.0 climbs coarse→shed, r4 is rejected
//           kOverloaded; drain the backlog (each request completes at the
//           rung it was ADMITTED at);
//   t=5..8  submit + drain one request per window against an empty queue:
//           pressure 0 descends one rung per window back to full.
TrajectoryLog run_overload_script(int pipeline_depth) {
  ResilienceFixture fx;
  fx.quantize_model();
  ServerConfig cfg = fx.manual_config();
  cfg.pipeline_depth = pipeline_depth;
  cfg.ladder.slo_p95_s = 1.0;
  cfg.ladder.window_s = 1.0;
  cfg.ladder.climb_ratio = 1.0;
  cfg.ladder.descend_ratio = 0.7;
  cfg.ladder.min_samples = 1000;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  struct Step {
    double t;
    bool drain;
  };
  const Step plan[] = {{0.0, false}, {1.0, false}, {2.0, false}, {3.0, false},
                       {4.0, true},  {5.0, true},  {6.0, true},  {7.0, true},
                       {8.0, true}};
  const int n = static_cast<int>(std::size(plan));

  TrajectoryLog log;
  log.rungs.assign(n, -1);
  log.bytes.assign(n, {});
  std::vector<ServeRequest> requests;
  std::map<int, std::future<ServeResponse>> futures;
  for (int i = 0; i < n; ++i) {
    fx.clock.t = plan[i].t;
    requests.push_back(fx.make_request(test_image(32, 32, 500 + i), ""));
    SubmitResult r = server.submit(requests.back());
    if (r.accepted) {
      futures.emplace(i, std::move(r.response));
    } else {
      EXPECT_EQ(r.status, SubmitStatus::kOverloaded) << "submission " << i;
    }
    if (plan[i].drain) server.drain();
  }
  EXPECT_EQ(server.tenant_rung(""), LadderRung::kFull);

  for (auto& [i, fut] : futures) {
    ServeResponse resp = fut.get();
    log.rungs[i] = resp.rung;
    log.bytes[i] = resp.image->data();
    EXPECT_EQ(resp.model_version, 1U);
    if (resp.rung <= 3) {
      // The rung contract: byte-identical to sequential decode at the
      // rung's DecodeOptions (int8 substitution applies — the deployment
      // is quantized and the default tenant inherits precision).
      const image::Image want =
          fx.decode_at(requests[static_cast<std::size_t>(i)],
                       rung_options(resp.rung));
      EXPECT_EQ(resp.image->data(), want.data())
          << "submission " << i << " at rung " << resp.rung;
    }
  }

  const ServerStatsSnapshot s = server.stats();
  const TenantStatsSnapshot row = tenant_row(s, "default");
  log.transitions = row.rung_transitions;
  log.shed_overloaded = s.shed_overloaded;
  EXPECT_EQ(row.rung, "full");
  EXPECT_EQ(row.shed_overloaded, s.shed_overloaded);
  EXPECT_EQ(s.failed, 0U);
  // The gauge tracks the most recent rung decision; the final descend
  // landed back at full.
  EXPECT_EQ(server.obs().snapshot().gauge("ladder.rung"), 0);
  EXPECT_EQ(server.obs().snapshot().counter("serve.shed.overloaded"), 1U);

  // Every transition leaves a zero-duration trace marker whose aux is the
  // NEW rung: the full climb and descend, in order.
  std::vector<int> walked;
  for (const obs::TraceRing::Span& span : server.trace().collect()) {
    if (span.kind == obs::SpanKind::kRungTransition) {
      walked.push_back(static_cast<int>(span.aux));
    }
  }
  EXPECT_EQ(walked, (std::vector<int>{1, 2, 3, 4, 3, 2, 1, 0}));
  return log;
}

TEST(LadderSchedTest, ScriptedOverloadClimbsShedsAndRecoversExactly) {
  const TrajectoryLog log = run_overload_script(/*pipeline_depth=*/2);
  // r0..r3 admitted at the climb rungs, r4 shed, r5..r8 at the descend
  // rungs. The rung a request is SERVED at is the rung at its submit.
  EXPECT_EQ(log.rungs, (std::vector<int>{0, 1, 2, 3, -1, 3, 2, 1, 0}));
  EXPECT_EQ(log.transitions, 8U);
  EXPECT_EQ(log.shed_overloaded, 1U);
}

TEST(LadderSchedTest, TrajectoryReplaysIdenticallyAtEveryPipelineDepth) {
  const TrajectoryLog base = run_overload_script(1);
  for (const int depth : {1, 2, 3}) {
    const TrajectoryLog replay = run_overload_script(depth);
    EXPECT_EQ(replay.rungs, base.rungs) << "depth " << depth;
    EXPECT_EQ(replay.transitions, base.transitions) << "depth " << depth;
    EXPECT_EQ(replay.shed_overloaded, base.shed_overloaded);
    ASSERT_EQ(replay.bytes.size(), base.bytes.size());
    for (std::size_t i = 0; i < base.bytes.size(); ++i) {
      EXPECT_EQ(replay.bytes[i], base.bytes[i])
          << "depth " << depth << " submission " << i;
    }
  }
}

TEST(LadderSchedTest, ForcedRungsServeByteIdenticalAndFp32PinHolds) {
  ResilienceFixture fx;
  fx.quantize_model();
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {
      TenantConfig{.name = "f0", .forced_rung = 0},
      TenantConfig{.name = "f1", .forced_rung = 1},
      TenantConfig{.name = "f2", .forced_rung = 2},
      TenantConfig{.name = "f3", .forced_rung = 3},
      TenantConfig{.name = "brownout", .forced_rung = 4},
      // An explicit fp32 pin is a quality contract: the int8 substitution
      // of rungs 1-2 must NOT apply, but deblock is still lost at rung 2.
      TenantConfig{.name = "pin1",
                   .precision = TenantPrecision::kFp32,
                   .forced_rung = 1},
      TenantConfig{.name = "pin2",
                   .precision = TenantPrecision::kFp32,
                   .forced_rung = 2},
  };
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  std::map<std::string, ServeRequest> requests;
  std::map<std::string, std::future<ServeResponse>> futures;
  int seed = 0;
  for (const char* name : {"f0", "f1", "f2", "f3", "pin1", "pin2"}) {
    requests.emplace(name,
                     fx.make_request(test_image(32, 32, 900 + seed++), name));
    SubmitResult r = server.submit(requests.at(name));
    ASSERT_TRUE(r.accepted) << name;
    futures.emplace(name, std::move(r.response));
  }
  // The forced-shed tenant rejects everything, cache probe included.
  SubmitResult shed =
      server.submit(fx.make_request(test_image(32, 32, 990), "brownout"));
  EXPECT_FALSE(shed.accepted);
  EXPECT_EQ(shed.status, SubmitStatus::kOverloaded);
  server.drain();

  for (int rung = 0; rung <= 3; ++rung) {
    const std::string name = "f" + std::to_string(rung);
    const ServeResponse resp = futures.at(name).get();
    EXPECT_EQ(resp.rung, rung) << name;
    const image::Image want =
        fx.decode_at(requests.at(name), rung_options(rung));
    EXPECT_EQ(resp.image->data(), want.data()) << name;
  }
  const ServeResponse pin1 = futures.at("pin1").get();
  EXPECT_EQ(pin1.rung, 1);
  EXPECT_EQ(pin1.image->data(),
            fx.decode_at(requests.at("pin1")).data());  // fp32, deblocked
  const ServeResponse pin2 = futures.at("pin2").get();
  EXPECT_EQ(pin2.rung, 2);
  EXPECT_EQ(pin2.image->data(),
            fx.decode_at(requests.at("pin2"),
                         {.precision = nn::Precision::kFp32, .deblock = false})
                .data());

  // Forcing a rung bypasses the state machine without seeding it.
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(tenant_row(s, "f3").rung, "full");
  EXPECT_EQ(tenant_row(s, "f3").rung_transitions, 0U);
  EXPECT_EQ(server.tenant_rung("f3"), LadderRung::kFull);
  EXPECT_EQ(s.shed_overloaded, 1U);
  EXPECT_EQ(tenant_row(s, "brownout").shed_overloaded, 1U);
}

// ------------------------------------------------- versioned hot model swap

TEST(HotReloadTest, DeployValidatesSwapsAtomicallyAndKeysTheCache) {
  ResilienceFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.cache_bytes = 8ULL << 20;  // on: entries must be version-keyed
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  EXPECT_EQ(server.model_version(), 1U);
  EXPECT_EQ(server.obs().snapshot().gauge("model.version"), 1);

  // Rejected deploys leave v1 serving untouched.
  EXPECT_THROW(server.deploy_model(nullptr), std::invalid_argument);
  core::ReconModelConfig bad = tiny_model_config();
  bad.patchify = {.patch = 8, .sub_patch = 4};
  util::Pcg32 bad_rng(7);
  EXPECT_THROW(server.deploy_model(std::make_shared<core::ReconstructionModel>(
                   bad, bad_rng)),
               std::invalid_argument);
  EXPECT_EQ(server.model_version(), 1U);

  const ServeRequest req = fx.make_request(test_image(32, 32, 1200), "");
  SubmitResult r1 = server.submit(req);
  ASSERT_TRUE(r1.accepted);
  server.drain();
  const ServeResponse resp1 = r1.response.get();
  EXPECT_EQ(resp1.model_version, 1U);
  EXPECT_EQ(resp1.image->data(), fx.decode_at(req).data());
  // Identical resubmit: cache hit, still v1.
  SubmitResult hit = server.submit(req);
  ASSERT_TRUE(hit.accepted);
  EXPECT_TRUE(hit.response.get().cache_hit);

  util::Pcg32 rng_b(555);
  auto model_b = std::make_shared<core::ReconstructionModel>(
      tiny_model_config(), rng_b);
  EXPECT_EQ(server.deploy_model(model_b), 2U);
  EXPECT_EQ(server.model_version(), 2U);
  EXPECT_EQ(server.obs().snapshot().gauge("model.version"), 2);

  ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.model_version, 2U);
  EXPECT_EQ(s.deploys, 1U);
  EXPECT_EQ(s.model_versions_retained, 1);  // v1 pruned: nobody pins it

  // The SAME request after the swap: the version-keyed cache must NOT
  // serve v1 bytes as if they were v2's.
  SubmitResult r2 = server.submit(req);
  ASSERT_TRUE(r2.accepted);
  server.drain();
  const ServeResponse resp2 = r2.response.get();
  EXPECT_FALSE(resp2.cache_hit);
  EXPECT_EQ(resp2.model_version, 2U);
  EXPECT_EQ(resp2.image->data(), fx.decode_with(*model_b, req).data());
  EXPECT_NE(resp2.image->data(), resp1.image->data());
}

TEST(HotReloadTest, DeployRejectsUnquantizedModelUnderInt8Pins) {
  ResilienceFixture fx;
  fx.quantize_model();
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {TenantConfig{.name = "edge",
                              .precision = TenantPrecision::kInt8}};
  ReconServer server(cfg, fx.model);

  util::Pcg32 rng_b(555);
  auto unquantized = std::make_shared<core::ReconstructionModel>(
      tiny_model_config(), rng_b);
  EXPECT_THROW(server.deploy_model(unquantized), std::invalid_argument);
  EXPECT_EQ(server.model_version(), 1U);

  util::Pcg32 rng_c(556);
  auto quantized = std::make_shared<core::ReconstructionModel>(
      tiny_model_config(), rng_c);
  fx.quantize(*quantized);
  EXPECT_EQ(server.deploy_model(quantized), 2U);

  // Server-wide int8 policy enforces the same at deploy time.
  ResilienceFixture fx2;
  fx2.quantize_model();
  ServerConfig cfg2 = fx2.manual_config();
  cfg2.precision = PrecisionPolicy::kInt8;
  ReconServer server2(cfg2, fx2.model);
  util::Pcg32 rng_d(557);
  EXPECT_THROW(server2.deploy_model(std::make_shared<core::ReconstructionModel>(
                   tiny_model_config(), rng_d)),
               std::invalid_argument);
}

TEST(HotReloadTest, PinnedTenantStaysOnItsVersionUntilUnpinned) {
  ResilienceFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {TenantConfig{.name = "archive", .pin_version = 1}};
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  util::Pcg32 rng_b(555);
  auto model_b = std::make_shared<core::ReconstructionModel>(
      tiny_model_config(), rng_b);
  ASSERT_EQ(server.deploy_model(model_b), 2U);
  // v1 survives the deploy because archive pins it.
  EXPECT_EQ(server.stats().model_versions_retained, 2);

  const ServeRequest pinned_req = fx.make_request(test_image(32, 32, 1300),
                                                  "archive");
  const ServeRequest fresh_req = fx.make_request(test_image(32, 32, 1301), "");
  SubmitResult pinned = server.submit(pinned_req);
  SubmitResult fresh = server.submit(fresh_req);
  ASSERT_TRUE(pinned.accepted);
  ASSERT_TRUE(fresh.accepted);
  server.drain();
  const ServeResponse pinned_resp = pinned.response.get();
  EXPECT_EQ(pinned_resp.model_version, 1U);
  EXPECT_EQ(pinned_resp.image->data(), fx.decode_at(pinned_req).data());
  const ServeResponse fresh_resp = fresh.response.get();
  EXPECT_EQ(fresh_resp.model_version, 2U);
  EXPECT_EQ(fresh_resp.image->data(),
            fx.decode_with(*model_b, fresh_req).data());

  // Next deploy prunes v2 (nobody pins it) but keeps v1 + v3.
  util::Pcg32 rng_c(777);
  auto model_c = std::make_shared<core::ReconstructionModel>(
      tiny_model_config(), rng_c);
  ASSERT_EQ(server.deploy_model(model_c), 3U);
  EXPECT_EQ(server.stats().model_versions_retained, 2);
  SubmitResult still_pinned = server.submit(pinned_req);
  ASSERT_TRUE(still_pinned.accepted);
  server.drain();
  EXPECT_EQ(still_pinned.response.get().model_version, 1U);

  // Pinning an already-pruned version is the documented fallback: current.
  server.tenants().add(TenantConfig{.name = "late", .pin_version = 2});
  SubmitResult late =
      server.submit(fx.make_request(test_image(32, 32, 1302), "late"));
  ASSERT_TRUE(late.accepted);
  server.drain();
  EXPECT_EQ(late.response.get().model_version, 3U);
}

TEST(HotReloadTest, SwapUnderLoadNeverTearsABatch) {
  ResilienceFixture fx;
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.max_queue = 1024;
  cfg.max_batch_wait_s = 0.0;
  cfg.cache_bytes = 0;  // every response must be a fresh reconstruction
  cfg.backpressure = BackpressurePolicy::kReject;
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  util::Pcg32 rng_b(555);
  auto model_b = std::make_shared<core::ReconstructionModel>(
      tiny_model_config(), rng_b);

  constexpr int kRequests = 24;
  std::vector<ServeRequest> requests;
  std::vector<image::Image> want_v1, want_v2;
  for (int i = 0; i < kRequests; ++i) {
    // One shared mask: requests pool into cross-request batches, which is
    // exactly where a torn mixed-version batch would form if it could.
    requests.push_back(fx.make_request(test_image(32, 32, 3000 + i), ""));
    want_v1.push_back(fx.decode_at(requests.back()));
    want_v2.push_back(fx.decode_with(*model_b, requests.back()));
    // The versions genuinely disagree, so a byte match identifies one.
    ASSERT_NE(want_v1.back().data(), want_v2.back().data());
  }

  // First half submitted on v1, swap mid-load, second half on v2. Workers
  // are mid-batch on v1 when the deploy lands; no drain happens.
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < kRequests / 2; ++i) {
    SubmitResult r = server.submit(requests[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(r.accepted);
    futures.push_back(std::move(r.response));
  }
  ASSERT_EQ(server.deploy_model(model_b), 2U);
  for (int i = kRequests / 2; i < kRequests; ++i) {
    SubmitResult r = server.submit(requests[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(r.accepted);
    futures.push_back(std::move(r.response));
  }
  server.drain();

  for (int i = 0; i < kRequests; ++i) {
    const ServeResponse resp = futures[static_cast<std::size_t>(i)].get();
    // Jobs pin their slot at SUBMIT: the swap point splits the versions
    // exactly, in-flight v1 batches finish on v1.
    const std::uint64_t want_version = i < kRequests / 2 ? 1U : 2U;
    EXPECT_EQ(resp.model_version, want_version) << "request " << i;
    const image::Image& want =
        want_version == 1 ? want_v1[static_cast<std::size_t>(i)]
                          : want_v2[static_cast<std::size_t>(i)];
    EXPECT_EQ(resp.image->data(), want.data()) << "request " << i;
  }
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.failed, 0U);
  EXPECT_EQ(s.deploys, 1U);
  EXPECT_EQ(server.obs().snapshot().gauge("model.version"), 2);
}

// --------------------------------------------------- hardened error paths

TEST(FaultInjectionTest, DecodeFaultAccountingIsExactAtEveryWorkerCount) {
  constexpr int kRequests = 12;
  for (const int workers : {0, 1, 4, 8}) {
    ResilienceFixture fx;
    ServerConfig cfg = fx.manual_config();
    cfg.workers = workers;
    // Every 3rd decode action throws. Each admitted request decodes exactly
    // once, so the FAILURE COUNT is schedule-independent even when which
    // request fails is not (threaded dequeue order varies).
    auto decode_count = std::make_shared<std::atomic<int>>(0);
    cfg.fault_injection = [decode_count](StageAction stage) {
      if (stage == StageAction::kDecode &&
          decode_count->fetch_add(1) % 3 == 2) {
        throw std::runtime_error("injected decode fault");
      }
    };
    ReconServer server(cfg, fx.model);
    server.register_codec("jpeg", &fx.jpeg);

    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < kRequests; ++i) {
      SubmitResult r =
          server.submit(fx.make_request(test_image(32, 32, 4000 + i), ""));
      ASSERT_TRUE(r.accepted);
      futures.push_back(std::move(r.response));
    }
    server.drain();  // must return despite the failures

    int completed = 0, failed = 0;
    for (auto& fut : futures) {
      try {
        const ServeResponse resp = fut.get();
        ASSERT_NE(resp.image, nullptr);
        ++completed;
      } catch (const std::runtime_error&) {
        ++failed;
      }
    }
    EXPECT_EQ(failed, kRequests / 3) << "workers " << workers;
    EXPECT_EQ(completed, kRequests - kRequests / 3) << "workers " << workers;

    const ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(s.failed, static_cast<std::uint64_t>(failed));
    EXPECT_EQ(s.completed, static_cast<std::uint64_t>(completed));
    // Conservation: every submit is accounted for exactly once.
    EXPECT_EQ(s.submitted, s.completed + s.failed + s.rejected);
    EXPECT_EQ(server.obs().snapshot().counter("serve.requests.failed"),
              static_cast<std::uint64_t>(failed));
  }
}

TEST(FaultInjectionTest, ForwardFaultFailsTheWholeBatchExactlyOnce) {
  ResilienceFixture fx;
  ServerConfig cfg = fx.manual_config();
  // A linger window far beyond the (frozen) virtual clock: the mask group
  // launches only via the nothing-left-to-decode flush, AFTER both requests
  // deposited — so they genuinely share the one forward pass that throws.
  cfg.max_batch_wait_s = 10.0;
  auto forwards = std::make_shared<std::atomic<int>>(0);
  cfg.fault_injection = [forwards](StageAction stage) {
    if (stage == StageAction::kForward && forwards->fetch_add(1) == 0) {
      throw std::runtime_error("injected forward fault");
    }
  };
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  // Same mask: both requests pool into the one forward pass that throws.
  // Callback path: each callback must fire exactly once, with the error.
  auto error_calls = std::make_shared<std::atomic<int>>(0);
  auto ok_calls = std::make_shared<std::atomic<int>>(0);
  ResponseCallback cb = [error_calls, ok_calls](ServeResponse,
                                                std::exception_ptr error) {
    (error ? *error_calls : *ok_calls).fetch_add(1);
  };
  ASSERT_EQ(server.submit_async(
                fx.make_request(test_image(32, 32, 4100), ""), cb),
            SubmitStatus::kAccepted);
  ASSERT_EQ(server.submit_async(
                fx.make_request(test_image(32, 32, 4101), ""), cb),
            SubmitStatus::kAccepted);
  server.drain();
  EXPECT_EQ(error_calls->load(), 2);
  EXPECT_EQ(ok_calls->load(), 0);
  ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.failed, 2U);
  EXPECT_EQ(s.completed, 0U);

  // The pipeline stays healthy after the purge: the next request completes.
  SubmitResult after =
      server.submit(fx.make_request(test_image(32, 32, 4102), ""));
  ASSERT_TRUE(after.accepted);
  server.drain();
  EXPECT_NE(after.response.get().image, nullptr);
  s = server.stats();
  EXPECT_EQ(s.completed, 1U);
  EXPECT_EQ(s.failed, 2U);
}

TEST(FaultInjectionTest, AssembleFaultFailsOnlyThatRequest) {
  ResilienceFixture fx;
  ServerConfig cfg = fx.manual_config();
  auto assembles = std::make_shared<std::atomic<int>>(0);
  cfg.fault_injection = [assembles](StageAction stage) {
    if (stage == StageAction::kAssemble && assembles->fetch_add(1) == 0) {
      throw std::runtime_error("injected assemble fault");
    }
  };
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  // Distinct masks: two groups, two forwards, two assemble actions — the
  // fault takes down exactly the first-assembled request.
  SubmitResult a = server.submit(
      fx.make_request(test_image(32, 32, 4200), "", /*mask_seed=*/7));
  SubmitResult b = server.submit(
      fx.make_request(test_image(32, 32, 4201), "", /*mask_seed=*/11));
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  server.drain();

  int completed = 0, failed = 0;
  for (std::future<ServeResponse>* fut : {&a.response, &b.response}) {
    try {
      fut->get();
      ++completed;
    } catch (const std::runtime_error&) {
      ++failed;
    }
  }
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(failed, 1);
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, 1U);
  EXPECT_EQ(s.failed, 1U);
}

TEST(FaultInjectionTest, FailedRequestRefundsRateTokenAndInflightSlot) {
  ResilienceFixture fx;
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {
      TenantConfig{.name = "ratey", .rate_per_s = 2.0, .burst = 2.0},
      TenantConfig{.name = "quoty", .max_inflight = 2},
  };
  cfg.fault_injection = [](StageAction stage) {
    if (stage == StageAction::kDecode) {
      throw std::runtime_error("injected decode fault");
    }
  };
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  // The virtual clock NEVER advances: any token that comes back after the
  // failures below is a release_failed refund, not bucket refill.
  auto submit_to = [&](const std::string& tenant, int seed) {
    return server.submit(
        fx.make_request(test_image(32, 32, 4300 + seed), tenant));
  };
  EXPECT_TRUE(submit_to("ratey", 0).accepted);
  EXPECT_TRUE(submit_to("ratey", 1).accepted);
  EXPECT_EQ(submit_to("ratey", 2).status, SubmitStatus::kRateLimited);
  EXPECT_TRUE(submit_to("quoty", 3).accepted);
  EXPECT_TRUE(submit_to("quoty", 4).accepted);
  EXPECT_EQ(submit_to("quoty", 5).status, SubmitStatus::kQuotaExceeded);
  server.drain();  // all four admitted requests fail at decode

  // Failure returned both the rate tokens and the inflight slots; the
  // frozen clock proves no refill was involved.
  EXPECT_TRUE(submit_to("ratey", 6).accepted);
  EXPECT_TRUE(submit_to("ratey", 7).accepted);
  EXPECT_EQ(submit_to("ratey", 8).status, SubmitStatus::kRateLimited);
  EXPECT_TRUE(submit_to("quoty", 9).accepted);
  EXPECT_TRUE(submit_to("quoty", 10).accepted);
  EXPECT_EQ(submit_to("quoty", 11).status, SubmitStatus::kQuotaExceeded);
  server.drain();

  // release_failed keeps the admitted count (the requests DID consume
  // capacity), unlike cancel_admission.
  const TenantAdmissionStats ratey = admission_row(server.tenants(), "ratey");
  EXPECT_EQ(ratey.admitted, 4U);
  EXPECT_EQ(ratey.rate_limited, 2U);
  EXPECT_EQ(ratey.inflight, 0);
  const TenantAdmissionStats quoty = admission_row(server.tenants(), "quoty");
  EXPECT_EQ(quoty.admitted, 4U);
  EXPECT_EQ(quoty.quota_rejected, 2U);
  EXPECT_EQ(quoty.inflight, 0);
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.failed, 8U);
  EXPECT_EQ(tenant_row(s, "ratey").failed, 4U);
  EXPECT_EQ(tenant_row(s, "quoty").failed, 4U);
}

TEST(FaultInjectionTest, ThrowingCallbackIsContainedAndCounted) {
  ResilienceFixture fx;
  ServerConfig cfg = fx.manual_config();
  auto decodes = std::make_shared<std::atomic<int>>(0);
  cfg.fault_injection = [decodes](StageAction stage) {
    if (stage == StageAction::kDecode && decodes->fetch_add(1) == 0) {
      throw std::runtime_error("injected decode fault");
    }
  };
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  // Both callbacks violate the no-throw contract — on the error path AND
  // the success path. Neither throw may escape a worker or wedge drain().
  auto calls = std::make_shared<std::atomic<int>>(0);
  ResponseCallback cb = [calls](ServeResponse, std::exception_ptr) {
    calls->fetch_add(1);
    throw std::runtime_error("callback contract violation");
  };
  ASSERT_EQ(server.submit_async(
                fx.make_request(test_image(32, 32, 4400), ""), cb),
            SubmitStatus::kAccepted);
  ASSERT_EQ(server.submit_async(
                fx.make_request(test_image(32, 32, 4401), ""), cb),
            SubmitStatus::kAccepted);
  server.drain();

  EXPECT_EQ(calls->load(), 2);
  EXPECT_EQ(server.obs().snapshot().counter("serve.callback_errors"), 2U);
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, 1U);
  EXPECT_EQ(s.failed, 1U);
}

TEST(FaultInjectionTest, FailureEmitsFailedSpanTaggedWithItsRung) {
  ResilienceFixture fx;
  fx.quantize_model();
  ServerConfig cfg = fx.manual_config();
  cfg.tenants = {TenantConfig{.name = "degraded", .forced_rung = 2}};
  cfg.fault_injection = [](StageAction stage) {
    if (stage == StageAction::kDecode) {
      throw std::runtime_error("injected decode fault");
    }
  };
  ReconServer server(cfg, fx.model);
  server.register_codec("jpeg", &fx.jpeg);

  SubmitResult r =
      server.submit(fx.make_request(test_image(32, 32, 4500), "degraded"));
  ASSERT_TRUE(r.accepted);
  server.drain();
  EXPECT_THROW(r.response.get(), std::runtime_error);

  bool found = false;
  for (const obs::TraceRing::Span& span : server.trace().collect()) {
    if (span.kind == obs::SpanKind::kFailed &&
        span.request_id == r.request_id) {
      found = true;
      // aux carries the rung the request ran at when it failed.
      EXPECT_EQ(span.aux, 2U);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace easz::serve
