// Property/fuzz-style negative tests for the wire formats an untrusted
// party controls: the EAZC container, the EZB2 (bpg-like) bitstream and
// the EAZQ quantization sidecar of model checkpoints.
//
// The contract under test is the hostile-input half of "a deployable codec
// needs a self-describing file format": seeded corpora of random bit flips
// and truncations must ALWAYS terminate in one of two outcomes — a clean
// std::exception, or a successful parse that faithfully round-trips — and
// never a crash, hang, or count-driven allocation blow-up. (ctest itself is
// the crash detector: any signal fails the binary.) This extends the
// hand-picked corrupt cases in codec_test/rans_fast_test with breadth:
// every header byte position gets hit across the seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include <cmath>
#include <cstring>

#include "codec/bpg_like.hpp"
#include "codec/jpeg_like.hpp"
#include "core/container.hpp"
#include "core/pipeline.hpp"
#include "data/synth.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "util/prng.hpp"

namespace easz {
namespace {

core::EaszConfig small_config() {
  core::EaszConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 4};
  cfg.erased_per_row = 1;
  cfg.mask_seed = 7;
  return cfg;
}

std::vector<std::uint8_t> valid_container(codec::ImageCodec& codec,
                                          int w = 37, int h = 29) {
  util::Pcg32 rng(11);
  const image::Image img = data::synth_photo(w, h, rng);
  const core::EaszConfig cfg = small_config();
  const core::EaszPipeline edge(cfg, codec, nullptr);
  return core::serialize_container(edge.encode(img), cfg.patchify,
                                   codec.name());
}

// --------------------------------------------------------- EAZC container

TEST(ContainerFuzz, EveryStrictPrefixThrows) {
  codec::JpegLikeCodec jpeg(80);
  const std::vector<std::uint8_t> bytes = valid_container(jpeg);
  ASSERT_GT(bytes.size(), 32U);
  // The format is length-prefixed throughout, so EVERY proper prefix must
  // be detected — there is no length at which a cut container still parses.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(n));
    EXPECT_THROW(core::parse_container(cut), std::exception) << "prefix " << n;
  }
  // Trailing garbage is rejected too: a parse must consume exactly the
  // container, or a concatenation bug would silently pass.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0x00);
  EXPECT_THROW(core::parse_container(padded), std::exception);
  // The untouched original still parses (the corpus is actually valid).
  EXPECT_NO_THROW(core::parse_container(bytes));
}

TEST(ContainerFuzz, RandomBitFlipsThrowOrRoundTripFaithfully) {
  codec::JpegLikeCodec jpeg(80);
  const std::vector<std::uint8_t> bytes = valid_container(jpeg);
  util::Pcg32 rng(0xF112);
  int threw = 0, parsed = 0;
  for (int trial = 0; trial < 800; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + rng.next_int(0, 2);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_below(
          static_cast<std::uint32_t>(mutated.size()));
      mutated[pos] ^= static_cast<std::uint8_t>(1U << rng.next_int(0, 7));
    }
    try {
      const core::ParsedContainer out = core::parse_container(mutated);
      ++parsed;
      // A flip the validators cannot distinguish from a legal container
      // (e.g. inside the payload bytes) must at least be FAITHFUL: the
      // parse re-serialises to exactly the mutated input. Anything else
      // means fields were silently dropped or reinterpreted.
      EXPECT_EQ(core::serialize_container(out.compressed, out.patchify,
                                          out.codec_name),
                mutated)
          << "trial " << trial;
    } catch (const std::exception&) {
      ++threw;  // the expected outcome for header damage
    }
  }
  // Most of the file is entropy-coded payload, so some flips survive; but
  // the header validators must be doing real work.
  EXPECT_GT(threw, 0);
  EXPECT_GT(parsed, 0);
  EXPECT_EQ(threw + parsed, 800);
}

TEST(ContainerFuzz, HeaderFieldDamageIsRejectedNotPropagated) {
  codec::JpegLikeCodec jpeg(80);
  const std::vector<std::uint8_t> bytes = valid_container(jpeg);
  // Magic and version: any damage to the first 6 bytes must throw.
  for (std::size_t pos = 0; pos < 6; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[pos] ^= static_cast<std::uint8_t>(1U << bit);
      EXPECT_THROW(core::parse_container(mutated), std::exception)
          << "byte " << pos << " bit " << bit;
    }
  }
  // Saturating a length field must throw (bounds check), never allocate.
  std::vector<std::uint8_t> huge_name = bytes;
  huge_name[6] = 0xFF;  // codec-name length low byte
  huge_name[7] = 0xFF;
  EXPECT_THROW(core::parse_container(huge_name), std::exception);
}

// ------------------------------------------------------- EZB2 bitstream

TEST(Ezb2Fuzz, EveryStrictPrefixThrows) {
  codec::BpgLikeCodec bpg(50);
  util::Pcg32 rng(23);
  const image::Image img = data::synth_photo(64, 48, rng);
  const codec::Compressed c = bpg.encode(img);
  ASSERT_GT(c.bytes.size(), 64U);
  for (std::size_t n = 0; n < c.bytes.size(); ++n) {
    codec::Compressed cut = c;
    cut.bytes.resize(n);
    EXPECT_THROW(bpg.decode(cut), std::exception) << "prefix " << n;
  }
  EXPECT_NO_THROW(bpg.decode(c));
}

TEST(Ezb2Fuzz, RandomBitFlipsNeverCrashAndKeepGeometryWhenTheyDecode) {
  codec::BpgLikeCodec bpg(50);
  util::Pcg32 rng(29);
  const image::Image img = data::synth_photo(64, 48, rng);
  const codec::Compressed c = bpg.encode(img);

  util::Pcg32 fuzz(0xB1F5);
  int threw = 0, decoded = 0;
  for (int trial = 0; trial < 400; ++trial) {
    codec::Compressed mutated = c;
    const int flips = 1 + fuzz.next_int(0, 2);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = fuzz.next_below(
          static_cast<std::uint32_t>(mutated.bytes.size()));
      mutated.bytes[pos] ^= static_cast<std::uint8_t>(1U << fuzz.next_int(0, 7));
    }
    try {
      const image::Image out = bpg.decode(mutated);
      ++decoded;
      // A flip deep in residual data can decode to wrong pixels — that is
      // entropy coding, not a safety bug — but the header-declared
      // geometry must hold, or downstream indexing breaks.
      EXPECT_EQ(out.width(), img.width());
      EXPECT_EQ(out.height(), img.height());
      EXPECT_EQ(out.channels(), img.channels());
    } catch (const std::exception&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0);  // rANS lane offsets + symbol-count validators fire
  EXPECT_EQ(threw + decoded, 400);
}

TEST(Ezb2Fuzz, HeaderBitFlipsThrowAcrossTheWholeHeader) {
  codec::BpgLikeCodec bpg(50);
  util::Pcg32 rng(31);
  const image::Image img = data::synth_photo(48, 32, rng);
  const codec::Compressed c = bpg.encode(img);
  // Magic bytes: every single-bit flip must be rejected (v1 fallback
  // included — a flipped v2 magic is not a valid v1 stream either).
  int threw = 0, tried = 0;
  for (std::size_t pos = 0; pos < 4; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      codec::Compressed mutated = c;
      mutated.bytes[pos] ^= static_cast<std::uint8_t>(1U << bit);
      ++tried;
      try {
        (void)bpg.decode(mutated);
      } catch (const std::exception&) {
        ++threw;
      }
    }
  }
  EXPECT_EQ(threw, tried) << "corrupt magic must never decode";
}

// ------------------------------------------------------- EAZQ sidecar

nn::QuantSidecar small_sidecar() {
  nn::QuantSidecar q;
  util::Pcg32 rng(17);
  for (const auto& [in, out] : {std::pair{12, 8}, std::pair{8, 16}}) {
    nn::QuantSidecar::Layer l;
    l.in = static_cast<std::uint32_t>(in);
    l.out = static_cast<std::uint32_t>(out);
    l.act_scale = 0.01F + rng.next_float() * 0.1F;
    for (int j = 0; j < out; ++j) {
      l.w_scale.push_back(0.001F + rng.next_float() * 0.01F);
    }
    for (int i = 0; i < in * out; ++i) {
      l.w_q.push_back(
          static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127));
    }
    q.layers.push_back(std::move(l));
  }
  return q;
}

bool sidecar_equal(const nn::QuantSidecar& a, const nn::QuantSidecar& b) {
  if (a.layers.size() != b.layers.size()) return false;
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    const auto& la = a.layers[i];
    const auto& lb = b.layers[i];
    if (la.in != lb.in || la.out != lb.out) return false;
    // Bit compare (a NaN-producing flip must never "equal" anything).
    if (std::memcmp(&la.act_scale, &lb.act_scale, 4) != 0) return false;
    if (la.w_scale.size() != lb.w_scale.size() ||
        std::memcmp(la.w_scale.data(), lb.w_scale.data(),
                    la.w_scale.size() * 4) != 0) {
      return false;
    }
    if (la.w_q != lb.w_q) return false;
  }
  return true;
}

TEST(EazqFuzz, EveryStrictPrefixThrows) {
  const std::vector<std::uint8_t> bytes =
      nn::serialize_quant_sidecar(small_sidecar());
  ASSERT_GT(bytes.size(), 32U);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(n));
    EXPECT_THROW((void)nn::parse_quant_sidecar(cut), std::exception)
        << "prefix " << n;
  }
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0x00);
  EXPECT_THROW((void)nn::parse_quant_sidecar(padded), std::exception);
  EXPECT_NO_THROW((void)nn::parse_quant_sidecar(bytes));
}

TEST(EazqFuzz, RandomBitFlipsThrowOrParseWithSaneScales) {
  const nn::QuantSidecar original = small_sidecar();
  const std::vector<std::uint8_t> bytes = nn::serialize_quant_sidecar(original);
  util::Pcg32 rng(0xEA2F);
  int threw = 0, parsed = 0;
  for (int trial = 0; trial < 800; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + rng.next_int(0, 2);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos =
          rng.next_below(static_cast<std::uint32_t>(mutated.size()));
      mutated[pos] ^= static_cast<std::uint8_t>(1U << rng.next_int(0, 7));
    }
    try {
      const nn::QuantSidecar out = nn::parse_quant_sidecar(mutated);
      ++parsed;
      // A surviving flip landed in weight/scale payload. The scale
      // validators are the contract: whatever parsed must be executable —
      // finite positive scales only, NEVER NaN/inf/zero reaching the
      // dequant epilogue.
      for (const auto& l : out.layers) {
        ASSERT_TRUE(std::isfinite(l.act_scale) && l.act_scale > 0.0F);
        for (const float s : l.w_scale) {
          ASSERT_TRUE(std::isfinite(s) && s > 0.0F) << "trial " << trial;
        }
      }
      // And faithfully: re-serialising reproduces the mutated input.
      EXPECT_EQ(nn::serialize_quant_sidecar(out), mutated) << "trial " << trial;
    } catch (const std::exception&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0);
  EXPECT_GT(parsed, 0);
  EXPECT_EQ(threw + parsed, 800);
}

TEST(EazqFuzz, CorruptScaleTablesAlwaysThrow) {
  const nn::QuantSidecar original = small_sidecar();
  // act_scale of layer 0 sits at offset 10 + 8 (magic+version+count, in+out).
  const std::size_t act_scale_off = 4 + 2 + 4 + 4 + 4;
  for (const float bad : {0.0F, -1.0F, std::nanf(""), INFINITY, -INFINITY}) {
    std::vector<std::uint8_t> bytes = nn::serialize_quant_sidecar(original);
    std::memcpy(bytes.data() + act_scale_off, &bad, 4);
    EXPECT_THROW((void)nn::parse_quant_sidecar(bytes), std::exception);
    // First w_scale entry right after act_scale.
    std::vector<std::uint8_t> bytes2 = nn::serialize_quant_sidecar(original);
    std::memcpy(bytes2.data() + act_scale_off + 4, &bad, 4);
    EXPECT_THROW((void)nn::parse_quant_sidecar(bytes2), std::exception);
  }
}

TEST(EazqFuzz, SaturatedCountFieldsThrowInsteadOfAllocating) {
  std::vector<std::uint8_t> bytes =
      nn::serialize_quant_sidecar(small_sidecar());
  // Layer count u32 at offset 6.
  for (const std::size_t off : {6U, 10U, 14U}) {  // count, layer0 in, out
    std::vector<std::uint8_t> mutated = bytes;
    mutated[off] = 0xFF;
    mutated[off + 1] = 0xFF;
    mutated[off + 2] = 0xFF;
    mutated[off + 3] = 0xFF;
    EXPECT_THROW((void)nn::parse_quant_sidecar(mutated), std::exception)
        << "offset " << off;
  }
}

TEST(EazqFuzz, CheckpointTailRoundTripsAndRejectsGarbageTails) {
  // A checkpoint with a sidecar appended: the loader must find it, and a
  // checkpoint whose tail is NOT a valid sidecar must throw, not load.
  util::Pcg32 rng(19);
  std::vector<tensor::Tensor> params = {
      tensor::Tensor::randn({4, 3}, rng),
      tensor::Tensor::randn({7}, rng),
  };
  const nn::QuantSidecar q = small_sidecar();
  const std::vector<std::uint8_t> bytes =
      nn::serialize_checkpoint_with_quant(params, q);
  std::vector<tensor::Tensor> loaded = {tensor::Tensor({4, 3}),
                                        tensor::Tensor({7})};
  const auto side = nn::deserialize_checkpoint_with_quant(loaded, bytes);
  ASSERT_TRUE(side.has_value());
  EXPECT_TRUE(sidecar_equal(q, *side));

  std::vector<std::uint8_t> garbage = nn::serialize_parameters(params);
  garbage.insert(garbage.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_THROW(
      (void)nn::deserialize_checkpoint_with_quant(loaded, garbage),
      std::exception);
}

// Cross-check: the container validators catch a mismatched payload before
// the inner codec ever sees it, so a swapped-payload splice fails cleanly.
TEST(ContainerFuzz, SplicedForeignPayloadIsRejectedByGeometryChecks) {
  codec::JpegLikeCodec jpeg(80);
  const std::vector<std::uint8_t> a = valid_container(jpeg, 37, 29);
  const std::vector<std::uint8_t> b = valid_container(jpeg, 85, 61);
  // Graft b's tail (payload area) onto a's header region. Offsets are not
  // field-aligned on purpose; the parser must reject the hybrid.
  ASSERT_GT(a.size(), 40U);
  ASSERT_GT(b.size(), 40U);
  std::vector<std::uint8_t> spliced;
  spliced.reserve(b.size());
  for (std::size_t i = 0; i < 40; ++i) spliced.push_back(a[i]);
  for (std::size_t i = 40; i < b.size(); ++i) spliced.push_back(b[i]);
  EXPECT_THROW(core::parse_container(spliced), std::exception);
}

}  // namespace
}  // namespace easz
