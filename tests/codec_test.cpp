#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>

#include "codec/bpg_like.hpp"
#include "codec/codec.hpp"
#include "codec/dct.hpp"
#include "codec/jpeg_like.hpp"
#include "data/synth.hpp"
#include "tensor/kernels.hpp"
#include "util/prng.hpp"

namespace easz::codec {
namespace {

#include "golden_v1_streams.inc"

double image_mse(const image::Image& a, const image::Image& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.data().size());
}

TEST(Dct, ForwardInverseIsIdentity) {
  for (const int n : {4, 8, 16, 32}) {
    Dct2d dct(n);
    util::Pcg32 rng(n);
    std::vector<float> block(static_cast<std::size_t>(n) * n);
    for (auto& v : block) v = rng.next_float() * 255.0F - 128.0F;
    std::vector<float> orig = block;
    dct.forward(block.data());
    dct.inverse(block.data());
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_NEAR(block[i], orig[i], 1e-2F) << "n=" << n;
    }
  }
}

TEST(Dct, ConstantBlockConcentratesInDc) {
  Dct2d dct(8);
  std::vector<float> block(64, 10.0F);
  dct.forward(block.data());
  EXPECT_NEAR(block[0], 80.0F, 1e-3F);  // orthonormal: n * value
  for (std::size_t i = 1; i < 64; ++i) EXPECT_NEAR(block[i], 0.0F, 1e-4F);
}

TEST(Dct, ParsevalEnergyPreserved) {
  Dct2d dct(16);
  util::Pcg32 rng(99);
  std::vector<float> block(256);
  for (auto& v : block) v = rng.next_gaussian();
  double energy_in = 0.0;
  for (const float v : block) energy_in += v * v;
  dct.forward(block.data());
  double energy_out = 0.0;
  for (const float v : block) energy_out += v * v;
  EXPECT_NEAR(energy_out, energy_in, energy_in * 1e-4);
}

TEST(Dct, RejectsBadSizes) {
  EXPECT_THROW(Dct2d(1), std::invalid_argument);
  EXPECT_THROW(Dct2d(65), std::invalid_argument);
}

class CodecRoundTrip : public testing::TestWithParam<std::string> {};

TEST_P(CodecRoundTrip, DecodeMatchesOriginalAtHighQuality) {
  auto codec = make_classical_codec(GetParam(), 95);
  util::Pcg32 rng(7);
  const image::Image img = data::synth_photo(96, 64, rng);
  const Compressed c = codec->encode(img);
  const image::Image decoded = codec->decode(c);
  ASSERT_EQ(decoded.width(), img.width());
  ASSERT_EQ(decoded.height(), img.height());
  ASSERT_EQ(decoded.channels(), img.channels());
  EXPECT_LT(image_mse(img, decoded), 5e-4);
}

TEST_P(CodecRoundTrip, GrayscaleImagesSupported) {
  auto codec = make_classical_codec(GetParam(), 80);
  util::Pcg32 rng(8);
  const image::Image img = data::value_noise(64, 48, 16, 4, rng);
  const image::Image decoded = codec->decode(codec->encode(img));
  EXPECT_EQ(decoded.channels(), 1);
  EXPECT_LT(image_mse(img, decoded), 2e-3);
}

TEST_P(CodecRoundTrip, NonMultipleOfBlockDimensionsSupported) {
  auto codec = make_classical_codec(GetParam(), 70);
  util::Pcg32 rng(9);
  const image::Image img = data::synth_photo(50, 37, rng);
  const image::Image decoded = codec->decode(codec->encode(img));
  EXPECT_EQ(decoded.width(), 50);
  EXPECT_EQ(decoded.height(), 37);
  EXPECT_LT(image_mse(img, decoded), 5e-3);
}

TEST_P(CodecRoundTrip, QualityMonotonicallyImprovesDistortion) {
  auto codec = make_classical_codec(GetParam(), 10);
  util::Pcg32 rng(10);
  const image::Image img = data::synth_photo(96, 64, rng);
  double prev_mse = 1e9;
  for (const int q : {10, 40, 70, 95}) {
    codec->set_quality(q);
    const double mse = image_mse(img, codec->decode(codec->encode(img)));
    EXPECT_LE(mse, prev_mse * 1.05) << "quality " << q;
    prev_mse = mse;
  }
}

TEST_P(CodecRoundTrip, QualityMonotonicallyIncreasesRate) {
  auto codec = make_classical_codec(GetParam(), 10);
  util::Pcg32 rng(11);
  const image::Image img = data::synth_photo(96, 64, rng);
  double prev_bpp = 0.0;
  for (const int q : {5, 35, 65, 95}) {
    codec->set_quality(q);
    const double bpp = codec->encode(img).bpp();
    EXPECT_GE(bpp, prev_bpp * 0.95) << "quality " << q;
    prev_bpp = bpp;
  }
}

TEST_P(CodecRoundTrip, CompressesNaturalContent) {
  auto codec = make_classical_codec(GetParam(), 50);
  util::Pcg32 rng(12);
  const image::Image img = data::synth_photo(128, 96, rng);
  const Compressed c = codec->encode(img);
  // Raw: 24 bpp. Mid quality should land far below.
  EXPECT_LT(c.bpp(), 8.0);
  EXPECT_GT(c.bpp(), 0.01);
}

TEST_P(CodecRoundTrip, ReportsPositiveCostModel) {
  auto codec = make_classical_codec(GetParam(), 50);
  EXPECT_GT(codec->encode_flops(512, 768), 0.0);
  EXPECT_GT(codec->decode_flops(512, 768), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllClassical, CodecRoundTrip,
                         testing::Values("jpeg", "bpg"));

TEST(JpegLike, DeterministicEncoding) {
  JpegLikeCodec codec(60);
  util::Pcg32 rng(13);
  const image::Image img = data::synth_photo(64, 64, rng);
  const Compressed a = codec.encode(img);
  const Compressed b = codec.encode(img);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(JpegLike, QualityClamped) {
  JpegLikeCodec codec(500);
  EXPECT_EQ(codec.quality(), 100);
  codec.set_quality(-5);
  EXPECT_EQ(codec.quality(), 1);
}

TEST(BpgLike, BeatsJpegAtLowRate) {
  // The structural advantage (prediction + bigger blocks + rANS) should show
  // at aggressive compression on smooth natural content, mirroring BPG vs
  // JPEG.
  util::Pcg32 rng(14);
  const image::Image img = data::synth_photo(128, 96, rng);

  JpegLikeCodec jpeg(12);
  const Compressed cj = jpeg.encode(img);
  const double jpeg_mse = image_mse(img, jpeg.decode(cj));

  // Find the bpg quality with closest bpp <= jpeg's bpp.
  BpgLikeCodec bpg(50);
  double best_mse = 1e9;
  bool found = false;
  for (const int q : {2, 5, 8, 10, 15, 20, 30, 40, 50}) {
    bpg.set_quality(q);
    const Compressed cb = bpg.encode(img);
    if (cb.bpp() <= cj.bpp() * 1.1) {
      best_mse = std::min(best_mse, image_mse(img, bpg.decode(cb)));
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_LT(best_mse, jpeg_mse * 1.2);
}

TEST(BpgLike, DeterministicEncoding) {
  BpgLikeCodec codec(45);
  util::Pcg32 rng(15);
  const image::Image img = data::synth_photo(64, 48, rng);
  EXPECT_EQ(codec.encode(img).bytes, codec.encode(img).bytes);
}

TEST(BpgLike, V1GoldenStreamStillDecodes) {
  // Container written by the seed (pre-v2) encoder: no magic, scalar rANS
  // payload. Symbol-level decode is bit-exact forever; pixel output is
  // compared after 8-bit quantisation with tolerance 1 because the inverse
  // DCT now runs on FMA kernels (last-mantissa-bit differences only).
  Compressed c;
  c.bytes.assign(kGoldenBpgV1, kGoldenBpgV1 + sizeof(kGoldenBpgV1));
  c.width = 48;
  c.height = 32;
  c.channels = 1;
  BpgLikeCodec codec(40);
  const image::Image decoded = codec.decode(c);
  ASSERT_EQ(decoded.width(), 48);
  ASSERT_EQ(decoded.height(), 32);
  ASSERT_EQ(decoded.channels(), 1);
  const auto bytes = decoded.to_bytes();
  ASSERT_EQ(bytes.size(), sizeof(kGoldenBpgV1Pixels));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const int diff = std::abs(static_cast<int>(bytes[i]) -
                              static_cast<int>(kGoldenBpgV1Pixels[i]));
    ASSERT_LE(diff, 1) << "pixel " << i;
  }
}

TEST(BpgLike, V2ContainerCarriesMagic) {
  BpgLikeCodec codec(50);
  util::Pcg32 rng(21);
  const image::Image img = data::synth_photo(64, 48, rng);
  const Compressed c = codec.encode(img);
  ASSERT_GE(c.bytes.size(), 4U);
  EXPECT_EQ(c.bytes[0], 'E');
  EXPECT_EQ(c.bytes[1], 'Z');
  EXPECT_EQ(c.bytes[2], 'B');
  EXPECT_EQ(c.bytes[3], '2');
}

class CodecThreadInvariance : public testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { tensor::kern::set_threads(saved_); }
  int saved_ = tensor::kern::threads();
};

TEST_P(CodecThreadInvariance, EncodeAndDecodeAreThreadCountInvariant) {
  // The block-parallel paths must produce byte-identical streams and pixels
  // at any pool width (including the serial fallback).
  auto codec = make_classical_codec(GetParam(), 55);
  util::Pcg32 rng(22);
  const image::Image img = data::synth_photo(150, 90, rng);

  tensor::kern::set_threads(1);
  const Compressed c1 = codec->encode(img);
  const image::Image d1 = codec->decode(c1);

  tensor::kern::set_threads(4);
  const Compressed c4 = codec->encode(img);
  const image::Image d4 = codec->decode(c1);

  EXPECT_EQ(c1.bytes, c4.bytes);
  ASSERT_EQ(d1.data().size(), d4.data().size());
  for (std::size_t i = 0; i < d1.data().size(); ++i) {
    ASSERT_EQ(d1.data()[i], d4.data()[i]) << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllClassical, CodecThreadInvariance,
                         testing::Values("jpeg", "bpg"));

TEST(BpgLike, CorruptStreamThrowsInsteadOfCrashing) {
  BpgLikeCodec codec(50);
  util::Pcg32 rng(23);
  const image::Image img = data::synth_photo(64, 48, rng);
  Compressed c = codec.encode(img);
  // Truncate mid-payload.
  Compressed cut = c;
  cut.bytes.resize(cut.bytes.size() / 2);
  EXPECT_THROW(codec.decode(cut), std::exception);

  // Poisoned header counts must be rejected against the geometry before any
  // count-sized allocation happens (a corrupt upload costs an exception,
  // not a multi-gigabyte resize). mode_count sits after magic + w + h +
  // color + quality in the v2 layout.
  Compressed poisoned = c;
  for (int i = 0; i < 4; ++i) poisoned.bytes[14 + i] = 0xFF;
  EXPECT_THROW(codec.decode(poisoned), std::exception);

  // Implausible geometry is rejected outright.
  Compressed huge = c;
  huge.bytes[7] = 0xFF;  // width high byte
  EXPECT_THROW(codec.decode(huge), std::exception);
}

TEST(Codec, FactoryRejectsUnknownName) {
  EXPECT_THROW(make_classical_codec("webp", 50), std::invalid_argument);
}

TEST(Codec, CompressedBppComputesAgainstOriginalGrid) {
  Compressed c;
  c.bytes.assign(1000, 0);
  c.width = 100;
  c.height = 80;
  EXPECT_NEAR(c.bpp(), 1000.0 * 8.0 / 8000.0, 1e-9);
}

}  // namespace
}  // namespace easz::codec
