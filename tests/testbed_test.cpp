#include <gtest/gtest.h>

#include "codec/jpeg_like.hpp"
#include "neural_codec/conv_autoencoder.hpp"
#include "testbed/scenario.hpp"
#include "util/prng.hpp"

namespace easz::testbed {
namespace {

core::ReconModelConfig paper_model_config() {
  core::ReconModelConfig cfg;  // defaults = paper dimensions
  return cfg;
}

TEST(Device, PresetsHaveSensibleOrdering) {
  const DeviceModel edge = jetson_tx2();
  const DeviceModel server = desktop_2080ti();
  EXPECT_LT(edge.nn_flops_per_s, server.nn_flops_per_s);
  EXPECT_LT(edge.cpu_flops_per_s, server.cpu_flops_per_s);
  EXPECT_LT(edge.gpu_active_power_w, server.gpu_active_power_w);
}

TEST(Link, TransferTimeIncludesRttAndBandwidth) {
  const NetworkLink link = wifi_link();
  const double t = link.transfer_s(60e3);
  EXPECT_GT(t, link.rtt_s);
  // ~60 KB at the paper's effective Wi-Fi rate: roughly the 150 ms band.
  EXPECT_GT(t, 0.08);
  EXPECT_LT(t, 0.30);
}

TEST(Scenario, ClassicalCodecIsFastOnEdge) {
  const Scenario s = paper_testbed();
  codec::JpegLikeCodec jpeg(50);
  const PipelineCost c = s.run_codec(jpeg, 768, 512, 40e3);
  EXPECT_LT(c.latency.encode_s, 0.2);
  EXPECT_NEAR(c.latency.model_load_s, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.edge.gpu_power_w, 0.0);
}

TEST(Scenario, NeuralCodecReproducesPaperLatencyGap) {
  // Fig. 1: neural encode ~18 s and load >1 s on TX2 vs ~150 ms transmit.
  const Scenario s = paper_testbed();
  neural_codec::ConvAutoencoderCodec mbt(neural_codec::mbt_lite_spec(), 50, 1);
  const PipelineCost c = s.run_codec(mbt, 768, 512, 40e3);
  EXPECT_GT(c.latency.encode_s, 10.0);
  EXPECT_GT(c.latency.model_load_s, 1.0);
  EXPECT_LT(c.latency.transmit_s, 0.3);
  EXPECT_GT(c.latency.encode_s / c.latency.transmit_s, 50.0);
}

TEST(Scenario, EaszEraseSqueezeIsTinyFractionOfTotal) {
  // Fig. 6a: erase-and-squeeze ~0.7 % of end-to-end latency.
  const Scenario s = paper_testbed();
  util::Pcg32 rng(2);
  core::ReconstructionModel model(paper_model_config(), rng);
  codec::JpegLikeCodec jpeg(50);
  const PipelineCost c = s.run_easz(jpeg, model, 768, 512, 2, 40e3);
  const double total = c.latency.end_to_end_s();
  EXPECT_GT(total, 0.5);
  EXPECT_LT(c.latency.erase_squeeze_s / total, 0.05);
  EXPECT_GT(c.latency.reconstruct_s / total, 0.4);  // recon dominates (74 %)
}

TEST(Scenario, EaszBeatsNeuralCodecsEndToEnd) {
  // Fig. 8d: Easz ~89 % faster end-to-end than MBT/Cheng.
  const Scenario s = paper_testbed();
  util::Pcg32 rng(3);
  core::ReconstructionModel model(paper_model_config(), rng);
  codec::JpegLikeCodec jpeg(50);
  neural_codec::ConvAutoencoderCodec cheng(neural_codec::cheng_lite_spec(), 50, 4);

  const double easz_total =
      s.run_easz(jpeg, model, 768, 512, 2, 40e3).latency.end_to_end_s();
  const double cheng_total =
      s.run_codec(cheng, 768, 512, 40e3).latency.end_to_end_s();
  EXPECT_LT(easz_total, cheng_total * 0.35);
}

TEST(Scenario, EaszPowerAndMemoryAdvantage) {
  // Fig. 6b/6c: no GPU power on the edge; ~45 % smaller footprint.
  const Scenario s = paper_testbed();
  util::Pcg32 rng(5);
  core::ReconstructionModel model(paper_model_config(), rng);
  codec::JpegLikeCodec jpeg(50);
  neural_codec::ConvAutoencoderCodec mbt(neural_codec::mbt_lite_spec(), 50, 6);

  const PipelineCost easz = s.run_easz(jpeg, model, 768, 512, 2, 40e3);
  const PipelineCost nn = s.run_codec(mbt, 768, 512, 40e3);
  EXPECT_DOUBLE_EQ(easz.edge.gpu_power_w, 0.0);
  EXPECT_GT(nn.edge.gpu_power_w, 0.0);
  EXPECT_LT(easz.edge.total_power_w(), nn.edge.total_power_w());
  EXPECT_LT(easz.edge.memory_bytes, nn.edge.memory_bytes * 0.7);
}

TEST(Scenario, LoadInitOverheadAddsToModelLoad) {
  const Scenario s = paper_testbed();
  neural_codec::ConvAutoencoderCodec cheng(neural_codec::cheng_lite_spec(), 50, 7);
  const PipelineCost base = s.run_codec(cheng, 768, 512, 40e3);
  const PipelineCost heavy =
      s.run_codec(cheng, 768, 512, 40e3, {.load_init_s = 10.0});
  EXPECT_NEAR(heavy.latency.model_load_s - base.latency.model_load_s, 10.0,
              1e-9);
}

TEST(Scenario, HigherEraseRatioCutsEncodeAndReconCost) {
  const Scenario s = paper_testbed();
  util::Pcg32 rng(8);
  core::ReconstructionModel model(paper_model_config(), rng);
  codec::JpegLikeCodec jpeg(50);
  const PipelineCost t1 = s.run_easz(jpeg, model, 768, 512, 1, 40e3);
  const PipelineCost t4 = s.run_easz(jpeg, model, 768, 512, 4, 40e3);
  EXPECT_LT(t4.latency.encode_s, t1.latency.encode_s);
  EXPECT_LT(t4.latency.reconstruct_s, t1.latency.reconstruct_s);
}

TEST(StageBreakdown, EndToEndSumsStages) {
  StageBreakdown b;
  b.erase_squeeze_s = 0.1;
  b.encode_s = 0.2;
  b.transmit_s = 0.3;
  b.decode_s = 0.4;
  b.reconstruct_s = 0.5;
  b.model_load_s = 1.0;
  EXPECT_NEAR(b.end_to_end_s(), 1.5, 1e-12);
  EXPECT_NEAR(b.end_to_end_s(true), 2.5, 1e-12);
}

}  // namespace
}  // namespace easz::testbed
