// Observability substrate contract (DESIGN.md §8): the lock-free histogram
// must honour its documented quantile error bound against exact nearest-rank
// percentiles across distribution shapes, snapshots must merge
// associatively, the counter registry's interval diffing must produce exact
// rates, the trace ring must survive wraparound and concurrent export, and
// the perf-counter wrapper must degrade gracefully where the kernel says no.
// The multithreaded cases double as the TSan targets for this subsystem.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/perf_counters.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/stats.hpp"

namespace easz {
namespace {

// Restores the exact-percentile mode on scope exit.
struct ExactModeGuard {
  explicit ExactModeGuard(bool on) : prev(obs::exact_percentiles()) {
    obs::set_exact_percentiles(on);
  }
  ~ExactModeGuard() { obs::set_exact_percentiles(prev); }
  bool prev;
};

// Exact nearest-rank percentile: the rank-⌈p/100·n⌉ order statistic — the
// same convention HistogramSnapshot::quantile documents its bound against.
double exact_nearest_rank(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

void expect_quantiles_within_bound(const obs::HistogramSnapshot& h,
                                   const std::vector<double>& samples,
                                   const char* what) {
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = exact_nearest_rank(samples, p);
    const double est = h.quantile(p);
    EXPECT_NEAR(est, exact, obs::kMaxQuantileRelError * exact + 1e-12)
        << what << " p" << p;
  }
}

// ---------------------------------------------------------------- buckets

TEST(ObsHistogram, BucketEdgesContainTheirValues) {
  // Every probe value must land in a bucket whose [lower, upper) range
  // contains it, and indices must be monotone in the value.
  const double probes[] = {0.0,    5e-7,  1e-6,   1.5e-6, 1e-5, 3.7e-4,
                           1e-3,   0.02,  0.5,    1.0,    60.0, 1800.0,
                           2147.0, 1e9};
  int prev_index = -1;
  for (const double v : probes) {
    const int idx = obs::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, obs::kHistBuckets);
    EXPECT_GE(v, obs::bucket_lower_edge_s(idx)) << "value " << v;
    EXPECT_LT(v, obs::bucket_upper_edge_s(idx)) << "value " << v;
    EXPECT_GE(idx, prev_index) << "monotonicity at " << v;
    prev_index = idx;
  }
  // Garbage lands in the underflow bucket instead of corrupting memory.
  EXPECT_EQ(obs::bucket_index(-1.0), 0);
  EXPECT_EQ(obs::bucket_index(std::nan("")), 0);
}

TEST(ObsHistogram, BucketWidthHonoursErrorBound) {
  // The documented bound derives from bucket geometry: for every finite
  // bucket past the underflow one, (width/2)/lower <= kMaxQuantileRelError.
  for (int i = 1; i + 1 < obs::kHistBuckets; ++i) {
    const double lo = obs::bucket_lower_edge_s(i);
    const double hi = obs::bucket_upper_edge_s(i);
    ASSERT_GT(lo, 0.0);
    EXPECT_LE((hi - lo) / 2.0 / lo, obs::kMaxQuantileRelError + 1e-12)
        << "bucket " << i;
  }
}

// ---------------------------------------------------------------- quantiles

TEST(ObsHistogram, QuantileBoundUniform) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(1e-3, 0.1);
  obs::LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.record(v);
  }
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, samples.size());
  expect_quantiles_within_bound(snap, samples, "uniform");
  // count/mean/max are not bucketed — exact to the nanosecond resolution
  // the histogram stores sums and maxima at.
  double sum = 0.0, mx = 0.0;
  for (const double v : samples) {
    sum += v;
    mx = std::max(mx, v);
  }
  EXPECT_NEAR(snap.mean(), sum / static_cast<double>(samples.size()), 1e-9);
  EXPECT_NEAR(snap.max_s, mx, 1e-9);
}

TEST(ObsHistogram, QuantileBoundLognormal) {
  // Heavy-tailed shape: the distribution serving latencies actually have.
  std::mt19937 rng(11);
  std::lognormal_distribution<double> dist(-6.0, 1.0);  // median ~2.5 ms
  obs::LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.record(v);
  }
  expect_quantiles_within_bound(h.snapshot(), samples, "lognormal");
}

TEST(ObsHistogram, QuantileBoundPointMass) {
  // Degenerate distribution: every quantile is the single recorded value.
  const double v = 0.00375;
  obs::LatencyHistogram h;
  std::vector<double> samples(500, v);
  for (int i = 0; i < 500; ++i) h.record(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  expect_quantiles_within_bound(snap, samples, "point-mass");
  // The top quantile is clamped to the recorded max, not a bucket midpoint.
  EXPECT_NEAR(snap.quantile(100.0), v, 1e-9);
}

TEST(ObsHistogram, EmptySnapshotIsZero) {
  const obs::LatencyHistogram h;
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0U);
  EXPECT_EQ(snap.quantile(50.0), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.max_s, 0.0);
}

// ---------------------------------------------------------------- merge

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> fast(1e-5, 1e-3);
  std::lognormal_distribution<double> slow(-4.0, 0.8);
  obs::LatencyHistogram ha, hb, hc;
  for (int i = 0; i < 3000; ++i) ha.record(fast(rng));
  for (int i = 0; i < 2000; ++i) hb.record(slow(rng));
  for (int i = 0; i < 1000; ++i) hc.record(0.25);
  const obs::HistogramSnapshot a = ha.snapshot();
  const obs::HistogramSnapshot b = hb.snapshot();
  const obs::HistogramSnapshot c = hc.snapshot();

  obs::HistogramSnapshot left = a;   // (a ⊕ b) ⊕ c
  left.merge(b);
  left.merge(c);
  obs::HistogramSnapshot right = b;  // a ⊕ (b ⊕ c), built bc-first
  right.merge(c);
  right.merge(a);

  EXPECT_EQ(left.counts, right.counts);
  EXPECT_EQ(left.count, a.count + b.count + c.count);
  EXPECT_EQ(left.count, right.count);
  EXPECT_DOUBLE_EQ(left.max_s, right.max_s);
  // Sums are floating-point adds, associative only to rounding.
  EXPECT_NEAR(left.sum_s, right.sum_s, 1e-9 * left.sum_s);
  EXPECT_DOUBLE_EQ(left.quantile(95.0), right.quantile(95.0));
}

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, CounterAndGaugeRoundTrip) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("test.hits");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42U);
  // Same name, same counter — the registered address is stable.
  EXPECT_EQ(&reg.counter("test.hits"), &c);
  reg.gauge("test.depth").set(-7);
  EXPECT_EQ(reg.gauge("test.depth").value(), -7);
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("bad name"), std::invalid_argument);
  EXPECT_THROW(reg.counter(std::string(200, 'x')), std::invalid_argument);
}

TEST(ObsRegistry, IntervalDiffYieldsExactRates) {
  // Snapshots are plain data, so the arithmetic can be tested with pinned
  // timestamps instead of racing the wall clock.
  obs::Registry::Snapshot prev, cur;
  prev.t_s = 100.0;
  prev.counters = {{"serve.completed", 100}, {"serve.submitted", 400}};
  cur.t_s = 102.0;
  cur.counters = {{"serve.completed", 150},
                  {"serve.shed.queue_full", 8},
                  {"serve.submitted", 500}};
  cur.gauges = {{"serve.queue_depth", 12}};

  EXPECT_DOUBLE_EQ(obs::Registry::rate(prev, cur, "serve.completed"), 25.0);
  EXPECT_DOUBLE_EQ(obs::Registry::rate(prev, cur, "serve.submitted"), 50.0);
  // Counter absent from prev: the whole value is the delta.
  EXPECT_DOUBLE_EQ(obs::Registry::rate(prev, cur, "serve.shed.queue_full"),
                   4.0);
  EXPECT_DOUBLE_EQ(obs::Registry::rate(prev, cur, "no.such"), 0.0);

  const std::string json = obs::Registry::delta_json(prev, cur);
  EXPECT_NE(json.find("\"interval_s\":2.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve.completed\":25.0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve.submitted\":500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve.queue_depth\":12"), std::string::npos) << json;
}

TEST(ObsRegistry, SnapshotLookupAndKillSwitch) {
  obs::Registry reg;
  reg.counter("a.b").add(3);
  obs::Registry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("a.b"), 3U);
  EXPECT_EQ(snap.counter("missing"), 0U);

  // Master gate: disabled counters drop adds entirely (this is what makes
  // the bench's obs-off baseline a true zero-instrumentation run).
  obs::set_enabled(false);
  reg.counter("a.b").add(100);
  obs::set_enabled(true);
  EXPECT_EQ(reg.counter("a.b").value(), 3U);
  reg.counter("a.b").add(1);
  EXPECT_EQ(reg.counter("a.b").value(), 4U);
}

// ---------------------------------------------------------------- stage stats

TEST(ObsStageStats, ExactModeMatchesNearestRank) {
  ExactModeGuard exact(true);
  serve::StageStats stats;
  std::vector<double> samples;
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(5e-4, 5e-2);
  for (int i = 0; i < 997; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    stats.record(v);
  }
  const serve::StageSummary s = stats.summarize();
  EXPECT_EQ(s.count, samples.size());
  EXPECT_DOUBLE_EQ(s.p50_s, serve::percentile(samples, 50.0));
  EXPECT_DOUBLE_EQ(s.p95_s, serve::percentile(samples, 95.0));
  EXPECT_DOUBLE_EQ(s.p99_s, serve::percentile(samples, 99.0));
}

TEST(ObsStageStats, HistogramModeHonoursBound) {
  ExactModeGuard exact(false);
  serve::StageStats stats;
  std::vector<double> samples;
  std::mt19937 rng(19);
  std::lognormal_distribution<double> dist(-5.0, 0.7);
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    stats.record(v);
  }
  const serve::StageSummary s = stats.summarize();
  EXPECT_EQ(s.count, samples.size());
  const double exact50 = exact_nearest_rank(samples, 50.0);
  const double exact99 = exact_nearest_rank(samples, 99.0);
  EXPECT_NEAR(s.p50_s, exact50, obs::kMaxQuantileRelError * exact50);
  EXPECT_NEAR(s.p99_s, exact99, obs::kMaxQuantileRelError * exact99);
  // Histogram mode keeps NO per-sample state — max still nanosecond-exact.
  double mx = 0.0;
  for (const double v : samples) mx = std::max(mx, v);
  EXPECT_NEAR(s.max_s, mx, 1e-9);
}

// ---------------------------------------------------------------- trace ring

TEST(ObsTrace, WraparoundKeepsNewestSpans) {
  obs::TraceRing ring(8);  // power of two already
  ASSERT_TRUE(ring.enabled());
  EXPECT_EQ(ring.capacity(), 8U);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    ring.record(/*request_id=*/i, obs::SpanKind::kDecode,
                /*start_us=*/static_cast<double>(i) * 10.0,
                /*duration_us=*/5.0, /*aux=*/static_cast<std::uint32_t>(i));
  }
  const std::vector<obs::TraceRing::Span> spans = ring.collect();
  ASSERT_EQ(spans.size(), 8U);
  // The ring overwrote ids 1..12; 13..20 survive, sorted by start time.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].request_id, 13 + i);
    EXPECT_EQ(spans[i].kind, obs::SpanKind::kDecode);
    EXPECT_EQ(spans[i].aux, 13 + i);
    if (i > 0) {
      EXPECT_GE(spans[i].start_us, spans[i - 1].start_us);
    }
  }
}

TEST(ObsTrace, DisabledRingIsInertButStillMintsIds) {
  obs::TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  EXPECT_EQ(ring.capacity(), 0U);
  ring.record(1, obs::SpanKind::kTotal, 0.0, 1.0);  // must not crash
  EXPECT_TRUE(ring.collect().empty());
  const std::uint64_t a = ring.mint_request_id();
  const std::uint64_t b = ring.mint_request_id();
  EXPECT_EQ(a, 1U);
  EXPECT_EQ(b, 2U);
  EXPECT_NE(ring.to_chrome_json().find("\"traceEvents\":[]"),
            std::string::npos);
}

TEST(ObsTrace, ChromeJsonShape) {
  obs::TraceRing ring(16);
  const std::uint64_t id = ring.mint_request_id();
  ring.record(id, obs::SpanKind::kQueueWait, 100.0, 50.0);
  ring.record(id, obs::SpanKind::kReconstruct, 150.0, 80.0, /*aux=*/24);
  const std::string json = ring.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"reconstruct\""), std::string::npos);
  EXPECT_NE(json.find("\"req\":1"), std::string::npos);
  EXPECT_NE(json.find("\"n\":24"), std::string::npos);
}

// ------------------------------------------------------------- concurrency

// TSan targets: concurrent recorders + a racing reader must be data-race
// free, and nothing may be lost once recorders quiesce.
TEST(ObsConcurrency, HistogramRecordSnapshotStress) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  obs::LatencyHistogram h;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::HistogramSnapshot snap = h.snapshot();
      EXPECT_GE(snap.count, last);  // counts only grow
      last = snap.count;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(1e-5 * static_cast<double>(1 + ((i + t) & 1023)));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(h.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsConcurrency, TraceRingRecordCollectStress) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  obs::TraceRing ring(256);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const obs::TraceRing::Span& s : ring.collect()) {
        // A published span is internally consistent even mid-wrap.
        EXPECT_GE(s.request_id, 1U);
        EXPECT_LE(static_cast<int>(s.kind),
                  static_cast<int>(obs::SpanKind::kCacheHit));
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t id = ring.mint_request_id();
        ring.record(id, obs::SpanKind::kTotal,
                    static_cast<double>(id), 1.0);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.collect().size(), 256U);
}

TEST(ObsConcurrency, RegistryConcurrentRegistrationAndAdd) {
  obs::Registry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // All threads race to register the same names, then hammer them.
      obs::Counter& c = reg.counter("stress.shared");
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(reg.counter("stress.shared").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------ perf counters

TEST(ObsPerfCounters, NeverCrashesAndAlwaysReportsLlcMissKey) {
  // Containers and CI runners routinely forbid perf_event_open; the
  // contract is graceful degradation, never an exception or a crash.
  obs::PerfCounters pc;
  pc.start();
  double acc = 0.0;
  for (int i = 0; i < 100000; ++i) acc += static_cast<double>(i) * 1e-9;
  const obs::PerfReading r = pc.stop();
  EXPECT_GT(acc, 0.0);  // keep the loop alive
  const std::string json = r.to_json();
  // The ROADMAP-promised key is present whether counting worked or not.
  EXPECT_NE(json.find("\"llc_miss\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"available\""), std::string::npos) << json;
  if (r.available()) {
    EXPECT_GT(r.cycles, 0U);
    EXPECT_GT(r.instructions, 0U);
  } else {
    EXPECT_NE(json.find("\"unavailable\""), std::string::npos) << json;
  }
  // Scoped form: same no-crash guarantee.
  obs::PerfReading scoped;
  {
    obs::PerfScope scope(pc, scoped);
    acc += 1.0;
  }
  EXPECT_NE(scoped.to_json().find("llc_miss"), std::string::npos);
}

}  // namespace
}  // namespace easz
