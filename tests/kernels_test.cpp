// The kernel layer's contract: the grad-free tensor::kern fast path must
// reproduce the autograd substrate's forward results (same weights, same
// inputs) to <= 1e-5 at every level — raw GEMM, fused row kernels, the nn
// infer methods, the full ReconstructionModel, and the serve runtime's
// cross-request batching (where server responses must stay byte-identical
// to sequential decode). Plus the runtime properties the layer promises:
// steady-state zero allocation and thread-count-independent results.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "core/recon_model.hpp"
#include "data/synth.hpp"
#include "nn/transformer.hpp"
#include "serve/server.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/prng.hpp"

namespace easz {
namespace {

namespace kern = tensor::kern;
using tensor::Shape;
using tensor::Tensor;

// Restores the pool width on scope exit so tests cannot leak a setting.
struct ThreadGuard {
  explicit ThreadGuard(int n) : prev(kern::threads()) { kern::set_threads(n); }
  ~ThreadGuard() { kern::set_threads(prev); }
  int prev;
};

void expect_close(const float* got, const float* want, std::size_t n,
                  float tol = 1e-5F) {
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(got[i], want[i], tol * std::max(1.0F, std::fabs(want[i])))
        << "element " << i;
  }
}

void expect_close(const Tensor& got, const Tensor& want, float tol = 1e-5F) {
  ASSERT_EQ(got.shape(), want.shape());
  expect_close(got.data().data(), want.data().data(), got.numel(), tol);
}

// ---------------------------------------------------------------- gemm

TEST(KernGemm, MatchesAutogradMatmul) {
  util::Pcg32 rng(1);
  const int sizes[][3] = {{1, 1, 1},   {3, 5, 2},   {17, 13, 9},
                          {64, 64, 64}, {33, 7, 65}, {4, 100, 8}};
  for (const auto& s : sizes) {
    const int m = s[0], k = s[1], n = s[2];
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    const Tensor want = tensor::matmul(a, b);
    std::vector<float> got(static_cast<std::size_t>(m) * n);
    kern::gemm(a.data().data(), k, b.data().data(), n, got.data(), n, m, k, n);
    expect_close(got.data(), want.data().data(), got.size());
  }
}

TEST(KernGemm, TransposeBWithScaleMatchesScaledBmm) {
  util::Pcg32 rng(2);
  const int t = 11, hd = 7;
  Tensor q = Tensor::randn({1, t, hd}, rng);
  Tensor k = Tensor::randn({1, t, hd}, rng);
  const Tensor want = tensor::scale(tensor::bmm(q, k, /*transpose_b=*/true),
                                    0.377964F);
  std::vector<float> got(static_cast<std::size_t>(t) * t);
  kern::GemmOpts opts;
  opts.transpose_b = true;
  opts.scale = 0.377964F;
  kern::gemm(q.data().data(), hd, k.data().data(), hd, got.data(), t, t, hd, t,
             opts);
  expect_close(got.data(), want.data().data(), got.size());
}

TEST(KernGemm, FusedBiasGeluMatchesOpChain) {
  util::Pcg32 rng(3);
  const int m = 19, k = 23, n = 31;
  Tensor x = Tensor::randn({m, k}, rng);
  Tensor w = Tensor::randn({k, n}, rng);
  Tensor bias = Tensor::randn({n}, rng);
  const Tensor want =
      tensor::gelu(tensor::add_broadcast(tensor::matmul(x, w), bias));
  std::vector<float> got(static_cast<std::size_t>(m) * n);
  kern::GemmOpts opts;
  opts.bias = bias.data().data();
  opts.gelu = true;
  kern::gemm(x.data().data(), k, w.data().data(), n, got.data(), n, m, k, n,
             opts);
  expect_close(got.data(), want.data().data(), got.size());
}

TEST(KernGemm, StridedViewsMatchPacked) {
  // Strided A/B/C (as the attention path uses on qkv slabs) must equal the
  // packed computation.
  util::Pcg32 rng(4);
  const int m = 9, k = 6, n = 5;
  const std::size_t lda = 13, ldb = 11, ldc = 17;
  std::vector<float> a(m * lda), b(k * ldb), c(m * ldc, -7.0F);
  for (auto& v : a) v = rng.next_gaussian();
  for (auto& v : b) v = rng.next_gaussian();

  Tensor ap({m, k});
  Tensor bp({k, n});
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) ap.data()[i * k + p] = a[i * lda + p];
  }
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) bp.data()[p * n + j] = b[p * ldb + j];
  }
  const Tensor want = tensor::matmul(ap, bp);

  kern::gemm(a.data(), lda, b.data(), ldb, c.data(), ldc, m, k, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      // 1e-5 contract, not bitwise: the dispatched kernel may fuse
      // multiply-add where the autograd loop rounds twice.
      ASSERT_NEAR(c[i * ldc + j], want.data()[i * n + j], 1e-5F);
    }
    // Padding between rows untouched.
    for (std::size_t j = n; j < ldc; ++j) ASSERT_FLOAT_EQ(c[i * ldc + j], -7.0F);
  }
}

TEST(KernGemm, ParallelMatchesSerialExactly) {
  // Panel splitting only changes which lane computes a row, not the
  // arithmetic, so results are identical whatever the pool width.
  util::Pcg32 rng(5);
  const int m = 96, k = 64, n = 80;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  std::vector<float> serial(static_cast<std::size_t>(m) * n);
  std::vector<float> parallel(serial.size());
  {
    ThreadGuard tg(1);
    kern::gemm(a.data().data(), k, b.data().data(), n, serial.data(), n, m, k,
               n);
  }
  {
    ThreadGuard tg(4);
    kern::gemm(a.data().data(), k, b.data().data(), n, parallel.data(), n, m,
               k, n);
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FLOAT_EQ(serial[i], parallel[i]) << "element " << i;
  }
}

// ---------------------------------------------------------------- row kernels

TEST(KernRows, SoftmaxMatchesAutograd) {
  util::Pcg32 rng(6);
  Tensor x = Tensor::randn({7, 33}, rng, 3.0F);
  const Tensor want = tensor::softmax(x);
  std::vector<float> got(x.data());
  kern::softmax_rows(got.data(), 7, 33);
  expect_close(got.data(), want.data().data(), got.size());
}

TEST(KernRows, LayernormMatchesAutograd) {
  util::Pcg32 rng(7);
  Tensor x = Tensor::randn({9, 24}, rng, 2.0F);
  Tensor gamma = Tensor::randn({24}, rng);
  Tensor beta = Tensor::randn({24}, rng);
  const Tensor want = tensor::layernorm(x, gamma, beta);
  std::vector<float> got(x.numel());
  kern::layernorm_rows(x.data().data(), gamma.data().data(),
                       beta.data().data(), got.data(), 9, 24);
  expect_close(got.data(), want.data().data(), got.size());
}

// ---------------------------------------------------------------- pool

TEST(KernPool, ParallelForCoversEveryIndexOnce) {
  ThreadGuard tg(4);
  constexpr int kCount = 1337;
  std::vector<std::atomic<int>> hits(kCount);
  kern::parallel_for(kCount, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(KernPool, ReentrantAcrossCallerThreads) {
  // Several threads fan out jobs concurrently (as server workers do); every
  // job must complete with every index visited exactly once.
  ThreadGuard tg(3);
  constexpr int kCallers = 4;
  constexpr int kCount = 500;
  std::vector<std::thread> callers;
  std::vector<std::atomic<int>> sums(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 5; ++round) {
        std::atomic<int> local{0};
        kern::parallel_for(kCount,
                           [&](int i) { local.fetch_add(i + 1); });
        sums[c].fetch_add(local.load());
      }
    });
  }
  for (std::thread& t : callers) t.join();
  const int per_round = kCount * (kCount + 1) / 2;
  for (int c = 0; c < kCallers; ++c) ASSERT_EQ(sums[c].load(), 5 * per_round);
}

TEST(KernPool, SetThreadsClampsAndReports) {
  ThreadGuard tg(2);
  EXPECT_EQ(kern::threads(), 2);
  kern::set_threads(0);
  EXPECT_EQ(kern::threads(), 1);
  kern::set_threads(3);
  EXPECT_EQ(kern::threads(), 3);
}

// ---------------------------------------------------------------- workspace

TEST(KernWorkspace, SteadyStateStopsGrowing) {
  kern::Workspace ws;
  const auto run = [&ws] {
    ws.reset();
    float* a = ws.alloc(1000);
    float* b = ws.alloc(50000);
    float* c = ws.alloc(7);
    a[0] = b[0] = c[0] = 1.0F;  // touch
  };
  run();
  const std::size_t warm = ws.grow_count();
  for (int i = 0; i < 10; ++i) run();
  EXPECT_EQ(ws.grow_count(), warm);
}

TEST(KernWorkspace, PointersStableUntilReset) {
  kern::Workspace ws;
  float* a = ws.alloc(100);
  a[99] = 42.0F;
  // A growth into a new block must not move the old one.
  float* b = ws.alloc(1U << 20);
  b[0] = 1.0F;
  EXPECT_FLOAT_EQ(a[99], 42.0F);
}

// ---------------------------------------------------------------- nn infer

TEST(InferNn, LinearMatchesForward) {
  util::Pcg32 rng(8);
  nn::Linear fc(13, 21, rng);
  Tensor x = Tensor::randn({5, 13}, rng);
  const Tensor want = fc.forward(x);
  std::vector<float> got(5 * 21);
  fc.infer(x.data().data(), got.data(), 5);
  expect_close(got.data(), want.data().data(), got.size());
}

TEST(InferNn, MhaMatchesForward) {
  util::Pcg32 rng(9);
  nn::MultiHeadAttention mha(16, 4, rng);
  Tensor x = Tensor::randn({2, 9, 16}, rng);
  const Tensor want = mha.forward(x);
  kern::Workspace ws;
  std::vector<float> got(x.numel());
  mha.infer(x.data().data(), got.data(), 2, 9, ws);
  expect_close(got.data(), want.data().data(), got.size());
}

TEST(InferNn, FeedForwardMatchesForward) {
  util::Pcg32 rng(10);
  nn::FeedForward ffn(12, 29, rng);
  Tensor x = Tensor::randn({2, 6, 12}, rng);
  const Tensor want = ffn.forward(x);
  kern::Workspace ws;
  std::vector<float> got(x.numel());
  ffn.infer(x.data().data(), got.data(), 12, ws);
  expect_close(got.data(), want.data().data(), got.size());
}

TEST(InferNn, TransformerBlockMatchesForward) {
  util::Pcg32 rng(11);
  nn::TransformerBlock block(16, 2, 40, rng);
  Tensor x = Tensor::randn({3, 7, 16}, rng);
  const Tensor want = block.forward(x);
  kern::Workspace ws;
  std::vector<float> got(x.numel());
  block.infer(x.data().data(), got.data(), 3, 7, ws);
  expect_close(got.data(), want.data().data(), got.size());
}

// ---------------------------------------------------------------- model

core::ReconModelConfig small_model_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 8, .sub_patch = 2};  // N = 4 grid, 16 tokens
  cfg.channels = 3;
  cfg.d_model = 16;
  cfg.num_heads = 4;
  cfg.ffn_hidden = 36;
  return cfg;
}

TEST(InferModel, MatchesAutogradForwardOnRandomWeights) {
  util::Pcg32 rng(12);
  const core::ReconModelConfig cfg = small_model_config();
  const core::ReconstructionModel model(cfg, rng);
  const int total = cfg.patchify.tokens();
  const int token_dim = cfg.patchify.token_dim(cfg.channels);

  for (const int erased : {1, 2}) {
    util::Pcg32 mask_rng(33 + erased);
    const core::EraseMask mask = core::make_row_conditional_mask(
        cfg.patchify.grid(), erased, mask_rng);
    for (const int batch : {1, 3}) {
      Tensor tokens = Tensor::randn({batch, total, token_dim}, rng);
      const Tensor want = model.forward(tokens, mask);
      const Tensor got = model.infer(tokens, mask);
      expect_close(got, want);
    }
  }
}

TEST(InferModel, ResultIndependentOfKernelThreadCount) {
  util::Pcg32 rng(13);
  const core::ReconModelConfig cfg = small_model_config();
  const core::ReconstructionModel model(cfg, rng);
  util::Pcg32 mask_rng(5);
  const core::EraseMask mask =
      core::make_row_conditional_mask(cfg.patchify.grid(), 1, mask_rng);
  Tensor tokens = Tensor::randn(
      {4, cfg.patchify.tokens(), cfg.patchify.token_dim(cfg.channels)}, rng);
  Tensor serial, parallel;
  {
    ThreadGuard tg(1);
    serial = model.infer(tokens, mask);
  }
  {
    ThreadGuard tg(4);
    parallel = model.infer(tokens, mask);
  }
  ASSERT_EQ(serial.numel(), parallel.numel());
  for (std::size_t i = 0; i < serial.numel(); ++i) {
    ASSERT_FLOAT_EQ(serial.data()[i], parallel.data()[i]) << i;
  }
}

TEST(InferModel, SteadyStateForwardAllocatesNothing) {
  util::Pcg32 rng(14);
  const core::ReconModelConfig cfg = small_model_config();
  const core::ReconstructionModel model(cfg, rng);
  util::Pcg32 mask_rng(6);
  const core::EraseMask mask =
      core::make_row_conditional_mask(cfg.patchify.grid(), 1, mask_rng);
  Tensor tokens = Tensor::randn(
      {2, cfg.patchify.tokens(), cfg.patchify.token_dim(cfg.channels)}, rng);
  (void)model.infer(tokens, mask);  // warm the arena
  const std::size_t warm = kern::Workspace::for_this_thread().grow_count();
  for (int i = 0; i < 5; ++i) (void)model.infer(tokens, mask);
  EXPECT_EQ(kern::Workspace::for_this_thread().grow_count(), warm);
}

TEST(InferModel, ReconstructMatchesAutogradReference) {
  // reconstruct() now rides the kernel path; it must still equal the
  // autograd forward + paste-through + clamp it used to be built from.
  util::Pcg32 rng(15);
  const core::ReconModelConfig cfg = small_model_config();
  const core::ReconstructionModel model(cfg, rng);
  const int total = cfg.patchify.tokens();
  const int token_dim = cfg.patchify.token_dim(cfg.channels);
  util::Pcg32 mask_rng(7);
  const core::EraseMask mask =
      core::make_row_conditional_mask(cfg.patchify.grid(), 2, mask_rng);
  const int batch = 2;
  Tensor tokens = Tensor::randn({batch, total, token_dim}, rng, 0.4F);

  Tensor ref = model.forward(tokens, mask).detach();
  const std::vector<int> kept = mask.kept_indices();
  for (int b = 0; b < batch; ++b) {
    for (const int j : kept) {
      const std::size_t off =
          (static_cast<std::size_t>(b) * total + j) * token_dim;
      for (int d = 0; d < token_dim; ++d) {
        ref.data()[off + d] = tokens.data()[off + d];
      }
    }
  }
  for (auto& v : ref.data()) v = std::min(1.0F, std::max(0.0F, v));

  const Tensor got = model.reconstruct(tokens, mask);
  expect_close(got, ref);
}

// ---------------------------------------------------------------- serve

TEST(InferServe, CrossRequestBatchingMatchesAutogradPath) {
  // The acceptance bar: under the serve runtime's cross-request batching,
  // responses must stay byte-identical to sequential kernel decode and
  // within 1e-5 of the pure-autograd reference path.
  core::ReconModelConfig mcfg;
  mcfg.patchify = {.patch = 16, .sub_patch = 4};
  mcfg.channels = 3;
  mcfg.d_model = 32;
  mcfg.num_heads = 2;
  mcfg.ffn_hidden = 64;
  util::Pcg32 rng(91);
  const core::ReconstructionModel model(mcfg, rng);
  codec::JpegLikeCodec jpeg(85);

  const auto edge_config = [&](int erased) {
    core::EaszConfig cfg;
    cfg.patchify = mcfg.patchify;
    cfg.erased_per_row = erased;
    cfg.axis = core::SqueezeAxis::kHorizontal;
    cfg.mask_seed = 7;
    return cfg;
  };

  constexpr int kRequests = 6;
  std::vector<serve::ServeRequest> requests;
  std::vector<image::Image> kernel_reference;    // sequential decode
  std::vector<image::Image> autograd_reference;  // autograd forward path
  for (int i = 0; i < kRequests; ++i) {
    util::Pcg32 img_rng(1000 + i);
    const image::Image img =
        data::synth_photo(35 + 8 * i, 21 + 5 * i, img_rng);
    const core::EaszConfig cfg = edge_config(1);  // one mask: forces pooling
    const core::EaszPipeline edge(cfg, jpeg, nullptr);
    serve::ServeRequest r;
    r.compressed = edge.encode(img);
    r.codec = "jpeg";

    const core::EaszPipeline server_pipeline(cfg, jpeg, &model);
    kernel_reference.push_back(server_pipeline.decode(r.compressed));

    // Autograd reference: decode_tokens -> model.forward (training path)
    // -> paste-through -> clamp -> assemble.
    const core::DecodedTokens d = server_pipeline.decode_tokens(r.compressed);
    Tensor pred = model.forward(d.tokens, d.recon_mask).detach();
    const int total = mcfg.patchify.tokens();
    const int token_dim = mcfg.patchify.token_dim(mcfg.channels);
    const std::vector<int> kept = d.recon_mask.kept_indices();
    for (int b = 0; b < d.tokens.dim(0); ++b) {
      for (const int j : kept) {
        const std::size_t off =
            (static_cast<std::size_t>(b) * total + j) * token_dim;
        for (int dd = 0; dd < token_dim; ++dd) {
          pred.data()[off + dd] = d.tokens.data()[off + dd];
        }
      }
    }
    for (auto& v : pred.data()) v = std::min(1.0F, std::max(0.0F, v));
    autograd_reference.push_back(
        core::EaszPipeline::assemble_decoded(d, pred, mcfg.patchify));

    requests.push_back(std::move(r));
  }

  // The server resizes the process-global pool; restore it even if an
  // assertion below returns early.
  ThreadGuard tg(kern::threads());
  serve::ServerConfig scfg;
  scfg.workers = 3;
  scfg.max_batch_patches = 4;  // smaller than most requests: forces splits
  scfg.kernel_threads = 2;
  scfg.cache_bytes = 0;
  serve::ReconServer server(scfg, model);
  server.register_codec("jpeg", &jpeg);

  std::vector<std::future<serve::ServeResponse>> futures;
  for (serve::ServeRequest& r : requests) {
    serve::SubmitResult res = server.submit(r);
    ASSERT_TRUE(res.accepted);
    futures.push_back(std::move(res.response));
  }

  for (int i = 0; i < kRequests; ++i) {
    const serve::ServeResponse resp = futures[static_cast<std::size_t>(i)].get();
    ASSERT_NE(resp.image, nullptr);
    const image::Image& got = *resp.image;
    ASSERT_EQ(got.width(), kernel_reference[i].width());
    ASSERT_EQ(got.height(), kernel_reference[i].height());
    // Byte-identical to the sequential kernel decode.
    EXPECT_EQ(got.data(), kernel_reference[i].data()) << "request " << i;
    // Within 1e-5 of the autograd path.
    ASSERT_EQ(got.data().size(), autograd_reference[i].data().size());
    expect_close(got.data().data(), autograd_reference[i].data().data(),
                 got.data().size());
  }

  const serve::ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.failed, 0U);
  EXPECT_GT(s.batches, 0U);
  EXPECT_EQ(s.kernel_threads, 2);
}

}  // namespace
}  // namespace easz
