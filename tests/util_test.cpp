#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/prng.hpp"
#include "util/table.hpp"

namespace easz::util {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42, 7);
  Pcg32 b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentSeedsProduceDifferentStreams) {
  Pcg32 a(42, 7);
  Pcg32 b(43, 7);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Pcg32, NextBelowStaysInRange) {
  Pcg32 rng(1);
  for (std::uint32_t bound : {1U, 2U, 3U, 10U, 255U, 1000000U}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Pcg32, NextIntInclusiveBounds) {
  Pcg32 rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, FloatInUnitInterval) {
  Pcg32 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const float v = rng.next_float();
    EXPECT_GE(v, 0.0F);
    EXPECT_LT(v, 1.0F);
  }
}

TEST(Pcg32, FloatMeanNearHalf) {
  Pcg32 rng(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_float();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, GaussianMomentsLookStandard) {
  Pcg32 rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Pcg32, ShuffleIsPermutation) {
  Pcg32 rng(6);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), orig.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Pcg32, SplitStreamsAreIndependent) {
  Pcg32 parent(7);
  Pcg32 child = parent.split();
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (parent.next_u32() == child.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 2.5   |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("| only |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 3), "2.000");
}

}  // namespace
}  // namespace easz::util
