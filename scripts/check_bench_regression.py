#!/usr/bin/env python3
"""Forward-throughput regression gate for the release-bench CI job.

Compares a fresh bench_infer JSON report against the checked-in baseline
(bench/baseline_infer.json) and fails when any gated metric drops more
than `tolerance` (default 15%) below its baseline value.

The gated metrics are same-machine RATIOS (kernel/autograd, int8/fp32):
absolute GFLOP/s numbers differ several-fold between CI runner SKUs and
would make any absolute gate either useless or flaky, while a ratio of
two measurements taken back to back on the same core cancels the machine
out. See bench/baseline_infer.json for how baseline values were chosen.

Usage: check_bench_regression.py <current.json> <baseline.json>
Exit code 0 = pass, 1 = regression, 2 = malformed input.
"""
import json
import sys


def match_entry(entries, baseline_entry, keys):
    """Finds the report entry matching a baseline entry on `keys`."""
    for entry in entries:
        if all(entry.get(k) == baseline_entry.get(k) for k in keys):
            return entry
    return None


# section name -> (identity keys, gated metric)
# A (current, baseline) pair only gates the sections its baseline lists, so
# the same script serves bench_infer (baseline_infer.json) and bench_serve
# (baseline_serve.json) reports — CI invokes it once per pair.
GATES = {
    "forward": (("config",), "kernel_vs_autograd_t1"),
    "forward_int8": (("config",), "int8_vs_fp32_t1"),
    "gemm_int8": (("m", "k", "n"), "int8_vs_fp32"),
    "serve": (("scenario",), "pipelined_vs_unpipelined"),
}


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        current = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)

    tolerance = float(baseline.get("tolerance", 0.15))
    failures = []
    checked = 0
    for section, (keys, metric) in GATES.items():
        for base_entry in baseline.get(section, []):
            ident = "/".join(str(base_entry[k]) for k in keys)
            entry = match_entry(current.get(section, []), base_entry, keys)
            if entry is None or metric not in entry:
                failures.append(
                    f"{section}[{ident}]: metric {metric} missing from report "
                    "(did the bench schema change without updating the "
                    "baseline?)")
                continue
            want = float(base_entry[metric])
            got = float(entry[metric])
            floor = want * (1.0 - tolerance)
            verdict = "OK" if got >= floor else "REGRESSION"
            checked += 1
            print(f"{section}[{ident}].{metric}: {got:.3f} "
                  f"(baseline {want:.3f}, floor {floor:.3f}) {verdict}")
            if got < floor:
                failures.append(
                    f"{section}[{ident}].{metric} = {got:.3f} fell below "
                    f"{floor:.3f} ({tolerance:.0%} under baseline {want:.3f})")

    if checked == 0:
        failures.append("baseline gated no metrics at all")
    if failures:
        print("\nbench regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nbench regression gate passed ({checked} metrics).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
