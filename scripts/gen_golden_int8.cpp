// Dev-time generator for tests/golden_int8.inc (see quant_test.cpp).
// Reproduces the exact construction GoldenInt8.* tests perform, and emits
// the expected bytes as a checked-in header.
#include <cstdio>
#include <cstring>
#include <vector>

#include "nn/module.hpp"
#include "util/prng.hpp"

using namespace easz;

int main() {
  util::Pcg32 wrng(77);
  nn::Linear lin(32, 24, wrng);
  lin.build_quant(1.75F);
  const nn::Linear::QuantState& q = lin.quant();

  util::Pcg32 xrng(88);
  std::vector<float> x(8 * 32);
  for (auto& v : x) v = xrng.next_float() * 4.0F - 2.0F;

  std::vector<float> y_plain(8 * 24), y_gelu(8 * 24);
  lin.infer_q(x.data(), y_plain.data(), 8, /*fuse_gelu=*/false);
  lin.infer_q(x.data(), y_gelu.data(), 8, /*fuse_gelu=*/true);

  std::printf(
      "// Golden int8 artefacts for tests/quant_test.cpp (GoldenInt8.*).\n"
      "// Generated from the fixed-seed construction documented there; the\n"
      "// int8 path's output is pinned BIT-FOR-BIT, so any epilogue or\n"
      "// quantizer refactor that moves a single mantissa bit fails loudly\n"
      "// instead of drifting silently. Regenerate only for an intentional\n"
      "// format change (see the test comment for the recipe).\n");

  std::printf("[[maybe_unused]] constexpr unsigned char kGoldenWq[] = {\n");
  for (std::size_t i = 0; i < q.w_q.size(); ++i) {
    if (i % 16 == 0) std::printf("    ");
    std::printf("0x%02X,", static_cast<unsigned char>(q.w_q[i]));
    if (i % 16 == 15) std::printf("\n");
  }
  std::printf("\n};\n");

  const auto dump_u32 = [](const char* name, const float* v, std::size_t n) {
    std::printf("[[maybe_unused]] constexpr unsigned int %s[] = {\n", name);
    for (std::size_t i = 0; i < n; ++i) {
      unsigned int bits = 0;
      std::memcpy(&bits, v + i, 4);
      if (i % 6 == 0) std::printf("    ");
      std::printf("0x%08X,", bits);
      if (i % 6 == 5) std::printf("\n");
    }
    std::printf("\n};\n");
  };
  dump_u32("kGoldenWScaleBits", q.w_scale.data(), q.w_scale.size());
  dump_u32("kGoldenOutPlainBits", y_plain.data(), y_plain.size());
  dump_u32("kGoldenOutGeluBits", y_gelu.data(), y_gelu.size());
  return 0;
}
