// Quickstart: compress an image with Easz end to end.
//
//   1. Build (or load) a reconstruction model.
//   2. Wrap any codec (JPEG-style here) in an EaszPipeline.
//   3. encode() on the "edge", decode() on the "server".
//
// Run from the repository root:
//   ./build/examples/quickstart [output_dir]
// Writes original / squeezed / reconstructed PNM images you can open with
// any viewer, and prints rate/quality numbers.
#include <cstdio>
#include <string>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "data/datasets.hpp"
#include "image/io_ppm.hpp"
#include "metrics/distortion.hpp"
#include "nn/serialize.hpp"

int main(int argc, char** argv) {
  using namespace easz;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. Reconstruction model: load the pretrained checkpoint when available,
  //    otherwise train briefly so the example stays self-contained.
  core::ReconModelConfig model_cfg;
  model_cfg.patchify = {.patch = 16, .sub_patch = 2};
  model_cfg.d_model = 64;
  model_cfg.num_heads = 4;
  model_cfg.ffn_hidden = 128;
  util::Pcg32 rng(11);
  core::ReconstructionModel model(model_cfg, rng);
  bool loaded = false;
  for (const char* path : {"assets/recon_p16_b2_d64.ckpt",
                           "../assets/recon_p16_b2_d64.ckpt"}) {
    try {
      auto params = model.parameters();
      nn::load_parameters(params, path);
      std::printf("loaded pretrained model from %s\n", path);
      loaded = true;
      break;
    } catch (const std::exception&) {
    }
  }
  if (!loaded) {
    std::printf("no checkpoint found; quick-training a small model...\n");
    core::TrainerConfig tcfg;
    tcfg.batch_patches = 8;
    tcfg.use_perceptual = false;
    core::Trainer trainer(model, tcfg, rng);
    std::vector<image::Image> corpus;
    util::Pcg32 data_rng(7);
    for (int i = 0; i < 8; ++i) {
      corpus.push_back(data::load_image(data::cifar_like_spec(), i));
    }
    trainer.train(corpus, 150);
  }

  // 2. Pipeline: erase 25 % of sub-patches, compress the squeezed image
  //    with the JPEG-style codec.
  codec::JpegLikeCodec jpeg(70);
  core::EaszConfig cfg;
  cfg.patchify = model_cfg.patchify;
  cfg.erased_per_row = 2;  // T = 2 of grid 8 -> 25 %
  core::EaszPipeline pipeline(cfg, jpeg, &model);

  // 3. Round trip on a Kodak-like test image.
  const data::DatasetSpec spec = data::kodak_like_spec(0.35F);
  const image::Image original = data::load_image(spec, 0);
  const core::EaszCompressed compressed = pipeline.encode(original);
  const image::Image reconstructed = pipeline.decode(compressed);

  const codec::Compressed plain = jpeg.encode(original);
  std::printf("image: %dx%d\n", original.width(), original.height());
  std::printf("plain JPEG:  %6zu bytes (%.3f bpp)\n", plain.bytes.size(),
              plain.bpp());
  std::printf("Easz (+25%% erase): %6zu bytes (%.3f bpp), mask %zu bytes\n",
              compressed.size_bytes(), compressed.bpp(),
              compressed.mask_bytes.size());
  std::printf("reconstruction: PSNR %.2f dB, SSIM %.3f\n",
              metrics::psnr(original, reconstructed),
              metrics::ssim(original, reconstructed));

  image::write_pnm(original, out_dir + "/quickstart_original.ppm");
  image::write_pnm(jpeg.decode(compressed.payload),
                   out_dir + "/quickstart_squeezed.ppm");
  image::write_pnm(reconstructed, out_dir + "/quickstart_reconstructed.ppm");
  std::printf("wrote quickstart_{original,squeezed,reconstructed}.ppm to %s\n",
              out_dir.c_str());
  return 0;
}
