// Adaptive compression under a changing bandwidth budget — the paper's
// agility claim in action. A single reconstruction model serves every erase
// ratio, so the edge can retarget its rate every frame by changing T (and
// the codec quality), with zero model switching.
//
// Contrast: an NN codec must load a different network per rate point
// (~0.3-11.6 s per switch on a TX2, paper Fig. 1).
//
// Run: ./build/examples/adaptive_rate
#include <cstdio>
#include <vector>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "data/datasets.hpp"
#include "metrics/distortion.hpp"
#include "util/table.hpp"

int main() {
  using namespace easz;
  std::printf(
      "Adaptive rate control: one model, many erase ratios\n"
      "(bandwidth drops mid-session; the edge adapts T per frame)\n\n");

  // One shared model for all ratios, trained across the whole ratio range.
  core::ReconModelConfig model_cfg;
  model_cfg.patchify = {.patch = 16, .sub_patch = 2};
  model_cfg.d_model = 64;
  model_cfg.num_heads = 4;
  model_cfg.ffn_hidden = 128;
  util::Pcg32 rng(31);
  core::ReconstructionModel model(model_cfg, rng);
  {
    core::TrainerConfig tcfg;
    tcfg.batch_patches = 8;
    tcfg.use_perceptual = false;
    tcfg.min_erase_ratio = 0.1F;
    tcfg.max_erase_ratio = 0.5F;
    core::Trainer trainer(model, tcfg, rng);
    std::vector<image::Image> corpus;
    util::Pcg32 data_rng(32);
    for (int i = 0; i < 8; ++i) {
      corpus.push_back(data::load_image(data::cifar_like_spec(), i));
    }
    trainer.train(corpus, 150);
  }

  codec::JpegLikeCodec jpeg(70);
  const data::DatasetSpec camera = data::kodak_like_spec(0.3F);
  const image::Image img = data::load_image(camera, 1);

  // Simulated bandwidth schedule (kB budget per frame) -> chosen T.
  struct FramePlan {
    double budget_kb;
    int erased_per_row;  // edge's response: more erasure when starved
    int jpeg_quality;
  };
  const std::vector<FramePlan> schedule = {
      {60.0, 0, 80}, {45.0, 1, 75}, {25.0, 2, 60}, {12.0, 4, 45}, {30.0, 2, 70},
  };

  util::Table t({"frame", "budget kB", "erase T (ratio)", "jpeg q",
                 "sent kB", "PSNR dB"});
  for (std::size_t f = 0; f < schedule.size(); ++f) {
    const FramePlan& plan = schedule[f];
    jpeg.set_quality(plan.jpeg_quality);
    core::EaszConfig cfg;
    cfg.patchify = model_cfg.patchify;
    cfg.erased_per_row = plan.erased_per_row;
    // Same model instance serves every ratio — the point of the exercise.
    core::EaszPipeline pipeline(cfg, jpeg, &model);
    const core::EaszCompressed c = pipeline.encode(img);
    const image::Image decoded = pipeline.decode(c);
    t.add_row({std::to_string(f), util::Table::num(plan.budget_kb, 0),
               std::to_string(plan.erased_per_row) + " (" +
                   util::Table::num(plan.erased_per_row / 8.0 * 100, 1) + " %)",
               std::to_string(plan.jpeg_quality),
               util::Table::num(c.size_bytes() / 1000.0, 1),
               util::Table::num(metrics::psnr(img, decoded), 2)});
  }
  t.print();
  std::printf(
      "\nEvery rate switch was instant: no model reload, no re-init —\n"
      "only the mask (and codec quality) changed between frames.\n");
  return 0;
}
