// Shared helper for the example programs: build the canonical p16/b2/d64
// reconstruction model, loading the pretrained checkpoint when present
// (tools/easz_pretrain) and quick-training otherwise so every example stays
// runnable out of the box.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "core/recon_model.hpp"
#include "core/trainer.hpp"
#include "data/datasets.hpp"
#include "nn/serialize.hpp"

namespace easz::examples {

inline core::ReconModelConfig canonical_model_config() {
  core::ReconModelConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 2};
  cfg.channels = 3;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.ffn_hidden = 128;
  return cfg;
}

inline std::unique_ptr<core::ReconstructionModel> load_or_train_model(
    std::uint64_t seed = 11, int fallback_steps = 150) {
  util::Pcg32 rng(seed);
  auto model =
      std::make_unique<core::ReconstructionModel>(canonical_model_config(), rng);
  for (const char* path : {"assets/recon_p16_b2_d64.ckpt",
                           "../assets/recon_p16_b2_d64.ckpt"}) {
    try {
      auto params = model->parameters();
      nn::load_parameters(params, path);
      std::printf("[example] loaded pretrained model from %s\n", path);
      return model;
    } catch (const std::exception&) {
    }
  }
  std::printf("[example] no checkpoint found; quick-training (%d steps)...\n",
              fallback_steps);
  core::TrainerConfig tcfg;
  tcfg.batch_patches = 8;
  tcfg.use_perceptual = false;
  core::Trainer trainer(*model, tcfg, rng);
  std::vector<image::Image> corpus;
  util::Pcg32 data_rng(seed ^ 0xFEED);
  for (int i = 0; i < 8; ++i) {
    corpus.push_back(data::load_image(data::cifar_like_spec(), i));
  }
  trainer.train(corpus, fallback_steps);
  return model;
}

}  // namespace easz::examples
