// Easz as a drop-in enhancement layer for existing codecs (paper §IV-E):
// the same pipeline object wraps JPEG-style, BPG-style and a neural codec,
// showing the "compatible with all existing compression algorithms" claim.
//
// Run: ./build/examples/codec_enhancement
#include <cstdio>
#include <memory>

#include "codec/bpg_like.hpp"
#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "examples/example_util.hpp"
#include "core/trainer.hpp"
#include "data/datasets.hpp"
#include "metrics/distortion.hpp"
#include "neural_codec/conv_autoencoder.hpp"
#include "util/table.hpp"

int main() {
  using namespace easz;
  std::printf("Easz wrapping three codec families with one model\n\n");

  auto model_ptr = examples::load_or_train_model(41);
  core::ReconstructionModel& model = *model_ptr;
  const core::ReconModelConfig& model_cfg = model.config();

  codec::JpegLikeCodec jpeg(60);
  codec::BpgLikeCodec bpg(15);
  neural_codec::ConvAutoencoderCodec mbt(neural_codec::mbt_lite_spec(), 55, 43);
  mbt.pretrain(40);

  const data::DatasetSpec spec = data::kodak_like_spec(0.25F);
  const image::Image img = data::load_image(spec, 5);

  util::Table t({"base codec", "plain bytes", "plain PSNR", "+Easz bytes",
                 "+Easz PSNR"});
  for (codec::ImageCodec* codec :
       std::initializer_list<codec::ImageCodec*>{&jpeg, &bpg, &mbt}) {
    const codec::Compressed plain = codec->encode(img);
    const double plain_psnr = metrics::psnr(img, codec->decode(plain));

    core::EaszConfig cfg;
    cfg.patchify = model_cfg.patchify;
    cfg.erased_per_row = 2;
    core::EaszPipeline pipeline(cfg, *codec, &model);
    const core::EaszCompressed c = pipeline.encode(img);
    const double easz_psnr = metrics::psnr(img, pipeline.decode(c));

    t.add_row({codec->name(), std::to_string(plain.bytes.size()),
               util::Table::num(plain_psnr, 2),
               std::to_string(c.size_bytes()),
               util::Table::num(easz_psnr, 2)});
  }
  t.print();
  std::printf(
      "\nThe pipeline only needs the ImageCodec interface — any present or\n"
      "future codec slots in; the erase-and-squeeze stage and the server\n"
      "model are unchanged.\n");
  return 0;
}
