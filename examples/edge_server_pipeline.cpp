// Edge-server deployment walkthrough (the paper's wildlife-camera /
// industrial-inspection scenario): an IoT camera captures frames, the edge
// runs only erase-and-squeeze + JPEG, and the server decodes + reconstructs.
// The testbed prices every stage on a Jetson TX2 -> Wi-Fi -> 2080Ti path and
// compares against shipping the frames through a neural codec on the edge.
//
// Run: ./build/examples/edge_server_pipeline
#include <cstdio>

#include "codec/jpeg_like.hpp"
#include "core/pipeline.hpp"
#include "examples/example_util.hpp"
#include "data/datasets.hpp"
#include "metrics/distortion.hpp"
#include "neural_codec/conv_autoencoder.hpp"
#include "testbed/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace easz;
  std::printf("Edge-server deployment: 3-frame burst from a field camera\n\n");

  // Edge-side setup: codec + pipeline, NO model (reconstruction lives on
  // the server; the edge never loads learned weights).
  codec::JpegLikeCodec jpeg(65);
  core::EaszConfig cfg;
  cfg.patchify = {.patch = 16, .sub_patch = 2};
  cfg.erased_per_row = 2;
  core::EaszPipeline edge_pipeline(cfg, jpeg, nullptr);

  // Server-side setup: the reconstruction model (pretrained checkpoint when
  // available).
  auto model_ptr = examples::load_or_train_model(21);
  core::ReconstructionModel& model = *model_ptr;
  core::EaszPipeline server_pipeline(cfg, jpeg, &model);

  const testbed::Scenario scenario = testbed::paper_testbed();
  neural_codec::ConvAutoencoderCodec mbt(neural_codec::mbt_lite_spec(), 50, 22);

  const data::DatasetSpec camera = data::kodak_like_spec(0.3F);
  util::Table t({"frame", "payload B", "bpp", "edge ms (Easz)",
                 "edge ms (MBT)", "e2e ms (Easz)", "e2e ms (MBT)"});
  for (int frame = 0; frame < 3; ++frame) {
    const image::Image img = data::load_image(camera, frame);
    const core::EaszCompressed c = edge_pipeline.encode(img);

    const testbed::PipelineCost easz_cost = scenario.run_easz(
        jpeg, model, img.width(), img.height(), cfg.erased_per_row,
        static_cast<double>(c.size_bytes()));
    // The MBT arm ships its own bitstream, so its transmit cost must be
    // priced with the neural codec's compressed size, not Easz's payload.
    const double mbt_bytes =
        static_cast<double>(mbt.encode(img).bytes.size());
    const testbed::PipelineCost mbt_cost =
        scenario.run_codec(mbt, img.width(), img.height(), mbt_bytes);

    t.add_row({std::to_string(frame), std::to_string(c.size_bytes()),
               util::Table::num(c.bpp(), 3),
               util::Table::num((easz_cost.latency.erase_squeeze_s +
                                 easz_cost.latency.encode_s) * 1e3, 1),
               util::Table::num(mbt_cost.latency.encode_s * 1e3, 0),
               util::Table::num(easz_cost.latency.end_to_end_s() * 1e3, 0),
               util::Table::num(mbt_cost.latency.end_to_end_s() * 1e3, 0)});
  }
  t.print();

  // Server decodes the final frame to confirm fidelity end to end.
  const image::Image img = data::load_image(camera, 2);
  const core::EaszCompressed c = edge_pipeline.encode(img);
  const image::Image decoded = server_pipeline.decode(c);
  std::printf("\nserver reconstruction of frame 2: PSNR %.2f dB\n",
              metrics::psnr(img, decoded));
  std::printf(
      "Takeaway: the edge spends milliseconds (memory movement + JPEG)\n"
      "instead of the tens of seconds a neural encoder would cost there.\n");
  return 0;
}
