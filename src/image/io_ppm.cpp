#include "image/io_ppm.hpp"

#include <fstream>
#include <stdexcept>
#include <vector>

namespace easz::image {
namespace {

void skip_whitespace_and_comments(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c) != 0) {
      in.get();
    } else {
      return;
    }
  }
}

int read_header_int(std::istream& in) {
  skip_whitespace_and_comments(in);
  int value = 0;
  if (!(in >> value)) throw std::runtime_error("pnm: malformed header int");
  return value;
}

}  // namespace

void write_pnm(const Image& img, const std::string& path) {
  if (img.empty()) throw std::runtime_error("write_pnm: empty image");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pnm: cannot open " + path);

  const bool color = img.channels() == 3;
  out << (color ? "P6" : "P5") << "\n"
      << img.width() << " " << img.height() << "\n255\n";

  // Interleave planar samples into the PNM's pixel-major order.
  const std::vector<std::uint8_t> planar = img.to_bytes();
  std::vector<std::uint8_t> interleaved(planar.size());
  const std::size_t n = img.pixel_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < img.channels(); ++c) {
      interleaved[i * img.channels() + c] = planar[c * n + i];
    }
  }
  out.write(reinterpret_cast<const char*>(interleaved.data()),
            static_cast<std::streamsize>(interleaved.size()));
  if (!out) throw std::runtime_error("write_pnm: write failed for " + path);
}

Image read_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pnm: cannot open " + path);

  std::string magic;
  in >> magic;
  int channels = 0;
  if (magic == "P5") {
    channels = 1;
  } else if (magic == "P6") {
    channels = 3;
  } else {
    throw std::runtime_error("read_pnm: unsupported magic " + magic);
  }

  const int width = read_header_int(in);
  const int height = read_header_int(in);
  const int maxval = read_header_int(in);
  if (maxval != 255) throw std::runtime_error("read_pnm: maxval must be 255");
  in.get();  // single whitespace byte after header

  const std::size_t n =
      static_cast<std::size_t>(width) * height * static_cast<std::size_t>(channels);
  std::vector<std::uint8_t> interleaved(n);
  in.read(reinterpret_cast<char*>(interleaved.data()),
          static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) {
    throw std::runtime_error("read_pnm: truncated pixel data");
  }

  Image img(width, height, channels);
  const std::size_t pixels = img.pixel_count();
  for (std::size_t i = 0; i < pixels; ++i) {
    for (int c = 0; c < channels; ++c) {
      img.data()[static_cast<std::size_t>(c) * pixels + i] =
          static_cast<float>(interleaved[i * channels + c]) / 255.0F;
    }
  }
  return img;
}

}  // namespace easz::image
