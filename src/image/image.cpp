#include "image/image.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace easz::image {

Image::Image(int width, int height, int channels)
    : width_(width), height_(height), channels_(channels) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Image: dimensions must be positive");
  }
  if (channels != 1 && channels != 3) {
    throw std::invalid_argument("Image: channels must be 1 or 3");
  }
  data_.assign(sample_count(), 0.0F);
}

float Image::at_clamped(int c, int y, int x) const {
  const int cy = std::clamp(y, 0, height_ - 1);
  const int cx = std::clamp(x, 0, width_ - 1);
  return at(c, cy, cx);
}

void Image::clamp01() {
  for (float& v : data_) v = std::clamp(v, 0.0F, 1.0F);
}

void Image::quantize8() {
  for (float& v : data_) {
    const float clamped = std::clamp(v, 0.0F, 1.0F);
    v = std::round(clamped * 255.0F) / 255.0F;
  }
}

Image Image::channel(int c) const {
  if (c < 0 || c >= channels_) {
    throw std::invalid_argument("Image::channel: index out of range");
  }
  Image out(width_, height_, 1);
  std::copy_n(plane(c), pixel_count(), out.plane(0));
  return out;
}

Image Image::to_gray() const {
  if (channels_ == 1) return *this;
  Image out(width_, height_, 1);
  const float* r = plane(0);
  const float* g = plane(1);
  const float* b = plane(2);
  float* y = out.plane(0);
  for (std::size_t i = 0; i < pixel_count(); ++i) {
    y[i] = 0.299F * r[i] + 0.587F * g[i] + 0.114F * b[i];
  }
  return out;
}

Image Image::crop(int x0, int y0, int w, int h) const {
  if (x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0 + w > width_ ||
      y0 + h > height_) {
    throw std::invalid_argument("Image::crop: rectangle out of bounds");
  }
  Image out(w, h, channels_);
  for (int c = 0; c < channels_; ++c) {
    for (int y = 0; y < h; ++y) {
      const float* src = plane(c) + static_cast<std::size_t>(y0 + y) * width_;
      std::copy_n(src + x0, w, out.plane(c) + static_cast<std::size_t>(y) * w);
    }
  }
  return out;
}

Image Image::pad_to(int new_w, int new_h) const {
  if (new_w < width_ || new_h < height_) {
    throw std::invalid_argument("Image::pad_to: target smaller than source");
  }
  if (new_w == width_ && new_h == height_) return *this;
  Image out(new_w, new_h, channels_);
  for (int c = 0; c < channels_; ++c) {
    for (int y = 0; y < new_h; ++y) {
      for (int x = 0; x < new_w; ++x) {
        out.at(c, y, x) = at_clamped(c, y, x);
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> Image::to_bytes() const {
  std::vector<std::uint8_t> out(sample_count());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const float clamped = std::clamp(data_[i], 0.0F, 1.0F);
    out[i] = static_cast<std::uint8_t>(std::lround(clamped * 255.0F));
  }
  return out;
}

Image Image::from_bytes(const std::uint8_t* bytes, int width, int height,
                        int channels) {
  Image out(width, height, channels);
  for (std::size_t i = 0; i < out.sample_count(); ++i) {
    out.data()[i] = static_cast<float>(bytes[i]) / 255.0F;
  }
  return out;
}

bool Image::approx_equal(const Image& other, float tol) const {
  if (width_ != other.width_ || height_ != other.height_ ||
      channels_ != other.channels_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace easz::image
