#include "image/color.hpp"

#include <algorithm>
#include <cmath>

namespace easz::image {

Image rgb_to_ycbcr(const Image& rgb) {
  if (rgb.channels() == 1) return rgb;
  Image out(rgb.width(), rgb.height(), 3);
  const float* r = rgb.plane(0);
  const float* g = rgb.plane(1);
  const float* b = rgb.plane(2);
  float* y = out.plane(0);
  float* cb = out.plane(1);
  float* cr = out.plane(2);
  for (std::size_t i = 0; i < rgb.pixel_count(); ++i) {
    y[i] = 0.299F * r[i] + 0.587F * g[i] + 0.114F * b[i];
    cb[i] = 0.5F - 0.168736F * r[i] - 0.331264F * g[i] + 0.5F * b[i];
    cr[i] = 0.5F + 0.5F * r[i] - 0.418688F * g[i] - 0.081312F * b[i];
  }
  return out;
}

Image ycbcr_to_rgb(const Image& ycbcr) {
  if (ycbcr.channels() == 1) return ycbcr;
  Image out(ycbcr.width(), ycbcr.height(), 3);
  const float* y = ycbcr.plane(0);
  const float* cb = ycbcr.plane(1);
  const float* cr = ycbcr.plane(2);
  float* r = out.plane(0);
  float* g = out.plane(1);
  float* b = out.plane(2);
  for (std::size_t i = 0; i < ycbcr.pixel_count(); ++i) {
    const float yv = y[i];
    const float cbv = cb[i] - 0.5F;
    const float crv = cr[i] - 0.5F;
    r[i] = std::clamp(yv + 1.402F * crv, 0.0F, 1.0F);
    g[i] = std::clamp(yv - 0.344136F * cbv - 0.714136F * crv, 0.0F, 1.0F);
    b[i] = std::clamp(yv + 1.772F * cbv, 0.0F, 1.0F);
  }
  return out;
}

// The 4:2:0 resamplers sit on every color encode/decode; they run over
// hoisted row pointers with the border clamps resolved per index instead of
// four out-of-line at_clamped calls per pixel. Arithmetic (expressions and
// evaluation order) is unchanged, so outputs are bit-identical to the
// original per-pixel accessor version.

Image downsample2x(const Image& plane) {
  const int sw = plane.width();
  const int sh = plane.height();
  const int w = (sw + 1) / 2;
  const int h = (sh + 1) / 2;
  Image out(w, h, 1);
  const float* src = plane.plane(0);
  float* dst = out.plane(0);
  for (int y = 0; y < h; ++y) {
    const float* row0 = src + static_cast<std::size_t>(std::min(2 * y, sh - 1)) * sw;
    const float* row1 =
        src + static_cast<std::size_t>(std::min(2 * y + 1, sh - 1)) * sw;
    float* orow = dst + static_cast<std::size_t>(y) * w;
    for (int x = 0; x < w; ++x) {
      const int x0 = std::min(2 * x, sw - 1);
      const int x1 = std::min(2 * x + 1, sw - 1);
      const float sum = row0[x0] + row0[x1] + row1[x0] + row1[x1];
      orow[x] = sum * 0.25F;
    }
  }
  return out;
}

Image upsample2x(const Image& plane, int target_w, int target_h) {
  Image out(target_w, target_h, 1);
  const int sw = plane.width();
  const int sh = plane.height();
  const float* src = plane.plane(0);
  float* dst = out.plane(0);
  for (int y = 0; y < target_h; ++y) {
    // Sample positions align 2x2 blocks with their box-filtered source texel.
    const float sy = (static_cast<float>(y) - 0.5F) / 2.0F;
    const int y0 = static_cast<int>(std::floor(sy));
    const float fy = sy - static_cast<float>(y0);
    const float* row0 =
        src + static_cast<std::size_t>(std::clamp(y0, 0, sh - 1)) * sw;
    const float* row1 =
        src + static_cast<std::size_t>(std::clamp(y0 + 1, 0, sh - 1)) * sw;
    float* orow = dst + static_cast<std::size_t>(y) * target_w;
    for (int x = 0; x < target_w; ++x) {
      const float sx = (static_cast<float>(x) - 0.5F) / 2.0F;
      const int x0 = static_cast<int>(std::floor(sx));
      const float fx = sx - static_cast<float>(x0);
      const int xi0 = std::clamp(x0, 0, sw - 1);
      const int xi1 = std::clamp(x0 + 1, 0, sw - 1);
      const float v00 = row0[xi0];
      const float v01 = row0[xi1];
      const float v10 = row1[xi0];
      const float v11 = row1[xi1];
      orow[x] = (1 - fy) * ((1 - fx) * v00 + fx * v01) +
                fy * ((1 - fx) * v10 + fx * v11);
    }
  }
  return out;
}

}  // namespace easz::image
