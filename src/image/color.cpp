#include "image/color.hpp"

#include <algorithm>
#include <cmath>

namespace easz::image {

Image rgb_to_ycbcr(const Image& rgb) {
  if (rgb.channels() == 1) return rgb;
  Image out(rgb.width(), rgb.height(), 3);
  const float* r = rgb.plane(0);
  const float* g = rgb.plane(1);
  const float* b = rgb.plane(2);
  float* y = out.plane(0);
  float* cb = out.plane(1);
  float* cr = out.plane(2);
  for (std::size_t i = 0; i < rgb.pixel_count(); ++i) {
    y[i] = 0.299F * r[i] + 0.587F * g[i] + 0.114F * b[i];
    cb[i] = 0.5F - 0.168736F * r[i] - 0.331264F * g[i] + 0.5F * b[i];
    cr[i] = 0.5F + 0.5F * r[i] - 0.418688F * g[i] - 0.081312F * b[i];
  }
  return out;
}

Image ycbcr_to_rgb(const Image& ycbcr) {
  if (ycbcr.channels() == 1) return ycbcr;
  Image out(ycbcr.width(), ycbcr.height(), 3);
  const float* y = ycbcr.plane(0);
  const float* cb = ycbcr.plane(1);
  const float* cr = ycbcr.plane(2);
  float* r = out.plane(0);
  float* g = out.plane(1);
  float* b = out.plane(2);
  for (std::size_t i = 0; i < ycbcr.pixel_count(); ++i) {
    const float yv = y[i];
    const float cbv = cb[i] - 0.5F;
    const float crv = cr[i] - 0.5F;
    r[i] = std::clamp(yv + 1.402F * crv, 0.0F, 1.0F);
    g[i] = std::clamp(yv - 0.344136F * cbv - 0.714136F * crv, 0.0F, 1.0F);
    b[i] = std::clamp(yv + 1.772F * cbv, 0.0F, 1.0F);
  }
  return out;
}

Image downsample2x(const Image& plane) {
  const int w = (plane.width() + 1) / 2;
  const int h = (plane.height() + 1) / 2;
  Image out(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float sum = plane.at_clamped(0, 2 * y, 2 * x) +
                        plane.at_clamped(0, 2 * y, 2 * x + 1) +
                        plane.at_clamped(0, 2 * y + 1, 2 * x) +
                        plane.at_clamped(0, 2 * y + 1, 2 * x + 1);
      out.at(0, y, x) = sum * 0.25F;
    }
  }
  return out;
}

Image upsample2x(const Image& plane, int target_w, int target_h) {
  Image out(target_w, target_h, 1);
  for (int y = 0; y < target_h; ++y) {
    // Sample positions align 2x2 blocks with their box-filtered source texel.
    const float sy = (static_cast<float>(y) - 0.5F) / 2.0F;
    const int y0 = static_cast<int>(std::floor(sy));
    const float fy = sy - static_cast<float>(y0);
    for (int x = 0; x < target_w; ++x) {
      const float sx = (static_cast<float>(x) - 0.5F) / 2.0F;
      const int x0 = static_cast<int>(std::floor(sx));
      const float fx = sx - static_cast<float>(x0);
      const float v00 = plane.at_clamped(0, y0, x0);
      const float v01 = plane.at_clamped(0, y0, x0 + 1);
      const float v10 = plane.at_clamped(0, y0 + 1, x0);
      const float v11 = plane.at_clamped(0, y0 + 1, x0 + 1);
      out.at(0, y, x) = (1 - fy) * ((1 - fx) * v00 + fx * v01) +
                        fy * ((1 - fx) * v10 + fx * v11);
    }
  }
  return out;
}

}  // namespace easz::image
