// BT.601 full-range RGB <-> YCbCr conversion.
//
// Both classical codecs (JPEG-like, BPG-like) operate in YCbCr with optional
// 4:2:0 chroma subsampling, matching their real-world counterparts.
#pragma once

#include "image/image.hpp"

namespace easz::image {

/// RGB -> YCbCr (full range, BT.601). Pass-through for grayscale.
Image rgb_to_ycbcr(const Image& rgb);

/// YCbCr -> RGB inverse of rgb_to_ycbcr. Output clamped to [0, 1].
Image ycbcr_to_rgb(const Image& ycbcr);

/// 2x2 box-filter downsample of one plane (used for 4:2:0 chroma).
Image downsample2x(const Image& plane);

/// Bilinear 2x upsample back to (w, h) (chroma reconstruction).
Image upsample2x(const Image& plane, int target_w, int target_h);

}  // namespace easz::image
