// Image resampling: bilinear and Catmull-Rom bicubic.
//
// Used by (a) the super-resolution baseline pipelines (downsample on the
// edge, upsample on the server) and (b) chroma handling in codecs.
#pragma once

#include "image/image.hpp"

namespace easz::image {

enum class Filter { kBilinear, kBicubic };

/// Resizes `src` to (new_w, new_h) with the chosen filter. Coordinates use
/// pixel-center alignment. Output clamped to [0, 1] for bicubic (which can
/// overshoot).
Image resize(const Image& src, int new_w, int new_h,
             Filter filter = Filter::kBicubic);

}  // namespace easz::image
