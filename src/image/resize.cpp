#include "image/resize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace easz::image {
namespace {

// Catmull-Rom cubic kernel (a = -0.5), the common "bicubic" default.
float cubic_weight(float t) {
  const float at = std::fabs(t);
  if (at <= 1.0F) return 1.5F * at * at * at - 2.5F * at * at + 1.0F;
  if (at < 2.0F) {
    return -0.5F * at * at * at + 2.5F * at * at - 4.0F * at + 2.0F;
  }
  return 0.0F;
}

}  // namespace

Image resize(const Image& src, int new_w, int new_h, Filter filter) {
  if (new_w <= 0 || new_h <= 0) {
    throw std::invalid_argument("resize: target dimensions must be positive");
  }
  Image out(new_w, new_h, src.channels());
  const float sx = static_cast<float>(src.width()) / static_cast<float>(new_w);
  const float sy =
      static_cast<float>(src.height()) / static_cast<float>(new_h);

  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < new_h; ++y) {
      const float fy = (static_cast<float>(y) + 0.5F) * sy - 0.5F;
      const int iy = static_cast<int>(std::floor(fy));
      const float ty = fy - static_cast<float>(iy);
      for (int x = 0; x < new_w; ++x) {
        const float fx = (static_cast<float>(x) + 0.5F) * sx - 0.5F;
        const int ix = static_cast<int>(std::floor(fx));
        const float tx = fx - static_cast<float>(ix);

        float value = 0.0F;
        if (filter == Filter::kBilinear) {
          const float v00 = src.at_clamped(c, iy, ix);
          const float v01 = src.at_clamped(c, iy, ix + 1);
          const float v10 = src.at_clamped(c, iy + 1, ix);
          const float v11 = src.at_clamped(c, iy + 1, ix + 1);
          value = (1 - ty) * ((1 - tx) * v00 + tx * v01) +
                  ty * ((1 - tx) * v10 + tx * v11);
        } else {
          for (int m = -1; m <= 2; ++m) {
            const float wy = cubic_weight(static_cast<float>(m) - ty);
            if (wy == 0.0F) continue;
            float row_acc = 0.0F;
            for (int n = -1; n <= 2; ++n) {
              const float wx = cubic_weight(static_cast<float>(n) - tx);
              if (wx == 0.0F) continue;
              row_acc += wx * src.at_clamped(c, iy + m, ix + n);
            }
            value += wy * row_acc;
          }
          value = std::clamp(value, 0.0F, 1.0F);
        }
        out.at(c, y, x) = value;
      }
    }
  }
  return out;
}

}  // namespace easz::image
