#include "image/patches.hpp"

#include <stdexcept>

namespace easz::image {

Image extract_block(const Image& src, int bx, int by, int size) {
  Image block(size, size, src.channels());
  const int x0 = bx * size;
  const int y0 = by * size;
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        block.at(c, y, x) = src.at_clamped(c, y0 + y, x0 + x);
      }
    }
  }
  return block;
}

void insert_block(Image& dst, const Image& block, int bx, int by, int size) {
  if (block.channels() != dst.channels()) {
    throw std::invalid_argument("insert_block: channel mismatch");
  }
  const int x0 = bx * size;
  const int y0 = by * size;
  for (int c = 0; c < dst.channels(); ++c) {
    for (int y = 0; y < size; ++y) {
      const int dy = y0 + y;
      if (dy >= dst.height()) break;
      for (int x = 0; x < size; ++x) {
        const int dx = x0 + x;
        if (dx >= dst.width()) break;
        dst.at(c, dy, dx) = block.at(c, y, x);
      }
    }
  }
}

BlockGrid block_grid(int width, int height, int size) {
  BlockGrid g;
  g.cols = (width + size - 1) / size;
  g.rows = (height + size - 1) / size;
  return g;
}

std::vector<Image> split_into_blocks(const Image& src, int size) {
  const BlockGrid g = block_grid(src.width(), src.height(), size);
  std::vector<Image> blocks;
  blocks.reserve(static_cast<std::size_t>(g.cols) * g.rows);
  for (int by = 0; by < g.rows; ++by) {
    for (int bx = 0; bx < g.cols; ++bx) {
      blocks.push_back(extract_block(src, bx, by, size));
    }
  }
  return blocks;
}

Image assemble_from_blocks(const std::vector<Image>& blocks, int width,
                           int height, int channels, int size) {
  const BlockGrid g = block_grid(width, height, size);
  if (blocks.size() != static_cast<std::size_t>(g.cols) * g.rows) {
    throw std::invalid_argument("assemble_from_blocks: block count mismatch");
  }
  Image out(width, height, channels);
  std::size_t i = 0;
  for (int by = 0; by < g.rows; ++by) {
    for (int bx = 0; bx < g.cols; ++bx) {
      insert_block(out, blocks[i++], bx, by, size);
    }
  }
  return out;
}

}  // namespace easz::image
