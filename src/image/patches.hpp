// Block/patch extraction and re-assembly.
//
// The Easz pipeline and the DCT codecs both view images as grids of square
// blocks; these helpers centralise the (block <-> image) bookkeeping.
#pragma once

#include <vector>

#include "image/image.hpp"

namespace easz::image {

/// Extracts the `size`x`size` block whose top-left corner is
/// (bx*size, by*size). Out-of-range samples are border-replicated, so callers
/// may tile images whose dimensions are not multiples of `size`.
Image extract_block(const Image& src, int bx, int by, int size);

/// Writes `block` (size x size, channels matching) into `dst` at block
/// coordinates (bx, by); samples falling outside `dst` are dropped.
void insert_block(Image& dst, const Image& block, int bx, int by, int size);

/// Number of blocks along each axis when tiling (w, h) with `size` blocks.
struct BlockGrid {
  int cols = 0;
  int rows = 0;
};
BlockGrid block_grid(int width, int height, int size);

/// Splits `src` into row-major blocks of `size` (border-replicated at edges).
std::vector<Image> split_into_blocks(const Image& src, int size);

/// Inverse of split_into_blocks for the given full-image dimensions.
Image assemble_from_blocks(const std::vector<Image>& blocks, int width,
                           int height, int channels, int size);

}  // namespace easz::image
