// Binary PPM (P6) / PGM (P5) reader and writer.
//
// PPM/PGM are the only on-disk image formats the project needs: examples dump
// inputs/outputs for visual inspection and tests round-trip through them.
#pragma once

#include <string>

#include "image/image.hpp"

namespace easz::image {

/// Writes `img` as binary PGM (1 channel) or PPM (3 channels).
/// Throws std::runtime_error on I/O failure.
void write_pnm(const Image& img, const std::string& path);

/// Reads a binary P5/P6 file written by write_pnm (maxval 255).
/// Throws std::runtime_error on parse or I/O failure.
Image read_pnm(const std::string& path);

}  // namespace easz::image
