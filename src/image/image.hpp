// Planar floating-point image container.
//
// All pixel processing in the project happens on `Image`: planar (CHW) float
// samples nominally in [0, 1]. Codec boundaries quantise to 8 bits; the
// helpers here perform that conversion explicitly so rounding behaviour is in
// one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace easz::image {

/// Planar CHW float image. Channels: 1 (grayscale) or 3 (RGB / YCbCr).
class Image {
 public:
  Image() = default;

  /// Allocates a zero-filled image. Throws std::invalid_argument on
  /// non-positive dimensions or unsupported channel counts.
  Image(int width, int height, int channels);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  [[nodiscard]] std::size_t sample_count() const {
    return pixel_count() * static_cast<std::size_t>(channels_);
  }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Sample accessors; (x, y) unchecked in release builds for speed.
  float& at(int c, int y, int x) {
    return data_[plane_offset(c) + static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] float at(int c, int y, int x) const {
    return data_[plane_offset(c) + static_cast<std::size_t>(y) * width_ + x];
  }

  /// Clamped accessor: coordinates outside the image are clamped to the
  /// border (replicate padding). Used by filters and intra predictors.
  [[nodiscard]] float at_clamped(int c, int y, int x) const;

  [[nodiscard]] float* plane(int c) { return data_.data() + plane_offset(c); }
  [[nodiscard]] const float* plane(int c) const {
    return data_.data() + plane_offset(c);
  }

  [[nodiscard]] std::vector<float>& data() { return data_; }
  [[nodiscard]] const std::vector<float>& data() const { return data_; }

  /// Clamps every sample to [0, 1].
  void clamp01();

  /// Rounds every sample to the nearest 1/255 step (8-bit quantisation),
  /// clamping first. Codecs apply this at their input boundary.
  void quantize8();

  /// Extracts one channel as a grayscale image.
  [[nodiscard]] Image channel(int c) const;

  /// Converts to grayscale using BT.601 luma weights (no-op pass-through for
  /// single-channel images).
  [[nodiscard]] Image to_gray() const;

  /// Crop. The rectangle must lie inside the image.
  [[nodiscard]] Image crop(int x0, int y0, int w, int h) const;

  /// Pads to (new_w, new_h) >= current size with edge replication. Used to
  /// make dimensions divisible by patch sizes.
  [[nodiscard]] Image pad_to(int new_w, int new_h) const;

  /// 8-bit round-trips used at codec boundaries.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  static Image from_bytes(const std::uint8_t* bytes, int width, int height,
                          int channels);

  /// Element-wise equality within `tol`.
  [[nodiscard]] bool approx_equal(const Image& other, float tol = 1e-6F) const;

 private:
  [[nodiscard]] std::size_t plane_offset(int c) const {
    return static_cast<std::size_t>(c) * pixel_count();
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<float> data_;
};

}  // namespace easz::image
