// Grad-free inference kernels (tensor::kern).
//
// The autograd substrate in ops.cpp pays, per op, for a DAG node, a
// zero-filled output buffer, a std::function backward closure and naive
// loop nests. That is the right trade for training; it is the wrong one for
// the serving hot path, where the same transformer forward runs millions of
// times on frozen weights. This layer provides the forward-only primitives
// the nn/ infer path is built from:
//
//  * gemm(): blocked, register-tiled matrix multiply over raw float spans
//    with arbitrary row strides, optional transposed B, an optional fused
//    scale / bias / GELU epilogue, and row-panel parallelism on a
//    persistent process-global thread pool (idle lanes dynamically steal
//    the next unclaimed panel).
//  * softmax_rows() / layernorm_rows(): fused single-pass row kernels.
//  * Workspace: a grow-only bump arena for activations, so a steady-state
//    forward performs zero heap allocations (see Workspace notes).
//
// Equivalence contract (asserted by tests/kernels_test.cpp): every kernel
// accumulates each output element over k in ascending order with one fp32
// accumulator — the same summation order as the autograd ops. The only
// deliberate numeric deviations are fused multiply-adds (where the CPU
// supports them) and a ~2-ulp polynomial exp inside softmax/GELU; both sit
// orders of magnitude inside the tested 1e-5 bound. On x86-64 the hot
// loops are compiled twice (AVX2+FMA and baseline) and dispatched once at
// runtime, so the binary stays portable.
//
// Threading rules:
//  * set_threads() resizes the pool; call it only while no parallel_for is
//    in flight (servers set it at construction).
//  * parallel_for() is re-entrant across caller threads: concurrent calls
//    queue jobs FIFO and every caller participates in its own job, so work
//    completes even with zero pool workers.
//  * Kernels invoked from inside a parallel_for task must pass
//    parallel=false (no nested parallelism).
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace easz::tensor::kern {

// ---- thread pool ----------------------------------------------------------

/// Lanes the pool would use by default (hardware concurrency, >= 1).
int default_threads();

/// Total concurrency: the calling thread plus (n - 1) persistent workers.
/// n < 1 is clamped to 1 (serial). Joins and respawns workers; never call
/// concurrently with parallel_for.
void set_threads(int n);

/// Current total concurrency.
int threads();

namespace detail {
void parallel_for_impl(int count, void (*fn)(void*, int), void* ctx);
}  // namespace detail

/// Runs fn(i) for every i in [0, count), distributing indices over the pool.
/// Blocks until all indices completed. fn must not throw.
template <typename F>
void parallel_for(int count, F&& fn) {
  using Fn = std::remove_reference_t<F>;
  detail::parallel_for_impl(
      count, [](void* ctx, int i) { (*static_cast<Fn*>(ctx))(i); },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

// ---- workspace arena ------------------------------------------------------

/// Grow-only bump arena for forward-pass activations.
///
/// Lifetime: reset() at the top of each forward rewinds the cursor but keeps
/// every block, so allocation replays hit warm memory. Blocks never move once
/// handed out (pointers stay valid until reset). After the first forward of a
/// given shape, subsequent forwards of that shape allocate nothing
/// (grow_count() is the observable: it only increments when a new block is
/// actually heap-allocated).
class Workspace {
 public:
  /// Returns n floats of scratch, valid until reset(). Uninitialised.
  float* alloc(std::size_t n);

  /// Rewinds every block. Pointers from before the reset become dead.
  void reset();

  /// Number of heap blocks ever allocated — steady state: constant.
  [[nodiscard]] std::size_t grow_count() const { return grows_; }

  [[nodiscard]] std::size_t capacity_floats() const;

  /// The calling thread's arena (thread_local). One per server worker.
  static Workspace& for_this_thread();

 private:
  static constexpr std::size_t kMinBlockFloats = 1U << 18;  // 1 MB

  struct Block {
    std::vector<float> data;
    std::size_t used = 0;
  };
  std::vector<Block> blocks_;
  std::size_t grows_ = 0;
};

// ---- GEMM -----------------------------------------------------------------

struct GemmOpts {
  const float* bias = nullptr;  ///< [n], added to every output row
  bool gelu = false;            ///< tanh-approx GELU fused after bias
  float scale = 1.0F;           ///< multiplies the dot product (before bias)
  bool transpose_b = false;     ///< B is [n, k] row-major (attention K^T)
  bool parallel = true;         ///< false inside parallel_for tasks
};

/// C[m, n] = epilogue(A[m, k] * B) with row strides lda/ldb/ldc (>= the
/// logical row width). B is [k, n] (or [n, k] when transpose_b). Output is
/// overwritten, not accumulated. Preconditions unchecked (hot path).
void gemm(const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c, std::size_t ldc, int m, int k, int n,
          const GemmOpts& opts = {});

// ---- fused row kernels ----------------------------------------------------

/// In-place numerically-stable softmax over each row of x [rows, d].
void softmax_rows(float* x, std::size_t rows, int d, bool parallel = true);

/// y[r] = (x[r] - mu_r) * inv_sd_r * gamma + beta per row of x [rows, d].
/// y may alias x.
void layernorm_rows(const float* x, const float* gamma, const float* beta,
                    float* y, std::size_t rows, int d, float eps = 1e-5F,
                    bool parallel = true);

/// out[i] = a[i] + b[i]; out may alias either input (residual adds).
void add_rows(const float* a, const float* b, float* out, std::size_t n);

/// Reference scalar of the tanh-approx GELU the fused epilogue applies.
/// Same formula as tensor::gelu's forward, with tanh evaluated through the
/// layer's polynomial exp (agreement ~1e-7, inside the 1e-5 contract).
float gelu_scalar(float x);

}  // namespace easz::tensor::kern
