// Grad-free inference kernels (tensor::kern).
//
// The autograd substrate in ops.cpp pays, per op, for a DAG node, a
// zero-filled output buffer, a std::function backward closure and naive
// loop nests. That is the right trade for training; it is the wrong one for
// the serving hot path, where the same transformer forward runs millions of
// times on frozen weights. This layer provides the forward-only primitives
// the nn/ infer path is built from:
//
//  * gemm(): blocked, register-tiled matrix multiply over raw float spans
//    with arbitrary row strides, optional transposed B, an optional fused
//    scale / bias / GELU epilogue, and row-panel parallelism on a
//    persistent process-global thread pool (idle lanes dynamically steal
//    the next unclaimed panel).
//  * softmax_rows() / layernorm_rows(): fused single-pass row kernels.
//  * Workspace: a grow-only bump arena for activations, so a steady-state
//    forward performs zero heap allocations (see Workspace notes).
//
// Equivalence contract (asserted by tests/kernels_test.cpp): every kernel
// accumulates each output element over k in ascending order with one fp32
// accumulator — the same summation order as the autograd ops. The only
// deliberate numeric deviations are fused multiply-adds (where the CPU
// supports them) and a ~2-ulp polynomial exp inside softmax/GELU; both sit
// orders of magnitude inside the tested 1e-5 bound. On x86-64 the hot
// loops are compiled twice (AVX2+FMA and baseline) and dispatched once at
// runtime, so the binary stays portable.
//
// Threading rules:
//  * set_threads() resizes the pool; call it only while no parallel_for is
//    in flight (servers set it at construction).
//  * parallel_for() is re-entrant across caller threads: concurrent calls
//    queue jobs FIFO and every caller participates in its own job, so work
//    completes even with zero pool workers.
//  * Kernels invoked from inside a parallel_for task must pass
//    parallel=false (no nested parallelism).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace easz::tensor::kern {

// ---- thread pool ----------------------------------------------------------

/// Lanes the pool would use by default (hardware concurrency, >= 1).
int default_threads();

/// Total concurrency: the calling thread plus (n - 1) persistent workers.
/// n < 1 is clamped to 1 (serial). Joins and respawns workers; never call
/// concurrently with parallel_for.
void set_threads(int n);

/// Current total concurrency.
int threads();

/// Pin (or unpin) the pool's dedicated lanes round-robin across the
/// process's allowed CPUs (util/affinity.hpp). Joins and respawns workers
/// like set_threads — never call concurrently with parallel_for. Graceful
/// no-op on platforms without thread affinity; the serve runtime enables
/// this via ServerConfig::pin_workers.
void set_pin_threads(bool pin);

/// Whether lane pinning is currently requested (not whether it succeeded).
bool pin_threads();

namespace detail {
void parallel_for_impl(int count, void (*fn)(void*, int), void* ctx);
}  // namespace detail

/// Runs fn(i) for every i in [0, count), distributing indices over the pool.
/// Blocks until all indices completed. fn must not throw.
template <typename F>
void parallel_for(int count, F&& fn) {
  using Fn = std::remove_reference_t<F>;
  detail::parallel_for_impl(
      count, [](void* ctx, int i) { (*static_cast<Fn*>(ctx))(i); },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

// ---- workspace arena ------------------------------------------------------

/// Grow-only bump arena for forward-pass activations.
///
/// Lifetime: reset() at the top of each forward rewinds the cursor but keeps
/// every block, so allocation replays hit warm memory. Blocks never move once
/// handed out (pointers stay valid until reset). After the first forward of a
/// given shape, subsequent forwards of that shape allocate nothing
/// (grow_count() is the observable: it only increments when a new block is
/// actually heap-allocated).
class Workspace {
 public:
  /// Returns n floats of scratch, valid until reset(). Uninitialised.
  float* alloc(std::size_t n);

  /// Rewinds every block. Pointers from before the reset become dead.
  void reset();

  /// Number of heap blocks ever allocated — steady state: constant.
  [[nodiscard]] std::size_t grow_count() const { return grows_; }

  [[nodiscard]] std::size_t capacity_floats() const;

  /// The calling thread's arena (thread_local). One per server worker.
  static Workspace& for_this_thread();

 private:
  static constexpr std::size_t kMinBlockFloats = 1U << 18;  // 1 MB

  struct Block {
    std::vector<float> data;
    std::size_t used = 0;
  };
  std::vector<Block> blocks_;
  std::size_t grows_ = 0;
};

// ---- GEMM -----------------------------------------------------------------

struct GemmOpts {
  const float* bias = nullptr;  ///< [n], added to every output row
  bool gelu = false;            ///< tanh-approx GELU fused after bias
  float scale = 1.0F;           ///< multiplies the dot product (before bias)
  bool transpose_b = false;     ///< B is [n, k] row-major (attention K^T)
  bool parallel = true;         ///< false inside parallel_for tasks
};

/// C[m, n] = epilogue(A[m, k] * B) with row strides lda/ldb/ldc (>= the
/// logical row width). B is [k, n] (or [n, k] when transpose_b). Output is
/// overwritten, not accumulated. Preconditions unchecked (hot path).
void gemm(const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c, std::size_t ldc, int m, int k, int n,
          const GemmOpts& opts = {});

// ---- fused row kernels ----------------------------------------------------

/// In-place numerically-stable softmax over each row of x [rows, d].
void softmax_rows(float* x, std::size_t rows, int d, bool parallel = true);

/// y[r] = (x[r] - mu_r) * inv_sd_r * gamma + beta per row of x [rows, d].
/// y may alias x.
void layernorm_rows(const float* x, const float* gamma, const float* beta,
                    float* y, std::size_t rows, int d, float eps = 1e-5F,
                    bool parallel = true);

/// out[i] = a[i] + b[i]; out may alias either input (residual adds).
void add_rows(const float* a, const float* b, float* out, std::size_t n);

/// Reference scalar of the tanh-approx GELU the fused epilogue applies.
/// Same formula as tensor::gelu's forward, with tanh evaluated through the
/// layer's polynomial exp (agreement ~1e-7, inside the 1e-5 contract).
float gelu_scalar(float x);

// ---- int8 GEMM (kernels_int8.cpp) -----------------------------------------
//
// Quantization convention (DESIGN.md §7):
//   activations  u8 with a fixed zero point of 128:
//                  q = clamp(lrintf(x / act_scale) + 128, 0, 255)
//   weights      s8, symmetric PER OUTPUT CHANNEL:
//                  wq[p][j] = clamp(lrintf(w[p][j] / w_scale[j]), -127, 127)
//   accumulate   exact i32 (no saturation anywhere; k is bounded so the
//                 worst case 255 * 127 * k stays far below 2^31)
//   dequantize   y[i][j] = float(acc - 128 * col_sum[j]) * dq_scale[j]
//                          (+ bias[j]) (GELU'd), with
//                 dq_scale[j] = act_scale * w_scale[j] and
//                 col_sum[j] = sum_p wq[p][j] (the zero-point correction).
//
// Exactness contract (asserted by tests/quant_test.cpp): the i32 accumulator
// is a plain integer sum, so it is identical on every path; the dequant
// epilogue is ONE shared function compiled once for the baseline ISA (no
// FMA contraction), so the fp32 outputs are bit-identical between the AVX2
// and scalar kernels, between thread counts, and across batch compositions
// (static scales make row results row-local). tests/golden_int8.inc pins
// the exact output bytes.

/// Activation zero point: fp32 0.0 maps to u8 128.
inline constexpr int kActZeroPoint = 128;

/// Weights packed for the madd-pair kernel: k is processed two at a time,
/// so element (p, j) of the [k, n] s8 matrix lives at
/// data[(p/2 * n + j) * 2 + p%2]; odd k pads the final pair with zeros
/// (exact: the pad contributes 0 to every accumulator).
struct PackedBInt8 {
  std::vector<std::int8_t> data;
  int k = 0;
  int n = 0;
  [[nodiscard]] int k_pairs() const { return (k + 1) / 2; }
  [[nodiscard]] bool empty() const { return data.empty(); }
};

/// Packs a row-major s8 [k, n] matrix. Throws std::invalid_argument on
/// non-positive dims or k > 65536 (i32 accumulator headroom, ~30x margin).
PackedBInt8 pack_b_s8(const std::int8_t* b, int k, int n);

/// q[i] = clamp(lrintf(x[i] / act_scale) + 128, 0, 255). act_scale must be
/// positive and finite (validated by the callers that load it from disk).
/// lrintf rounds to nearest-even in the default FP environment — the same
/// everywhere, which keeps quantized bytes platform-stable.
void quantize_rows_u8(const float* x, std::uint8_t* q, std::size_t count,
                      float act_scale);

struct QuantGemmOpts {
  const float* bias = nullptr;  ///< [n], added after dequantization
  bool gelu = false;            ///< same tanh-approx GELU as GemmOpts
  bool parallel = true;         ///< false inside parallel_for tasks
};

/// C[m, n] = epilogue(dequant(A_u8[m, k] * B_s8)) with row strides lda/ldc.
/// `dq_scale` and `col_sum` are per-output-channel ([n], see convention
/// above). Output rows depend only on their own input row — pooling
/// requests into one call reproduces per-request results exactly.
void gemm_u8s8(const std::uint8_t* a, std::size_t lda, const PackedBInt8& b,
               float* c, std::size_t ldc, int m, int k, int n,
               const float* dq_scale, const std::int32_t* col_sum,
               const QuantGemmOpts& opts = {});

}  // namespace easz::tensor::kern
