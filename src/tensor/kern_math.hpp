// Internal transcendental approximations shared by the kern translation
// units (fp32 kernels in kernels.cpp, int8 epilogue in kernels_int8.cpp).
//
// Everything here is pure float arithmetic + integer bit manipulation: no
// libm calls, no lookup tables, no data-dependent branches. That makes the
// functions (a) autovectorisable inside whatever ISA context inlines them
// and (b) bit-deterministic for a FIXED ISA context — which is why the int8
// dequant epilogue, which pins its output bytes in tests/golden_int8.inc,
// is compiled exactly once for the baseline ISA and never under an AVX2
// target attribute (FMA contraction would change the last bits).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

namespace easz::tensor::kern::detail {

// Branch-free single-precision e^x, ~2 ulp over the clamped range. libm's
// expf would round differently in the last bits; the difference is ~1e-7
// relative, far inside the layer's 1e-5 equivalence contract.
__attribute__((always_inline)) inline float fast_exp(float x) {
  constexpr float kLog2e = 1.44269504088896341F;
  constexpr float kLn2Hi = 0.693359375F;
  constexpr float kLn2Lo = -2.12194440e-4F;
  constexpr float kRound = 12582912.0F;  // 1.5 * 2^23: round-to-nearest trick
  x = std::max(-87.0F, std::min(88.0F, x));  // keep 2^n finite
  const float z = x * kLog2e + kRound;
  const float n = z - kRound;  // round(x * log2(e))
  const float r = (x - n * kLn2Hi) - n * kLn2Lo;  // r in [-ln2/2, ln2/2]
  float p = 1.9875691500e-4F;  // Cephes minimax for e^r - 1 - r
  p = p * r + 1.3981999507e-3F;
  p = p * r + 8.3334519073e-3F;
  p = p * r + 4.1665795894e-2F;
  p = p * r + 1.6666665459e-1F;
  p = p * r + 5.0000001201e-1F;
  const float er = (p * r) * r + r + 1.0F;  // p(r)*r^2 + r + 1
  // 2^n assembled straight into the exponent field.
  const std::int32_t ni =
      std::bit_cast<std::int32_t>(z) - std::bit_cast<std::int32_t>(kRound);
  const float scale = std::bit_cast<float>((ni + 127) << 23);
  return er * scale;
}

__attribute__((always_inline)) inline float gelu_approx(float x) {
  constexpr float kC = 0.7978845608F;  // sqrt(2/pi)
  constexpr float kA = 0.044715F;
  const float inner = kC * (x + kA * x * x * x);
  // tanh(u) = 1 - 2 / (e^{2u} + 1), saturated where e^{2u} dwarfs 1.
  const float e2u = fast_exp(2.0F * inner);
  const float t = 1.0F - 2.0F / (e2u + 1.0F);
  return 0.5F * x * (1.0F + t);
}

}  // namespace easz::tensor::kern::detail
