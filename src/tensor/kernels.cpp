#include "tensor/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/registry.hpp"
#include "tensor/kern_math.hpp"
#include "util/affinity.hpp"

namespace easz::tensor::kern {

// ---- thread pool ----------------------------------------------------------

namespace {

// One idle-spin step: keep the core's pipeline polite while watching the
// job epoch, without yielding the timeslice (the whole point of spinning
// is sub-microsecond wakeup for the next GEMM burst).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Pool telemetry (obs::Registry::global(), DESIGN.md §8.2). References are
// resolved once — recording is a single relaxed atomic add, cheap enough
// for the per-chunk path.
//   kern.pool.jobs           parallel_for calls dispatched to the pool
//   kern.pool.inline_jobs    parallel_for calls run inline (1 lane / 1 chunk)
//   kern.pool.chunks_stolen  chunks executed by worker lanes (the rest ran
//                            on the calling lane — steal ratio gauges how
//                            well GEMM panels actually spread)
//   kern.pool.idle_waits     times a worker found the queue empty and slept
//   kern.pool.parked         workers currently parked on the cv (gauge) —
//                            lanes_-1 at rest, dipping toward 0 under load;
//                            spinning lanes are NOT parked, so a steady
//                            nonzero dip with no jobs means the spin window
//                            is too long
struct PoolMetrics {
  obs::Counter& jobs = obs::Registry::global().counter("kern.pool.jobs");
  obs::Counter& inline_jobs =
      obs::Registry::global().counter("kern.pool.inline_jobs");
  obs::Counter& chunks_stolen =
      obs::Registry::global().counter("kern.pool.chunks_stolen");
  obs::Counter& idle_waits =
      obs::Registry::global().counter("kern.pool.idle_waits");
  obs::Gauge& parked = obs::Registry::global().gauge("kern.pool.parked");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

struct Job {
  void (*fn)(void*, int) = nullptr;
  void* ctx = nullptr;
  int count = 0;
  int next_claim = 0;  // guarded by the pool mutex
  std::atomic<int> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  Job* link = nullptr;  // FIFO queue, guarded by the pool mutex
};

// Persistent pool. Jobs live on their caller's stack; workers reach them
// only through the queue, and a caller unlinks its job before destroying
// it, so no heap allocation happens per parallel_for.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() { stop_workers(); }

  int lanes() const { return lanes_.load(std::memory_order_relaxed); }

  void resize(int n) {
    // Serialized against concurrent resizes (e.g. two servers constructed
    // on different threads); still must not overlap an in-flight
    // parallel_for, per the header contract.
    std::lock_guard<std::mutex> resize_lock(resize_mu_);
    n = std::max(1, n);
    if (n == lanes()) return;
    stop_workers();
    lanes_.store(n, std::memory_order_relaxed);
    spawn_workers();
  }

  void set_pin(bool pin) {
    std::lock_guard<std::mutex> resize_lock(resize_mu_);
    if (pin == pin_.load(std::memory_order_relaxed)) return;
    stop_workers();
    pin_.store(pin, std::memory_order_relaxed);
    spawn_workers();
  }

  bool pinned() const { return pin_.load(std::memory_order_relaxed); }

  void run(Job& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tail_ != nullptr) {
        tail_->link = &job;
      } else {
        head_ = &job;
      }
      tail_ = &job;
    }
    // Release-publish the enqueue to spinning lanes: a spinner that sees
    // the new epoch relocks and finds the job without a cv round trip.
    job_epoch_.fetch_add(1, std::memory_order_release);
    cv_.notify_all();

    // The caller is a lane too: claim panels from its own job until none
    // are left. This guarantees completion even with zero workers.
    work(job);

    // Unlink before the stack frame dies; a worker that saw the exhausted
    // job pops it itself, so the job may or may not still be queued.
    {
      std::lock_guard<std::mutex> lock(mu_);
      unlink_locked(job);
    }
    std::unique_lock<std::mutex> lock(job.done_mu);
    job.done_cv.wait(lock, [&job] { return job.done; });
  }

 private:
  Pool() : lanes_(default_threads()) { spawn_workers(); }

  void spawn_workers() {
    stop_.store(false, std::memory_order_relaxed);
    const int n = lanes() - 1;
    workers_.reserve(static_cast<std::size_t>(std::max(0, n)));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void unlink_locked(Job& job) {
    Job** pp = &head_;
    while (*pp != nullptr && *pp != &job) pp = &(*pp)->link;
    if (*pp == &job) *pp = job.link;
    tail_ = nullptr;
    for (Job* j = head_; j != nullptr; j = j->link) tail_ = j;
  }

  static void finish_chunk(Job& job) {
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done = true;
      job.done_cv.notify_all();
    }
  }

  void work(Job& job) {
    for (;;) {
      int i;
      {
        std::lock_guard<std::mutex> lock(mu_);
        i = job.next_claim++;
      }
      if (i >= job.count) return;
      job.fn(job.ctx, i);
      finish_chunk(job);
    }
  }

  // A lane with no queued work spins this many relax iterations watching
  // the job epoch before parking on the cv. GEMM jobs arrive in bursts a
  // few microseconds apart during a pooled forward; a parked lane pays a
  // futex wake + scheduler hop per job, a spinning lane picks the next one
  // up in nanoseconds. The bound keeps a stage-idle pipeline worker's
  // lanes (serve, DESIGN.md §9.1) from burning cycles the busy stage needs:
  // ~4k pauses is a handful of microseconds, then the lane parks for real.
  static constexpr int kIdleSpins = 4096;

  void worker_loop(int lane_index) {
    if (pin_.load(std::memory_order_relaxed)) {
      // Lane 0 is whatever thread calls run(); offset so dedicated lanes
      // spread over the remaining allowed CPUs. Best-effort by contract.
      util::pin_current_thread_to_cpu(lane_index + 1);
    }
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (head_ == nullptr && !stop_.load(std::memory_order_relaxed)) {
        // Bounded spin-then-park: drop the lock, watch the epoch.
        const std::uint64_t epoch =
            job_epoch_.load(std::memory_order_relaxed);
        lock.unlock();
        bool signalled = false;
        for (int spin = 0; spin < kIdleSpins; ++spin) {
          if (job_epoch_.load(std::memory_order_acquire) != epoch ||
              stop_.load(std::memory_order_acquire)) {
            signalled = true;
            break;
          }
          cpu_relax();
        }
        lock.lock();
        if (!signalled && head_ == nullptr &&
            !stop_.load(std::memory_order_relaxed)) {
          pool_metrics().idle_waits.add();
          pool_metrics().parked.add(1);
          cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_relaxed) || head_ != nullptr;
          });
          pool_metrics().parked.add(-1);
        }
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      Job* job = head_;
      if (job == nullptr) continue;
      const int i = job->next_claim++;
      if (i >= job->count) {
        // Exhausted: pop and look for the next job. In-flight chunks of
        // this job finish on the lanes that claimed them.
        head_ = job->link;
        if (head_ == nullptr) tail_ = nullptr;
        continue;
      }
      lock.unlock();
      job->fn(job->ctx, i);
      pool_metrics().chunks_stolen.add();
      finish_chunk(*job);
      lock.lock();
    }
  }

  std::atomic<int> lanes_;
  std::atomic<bool> pin_{false};
  // Bumped (release) on every enqueue so spinning lanes detect new work
  // without taking mu_; stop_ is atomic for the same lock-free spin reads.
  std::atomic<std::uint64_t> job_epoch_{0};
  std::atomic<bool> stop_{false};
  std::mutex resize_mu_;
  std::mutex mu_;
  std::condition_variable cv_;
  Job* head_ = nullptr;
  Job* tail_ = nullptr;
  std::vector<std::thread> workers_;
};

}  // namespace

int default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void set_threads(int n) { Pool::instance().resize(n); }

int threads() { return Pool::instance().lanes(); }

void set_pin_threads(bool pin) { Pool::instance().set_pin(pin); }

bool pin_threads() { return Pool::instance().pinned(); }

namespace detail {

void parallel_for_impl(int count, void (*fn)(void*, int), void* ctx) {
  if (count <= 0) return;
  Pool& pool = Pool::instance();
  if (count == 1 || pool.lanes() <= 1) {
    pool_metrics().inline_jobs.add();
    for (int i = 0; i < count; ++i) fn(ctx, i);
    return;
  }
  pool_metrics().jobs.add();
  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.count = count;
  job.remaining.store(count, std::memory_order_relaxed);
  pool.run(job);
}

}  // namespace detail

// ---- workspace ------------------------------------------------------------

float* Workspace::alloc(std::size_t n) {
  if (n == 0) n = 1;
  for (Block& block : blocks_) {
    if (block.data.size() - block.used >= n) {
      float* p = block.data.data() + block.used;
      block.used += n;
      return p;
    }
  }
  ++grows_;
  blocks_.emplace_back();
  Block& block = blocks_.back();
  block.data.resize(std::max(n, kMinBlockFloats));
  block.used = n;
  return block.data.data();
}

void Workspace::reset() {
  for (Block& block : blocks_) block.used = 0;
}

std::size_t Workspace::capacity_floats() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.data.size();
  return total;
}

Workspace& Workspace::for_this_thread() {
  static thread_local Workspace ws;
  return ws;
}

// ---- transcendental approximations ----------------------------------------
//
// fast_exp / gelu_approx live in kern_math.hpp (shared with the int8
// epilogue in kernels_int8.cpp); pure arithmetic + integer bit ops, so the
// autovectoriser turns the softmax and GELU loops into SIMD where scalar
// expf/tanhf calls never would.

namespace {

using detail::fast_exp;
using detail::gelu_approx;

}  // namespace

float gelu_scalar(float x) { return gelu_approx(x); }

// ---- GEMM -----------------------------------------------------------------

namespace {

// Micro-tile: kMr row accumulator strips of kNc floats (3 AVX2 registers
// each) live across the whole k loop, so each output element is one
// ascending-k accumulation chain — the same per-element summation order as
// the autograd matmul, just held in registers instead of memory.
constexpr int kMr = 4;
constexpr int kNc = 24;

// Work below this m*n*k stays on the calling thread (panel dispatch costs
// more than it saves). Matches the OpenMP gate the autograd matmul used.
constexpr std::size_t kParallelMinFlops = 65536;

// The body is ISA-neutral and always_inline: each dispatch wrapper below
// pulls it in and compiles it for its own target, which is what makes the
// cc loops vectorise with AVX2+FMA where available.
__attribute__((always_inline)) inline void gemm_rows_body(
    const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
    std::size_t ldc, int m, int k, int n, const float* bias, bool gelu,
    float scale) {
  const auto store = [&](float* dst, float acc, int j) {
    float v = acc * scale;
    if (bias != nullptr) v += bias[j];
    if (gelu) v = gelu_approx(v);
    *dst = v;
  };
  int i = 0;
  for (; i + kMr <= m; i += kMr) {
    int j = 0;
    for (; j + kNc <= n; j += kNc) {
      float acc[kMr][kNc] = {};
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * ldb + j;
        for (int r = 0; r < kMr; ++r) {
          const float ar = a[static_cast<std::size_t>(i + r) * lda + p];
          for (int cc = 0; cc < kNc; ++cc) acc[r][cc] += ar * brow[cc];
        }
      }
      for (int r = 0; r < kMr; ++r) {
        float* crow = c + static_cast<std::size_t>(i + r) * ldc + j;
        for (int cc = 0; cc < kNc; ++cc) store(crow + cc, acc[r][cc], j + cc);
      }
    }
    if (j < n) {  // column remainder, nr < kNc (runtime bound vectorises)
      const int nr = n - j;
      float acc[kMr][kNc] = {};
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * ldb + j;
        for (int r = 0; r < kMr; ++r) {
          const float ar = a[static_cast<std::size_t>(i + r) * lda + p];
          for (int cc = 0; cc < nr; ++cc) acc[r][cc] += ar * brow[cc];
        }
      }
      for (int r = 0; r < kMr; ++r) {
        float* crow = c + static_cast<std::size_t>(i + r) * ldc + j;
        for (int cc = 0; cc < nr; ++cc) store(crow + cc, acc[r][cc], j + cc);
      }
    }
  }
  if (i < m) {  // row remainder, mr < kMr
    const int mr = m - i;
    for (int j = 0; j < n; j += kNc) {
      const int nr = std::min(kNc, n - j);
      float acc[kMr][kNc] = {};
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * ldb + j;
        for (int r = 0; r < mr; ++r) {
          const float ar = a[static_cast<std::size_t>(i + r) * lda + p];
          for (int cc = 0; cc < nr; ++cc) acc[r][cc] += ar * brow[cc];
        }
      }
      for (int r = 0; r < mr; ++r) {
        float* crow = c + static_cast<std::size_t>(i + r) * ldc + j;
        for (int cc = 0; cc < nr; ++cc) store(crow + cc, acc[r][cc], j + cc);
      }
    }
  }
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EASZ_KERN_X86_DISPATCH 1
__attribute__((target("avx2,fma"))) void gemm_rows_avx2(
    const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
    std::size_t ldc, int m, int k, int n, const float* bias, bool gelu,
    float scale) {
  gemm_rows_body(a, lda, b, ldb, c, ldc, m, k, n, bias, gelu, scale);
}
#endif

void gemm_rows_base(const float* a, std::size_t lda, const float* b,
                    std::size_t ldb, float* c, std::size_t ldc, int m, int k,
                    int n, const float* bias, bool gelu, float scale) {
  gemm_rows_body(a, lda, b, ldb, c, ldc, m, k, n, bias, gelu, scale);
}

void gemm_rows(const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float* c, std::size_t ldc, int m, int k, int n,
               const GemmOpts& o) {
#ifdef EASZ_KERN_X86_DISPATCH
  static const bool use_avx2 =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (use_avx2) {
    gemm_rows_avx2(a, lda, b, ldb, c, ldc, m, k, n, o.bias, o.gelu, o.scale);
    return;
  }
#endif
  gemm_rows_base(a, lda, b, ldb, c, ldc, m, k, n, o.bias, o.gelu, o.scale);
}

// Grow-only per-thread scratch for the transpose-B pack. Steady state:
// zero allocations (it never shrinks).
std::vector<float>& pack_scratch() {
  static thread_local std::vector<float> scratch;
  return scratch;
}

}  // namespace

void gemm(const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c, std::size_t ldc, int m, int k, int n,
          const GemmOpts& opts) {
  if (m <= 0 || n <= 0 || k <= 0) return;

  GemmOpts o = opts;
  if (o.transpose_b) {
    // Pack B^T ([n, k] row-major -> [k, n]) into thread-local scratch and
    // fall through to the streaming kernel. Packing only moves data, so
    // the per-element accumulation order is untouched; the O(k*n) copy is
    // paid back by contiguous loads in the O(m*k*n) loop.
    std::vector<float>& scratch = pack_scratch();
    const std::size_t need = static_cast<std::size_t>(k) * n;
    if (scratch.size() < need) scratch.resize(need);
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * ldb;
      for (int p = 0; p < k; ++p) {
        scratch[static_cast<std::size_t>(p) * n + j] = brow[p];
      }
    }
    b = scratch.data();
    ldb = static_cast<std::size_t>(n);
    o.transpose_b = false;
  }

  const std::size_t work = static_cast<std::size_t>(m) * n * k;
  const int lanes = threads();
  if (!o.parallel || lanes <= 1 || work < kParallelMinFlops) {
    gemm_rows(a, lda, b, ldb, c, ldc, m, k, n, o);
    return;
  }
  // Row panels, a multiple of the micro-tile height so every row keeps the
  // same full-tile/remainder classification whatever the lane count; ~4
  // panels per lane so fast lanes steal the stragglers' leftovers.
  int panel = (m + lanes * 4 - 1) / (lanes * 4);
  panel = std::max(kMr, (panel + kMr - 1) / kMr * kMr);
  const int panels = (m + panel - 1) / panel;
  parallel_for(panels, [&](int pi) {
    const int r0 = pi * panel;
    const int rows = std::min(panel, m - r0);
    gemm_rows(a + static_cast<std::size_t>(r0) * lda, lda, b, ldb,
              c + static_cast<std::size_t>(r0) * ldc, ldc, rows, k, n, o);
  });
}

// ---- fused row kernels ----------------------------------------------------

namespace {

// Eight-lane max reduction: a sequential float max loop compiles to a
// data-dependent branch (mispredicting on random scores); splitting into
// lanes is branchless and vector-friendly, and max is exact, so any
// reduction order yields the identical maximum.
__attribute__((always_inline)) inline float row_max(const float* row, int d) {
  if (d >= 8) {
    float lanes[8];
    for (int c = 0; c < 8; ++c) lanes[c] = row[c];
    int j = 8;
    for (; j + 8 <= d; j += 8) {
      for (int c = 0; c < 8; ++c) lanes[c] = std::max(lanes[c], row[j + c]);
    }
    float mx = lanes[0];
    for (int c = 1; c < 8; ++c) mx = std::max(mx, lanes[c]);
    for (; j < d; ++j) mx = std::max(mx, row[j]);
    return mx;
  }
  float mx = row[0];
  for (int j = 1; j < d; ++j) mx = std::max(mx, row[j]);
  return mx;
}

// Same shape as the autograd softmax: stable max-shift, exponentiate,
// sequentially-ordered denominator sum (keeps the summation order), scale.
// Only the exp is approximated and the max reduced in lanes.
__attribute__((always_inline)) inline void softmax_span_body(float* x,
                                                             std::size_t rows,
                                                             int d) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = x + r * static_cast<std::size_t>(d);
    const float mx = row_max(row, d);
    for (int j = 0; j < d; ++j) row[j] = fast_exp(row[j] - mx);
    float denom = 0.0F;
    for (int j = 0; j < d; ++j) denom += row[j];
    const float inv = 1.0F / denom;
    for (int j = 0; j < d; ++j) row[j] *= inv;
  }
}

#ifdef EASZ_KERN_X86_DISPATCH
__attribute__((target("avx2,fma"))) void softmax_span_avx2(float* x,
                                                           std::size_t rows,
                                                           int d) {
  softmax_span_body(x, rows, d);
}
#endif

void softmax_span(float* x, std::size_t rows, int d) {
#ifdef EASZ_KERN_X86_DISPATCH
  static const bool use_avx2 =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (use_avx2) {
    softmax_span_avx2(x, rows, d);
    return;
  }
#endif
  softmax_span_body(x, rows, d);
}

void layernorm_span(const float* x, const float* gamma, const float* beta,
                    float* y, std::size_t rows, int d, float eps) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * static_cast<std::size_t>(d);
    float* yr = y + r * static_cast<std::size_t>(d);
    float mu = 0.0F;
    for (int j = 0; j < d; ++j) mu += xr[j];
    mu /= static_cast<float>(d);
    float var = 0.0F;
    for (int j = 0; j < d; ++j) {
      const float cjm = xr[j] - mu;
      var += cjm * cjm;
    }
    var /= static_cast<float>(d);
    const float inv_sd = 1.0F / std::sqrt(var + eps);
    for (int j = 0; j < d; ++j) {
      yr[j] = (xr[j] - mu) * inv_sd * gamma[j] + beta[j];
    }
  }
}

// Splits `rows` into ~4 chunks per lane and runs `fn(first, count)`.
template <typename F>
void parallel_rows(std::size_t rows, std::size_t min_rows, bool parallel,
                   F&& fn) {
  const int lanes = threads();
  if (!parallel || lanes <= 1 || rows < min_rows) {
    fn(static_cast<std::size_t>(0), rows);
    return;
  }
  const std::size_t chunk =
      std::max<std::size_t>(1, rows / (static_cast<std::size_t>(lanes) * 4));
  const int chunks = static_cast<int>((rows + chunk - 1) / chunk);
  parallel_for(chunks, [&](int ci) {
    const std::size_t first = static_cast<std::size_t>(ci) * chunk;
    fn(first, std::min(chunk, rows - first));
  });
}

}  // namespace

void softmax_rows(float* x, std::size_t rows, int d, bool parallel) {
  if (rows == 0 || d <= 0) return;
  parallel_rows(rows, 256, parallel, [&](std::size_t first, std::size_t n) {
    softmax_span(x + first * static_cast<std::size_t>(d), n, d);
  });
}

void layernorm_rows(const float* x, const float* gamma, const float* beta,
                    float* y, std::size_t rows, int d, float eps,
                    bool parallel) {
  if (rows == 0 || d <= 0) return;
  parallel_rows(rows, 256, parallel, [&](std::size_t first, std::size_t n) {
    const std::size_t off = first * static_cast<std::size_t>(d);
    layernorm_span(x + off, gamma, beta, y + off, n, d, eps);
  });
}

void add_rows(const float* a, const float* b, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

}  // namespace easz::tensor::kern
