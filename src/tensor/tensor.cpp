#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace easz::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (const int d : shape) {
    if (d <= 0) throw std::invalid_argument("shape: non-positive dim");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape, bool requires_grad) {
  node_ = std::make_shared<detail::Node>();
  node_->data.assign(shape_numel(shape), 0.0F);
  node_->shape = std::move(shape);
  node_->requires_grad = requires_grad;
}

Tensor::Tensor(Shape shape, std::vector<float> data, bool requires_grad) {
  if (shape_numel(shape) != data.size()) {
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_str(shape));
  }
  node_ = std::make_shared<detail::Node>();
  node_->shape = std::move(shape);
  node_->data = std::move(data);
  node_->requires_grad = requires_grad;
}

Tensor Tensor::zeros(const Shape& shape) { return Tensor(shape); }

Tensor Tensor::full(const Shape& shape, float value) {
  Tensor t(shape);
  std::fill(t.data().begin(), t.data().end(), value);
  return t;
}

Tensor Tensor::randn(const Shape& shape, util::Pcg32& rng, float stddev,
                     bool requires_grad) {
  Tensor t(shape, requires_grad);
  for (auto& v : t.data()) v = rng.next_gaussian() * stddev;
  return t;
}

const Shape& Tensor::shape() const {
  if (!node_) throw std::logic_error("Tensor: undefined");
  return node_->shape;
}

int Tensor::dim(int i) const {
  const Shape& s = shape();
  if (i < 0) i += static_cast<int>(s.size());
  if (i < 0 || i >= static_cast<int>(s.size())) {
    throw std::invalid_argument("Tensor::dim: index out of range");
  }
  return s[i];
}

std::size_t Tensor::numel() const { return node_->data.size(); }

const std::vector<float>& Tensor::data() const { return node_->data; }
std::vector<float>& Tensor::data() { return node_->data; }

const std::vector<float>& Tensor::grad() const {
  if (!node_) throw std::logic_error("Tensor: undefined");
  return node_->grad;
}

bool Tensor::requires_grad() const { return node_ && node_->requires_grad; }

float Tensor::item() const {
  if (numel() != 1) throw std::logic_error("Tensor::item: numel != 1");
  return node_->data[0];
}

namespace {

void topo_sort(const std::shared_ptr<detail::Node>& root,
               std::vector<detail::Node*>& order) {
  // Iterative DFS post-order; visit_mark: 0 unvisited, 1 in stack, 2 done.
  std::vector<std::pair<detail::Node*, std::size_t>> stack{{root.get(), 0}};
  root->visit_mark = 1;
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      detail::Node* child = node->parents[next_child].get();
      ++next_child;
      if (child->visit_mark == 0) {
        child->visit_mark = 1;
        stack.emplace_back(child, 0);
      }
    } else {
      node->visit_mark = 2;
      order.push_back(node);
      stack.pop_back();
    }
  }
}

void clear_marks(const std::vector<detail::Node*>& order) {
  for (detail::Node* n : order) n->visit_mark = 0;
}

}  // namespace

void Tensor::backward() {
  if (!node_) throw std::logic_error("Tensor::backward: undefined");
  if (numel() != 1) {
    throw std::logic_error("Tensor::backward: only scalar roots supported");
  }
  std::vector<detail::Node*> order;
  topo_sort(node_, order);

  node_->ensure_grad();
  node_->grad[0] = 1.0F;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* n = *it;
    if (n->backward_fn && !n->grad.empty()) n->backward_fn(*n);
  }
  clear_marks(order);
}

void Tensor::zero_grad() {
  if (!node_) return;
  std::vector<detail::Node*> order;
  topo_sort(node_, order);
  for (detail::Node* n : order) n->grad.clear();
  clear_marks(order);
}

Tensor Tensor::detach() const {
  Tensor t;
  auto node = std::make_shared<detail::Node>();
  node->shape = node_->shape;
  node->data = node_->data;
  node->requires_grad = false;
  return from_node(std::move(node));
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch " +
                                shape_str(shape()) + " -> " +
                                shape_str(new_shape));
  }
  auto node = std::make_shared<detail::Node>();
  node->shape = std::move(new_shape);
  node->data = node_->data;
  node->requires_grad = node_->requires_grad;
  if (node_->requires_grad || node_->backward_fn || !node_->parents.empty()) {
    node->parents = {node_};
    node->requires_grad = true;
    auto parent = node_;
    node->backward_fn = [parent](detail::Node& self) {
      parent->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        parent->grad[i] += self.grad[i];
      }
    };
  }
  return from_node(std::move(node));
}

Tensor Tensor::from_node(std::shared_ptr<detail::Node> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

}  // namespace easz::tensor
