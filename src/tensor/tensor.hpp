// Dense float tensor with reverse-mode automatic differentiation.
//
// This is the training/inference substrate for the whole project: the Easz
// transformer reconstructor, the neural-codec baselines and the SR baselines
// all run on it. Design:
//
//  * `Tensor` is a cheap value-type handle onto a shared node. Ops build a
//    DAG of nodes; each node stores its data, (lazily allocated) grad and a
//    backward closure that scatters into its parents' grads.
//  * Shapes are row-major, rank 1..4. Ops validate shapes eagerly and throw
//    std::invalid_argument on mismatch.
//  * `backward()` topologically sorts the reachable graph and runs closures
//    in reverse. Gradients accumulate (+=), so zero_grad between steps.
//  * Nothing here is thread-aware except the matmul kernels, which use
//    OpenMP when available.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/prng.hpp"

namespace easz::tensor {

using Shape = std::vector<int>;

/// Number of elements of a shape.
std::size_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" - for error messages.
std::string shape_str(const Shape& shape);

namespace detail {

struct Node {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // empty until touched by backward
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward_fn;  // scatters this->grad into parents
  int visit_mark = 0;  // scratch for topological sort

  void ensure_grad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0F);
  }
};

}  // namespace detail

class Tensor {
 public:
  Tensor() = default;

  /// Zero-filled tensor. `requires_grad` marks it as a leaf parameter.
  explicit Tensor(Shape shape, bool requires_grad = false);

  /// Wraps existing data (copied). Throws if sizes mismatch.
  Tensor(Shape shape, std::vector<float> data, bool requires_grad = false);

  static Tensor zeros(const Shape& shape);
  static Tensor full(const Shape& shape, float value);
  /// Kaiming-style normal init with std = gain / sqrt(fan_in).
  static Tensor randn(const Shape& shape, util::Pcg32& rng, float stddev = 1.0F,
                      bool requires_grad = false);

  [[nodiscard]] bool defined() const { return node_ != nullptr; }
  [[nodiscard]] const Shape& shape() const;
  [[nodiscard]] int dim(int i) const;
  [[nodiscard]] int rank() const { return static_cast<int>(shape().size()); }
  [[nodiscard]] std::size_t numel() const;

  [[nodiscard]] const std::vector<float>& data() const;
  [[nodiscard]] std::vector<float>& data();
  [[nodiscard]] const std::vector<float>& grad() const;

  [[nodiscard]] bool requires_grad() const;

  [[nodiscard]] float item() const;  // rank-agnostic single-element read

  /// Runs reverse-mode AD from this (scalar) tensor. Seeds d(this)/d(this)=1.
  void backward();

  /// Clears gradients across the graph reachable from this tensor.
  void zero_grad();

  /// Detaches from the autograd graph (shares data, no parents).
  [[nodiscard]] Tensor detach() const;

  /// Reshape (same numel), participates in autograd.
  [[nodiscard]] Tensor reshape(Shape new_shape) const;

  // Internal: access the node (used by ops.cpp).
  [[nodiscard]] const std::shared_ptr<detail::Node>& node() const {
    return node_;
  }
  static Tensor from_node(std::shared_ptr<detail::Node> node);

 private:
  std::shared_ptr<detail::Node> node_;
};

}  // namespace easz::tensor
