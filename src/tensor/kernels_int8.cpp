// Int8 inference GEMM (tensor::kern, DESIGN.md §7).
//
// u8 activations (zero point 128) times s8 per-output-channel weights with
// exact i32 accumulation and a fused dequant + bias + GELU epilogue. Split
// of labour between the two compiled paths:
//
//   * integer part — AVX2 (vpmaddwd over k-pairs) or portable scalar, both
//     reading the same pair-interleaved PackedBInt8 layout. Integer sums
//     are associative and never saturate here (k <= 65536 bounds the worst
//     case at 255 * 127 * 65536 < 2^31), so the accumulators are identical
//     bit-for-bit whatever the path, thread count or summation order.
//     vpmaddubsw is deliberately NOT used: its i16 pair sums saturate at
//     255 * 127 * 2 = 64770 > 32767, which would make results depend on
//     how k happens to pair up. Widening to i16 first (vpmovsxbw) and
//     multiplying with vpmaddwd costs one extra instruction per B load and
//     buys exactness.
//   * dequant epilogue — ONE scalar op sequence (dequant_row) with an
//     AVX2 twin built ONLY from per-lane-exact intrinsics: mul/add/sub/
//     div/min/max/cvt and integer bit ops, never FMA and never compiler-
//     autovectorised AVX2 C code (GCC would contract mul+add chains under
//     a target attribute and shift the last bits). Every one of those
//     intrinsics is IEEE-defined per lane, so the two epilogues agree
//     bit-for-bit — including the polynomial fast_exp inside GELU — and
//     the fp32 outputs are identical on every x86-64 machine. The golden
//     bytes in tests/golden_int8.inc pin exactly this.
//
// Parallelism mirrors the fp32 gemm: row panels in multiples of the 4-row
// micro-tile, stolen dynamically off the shared pool.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/kern_math.hpp"
#include "tensor/kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EASZ_KERN_INT8_AVX2 1
#include <immintrin.h>
#endif

namespace easz::tensor::kern {

namespace {

constexpr int kMr8 = 4;   // rows per micro-tile (A pairs packed per block)
constexpr int kNc8 = 16;  // columns per micro-tile (2 x 8 i32 accumulators)

// Same serial/parallel gate as the fp32 gemm; int8 work per element is
// cheaper, but so is the win from offloading it.
constexpr std::size_t kParallelMinOps = 65536;

// ---- dequant epilogue -----------------------------------------------------
//
// Scalar reference semantics; the AVX2 twin below replicates this exact
// operation sequence lane-wise (see file comment for why that is bit-safe).

void dequant_row(const std::int32_t* acc, float* c, int j0, int n,
                 const float* dq_scale, const std::int32_t* col_sum,
                 const float* bias, bool gelu) {
  for (int j = 0; j < n; ++j) {
    const int col = j0 + j;
    float v = static_cast<float>(acc[j] - kActZeroPoint * col_sum[col]) *
              dq_scale[col];
    if (bias != nullptr) v += bias[col];
    if (gelu) v = detail::gelu_approx(v);
    c[col] = v;
  }
}

#ifdef EASZ_KERN_INT8_AVX2

// fast_exp (kern_math.hpp) transcribed op-for-op onto 8 lanes. Separate
// _mm256_mul_ps / _mm256_add_ps — the compiler never fuses explicit
// intrinsics into FMA, so each lane reproduces the scalar rounding.
__attribute__((target("avx2"), always_inline)) inline __m256 fast_exp_v8(
    __m256 x) {
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341F);
  const __m256 ln2_hi = _mm256_set1_ps(0.693359375F);
  const __m256 ln2_lo = _mm256_set1_ps(-2.12194440e-4F);
  const __m256 round_c = _mm256_set1_ps(12582912.0F);  // 1.5 * 2^23
  x = _mm256_max_ps(_mm256_set1_ps(-87.0F),
                    _mm256_min_ps(_mm256_set1_ps(88.0F), x));
  const __m256 z = _mm256_add_ps(_mm256_mul_ps(x, log2e), round_c);
  const __m256 n = _mm256_sub_ps(z, round_c);
  const __m256 r = _mm256_sub_ps(_mm256_sub_ps(x, _mm256_mul_ps(n, ln2_hi)),
                                 _mm256_mul_ps(n, ln2_lo));
  __m256 p = _mm256_set1_ps(1.9875691500e-4F);
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.3981999507e-3F));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(8.3334519073e-3F));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(4.1665795894e-2F));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.6666665459e-1F));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(5.0000001201e-1F));
  // er = ((p*r)*r + r) + 1
  const __m256 er = _mm256_add_ps(
      _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, r), r), r),
      _mm256_set1_ps(1.0F));
  const __m256i ni = _mm256_sub_epi32(_mm256_castps_si256(z),
                                      _mm256_castps_si256(round_c));
  const __m256 scale = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23));
  return _mm256_mul_ps(er, scale);
}

// gelu_approx transcribed the same way: inner = kC * (x + ((kA*x)*x)*x),
// t = 1 - 2 / (e^{2*inner} + 1), y = (0.5*x) * (1 + t).
__attribute__((target("avx2"), always_inline)) inline __m256 gelu_v8(
    __m256 x) {
  const __m256 kc = _mm256_set1_ps(0.7978845608F);
  const __m256 ka = _mm256_set1_ps(0.044715F);
  const __m256 one = _mm256_set1_ps(1.0F);
  const __m256 x3 = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(ka, x), x), x);
  const __m256 inner = _mm256_mul_ps(kc, _mm256_add_ps(x, x3));
  const __m256 e2u =
      fast_exp_v8(_mm256_mul_ps(_mm256_set1_ps(2.0F), inner));
  const __m256 t = _mm256_sub_ps(
      one, _mm256_div_ps(_mm256_set1_ps(2.0F), _mm256_add_ps(e2u, one)));
  return _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5F), x),
                       _mm256_add_ps(one, t));
}

// 8 columns of the epilogue. acc already holds the raw i32 dot products.
__attribute__((target("avx2"), always_inline)) inline void dequant8(
    __m256i acc, float* c, const float* dq_scale, const std::int32_t* col_sum,
    const float* bias, bool gelu) {
  const __m256i zp = _mm256_set1_epi32(kActZeroPoint);
  const __m256i cs = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(col_sum));
  const __m256i corrected =
      _mm256_sub_epi32(acc, _mm256_mullo_epi32(zp, cs));
  __m256 v = _mm256_mul_ps(_mm256_cvtepi32_ps(corrected),
                           _mm256_loadu_ps(dq_scale));
  if (bias != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(bias));
  if (gelu) v = gelu_v8(v);
  _mm256_storeu_ps(c, v);
}

#endif  // EASZ_KERN_INT8_AVX2

// Packs `rows` rows of A into k-pair u32 words:
// word[r][p] = a[r][2p] | a[r][2p+1] << 16. Odd k pads the final a1 with
// literal 0 — it only ever multiplies the B pad, which is also 0.
void pack_a_pairs(const std::uint8_t* a, std::size_t lda, int rows, int k,
                  std::uint32_t* out, int kp) {
  for (int r = 0; r < rows; ++r) {
    const std::uint8_t* row = a + static_cast<std::size_t>(r) * lda;
    std::uint32_t* dst = out + static_cast<std::size_t>(r) * kp;
    int p = 0;
    for (; 2 * p + 1 < k; ++p) {
      dst[p] = static_cast<std::uint32_t>(row[2 * p]) |
               (static_cast<std::uint32_t>(row[2 * p + 1]) << 16);
    }
    if (p < kp) dst[p] = static_cast<std::uint32_t>(row[2 * p]);
  }
}

// ---- scalar integer kernel ------------------------------------------------

// acc[j] = sum over pairs of a0 * b[2p][j] + a1 * b[2p+1][j], reading the
// packed layout. Plain integer arithmetic: exact, any order.
void accumulate_scalar(const std::uint32_t* a_pairs, int kp,
                       const std::int8_t* b, int n, int j0, int cols,
                       std::int32_t* acc) {
  for (int j = 0; j < cols; ++j) acc[j] = 0;
  for (int p = 0; p < kp; ++p) {
    const std::int32_t a0 = static_cast<std::int32_t>(a_pairs[p] & 0xFFFFU);
    const std::int32_t a1 = static_cast<std::int32_t>(a_pairs[p] >> 16);
    const std::int8_t* brow =
        b + (static_cast<std::size_t>(p) * n + j0) * 2;
    for (int j = 0; j < cols; ++j) {
      acc[j] += a0 * brow[2 * j] + a1 * brow[2 * j + 1];
    }
  }
}

void gemm_rows_u8s8_base(const std::uint32_t* a_pairs, std::size_t apld,
                         int kp, const PackedBInt8& b, float* c,
                         std::size_t ldc, int rows, int n,
                         const float* dq_scale, const std::int32_t* col_sum,
                         const float* bias, bool gelu) {
  std::int32_t acc[kNc8];
  for (int r = 0; r < rows; ++r) {
    const std::uint32_t* arow = a_pairs + static_cast<std::size_t>(r) * apld;
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < n; j += kNc8) {
      const int cols = std::min(kNc8, n - j);
      accumulate_scalar(arow, kp, b.data.data(), n, j, cols, acc);
      dequant_row(acc, crow, j, cols, dq_scale, col_sum, bias, gelu);
    }
  }
}

// ---- AVX2 integer kernel --------------------------------------------------

#ifdef EASZ_KERN_INT8_AVX2

// 4 rows x 16 columns of i32 accumulators (8 ymm registers) live across the
// whole k loop. Per k-pair: two 16-byte B loads cover 16 columns x 2 k
// positions; vpmovsxbw widens to i16; each row broadcasts its packed
// (a0, a1) word and vpmaddwd produces exact per-column i32 pair-sums.
__attribute__((target("avx2"))) void gemm_rows_u8s8_avx2(
    const std::uint32_t* a_pairs, std::size_t apld, int kp,
    const PackedBInt8& b, float* c, std::size_t ldc, int rows, int n,
    const float* dq_scale, const std::int32_t* col_sum, const float* bias,
    bool gelu) {
  const std::int8_t* bp = b.data.data();
  alignas(32) std::int32_t acc_store[kNc8];

  int r = 0;
  for (; r + kMr8 <= rows; r += kMr8) {
    const std::uint32_t* ar[kMr8];
    for (int t = 0; t < kMr8; ++t) {
      ar[t] = a_pairs + static_cast<std::size_t>(r + t) * apld;
    }
    int j = 0;
    for (; j + kNc8 <= n; j += kNc8) {
      __m256i acc0[kMr8];
      __m256i acc1[kMr8];
      for (int t = 0; t < kMr8; ++t) {
        acc0[t] = _mm256_setzero_si256();
        acc1[t] = _mm256_setzero_si256();
      }
      const std::int8_t* bcol = bp + static_cast<std::size_t>(j) * 2;
      for (int p = 0; p < kp; ++p) {
        const std::int8_t* brow =
            bcol + static_cast<std::size_t>(p) * n * 2;
        const __m256i b0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow)));
        const __m256i b1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(brow + 16)));
        for (int t = 0; t < kMr8; ++t) {
          const __m256i apair =
              _mm256_set1_epi32(static_cast<int>(ar[t][p]));
          acc0[t] = _mm256_add_epi32(acc0[t], _mm256_madd_epi16(apair, b0));
          acc1[t] = _mm256_add_epi32(acc1[t], _mm256_madd_epi16(apair, b1));
        }
      }
      for (int t = 0; t < kMr8; ++t) {
        float* crow = c + static_cast<std::size_t>(r + t) * ldc + j;
        dequant8(acc0[t], crow, dq_scale + j, col_sum + j,
                 bias == nullptr ? nullptr : bias + j, gelu);
        dequant8(acc1[t], crow + 8, dq_scale + j + 8, col_sum + j + 8,
                 bias == nullptr ? nullptr : bias + j + 8, gelu);
      }
    }
    if (j < n) {  // column remainder: scalar integer path, same epilogue
      const int cols = n - j;
      for (int t = 0; t < kMr8; ++t) {
        accumulate_scalar(ar[t], kp, bp, n, j, cols, acc_store);
        dequant_row(acc_store, c + static_cast<std::size_t>(r + t) * ldc, j,
                    cols, dq_scale, col_sum, bias, gelu);
      }
    }
  }
  if (r < rows) {  // row remainder, one row at a time
    gemm_rows_u8s8_base(a_pairs + static_cast<std::size_t>(r) * apld, apld,
                        kp, b, c + static_cast<std::size_t>(r) * ldc, ldc,
                        rows - r, n, dq_scale, col_sum, bias, gelu);
  }
}

#endif  // EASZ_KERN_INT8_AVX2

void gemm_rows_u8s8(const std::uint32_t* a_pairs, std::size_t apld, int kp,
                    const PackedBInt8& b, float* c, std::size_t ldc, int rows,
                    int n, const float* dq_scale, const std::int32_t* col_sum,
                    const float* bias, bool gelu) {
#ifdef EASZ_KERN_INT8_AVX2
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2) {
    gemm_rows_u8s8_avx2(a_pairs, apld, kp, b, c, ldc, rows, n, dq_scale,
                        col_sum, bias, gelu);
    return;
  }
#endif
  gemm_rows_u8s8_base(a_pairs, apld, kp, b, c, ldc, rows, n, dq_scale,
                      col_sum, bias, gelu);
}

// Grow-only per-thread scratch for the packed-A pairs. Steady state: zero
// allocations, like the fp32 transpose pack.
std::vector<std::uint32_t>& a_pack_scratch() {
  static thread_local std::vector<std::uint32_t> scratch;
  return scratch;
}

}  // namespace

PackedBInt8 pack_b_s8(const std::int8_t* b, int k, int n) {
  if (k <= 0 || n <= 0) {
    throw std::invalid_argument("pack_b_s8: need positive dimensions");
  }
  if (k > 65536) {
    // 255 * 127 * 65536 < 2^31: beyond this the exact-i32 contract breaks.
    throw std::invalid_argument("pack_b_s8: k exceeds the exact-i32 bound");
  }
  PackedBInt8 out;
  out.k = k;
  out.n = n;
  const int kp = out.k_pairs();
  out.data.assign(static_cast<std::size_t>(kp) * n * 2, 0);
  for (int p = 0; p < k; ++p) {
    const std::int8_t* brow = b + static_cast<std::size_t>(p) * n;
    std::int8_t* dst = out.data.data() +
                       static_cast<std::size_t>(p / 2) * n * 2 + (p % 2);
    for (int j = 0; j < n; ++j) dst[2 * j] = brow[j];
  }
  return out;
}

namespace {

// Both paths clamp in the FLOAT domain first (to +-512, far outside the
// representable u8 range, so no in-range value is touched): lrintf is a
// 64-bit conversion while cvtps_epi32 is 32-bit, and without the pre-clamp
// the two would disagree on inputs wilder than 2^31 quantization steps
// (possible only with a degenerate calibration, but exactness is the
// whole contract here). NaN maps to the low clamp on both paths.
constexpr float kQuantClamp = 512.0F;

void quantize_span_base(const float* x, std::uint8_t* q, std::size_t count,
                        float inv) {
  for (std::size_t i = 0; i < count; ++i) {
    const float s =
        std::min(kQuantClamp, std::max(-kQuantClamp, x[i] * inv));
    // lrintf: round-to-nearest-even via cvtss2si — deterministic and fast.
    const long v = std::lrintf(s) + kActZeroPoint;
    q[i] = static_cast<std::uint8_t>(std::clamp<long>(v, 0, 255));
  }
}

#ifdef EASZ_KERN_INT8_AVX2

// 32 values per iteration: cvtps_epi32 rounds nearest-even exactly like
// lrintf, and the packs/packus pair saturates exactly like the scalar
// clamp (out-of-i32-range conversions produce INT_MIN on both paths, which
// both saturate to 0 after the zero-point shift).
__attribute__((target("avx2"))) void quantize_span_avx2(const float* x,
                                                        std::uint8_t* q,
                                                        std::size_t count,
                                                        float inv) {
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i zp = _mm256_set1_epi32(kActZeroPoint);
  // packs/packus interleave the two 128-bit lanes; this dword order undoes
  // the shuffle so bytes land in element order.
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::size_t i = 0;
  for (; i + 32 <= count; i += 32) {
    __m256i w[4];
    for (int t = 0; t < 4; ++t) {
      __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * t), vinv);
      // max_ps(v, lo): SRC2 wins on NaN — same result as the scalar
      // std::max(lo, s) (which keeps lo when s is NaN).
      v = _mm256_min_ps(_mm256_max_ps(v, _mm256_set1_ps(-kQuantClamp)),
                        _mm256_set1_ps(kQuantClamp));
      w[t] = _mm256_add_epi32(_mm256_cvtps_epi32(v), zp);
    }
    const __m256i p01 = _mm256_packs_epi32(w[0], w[1]);
    const __m256i p23 = _mm256_packs_epi32(w[2], w[3]);
    const __m256i packed = _mm256_permutevar8x32_epi32(
        _mm256_packus_epi16(p01, p23), order);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), packed);
  }
  if (i < count) quantize_span_base(x + i, q + i, count - i, inv);
}

#endif  // EASZ_KERN_INT8_AVX2

}  // namespace

void quantize_rows_u8(const float* x, std::uint8_t* q, std::size_t count,
                      float act_scale) {
  const float inv = 1.0F / act_scale;
#ifdef EASZ_KERN_INT8_AVX2
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2) {
    quantize_span_avx2(x, q, count, inv);
    return;
  }
#endif
  quantize_span_base(x, q, count, inv);
}

void gemm_u8s8(const std::uint8_t* a, std::size_t lda, const PackedBInt8& b,
               float* c, std::size_t ldc, int m, int k, int n,
               const float* dq_scale, const std::int32_t* col_sum,
               const QuantGemmOpts& opts) {
  if (m <= 0) return;
  if (k != b.k || n != b.n) {
    throw std::invalid_argument("gemm_u8s8: dims do not match the packed B");
  }
  const int kp = b.k_pairs();

  // Pack the whole A block once: each (a0, a1) word is re-read n/16 times
  // by the column loop, so the O(m*k) pack amortises immediately.
  std::vector<std::uint32_t>& pairs = a_pack_scratch();
  const std::size_t need = static_cast<std::size_t>(m) * kp;
  if (pairs.size() < need) pairs.resize(need);
  pack_a_pairs(a, lda, m, k, pairs.data(), kp);

  const std::size_t work = static_cast<std::size_t>(m) * n * k;
  const int lanes = threads();
  if (!opts.parallel || lanes <= 1 || work < kParallelMinOps) {
    gemm_rows_u8s8(pairs.data(), static_cast<std::size_t>(kp), kp, b, c, ldc,
                   m, n, dq_scale, col_sum, opts.bias, opts.gelu);
    return;
  }
  // Row panels in micro-tile multiples, ~4 per lane (see fp32 gemm).
  int panel = (m + lanes * 4 - 1) / (lanes * 4);
  panel = std::max(kMr8, (panel + kMr8 - 1) / kMr8 * kMr8);
  const int panels = (m + panel - 1) / panel;
  parallel_for(panels, [&](int pi) {
    const int r0 = pi * panel;
    const int rows = std::min(panel, m - r0);
    gemm_rows_u8s8(pairs.data() + static_cast<std::size_t>(r0) * kp,
                   static_cast<std::size_t>(kp), kp, b,
                   c + static_cast<std::size_t>(r0) * ldc, ldc, rows, n,
                   dq_scale, col_sum, opts.bias, opts.gelu);
  });
}

}  // namespace easz::tensor::kern
