// Differentiable tensor operations.
//
// Free functions building the autograd DAG. Conventions:
//  * Last dimension is the feature dimension for softmax/layernorm/bias.
//  * `bmm` treats rank-3 tensors as stacks of matrices (leading batch dim).
//  * All ops validate shapes and throw std::invalid_argument on mismatch.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace easz::tensor {

// ---- elementwise ----------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);

/// a + b where b has the shape of a's trailing dimensions (broadcast over
/// the leading ones), e.g. bias add: a=[B,T,D], b=[D] or b=[T,D].
Tensor add_broadcast(const Tensor& a, const Tensor& b);

// ---- activations ----------------------------------------------------------
Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float slope = 0.01F);
Tensor gelu(const Tensor& a);  // tanh approximation
Tensor sigmoid(const Tensor& a);
Tensor tanh_op(const Tensor& a);

/// Elementwise sqrt(max(a, eps)) — eps floors the gradient.
Tensor sqrt_op(const Tensor& a, float eps = 1e-8F);

/// Elementwise 1/sqrt(max(a, eps)).
Tensor rsqrt(const Tensor& a, float eps = 1e-8F);

// ---- matrix products -------------------------------------------------------
/// [m,k] x [k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// Batched: [B,m,k] x [B,k,n] -> [B,m,n]; transpose_b treats b as [B,n,k].
Tensor bmm(const Tensor& a, const Tensor& b, bool transpose_b = false);

// ---- normalisation / attention pieces -------------------------------------
/// Softmax over the last dimension.
Tensor softmax(const Tensor& a);

/// LayerNorm over the last dimension with learnable gamma/beta of shape [D].
Tensor layernorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5F);

// ---- shape surgery ---------------------------------------------------------
/// Slice of the last dimension: [..., D] -> [..., len] starting at `start`.
Tensor slice_last(const Tensor& a, int start, int len);

/// Concatenate along the last dimension; all inputs share leading dims.
Tensor concat_last(const std::vector<Tensor>& parts);

/// Row gather on a rank-2 tensor: out[i, :] = a[index[i], :].
Tensor gather_rows(const Tensor& a, const std::vector<int>& index);

/// Row scatter: returns a [rows, D] tensor with out[index[i], :] = a[i, :]
/// and zeros elsewhere. Rows not in `index` stay zero — this implements the
/// paper's zero-vector infill for erased sub-patches.
Tensor scatter_rows(const Tensor& a, const std::vector<int>& index, int rows);

/// Arbitrary element re-layout: out.data[i] = a.data[src_index[i]], with
/// `src_index` a permutation of [0, numel). Used for token-grid <-> image
/// layout changes, which are pure permutations.
Tensor apply_permutation(const Tensor& a, const std::vector<std::size_t>& src_index,
                         Shape out_shape);

// ---- reductions / losses ---------------------------------------------------
Tensor sum(const Tensor& a);
Tensor mean(const Tensor& a);
Tensor mse_loss(const Tensor& pred, const Tensor& target);
Tensor l1_loss(const Tensor& pred, const Tensor& target);

// ---- convolution (NCHW) ----------------------------------------------------
/// a=[B,Cin,H,W], w=[Cout,Cin,kh,kw], bias=[Cout] (optional, pass undefined
/// Tensor to skip). Zero padding `pad`, stride `stride`.
Tensor conv2d(const Tensor& a, const Tensor& w, const Tensor& bias, int stride,
              int pad);

/// Transposed convolution, the gradient of conv2d w.r.t. its input used as a
/// forward op: a=[B,Cin,H,W], w=[Cin,Cout,kh,kw] -> [B,Cout,H*stride,...].
Tensor conv2d_transpose(const Tensor& a, const Tensor& w, const Tensor& bias,
                        int stride, int pad);

}  // namespace easz::tensor
