#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace easz::tensor {
namespace {

using detail::Node;
using NodePtr = std::shared_ptr<Node>;

NodePtr make_node(Shape shape, std::vector<NodePtr> parents) {
  auto n = std::make_shared<Node>();
  n->data.assign(shape_numel(shape), 0.0F);
  n->shape = std::move(shape);
  n->parents = std::move(parents);
  n->requires_grad = true;
  return n;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_str(a.shape()) + " vs " +
                                shape_str(b.shape()));
  }
}

// Elementwise binary op with per-element forward value and backward factors.
template <typename Fwd, typename Bwd>
Tensor elementwise_binary(const Tensor& a, const Tensor& b, const char* name,
                          Fwd fwd, Bwd bwd) {
  check_same_shape(a, b, name);
  NodePtr out = make_node(a.shape(), {a.node(), b.node()});
  const auto& av = a.data();
  const auto& bv = b.data();
  for (std::size_t i = 0; i < av.size(); ++i) out->data[i] = fwd(av[i], bv[i]);
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  out->backward_fn = [pa, pb, bwd](Node& self) {
    pa->ensure_grad();
    pb->ensure_grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      const auto [da, db] = bwd(pa->data[i], pb->data[i]);
      pa->grad[i] += self.grad[i] * da;
      pb->grad[i] += self.grad[i] * db;
    }
  };
  return Tensor::from_node(out);
}

// Elementwise unary op; derivative computed from the input value.
template <typename Fwd, typename Bwd>
Tensor elementwise_unary(const Tensor& a, Fwd fwd, Bwd bwd) {
  NodePtr out = make_node(a.shape(), {a.node()});
  const auto& av = a.data();
  for (std::size_t i = 0; i < av.size(); ++i) out->data[i] = fwd(av[i]);
  NodePtr pa = a.node();
  out->backward_fn = [pa, bwd](Node& self) {
    pa->ensure_grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      pa->grad[i] += self.grad[i] * bwd(pa->data[i]);
    }
  };
  return Tensor::from_node(out);
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise_binary(
      a, b, "add", [](float x, float y) { return x + y; },
      [](float, float) { return std::pair<float, float>{1.0F, 1.0F}; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise_binary(
      a, b, "sub", [](float x, float y) { return x - y; },
      [](float, float) { return std::pair<float, float>{1.0F, -1.0F}; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise_binary(
      a, b, "mul", [](float x, float y) { return x * y; },
      [](float x, float y) { return std::pair<float, float>{y, x}; });
}

Tensor scale(const Tensor& a, float s) {
  return elementwise_unary(
      a, [s](float x) { return x * s; }, [s](float) { return s; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return elementwise_unary(
      a, [s](float x) { return x + s; }, [](float) { return 1.0F; });
}

Tensor add_broadcast(const Tensor& a, const Tensor& b) {
  const std::size_t bn = b.numel();
  if (bn == 0 || a.numel() % bn != 0) {
    throw std::invalid_argument("add_broadcast: " + shape_str(b.shape()) +
                                " does not tile " + shape_str(a.shape()));
  }
  // b's shape must be a suffix of a's shape.
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  if (bs.size() > as.size() ||
      !std::equal(bs.rbegin(), bs.rend(), as.rbegin())) {
    throw std::invalid_argument("add_broadcast: shape " + shape_str(bs) +
                                " is not a suffix of " + shape_str(as));
  }
  NodePtr out = make_node(a.shape(), {a.node(), b.node()});
  const auto& av = a.data();
  const auto& bv = b.data();
  for (std::size_t i = 0; i < av.size(); ++i) {
    out->data[i] = av[i] + bv[i % bn];
  }
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  out->backward_fn = [pa, pb, bn](Node& self) {
    pa->ensure_grad();
    pb->ensure_grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      pa->grad[i] += self.grad[i];
      pb->grad[i % bn] += self.grad[i];
    }
  };
  return Tensor::from_node(out);
}

Tensor relu(const Tensor& a) {
  return elementwise_unary(
      a, [](float x) { return x > 0.0F ? x : 0.0F; },
      [](float x) { return x > 0.0F ? 1.0F : 0.0F; });
}

Tensor leaky_relu(const Tensor& a, float slope) {
  return elementwise_unary(
      a, [slope](float x) { return x > 0.0F ? x : slope * x; },
      [slope](float x) { return x > 0.0F ? 1.0F : slope; });
}

Tensor gelu(const Tensor& a) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi)(x + 0.044715 x^3)))
  constexpr float kC = 0.7978845608F;  // sqrt(2/pi)
  constexpr float kA = 0.044715F;
  return elementwise_unary(
      a,
      [](float x) {
        const float inner = kC * (x + kA * x * x * x);
        return 0.5F * x * (1.0F + std::tanh(inner));
      },
      [](float x) {
        const float inner = kC * (x + kA * x * x * x);
        const float t = std::tanh(inner);
        const float sech2 = 1.0F - t * t;
        return 0.5F * (1.0F + t) +
               0.5F * x * sech2 * kC * (1.0F + 3.0F * kA * x * x);
      });
}

Tensor sigmoid(const Tensor& a) {
  return elementwise_unary(
      a, [](float x) { return 1.0F / (1.0F + std::exp(-x)); },
      [](float x) {
        const float s = 1.0F / (1.0F + std::exp(-x));
        return s * (1.0F - s);
      });
}

Tensor tanh_op(const Tensor& a) {
  return elementwise_unary(
      a, [](float x) { return std::tanh(x); },
      [](float x) {
        const float t = std::tanh(x);
        return 1.0F - t * t;
      });
}

Tensor sqrt_op(const Tensor& a, float eps) {
  return elementwise_unary(
      a, [eps](float x) { return std::sqrt(std::max(x, eps)); },
      [eps](float x) {
        const float c = std::max(x, eps);
        return x > eps ? 0.5F / std::sqrt(c) : 0.0F;
      });
}

Tensor rsqrt(const Tensor& a, float eps) {
  return elementwise_unary(
      a, [eps](float x) { return 1.0F / std::sqrt(std::max(x, eps)); },
      [eps](float x) {
        const float c = std::max(x, eps);
        return x > eps ? -0.5F / (c * std::sqrt(c)) : 0.0F;
      });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(1);
  NodePtr out = make_node({m, n}, {a.node(), b.node()});
  const float* av = a.data().data();
  const float* bv = b.data().data();
  float* ov = out->data.data();
#ifdef _OPENMP
#pragma omp parallel for if (static_cast<std::size_t>(m) * n * k > 65536)
#endif
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = av[static_cast<std::size_t>(i) * k + p];
      const float* brow = bv + static_cast<std::size_t>(p) * n;
      float* orow = ov + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += aip * brow[j];
    }
  }
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  out->backward_fn = [pa, pb, m, k, n](Node& self) {
    pa->ensure_grad();
    pb->ensure_grad();
    const float* g = self.grad.data();
    const float* av2 = pa->data.data();
    const float* bv2 = pb->data.data();
    // dA = G * B^T
#ifdef _OPENMP
#pragma omp parallel for if (static_cast<std::size_t>(m) * n * k > 65536)
#endif
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        const float gij = g[static_cast<std::size_t>(i) * n + j];
        const float* brow = bv2;  // b[p * n + j] over p
        float* garow = pa->grad.data() + static_cast<std::size_t>(i) * k;
        for (int p = 0; p < k; ++p) {
          garow[p] += gij * brow[static_cast<std::size_t>(p) * n + j];
        }
      }
    }
    // dB = A^T * G
#ifdef _OPENMP
#pragma omp parallel for if (static_cast<std::size_t>(m) * n * k > 65536)
#endif
    for (int p = 0; p < k; ++p) {
      float* gbrow = pb->grad.data() + static_cast<std::size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float aip = av2[static_cast<std::size_t>(i) * k + p];
        const float* grow = g + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) gbrow[j] += aip * grow[j];
      }
    }
    (void)bv2;
  };
  return Tensor::from_node(out);
}

Tensor bmm(const Tensor& a, const Tensor& b, bool transpose_b) {
  if (a.rank() != 3 || b.rank() != 3 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("bmm: need rank-3 with equal batch, got " +
                                shape_str(a.shape()) + " x " +
                                shape_str(b.shape()));
  }
  const int batch = a.dim(0);
  const int m = a.dim(1);
  const int k = a.dim(2);
  const int n = transpose_b ? b.dim(1) : b.dim(2);
  const int bk = transpose_b ? b.dim(2) : b.dim(1);
  if (bk != k) {
    throw std::invalid_argument("bmm: inner dim mismatch " +
                                shape_str(a.shape()) + " x " +
                                shape_str(b.shape()));
  }
  NodePtr out = make_node({batch, m, n}, {a.node(), b.node()});
  const float* av = a.data().data();
  const float* bv = b.data().data();
  float* ov = out->data.data();
  const std::size_t a_stride = static_cast<std::size_t>(m) * k;
  const std::size_t bstride = static_cast<std::size_t>(k) * n;  // [k,n]/[n,k]
  const std::size_t o_stride = static_cast<std::size_t>(m) * n;
#ifdef _OPENMP
#pragma omp parallel for if (static_cast<std::size_t>(batch) * m * n * k > 65536)
#endif
  for (int bi = 0; bi < batch; ++bi) {
    const float* ab = av + bi * a_stride;
    const float* bb = bv + bi * bstride;
    float* ob = ov + bi * o_stride;
    for (int i = 0; i < m; ++i) {
      const float* arow = ab + static_cast<std::size_t>(i) * k;
      float* orow = ob + static_cast<std::size_t>(i) * n;
      if (transpose_b) {
        // B rows are contiguous here, so the dot form already streams.
        for (int j = 0; j < n; ++j) {
          const float* brow = bb + static_cast<std::size_t>(j) * k;
          float acc = 0.0F;
          for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
          orow[j] = acc;
        }
      } else {
        // Row-accumulate i,p,j order (as in matmul): every B read is a
        // contiguous row instead of a column-strided walk. Per-element
        // summation stays ascending in p, so results are unchanged.
        for (int p = 0; p < k; ++p) {
          const float aip = arow[p];
          const float* brow = bb + static_cast<std::size_t>(p) * n;
          for (int j = 0; j < n; ++j) orow[j] += aip * brow[j];
        }
      }
    }
  }
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  out->backward_fn = [pa, pb, batch, m, k, n, transpose_b, a_stride, bstride,
                      o_stride](Node& self) {
    pa->ensure_grad();
    pb->ensure_grad();
    for (int bi = 0; bi < batch; ++bi) {
      const float* g = self.grad.data() + bi * o_stride;
      const float* ab = pa->data.data() + bi * a_stride;
      const float* bb = pb->data.data() + bi * bstride;
      float* ga = pa->grad.data() + bi * a_stride;
      float* gb = pb->grad.data() + bi * bstride;
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          const float gij = g[static_cast<std::size_t>(i) * n + j];
          if (gij == 0.0F) continue;
          if (transpose_b) {
            // out = A B^T: dA[i,p] += g * B[j,p]; dB[j,p] += g * A[i,p]
            const float* brow = bb + static_cast<std::size_t>(j) * k;
            float* gbrow = gb + static_cast<std::size_t>(j) * k;
            const float* arow = ab + static_cast<std::size_t>(i) * k;
            float* garow = ga + static_cast<std::size_t>(i) * k;
            for (int p = 0; p < k; ++p) {
              garow[p] += gij * brow[p];
              gbrow[p] += gij * arow[p];
            }
          } else {
            // out = A B: dA[i,p] += g * B[p,j]; dB[p,j] += g * A[i,p]
            const float* arow = ab + static_cast<std::size_t>(i) * k;
            float* garow = ga + static_cast<std::size_t>(i) * k;
            for (int p = 0; p < k; ++p) {
              garow[p] += gij * bb[static_cast<std::size_t>(p) * n + j];
              gb[static_cast<std::size_t>(p) * n + j] += gij * arow[p];
            }
          }
        }
      }
    }
  };
  return Tensor::from_node(out);
}

Tensor softmax(const Tensor& a) {
  const int d = a.dim(-1);
  const std::size_t rows = a.numel() / static_cast<std::size_t>(d);
  NodePtr out = make_node(a.shape(), {a.node()});
  const float* av = a.data().data();
  float* ov = out->data.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = av + r * d;
    float* y = ov + r * d;
    float mx = x[0];
    for (int j = 1; j < d; ++j) mx = std::max(mx, x[j]);
    float denom = 0.0F;
    for (int j = 0; j < d; ++j) {
      y[j] = std::exp(x[j] - mx);
      denom += y[j];
    }
    const float inv = 1.0F / denom;
    for (int j = 0; j < d; ++j) y[j] *= inv;
  }
  NodePtr pa = a.node();
  out->backward_fn = [pa, rows, d](Node& self) {
    pa->ensure_grad();
    for (std::size_t r = 0; r < rows; ++r) {
      const float* y = self.data.data() + r * d;
      const float* g = self.grad.data() + r * d;
      float dot = 0.0F;
      for (int j = 0; j < d; ++j) dot += g[j] * y[j];
      float* gx = pa->grad.data() + r * d;
      for (int j = 0; j < d; ++j) gx[j] += (g[j] - dot) * y[j];
    }
  };
  return Tensor::from_node(out);
}

Tensor layernorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  const int d = a.dim(-1);
  if (gamma.rank() != 1 || gamma.dim(0) != d || beta.rank() != 1 ||
      beta.dim(0) != d) {
    throw std::invalid_argument("layernorm: gamma/beta must be [D]");
  }
  const std::size_t rows = a.numel() / static_cast<std::size_t>(d);
  NodePtr out = make_node(a.shape(), {a.node(), gamma.node(), beta.node()});

  // Cache per-row mean and inverse std for the backward pass.
  auto stats = std::make_shared<std::vector<float>>(rows * 2);
  const float* av = a.data().data();
  const float* gv = gamma.data().data();
  const float* bv = beta.data().data();
  float* ov = out->data.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = av + r * d;
    float mu = 0.0F;
    for (int j = 0; j < d; ++j) mu += x[j];
    mu /= static_cast<float>(d);
    float var = 0.0F;
    for (int j = 0; j < d; ++j) {
      const float c = x[j] - mu;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float inv_sd = 1.0F / std::sqrt(var + eps);
    (*stats)[r * 2] = mu;
    (*stats)[r * 2 + 1] = inv_sd;
    float* y = ov + r * d;
    for (int j = 0; j < d; ++j) {
      y[j] = (x[j] - mu) * inv_sd * gv[j] + bv[j];
    }
  }

  NodePtr pa = a.node();
  NodePtr pg = gamma.node();
  NodePtr pbeta = beta.node();
  out->backward_fn = [pa, pg, pbeta, stats, rows, d](Node& self) {
    pa->ensure_grad();
    pg->ensure_grad();
    pbeta->ensure_grad();
    const float* gv2 = pg->data.data();
    for (std::size_t r = 0; r < rows; ++r) {
      const float mu = (*stats)[r * 2];
      const float inv_sd = (*stats)[r * 2 + 1];
      const float* x = pa->data.data() + r * d;
      const float* g = self.grad.data() + r * d;
      float* gx = pa->grad.data() + r * d;

      // dgamma/dbeta and the two row sums needed for dx.
      float sum_dxhat = 0.0F;
      float sum_dxhat_xhat = 0.0F;
      for (int j = 0; j < d; ++j) {
        const float xhat = (x[j] - mu) * inv_sd;
        const float dxhat = g[j] * gv2[j];
        pg->grad[j] += g[j] * xhat;
        pbeta->grad[j] += g[j];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
      }
      const float inv_d = 1.0F / static_cast<float>(d);
      for (int j = 0; j < d; ++j) {
        const float xhat = (x[j] - mu) * inv_sd;
        const float dxhat = g[j] * gv2[j];
        gx[j] += inv_sd *
                 (dxhat - inv_d * sum_dxhat - xhat * inv_d * sum_dxhat_xhat);
      }
    }
  };
  return Tensor::from_node(out);
}

Tensor slice_last(const Tensor& a, int start, int len) {
  const int d = a.dim(-1);
  if (start < 0 || len <= 0 || start + len > d) {
    throw std::invalid_argument("slice_last: range out of bounds");
  }
  Shape out_shape = a.shape();
  out_shape.back() = len;
  NodePtr out = make_node(out_shape, {a.node()});
  const std::size_t rows = a.numel() / static_cast<std::size_t>(d);
  const float* av = a.data().data();
  for (std::size_t r = 0; r < rows; ++r) {
    std::copy_n(av + r * d + start, len,
                out->data.data() + r * static_cast<std::size_t>(len));
  }
  NodePtr pa = a.node();
  out->backward_fn = [pa, rows, d, start, len](Node& self) {
    pa->ensure_grad();
    for (std::size_t r = 0; r < rows; ++r) {
      const float* g = self.grad.data() + r * static_cast<std::size_t>(len);
      float* gx = pa->grad.data() + r * d + start;
      for (int j = 0; j < len; ++j) gx[j] += g[j];
    }
  };
  return Tensor::from_node(out);
}

Tensor concat_last(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_last: empty input");
  Shape lead = parts[0].shape();
  lead.pop_back();
  int total = 0;
  std::vector<NodePtr> parents;
  for (const Tensor& p : parts) {
    Shape pl = p.shape();
    const int pd = pl.back();
    pl.pop_back();
    if (pl != lead) {
      throw std::invalid_argument("concat_last: leading dims mismatch");
    }
    total += pd;
    parents.push_back(p.node());
  }
  Shape out_shape = lead;
  out_shape.push_back(total);
  NodePtr out = make_node(out_shape, parents);

  const std::size_t rows = shape_numel(lead);
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    const int pd = p.dim(-1);
    const float* pv = p.data().data();
    for (std::size_t r = 0; r < rows; ++r) {
      std::copy_n(pv + r * static_cast<std::size_t>(pd), pd,
                  out->data.data() + r * static_cast<std::size_t>(total) + offset);
    }
    offset += static_cast<std::size_t>(pd);
  }

  std::vector<int> widths;
  widths.reserve(parts.size());
  for (const Tensor& p : parts) widths.push_back(p.dim(-1));
  out->backward_fn = [rows, total, widths](Node& self) {
    std::size_t off = 0;
    for (std::size_t pi = 0; pi < self.parents.size(); ++pi) {
      Node& parent = *self.parents[pi];
      parent.ensure_grad();
      const int pd = widths[pi];
      for (std::size_t r = 0; r < rows; ++r) {
        const float* g =
            self.grad.data() + r * static_cast<std::size_t>(total) + off;
        float* gp = parent.grad.data() + r * static_cast<std::size_t>(pd);
        for (int j = 0; j < pd; ++j) gp[j] += g[j];
      }
      off += static_cast<std::size_t>(pd);
    }
  };
  return Tensor::from_node(out);
}

Tensor gather_rows(const Tensor& a, const std::vector<int>& index) {
  if (a.rank() != 2) throw std::invalid_argument("gather_rows: need rank-2");
  const int rows_in = a.dim(0);
  const int d = a.dim(1);
  for (const int i : index) {
    if (i < 0 || i >= rows_in) {
      throw std::invalid_argument("gather_rows: index out of range");
    }
  }
  NodePtr out =
      make_node({static_cast<int>(index.size()), d}, {a.node()});
  const float* av = a.data().data();
  for (std::size_t r = 0; r < index.size(); ++r) {
    std::copy_n(av + static_cast<std::size_t>(index[r]) * d, d,
                out->data.data() + r * d);
  }
  NodePtr pa = a.node();
  auto idx = std::make_shared<std::vector<int>>(index);
  out->backward_fn = [pa, idx, d](Node& self) {
    pa->ensure_grad();
    for (std::size_t r = 0; r < idx->size(); ++r) {
      const float* g = self.grad.data() + r * d;
      float* gp = pa->grad.data() + static_cast<std::size_t>((*idx)[r]) * d;
      for (int j = 0; j < d; ++j) gp[j] += g[j];
    }
  };
  return Tensor::from_node(out);
}

Tensor scatter_rows(const Tensor& a, const std::vector<int>& index, int rows) {
  if (a.rank() != 2) throw std::invalid_argument("scatter_rows: need rank-2");
  if (static_cast<std::size_t>(a.dim(0)) != index.size()) {
    throw std::invalid_argument("scatter_rows: index size != rows of a");
  }
  const int d = a.dim(1);
  for (const int i : index) {
    if (i < 0 || i >= rows) {
      throw std::invalid_argument("scatter_rows: index out of range");
    }
  }
  NodePtr out = make_node({rows, d}, {a.node()});
  const float* av = a.data().data();
  for (std::size_t r = 0; r < index.size(); ++r) {
    std::copy_n(av + r * d,
                d, out->data.data() + static_cast<std::size_t>(index[r]) * d);
  }
  NodePtr pa = a.node();
  auto idx = std::make_shared<std::vector<int>>(index);
  out->backward_fn = [pa, idx, d](Node& self) {
    pa->ensure_grad();
    for (std::size_t r = 0; r < idx->size(); ++r) {
      const float* g =
          self.grad.data() + static_cast<std::size_t>((*idx)[r]) * d;
      float* gp = pa->grad.data() + r * d;
      for (int j = 0; j < d; ++j) gp[j] += g[j];
    }
  };
  return Tensor::from_node(out);
}

Tensor apply_permutation(const Tensor& a,
                         const std::vector<std::size_t>& src_index,
                         Shape out_shape) {
  if (shape_numel(out_shape) != a.numel() || src_index.size() != a.numel()) {
    throw std::invalid_argument("apply_permutation: size mismatch");
  }
  NodePtr out = make_node(std::move(out_shape), {a.node()});
  const auto& av = a.data();
  for (std::size_t i = 0; i < src_index.size(); ++i) {
    out->data[i] = av[src_index[i]];
  }
  NodePtr pa = a.node();
  auto idx = std::make_shared<std::vector<std::size_t>>(src_index);
  out->backward_fn = [pa, idx](Node& self) {
    pa->ensure_grad();
    for (std::size_t i = 0; i < idx->size(); ++i) {
      pa->grad[(*idx)[i]] += self.grad[i];
    }
  };
  return Tensor::from_node(out);
}

Tensor sum(const Tensor& a) {
  NodePtr out = make_node({1}, {a.node()});
  double acc = 0.0;
  for (const float v : a.data()) acc += v;
  out->data[0] = static_cast<float>(acc);
  NodePtr pa = a.node();
  out->backward_fn = [pa](Node& self) {
    pa->ensure_grad();
    const float g = self.grad[0];
    for (auto& gv : pa->grad) gv += g;
  };
  return Tensor::from_node(out);
}

Tensor mean(const Tensor& a) {
  const float inv = 1.0F / static_cast<float>(a.numel());
  return scale(sum(a), inv);
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mse_loss");
  NodePtr out = make_node({1}, {pred.node(), target.node()});
  const auto& pv = pred.data();
  const auto& tv = target.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < pv.size(); ++i) {
    const double diff = pv[i] - tv[i];
    acc += diff * diff;
  }
  const float inv_n = 1.0F / static_cast<float>(pv.size());
  out->data[0] = static_cast<float>(acc) * inv_n;
  NodePtr pp = pred.node();
  NodePtr pt = target.node();
  out->backward_fn = [pp, pt, inv_n](Node& self) {
    pp->ensure_grad();
    pt->ensure_grad();
    const float g = self.grad[0] * 2.0F * inv_n;
    for (std::size_t i = 0; i < pp->data.size(); ++i) {
      const float diff = pp->data[i] - pt->data[i];
      pp->grad[i] += g * diff;
      pt->grad[i] -= g * diff;
    }
  };
  return Tensor::from_node(out);
}

Tensor l1_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "l1_loss");
  NodePtr out = make_node({1}, {pred.node(), target.node()});
  const auto& pv = pred.data();
  const auto& tv = target.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < pv.size(); ++i) acc += std::fabs(pv[i] - tv[i]);
  const float inv_n = 1.0F / static_cast<float>(pv.size());
  out->data[0] = static_cast<float>(acc) * inv_n;
  NodePtr pp = pred.node();
  NodePtr pt = target.node();
  out->backward_fn = [pp, pt, inv_n](Node& self) {
    pp->ensure_grad();
    pt->ensure_grad();
    const float g = self.grad[0] * inv_n;
    for (std::size_t i = 0; i < pp->data.size(); ++i) {
      const float s = pp->data[i] > pt->data[i]   ? 1.0F
                      : pp->data[i] < pt->data[i] ? -1.0F
                                                  : 0.0F;
      pp->grad[i] += g * s;
      pt->grad[i] -= g * s;
    }
  };
  return Tensor::from_node(out);
}

namespace {

struct ConvDims {
  int batch, cin, h, w, cout, kh, kw, oh, ow;
};

ConvDims conv_dims(const Tensor& a, const Tensor& w, int stride, int pad,
                   bool transposed) {
  if (a.rank() != 4 || w.rank() != 4) {
    throw std::invalid_argument("conv2d: need rank-4 input and weight");
  }
  ConvDims d{};
  d.batch = a.dim(0);
  d.cin = a.dim(1);
  d.h = a.dim(2);
  d.w = a.dim(3);
  d.kh = w.dim(2);
  d.kw = w.dim(3);
  if (transposed) {
    if (w.dim(0) != d.cin) {
      throw std::invalid_argument("conv2d_transpose: weight Cin mismatch");
    }
    d.cout = w.dim(1);
    d.oh = (d.h - 1) * stride - 2 * pad + d.kh;
    d.ow = (d.w - 1) * stride - 2 * pad + d.kw;
  } else {
    if (w.dim(1) != d.cin) {
      throw std::invalid_argument("conv2d: weight Cin mismatch");
    }
    d.cout = w.dim(0);
    d.oh = (d.h + 2 * pad - d.kh) / stride + 1;
    d.ow = (d.w + 2 * pad - d.kw) / stride + 1;
  }
  if (d.oh <= 0 || d.ow <= 0) {
    throw std::invalid_argument("conv2d: output would be empty");
  }
  return d;
}

}  // namespace

Tensor conv2d(const Tensor& a, const Tensor& w, const Tensor& bias, int stride,
              int pad) {
  const ConvDims d = conv_dims(a, w, stride, pad, false);
  const bool has_bias = bias.defined();
  if (has_bias && (bias.rank() != 1 || bias.dim(0) != d.cout)) {
    throw std::invalid_argument("conv2d: bias must be [Cout]");
  }

  std::vector<NodePtr> parents = {a.node(), w.node()};
  if (has_bias) parents.push_back(bias.node());
  NodePtr out = make_node({d.batch, d.cout, d.oh, d.ow}, parents);

  const float* av = a.data().data();
  const float* wv = w.data().data();
  float* ov = out->data.data();
  const auto in_at = [&](int b, int c, int y, int x) {
    return av[((static_cast<std::size_t>(b) * d.cin + c) * d.h + y) * d.w + x];
  };
#ifdef _OPENMP
#pragma omp parallel for collapse(2)
#endif
  for (int b = 0; b < d.batch; ++b) {
    for (int co = 0; co < d.cout; ++co) {
      const float bias_v = has_bias ? bias.data()[co] : 0.0F;
      for (int oy = 0; oy < d.oh; ++oy) {
        for (int ox = 0; ox < d.ow; ++ox) {
          float acc = bias_v;
          for (int ci = 0; ci < d.cin; ++ci) {
            for (int ky = 0; ky < d.kh; ++ky) {
              const int iy = oy * stride + ky - pad;
              if (iy < 0 || iy >= d.h) continue;
              for (int kx = 0; kx < d.kw; ++kx) {
                const int ix = ox * stride + kx - pad;
                if (ix < 0 || ix >= d.w) continue;
                acc += in_at(b, ci, iy, ix) *
                       wv[((static_cast<std::size_t>(co) * d.cin + ci) * d.kh +
                           ky) * d.kw + kx];
              }
            }
          }
          ov[((static_cast<std::size_t>(b) * d.cout + co) * d.oh + oy) * d.ow +
             ox] = acc;
        }
      }
    }
  }

  NodePtr pa = a.node();
  NodePtr pw = w.node();
  NodePtr pbias = has_bias ? bias.node() : nullptr;
  out->backward_fn = [pa, pw, pbias, d, stride, pad](Node& self) {
    pa->ensure_grad();
    pw->ensure_grad();
    if (pbias) pbias->ensure_grad();
    const float* g = self.grad.data();
    const float* av2 = pa->data.data();
    const float* wv2 = pw->data.data();
    for (int b = 0; b < d.batch; ++b) {
      for (int co = 0; co < d.cout; ++co) {
        for (int oy = 0; oy < d.oh; ++oy) {
          for (int ox = 0; ox < d.ow; ++ox) {
            const float gv = g[((static_cast<std::size_t>(b) * d.cout + co) *
                                    d.oh + oy) * d.ow + ox];
            if (gv == 0.0F) continue;
            if (pbias) pbias->grad[co] += gv;
            for (int ci = 0; ci < d.cin; ++ci) {
              for (int ky = 0; ky < d.kh; ++ky) {
                const int iy = oy * stride + ky - pad;
                if (iy < 0 || iy >= d.h) continue;
                for (int kx = 0; kx < d.kw; ++kx) {
                  const int ix = ox * stride + kx - pad;
                  if (ix < 0 || ix >= d.w) continue;
                  const std::size_t ai =
                      ((static_cast<std::size_t>(b) * d.cin + ci) * d.h + iy) *
                          d.w + ix;
                  const std::size_t wi =
                      ((static_cast<std::size_t>(co) * d.cin + ci) * d.kh + ky) *
                          d.kw + kx;
                  pa->grad[ai] += gv * wv2[wi];
                  pw->grad[wi] += gv * av2[ai];
                }
              }
            }
          }
        }
      }
    }
  };
  return Tensor::from_node(out);
}

Tensor conv2d_transpose(const Tensor& a, const Tensor& w, const Tensor& bias,
                        int stride, int pad) {
  const ConvDims d = conv_dims(a, w, stride, pad, true);
  const bool has_bias = bias.defined();
  if (has_bias && (bias.rank() != 1 || bias.dim(0) != d.cout)) {
    throw std::invalid_argument("conv2d_transpose: bias must be [Cout]");
  }

  std::vector<NodePtr> parents = {a.node(), w.node()};
  if (has_bias) parents.push_back(bias.node());
  NodePtr out = make_node({d.batch, d.cout, d.oh, d.ow}, parents);

  const float* av = a.data().data();
  const float* wv = w.data().data();
  float* ov = out->data.data();
  if (has_bias) {
    for (int b = 0; b < d.batch; ++b) {
      for (int co = 0; co < d.cout; ++co) {
        float* plane =
            ov + ((static_cast<std::size_t>(b) * d.cout + co) * d.oh) * d.ow;
        std::fill_n(plane, static_cast<std::size_t>(d.oh) * d.ow,
                    bias.data()[co]);
      }
    }
  }
  for (int b = 0; b < d.batch; ++b) {
    for (int ci = 0; ci < d.cin; ++ci) {
      for (int y = 0; y < d.h; ++y) {
        for (int x = 0; x < d.w; ++x) {
          const float v =
              av[((static_cast<std::size_t>(b) * d.cin + ci) * d.h + y) * d.w +
                 x];
          if (v == 0.0F) continue;
          for (int co = 0; co < d.cout; ++co) {
            for (int ky = 0; ky < d.kh; ++ky) {
              const int oy = y * stride + ky - pad;
              if (oy < 0 || oy >= d.oh) continue;
              for (int kx = 0; kx < d.kw; ++kx) {
                const int ox = x * stride + kx - pad;
                if (ox < 0 || ox >= d.ow) continue;
                ov[((static_cast<std::size_t>(b) * d.cout + co) * d.oh + oy) *
                       d.ow + ox] +=
                    v * wv[((static_cast<std::size_t>(ci) * d.cout + co) * d.kh +
                            ky) * d.kw + kx];
              }
            }
          }
        }
      }
    }
  }

  NodePtr pa = a.node();
  NodePtr pw = w.node();
  NodePtr pbias = has_bias ? bias.node() : nullptr;
  out->backward_fn = [pa, pw, pbias, d, stride, pad](Node& self) {
    pa->ensure_grad();
    pw->ensure_grad();
    if (pbias) pbias->ensure_grad();
    const float* g = self.grad.data();
    const float* av2 = pa->data.data();
    const float* wv2 = pw->data.data();
    if (pbias) {
      for (int b = 0; b < d.batch; ++b) {
        for (int co = 0; co < d.cout; ++co) {
          const float* plane =
              g + ((static_cast<std::size_t>(b) * d.cout + co) * d.oh) * d.ow;
          for (std::size_t i = 0; i < static_cast<std::size_t>(d.oh) * d.ow;
               ++i) {
            pbias->grad[co] += plane[i];
          }
        }
      }
    }
    for (int b = 0; b < d.batch; ++b) {
      for (int ci = 0; ci < d.cin; ++ci) {
        for (int y = 0; y < d.h; ++y) {
          for (int x = 0; x < d.w; ++x) {
            const std::size_t ai =
                ((static_cast<std::size_t>(b) * d.cin + ci) * d.h + y) * d.w + x;
            for (int co = 0; co < d.cout; ++co) {
              for (int ky = 0; ky < d.kh; ++ky) {
                const int oy = y * stride + ky - pad;
                if (oy < 0 || oy >= d.oh) continue;
                for (int kx = 0; kx < d.kw; ++kx) {
                  const int ox = x * stride + kx - pad;
                  if (ox < 0 || ox >= d.ow) continue;
                  const std::size_t oi =
                      ((static_cast<std::size_t>(b) * d.cout + co) * d.oh + oy) *
                          d.ow + ox;
                  const std::size_t wi =
                      ((static_cast<std::size_t>(ci) * d.cout + co) * d.kh + ky) *
                          d.kw + kx;
                  pa->grad[ai] += g[oi] * wv2[wi];
                  pw->grad[wi] += g[oi] * av2[ai];
                }
              }
            }
          }
        }
      }
    }
  };
  return Tensor::from_node(out);
}

}  // namespace easz::tensor
