#include "core/container.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/patchify.hpp"

namespace easz::core {
namespace {

constexpr std::uint32_t kMagic = 0x45415A43;  // "EAZC"
constexpr std::uint16_t kVersion = 1;

void push16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFU));
  out.push_back(static_cast<std::uint8_t>((v >> 8U) & 0xFFU));
}

void push32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

class Reader {
 public:
  Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint16_t read16() {
    check(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (bytes_[pos_ + 1] << 8U));
    pos_ += 2;
    return v;
  }
  std::uint32_t read32() {
    check(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::vector<std::uint8_t> read_blob(std::size_t n) {
    check(n);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string read_string() {
    const std::uint16_t n = read16();
    const auto blob = read_blob(n);
    return std::string(blob.begin(), blob.end());
  }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }

 private:
  void check(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("easz container: truncated");
    }
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize_container(const EaszCompressed& c,
                                              const PatchifyConfig& patchify,
                                              const std::string& codec_name) {
  std::vector<std::uint8_t> out;
  push32(out, kMagic);
  push16(out, kVersion);
  push16(out, static_cast<std::uint16_t>(codec_name.size()));
  out.insert(out.end(), codec_name.begin(), codec_name.end());

  push16(out, static_cast<std::uint16_t>(patchify.patch));
  push16(out, static_cast<std::uint16_t>(patchify.sub_patch));
  push32(out, static_cast<std::uint32_t>(c.full_width));
  push32(out, static_cast<std::uint32_t>(c.full_height));
  push32(out, static_cast<std::uint32_t>(c.padded_width));
  push32(out, static_cast<std::uint32_t>(c.padded_height));
  push16(out, static_cast<std::uint16_t>(c.erased_per_row));
  out.push_back(c.axis == SqueezeAxis::kVertical ? 1 : 0);

  push32(out, static_cast<std::uint32_t>(c.mask_bytes.size()));
  out.insert(out.end(), c.mask_bytes.begin(), c.mask_bytes.end());

  push32(out, static_cast<std::uint32_t>(c.payload.width));
  push32(out, static_cast<std::uint32_t>(c.payload.height));
  push16(out, static_cast<std::uint16_t>(c.payload.channels));
  push32(out, static_cast<std::uint32_t>(c.payload.bytes.size()));
  out.insert(out.end(), c.payload.bytes.begin(), c.payload.bytes.end());
  return out;
}

ParsedContainer parse_container(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.read32() != kMagic) {
    throw std::runtime_error("easz container: bad magic");
  }
  if (r.read16() != kVersion) {
    throw std::runtime_error("easz container: unsupported version");
  }
  ParsedContainer out;
  out.codec_name = r.read_string();
  out.patchify.patch = r.read16();
  out.patchify.sub_patch = r.read16();
  out.patchify.validate();
  out.compressed.full_width = static_cast<int>(r.read32());
  out.compressed.full_height = static_cast<int>(r.read32());
  out.compressed.padded_width = static_cast<int>(r.read32());
  out.compressed.padded_height = static_cast<int>(r.read32());
  out.compressed.erased_per_row = r.read16();
  const std::uint8_t axis_byte = r.read_blob(1)[0];
  if (axis_byte > 1) {
    // Strict: the serializer only ever writes 0/1, and treating 2..255 as
    // "vertical" would make corrupt containers parse unfaithfully.
    throw std::runtime_error("easz container: bad squeeze axis");
  }
  out.compressed.axis =
      axis_byte != 0 ? SqueezeAxis::kVertical : SqueezeAxis::kHorizontal;
  out.compressed.mask_bytes = r.read_blob(r.read32());
  out.compressed.payload.width = static_cast<int>(r.read32());
  out.compressed.payload.height = static_cast<int>(r.read32());
  out.compressed.payload.channels = r.read16();
  out.compressed.payload.bytes = r.read_blob(r.read32());
  if (!r.at_end()) {
    throw std::runtime_error("easz container: trailing bytes");
  }

  // Semantic validation: every field a serializer can produce satisfies the
  // invariants below, so a header corruption that survives the bounds
  // checks still fails loudly here instead of propagating garbage geometry
  // into decode (where it would surface as a confusing shape error at best
  // and out-of-bounds indexing at worst).
  const EaszCompressed& c = out.compressed;
  // Bound BEFORE padded_geometry: a near-INT_MAX width would make its
  // `width + patch - 1` rounding overflow (signed UB) on hostile input.
  constexpr int kMaxSide = 1 << 24;  // 16M px/side, far past any real image
  if (c.full_width <= 0 || c.full_height <= 0 || c.full_width > kMaxSide ||
      c.full_height > kMaxSide) {
    throw std::runtime_error("easz container: implausible image geometry");
  }
  const PaddedGeometry g =
      padded_geometry(c.full_width, c.full_height, out.patchify.patch);
  if (c.padded_width != g.padded_w || c.padded_height != g.padded_h) {
    throw std::runtime_error(
        "easz container: padded geometry inconsistent with image size");
  }
  const int grid = out.patchify.grid();
  if (c.erased_per_row < 0 || c.erased_per_row >= grid) {
    throw std::runtime_error("easz container: erased_per_row out of range");
  }
  const std::size_t expected_mask_bytes =
      (static_cast<std::size_t>(grid) * grid + 7) / 8;
  if (c.mask_bytes.size() != expected_mask_bytes) {
    throw std::runtime_error(
        "easz container: mask side channel size does not match the grid");
  }
  if (c.payload.width <= 0 || c.payload.height <= 0 ||
      c.payload.width > c.padded_width || c.payload.height > c.padded_height) {
    throw std::runtime_error("easz container: implausible payload geometry");
  }
  if (c.payload.channels < 1 || c.payload.channels > 4) {
    throw std::runtime_error("easz container: implausible channel count");
  }
  return out;
}

void write_container(const EaszCompressed& c, const PatchifyConfig& patchify,
                     const std::string& codec_name, const std::string& path) {
  const auto bytes = serialize_container(c, patchify, codec_name);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_container: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("write_container: write failed");
}

ParsedContainer read_container(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("read_container: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("read_container: read failed");
  return parse_container(bytes);
}

}  // namespace easz::core
