// Two-stage image patchify (paper §III-B).
//
// Stage 1: split the image into n x n patches. Stage 2: split each patch
// into b x b sub-patches, giving an N x N grid (N = n / b) of sub-patch
// tokens per patch. Attention operates inside a patch only, which is the
// source of the complexity reduction O((hw)^2) -> O(hw * n^2 / b^4).
//
// Token layout: token j corresponds to grid cell (j / N, j % N); its vector
// holds the sub-patch samples in (channel, y, x) order, length b*b*C.
#pragma once

#include <vector>

#include "image/image.hpp"
#include "tensor/tensor.hpp"

namespace easz::core {

struct PatchifyConfig {
  int patch = 32;      ///< n: stage-1 patch size (pixels)
  int sub_patch = 4;   ///< b: stage-2 sub-patch size (pixels)

  [[nodiscard]] int grid() const { return patch / sub_patch; }   ///< N
  [[nodiscard]] int tokens() const { return grid() * grid(); }   ///< N^2
  [[nodiscard]] int token_dim(int channels) const {
    return sub_patch * sub_patch * channels;
  }
  void validate() const;
};

/// Padded dimensions making (w, h) divisible by the patch size.
struct PaddedGeometry {
  int padded_w = 0;
  int padded_h = 0;
  int patches_x = 0;
  int patches_y = 0;
  [[nodiscard]] int patch_count() const { return patches_x * patches_y; }
};
PaddedGeometry padded_geometry(int width, int height, int patch);

/// Extracts all patches as token tensors: result is [patch_count, tokens,
/// token_dim] flattened into one rank-3 tensor. Pads with edge replication.
tensor::Tensor image_to_tokens(const image::Image& img,
                               const PatchifyConfig& config);

/// Inverse of image_to_tokens (crops padding back off).
image::Image tokens_to_image(const tensor::Tensor& tokens, int width,
                             int height, int channels,
                             const PatchifyConfig& config);

/// Permutation mapping a [B, tokens, token_dim] tensor to the equivalent
/// [B, C, n, n] patch-pixel tensor (for convolutional losses). Use with
/// tensor::apply_permutation.
std::vector<std::size_t> tokens_to_patch_pixels_perm(int batch, int channels,
                                                     const PatchifyConfig& config);

}  // namespace easz::core
