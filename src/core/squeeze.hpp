// Erase-and-squeeze / un-squeeze (paper §III-A, "Squeeze").
//
// With a mask erasing exactly T sub-patches per grid row, every grid row of
// every patch compacts from N to N-T sub-patches, so an image of width W
// squeezes to W * (N-T) / N (horizontal axis) while remaining rectangular —
// which is what lets a conventional codec compress it directly. The vertical
// variant transposes the roles of rows and columns.
#pragma once

#include "core/mask.hpp"
#include "core/patchify.hpp"
#include "image/image.hpp"

namespace easz::core {

enum class SqueezeAxis { kHorizontal, kVertical };

/// Erases masked sub-patches and compacts the survivors.
/// The same mask is applied to every patch of the image. Image dimensions
/// must be multiples of the patch size (pad first; the pipeline does).
image::Image erase_and_squeeze(const image::Image& img, const EraseMask& mask,
                               const PatchifyConfig& config,
                               SqueezeAxis axis = SqueezeAxis::kHorizontal);

/// Expands a squeezed image back to full geometry, placing decoded
/// sub-patches at their kept positions and zeros at erased positions.
image::Image unsqueeze(const image::Image& squeezed, const EraseMask& mask,
                       const PatchifyConfig& config, int full_w, int full_h,
                       SqueezeAxis axis = SqueezeAxis::kHorizontal);

/// Fills erased sub-patches with their nearest kept horizontal neighbour
/// instead of zeros — the paper Fig. 2(b) "neighbor filled" baseline, and a
/// cheap non-learned reconstruction reference.
image::Image unsqueeze_neighbor_fill(const image::Image& squeezed,
                                     const EraseMask& mask,
                                     const PatchifyConfig& config, int full_w,
                                     int full_h,
                                     SqueezeAxis axis = SqueezeAxis::kHorizontal);

}  // namespace easz::core
