#include "core/mask.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace easz::core {

EraseMask::EraseMask(int grid, int erased_per_row)
    : grid_(grid), erased_per_row_(erased_per_row) {
  if (grid <= 0) throw std::invalid_argument("EraseMask: grid must be > 0");
  if (erased_per_row < 0 || erased_per_row >= grid) {
    throw std::invalid_argument(
        "EraseMask: erased_per_row must be in [0, grid)");
  }
  bits_.assign(static_cast<std::size_t>(grid) * grid, false);
}

void EraseMask::set_erased(int row, int col, bool value) {
  bits_[static_cast<std::size_t>(row) * grid_ + col] = value;
}

std::vector<int> EraseMask::erased_cols(int row) const {
  std::vector<int> out;
  for (int c = 0; c < grid_; ++c) {
    if (erased(row, c)) out.push_back(c);
  }
  return out;
}

std::vector<int> EraseMask::kept_cols(int row) const {
  std::vector<int> out;
  for (int c = 0; c < grid_; ++c) {
    if (!erased(row, c)) out.push_back(c);
  }
  return out;
}

std::vector<int> EraseMask::kept_indices() const {
  std::vector<int> out;
  for (int r = 0; r < grid_; ++r) {
    for (int c = 0; c < grid_; ++c) {
      if (!erased(r, c)) out.push_back(r * grid_ + c);
    }
  }
  return out;
}

std::vector<int> EraseMask::erased_indices() const {
  std::vector<int> out;
  for (int r = 0; r < grid_; ++r) {
    for (int c = 0; c < grid_; ++c) {
      if (erased(r, c)) out.push_back(r * grid_ + c);
    }
  }
  return out;
}

bool EraseMask::uniform_rows() const {
  for (int r = 0; r < grid_; ++r) {
    if (static_cast<int>(erased_cols(r).size()) != erased_per_row_) {
      return false;
    }
  }
  return true;
}

EraseMask EraseMask::transposed() const {
  EraseMask out(grid_, erased_per_row_);
  for (int r = 0; r < grid_; ++r) {
    for (int c = 0; c < grid_; ++c) {
      if (erased(r, c)) out.set_erased(c, r, true);
    }
  }
  return out;
}

std::vector<std::uint8_t> EraseMask::to_bytes() const {
  std::vector<std::uint8_t> out((bits_.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) out[i / 8] |= static_cast<std::uint8_t>(1U << (i % 8));
  }
  return out;
}

EraseMask EraseMask::from_bytes(const std::vector<std::uint8_t>& bytes,
                                int grid, int erased_per_row) {
  EraseMask mask(grid, erased_per_row);
  const std::size_t n = static_cast<std::size_t>(grid) * grid;
  if (bytes.size() < (n + 7) / 8) {
    throw std::invalid_argument("EraseMask::from_bytes: buffer too small");
  }
  for (std::size_t i = 0; i < n; ++i) {
    mask.bits_[i] = ((bytes[i / 8] >> (i % 8)) & 1U) != 0U;
  }
  return mask;
}

namespace {

// Minimum circular-agnostic distance check used by both constraints.
bool far_enough(int candidate, const std::vector<int>& chosen, int min_dist) {
  for (const int c : chosen) {
    if (std::abs(candidate - c) <= min_dist) return false;
  }
  return true;
}

}  // namespace

EraseMask make_row_conditional_mask(int grid, int erased_per_row,
                                    util::Pcg32& rng, SamplerConfig config) {
  EraseMask mask(grid, erased_per_row);
  std::vector<int> prev_row_cols;
  for (int r = 0; r < grid; ++r) {
    std::vector<int> cols;
    int delta = config.delta;
    int inter = config.inter_delta;
    int attempts = 0;
    while (static_cast<int>(cols.size()) < erased_per_row) {
      const int candidate = static_cast<int>(rng.next_below(grid));
      const bool ok = far_enough(candidate, cols, delta) &&
                      far_enough(candidate, prev_row_cols, inter);
      if (ok) {
        cols.push_back(candidate);
        attempts = 0;
        continue;
      }
      if (++attempts > config.max_attempts) {
        // Constraints unsatisfiable at this tightness (e.g. large T on a
        // small grid): relax stepwise, inter-row first — intra-row spacing
        // is the one that prevents contiguous holes.
        if (inter > 0) {
          --inter;
        } else if (delta > 0) {
          --delta;
        } else {
          // delta == 0 still requires distinct columns; pick any free one.
          for (int c = 0; c < grid; ++c) {
            if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
              cols.push_back(c);
              break;
            }
          }
        }
        attempts = 0;
      }
    }
    for (const int c : cols) mask.set_erased(r, c, true);
    prev_row_cols = std::move(cols);
  }
  return mask;
}

EraseMask make_random_mask(int grid, int erased_per_row, util::Pcg32& rng) {
  EraseMask mask(grid, erased_per_row);
  std::vector<int> cells(static_cast<std::size_t>(grid) * grid);
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = static_cast<int>(i);
  rng.shuffle(cells);
  const int total = erased_per_row * grid;
  for (int t = 0; t < total; ++t) {
    mask.set_erased(cells[t] / grid, cells[t] % grid, true);
  }
  return mask;
}

EraseMask make_diagonal_mask(int grid, int offset) {
  EraseMask mask(grid, 1);
  for (int r = 0; r < grid; ++r) {
    mask.set_erased(r, (r + offset) % grid, true);
  }
  return mask;
}

EraseMask make_uniform_mask(int grid, int erased_per_row) {
  EraseMask mask(grid, erased_per_row);
  // Evenly spaced columns, identical in every row.
  for (int t = 0; t < erased_per_row; ++t) {
    const int col =
        static_cast<int>((static_cast<long long>(t) * grid + grid / 2) /
                         erased_per_row) % grid;
    for (int r = 0; r < grid; ++r) mask.set_erased(r, col, true);
  }
  return mask;
}

}  // namespace easz::core
