// End-to-end Easz pipeline (paper Fig. 2 left).
//
// Edge side:   pad -> erase-and-squeeze (mask from the conditional sampler)
//              -> any ImageCodec encode -> bitstream + 128-ish-byte mask.
// Server side: codec decode -> unsqueeze (zeros at erased positions)
//              -> transformer reconstruction of erased sub-patches.
//
// The pipeline works with any codec ("compatible with all existing image
// compression algorithms") and, because erase-and-squeeze is pure memory
// movement, its edge cost is negligible next to the codec itself.
#pragma once

#include <memory>
#include <optional>

#include "codec/codec.hpp"
#include "core/recon_model.hpp"
#include "core/squeeze.hpp"

namespace easz::core {

struct EaszConfig {
  PatchifyConfig patchify;
  int erased_per_row = 2;  ///< T; erase ratio = T / (n/b)
  SqueezeAxis axis = SqueezeAxis::kHorizontal;
  SamplerConfig sampler;
  std::uint64_t mask_seed = 7;  ///< shared edge/server mask seed
};

/// Bitstream container: codec payload + mask side channel + geometry.
struct EaszCompressed {
  codec::Compressed payload;          ///< squeezed-image bitstream
  std::vector<std::uint8_t> mask_bytes;
  int full_width = 0;                 ///< original image geometry
  int full_height = 0;
  int padded_width = 0;
  int padded_height = 0;
  int erased_per_row = 0;
  SqueezeAxis axis = SqueezeAxis::kHorizontal;

  /// Total transmitted bytes (payload + mask).
  [[nodiscard]] std::size_t size_bytes() const {
    return payload.bytes.size() + mask_bytes.size();
  }
  /// BPP against the ORIGINAL pixel grid (the paper's rate metric).
  [[nodiscard]] double bpp() const {
    return static_cast<double>(size_bytes()) * 8.0 /
           (static_cast<double>(full_width) * full_height);
  }
};

/// Server-side intermediate between codec decode and transformer
/// reconstruction: the zero-filled token batch of one request plus the
/// geometry needed to assemble the final image. Exposed so a serving layer
/// (src/serve) can run the transformer over patches POOLED ACROSS REQUESTS
/// that share a mask, instead of one forward pass per request.
struct DecodedTokens {
  tensor::Tensor tokens;  ///< [patches, N^2, token_dim], zeros where erased
  EraseMask recon_mask;   ///< reconstruction-frame mask (transposed if the
                          ///< squeeze axis was vertical)
  int full_width = 0;     ///< crop target (original image geometry)
  int full_height = 0;
  int padded_width = 0;   ///< token grid geometry
  int padded_height = 0;
  int channels = 0;
};

class EaszPipeline {
 public:
  /// The pipeline borrows the codec and the model; both must outlive it.
  /// `model` may be null for encode-only use (the edge never runs it).
  EaszPipeline(EaszConfig config, codec::ImageCodec& codec,
               const ReconstructionModel* model);

  /// Edge-side compression. Erase-and-squeeze is measured separately from
  /// the codec by the testbed; this call does both.
  [[nodiscard]] EaszCompressed encode(const image::Image& img) const;

  /// Server-side decompression + learned reconstruction.
  /// Requires a model. Throws std::logic_error without one.
  ///
  /// Equivalent to decode_tokens() + ReconstructionModel::reconstruct (in
  /// any batch split — per-patch results are batch-composition independent
  /// at either precision) + assemble(). The reconstruction runs on the
  /// grad-free tensor::kern inference path, never the autograd substrate;
  /// kInt8 requires a quantized model (DESIGN.md §7). Re-entrant: safe to
  /// call concurrently from many threads on one pipeline, as long as
  /// nobody mutates the codec (set_quality) or the model parameters
  /// (training/quantization) meanwhile.
  [[nodiscard]] image::Image decode(
      const EaszCompressed& c,
      nn::Precision precision = nn::Precision::kFp32) const;

  /// Rung-parameterized decode (DESIGN.md §10): the knobs the serving
  /// layer's degradation ladder turns, expressed as a sequential reference
  /// so "byte-identical to sequential decode at that rung" is a checkable
  /// contract, not a metaphor. Each combination is deterministic: the same
  /// compressed input and options always produce the same bytes.
  struct DecodeOptions {
    nn::Precision precision = nn::Precision::kFp32;
    /// false: skip the edge-deblocking pass of assemble (cheaper, blockier).
    bool deblock = true;
    /// true: coarse erase-mask reconstruction — erased sub-patches are
    /// nearest-neighbour-filled from their kept row mates instead of being
    /// predicted by the transformer. No forward pass runs at all (precision
    /// is ignored) and deblocking is skipped; equivalent to
    /// decode_neighbor_fill(). The overload ladder's last rung before shed.
    bool coarse_fill = false;
  };

  /// decode() with explicit rung parameters. decode(c, p) is exactly
  /// decode(c, {.precision = p}).
  [[nodiscard]] image::Image decode(const EaszCompressed& c,
                                    const DecodeOptions& options) const;

  /// Wall-clock sub-stage costs of one decode_tokens() call, for serving
  /// telemetry: the classical codec decode is the dominant non-neural cost
  /// and is reported as its own throughput figure in serve stats.
  struct DecodeTokensTiming {
    double codec_decode_s = 0.0;   ///< inner ImageCodec::decode only
    std::uint64_t codec_pixels = 0;  ///< pixels that decode produced
  };

  /// Stage 1 of decode(): codec decode + unsqueeze + tokenise. Needs no
  /// model, so it runs on cheap decode workers. Re-entrant. `timing`, when
  /// non-null, receives the codec-decode sub-stage cost.
  [[nodiscard]] DecodedTokens decode_tokens(
      const EaszCompressed& c, DecodeTokensTiming* timing = nullptr) const;

  /// Stage 3 of decode(): reconstructed tokens (same shape as `d.tokens`)
  /// back to pixels — tokens_to_image + edge deblocking + crop. Re-entrant.
  /// `deblock = false` omits the deblocking pass (ladder rung kNoDeblock).
  [[nodiscard]] image::Image assemble(const DecodedTokens& d,
                                      const tensor::Tensor& recon_tokens,
                                      bool deblock = true) const;

  /// Patch chunk size decode() uses between decode_tokens and assemble; a
  /// serving layer that wants bit-identical output only needs the same
  /// model, not the same chunking.
  static constexpr int kReconstructChunk = 32;

  /// Stage 3 without a pipeline instance: only the patchify config matters
  /// (the serving layer assembles results without ever touching a codec).
  static image::Image assemble_decoded(const DecodedTokens& d,
                                       const tensor::Tensor& recon_tokens,
                                       const PatchifyConfig& patchify,
                                       bool deblock = true);

  /// Decode variant without the transformer: nearest-neighbour fill
  /// (reference baseline, also used when no model is deployed).
  [[nodiscard]] image::Image decode_neighbor_fill(const EaszCompressed& c) const;

  /// The mask currently derived from config (same on edge and server).
  [[nodiscard]] EraseMask make_mask() const;

  [[nodiscard]] const EaszConfig& config() const { return config_; }

 private:
  EaszConfig config_;
  codec::ImageCodec& codec_;
  const ReconstructionModel* model_;
};

}  // namespace easz::core
