#include "core/deblock.hpp"

#include <algorithm>

namespace easz::core {

image::Image deblock_erased(const image::Image& img, const EraseMask& mask,
                            const PatchifyConfig& config, float strength) {
  config.validate();
  const int n = config.patch;
  const int b = config.sub_patch;
  const int grid = config.grid();

  // Mark pixels within 1 px of an erased-cell boundary (both sides of it).
  std::vector<std::uint8_t> seam(
      static_cast<std::size_t>(img.width()) * img.height(), 0);
  const auto mark = [&](int x, int y) {
    if (x >= 0 && x < img.width() && y >= 0 && y < img.height()) {
      seam[static_cast<std::size_t>(y) * img.width() + x] = 1;
    }
  };
  for (int py = 0; py * n < img.height(); ++py) {
    for (int px = 0; px * n < img.width(); ++px) {
      for (int gy = 0; gy < grid; ++gy) {
        for (int gx = 0; gx < grid; ++gx) {
          if (!mask.erased(gy % mask.grid(), gx % mask.grid())) continue;
          const int x0 = px * n + gx * b;
          const int y0 = py * n + gy * b;
          for (int k = -1; k <= b; ++k) {
            mark(x0 + k, y0 - 1);
            mark(x0 + k, y0);
            mark(x0 + k, y0 + b - 1);
            mark(x0 + k, y0 + b);
            mark(x0 - 1, y0 + k);
            mark(x0, y0 + k);
            mark(x0 + b - 1, y0 + k);
            mark(x0 + b, y0 + k);
          }
        }
      }
    }
  }

  image::Image out = img;
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        if (seam[static_cast<std::size_t>(y) * img.width() + x] == 0) continue;
        // 3x3 box blend on seam pixels only.
        float acc = 0.0F;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            acc += img.at_clamped(c, y + dy, x + dx);
          }
        }
        const float blurred = acc / 9.0F;
        out.at(c, y, x) =
            (1.0F - strength) * img.at(c, y, x) + strength * blurred;
      }
    }
  }
  return out;
}

}  // namespace easz::core
