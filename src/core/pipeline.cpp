#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/deblock.hpp"
#include "util/stopwatch.hpp"

namespace easz::core {

EaszPipeline::EaszPipeline(EaszConfig config, codec::ImageCodec& codec,
                           const ReconstructionModel* model)
    : config_(config), codec_(codec), model_(model) {
  config_.patchify.validate();
  const int grid = config_.patchify.grid();
  if (config_.erased_per_row < 0 || config_.erased_per_row >= grid) {
    throw std::invalid_argument("EaszPipeline: erased_per_row out of range");
  }
  if (model_ != nullptr) {
    const auto& mc = model_->config();
    if (mc.patchify.patch != config_.patchify.patch ||
        mc.patchify.sub_patch != config_.patchify.sub_patch) {
      throw std::invalid_argument(
          "EaszPipeline: model patchify config mismatch");
    }
  }
}

EraseMask EaszPipeline::make_mask() const {
  util::Pcg32 rng(config_.mask_seed, 0x5eedU);
  return make_row_conditional_mask(config_.patchify.grid(),
                                   config_.erased_per_row, rng,
                                   config_.sampler);
}

EaszCompressed EaszPipeline::encode(const image::Image& img) const {
  const PaddedGeometry g =
      padded_geometry(img.width(), img.height(), config_.patchify.patch);
  const image::Image padded = img.pad_to(g.padded_w, g.padded_h);

  const EraseMask mask = make_mask();
  const image::Image squeezed =
      erase_and_squeeze(padded, mask, config_.patchify, config_.axis);

  EaszCompressed out;
  // The payload keeps the squeezed image's geometry (codecs may rely on it
  // at decode time); EaszCompressed::bpp() accounts rate against the
  // original grid via full_width/full_height below.
  out.payload = codec_.encode(squeezed);
  out.mask_bytes = mask.to_bytes();
  out.full_width = img.width();
  out.full_height = img.height();
  out.padded_width = g.padded_w;
  out.padded_height = g.padded_h;
  out.erased_per_row = config_.erased_per_row;
  out.axis = config_.axis;
  return out;
}

DecodedTokens EaszPipeline::decode_tokens(const EaszCompressed& c,
                                          DecodeTokensTiming* timing) const {
  util::Stopwatch codec_sw;
  const image::Image squeezed = codec_.decode(c.payload);
  if (timing != nullptr) {
    timing->codec_decode_s = codec_sw.elapsed_seconds();
    timing->codec_pixels = squeezed.pixel_count();
  }
  const EraseMask mask = EraseMask::from_bytes(
      c.mask_bytes, config_.patchify.grid(), c.erased_per_row);
  const image::Image zero_filled =
      unsqueeze(squeezed, mask, config_.patchify, c.padded_width,
                c.padded_height, c.axis);
  DecodedTokens d;
  d.tokens = image_to_tokens(zero_filled, config_.patchify);
  d.recon_mask = c.axis == SqueezeAxis::kVertical ? mask.transposed() : mask;
  d.full_width = c.full_width;
  d.full_height = c.full_height;
  d.padded_width = zero_filled.width();
  d.padded_height = zero_filled.height();
  d.channels = zero_filled.channels();
  return d;
}

image::Image EaszPipeline::assemble_decoded(const DecodedTokens& d,
                                            const tensor::Tensor& recon_tokens,
                                            const PatchifyConfig& patchify,
                                            bool deblock) {
  image::Image recon = tokens_to_image(recon_tokens, d.padded_width,
                                       d.padded_height, d.channels, patchify);
  if (deblock) recon = deblock_erased(recon, d.recon_mask, patchify);
  if (recon.width() != d.full_width || recon.height() != d.full_height) {
    recon = recon.crop(0, 0, d.full_width, d.full_height);
  }
  return recon;
}

image::Image EaszPipeline::assemble(const DecodedTokens& d,
                                    const tensor::Tensor& recon_tokens,
                                    bool deblock) const {
  return assemble_decoded(d, recon_tokens, config_.patchify, deblock);
}

image::Image EaszPipeline::decode(const EaszCompressed& c,
                                  nn::Precision precision) const {
  return decode(c, DecodeOptions{.precision = precision});
}

image::Image EaszPipeline::decode(const EaszCompressed& c,
                                  const DecodeOptions& options) const {
  if (options.coarse_fill) return decode_neighbor_fill(c);
  if (model_ == nullptr) {
    throw std::logic_error("EaszPipeline::decode: no reconstruction model");
  }
  const nn::Precision precision = options.precision;
  const DecodedTokens d = decode_tokens(c);
  const int patch_count = d.tokens.dim(0);
  const int tokens = d.tokens.dim(1);
  const int token_dim = d.tokens.dim(2);

  tensor::Tensor result({patch_count, tokens, token_dim});
  const std::size_t per_patch = static_cast<std::size_t>(tokens) * token_dim;
  for (int start = 0; start < patch_count; start += kReconstructChunk) {
    const int count = std::min(kReconstructChunk, patch_count - start);
    tensor::Tensor batch({count, tokens, token_dim});
    std::copy_n(d.tokens.data().begin() + start * per_patch, count * per_patch,
                batch.data().begin());
    const tensor::Tensor recon =
        model_->reconstruct(batch, d.recon_mask, precision);
    std::copy_n(recon.data().begin(), count * per_patch,
                result.data().begin() + start * per_patch);
  }
  return assemble(d, result, options.deblock);
}

image::Image EaszPipeline::decode_neighbor_fill(const EaszCompressed& c) const {
  const image::Image squeezed = codec_.decode(c.payload);
  const EraseMask mask = EraseMask::from_bytes(
      c.mask_bytes, config_.patchify.grid(), c.erased_per_row);
  image::Image filled =
      unsqueeze_neighbor_fill(squeezed, mask, config_.patchify, c.padded_width,
                              c.padded_height, c.axis);
  if (filled.width() != c.full_width || filled.height() != c.full_height) {
    filled = filled.crop(0, 0, c.full_width, c.full_height);
  }
  return filled;
}

}  // namespace easz::core
