// Deblocking of reconstructed erased sub-patches.
//
// The transformer predicts each erased b x b sub-patch independently, which
// can leave small seams at sub-patch boundaries — the same class of artifact
// block codecs fight with in-loop deblocking. This pass smooths a 1-pixel
// band around every erased cell's border (and lightly blends its interior
// with the border), removing the unnatural-statistics signature without
// touching kept content beyond the immediate seam.
#pragma once

#include "core/mask.hpp"
#include "core/patchify.hpp"
#include "image/image.hpp"

namespace easz::core {

/// Smooths erased-cell seams in `img` (full reconstructed image). The mask
/// is the per-patch erase mask shared across all patches; `strength` in
/// [0, 1] scales the blend (0 = no-op).
image::Image deblock_erased(const image::Image& img, const EraseMask& mask,
                            const PatchifyConfig& config,
                            float strength = 1.0F);

}  // namespace easz::core
