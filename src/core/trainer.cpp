#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace easz::core {

nn::Tensor sample_patch_tokens(const image::Image& img,
                               const PatchifyConfig& config, int channels,
                               util::Pcg32& rng) {
  const int n = config.patch;
  if (img.width() < n || img.height() < n) {
    throw std::invalid_argument("sample_patch_tokens: image smaller than patch");
  }
  if (img.channels() != channels) {
    throw std::invalid_argument("sample_patch_tokens: channel mismatch");
  }
  const int x0 = img.width() == n ? 0 : rng.next_int(0, img.width() - n);
  const int y0 = img.height() == n ? 0 : rng.next_int(0, img.height() - n);
  const image::Image patch = img.crop(x0, y0, n, n);
  return image_to_tokens(patch, config);  // [1, tokens, token_dim]
}

Trainer::Trainer(ReconstructionModel& model, TrainerConfig config,
                 util::Pcg32& rng)
    : model_(model),
      config_(config),
      rng_(rng),
      opt_(model.parameters(),
           {.lr = config.lr, .weight_decay = config.weight_decay}),
      loss_(config.lambda) {}

float Trainer::train_step(const nn::Tensor& tokens, const EraseMask& mask) {
  const nn::Tensor pred = model_.forward(tokens, mask);

  nn::Tensor loss;
  if (config_.use_perceptual) {
    // Move both to [B, C, n, n] pixel layout for the convolutional
    // perceptual term.
    const auto& pc = model_.config().patchify;
    const int batch = tokens.dim(0);
    const int c = model_.config().channels;
    const auto perm = tokens_to_patch_pixels_perm(batch, c, pc);
    const tensor::Shape img_shape = {batch, c, pc.patch, pc.patch};
    const nn::Tensor pred_img = tensor::apply_permutation(pred, perm, img_shape);
    const nn::Tensor target_img =
        tensor::apply_permutation(tokens, perm, img_shape);
    loss = loss_.forward(pred_img, target_img);
  } else {
    // Token-space L1 equals pixel-space L1 (same elements, permuted).
    loss = tensor::l1_loss(pred, tokens);
  }

  const float value = loss.item();
  loss.backward();
  opt_.step();
  return value;
}

TrainStats Trainer::train(const std::vector<image::Image>& images, int steps) {
  if (images.empty()) throw std::invalid_argument("Trainer: no images");
  const auto& pc = model_.config().patchify;
  const int grid = pc.grid();
  TrainStats stats;
  stats.loss_history.reserve(steps);

  for (int step = 0; step < steps; ++step) {
    // Assemble a batch of random patches.
    std::vector<nn::Tensor> patches;
    patches.reserve(config_.batch_patches);
    tensor::Tensor batch({config_.batch_patches, pc.tokens(),
                          pc.token_dim(model_.config().channels)});
    for (int b = 0; b < config_.batch_patches; ++b) {
      const image::Image& img =
          images[rng_.next_below(static_cast<std::uint32_t>(images.size()))];
      const nn::Tensor one =
          sample_patch_tokens(img, pc, model_.config().channels, rng_);
      std::copy(one.data().begin(), one.data().end(),
                batch.data().begin() +
                    static_cast<std::ptrdiff_t>(b) *
                        static_cast<std::ptrdiff_t>(one.numel()));
    }

    // Fresh mask with a random ratio: "randomly generated erase masks are
    // applied for model robustness" (§IV-A) — unconstrained random during
    // pretraining, so the model is not specialised to the conditional
    // sampler it will meet at inference time.
    const float ratio = config_.min_erase_ratio +
                        rng_.next_float() *
                            (config_.max_erase_ratio - config_.min_erase_ratio);
    int t = std::clamp(static_cast<int>(std::lround(ratio * grid)), 1, grid - 1);
    const EraseMask mask = make_random_mask(grid, t, rng_);

    stats.loss_history.push_back(train_step(batch, mask));
  }
  return stats;
}

}  // namespace easz::core
