// Erase masks over the sub-patch grid (paper §III-A).
//
// A mask lives on the N x N grid of b x b sub-patches inside one n x n image
// patch (N = n / b). Bit set = sub-patch ERASED (the paper's "sampled"
// entries, drawn white in its Fig. 2). The proposed generator is the
// row-based conditional uniform sampler: every grid row erases exactly T
// sub-patches, subject to an intra-row minimum distance delta between
// erased columns and an inter-row minimum distance Delta from the previous
// row's erased columns. Degenerate settings recover the diagonal mask (T=1)
// and uniform 2x-downsampling (b=1, T=N/2), which is the paper's
// generalisation claim.
#pragma once

#include <cstdint>
#include <vector>

#include "util/prng.hpp"

namespace easz::core {

/// Binary mask on the N x N sub-patch grid.
class EraseMask {
 public:
  EraseMask() = default;
  EraseMask(int grid, int erased_per_row);

  [[nodiscard]] int grid() const { return grid_; }
  /// T: erased sub-patches per grid row.
  [[nodiscard]] int erased_per_row() const { return erased_per_row_; }
  [[nodiscard]] double erase_ratio() const {
    return static_cast<double>(erased_per_row_) / grid_;
  }

  [[nodiscard]] bool erased(int row, int col) const {
    return bits_[static_cast<std::size_t>(row) * grid_ + col];
  }
  void set_erased(int row, int col, bool value);

  /// Column indices erased in `row`, ascending.
  [[nodiscard]] std::vector<int> erased_cols(int row) const;
  /// Column indices kept in `row`, ascending.
  [[nodiscard]] std::vector<int> kept_cols(int row) const;

  /// Flat token indices (row-major over the grid) of kept / erased cells.
  [[nodiscard]] std::vector<int> kept_indices() const;
  [[nodiscard]] std::vector<int> erased_indices() const;

  [[nodiscard]] int kept_count() const {
    return grid_ * (grid_ - erased_per_row_);
  }

  /// Validates the exactly-T-per-row invariant the squeeze step relies on.
  [[nodiscard]] bool uniform_rows() const;

  /// Mask with rows and columns swapped. Used by the vertical squeeze axis,
  /// whose unsqueeze transposition moves erased cells to (col, row).
  [[nodiscard]] EraseMask transposed() const;

  /// Packed serialisation, ceil(N*N/8) bytes — the paper's "a 32x32 binary
  /// mask occupies only 128 bytes" side channel.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  static EraseMask from_bytes(const std::vector<std::uint8_t>& bytes, int grid,
                              int erased_per_row);

 private:
  int grid_ = 0;
  int erased_per_row_ = 0;
  std::vector<bool> bits_;
};

/// Constraint parameters for the row-based conditional sampler.
struct SamplerConfig {
  int delta = 1;        ///< min |col - previous erased col in same row| (>)
  int inter_delta = 1;  ///< min |col - cols erased in previous row| (>)
  int max_attempts = 64;  ///< rejection-sampling budget before relaxing
};

/// The paper's proposed generator: row-based conditional uniform sampling.
/// Guarantees exactly T erased per row; constraints are relaxed stepwise if
/// rejection sampling cannot satisfy them (tight T against small N).
EraseMask make_row_conditional_mask(int grid, int erased_per_row,
                                    util::Pcg32& rng, SamplerConfig config = {});

/// Baseline: erase T*N cells uniformly at random over the WHOLE grid (the
/// paper's naive "randomly erase a portion" arm, Fig. 2(a)). Rows end up
/// with unequal erase counts, producing both large contiguous holes and —
/// because squeezing must pad every row to the longest kept row — wasted
/// bits in the squeezed image.
EraseMask make_random_mask(int grid, int erased_per_row, util::Pcg32& rng);

/// Diagonal mask: row i erases column (i + offset) mod N; the structured
/// special case the paper starts from (T = 1).
EraseMask make_diagonal_mask(int grid, int offset = 0);

/// Uniform columns: every row erases the same evenly spaced T columns —
/// equivalent to horizontal downsampling (the super-resolution regime).
EraseMask make_uniform_mask(int grid, int erased_per_row);

}  // namespace easz::core
