// On-disk container for Easz bitstreams.
//
// A deployable codec needs a self-describing file format, not just in-memory
// structs: the container carries magic/version, full geometry, the patchify
// configuration, the squeeze axis, the mask side channel and the inner codec
// name + payload, so a receiver can decode with nothing but this file and
// the reconstruction model.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace easz::core {

/// Serialises an EaszCompressed (plus the pipeline parameters needed to
/// decode it) into a standalone byte buffer.
std::vector<std::uint8_t> serialize_container(const EaszCompressed& c,
                                              const PatchifyConfig& patchify,
                                              const std::string& codec_name);

struct ParsedContainer {
  EaszCompressed compressed;
  PatchifyConfig patchify;
  std::string codec_name;
};

/// Inverse of serialize_container. Throws std::runtime_error on corrupt or
/// version-mismatched input.
ParsedContainer parse_container(const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers.
void write_container(const EaszCompressed& c, const PatchifyConfig& patchify,
                     const std::string& codec_name, const std::string& path);
ParsedContainer read_container(const std::string& path);

}  // namespace easz::core
