// Lightweight transformer reconstructor (paper §III-B, Fig. 5).
//
// Encoder (2 blocks) sees only the un-erased sub-patch tokens; their features
// are scattered back into the full N x N token grid with zero vectors at
// erased positions (plus positional embeddings), and the decoder (2 blocks)
// predicts pixel values for every token. One model serves every erase
// ratio — the mask is an input, not an architecture parameter — which is the
// paper's agility claim. Default dimensions give ~8.6 MB of fp32 weights,
// matching the paper's 8.7 MB figure.
#pragma once

#include <memory>

#include "core/mask.hpp"
#include "core/patchify.hpp"
#include "nn/quantize.hpp"
#include "nn/transformer.hpp"

namespace easz::core {

struct ReconModelConfig {
  PatchifyConfig patchify;  ///< n and b; grid N = n/b tokens per side
  int channels = 3;
  int d_model = 256;
  int num_heads = 4;
  int ffn_hidden = 576;
  int encoder_blocks = 2;
  int decoder_blocks = 2;
};

class ReconstructionModel : public nn::Module {
 public:
  ReconstructionModel(ReconModelConfig config, util::Pcg32& rng);

  [[nodiscard]] const ReconModelConfig& config() const { return config_; }

  /// Full forward pass: `tokens` is [B, N^2, token_dim] with arbitrary values
  /// at erased positions (they are ignored); returns predicted tokens of the
  /// same shape. Differentiable end to end — this is the TRAINING path.
  [[nodiscard]] nn::Tensor forward(const nn::Tensor& tokens,
                                   const EraseMask& mask) const;

  /// Grad-free inference entry: same contract and same weights as forward,
  /// but the whole pass runs on the tensor::kern fast path (register-tiled
  /// parallel GEMMs, fused softmax/layernorm/bias+GELU) using the calling
  /// thread's Workspace arena — a steady-state call performs zero heap
  /// allocations beyond the output tensor. At kFp32, matches forward() to
  /// <= 1e-5 (same per-element summation order; asserted in kernels_test).
  /// At kInt8, every Linear runs the quantized kernel (requires
  /// is_quantized(); throws std::logic_error otherwise) and results are
  /// DETERMINISTIC per precision: static calibrated scales make each patch
  /// row's output independent of batch composition and thread count, so
  /// pooled serving batches reproduce per-request bytes exactly
  /// (tests/quant_test.cpp). Safe to call concurrently from many threads;
  /// NOT safe concurrently with training or quantization.
  [[nodiscard]] nn::Tensor infer(
      const nn::Tensor& tokens, const EraseMask& mask,
      nn::Precision precision = nn::Precision::kFp32) const;

  /// Inference convenience: infer + paste-through of kept tokens (the
  /// decoder only ever has to be trusted for erased content). Runs on the
  /// kernel fast path, never the autograd substrate.
  ///
  /// Re-entrant: infer passes only read parameter data, so many threads
  /// may call this concurrently on one model (the serve runtime does) —
  /// but not concurrently with training, whose backward pass mutates
  /// shared gradient buffers. Per-patch outputs are independent of batch
  /// composition (attention never crosses batch elements), so a batch
  /// pooled across requests reproduces per-request results exactly.
  [[nodiscard]] nn::Tensor reconstruct(
      const nn::Tensor& tokens, const EraseMask& mask,
      nn::Precision precision = nn::Precision::kFp32) const;

  // ---- int8 quantization (DESIGN.md §7) ----

  /// One calibration input: a token batch plus the mask it decodes under.
  struct CalibSample {
    nn::Tensor tokens;
    EraseMask mask;
  };

  /// Post-training quantization: runs fp32 inference over `samples` with
  /// activation observers on (absmax per Linear input), then quantizes
  /// every Linear per output channel with the observed ranges. Single-
  /// threaded; must not overlap serving or training. Idempotent given the
  /// same weights and samples (deterministic bytes).
  void calibrate_and_quantize(const std::vector<CalibSample>& samples);

  /// True once every Linear carries int8 state (calibrated or sidecar).
  [[nodiscard]] bool is_quantized() const;

  /// Exports the frozen int8 plan (layer order: embed, encoder blocks'
  /// qkv/proj/fc1/fc2, decoder blocks' ditto, head) for the EAZQ sidecar.
  /// Throws std::logic_error when not quantized.
  [[nodiscard]] nn::QuantSidecar quant_sidecar() const;

  /// Installs a sidecar exported from an architecturally identical model.
  /// Throws on layer count / dimension mismatch or corrupt scales.
  void apply_quant_sidecar(const nn::QuantSidecar& sidecar);

  /// Forward FLOPs for `batch` patches at erase count T per row — drives the
  /// testbed latency model (server-side reconstruction stage).
  [[nodiscard]] double flops_per_batch(int batch, int erased_per_row) const;

  // ---- deployment versioning (DESIGN.md §10) ----

  /// Monotonic deployment version tag. 0 = unversioned (fresh construction);
  /// the serve runtime stamps each hot-reloaded checkpoint with the next
  /// version at deploy time. Carried on the model — not beside it — so batch
  /// group keys and response metadata can name the exact weights that
  /// produced a byte stream. Not serialized: a checkpoint is version-free
  /// until deployed.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  void set_version(std::uint64_t v) { version_ = v; }

 private:
  /// Every Linear in sidecar order (see quant_sidecar).
  [[nodiscard]] std::vector<nn::Linear*> linears() const;

  ReconModelConfig config_;
  std::uint64_t version_ = 0;               // deployment tag, see version()
  std::unique_ptr<nn::Linear> embed_;       // token_dim -> d_model
  nn::Tensor pos_embedding_;                // [N^2, d_model]
  std::vector<std::unique_ptr<nn::TransformerBlock>> encoder_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> decoder_;
  std::unique_ptr<nn::Linear> head_;        // d_model -> token_dim
};

}  // namespace easz::core
