// Training loop for the reconstructor (paper §III-B "Training Process" and
// §IV-A): random erase masks per step for ratio robustness, L1 + lambda *
// perceptual loss (Eq. 2), AdamW with the paper's hyperparameters.
#pragma once

#include <functional>
#include <vector>

#include "core/recon_model.hpp"
#include "image/image.hpp"
#include "nn/adam.hpp"
#include "nn/losses.hpp"

namespace easz::core {

struct TrainerConfig {
  float lr = 2.8e-4F;          ///< paper §IV-A
  float weight_decay = 0.05F;  ///< paper §IV-A
  float lambda = 0.3F;         ///< Eq. (2) perceptual weight
  int batch_patches = 16;      ///< patches per step (paper uses 4096 sub-patches)
  float min_erase_ratio = 0.1F;
  float max_erase_ratio = 0.4F;  ///< paper pretrains around 0.25
  bool use_perceptual = true;
};

struct TrainStats {
  std::vector<float> loss_history;  ///< one entry per step
  [[nodiscard]] float final_loss() const {
    return loss_history.empty() ? 0.0F : loss_history.back();
  }
};

class Trainer {
 public:
  Trainer(ReconstructionModel& model, TrainerConfig config, util::Pcg32& rng);

  /// Runs `steps` optimisation steps, drawing random n x n patches from
  /// `images` and fresh conditional-sampler masks each step.
  TrainStats train(const std::vector<image::Image>& images, int steps);

  /// One step on a fixed (tokens, mask) batch; returns the loss. Exposed for
  /// tests and for the fine-tuning benches that control their own batches.
  float train_step(const nn::Tensor& tokens, const EraseMask& mask);

  [[nodiscard]] nn::Adam& optimizer() { return opt_; }

 private:
  ReconstructionModel& model_;
  TrainerConfig config_;
  util::Pcg32& rng_;
  nn::Adam opt_;
  nn::CombinedLoss loss_;
};

/// Extracts a random n x n patch (as a 1-patch token tensor) from an image.
nn::Tensor sample_patch_tokens(const image::Image& img,
                               const PatchifyConfig& config, int channels,
                               util::Pcg32& rng);

}  // namespace easz::core
