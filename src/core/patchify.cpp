#include "core/patchify.hpp"

#include <stdexcept>

namespace easz::core {

void PatchifyConfig::validate() const {
  if (patch <= 0 || sub_patch <= 0) {
    throw std::invalid_argument("PatchifyConfig: sizes must be positive");
  }
  if (patch % sub_patch != 0) {
    throw std::invalid_argument(
        "PatchifyConfig: patch must be divisible by sub_patch");
  }
}

PaddedGeometry padded_geometry(int width, int height, int patch) {
  PaddedGeometry g;
  g.patches_x = (width + patch - 1) / patch;
  g.patches_y = (height + patch - 1) / patch;
  g.padded_w = g.patches_x * patch;
  g.padded_h = g.patches_y * patch;
  return g;
}

tensor::Tensor image_to_tokens(const image::Image& img,
                               const PatchifyConfig& config) {
  config.validate();
  const int c = img.channels();
  const int n = config.patch;
  const int b = config.sub_patch;
  const int grid = config.grid();
  const PaddedGeometry g = padded_geometry(img.width(), img.height(), n);
  const int token_dim = config.token_dim(c);

  tensor::Tensor out({g.patch_count(), config.tokens(), token_dim});
  float* ov = out.data().data();
  std::size_t w_idx = 0;
  for (int py = 0; py < g.patches_y; ++py) {
    for (int px = 0; px < g.patches_x; ++px) {
      for (int gy = 0; gy < grid; ++gy) {
        for (int gx = 0; gx < grid; ++gx) {
          for (int ch = 0; ch < c; ++ch) {
            for (int y = 0; y < b; ++y) {
              for (int x = 0; x < b; ++x) {
                ov[w_idx++] = img.at_clamped(ch, py * n + gy * b + y,
                                             px * n + gx * b + x);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

image::Image tokens_to_image(const tensor::Tensor& tokens, int width,
                             int height, int channels,
                             const PatchifyConfig& config) {
  config.validate();
  const int n = config.patch;
  const int b = config.sub_patch;
  const int grid = config.grid();
  const PaddedGeometry g = padded_geometry(width, height, n);
  if (tokens.rank() != 3 || tokens.dim(0) != g.patch_count() ||
      tokens.dim(1) != config.tokens() ||
      tokens.dim(2) != config.token_dim(channels)) {
    throw std::invalid_argument("tokens_to_image: tensor shape mismatch");
  }

  image::Image out(width, height, channels);
  const float* tv = tokens.data().data();
  std::size_t r_idx = 0;
  for (int py = 0; py < g.patches_y; ++py) {
    for (int px = 0; px < g.patches_x; ++px) {
      for (int gy = 0; gy < grid; ++gy) {
        for (int gx = 0; gx < grid; ++gx) {
          for (int ch = 0; ch < channels; ++ch) {
            for (int y = 0; y < b; ++y) {
              for (int x = 0; x < b; ++x) {
                const int iy = py * n + gy * b + y;
                const int ix = px * n + gx * b + x;
                const float v = tv[r_idx++];
                if (iy < height && ix < width) out.at(ch, iy, ix) = v;
              }
            }
          }
        }
      }
    }
  }
  return out;
}

std::vector<std::size_t> tokens_to_patch_pixels_perm(
    int batch, int channels, const PatchifyConfig& config) {
  config.validate();
  const int n = config.patch;
  const int b = config.sub_patch;
  const int grid = config.grid();
  const int token_dim = config.token_dim(channels);
  const std::size_t per_patch =
      static_cast<std::size_t>(config.tokens()) * token_dim;

  // Destination order: [batch][channel][y][x]; source: [batch][token][dim].
  std::vector<std::size_t> perm(static_cast<std::size_t>(batch) * per_patch);
  std::size_t d_idx = 0;
  for (int bi = 0; bi < batch; ++bi) {
    const std::size_t base = static_cast<std::size_t>(bi) * per_patch;
    for (int ch = 0; ch < channels; ++ch) {
      for (int y = 0; y < n; ++y) {
        const int gy = y / b;
        const int sy = y % b;
        for (int x = 0; x < n; ++x) {
          const int gx = x / b;
          const int sx = x % b;
          const std::size_t token = static_cast<std::size_t>(gy) * grid + gx;
          const std::size_t offset =
              (static_cast<std::size_t>(ch) * b + sy) * b + sx;
          perm[d_idx++] = base + token * token_dim + offset;
        }
      }
    }
  }
  return perm;
}

}  // namespace easz::core
