#include "core/recon_model.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace easz::core {

ReconstructionModel::ReconstructionModel(ReconModelConfig config,
                                         util::Pcg32& rng)
    : config_(config) {
  config_.patchify.validate();
  const int token_dim = config_.patchify.token_dim(config_.channels);
  const int tokens = config_.patchify.tokens();

  embed_ = std::make_unique<nn::Linear>(token_dim, config_.d_model, rng);
  absorb(*embed_);
  pos_embedding_ = register_param(nn::Tensor::randn(
      {tokens, config_.d_model}, rng, 0.02F, /*requires_grad=*/true));
  for (int i = 0; i < config_.encoder_blocks; ++i) {
    encoder_.push_back(std::make_unique<nn::TransformerBlock>(
        config_.d_model, config_.num_heads, config_.ffn_hidden, rng));
    absorb(*encoder_.back());
  }
  for (int i = 0; i < config_.decoder_blocks; ++i) {
    decoder_.push_back(std::make_unique<nn::TransformerBlock>(
        config_.d_model, config_.num_heads, config_.ffn_hidden, rng));
    absorb(*decoder_.back());
  }
  head_ = std::make_unique<nn::Linear>(config_.d_model, token_dim, rng);
  absorb(*head_);
}

nn::Tensor ReconstructionModel::forward(const nn::Tensor& tokens,
                                        const EraseMask& mask) const {
  const int total = config_.patchify.tokens();
  const int token_dim = config_.patchify.token_dim(config_.channels);
  if (tokens.rank() != 3 || tokens.dim(1) != total ||
      tokens.dim(2) != token_dim) {
    throw std::invalid_argument("ReconstructionModel: bad token tensor shape");
  }
  if (mask.grid() != config_.patchify.grid()) {
    throw std::invalid_argument("ReconstructionModel: mask grid mismatch");
  }
  const int batch = tokens.dim(0);
  const std::vector<int> kept = mask.kept_indices();
  const int m = static_cast<int>(kept.size());

  // Gather the un-erased tokens of every batch element.
  std::vector<int> flat_kept;
  flat_kept.reserve(static_cast<std::size_t>(batch) * m);
  for (int b = 0; b < batch; ++b) {
    for (const int j : kept) flat_kept.push_back(b * total + j);
  }
  const nn::Tensor flat =
      tokens.reshape({batch * total, token_dim});
  nn::Tensor kept_tokens = tensor::gather_rows(flat, flat_kept);  // [B*m, td]

  // Embed + positional information for the kept grid positions.
  nn::Tensor x = embed_->forward(kept_tokens);  // [B*m, d]
  const nn::Tensor kept_pos = tensor::gather_rows(pos_embedding_, kept);
  x = x.reshape({batch, m, config_.d_model});
  x = tensor::add_broadcast(x, kept_pos.reshape({m, config_.d_model}));

  for (const auto& block : encoder_) x = block->forward(x);

  // Zero-vector infill: scatter encoded features back into the full grid;
  // erased positions stay zero and receive only their positional embedding.
  nn::Tensor scattered = tensor::scatter_rows(
      x.reshape({batch * m, config_.d_model}), flat_kept, batch * total);
  nn::Tensor y = scattered.reshape({batch, total, config_.d_model});
  y = tensor::add_broadcast(y, pos_embedding_.reshape(
                                   {total, config_.d_model}));

  for (const auto& block : decoder_) y = block->forward(y);

  const nn::Tensor out = head_->forward(y);  // [B, total, token_dim]
  return out;
}

nn::Tensor ReconstructionModel::infer(const nn::Tensor& tokens,
                                      const EraseMask& mask,
                                      nn::Precision precision) const {
  namespace kern = tensor::kern;
  const bool int8 = precision == nn::Precision::kInt8;
  if (int8 && !is_quantized()) {
    throw std::logic_error(
        "ReconstructionModel: int8 inference requested but the model is not "
        "quantized (run calibrate_and_quantize or apply an EAZQ sidecar)");
  }
  const int total = config_.patchify.tokens();
  const int token_dim = config_.patchify.token_dim(config_.channels);
  if (tokens.rank() != 3 || tokens.dim(1) != total ||
      tokens.dim(2) != token_dim) {
    throw std::invalid_argument("ReconstructionModel: bad token tensor shape");
  }
  if (mask.grid() != config_.patchify.grid()) {
    throw std::invalid_argument("ReconstructionModel: mask grid mismatch");
  }
  const int batch = tokens.dim(0);
  const int d = config_.d_model;
  const std::vector<int> kept = mask.kept_indices();
  const int m = static_cast<int>(kept.size());

  kern::Workspace& ws = kern::Workspace::for_this_thread();
  ws.reset();
  const float* in = tokens.data().data();
  const float* pos = pos_embedding_.data().data();

  // Gather the un-erased tokens of every batch element into [B*m, td].
  float* kept_tokens =
      ws.alloc(static_cast<std::size_t>(batch) * m * token_dim);
  for (int b = 0; b < batch; ++b) {
    for (int r = 0; r < m; ++r) {
      const float* src =
          in + (static_cast<std::size_t>(b) * total + kept[r]) * token_dim;
      float* dst =
          kept_tokens + (static_cast<std::size_t>(b) * m + r) * token_dim;
      std::copy_n(src, token_dim, dst);
    }
  }

  // Embed + positional information for the kept grid positions.
  float* x = ws.alloc(static_cast<std::size_t>(batch) * m * d);
  if (int8) {
    embed_->infer_q(kept_tokens, x, batch * m);
  } else {
    embed_->infer(kept_tokens, x, batch * m);
  }
  for (int b = 0; b < batch; ++b) {
    for (int r = 0; r < m; ++r) {
      float* row = x + (static_cast<std::size_t>(b) * m + r) * d;
      kern::add_rows(row, pos + static_cast<std::size_t>(kept[r]) * d, row, d);
    }
  }

  float* ping = ws.alloc(static_cast<std::size_t>(batch) * m * d);
  float* cur = x;
  for (const auto& block : encoder_) {
    if (int8) {
      block->infer_q(cur, ping, batch, m, ws);
    } else {
      block->infer(cur, ping, batch, m, ws);
    }
    std::swap(cur, ping);
  }

  // Zero-vector infill: scatter encoded features back into the full grid;
  // erased positions stay zero and receive only their positional embedding.
  float* y = ws.alloc(static_cast<std::size_t>(batch) * total * d);
  std::fill_n(y, static_cast<std::size_t>(batch) * total * d, 0.0F);
  for (int b = 0; b < batch; ++b) {
    for (int r = 0; r < m; ++r) {
      std::copy_n(cur + (static_cast<std::size_t>(b) * m + r) * d, d,
                  y + (static_cast<std::size_t>(b) * total + kept[r]) * d);
    }
  }
  for (int b = 0; b < batch; ++b) {
    float* rows = y + static_cast<std::size_t>(b) * total * d;
    kern::add_rows(rows, pos, rows,
                   static_cast<std::size_t>(total) * d);  // pos is [N^2, D]
  }

  float* pong = ws.alloc(static_cast<std::size_t>(batch) * total * d);
  float* cur_y = y;
  for (const auto& block : decoder_) {
    if (int8) {
      block->infer_q(cur_y, pong, batch, total, ws);
    } else {
      block->infer(cur_y, pong, batch, total, ws);
    }
    std::swap(cur_y, pong);
  }

  nn::Tensor out({batch, total, token_dim});
  if (int8) {
    head_->infer_q(cur_y, out.data().data(), batch * total);
  } else {
    head_->infer(cur_y, out.data().data(), batch * total);
  }
  return out;
}

nn::Tensor ReconstructionModel::reconstruct(const nn::Tensor& tokens,
                                            const EraseMask& mask,
                                            nn::Precision precision) const {
  // Serving hot path: grad-free kernel forward (see infer). The autograd
  // forward() stays reserved for training.
  nn::Tensor out = infer(tokens, mask, precision);
  // Paste-through: keep original values where nothing was erased.
  const int total = config_.patchify.tokens();
  const int token_dim = config_.patchify.token_dim(config_.channels);
  const int batch = tokens.dim(0);
  const std::vector<int> kept = mask.kept_indices();
  for (int b = 0; b < batch; ++b) {
    for (const int j : kept) {
      const std::size_t off =
          (static_cast<std::size_t>(b) * total + j) * token_dim;
      for (int d = 0; d < token_dim; ++d) {
        out.data()[off + d] = tokens.data()[off + d];
      }
    }
  }
  // Clamp predictions into the valid sample range.
  for (auto& v : out.data()) v = std::min(1.0F, std::max(0.0F, v));
  return out;
}

std::vector<nn::Linear*> ReconstructionModel::linears() const {
  std::vector<nn::Linear*> out;
  out.push_back(embed_.get());
  for (const auto& block : encoder_) block->collect_linears(out);
  for (const auto& block : decoder_) block->collect_linears(out);
  out.push_back(head_.get());
  return out;
}

void ReconstructionModel::calibrate_and_quantize(
    const std::vector<CalibSample>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument(
        "ReconstructionModel: calibration needs at least one sample");
  }
  // Observers record absmax per Linear input during plain fp32 inference;
  // the whole pass is the production code path, so calibration sees exactly
  // the activation distribution serving will. Start from a clean slate so
  // RE-calibration reflects these samples, not the widest range ever seen.
  for (nn::Linear* l : linears()) l->reset_observed_absmax();
  nn::set_calibration(true);
  try {
    for (const CalibSample& s : samples) (void)infer(s.tokens, s.mask);
  } catch (...) {
    nn::set_calibration(false);
    throw;
  }
  nn::set_calibration(false);
  for (nn::Linear* l : linears()) l->build_quant(l->observed_absmax());
}

bool ReconstructionModel::is_quantized() const {
  for (nn::Linear* l : linears()) {
    if (!l->quantized()) return false;
  }
  return true;
}

nn::QuantSidecar ReconstructionModel::quant_sidecar() const {
  nn::QuantSidecar out;
  for (nn::Linear* l : linears()) {
    const nn::Linear::QuantState& q = l->quant();  // throws if not quantized
    nn::QuantSidecar::Layer layer;
    layer.in = static_cast<std::uint32_t>(l->in_features());
    layer.out = static_cast<std::uint32_t>(l->out_features());
    layer.act_scale = q.act_scale;
    layer.w_scale = q.w_scale;
    layer.w_q = q.w_q;
    out.layers.push_back(std::move(layer));
  }
  return out;
}

void ReconstructionModel::apply_quant_sidecar(const nn::QuantSidecar& sidecar) {
  const std::vector<nn::Linear*> layers = linears();
  if (sidecar.layers.size() != layers.size()) {
    throw std::invalid_argument(
        "ReconstructionModel: sidecar layer count does not match the model");
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const nn::QuantSidecar::Layer& l = sidecar.layers[i];
    if (static_cast<int>(l.in) != layers[i]->in_features() ||
        static_cast<int>(l.out) != layers[i]->out_features()) {
      throw std::invalid_argument(
          "ReconstructionModel: sidecar layer dimensions do not match");
    }
    layers[i]->apply_quant(l.act_scale, l.w_scale, l.w_q);
  }
}

double ReconstructionModel::flops_per_batch(int batch, int erased_per_row) const {
  const int grid = config_.patchify.grid();
  const int total = grid * grid;
  const int m = grid * (grid - erased_per_row);
  const int token_dim = config_.patchify.token_dim(config_.channels);
  double flops = 0.0;
  // Embedding and head projections.
  flops += 2.0 * batch * m * token_dim * config_.d_model;
  flops += 2.0 * batch * total * config_.d_model * token_dim;
  for (int i = 0; i < config_.encoder_blocks; ++i) {
    flops += nn::TransformerBlock::flops(batch, m, config_.d_model,
                                         config_.num_heads, config_.ffn_hidden);
  }
  for (int i = 0; i < config_.decoder_blocks; ++i) {
    flops += nn::TransformerBlock::flops(batch, total, config_.d_model,
                                         config_.num_heads, config_.ffn_hidden);
  }
  return flops;
}

}  // namespace easz::core
