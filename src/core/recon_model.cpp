#include "core/recon_model.hpp"

#include <stdexcept>

namespace easz::core {

ReconstructionModel::ReconstructionModel(ReconModelConfig config,
                                         util::Pcg32& rng)
    : config_(config) {
  config_.patchify.validate();
  const int token_dim = config_.patchify.token_dim(config_.channels);
  const int tokens = config_.patchify.tokens();

  embed_ = std::make_unique<nn::Linear>(token_dim, config_.d_model, rng);
  absorb(*embed_);
  pos_embedding_ = register_param(nn::Tensor::randn(
      {tokens, config_.d_model}, rng, 0.02F, /*requires_grad=*/true));
  for (int i = 0; i < config_.encoder_blocks; ++i) {
    encoder_.push_back(std::make_unique<nn::TransformerBlock>(
        config_.d_model, config_.num_heads, config_.ffn_hidden, rng));
    absorb(*encoder_.back());
  }
  for (int i = 0; i < config_.decoder_blocks; ++i) {
    decoder_.push_back(std::make_unique<nn::TransformerBlock>(
        config_.d_model, config_.num_heads, config_.ffn_hidden, rng));
    absorb(*decoder_.back());
  }
  head_ = std::make_unique<nn::Linear>(config_.d_model, token_dim, rng);
  absorb(*head_);
}

nn::Tensor ReconstructionModel::forward(const nn::Tensor& tokens,
                                        const EraseMask& mask) const {
  const int total = config_.patchify.tokens();
  const int token_dim = config_.patchify.token_dim(config_.channels);
  if (tokens.rank() != 3 || tokens.dim(1) != total ||
      tokens.dim(2) != token_dim) {
    throw std::invalid_argument("ReconstructionModel: bad token tensor shape");
  }
  if (mask.grid() != config_.patchify.grid()) {
    throw std::invalid_argument("ReconstructionModel: mask grid mismatch");
  }
  const int batch = tokens.dim(0);
  const std::vector<int> kept = mask.kept_indices();
  const int m = static_cast<int>(kept.size());

  // Gather the un-erased tokens of every batch element.
  std::vector<int> flat_kept;
  flat_kept.reserve(static_cast<std::size_t>(batch) * m);
  for (int b = 0; b < batch; ++b) {
    for (const int j : kept) flat_kept.push_back(b * total + j);
  }
  const nn::Tensor flat =
      tokens.reshape({batch * total, token_dim});
  nn::Tensor kept_tokens = tensor::gather_rows(flat, flat_kept);  // [B*m, td]

  // Embed + positional information for the kept grid positions.
  nn::Tensor x = embed_->forward(kept_tokens);  // [B*m, d]
  const nn::Tensor kept_pos = tensor::gather_rows(pos_embedding_, kept);
  x = x.reshape({batch, m, config_.d_model});
  x = tensor::add_broadcast(x, kept_pos.reshape({m, config_.d_model}));

  for (const auto& block : encoder_) x = block->forward(x);

  // Zero-vector infill: scatter encoded features back into the full grid;
  // erased positions stay zero and receive only their positional embedding.
  nn::Tensor scattered = tensor::scatter_rows(
      x.reshape({batch * m, config_.d_model}), flat_kept, batch * total);
  nn::Tensor y = scattered.reshape({batch, total, config_.d_model});
  y = tensor::add_broadcast(y, pos_embedding_.reshape(
                                   {total, config_.d_model}));

  for (const auto& block : decoder_) y = block->forward(y);

  const nn::Tensor out = head_->forward(y);  // [B, total, token_dim]
  return out;
}

nn::Tensor ReconstructionModel::reconstruct(const nn::Tensor& tokens,
                                            const EraseMask& mask) const {
  const nn::Tensor pred = forward(tokens, mask);
  // Paste-through: keep original values where nothing was erased.
  const int total = config_.patchify.tokens();
  const int token_dim = config_.patchify.token_dim(config_.channels);
  const int batch = tokens.dim(0);
  nn::Tensor out = pred.detach();
  const std::vector<int> kept = mask.kept_indices();
  for (int b = 0; b < batch; ++b) {
    for (const int j : kept) {
      const std::size_t off =
          (static_cast<std::size_t>(b) * total + j) * token_dim;
      for (int d = 0; d < token_dim; ++d) {
        out.data()[off + d] = tokens.data()[off + d];
      }
    }
  }
  // Clamp predictions into the valid sample range.
  for (auto& v : out.data()) v = std::min(1.0F, std::max(0.0F, v));
  return out;
}

double ReconstructionModel::flops_per_batch(int batch, int erased_per_row) const {
  const int grid = config_.patchify.grid();
  const int total = grid * grid;
  const int m = grid * (grid - erased_per_row);
  const int token_dim = config_.patchify.token_dim(config_.channels);
  double flops = 0.0;
  // Embedding and head projections.
  flops += 2.0 * batch * m * token_dim * config_.d_model;
  flops += 2.0 * batch * total * config_.d_model * token_dim;
  for (int i = 0; i < config_.encoder_blocks; ++i) {
    flops += nn::TransformerBlock::flops(batch, m, config_.d_model,
                                         config_.num_heads, config_.ffn_hidden);
  }
  for (int i = 0; i < config_.decoder_blocks; ++i) {
    flops += nn::TransformerBlock::flops(batch, total, config_.d_model,
                                         config_.num_heads, config_.ffn_hidden);
  }
  return flops;
}

}  // namespace easz::core
