#include "core/squeeze.hpp"

#include <stdexcept>

namespace easz::core {
namespace {

image::Image transpose_image(const image::Image& img) {
  image::Image out(img.height(), img.width(), img.channels());
  for (int c = 0; c < img.channels(); ++c) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        out.at(c, x, y) = img.at(c, y, x);
      }
    }
  }
  return out;
}

void check_divisible(const image::Image& img, const PatchifyConfig& config) {
  if (img.width() % config.patch != 0 || img.height() % config.patch != 0) {
    throw std::invalid_argument(
        "squeeze: image dimensions must be multiples of the patch size");
  }
}

// Copies one b x b sub-patch between images.
void copy_sub_patch(const image::Image& src, int sx, int sy, image::Image& dst,
                    int dx, int dy, int b) {
  for (int c = 0; c < src.channels(); ++c) {
    for (int y = 0; y < b; ++y) {
      for (int x = 0; x < b; ++x) {
        dst.at(c, dy + y, dx + x) = src.at(c, sy + y, sx + x);
      }
    }
  }
}

// Widest kept row of the mask; uniform masks keep grid - T everywhere, a
// non-uniform (fully random) mask forces every squeezed row to pad up to
// this width — the rate penalty the paper's conditional sampler avoids.
int max_kept_cols(const EraseMask& mask) {
  int mk = 0;
  for (int r = 0; r < mask.grid(); ++r) {
    mk = std::max(mk, static_cast<int>(mask.kept_cols(r).size()));
  }
  return mk;
}

image::Image squeeze_horizontal(const image::Image& img, const EraseMask& mask,
                                const PatchifyConfig& config) {
  check_divisible(img, config);
  const int b = config.sub_patch;
  const int n = config.patch;
  const int grid = config.grid();
  if (mask.grid() != grid) {
    throw std::invalid_argument("squeeze: mask grid does not match config");
  }
  const int kept = max_kept_cols(mask);
  const int patches_x = img.width() / n;
  const int patches_y = img.height() / n;

  image::Image out(patches_x * kept * b, img.height(), img.channels());
  for (int py = 0; py < patches_y; ++py) {
    for (int px = 0; px < patches_x; ++px) {
      for (int gy = 0; gy < grid; ++gy) {
        const std::vector<int> cols = mask.kept_cols(gy);
        for (int k = 0; k < kept; ++k) {
          // Rows with fewer kept sub-patches pad by replicating their last
          // kept sub-patch (mid-gray if the row is fully erased).
          if (k < static_cast<int>(cols.size())) {
            copy_sub_patch(img, px * n + cols[k] * b, py * n + gy * b, out,
                           (px * kept + k) * b, py * n + gy * b, b);
          } else if (!cols.empty()) {
            copy_sub_patch(img, px * n + cols.back() * b, py * n + gy * b, out,
                           (px * kept + k) * b, py * n + gy * b, b);
          } else {
            for (int c = 0; c < img.channels(); ++c) {
              for (int y = 0; y < b; ++y) {
                for (int x = 0; x < b; ++x) {
                  out.at(c, py * n + gy * b + y, (px * kept + k) * b + x) = 0.5F;
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

image::Image unsqueeze_horizontal(const image::Image& squeezed,
                                  const EraseMask& mask,
                                  const PatchifyConfig& config, int full_w,
                                  int full_h, bool neighbor_fill) {
  const int b = config.sub_patch;
  const int n = config.patch;
  const int grid = config.grid();
  const int kept = max_kept_cols(mask);
  if (full_w % n != 0 || full_h % n != 0) {
    throw std::invalid_argument("unsqueeze: full dims must be patch multiples");
  }
  const int patches_x = full_w / n;
  const int patches_y = full_h / n;
  if (squeezed.width() != patches_x * kept * b || squeezed.height() != full_h) {
    throw std::invalid_argument("unsqueeze: squeezed geometry mismatch");
  }

  image::Image out(full_w, full_h, squeezed.channels());
  for (int py = 0; py < patches_y; ++py) {
    for (int px = 0; px < patches_x; ++px) {
      for (int gy = 0; gy < grid; ++gy) {
        const std::vector<int> cols = mask.kept_cols(gy);
        for (int k = 0; k < static_cast<int>(cols.size()); ++k) {
          copy_sub_patch(squeezed, (px * kept + k) * b, py * n + gy * b, out,
                         px * n + cols[k] * b, py * n + gy * b, b);
        }
        if (neighbor_fill) {
          for (const int col : mask.erased_cols(gy)) {
            // Nearest kept column in this row (ties -> left).
            int best = cols.empty() ? col : cols[0];
            for (const int kc : cols) {
              if (std::abs(kc - col) < std::abs(best - col)) best = kc;
            }
            copy_sub_patch(out, px * n + best * b, py * n + gy * b, out,
                           px * n + col * b, py * n + gy * b, b);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

image::Image erase_and_squeeze(const image::Image& img, const EraseMask& mask,
                               const PatchifyConfig& config, SqueezeAxis axis) {
  config.validate();
  if (axis == SqueezeAxis::kHorizontal) {
    return squeeze_horizontal(img, mask, config);
  }
  return transpose_image(squeeze_horizontal(transpose_image(img), mask, config));
}

image::Image unsqueeze(const image::Image& squeezed, const EraseMask& mask,
                       const PatchifyConfig& config, int full_w, int full_h,
                       SqueezeAxis axis) {
  config.validate();
  if (axis == SqueezeAxis::kHorizontal) {
    return unsqueeze_horizontal(squeezed, mask, config, full_w, full_h, false);
  }
  return transpose_image(unsqueeze_horizontal(transpose_image(squeezed), mask,
                                              config, full_h, full_w, false));
}

image::Image unsqueeze_neighbor_fill(const image::Image& squeezed,
                                     const EraseMask& mask,
                                     const PatchifyConfig& config, int full_w,
                                     int full_h, SqueezeAxis axis) {
  config.validate();
  if (axis == SqueezeAxis::kHorizontal) {
    return unsqueeze_horizontal(squeezed, mask, config, full_w, full_h, true);
  }
  return transpose_image(unsqueeze_horizontal(transpose_image(squeezed), mask,
                                              config, full_h, full_w, true));
}

}  // namespace easz::core
