#include "codec/codec.hpp"

#include <stdexcept>

#include "codec/bpg_like.hpp"
#include "codec/jpeg_like.hpp"

namespace easz::codec {

std::unique_ptr<ImageCodec> make_classical_codec(const std::string& name,
                                                 int quality) {
  if (name == "jpeg") return std::make_unique<JpegLikeCodec>(quality);
  if (name == "bpg") return std::make_unique<BpgLikeCodec>(quality);
  throw std::invalid_argument("make_classical_codec: unknown codec " + name);
}

}  // namespace easz::codec
