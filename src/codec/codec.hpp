// Common lossy image codec interface.
//
// Everything that can turn an Image into bytes and back implements
// ImageCodec: the classical JPEG-/BPG-style codecs here, the neural codecs in
// src/neural_codec, and the SR-pipeline pseudo-codec in src/sr. The Easz
// pipeline (src/core) composes with any of them, which is the paper's
// "compatible with all existing image compression algorithms" claim.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "image/image.hpp"

namespace easz::codec {

/// Encoded bitstream plus self-describing geometry.
struct Compressed {
  std::vector<std::uint8_t> bytes;
  int width = 0;
  int height = 0;
  int channels = 0;

  [[nodiscard]] std::size_t size_bytes() const { return bytes.size(); }

  /// Bits per pixel of the *original* (width x height) pixel grid.
  [[nodiscard]] double bpp() const {
    return static_cast<double>(bytes.size()) * 8.0 /
           (static_cast<double>(width) * static_cast<double>(height));
  }
};

/// Abstract lossy codec. `quality` semantics are codec-specific but always
/// monotone: higher quality => more bits, less distortion.
class ImageCodec {
 public:
  virtual ~ImageCodec() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Encodes at the currently configured quality.
  [[nodiscard]] virtual Compressed encode(const image::Image& img) const = 0;

  [[nodiscard]] virtual image::Image decode(const Compressed& c) const = 0;

  /// Quality knob in [1, 100]. Implementations clamp.
  virtual void set_quality(int quality) = 0;
  [[nodiscard]] virtual int quality() const = 0;

  /// Rough FLOPs to encode one (w x h) image — consumed by the testbed
  /// latency/power model (src/testbed). Classical codecs are cheap;
  /// neural codecs report their network cost.
  [[nodiscard]] virtual double encode_flops(int width, int height) const = 0;
  [[nodiscard]] virtual double decode_flops(int width, int height) const = 0;

  /// Serialized model/table bytes that must be resident to run the encoder
  /// (the "Load Latency" axis of paper Fig. 1). Classical codecs: ~0.
  [[nodiscard]] virtual std::size_t model_bytes() const = 0;
};

/// Factory by name: "jpeg", "bpg" (more registered by other libraries via
/// their own factories; this one only knows the classical codecs).
std::unique_ptr<ImageCodec> make_classical_codec(const std::string& name,
                                                 int quality);

}  // namespace easz::codec
