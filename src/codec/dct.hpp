// 2-D type-II DCT / type-III inverse DCT for small square blocks.
//
// Shared by the JPEG-style (8x8) and BPG-style (variable block) codecs.
// Implemented as separable matrix products with precomputed basis tables.
#pragma once

#include <vector>

namespace easz::codec {

/// Orthonormal DCT operator for n x n blocks (n in [2, 64]).
class Dct2d {
 public:
  explicit Dct2d(int n);

  [[nodiscard]] int size() const { return n_; }

  /// In-place forward DCT of a row-major n*n block.
  void forward(float* block) const;

  /// In-place inverse DCT.
  void inverse(float* block) const;

 private:
  int n_;
  std::vector<float> basis_;  // basis_[k * n + x] = c_k cos(...)
  mutable std::vector<float> scratch_;
};

}  // namespace easz::codec
