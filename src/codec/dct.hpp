// 2-D type-II DCT / type-III inverse DCT for small square blocks.
//
// Shared by the JPEG-style (8x8) and BPG-style (variable block) codecs.
// The transform is separable — two small matrix multiplies against a
// precomputed orthonormal basis — and is executed as exactly that:
// dedicated fully-unrolled kernels for the hot 8x8 and 16x16 shapes
// (compiled twice, AVX2+FMA and baseline, dispatched at runtime like
// tensor::kern), and tensor::kern::gemm for every other size. Instances
// are immutable after construction and safe to share across threads (the
// block-parallel codec paths rely on this).
#pragma once

#include <vector>

namespace easz::codec {

/// Orthonormal DCT operator for n x n blocks (n in [2, 64]).
class Dct2d {
 public:
  explicit Dct2d(int n);

  [[nodiscard]] int size() const { return n_; }

  /// In-place forward DCT of a row-major n*n block.
  void forward(float* block) const;

  /// In-place inverse DCT.
  void inverse(float* block) const;

 private:
  int n_;
  std::vector<float> basis_;    // basis_[k * n + x] = c_k cos(...)
  std::vector<float> basis_t_;  // transpose, so every product streams rows
};

}  // namespace easz::codec
