// BPG-style codec: HEVC-intra-inspired, built from scratch.
//
// BPG is HEVC intra coding in a container. This codec reproduces the shape of
// that design: 16x16 luma blocks, directional intra prediction from decoded
// neighbours (DC / planar / horizontal / vertical / two diagonals), DCT of
// the prediction residual, uniform quantisation driven by a QP-like quality
// knob, and rANS entropy coding of the quantised coefficients with static
// per-image frequency tables. Chroma is coded at 4:2:0 with 8x8 blocks.
// Like real BPG vs JPEG, it wins at low rates thanks to prediction + larger
// blocks + better entropy coding.
#pragma once

#include "codec/codec.hpp"

namespace easz::codec {

class BpgLikeCodec final : public ImageCodec {
 public:
  explicit BpgLikeCodec(int quality = 50);

  [[nodiscard]] std::string name() const override { return "bpg"; }
  [[nodiscard]] Compressed encode(const image::Image& img) const override;
  [[nodiscard]] image::Image decode(const Compressed& c) const override;
  void set_quality(int quality) override;
  [[nodiscard]] int quality() const override { return quality_; }
  [[nodiscard]] double encode_flops(int width, int height) const override;
  [[nodiscard]] double decode_flops(int width, int height) const override;
  [[nodiscard]] std::size_t model_bytes() const override { return 0; }

 private:
  int quality_;
};

}  // namespace easz::codec
