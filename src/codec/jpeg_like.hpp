// Baseline-JPEG-style codec built from scratch.
//
// Same algorithmic structure as JPEG: YCbCr conversion, 4:2:0 chroma
// subsampling, 8x8 DCT, quality-scaled Annex-K quantisation tables, zigzag
// scan, DC DPCM + AC (run, size) symbols, canonical Huffman coding. The
// bitstream is our own container (not JFIF-compatible); no experiment needs
// format compatibility, only JPEG-shaped rate-distortion behaviour.
#pragma once

#include "codec/codec.hpp"

namespace easz::codec {

class JpegLikeCodec final : public ImageCodec {
 public:
  explicit JpegLikeCodec(int quality = 75);

  [[nodiscard]] std::string name() const override { return "jpeg"; }
  [[nodiscard]] Compressed encode(const image::Image& img) const override;
  [[nodiscard]] image::Image decode(const Compressed& c) const override;
  void set_quality(int quality) override;
  [[nodiscard]] int quality() const override { return quality_; }
  [[nodiscard]] double encode_flops(int width, int height) const override;
  [[nodiscard]] double decode_flops(int width, int height) const override;
  [[nodiscard]] std::size_t model_bytes() const override { return 0; }

 private:
  int quality_;
};

}  // namespace easz::codec
