#include "codec/dct.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernels.hpp"

namespace easz::codec {
namespace {

constexpr int kMaxN = 64;

// Fixed-size row-major product C = A * B for the hot block shapes. With N a
// compile-time constant the j-loop vectorises and the k-loop unrolls; each
// output element accumulates over k in ascending order (one fp32
// accumulator), the same summation order as tensor::kern::gemm and the old
// triple loop.
template <int N>
__attribute__((always_inline)) inline void matmul_fixed(const float* a,
                                                        const float* b,
                                                        float* c) {
  for (int i = 0; i < N; ++i) {
    float acc[N] = {};
    for (int k = 0; k < N; ++k) {
      const float av = a[i * N + k];
      for (int j = 0; j < N; ++j) acc[j] += av * b[k * N + j];
    }
    for (int j = 0; j < N; ++j) c[i * N + j] = acc[j];
  }
}

// forward: block = B * (block * B^T)  — both factors stream rows because the
// first product multiplies by the transposed basis.
template <int N>
__attribute__((always_inline)) inline void dct_forward_fixed(
    float* block, const float* basis, const float* basis_t) {
  float tmp[N * N];
  matmul_fixed<N>(block, basis_t, tmp);   // tmp = X * B^T
  matmul_fixed<N>(basis, tmp, block);     // out = B * tmp
}

// inverse: block = (B^T * block) * B
template <int N>
__attribute__((always_inline)) inline void dct_inverse_fixed(
    float* block, const float* basis, const float* basis_t) {
  float tmp[N * N];
  matmul_fixed<N>(basis_t, block, tmp);   // tmp = B^T * X
  matmul_fixed<N>(tmp, basis, block);     // out = tmp * B
}

// AVX2 path: the hot matmuls are written directly in broadcast+FMA
// intrinsics. Letting the autovectoriser at the fully-unrolled fixed-size
// loops produces a permute-heavy SLP mess that runs BELOW scalar speed
// (measured ~1 GMAC/s vs 38 GMAC/s peak on the reference container), so the
// 8x8 and 16x16 kernels spell out the schedule: one C row of accumulators
// lives in registers, each k step broadcasts one A element and FMAs a
// streamed B row — the same ascending-k order as everywhere else.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EASZ_DCT_X86_DISPATCH 1
#include <immintrin.h>

__attribute__((target("avx2,fma"), always_inline)) inline void mm8_avx2(
    const float* a, const float* b, float* c) {
  // All eight B rows fit in registers for the whole product.
  __m256 br[8];
  for (int k = 0; k < 8; ++k) br[k] = _mm256_loadu_ps(b + k * 8);
  for (int i = 0; i < 8; ++i) {
    __m256 acc = _mm256_setzero_ps();
    for (int k = 0; k < 8; ++k) {
      acc = _mm256_fmadd_ps(_mm256_broadcast_ss(a + i * 8 + k), br[k], acc);
    }
    _mm256_storeu_ps(c + i * 8, acc);
  }
}

__attribute__((target("avx2,fma"), always_inline)) inline void mm16_avx2(
    const float* a, const float* b, float* c) {
  for (int i = 0; i < 16; ++i) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (int k = 0; k < 16; ++k) {
      const __m256 av = _mm256_broadcast_ss(a + i * 16 + k);
      acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + k * 16), acc0);
      acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + k * 16 + 8), acc1);
    }
    _mm256_storeu_ps(c + i * 16, acc0);
    _mm256_storeu_ps(c + i * 16 + 8, acc1);
  }
}

template <int N>
__attribute__((target("avx2,fma"))) void dct_forward_avx2(
    float* block, const float* basis, const float* basis_t) {
  float tmp[N * N];
  if constexpr (N == 8) {
    mm8_avx2(block, basis_t, tmp);
    mm8_avx2(basis, tmp, block);
  } else {
    static_assert(N == 16);
    mm16_avx2(block, basis_t, tmp);
    mm16_avx2(basis, tmp, block);
  }
}
template <int N>
__attribute__((target("avx2,fma"))) void dct_inverse_avx2(
    float* block, const float* basis, const float* basis_t) {
  float tmp[N * N];
  if constexpr (N == 8) {
    mm8_avx2(basis_t, block, tmp);
    mm8_avx2(tmp, basis, block);
  } else {
    static_assert(N == 16);
    mm16_avx2(basis_t, block, tmp);
    mm16_avx2(tmp, basis, block);
  }
}
#endif

template <int N>
void dct_forward_base(float* block, const float* basis, const float* basis_t) {
  dct_forward_fixed<N>(block, basis, basis_t);
}
template <int N>
void dct_inverse_base(float* block, const float* basis, const float* basis_t) {
  dct_inverse_fixed<N>(block, basis, basis_t);
}

bool use_avx2() {
#ifdef EASZ_DCT_X86_DISPATCH
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

template <int N>
void dct_forward_hot(float* block, const float* basis, const float* basis_t) {
#ifdef EASZ_DCT_X86_DISPATCH
  if (use_avx2()) {
    dct_forward_avx2<N>(block, basis, basis_t);
    return;
  }
#endif
  dct_forward_base<N>(block, basis, basis_t);
}

template <int N>
void dct_inverse_hot(float* block, const float* basis, const float* basis_t) {
#ifdef EASZ_DCT_X86_DISPATCH
  if (use_avx2()) {
    dct_inverse_avx2<N>(block, basis, basis_t);
    return;
  }
#endif
  dct_inverse_base<N>(block, basis, basis_t);
}

// Generic sizes ride tensor::kern::gemm (parallel=false: a DCT block is far
// below the parallel threshold and the codecs call this from inside
// parallel_for tasks).
tensor::kern::GemmOpts serial_gemm() {
  tensor::kern::GemmOpts o;
  o.parallel = false;
  return o;
}

}  // namespace

Dct2d::Dct2d(int n) : n_(n) {
  if (n < 2 || n > kMaxN) throw std::invalid_argument("Dct2d: n out of range");
  basis_.resize(static_cast<std::size_t>(n) * n);
  basis_t_.resize(static_cast<std::size_t>(n) * n);
  const double pi = 3.14159265358979323846;
  for (int k = 0; k < n; ++k) {
    const double ck = k == 0 ? std::sqrt(1.0 / n) : std::sqrt(2.0 / n);
    for (int x = 0; x < n; ++x) {
      const auto v = static_cast<float>(
          ck * std::cos((2.0 * x + 1.0) * k * pi / (2.0 * n)));
      basis_[static_cast<std::size_t>(k) * n + x] = v;
      basis_t_[static_cast<std::size_t>(x) * n + k] = v;
    }
  }
}

void Dct2d::forward(float* block) const {
  const int n = n_;
  if (n == 8) {
    dct_forward_hot<8>(block, basis_.data(), basis_t_.data());
    return;
  }
  if (n == 16) {
    dct_forward_hot<16>(block, basis_.data(), basis_t_.data());
    return;
  }
  float tmp[kMaxN * kMaxN];
  const auto un = static_cast<std::size_t>(n);
  tensor::kern::gemm(block, un, basis_t_.data(), un, tmp, un, n, n, n,
                     serial_gemm());
  tensor::kern::gemm(basis_.data(), un, tmp, un, block, un, n, n, n,
                     serial_gemm());
}

void Dct2d::inverse(float* block) const {
  const int n = n_;
  if (n == 8) {
    dct_inverse_hot<8>(block, basis_.data(), basis_t_.data());
    return;
  }
  if (n == 16) {
    dct_inverse_hot<16>(block, basis_.data(), basis_t_.data());
    return;
  }
  float tmp[kMaxN * kMaxN];
  const auto un = static_cast<std::size_t>(n);
  tensor::kern::gemm(basis_t_.data(), un, block, un, tmp, un, n, n, n,
                     serial_gemm());
  tensor::kern::gemm(tmp, un, basis_.data(), un, block, un, n, n, n,
                     serial_gemm());
}

}  // namespace easz::codec
