#include "codec/dct.hpp"

#include <cmath>
#include <stdexcept>

namespace easz::codec {

Dct2d::Dct2d(int n) : n_(n) {
  if (n < 2 || n > 64) throw std::invalid_argument("Dct2d: n out of range");
  basis_.resize(static_cast<std::size_t>(n) * n);
  const double pi = 3.14159265358979323846;
  for (int k = 0; k < n; ++k) {
    const double ck = k == 0 ? std::sqrt(1.0 / n) : std::sqrt(2.0 / n);
    for (int x = 0; x < n; ++x) {
      basis_[static_cast<std::size_t>(k) * n + x] = static_cast<float>(
          ck * std::cos((2.0 * x + 1.0) * k * pi / (2.0 * n)));
    }
  }
  scratch_.resize(static_cast<std::size_t>(n) * n);
}

void Dct2d::forward(float* block) const {
  const int n = n_;
  // Rows: scratch = block * B^T
  for (int y = 0; y < n; ++y) {
    for (int k = 0; k < n; ++k) {
      float acc = 0.0F;
      for (int x = 0; x < n; ++x) {
        acc += block[y * n + x] * basis_[static_cast<std::size_t>(k) * n + x];
      }
      scratch_[static_cast<std::size_t>(y) * n + k] = acc;
    }
  }
  // Columns: block = B * scratch
  for (int k = 0; k < n; ++k) {
    for (int x = 0; x < n; ++x) {
      float acc = 0.0F;
      for (int y = 0; y < n; ++y) {
        acc += basis_[static_cast<std::size_t>(k) * n + y] *
               scratch_[static_cast<std::size_t>(y) * n + x];
      }
      block[k * n + x] = acc;
    }
  }
}

void Dct2d::inverse(float* block) const {
  const int n = n_;
  // Columns first: scratch = B^T * block
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      float acc = 0.0F;
      for (int k = 0; k < n; ++k) {
        acc += basis_[static_cast<std::size_t>(k) * n + y] * block[k * n + x];
      }
      scratch_[static_cast<std::size_t>(y) * n + x] = acc;
    }
  }
  // Rows: block = scratch * B
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      float acc = 0.0F;
      for (int k = 0; k < n; ++k) {
        acc += scratch_[static_cast<std::size_t>(y) * n + k] *
               basis_[static_cast<std::size_t>(k) * n + x];
      }
      block[y * n + x] = acc;
    }
  }
}

}  // namespace easz::codec
