#include "codec/jpeg_like.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "codec/dct.hpp"
#include "entropy/bitstream.hpp"
#include "entropy/huffman.hpp"
#include "image/color.hpp"
#include "obs/registry.hpp"
#include "tensor/kernels.hpp"

namespace easz::codec {
namespace {

constexpr int kBlock = 8;
constexpr int kBlockArea = kBlock * kBlock;

// Per-stage task counts for the block-parallel passes (DESIGN.md §8.2):
// blocks pushed through the forward DCT+quantise pass and the inverse
// dequantise+IDCT pass, regardless of whether they ran pooled or inline.
struct JpegMetrics {
  obs::Counter& encode_blocks =
      obs::Registry::global().counter("codec.jpeg.encode_blocks");
  obs::Counter& decode_blocks =
      obs::Registry::global().counter("codec.jpeg.decode_blocks");
};

JpegMetrics& jpeg_metrics() {
  static JpegMetrics m;
  return m;
}

// ITU-T T.81 Annex K reference quantisation tables.
constexpr std::array<int, kBlockArea> kLumaQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<int, kBlockArea> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99,  //
    18, 21, 26, 66, 99, 99, 99, 99,  //
    24, 26, 56, 99, 99, 99, 99, 99,  //
    47, 66, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99};

// Standard zigzag order for an 8x8 block.
constexpr std::array<int, kBlockArea> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// JPEG quality scaling (IJG convention).
std::array<int, kBlockArea> scaled_quant(const std::array<int, kBlockArea>& base,
                                         int quality) {
  const int q = std::clamp(quality, 1, 100);
  const int scale = q < 50 ? 5000 / q : 200 - 2 * q;
  std::array<int, kBlockArea> out{};
  for (int i = 0; i < kBlockArea; ++i) {
    out[i] = std::clamp((base[i] * scale + 50) / 100, 1, 255);
  }
  return out;
}

// Magnitude category (number of bits) for a coefficient value, as in JPEG.
int bit_size(int value) {
  int v = std::abs(value);
  int size = 0;
  while (v > 0) {
    v >>= 1;
    ++size;
  }
  return size;
}

// (run, size) alphabet: run in [0,15], size in [0,11] -> 16*12 symbols, plus
// EOB = (0,0) and ZRL = (15,0) are natural members.
constexpr int kAcAlphabet = 16 * 12;
constexpr int kDcAlphabet = 12;

struct PlaneSymbols {
  std::vector<int> dc_symbols;        // size categories
  std::vector<int> dc_amplitudes;     // raw values (sign-coded)
  std::vector<int> ac_symbols;        // run*12 + size
  std::vector<int> ac_amplitudes;
  int blocks_x = 0;
  int blocks_y = 0;
};

// Quantises one plane to (run,size)/amplitude symbols. The per-block work
// (level shift, forward DCT, quantise) has no cross-block dependency, so it
// runs block-parallel over the tensor::kern pool into a per-block
// coefficient buffer; the serial pass that follows (DC DPCM + run/size
// symbolisation) is a cheap walk over the quantised levels, and emitting it
// in raster block order keeps the symbol streams byte-identical to a
// sequential encode at any thread count.
PlaneSymbols encode_plane(const image::Image& plane,
                          const std::array<int, kBlockArea>& quant,
                          const Dct2d& dct) {
  PlaneSymbols out;
  out.blocks_x = (plane.width() + kBlock - 1) / kBlock;
  out.blocks_y = (plane.height() + kBlock - 1) / kBlock;
  const std::size_t block_count =
      static_cast<std::size_t>(out.blocks_x) * out.blocks_y;

  std::vector<std::array<int, kBlockArea>> coeffs(block_count);
  const int w = plane.width();
  const int h = plane.height();
  const float* sp = plane.plane(0);
  const auto quantise_block = [&](int bi) {
    const int by = bi / out.blocks_x;
    const int bx = bi % out.blocks_x;
    std::array<float, kBlockArea> block;
    for (int y = 0; y < kBlock; ++y) {
      const float* row =
          sp + static_cast<std::size_t>(std::min(by * kBlock + y, h - 1)) * w;
      for (int x = 0; x < kBlock; ++x) {
        // Level shift to [-128, 127] like JPEG.
        block[y * kBlock + x] =
            row[std::min(bx * kBlock + x, w - 1)] * 255.0F - 128.0F;
      }
    }
    dct.forward(block.data());
    // The orthonormal DCT already yields JPEG's coefficient scale
    // (DC in [-1024, 1016] for level-shifted 8-bit input).
    auto& q = coeffs[static_cast<std::size_t>(bi)];
    for (int i = 0; i < kBlockArea; ++i) {
      const float coeff = block[i] / static_cast<float>(quant[i]);
      q[i] = static_cast<int>(std::lround(coeff));
    }
  };
  jpeg_metrics().encode_blocks.add(block_count);
  if (tensor::kern::threads() > 1 && block_count >= 32) {
    tensor::kern::parallel_for(static_cast<int>(block_count), quantise_block);
  } else {
    for (std::size_t bi = 0; bi < block_count; ++bi) {
      quantise_block(static_cast<int>(bi));
    }
  }

  int prev_dc = 0;
  for (std::size_t bi = 0; bi < block_count; ++bi) {
    const auto& q = coeffs[bi];
    const int dc_diff = q[0] - prev_dc;
    prev_dc = q[0];
    out.dc_symbols.push_back(bit_size(dc_diff));
    out.dc_amplitudes.push_back(dc_diff);

    int run = 0;
    for (int i = 1; i < kBlockArea; ++i) {
      const int v = q[kZigzag[i]];
      if (v == 0) {
        ++run;
        continue;
      }
      while (run > 15) {
        out.ac_symbols.push_back(15 * 12 + 0);  // ZRL
        out.ac_amplitudes.push_back(0);
        run -= 16;
      }
      const int size = bit_size(v);
      out.ac_symbols.push_back(run * 12 + size);
      out.ac_amplitudes.push_back(v);
      run = 0;
    }
    out.ac_symbols.push_back(0);  // EOB = (0,0)
    out.ac_amplitudes.push_back(0);
  }
  return out;
}

void write_amplitude(entropy::BitWriter& bw, int value, int size) {
  if (size == 0) return;
  // JPEG convention: negative values stored as value - 1 in `size` bits.
  const int coded = value >= 0 ? value : value + (1 << size) - 1;
  bw.write_bits(static_cast<std::uint32_t>(coded), size);
}

int read_amplitude(entropy::BitReader& br, int size) {
  if (size == 0) return 0;
  const int coded = static_cast<int>(br.read_bits(size));
  if (coded < (1 << (size - 1))) return coded - (1 << size) + 1;
  return coded;
}

// Decodes one plane: the Huffman bitstream is inherently serial, so a first
// pass entropy-decodes every block's coefficients (resolving the DC DPCM
// chain) into a per-block buffer, and a second, block-parallel pass does the
// arithmetic-heavy dequantise + inverse DCT + pixel store. Output is
// identical at any thread count (blocks write disjoint pixels).
image::Image decode_plane(entropy::BitReader& br, int width, int height,
                          const std::array<int, kBlockArea>& quant,
                          const Dct2d& dct,
                          const entropy::HuffmanCode& dc_code,
                          const entropy::HuffmanCode& ac_code) {
  image::Image plane(width, height, 1);
  const int blocks_x = (width + kBlock - 1) / kBlock;
  const int blocks_y = (height + kBlock - 1) / kBlock;
  const std::size_t block_count =
      static_cast<std::size_t>(blocks_x) * blocks_y;

  std::vector<std::array<int, kBlockArea>> coeffs(block_count);
  int prev_dc = 0;
  for (std::size_t bi = 0; bi < block_count; ++bi) {
    auto& q = coeffs[bi];
    q.fill(0);
    const int dc_size = dc_code.decode_symbol(br);
    const int dc_diff = read_amplitude(br, dc_size);
    prev_dc += dc_diff;
    q[0] = prev_dc;

    // The encoder terminates every block with an EOB, even full ones, so
    // read until EOB unconditionally to stay in sync.
    int i = 1;
    for (;;) {
      const int sym = ac_code.decode_symbol(br);
      const int run = sym / 12;
      const int size = sym % 12;
      if (run == 0 && size == 0) break;  // EOB
      if (run == 15 && size == 0) {      // ZRL
        i += 16;
        continue;
      }
      i += run;
      if (i >= kBlockArea) throw std::runtime_error("jpeg: AC overrun");
      q[kZigzag[i]] = read_amplitude(br, size);
      ++i;
    }
  }

  float* pp = plane.plane(0);
  const auto reconstruct_block = [&](int bi) {
    const int by = bi / blocks_x;
    const int bx = bi % blocks_x;
    const auto& q = coeffs[static_cast<std::size_t>(bi)];
    std::array<float, kBlockArea> block;
    for (int k = 0; k < kBlockArea; ++k) {
      block[k] = static_cast<float>(q[k]) * static_cast<float>(quant[k]);
    }
    dct.inverse(block.data());
    const int ph = std::min(kBlock, height - by * kBlock);
    const int pw = std::min(kBlock, width - bx * kBlock);
    for (int y = 0; y < ph; ++y) {
      float* row = pp + static_cast<std::size_t>(by * kBlock + y) * width +
                   bx * kBlock;
      const float* bl = block.data() + y * kBlock;
      for (int x = 0; x < pw; ++x) {
        row[x] = std::clamp((bl[x] + 128.0F) / 255.0F, 0.0F, 1.0F);
      }
    }
  };
  jpeg_metrics().decode_blocks.add(block_count);
  if (tensor::kern::threads() > 1 && block_count >= 32) {
    tensor::kern::parallel_for(static_cast<int>(block_count),
                               reconstruct_block);
  } else {
    for (std::size_t bi = 0; bi < block_count; ++bi) {
      reconstruct_block(static_cast<int>(bi));
    }
  }
  return plane;
}

}  // namespace

JpegLikeCodec::JpegLikeCodec(int quality) : quality_(std::clamp(quality, 1, 100)) {}

void JpegLikeCodec::set_quality(int quality) {
  quality_ = std::clamp(quality, 1, 100);
}

Compressed JpegLikeCodec::encode(const image::Image& img) const {
  if (img.empty()) throw std::invalid_argument("jpeg: empty image");
  const bool color = img.channels() == 3;
  const image::Image ycbcr = color ? image::rgb_to_ycbcr(img) : img;

  const auto luma_q = scaled_quant(kLumaQuant, quality_);
  const auto chroma_q = scaled_quant(kChromaQuant, quality_);
  const Dct2d dct(kBlock);

  // Collect plane symbol streams: Y at full resolution, Cb/Cr at 4:2:0.
  std::vector<PlaneSymbols> planes;
  planes.push_back(encode_plane(ycbcr.channel(0), luma_q, dct));
  if (color) {
    planes.push_back(
        encode_plane(image::downsample2x(ycbcr.channel(1)), chroma_q, dct));
    planes.push_back(
        encode_plane(image::downsample2x(ycbcr.channel(2)), chroma_q, dct));
  }

  // Global Huffman tables over all planes (one DC + one AC table).
  std::vector<std::uint64_t> dc_freq(kDcAlphabet, 0);
  std::vector<std::uint64_t> ac_freq(kAcAlphabet, 0);
  for (const auto& p : planes) {
    for (const int s : p.dc_symbols) ++dc_freq[s];
    for (const int s : p.ac_symbols) ++ac_freq[s];
  }
  // Guarantee decodability of headers even for degenerate content.
  dc_freq[0] += 1;
  ac_freq[0] += 1;
  const auto dc_code = entropy::HuffmanCode::from_frequencies(dc_freq);
  const auto ac_code = entropy::HuffmanCode::from_frequencies(ac_freq);

  entropy::BitWriter bw;
  bw.write_bits(static_cast<std::uint32_t>(img.width()), 16);
  bw.write_bits(static_cast<std::uint32_t>(img.height()), 16);
  bw.write_bits(color ? 1U : 0U, 1);
  bw.write_bits(static_cast<std::uint32_t>(quality_), 7);
  dc_code.write_lengths(bw);
  ac_code.write_lengths(bw);

  for (const auto& p : planes) {
    for (std::size_t b = 0, ai = 0; b < p.dc_symbols.size(); ++b) {
      dc_code.encode_symbol(bw, p.dc_symbols[b]);
      write_amplitude(bw, p.dc_amplitudes[b], p.dc_symbols[b]);
      // Emit this block's AC symbols until (and including) its EOB.
      for (;;) {
        const int sym = p.ac_symbols[ai];
        const int amp = p.ac_amplitudes[ai];
        ++ai;
        ac_code.encode_symbol(bw, sym);
        write_amplitude(bw, amp, sym % 12);
        if (sym == 0) break;  // EOB terminates the block
      }
    }
  }

  Compressed out;
  out.bytes = bw.finish();
  out.width = img.width();
  out.height = img.height();
  out.channels = img.channels();
  return out;
}

image::Image JpegLikeCodec::decode(const Compressed& c) const {
  entropy::BitReader br(c.bytes);
  const int width = static_cast<int>(br.read_bits(16));
  const int height = static_cast<int>(br.read_bits(16));
  const bool color = br.read_bit();
  const int q = static_cast<int>(br.read_bits(7));

  const auto luma_q = scaled_quant(kLumaQuant, q);
  const auto chroma_q = scaled_quant(kChromaQuant, q);
  const Dct2d dct(kBlock);
  const auto dc_code = entropy::HuffmanCode::read_lengths(br, kDcAlphabet);
  const auto ac_code = entropy::HuffmanCode::read_lengths(br, kAcAlphabet);

  const image::Image y =
      decode_plane(br, width, height, luma_q, dct, dc_code, ac_code);
  if (!color) return y;

  const int cw = (width + 1) / 2;
  const int ch = (height + 1) / 2;
  const image::Image cb =
      decode_plane(br, cw, ch, chroma_q, dct, dc_code, ac_code);
  const image::Image cr =
      decode_plane(br, cw, ch, chroma_q, dct, dc_code, ac_code);

  image::Image ycbcr(width, height, 3);
  std::copy_n(y.plane(0), y.pixel_count(), ycbcr.plane(0));
  const image::Image cb_up = image::upsample2x(cb, width, height);
  const image::Image cr_up = image::upsample2x(cr, width, height);
  std::copy_n(cb_up.plane(0), cb_up.pixel_count(), ycbcr.plane(1));
  std::copy_n(cr_up.plane(0), cr_up.pixel_count(), ycbcr.plane(2));
  return image::ycbcr_to_rgb(ycbcr);
}

double JpegLikeCodec::encode_flops(int width, int height) const {
  // Per pixel: color convert (~10), DCT (2 * 8 muls per output sample * 2
  // passes ~ 32), quantise (~2), entropy (~5). ~50 flops/pixel * 1.5 for
  // chroma at 4:2:0.
  return 75.0 * width * height;
}

double JpegLikeCodec::decode_flops(int width, int height) const {
  return 75.0 * width * height;
}

}  // namespace easz::codec
