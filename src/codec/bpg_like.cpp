#include "codec/bpg_like.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "codec/dct.hpp"
#include "entropy/bitstream.hpp"
#include "entropy/rans.hpp"
#include "image/color.hpp"
#include "obs/registry.hpp"
#include "tensor/kernels.hpp"

namespace easz::codec {
namespace {

// Wavefront-scheduler task counts (DESIGN.md §8.2): blocks processed and
// anti-diagonal launches. blocks/wavefronts is the mean wavefront width —
// how much parallelism the intra dependency structure actually exposed.
struct BpgMetrics {
  obs::Counter& blocks = obs::Registry::global().counter("codec.bpg.blocks");
  obs::Counter& wavefronts =
      obs::Registry::global().counter("codec.bpg.wavefronts");
};

BpgMetrics& bpg_metrics() {
  static BpgMetrics m;
  return m;
}

constexpr int kLumaBlock = 16;
constexpr int kChromaBlock = 8;
constexpr int kMaxBlock = kLumaBlock;

// v2 container magic. v1 streams (no magic) start with the u32 LE image
// width, whose fourth byte is nonzero only for widths >= 2^24 — unencodable
// in practice — so the prefix is an unambiguous version sniff.
constexpr std::uint8_t kMagicV2[4] = {'E', 'Z', 'B', '2'};

enum class IntraMode : int {
  kDc = 0,
  kPlanar = 1,
  kHorizontal = 2,
  kVertical = 3,
  kDiagDown = 4,   // 45 deg, top-left to bottom-right
  kDiagUp = 5,     // 45 deg, bottom-left to top-right
  kCount = 6,
};

// Quantisation step from the quality knob: quality 1 -> very coarse,
// quality 100 -> near-lossless. Exponential like HEVC's QP-to-step mapping.
float quant_step(int quality) {
  const float qp = 51.0F * (1.0F - static_cast<float>(quality - 1) / 99.0F);
  return 0.15F * std::pow(2.0F, qp / 6.0F);
}

// Reference samples for a block at (x0, y0): decoded row above and column
// left (replicated at image borders; 0.5 when nothing is decoded yet).
struct RefSamples {
  std::array<float, kMaxBlock> top;   // x0..x0+n-1 at row y0-1
  std::array<float, kMaxBlock> left;  // y0..y0+n-1 at col x0-1
  float corner = 0.5F;
};

RefSamples gather_refs(const image::Image& decoded, int x0, int y0, int n) {
  RefSamples r;
  const int w = decoded.width();
  const int h = decoded.height();
  const bool has_top = y0 > 0;
  const bool has_left = x0 > 0;
  const float* plane = decoded.plane(0);
  if (has_top) {
    const float* row = plane + static_cast<std::size_t>(y0 - 1) * w;
    for (int x = 0; x < n; ++x) r.top[x] = row[std::min(x0 + x, w - 1)];
  } else {
    const float v = has_left ? plane[static_cast<std::size_t>(y0) * w + x0 - 1]
                             : 0.5F;
    for (int x = 0; x < n; ++x) r.top[x] = v;
  }
  if (has_left) {
    for (int y = 0; y < n; ++y) {
      r.left[y] =
          plane[static_cast<std::size_t>(std::min(y0 + y, h - 1)) * w + x0 - 1];
    }
  } else {
    const float v = has_top ? plane[static_cast<std::size_t>(y0 - 1) * w + x0]
                            : 0.5F;
    for (int y = 0; y < n; ++y) r.left[y] = v;
  }
  r.corner = (has_top && has_left)
                 ? plane[static_cast<std::size_t>(y0 - 1) * w + x0 - 1]
             : has_top  ? r.top[0]
             : has_left ? r.left[0]
                        : 0.5F;
  return r;
}

void predict(const RefSamples& r, IntraMode mode, int n, float* pred) {
  switch (mode) {
    case IntraMode::kDc: {
      float sum = 0.0F;
      for (int i = 0; i < n; ++i) sum += r.top[i] + r.left[i];
      const float dc = sum / static_cast<float>(2 * n);
      std::fill_n(pred, n * n, dc);
      break;
    }
    case IntraMode::kPlanar: {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const float h = (static_cast<float>(n - 1 - x) * r.left[y] +
                           static_cast<float>(x + 1) * r.top[n - 1]);
          const float v = (static_cast<float>(n - 1 - y) * r.top[x] +
                           static_cast<float>(y + 1) * r.left[n - 1]);
          pred[y * n + x] = (h + v) / static_cast<float>(2 * n);
        }
      }
      break;
    }
    case IntraMode::kHorizontal:
      for (int y = 0; y < n; ++y) std::fill_n(pred + y * n, n, r.left[y]);
      break;
    case IntraMode::kVertical:
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) pred[y * n + x] = r.top[x];
      }
      break;
    case IntraMode::kDiagDown:
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const int d = x - y;
          pred[y * n + x] = d > 0   ? r.top[d - 1]
                            : d < 0 ? r.left[-d - 1]
                                    : r.corner;
        }
      }
      break;
    case IntraMode::kDiagUp:
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const int s = x + y + 1;
          pred[y * n + x] = s < n ? r.top[s] : r.left[std::min(2 * n - 1 - s, n - 1)];
        }
      }
      break;
    default:
      throw std::logic_error("bpg: bad intra mode");
  }
}

// Zigzag order for an n x n block, generated on the fly.
std::vector<int> zigzag_order(int n) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n) * n);
  for (int s = 0; s < 2 * n - 1; ++s) {
    if (s % 2 == 0) {
      for (int y = std::min(s, n - 1); y >= std::max(0, s - n + 1); --y) {
        order.push_back(y * n + (s - y));
      }
    } else {
      for (int x = std::min(s, n - 1); x >= std::max(0, s - n + 1); --x) {
        order.push_back((s - x) * n + x);
      }
    }
  }
  return order;
}

// Symbol mapping for quantised coefficients:
//   0..192   level in [-96, 96] (biased by 96)
//   193..252 run of 1..60 zero coefficients
//   253      EOB: all remaining zigzag coefficients in the block are zero
//   254      escape: level outside [-96, 96], raw value in a side channel
// Zero runs and the EOB token carry most of the compression on smooth 16x16
// blocks, mirroring HEVC's significance/last-position coding.
constexpr int kCoeffAlphabet = 255;
constexpr int kLevelBias = 96;
constexpr int kZeroRunBase = 193;
constexpr int kMaxZeroRun = 60;
constexpr int kEob = 253;
constexpr int kEscape = 254;

struct PlaneCode {
  std::vector<int> symbols;        // coefficient symbols, zigzag order
  std::vector<int> modes;          // one intra mode per block
  std::vector<std::int32_t> escapes;  // raw values for escape symbols
};

/// Runs fn(bx, by) over every block so that each block executes strictly
/// after its N / W / NW neighbours — the only blocks intra prediction reads
/// from. Raster order when serial; anti-diagonal wavefronts on the
/// tensor::kern pool otherwise (every block on one anti-diagonal is
/// independent, and diagonal d completes before d+1 starts). Output is
/// identical either way: per-block work does not depend on scheduling.
/// fn must not throw (parallel_for contract) — validate inputs first.
template <typename Fn>
void for_each_block_wavefront(int bx_count, int by_count, Fn&& fn) {
  bpg_metrics().blocks.add(
      static_cast<std::uint64_t>(bx_count) * static_cast<std::uint64_t>(by_count));
  const bool parallel = tensor::kern::threads() > 1 &&
                        bx_count > 1 && by_count > 1 &&
                        bx_count * by_count >= 16;
  if (!parallel) {
    for (int by = 0; by < by_count; ++by) {
      for (int bx = 0; bx < bx_count; ++bx) fn(bx, by);
    }
    return;
  }
  bpg_metrics().wavefronts.add(
      static_cast<std::uint64_t>(bx_count + by_count - 1));
  for (int d = 0; d < bx_count + by_count - 1; ++d) {
    const int by_lo = std::max(0, d - bx_count + 1);
    const int by_hi = std::min(d, by_count - 1);
    tensor::kern::parallel_for(by_hi - by_lo + 1, [&](int i) {
      const int by = by_lo + i;
      fn(d - by, by);
    });
  }
}

// Per-block encoder output, concatenated in raster block order afterwards so
// the symbol stream is byte-identical to a sequential encode.
struct BlockCode {
  std::vector<int> symbols;
  std::vector<std::int32_t> escapes;
  int mode = 0;
};

// Encodes one plane with intra prediction against its own decoded state,
// mirroring what the decoder will do. Blocks run wavefront-parallel; the
// symbol streams are stitched in block order afterwards.
PlaneCode code_plane(const image::Image& plane, int block, float step) {
  const int w = plane.width();
  const int h = plane.height();
  const int bx_count = (w + block - 1) / block;
  const int by_count = (h + block - 1) / block;
  const Dct2d dct(block);
  const std::vector<int> zig = zigzag_order(block);

  image::Image decoded(w, h, 1);
  std::vector<BlockCode> blocks(static_cast<std::size_t>(bx_count) * by_count);

  for_each_block_wavefront(bx_count, by_count, [&](int bx, int by) {
    const int x0 = bx * block;
    const int y0 = by * block;
    BlockCode& out = blocks[static_cast<std::size_t>(by) * bx_count + bx];
    float src[kMaxBlock * kMaxBlock];
    float pred[kMaxBlock * kMaxBlock];
    float resid[kMaxBlock * kMaxBlock];

    // Source block once, border-replicated — the mode search below then
    // runs over flat arrays instead of per-pixel clamped accessors.
    {
      const float* sp = plane.plane(0);
      for (int y = 0; y < block; ++y) {
        const float* row =
            sp + static_cast<std::size_t>(std::min(y0 + y, h - 1)) * w;
        for (int x = 0; x < block; ++x) {
          src[y * block + x] = row[std::min(x0 + x, w - 1)];
        }
      }
    }

    const RefSamples refs = gather_refs(decoded, x0, y0, block);

    // Mode decision: minimum residual energy (cheap SAD-style search).
    int best_mode = 0;
    float best_cost = std::numeric_limits<float>::max();
    for (int m = 0; m < static_cast<int>(IntraMode::kCount); ++m) {
      predict(refs, static_cast<IntraMode>(m), block, pred);
      float cost = 0.0F;
      for (int i = 0; i < block * block; ++i) {
        const float v = src[i] - pred[i];
        cost += v * v;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_mode = m;
      }
    }
    out.mode = best_mode;
    predict(refs, static_cast<IntraMode>(best_mode), block, pred);

    for (int i = 0; i < block * block; ++i) {
      resid[i] = (src[i] - pred[i]) * 255.0F;
    }
    dct.forward(resid);

    // Quantise, emit symbols up to the last nonzero (EOB-terminated),
    // dequantise into the reconstruction.
    std::array<int, kMaxBlock * kMaxBlock> levels;
    int last_nonzero = -1;
    for (std::size_t zi = 0; zi < zig.size(); ++zi) {
      const int idx = zig[zi];
      // Dead-zone quantiser (intra rounding offset ~1/3, as in HEVC):
      // coefficients below ~2/3 of a step collapse to zero, trading a tiny
      // MSE increase for a large rate saving.
      const float a = resid[idx] / step;
      const int q = a >= 0.0F ? static_cast<int>(a + 0.3333F)
                              : -static_cast<int>(-a + 0.3333F);
      levels[zi] = q;
      if (q != 0) last_nonzero = static_cast<int>(zi);
      resid[idx] = static_cast<float>(q) * step;
    }
    int zero_run = 0;
    for (int zi = 0; zi <= last_nonzero; ++zi) {
      const int q = levels[zi];
      if (q == 0) {
        ++zero_run;
        continue;
      }
      while (zero_run > 0) {
        const int chunk = std::min(zero_run, kMaxZeroRun);
        out.symbols.push_back(kZeroRunBase + chunk - 1);
        zero_run -= chunk;
      }
      if (q >= -kLevelBias && q <= kLevelBias) {
        out.symbols.push_back(q + kLevelBias);
      } else {
        out.symbols.push_back(kEscape);
        out.escapes.push_back(q);
      }
    }
    out.symbols.push_back(kEob);

    dct.inverse(resid);
    const int ph = std::min(block, h - y0);
    const int pw = std::min(block, w - x0);
    float* dp = decoded.plane(0);
    for (int y = 0; y < ph; ++y) {
      float* row = dp + static_cast<std::size_t>(y0 + y) * w + x0;
      const float* pr = pred + y * block;
      const float* rs = resid + y * block;
      for (int x = 0; x < pw; ++x) {
        row[x] = std::clamp(pr[x] + rs[x] * (1.0F / 255.0F), 0.0F, 1.0F);
      }
    }
  });

  PlaneCode out;
  out.modes.reserve(blocks.size());
  for (const BlockCode& b : blocks) {
    out.modes.push_back(b.mode);
    out.symbols.insert(out.symbols.end(), b.symbols.begin(), b.symbols.end());
    out.escapes.insert(out.escapes.end(), b.escapes.begin(), b.escapes.end());
  }
  return out;
}

// Validated per-block views into a plane's symbol/escape streams, produced
// by one serial scan so the wavefront reconstruction below is throw-free.
struct BlockSpan {
  std::uint32_t sym_begin = 0;
  std::uint32_t sym_end = 0;    // one past this block's EOB
  std::uint32_t esc_begin = 0;
};

std::vector<BlockSpan> scan_block_spans(const int* symbols,
                                        std::size_t symbol_count,
                                        std::size_t escape_count,
                                        std::size_t block_count,
                                        std::size_t coeffs_per_block) {
  std::vector<BlockSpan> spans(block_count);
  std::size_t pos = 0;
  std::size_t esc = 0;
  for (std::size_t b = 0; b < block_count; ++b) {
    spans[b].sym_begin = static_cast<std::uint32_t>(pos);
    spans[b].esc_begin = static_cast<std::uint32_t>(esc);
    std::size_t zi = 0;
    for (;;) {
      if (pos >= symbol_count) {
        throw std::runtime_error("bpg: symbol stream underrun");
      }
      const int sym = symbols[pos++];
      if (sym == kEob) break;
      if (sym >= kZeroRunBase && sym < kZeroRunBase + kMaxZeroRun) {
        zi += static_cast<std::size_t>(sym - kZeroRunBase + 1);
        continue;
      }
      if (zi >= coeffs_per_block) {
        throw std::runtime_error("bpg: coeff overrun");
      }
      ++zi;
      if (sym == kEscape) {
        if (esc >= escape_count) {
          throw std::runtime_error("bpg: escape stream underrun");
        }
        ++esc;
      }
    }
    spans[b].sym_end = static_cast<std::uint32_t>(pos);
  }
  return spans;
}

image::Image decode_plane(const int* symbols, std::size_t symbol_count,
                          const std::vector<int>& modes,
                          const std::vector<std::int32_t>& escapes, int w,
                          int h, int block, float step) {
  const int bx_count = (w + block - 1) / block;
  const int by_count = (h + block - 1) / block;
  const std::size_t block_count =
      static_cast<std::size_t>(bx_count) * by_count;
  if (modes.size() != block_count) {
    throw std::runtime_error("bpg: mode count mismatch");
  }
  for (const int m : modes) {
    if (m < 0 || m >= static_cast<int>(IntraMode::kCount)) {
      throw std::runtime_error("bpg: bad intra mode");
    }
  }
  const Dct2d dct(block);
  const std::vector<int> zig = zigzag_order(block);

  // One serial scan splits the plane's streams into per-block spans and
  // validates every token, so the wavefront reconstruction cannot throw.
  const std::vector<BlockSpan> spans =
      scan_block_spans(symbols, symbol_count, escapes.size(), block_count,
                       zig.size());

  image::Image decoded(w, h, 1);
  for_each_block_wavefront(bx_count, by_count, [&](int bx, int by) {
    const int x0 = bx * block;
    const int y0 = by * block;
    const std::size_t bi = static_cast<std::size_t>(by) * bx_count + bx;
    const BlockSpan& span = spans[bi];

    float pred[kMaxBlock * kMaxBlock];
    float resid[kMaxBlock * kMaxBlock];
    const RefSamples refs = gather_refs(decoded, x0, y0, block);
    predict(refs, static_cast<IntraMode>(modes[bi]), block, pred);

    std::fill_n(resid, block * block, 0.0F);
    std::size_t esc = span.esc_begin;
    std::size_t zi = 0;
    for (std::uint32_t p = span.sym_begin;;) {
      const int sym = symbols[p++];
      if (sym == kEob) break;
      if (sym >= kZeroRunBase && sym < kZeroRunBase + kMaxZeroRun) {
        zi += static_cast<std::size_t>(sym - kZeroRunBase + 1);
        continue;
      }
      const int q = sym == kEscape ? escapes[esc++] : sym - kLevelBias;
      resid[zig[zi++]] = static_cast<float>(q) * step;
    }
    dct.inverse(resid);

    const int ph = std::min(block, h - y0);
    const int pw = std::min(block, w - x0);
    float* dp = decoded.plane(0);
    for (int y = 0; y < ph; ++y) {
      float* row = dp + static_cast<std::size_t>(y0 + y) * w + x0;
      const float* pr = pred + y * block;
      const float* rs = resid + y * block;
      for (int x = 0; x < pw; ++x) {
        row[x] = std::clamp(pr[x] + rs[x] * (1.0F / 255.0F), 0.0F, 1.0F);
      }
    }
  });
  return decoded;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

std::uint32_t read_u32(const std::uint8_t* data, std::size_t size,
                       std::size_t& pos) {
  if (pos + 4 > size) throw std::out_of_range("bpg: truncated header");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
  }
  return v;
}

}  // namespace

BpgLikeCodec::BpgLikeCodec(int quality) : quality_(std::clamp(quality, 1, 100)) {}

void BpgLikeCodec::set_quality(int quality) {
  quality_ = std::clamp(quality, 1, 100);
}

Compressed BpgLikeCodec::encode(const image::Image& img) const {
  if (img.empty()) throw std::invalid_argument("bpg: empty image");
  const bool color = img.channels() == 3;
  const image::Image ycbcr = color ? image::rgb_to_ycbcr(img) : img;
  const float step = quant_step(quality_);

  std::vector<PlaneCode> planes;
  planes.push_back(code_plane(ycbcr.channel(0), kLumaBlock, step));
  if (color) {
    planes.push_back(code_plane(image::downsample2x(ycbcr.channel(1)),
                                kChromaBlock, step * 1.2F));
    planes.push_back(code_plane(image::downsample2x(ycbcr.channel(2)),
                                kChromaBlock, step * 1.2F));
  }

  // v2 container: magic, header, per-plane side info (modes, escapes,
  // symbol count), then ONE interleaved rANS stream over the concatenated
  // coefficient symbols of all planes — a single shared frequency table
  // keeps the fixed overhead small at low rates.
  std::vector<std::uint8_t> bytes(kMagicV2, kMagicV2 + 4);
  append_u32(bytes, static_cast<std::uint32_t>(img.width()));
  append_u32(bytes, static_cast<std::uint32_t>(img.height()));
  bytes.push_back(color ? 1 : 0);
  bytes.push_back(static_cast<std::uint8_t>(quality_));

  std::vector<int> all_symbols;
  for (const auto& p : planes) {
    append_u32(bytes, static_cast<std::uint32_t>(p.modes.size()));
    // Modes packed 3 bits each (6 modes fit).
    {
      entropy::BitWriter mode_bits;
      for (const int m : p.modes) {
        mode_bits.write_bits(static_cast<std::uint32_t>(m), 3);
      }
      const auto packed = mode_bits.finish();
      bytes.insert(bytes.end(), packed.begin(), packed.end());
    }
    append_u32(bytes, static_cast<std::uint32_t>(p.escapes.size()));
    for (const std::int32_t e : p.escapes) {
      append_u32(bytes, static_cast<std::uint32_t>(e));
    }
    append_u32(bytes, static_cast<std::uint32_t>(p.symbols.size()));
    all_symbols.insert(all_symbols.end(), p.symbols.begin(), p.symbols.end());
  }
  const std::vector<std::uint8_t> payload =
      entropy::rans_encode_interleaved_with_table(all_symbols, kCoeffAlphabet);
  append_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  Compressed out;
  out.bytes = std::move(bytes);
  out.width = img.width();
  out.height = img.height();
  out.channels = img.channels();
  return out;
}

image::Image BpgLikeCodec::decode(const Compressed& c) const {
  const auto* data = c.bytes.data();
  const std::size_t size = c.bytes.size();
  // Version sniff: v2 containers start with the magic; v1 containers start
  // with the u32 width whose high byte is always zero for encodable sizes.
  const bool v2 = size >= 4 && std::memcmp(data, kMagicV2, 4) == 0;
  std::size_t pos = v2 ? 4 : 0;

  const auto width_u = read_u32(data, size, pos);
  const auto height_u = read_u32(data, size, pos);
  // Geometry sanity BEFORE any count-driven allocation: every later header
  // count is cross-checked against block counts derived from it, so a
  // bit-flipped count cannot demand a multi-gigabyte resize (a corrupt
  // upload on a serve host must cost an exception, not an OOM spike).
  if (width_u == 0 || height_u == 0 || width_u > 65535 || height_u > 65535) {
    throw std::runtime_error("bpg: implausible geometry");
  }
  const int width = static_cast<int>(width_u);
  const int height = static_cast<int>(height_u);
  if (pos + 2 > size) throw std::out_of_range("bpg: truncated header");
  const bool color = data[pos++] != 0;
  const int q = data[pos++];
  const float step = quant_step(q);

  struct PlaneSideInfo {
    std::vector<int> modes;
    std::vector<std::int32_t> escapes;
    std::size_t symbol_count = 0;
  };
  const int plane_count = color ? 3 : 1;
  const auto blocks_of = [](int dim, int block) {
    return static_cast<std::size_t>((dim + block - 1) / block);
  };
  const int cw = (width + 1) / 2;
  const int ch = (height + 1) / 2;
  std::vector<PlaneSideInfo> sides(plane_count);
  std::size_t total_symbols = 0;
  for (int p = 0; p < plane_count; ++p) {
    PlaneSideInfo& side = sides[p];
    const int block = p == 0 ? kLumaBlock : kChromaBlock;
    const std::size_t expected_blocks =
        p == 0 ? blocks_of(width, block) * blocks_of(height, block)
               : blocks_of(cw, block) * blocks_of(ch, block);
    const auto mode_count = read_u32(data, size, pos);
    if (mode_count != expected_blocks) {
      throw std::runtime_error("bpg: mode count does not match geometry");
    }
    side.modes.resize(mode_count);
    {
      const std::size_t packed_len =
          (static_cast<std::size_t>(mode_count) * 3 + 7) / 8;
      if (pos + packed_len > size) {
        throw std::out_of_range("bpg: truncated modes");
      }
      entropy::BitReader mode_bits(data + pos, packed_len);
      for (auto& m : side.modes) m = static_cast<int>(mode_bits.read_bits(3));
      pos += packed_len;
    }
    const auto escape_count = read_u32(data, size, pos);
    if (pos + static_cast<std::size_t>(escape_count) * 4 > size) {
      throw std::out_of_range("bpg: truncated escapes");
    }
    side.escapes.resize(escape_count);
    for (auto& e : side.escapes) {
      e = static_cast<std::int32_t>(read_u32(data, size, pos));
    }
    side.symbol_count = read_u32(data, size, pos);
    // Worst-case stream for a block: every coefficient a level symbol plus
    // interleaved maximal runs, then EOB — bounded by 2*n^2 + 1.
    const std::size_t coeffs = static_cast<std::size_t>(block) * block;
    if (side.symbol_count > expected_blocks * (2 * coeffs + 1)) {
      throw std::runtime_error("bpg: implausible symbol count");
    }
    total_symbols += side.symbol_count;
  }
  const auto payload_size = read_u32(data, size, pos);
  if (pos + payload_size > size) {
    throw std::out_of_range("bpg: truncated payload");
  }
  // v1 payloads decode through the scalar single-state path — bit-exact
  // with every stream ever written; v2 payloads ride the interleaved lanes.
  const std::vector<int> all_symbols =
      v2 ? entropy::rans_decode_interleaved_with_table(data + pos, payload_size,
                                                       total_symbols)
         : entropy::rans_decode_with_table(data + pos, payload_size,
                                           total_symbols);
  pos += payload_size;

  std::size_t sym_offset = 0;
  const auto read_plane = [&](const PlaneSideInfo& side, int w, int h,
                              int block, float plane_step) -> image::Image {
    const int* sym = all_symbols.data() + sym_offset;
    sym_offset += side.symbol_count;
    return decode_plane(sym, side.symbol_count, side.modes, side.escapes, w, h,
                        block, plane_step);
  };

  const image::Image y = read_plane(sides[0], width, height, kLumaBlock, step);
  if (!color) return y;

  const image::Image cb = read_plane(sides[1], cw, ch, kChromaBlock, step * 1.2F);
  const image::Image cr = read_plane(sides[2], cw, ch, kChromaBlock, step * 1.2F);

  image::Image ycbcr(width, height, 3);
  std::copy_n(y.plane(0), y.pixel_count(), ycbcr.plane(0));
  const image::Image cb_up = image::upsample2x(cb, width, height);
  const image::Image cr_up = image::upsample2x(cr, width, height);
  std::copy_n(cb_up.plane(0), cb_up.pixel_count(), ycbcr.plane(1));
  std::copy_n(cr_up.plane(0), cr_up.pixel_count(), ycbcr.plane(2));
  return image::ycbcr_to_rgb(ycbcr);
}

double BpgLikeCodec::encode_flops(int width, int height) const {
  // Mode search over 6 predictors plus a 16x16 DCT per block: ~40x the
  // arithmetic of the JPEG path per pixel, matching BPG's slower encode.
  return 400.0 * width * height;
}

double BpgLikeCodec::decode_flops(int width, int height) const {
  return 150.0 * width * height;
}

}  // namespace easz::codec
