#include "codec/bpg_like.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "codec/dct.hpp"
#include "entropy/bitstream.hpp"
#include "entropy/rans.hpp"
#include "image/color.hpp"

namespace easz::codec {
namespace {

constexpr int kLumaBlock = 16;
constexpr int kChromaBlock = 8;

enum class IntraMode : int {
  kDc = 0,
  kPlanar = 1,
  kHorizontal = 2,
  kVertical = 3,
  kDiagDown = 4,   // 45 deg, top-left to bottom-right
  kDiagUp = 5,     // 45 deg, bottom-left to top-right
  kCount = 6,
};

// Quantisation step from the quality knob: quality 1 -> very coarse,
// quality 100 -> near-lossless. Exponential like HEVC's QP-to-step mapping.
float quant_step(int quality) {
  const float qp = 51.0F * (1.0F - static_cast<float>(quality - 1) / 99.0F);
  return 0.15F * std::pow(2.0F, qp / 6.0F);
}

// Reference samples for a block at (x0, y0): decoded row above and column
// left (replicated at image borders; 0.5 when nothing is decoded yet).
struct RefSamples {
  std::vector<float> top;   // size n (x0..x0+n-1 at row y0-1)
  std::vector<float> left;  // size n (y0..y0+n-1 at col x0-1)
  float corner = 0.5F;
};

RefSamples gather_refs(const image::Image& decoded, int x0, int y0, int n) {
  RefSamples r;
  r.top.resize(n);
  r.left.resize(n);
  const bool has_top = y0 > 0;
  const bool has_left = x0 > 0;
  for (int x = 0; x < n; ++x) {
    r.top[x] = has_top
                   ? decoded.at_clamped(0, y0 - 1, std::min(x0 + x, decoded.width() - 1))
                   : (has_left ? decoded.at_clamped(0, y0, x0 - 1) : 0.5F);
  }
  for (int y = 0; y < n; ++y) {
    r.left[y] = has_left
                    ? decoded.at_clamped(0, std::min(y0 + y, decoded.height() - 1), x0 - 1)
                    : (has_top ? decoded.at_clamped(0, y0 - 1, x0) : 0.5F);
  }
  r.corner = (has_top && has_left) ? decoded.at(0, y0 - 1, x0 - 1)
             : has_top             ? r.top[0]
             : has_left            ? r.left[0]
                                   : 0.5F;
  return r;
}

void predict(const RefSamples& r, IntraMode mode, int n, float* pred) {
  switch (mode) {
    case IntraMode::kDc: {
      float sum = 0.0F;
      for (int i = 0; i < n; ++i) sum += r.top[i] + r.left[i];
      const float dc = sum / static_cast<float>(2 * n);
      std::fill_n(pred, n * n, dc);
      break;
    }
    case IntraMode::kPlanar: {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const float h = (static_cast<float>(n - 1 - x) * r.left[y] +
                           static_cast<float>(x + 1) * r.top[n - 1]);
          const float v = (static_cast<float>(n - 1 - y) * r.top[x] +
                           static_cast<float>(y + 1) * r.left[n - 1]);
          pred[y * n + x] = (h + v) / static_cast<float>(2 * n);
        }
      }
      break;
    }
    case IntraMode::kHorizontal:
      for (int y = 0; y < n; ++y) std::fill_n(pred + y * n, n, r.left[y]);
      break;
    case IntraMode::kVertical:
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) pred[y * n + x] = r.top[x];
      }
      break;
    case IntraMode::kDiagDown:
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const int d = x - y;
          pred[y * n + x] = d > 0   ? r.top[d - 1]
                            : d < 0 ? r.left[-d - 1]
                                    : r.corner;
        }
      }
      break;
    case IntraMode::kDiagUp:
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const int s = x + y + 1;
          pred[y * n + x] = s < n ? r.top[s] : r.left[std::min(2 * n - 1 - s, n - 1)];
        }
      }
      break;
    default:
      throw std::logic_error("bpg: bad intra mode");
  }
}

// Zigzag order for an n x n block, generated on the fly.
std::vector<int> zigzag_order(int n) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n) * n);
  for (int s = 0; s < 2 * n - 1; ++s) {
    if (s % 2 == 0) {
      for (int y = std::min(s, n - 1); y >= std::max(0, s - n + 1); --y) {
        order.push_back(y * n + (s - y));
      }
    } else {
      for (int x = std::min(s, n - 1); x >= std::max(0, s - n + 1); --x) {
        order.push_back((s - x) * n + x);
      }
    }
  }
  return order;
}

// Symbol mapping for quantised coefficients:
//   0..192   level in [-96, 96] (biased by 96)
//   193..252 run of 1..60 zero coefficients
//   253      EOB: all remaining zigzag coefficients in the block are zero
//   254      escape: level outside [-96, 96], raw value in a side channel
// Zero runs and the EOB token carry most of the compression on smooth 16x16
// blocks, mirroring HEVC's significance/last-position coding.
constexpr int kCoeffAlphabet = 255;
constexpr int kLevelBias = 96;
constexpr int kZeroRunBase = 193;
constexpr int kMaxZeroRun = 60;
constexpr int kEob = 253;
constexpr int kEscape = 254;

struct PlaneCode {
  std::vector<int> symbols;        // coefficient symbols, zigzag order
  std::vector<int> modes;          // one intra mode per block
  std::vector<std::int32_t> escapes;  // raw values for escape symbols
};

// Encodes one plane with intra prediction against its own decoded state,
// mirroring what the decoder will do. Returns symbols and writes the decoded
// plane (which the caller uses for distortion checks if desired).
PlaneCode code_plane(const image::Image& plane, int block, float step,
                     image::Image* decoded_out) {
  const int w = plane.width();
  const int h = plane.height();
  const int bx_count = (w + block - 1) / block;
  const int by_count = (h + block - 1) / block;
  const Dct2d dct(block);
  const std::vector<int> zig = zigzag_order(block);

  image::Image decoded(w, h, 1);
  PlaneCode out;
  std::vector<float> pred(static_cast<std::size_t>(block) * block);
  std::vector<float> resid(static_cast<std::size_t>(block) * block);
  std::vector<float> best_resid(static_cast<std::size_t>(block) * block);

  for (int by = 0; by < by_count; ++by) {
    for (int bx = 0; bx < bx_count; ++bx) {
      const int x0 = bx * block;
      const int y0 = by * block;
      const RefSamples refs = gather_refs(decoded, x0, y0, block);

      // Mode decision: minimum residual energy (cheap SAD-style search).
      int best_mode = 0;
      float best_cost = std::numeric_limits<float>::max();
      for (int m = 0; m < static_cast<int>(IntraMode::kCount); ++m) {
        predict(refs, static_cast<IntraMode>(m), block, pred.data());
        float cost = 0.0F;
        for (int y = 0; y < block; ++y) {
          for (int x = 0; x < block; ++x) {
            const float v =
                plane.at_clamped(0, y0 + y, x0 + x) - pred[y * block + x];
            cost += v * v;
          }
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_mode = m;
          best_resid = pred;
        }
      }
      out.modes.push_back(best_mode);
      predict(refs, static_cast<IntraMode>(best_mode), block, pred.data());

      for (int y = 0; y < block; ++y) {
        for (int x = 0; x < block; ++x) {
          resid[y * block + x] =
              (plane.at_clamped(0, y0 + y, x0 + x) - pred[y * block + x]) *
              255.0F;
        }
      }
      dct.forward(resid.data());

      // Quantise, emit symbols up to the last nonzero (EOB-terminated),
      // dequantise into the reconstruction.
      std::vector<int> levels(zig.size());
      int last_nonzero = -1;
      for (std::size_t zi = 0; zi < zig.size(); ++zi) {
        const int idx = zig[zi];
        // Dead-zone quantiser (intra rounding offset ~1/3, as in HEVC):
        // coefficients below ~2/3 of a step collapse to zero, trading a tiny
        // MSE increase for a large rate saving.
        const float a = resid[idx] / step;
        const int q = a >= 0.0F ? static_cast<int>(a + 0.3333F)
                                : -static_cast<int>(-a + 0.3333F);
        levels[zi] = q;
        if (q != 0) last_nonzero = static_cast<int>(zi);
        resid[idx] = static_cast<float>(q) * step;
      }
      int zero_run = 0;
      for (int zi = 0; zi <= last_nonzero; ++zi) {
        const int q = levels[zi];
        if (q == 0) {
          ++zero_run;
          continue;
        }
        while (zero_run > 0) {
          const int chunk = std::min(zero_run, kMaxZeroRun);
          out.symbols.push_back(kZeroRunBase + chunk - 1);
          zero_run -= chunk;
        }
        if (q >= -kLevelBias && q <= kLevelBias) {
          out.symbols.push_back(q + kLevelBias);
        } else {
          out.symbols.push_back(kEscape);
          out.escapes.push_back(q);
        }
      }
      out.symbols.push_back(kEob);
      dct.inverse(resid.data());
      for (int y = 0; y < block; ++y) {
        const int py = y0 + y;
        if (py >= h) break;
        for (int x = 0; x < block; ++x) {
          const int px = x0 + x;
          if (px >= w) break;
          decoded.at(0, py, px) = std::clamp(
              pred[y * block + x] + resid[y * block + x] / 255.0F, 0.0F, 1.0F);
        }
      }
    }
  }
  if (decoded_out != nullptr) *decoded_out = std::move(decoded);
  return out;
}

image::Image decode_plane(const std::vector<int>& symbols,
                          const std::vector<int>& modes,
                          const std::vector<std::int32_t>& escapes, int w,
                          int h, int block, float step) {
  const int bx_count = (w + block - 1) / block;
  const int by_count = (h + block - 1) / block;
  const Dct2d dct(block);
  const std::vector<int> zig = zigzag_order(block);

  image::Image decoded(w, h, 1);
  std::vector<float> pred(static_cast<std::size_t>(block) * block);
  std::vector<float> resid(static_cast<std::size_t>(block) * block);
  std::size_t sym_pos = 0;
  std::size_t esc_pos = 0;
  std::size_t mode_pos = 0;

  for (int by = 0; by < by_count; ++by) {
    for (int bx = 0; bx < bx_count; ++bx) {
      const int x0 = bx * block;
      const int y0 = by * block;
      const RefSamples refs = gather_refs(decoded, x0, y0, block);
      const auto mode = static_cast<IntraMode>(modes[mode_pos++]);
      predict(refs, mode, block, pred.data());

      // Every block is EOB-terminated (even full ones); read until EOB so the
      // symbol stream stays in sync.
      std::fill(resid.begin(), resid.end(), 0.0F);
      for (std::size_t zi = 0;;) {
        const int sym = symbols[sym_pos++];
        if (sym == kEob) break;
        if (sym >= kZeroRunBase && sym < kZeroRunBase + kMaxZeroRun) {
          zi += static_cast<std::size_t>(sym - kZeroRunBase + 1);
          continue;
        }
        if (zi >= zig.size()) throw std::runtime_error("bpg: coeff overrun");
        int q = 0;
        if (sym == kEscape) {
          q = escapes[esc_pos++];
        } else {
          q = sym - kLevelBias;
        }
        resid[zig[zi++]] = static_cast<float>(q) * step;
      }
      dct.inverse(resid.data());
      for (int y = 0; y < block; ++y) {
        const int py = y0 + y;
        if (py >= h) break;
        for (int x = 0; x < block; ++x) {
          const int px = x0 + x;
          if (px >= w) break;
          decoded.at(0, py, px) = std::clamp(
              pred[y * block + x] + resid[y * block + x] / 255.0F, 0.0F, 1.0F);
        }
      }
    }
  }
  return decoded;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

std::uint32_t read_u32(const std::uint8_t* data, std::size_t& pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
  }
  return v;
}

}  // namespace

BpgLikeCodec::BpgLikeCodec(int quality) : quality_(std::clamp(quality, 1, 100)) {}

void BpgLikeCodec::set_quality(int quality) {
  quality_ = std::clamp(quality, 1, 100);
}

Compressed BpgLikeCodec::encode(const image::Image& img) const {
  if (img.empty()) throw std::invalid_argument("bpg: empty image");
  const bool color = img.channels() == 3;
  const image::Image ycbcr = color ? image::rgb_to_ycbcr(img) : img;
  const float step = quant_step(quality_);

  std::vector<PlaneCode> planes;
  planes.push_back(code_plane(ycbcr.channel(0), kLumaBlock, step, nullptr));
  if (color) {
    planes.push_back(code_plane(image::downsample2x(ycbcr.channel(1)),
                                kChromaBlock, step * 1.2F, nullptr));
    planes.push_back(code_plane(image::downsample2x(ycbcr.channel(2)),
                                kChromaBlock, step * 1.2F, nullptr));
  }

  // Container: header, per-plane side info (modes, escapes, symbol count),
  // then ONE rANS stream over the concatenated coefficient symbols of all
  // planes — a single shared frequency table keeps the fixed overhead small
  // at low rates.
  std::vector<std::uint8_t> bytes;
  append_u32(bytes, static_cast<std::uint32_t>(img.width()));
  append_u32(bytes, static_cast<std::uint32_t>(img.height()));
  bytes.push_back(color ? 1 : 0);
  bytes.push_back(static_cast<std::uint8_t>(quality_));

  std::vector<int> all_symbols;
  for (const auto& p : planes) {
    append_u32(bytes, static_cast<std::uint32_t>(p.modes.size()));
    // Modes packed 3 bits each (6 modes fit).
    {
      entropy::BitWriter mode_bits;
      for (const int m : p.modes) {
        mode_bits.write_bits(static_cast<std::uint32_t>(m), 3);
      }
      const auto packed = mode_bits.finish();
      bytes.insert(bytes.end(), packed.begin(), packed.end());
    }
    append_u32(bytes, static_cast<std::uint32_t>(p.escapes.size()));
    for (const std::int32_t e : p.escapes) {
      append_u32(bytes, static_cast<std::uint32_t>(e));
    }
    append_u32(bytes, static_cast<std::uint32_t>(p.symbols.size()));
    all_symbols.insert(all_symbols.end(), p.symbols.begin(), p.symbols.end());
  }
  const std::vector<std::uint8_t> payload =
      entropy::rans_encode_with_table(all_symbols, kCoeffAlphabet);
  append_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  Compressed out;
  out.bytes = std::move(bytes);
  out.width = img.width();
  out.height = img.height();
  out.channels = img.channels();
  return out;
}

image::Image BpgLikeCodec::decode(const Compressed& c) const {
  std::size_t pos = 0;
  const auto* data = c.bytes.data();
  const int width = static_cast<int>(read_u32(data, pos));
  const int height = static_cast<int>(read_u32(data, pos));
  const bool color = data[pos++] != 0;
  const int q = data[pos++];
  const float step = quant_step(q);

  struct PlaneSideInfo {
    std::vector<int> modes;
    std::vector<std::int32_t> escapes;
    std::size_t symbol_count = 0;
  };
  const int plane_count = color ? 3 : 1;
  std::vector<PlaneSideInfo> sides(plane_count);
  std::size_t total_symbols = 0;
  for (auto& side : sides) {
    const auto mode_count = read_u32(data, pos);
    side.modes.resize(mode_count);
    {
      const std::size_t packed_len = (mode_count * 3 + 7) / 8;
      entropy::BitReader mode_bits(data + pos, packed_len);
      for (auto& m : side.modes) m = static_cast<int>(mode_bits.read_bits(3));
      pos += packed_len;
    }
    const auto escape_count = read_u32(data, pos);
    side.escapes.resize(escape_count);
    for (auto& e : side.escapes) {
      e = static_cast<std::int32_t>(read_u32(data, pos));
    }
    side.symbol_count = read_u32(data, pos);
    total_symbols += side.symbol_count;
  }
  const auto payload_size = read_u32(data, pos);
  const std::vector<int> all_symbols =
      entropy::rans_decode_with_table(data + pos, payload_size, total_symbols);
  pos += payload_size;

  std::size_t sym_offset = 0;
  const auto read_plane = [&](const PlaneSideInfo& side, int w, int h,
                              int block, float plane_step) -> image::Image {
    const std::vector<int> symbols(
        all_symbols.begin() + static_cast<std::ptrdiff_t>(sym_offset),
        all_symbols.begin() +
            static_cast<std::ptrdiff_t>(sym_offset + side.symbol_count));
    sym_offset += side.symbol_count;
    return decode_plane(symbols, side.modes, side.escapes, w, h, block,
                        plane_step);
  };

  const image::Image y = read_plane(sides[0], width, height, kLumaBlock, step);
  if (!color) return y;

  const int cw = (width + 1) / 2;
  const int ch = (height + 1) / 2;
  const image::Image cb = read_plane(sides[1], cw, ch, kChromaBlock, step * 1.2F);
  const image::Image cr = read_plane(sides[2], cw, ch, kChromaBlock, step * 1.2F);

  image::Image ycbcr(width, height, 3);
  std::copy_n(y.plane(0), y.pixel_count(), ycbcr.plane(0));
  const image::Image cb_up = image::upsample2x(cb, width, height);
  const image::Image cr_up = image::upsample2x(cr, width, height);
  std::copy_n(cb_up.plane(0), cb_up.pixel_count(), ycbcr.plane(1));
  std::copy_n(cr_up.plane(0), cr_up.pixel_count(), ycbcr.plane(2));
  return image::ycbcr_to_rgb(ycbcr);
}

double BpgLikeCodec::encode_flops(int width, int height) const {
  // Mode search over 6 predictors plus a 16x16 DCT per block: ~40x the
  // arithmetic of the JPEG path per pixel, matching BPG's slower encode.
  return 400.0 * width * height;
}

double BpgLikeCodec::decode_flops(int width, int height) const {
  return 150.0 * width * height;
}

}  // namespace easz::codec
