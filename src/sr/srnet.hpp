// Super-resolution baselines standing in for SwinIR / realESRGAN / BSRGAN
// (Table I, Fig. 4). SRCNN-style post-upsampling refinement networks: the
// low-resolution image is bicubic-upsampled, then a small conv stack predicts
// a residual correction. Three capacity presets mirror the three published
// models; their paper-scale sizes (all ~67 MB) are carried alongside the
// lite networks' real sizes for the Table I model-size column.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace easz::sr {

struct SrNetSpec {
  std::string name;
  int width = 16;   ///< hidden channels
  int layers = 3;   ///< conv layers (>= 2)
  double paper_model_bytes = 67.0 * 1024 * 1024;
};

SrNetSpec swinir_lite_spec();
SrNetSpec realesrgan_lite_spec();
SrNetSpec bsrgan_lite_spec();

class SrNet : public nn::Module {
 public:
  SrNet(SrNetSpec spec, std::uint64_t seed);

  [[nodiscard]] const SrNetSpec& spec() const { return spec_; }

  /// Residual refinement of a bicubic-upsampled [1,3,H,W] tensor.
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x) const;

  /// Upscales `low` to (w, h): bicubic + learned residual.
  [[nodiscard]] image::Image upscale(const image::Image& low, int w, int h) const;

  /// Self-supervised pretraining on synthetic (downsampled, original) pairs
  /// at the given scale factor. Deterministic per seed.
  void pretrain(int steps, float scale_factor = 0.75F, int patch = 48);

 private:
  SrNetSpec spec_;
  struct Layer {
    tensor::Tensor w;
    tensor::Tensor b;
  };
  std::vector<Layer> layers_;
};

}  // namespace easz::sr
