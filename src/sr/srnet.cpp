#include "sr/srnet.hpp"

#include <algorithm>
#include <cmath>

#include "data/synth.hpp"
#include "image/resize.hpp"
#include "nn/adam.hpp"
#include "tensor/ops.hpp"

namespace easz::sr {
namespace {

constexpr int kKernel = 3;
constexpr int kPad = 1;

tensor::Tensor image_to_nchw(const image::Image& img) {
  tensor::Tensor t({1, img.channels(), img.height(), img.width()});
  std::copy(img.data().begin(), img.data().end(), t.data().begin());
  return t;
}

}  // namespace

SrNetSpec swinir_lite_spec() {
  return {.name = "swinir", .width = 20, .layers = 4};
}
SrNetSpec realesrgan_lite_spec() {
  return {.name = "realesrgan", .width = 16, .layers = 3};
}
SrNetSpec bsrgan_lite_spec() {
  return {.name = "bsrgan", .width = 16, .layers = 4};
}

SrNet::SrNet(SrNetSpec spec, std::uint64_t seed) : spec_(std::move(spec)) {
  util::Pcg32 rng(seed);
  int cin = 3;
  for (int l = 0; l < spec_.layers; ++l) {
    const int cout = l == spec_.layers - 1 ? 3 : spec_.width;
    const float stddev =
        1.0F / std::sqrt(static_cast<float>(cin) * kKernel * kKernel);
    Layer layer;
    layer.w = register_param(tensor::Tensor::randn(
        {cout, cin, kKernel, kKernel}, rng, stddev, true));
    layer.b = register_param(tensor::Tensor({cout}, true));
    layers_.push_back(layer);
    cin = cout;
  }
}

tensor::Tensor SrNet::forward(const tensor::Tensor& x) const {
  tensor::Tensor h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = tensor::conv2d(h, layers_[l].w, layers_[l].b, 1, kPad);
    if (l + 1 < layers_.size()) h = tensor::leaky_relu(h, 0.1F);
  }
  // Residual prediction around the bicubic base.
  return tensor::add(x, h);
}

image::Image SrNet::upscale(const image::Image& low, int w, int h) const {
  const image::Image base = image::resize(low, w, h, image::Filter::kBicubic);
  const tensor::Tensor out = forward(image_to_nchw(base));
  image::Image img(w, h, 3);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    img.data()[i] = std::clamp(out.data()[i], 0.0F, 1.0F);
  }
  return img;
}

void SrNet::pretrain(int steps, float scale_factor, int patch) {
  util::Pcg32 rng(0x5133D ^ static_cast<std::uint64_t>(spec_.width * 131 +
                                                        spec_.layers));
  nn::Adam opt(parameters(), {.lr = 2e-3F, .weight_decay = 0.0F});
  const int low = std::max(8, static_cast<int>(patch * scale_factor));
  for (int s = 0; s < steps; ++s) {
    const image::Image img = data::synth_photo(patch, patch, rng);
    const image::Image down =
        image::resize(img, low, low, image::Filter::kBicubic);
    const image::Image base =
        image::resize(down, patch, patch, image::Filter::kBicubic);
    const tensor::Tensor pred = forward(image_to_nchw(base));
    tensor::Tensor loss = tensor::mse_loss(pred, image_to_nchw(img));
    loss.backward();
    opt.step();
  }
}

}  // namespace easz::sr
