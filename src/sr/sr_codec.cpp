#include "sr/sr_codec.hpp"

#include <algorithm>
#include <stdexcept>

#include "image/resize.hpp"

namespace easz::sr {

DownUpCodec::DownUpCodec(codec::ImageCodec& inner, float scale,
                         const SrNet* net)
    : inner_(inner), scale_(scale), net_(net) {
  if (scale <= 0.0F || scale >= 1.0F) {
    throw std::invalid_argument("DownUpCodec: scale must be in (0, 1)");
  }
}

std::string DownUpCodec::name() const {
  return inner_.name() + "+down" + (net_ != nullptr ? "+" + net_->spec().name
                                                     : "+bicubic");
}

codec::Compressed DownUpCodec::encode(const image::Image& img) const {
  const int lw = std::max(8, static_cast<int>(img.width() * scale_));
  const int lh = std::max(8, static_cast<int>(img.height() * scale_));
  const image::Image low =
      image::resize(img, lw, lh, image::Filter::kBicubic);
  codec::Compressed c = inner_.encode(low);
  // Rate accounting stays against the original grid.
  c.width = img.width();
  c.height = img.height();
  return c;
}

image::Image DownUpCodec::decode(const codec::Compressed& c) const {
  const image::Image low = inner_.decode(
      {c.bytes, 0, 0, c.channels});  // inner stream is self-describing
  if (net_ != nullptr) return net_->upscale(low, c.width, c.height);
  return image::resize(low, c.width, c.height, image::Filter::kBicubic);
}

double DownUpCodec::encode_flops(int width, int height) const {
  // Bicubic: 16 taps * ~4 flops per output sample * 3 channels.
  const double down =
      192.0 * (static_cast<double>(width) * scale_) * (height * scale_);
  return down + inner_.encode_flops(static_cast<int>(width * scale_),
                                    static_cast<int>(height * scale_));
}

double DownUpCodec::decode_flops(int width, int height) const {
  const double up = 192.0 * static_cast<double>(width) * height;
  double net = 0.0;
  if (net_ != nullptr) {
    // conv stack: layers * width^2 * 9 * 2 flops per pixel (approx).
    const auto& s = net_->spec();
    net = static_cast<double>(s.layers) * s.width * s.width * 18.0 * width *
          height;
  }
  return up + net +
         inner_.decode_flops(static_cast<int>(width * scale_),
                             static_cast<int>(height * scale_));
}

std::size_t DownUpCodec::model_bytes() const {
  return net_ != nullptr ? net_->model_bytes() : 0;
}

}  // namespace easz::sr
