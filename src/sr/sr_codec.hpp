// Downsample-compress-upsample pseudo-codec (the paper's §II "another
// approach": downsample at the edge, super-resolve on the server).
//
// Wraps an inner codec: encode = bicubic downsample by `scale` then inner
// encode; decode = inner decode then upsample (bicubic or an SrNet). This is
// the baseline family Easz's flexible erase ratio is contrasted against —
// its reduction ratio is locked to the (fixed) scale factor.
#pragma once

#include <memory>

#include "codec/codec.hpp"
#include "sr/srnet.hpp"

namespace easz::sr {

class DownUpCodec final : public codec::ImageCodec {
 public:
  /// `scale` in (0, 1): linear downsample factor. `net` optional; bicubic
  /// upsampling when null. Borrows both; they must outlive the codec.
  DownUpCodec(codec::ImageCodec& inner, float scale, const SrNet* net);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] codec::Compressed encode(const image::Image& img) const override;
  [[nodiscard]] image::Image decode(const codec::Compressed& c) const override;
  void set_quality(int quality) override { inner_.set_quality(quality); }
  [[nodiscard]] int quality() const override { return inner_.quality(); }
  [[nodiscard]] double encode_flops(int width, int height) const override;
  [[nodiscard]] double decode_flops(int width, int height) const override;
  [[nodiscard]] std::size_t model_bytes() const override;

  [[nodiscard]] float scale() const { return scale_; }

 private:
  codec::ImageCodec& inner_;
  float scale_;
  const SrNet* net_;
};

}  // namespace easz::sr
