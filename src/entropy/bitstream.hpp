// MSB-first bit stream reader/writer shared by Huffman coding and codec
// headers.
#pragma once

#include <cstdint>
#include <vector>

namespace easz::entropy {

/// Append-only MSB-first bit writer backed by a byte vector.
class BitWriter {
 public:
  /// Writes the low `count` bits of `bits` (MSB of that field first).
  /// count in [0, 32].
  void write_bits(std::uint32_t bits, int count);

  void write_bit(bool bit) { write_bits(bit ? 1U : 0U, 1); }

  /// Unsigned Exp-Golomb code (order 0) — compact for small magnitudes.
  void write_ue(std::uint32_t value);

  /// Signed Exp-Golomb: 0, 1, -1, 2, -2, ... mapping.
  void write_se(std::int32_t value);

  /// Pads the final partial byte with zeros and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  int filled_ = 0;
  std::size_t bit_count_ = 0;
};

/// MSB-first reader over a byte span. Reading past the end throws
/// std::out_of_range (corrupt-stream defence).
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BitReader(const std::vector<std::uint8_t>& buf)
      : BitReader(buf.data(), buf.size()) {}

  std::uint32_t read_bits(int count);
  bool read_bit() { return read_bits(1) != 0U; }
  std::uint32_t read_ue();
  std::int32_t read_se();

  [[nodiscard]] std::size_t bits_consumed() const { return bit_pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t bit_pos_ = 0;
};

}  // namespace easz::entropy
