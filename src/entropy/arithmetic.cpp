#include "entropy/arithmetic.hpp"

#include <stdexcept>

namespace easz::entropy {
namespace {

constexpr std::uint32_t kTopValue = 1U << 24U;
constexpr std::uint16_t kProbMin = 32;
constexpr std::uint16_t kProbMax = 0xFFFFU - 32;

// Exp-Golomb prefix length of value+1 (number of unary "continue" bins).
int prefix_length(std::uint32_t value) {
  int len = 0;
  std::uint64_t v = static_cast<std::uint64_t>(value) + 1;
  while ((v >> (len + 1)) != 0) ++len;
  return len;
}

}  // namespace

void BinContext::update(bool bit) {
  if (bit) {
    prob_ = static_cast<std::uint16_t>(prob_ + ((0xFFFFU - prob_) >> kShift));
  } else {
    prob_ = static_cast<std::uint16_t>(prob_ - (prob_ >> kShift));
  }
  if (prob_ < kProbMin) prob_ = kProbMin;
  if (prob_ > kProbMax) prob_ = kProbMax;
}

void ArithmeticEncoder::emit_byte() {
  // LZMA-style shift-low: a pending run of 0xFF bytes absorbs carries.
  if (static_cast<std::uint32_t>(low_) < 0xFF000000U || (low_ >> 32U) != 0) {
    const std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32U);
    bytes_.push_back(
        static_cast<std::uint8_t>((cache_ < 0 ? 0 : cache_) + carry));
    while (pending_ff_ > 0) {
      bytes_.push_back(static_cast<std::uint8_t>(0xFFU + carry));
      --pending_ff_;
    }
    cache_ = static_cast<std::int32_t>((low_ >> 24U) & 0xFFU);
  } else {
    ++pending_ff_;
  }
  low_ = (low_ << 8U) & 0xFFFFFFFFULL;
}

void ArithmeticEncoder::renormalize() {
  while (range_ < kTopValue) {
    range_ <<= 8U;
    emit_byte();
  }
}

void ArithmeticEncoder::encode_bit(BinContext& ctx, bool bit) {
  // bound = share of the range assigned to bit == 0.
  const std::uint32_t p0 = 0x10000U - ctx.prob_one();
  const std::uint32_t bound = (range_ >> 16U) * p0;
  if (!bit) {
    range_ = bound;
  } else {
    low_ += bound;
    range_ -= bound;
  }
  ctx.update(bit);
  renormalize();
}

void ArithmeticEncoder::encode_bypass(bool bit) {
  const std::uint32_t bound = range_ >> 1U;
  if (!bit) {
    range_ = bound;
  } else {
    low_ += bound;
    range_ -= bound;
  }
  renormalize();
}

void ArithmeticEncoder::encode_bypass_bits(std::uint32_t value, int bits) {
  for (int i = bits - 1; i >= 0; --i) {
    encode_bypass(((value >> i) & 1U) != 0U);
  }
}

std::vector<std::uint8_t> ArithmeticEncoder::finish() {
  for (int i = 0; i < 5; ++i) emit_byte();
  return std::move(bytes_);
}

ArithmeticDecoder::ArithmeticDecoder(const std::uint8_t* data, std::size_t size)
    : data_(data), size_(size) {
  // Mirrors the encoder's 5-byte flush; the first byte is the initial cache.
  for (int i = 0; i < 5; ++i) {
    value_ = (value_ << 8U) | (pos_ < size_ ? data_[pos_++] : 0U);
  }
  value_ &= 0xFFFFFFFFULL;
}

void ArithmeticDecoder::renormalize() {
  while (range_ < kTopValue) {
    range_ <<= 8U;
    value_ = ((value_ << 8U) | (pos_ < size_ ? data_[pos_++] : 0U)) &
             0xFFFFFFFFULL;
  }
}

bool ArithmeticDecoder::decode_bit(BinContext& ctx) {
  const std::uint32_t p0 = 0x10000U - ctx.prob_one();
  const std::uint32_t bound = (range_ >> 16U) * p0;
  bool bit;
  if (value_ < bound) {
    bit = false;
    range_ = bound;
  } else {
    bit = true;
    value_ -= bound;
    range_ -= bound;
  }
  ctx.update(bit);
  renormalize();
  return bit;
}

bool ArithmeticDecoder::decode_bypass() {
  const std::uint32_t bound = range_ >> 1U;
  bool bit;
  if (value_ < bound) {
    bit = false;
    range_ = bound;
  } else {
    bit = true;
    value_ -= bound;
    range_ -= bound;
  }
  renormalize();
  return bit;
}

std::uint32_t ArithmeticDecoder::decode_bypass_bits(int bits) {
  std::uint32_t out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1U) | (decode_bypass() ? 1U : 0U);
  }
  return out;
}

std::vector<std::uint8_t> arithmetic_encode_values(
    const std::vector<std::uint32_t>& values) {
  // Exp-Golomb binarisation with adaptive unary-prefix contexts: prefix bin
  // i says "the prefix continues past length i"; suffix bits go bypass.
  constexpr int kMaxPrefix = 31;
  std::vector<BinContext> contexts(kMaxPrefix + 1);
  ArithmeticEncoder enc;
  for (const std::uint32_t v : values) {
    const int len = prefix_length(v);
    for (int i = 0; i < len; ++i) enc.encode_bit(contexts[i], true);
    enc.encode_bit(contexts[len], false);
    const std::uint32_t suffix =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(v) + 1) -
                                   (1ULL << len));
    enc.encode_bypass_bits(suffix, len);
  }
  return enc.finish();
}

std::vector<std::uint32_t> arithmetic_decode_values(
    const std::vector<std::uint8_t>& bytes, std::size_t count) {
  constexpr int kMaxPrefix = 31;
  std::vector<BinContext> contexts(kMaxPrefix + 1);
  ArithmeticDecoder dec(bytes);
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    int len = 0;
    while (len < kMaxPrefix && dec.decode_bit(contexts[len])) ++len;
    const std::uint32_t suffix = dec.decode_bypass_bits(len);
    out.push_back(static_cast<std::uint32_t>((1ULL << len) + suffix - 1));
  }
  return out;
}

}  // namespace easz::entropy
