#include "entropy/bitstream.hpp"

#include <stdexcept>

namespace easz::entropy {

void BitWriter::write_bits(std::uint32_t bits, int count) {
  if (count < 0 || count > 32) {
    throw std::invalid_argument("BitWriter: count must be in [0, 32]");
  }
  for (int i = count - 1; i >= 0; --i) {
    const std::uint8_t bit = static_cast<std::uint8_t>((bits >> i) & 1U);
    current_ = static_cast<std::uint8_t>((current_ << 1) | bit);
    ++filled_;
    ++bit_count_;
    if (filled_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      filled_ = 0;
    }
  }
}

void BitWriter::write_ue(std::uint32_t value) {
  // Exp-Golomb: codeNum+1 in binary, prefixed by (len-1) zeros.
  const std::uint64_t code = static_cast<std::uint64_t>(value) + 1U;
  int len = 0;
  while ((code >> len) > 1U) ++len;
  write_bits(0, len);
  write_bits(static_cast<std::uint32_t>(code), len + 1);
}

void BitWriter::write_se(std::int32_t value) {
  const std::uint32_t mapped =
      value > 0 ? static_cast<std::uint32_t>(value) * 2U - 1U
                : static_cast<std::uint32_t>(-static_cast<std::int64_t>(value)) * 2U;
  write_ue(mapped);
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (filled_ > 0) {
    current_ = static_cast<std::uint8_t>(current_ << (8 - filled_));
    bytes_.push_back(current_);
    current_ = 0;
    filled_ = 0;
  }
  return std::move(bytes_);
}

std::uint32_t BitReader::read_bits(int count) {
  if (count < 0 || count > 32) {
    throw std::invalid_argument("BitReader: count must be in [0, 32]");
  }
  std::uint32_t out = 0;
  for (int i = 0; i < count; ++i) {
    const std::size_t byte_idx = bit_pos_ >> 3U;
    if (byte_idx >= size_) throw std::out_of_range("BitReader: past end");
    const int shift = 7 - static_cast<int>(bit_pos_ & 7U);
    const std::uint32_t bit = (data_[byte_idx] >> shift) & 1U;
    out = (out << 1U) | bit;
    ++bit_pos_;
  }
  return out;
}

std::uint32_t BitReader::read_ue() {
  int zeros = 0;
  while (!read_bit()) {
    ++zeros;
    if (zeros > 32) throw std::out_of_range("BitReader: bad ue code");
  }
  std::uint32_t value = 1;
  for (int i = 0; i < zeros; ++i) value = (value << 1U) | (read_bit() ? 1U : 0U);
  return value - 1U;
}

std::int32_t BitReader::read_se() {
  const std::uint32_t mapped = read_ue();
  if ((mapped & 1U) != 0U) {
    return static_cast<std::int32_t>((mapped + 1U) / 2U);
  }
  return -static_cast<std::int32_t>(mapped / 2U);
}

}  // namespace easz::entropy
