// Interleaved (4-lane, 32-bit state, 16-bit word renormalisation) rANS —
// the v2 stream format of entropy/rans.hpp.
//
// Why it is faster than the scalar v1 coder: a rANS decode step is one long
// dependency chain (mask -> slot lookup -> packed freq|cum load -> multiply
// -> renormalise), ~12-15 cycles that nothing can overlap. Four independent
// states give the out-of-order core four such chains to interleave, and the
// 16-bit word renormalisation needs at most ONE conditional word read per
// symbol (the v1 byte loop can iterate up to three times). The per-lane
// streams are stitched with explicit offsets in the payload header, so the
// decoder points one cursor at each lane; symbols are round-robin across
// lanes (symbol i -> lane i % 4), which keeps encode deterministic and lets
// the decoder emit in plain forward order.
//
// The AVX2 kernel performs the slot and freq|cum lookups as gathers and the
// state update as one vectorised multiply-add over all four lanes; only the
// (rare-ish) renormalisation word reads run scalar, selected by movemask.
// It is dispatched at runtime like tensor::kern and produces byte-identical
// symbols to the portable kernel.
//
// State invariants (L = 2^16, b = 2^16, kProbBits = 14):
//   encode: x in [L, b*L) before each step; renormalise (emit one u16) when
//           x >= ((L >> kProbBits) << 16) * f = f << 18 — at most once.
//   decode: after the update x >= f * (L >> kProbBits) >= 4; one u16 read
//           restores x >= 2^16 = L — again at most once.
#include "entropy/rans.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EASZ_RANS_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace easz::entropy {
namespace {

constexpr std::uint32_t kInterleavedLowerBound = 1U << 16U;  // L
constexpr std::size_t kLaneHeaderBytes =
    sizeof(std::uint32_t) * (kRansLanes - 1);

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xFFU);
  p[1] = static_cast<std::uint8_t>((v >> 8U) & 0xFFU);
  p[2] = static_cast<std::uint8_t>((v >> 16U) & 0xFFU);
  p[3] = static_cast<std::uint8_t>((v >> 24U) & 0xFFU);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8U) |
         (static_cast<std::uint32_t>(p[2]) << 16U) |
         (static_cast<std::uint32_t>(p[3]) << 24U);
}

struct LaneCursors {
  const std::uint8_t* pos[kRansLanes];
  const std::uint8_t* end[kRansLanes];
  std::uint32_t state[kRansLanes];
};

/// Parses the lane-offset header and each lane's initial state. Validates
/// offsets (monotone, in bounds) and per-lane room for the 4-byte state.
LaneCursors open_lanes(const std::uint8_t* data, std::size_t size) {
  if (size < kLaneHeaderBytes) {
    throw std::out_of_range("rans_decode_interleaved: buffer too small");
  }
  const std::uint8_t* body = data + kLaneHeaderBytes;
  const std::size_t body_size = size - kLaneHeaderBytes;
  std::size_t off[kRansLanes + 1];
  off[0] = 0;
  for (int l = 1; l < kRansLanes; ++l) {
    off[l] = get_u32(data + static_cast<std::size_t>(l - 1) * 4);
  }
  off[kRansLanes] = body_size;
  for (int l = 0; l < kRansLanes; ++l) {
    if (off[l + 1] < off[l] || off[l + 1] > body_size) {
      throw std::runtime_error("rans_decode_interleaved: corrupt lane offset");
    }
  }
  LaneCursors c;
  for (int l = 0; l < kRansLanes; ++l) {
    if (off[l + 1] - off[l] < 4) {
      throw std::out_of_range("rans_decode_interleaved: truncated lane");
    }
    c.pos[l] = body + off[l] + 4;
    c.end[l] = body + off[l + 1];
    c.state[l] = get_u32(body + off[l]);
  }
  return c;
}

/// Portable 4-lane kernel. `SlotT` is uint8_t (alphabet <= 256) or uint16_t.
///
/// The hot loop runs over CHUNKS whose length is pre-validated against every
/// lane's remaining bytes (a symbol consumes at most one u16 word), so the
/// inner body carries no bounds checks and no throw edges — lane states and
/// cursors live in registers — and the word renormalisation is a branchless
/// conditional move instead of a per-symbol mispredicting branch. The final
/// symbols (or a truly truncated stream) fall through to the checked loop.
template <typename SlotT>
void decode_lanes_scalar(LaneCursors& c, const SlotT* slot_sym,
                         const std::uint32_t* fc, std::size_t count,
                         int* out) {
  constexpr std::uint32_t kMask = FrequencyTable::kProbScale - 1U;
  std::uint32_t x0 = c.state[0], x1 = c.state[1], x2 = c.state[2],
                x3 = c.state[3];
  const std::uint8_t* p0 = c.pos[0];
  const std::uint8_t* p1 = c.pos[1];
  const std::uint8_t* p2 = c.pos[2];
  const std::uint8_t* p3 = c.pos[3];

  std::size_t i = 0;
  for (;;) {
    std::size_t safe = static_cast<std::size_t>(c.end[0] - p0) / 2;
    safe = std::min(safe, static_cast<std::size_t>(c.end[1] - p1) / 2);
    safe = std::min(safe, static_cast<std::size_t>(c.end[2] - p2) / 2);
    safe = std::min(safe, static_cast<std::size_t>(c.end[3] - p3) / 2);
    const std::size_t chunk = std::min(safe, (count - i) / kRansLanes);
    if (chunk == 0) break;
    for (std::size_t k = 0; k < chunk; ++k) {
      // Four independent dependency chains. The renormalisation is forced
      // branchless (mask blend, not a ternary — the compiler turns ternaries
      // back into branches, and a ~50% renorm rate makes that branch
      // unpredictable): the u16 word is loaded unconditionally — safe inside
      // the validated chunk — and blended in only when x dropped below L.
      const auto step = [&](std::uint32_t& x, const std::uint8_t*& p,
                            std::size_t lane) {
        const std::uint32_t slot = x & kMask;
        const std::uint32_t s = slot_sym[slot];
        const std::uint32_t v = fc[s];
        x = (v >> 16U) * (x >> FrequencyTable::kProbBits) + slot -
            (v & 0xFFFFU);
        const std::uint32_t w = static_cast<std::uint32_t>(p[0]) |
                                (static_cast<std::uint32_t>(p[1]) << 8U);
        const std::uint32_t mask =
            0U - static_cast<std::uint32_t>(x < kInterleavedLowerBound);
        x ^= (x ^ ((x << 16U) | w)) & mask;
        p += mask & 2U;
#if defined(__GNUC__) || defined(__clang__)
        // x is now exactly the next iteration's state, so this lane's next
        // slot→sym load address is already known — prefetch it while the
        // other three lanes' chains execute. The 16KB u8 table misses L1
        // constantly on real symbol streams and the load heads the ~13-cycle
        // dependency chain, which is why this is the one prefetch that pays.
        // Pure hint: decoded bytes are identical with or without it.
        __builtin_prefetch(&slot_sym[x & kMask], 0, 3);
#endif
        out[i + lane] = static_cast<int>(s);
      };
      step(x0, p0, 0);
      step(x1, p1, 1);
      step(x2, p2, 2);
      step(x3, p3, 3);
      i += kRansLanes;
    }
  }

  c.state[0] = x0;
  c.state[1] = x1;
  c.state[2] = x2;
  c.state[3] = x3;
  c.pos[0] = p0;
  c.pos[1] = p1;
  c.pos[2] = p2;
  c.pos[3] = p3;

  // Checked tail: fewer than kRansLanes symbols left, or some lane is down
  // to its last bytes (a symbol that renormalises there must throw).
  for (; i < count; ++i) {
    const int l = static_cast<int>(i % kRansLanes);
    std::uint32_t x = c.state[l];
    const std::uint32_t slot = x & kMask;
    const std::uint32_t s = slot_sym[slot];
    const std::uint32_t v = fc[s];
    x = (v >> 16U) * (x >> FrequencyTable::kProbBits) + slot - (v & 0xFFFFU);
    if (x < kInterleavedLowerBound) {
      if (c.pos[l] + 2 > c.end[l]) {
        throw std::out_of_range("rans_decode_interleaved: truncated lane");
      }
      x = (x << 16U) |
          (static_cast<std::uint32_t>(c.pos[l][0]) |
           (static_cast<std::uint32_t>(c.pos[l][1]) << 8U));
      c.pos[l] += 2;
    }
    c.state[l] = x;
    out[i] = static_cast<int>(s);
  }
}

void decode_scalar(LaneCursors& c, const FrequencyTable& table,
                   std::size_t count, int* out) {
  if (table.slot_sym8() != nullptr) {
    decode_lanes_scalar(c, table.slot_sym8(), table.sym_fc(), count, out);
  } else {
    decode_lanes_scalar(c, table.slot_sym16(), table.sym_fc(), count, out);
  }
}

#ifdef EASZ_RANS_X86_DISPATCH

/// AVX2 kernel: table lookups as 32-bit gathers over the packed slot and
/// freq|cum tables, state update vectorised across the four lanes, word
/// renormalisation scalar per movemask-selected lane.
__attribute__((target("avx2"))) void decode_avx2(LaneCursors& c,
                                                 const FrequencyTable& table,
                                                 std::size_t count, int* out) {
  constexpr std::uint32_t kMask = FrequencyTable::kProbScale - 1U;
  const std::uint8_t* sym8 = table.slot_sym8();
  const std::uint16_t* sym16 = table.slot_sym16();
  const std::uint32_t* fc = table.sym_fc();

  alignas(16) std::uint32_t xs_mem[4];
  std::memcpy(xs_mem, c.state, sizeof(xs_mem));
  __m128i x = _mm_load_si128(reinterpret_cast<const __m128i*>(xs_mem));
  const __m128i slot_mask = _mm_set1_epi32(static_cast<int>(kMask));
  const __m128i low16 = _mm_set1_epi32(0xFFFF);
  const __m128i sign_flip = _mm_set1_epi32(static_cast<int>(0x80000000U));
  // Unsigned x < 2^16 via the signed-compare offset trick.
  const __m128i lower_biased =
      _mm_set1_epi32(static_cast<int>(kInterleavedLowerBound ^ 0x80000000U));

  std::size_t i = 0;
  for (; i + kRansLanes <= count; i += kRansLanes) {
    const __m128i slot = _mm_and_si128(x, slot_mask);
    __m128i sym;
    if (sym8 != nullptr) {
      // Scale-1 gather reads 4 bytes at slot; the table is padded so the
      // tail loads stay in bounds. Low byte is the symbol.
      sym = _mm_and_si128(
          _mm_i32gather_epi32(reinterpret_cast<const int*>(sym8), slot, 1),
          _mm_set1_epi32(0xFF));
    } else {
      sym = _mm_and_si128(
          _mm_i32gather_epi32(reinterpret_cast<const int*>(sym16), slot, 2),
          low16);
    }
    const __m128i v =
        _mm_i32gather_epi32(reinterpret_cast<const int*>(fc), sym, 4);
    const __m128i f = _mm_srli_epi32(v, 16);
    const __m128i cum = _mm_and_si128(v, low16);
    x = _mm_add_epi32(
        _mm_mullo_epi32(f, _mm_srli_epi32(x, FrequencyTable::kProbBits)),
        _mm_sub_epi32(slot, cum));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), sym);

    const __m128i need = _mm_cmplt_epi32(_mm_xor_si128(x, sign_flip),
                                         lower_biased);
    int m = _mm_movemask_ps(_mm_castsi128_ps(need));
    if (m != 0) {
      _mm_store_si128(reinterpret_cast<__m128i*>(xs_mem), x);
      while (m != 0) {
        const int l = __builtin_ctz(static_cast<unsigned>(m));
        m &= m - 1;
        if (c.pos[l] + 2 > c.end[l]) {
          throw std::out_of_range("rans_decode_interleaved: truncated lane");
        }
        xs_mem[l] = (xs_mem[l] << 16U) |
                    (static_cast<std::uint32_t>(c.pos[l][0]) |
                     (static_cast<std::uint32_t>(c.pos[l][1]) << 8U));
        c.pos[l] += 2;
      }
      x = _mm_load_si128(reinterpret_cast<const __m128i*>(xs_mem));
    }
  }
  _mm_store_si128(reinterpret_cast<__m128i*>(xs_mem), x);
  std::memcpy(c.state, xs_mem, sizeof(xs_mem));
  if (i < count) decode_scalar(c, table, count - i, out + i);
}

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

/// One-shot micro-calibration: gathers are fast on some cores and microcoded
/// on others, and which kernel wins cannot be known from CPUID alone. Both
/// kernels are byte-exact, so picking by a ~1 ms timed race on a synthetic
/// stream is purely a speed decision. Runs once per process, at the first
/// interleaved decode.
bool avx2_wins_race() {
  constexpr int kAlphabet = 64;
  constexpr std::size_t kSymbols = 16384;
  std::vector<int> symbols(kSymbols);
  std::uint32_t lcg = 0x12345u;
  for (auto& s : symbols) {
    lcg = lcg * 1664525u + 1013904223u;
    // Geometric-ish skew, like coefficient streams.
    s = static_cast<int>((lcg >> 17U) % 7 + (lcg >> 27U) % 9);
  }
  std::vector<std::uint64_t> counts(kAlphabet, 0);
  for (const int s : symbols) ++counts[static_cast<std::size_t>(s)];
  const FrequencyTable table = FrequencyTable::from_counts(counts);
  const std::vector<std::uint8_t> stream =
      rans_encode_interleaved(symbols, table);
  table.ensure_lookup();
  std::vector<int> out(kSymbols);

  const auto race = [&](auto&& kernel) {
    std::uint64_t best = ~0ULL;
    for (int rep = 0; rep < 4; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      LaneCursors c = open_lanes(stream.data(), stream.size());
      kernel(c);
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, static_cast<std::uint64_t>(
                                std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(t1 - t0)
                                    .count()));
    }
    return best;
  };
  const std::uint64_t t_scalar =
      race([&](LaneCursors& c) { decode_scalar(c, table, kSymbols, out.data()); });
  const std::uint64_t t_avx2 =
      race([&](LaneCursors& c) { decode_avx2(c, table, kSymbols, out.data()); });
  return t_avx2 < t_scalar;
}

#endif  // EASZ_RANS_X86_DISPATCH

}  // namespace

std::vector<std::uint8_t> rans_encode_interleaved(
    const std::vector<int>& symbols, const FrequencyTable& table) {
  // Per-lane renormalisation words, recorded in encode order; the stream
  // stores them reversed (decode order).
  std::vector<std::uint16_t> words[kRansLanes];
  const std::size_t est_per_lane =
      static_cast<std::size_t>(table.entropy_bits() *
                               static_cast<double>(symbols.size()) /
                               (16.0 * kRansLanes)) +
      symbols.size() / (8 * kRansLanes) + 8;
  for (auto& w : words) w.reserve(est_per_lane);

  std::uint32_t x[kRansLanes];
  for (auto& s : x) s = kInterleavedLowerBound;

  // Encode in reverse; symbol i belongs to lane i % kRansLanes.
  for (std::size_t i = symbols.size(); i-- > 0;) {
    const int lane = static_cast<int>(i % kRansLanes);
    const int s = symbols[i];
    const std::uint32_t f = table.freq(s);
    if (f == 0) {
      throw std::invalid_argument("rans_encode_interleaved: zero-freq symbol");
    }
    // x_max = ((L >> kProbBits) << 16) * f = f << 18; compare in 64 bits
    // because f = 2^14 makes it exactly 2^32.
    const std::uint64_t x_max = static_cast<std::uint64_t>(f) << 18U;
    if (x[lane] >= x_max) {
      words[lane].push_back(static_cast<std::uint16_t>(x[lane] & 0xFFFFU));
      x[lane] >>= 16U;
    }
    x[lane] = ((x[lane] / f) << FrequencyTable::kProbBits) + (x[lane] % f) +
              table.cum_freq(s);
  }

  std::size_t lane_bytes[kRansLanes];
  std::size_t total = kLaneHeaderBytes;
  for (int l = 0; l < kRansLanes; ++l) {
    lane_bytes[l] = 4 + words[l].size() * 2;
    total += lane_bytes[l];
  }
  std::vector<std::uint8_t> out(total);
  std::size_t off = 0;
  std::uint8_t* body = out.data() + kLaneHeaderBytes;
  for (int l = 0; l < kRansLanes; ++l) {
    if (l > 0) {
      put_u32(out.data() + static_cast<std::size_t>(l - 1) * 4,
              static_cast<std::uint32_t>(off));
    }
    put_u32(body + off, x[l]);
    std::uint8_t* p = body + off + 4;
    for (auto it = words[l].rbegin(); it != words[l].rend(); ++it) {
      p[0] = static_cast<std::uint8_t>(*it & 0xFFU);
      p[1] = static_cast<std::uint8_t>((*it >> 8U) & 0xFFU);
      p += 2;
    }
    off += lane_bytes[l];
  }
  return out;
}

std::vector<int> rans_decode_interleaved(const std::uint8_t* data,
                                         std::size_t size, std::size_t count,
                                         const FrequencyTable& table) {
  LaneCursors c = open_lanes(data, size);
  if (count == 0) return {};
  table.ensure_lookup();
  std::vector<int> out(count);
#ifdef EASZ_RANS_X86_DISPATCH
  static const bool use_avx2 = cpu_has_avx2() && avx2_wins_race();
  if (use_avx2) {
    decode_avx2(c, table, count, out.data());
    return out;
  }
#endif
  decode_scalar(c, table, count, out.data());
  return out;
}

namespace detail {

std::vector<int> rans_decode_interleaved_scalar(const std::uint8_t* data,
                                                std::size_t size,
                                                std::size_t count,
                                                const FrequencyTable& table) {
  LaneCursors c = open_lanes(data, size);
  if (count == 0) return {};
  table.ensure_lookup();
  std::vector<int> out(count);
  decode_scalar(c, table, count, out.data());
  return out;
}

bool rans_interleaved_avx2_available() {
#ifdef EASZ_RANS_X86_DISPATCH
  return cpu_has_avx2();
#else
  return false;
#endif
}

}  // namespace detail

}  // namespace easz::entropy
