// Canonical Huffman coding over small symbol alphabets.
//
// Used by the JPEG-style codec for (run, size) symbols. Code lengths are
// limited to kMaxCodeLength via the standard length-limiting adjustment, and
// only the length table is serialised (canonical reconstruction on decode).
#pragma once

#include <cstdint>
#include <vector>

#include "entropy/bitstream.hpp"

namespace easz::entropy {

class HuffmanCode {
 public:
  static constexpr int kMaxCodeLength = 16;

  /// Builds a length-limited canonical code from symbol frequencies.
  /// Symbols with zero frequency get no code. At least one symbol must have
  /// non-zero frequency.
  static HuffmanCode from_frequencies(const std::vector<std::uint64_t>& freq);

  /// Reconstructs a code from per-symbol lengths (0 = absent).
  static HuffmanCode from_lengths(const std::vector<std::uint8_t>& lengths);

  void encode_symbol(BitWriter& bw, int symbol) const;
  int decode_symbol(BitReader& br) const;

  [[nodiscard]] const std::vector<std::uint8_t>& lengths() const {
    return lengths_;
  }
  [[nodiscard]] int alphabet_size() const {
    return static_cast<int>(lengths_.size());
  }

  /// Serialises the length table (alphabet size assumed known by caller).
  void write_lengths(BitWriter& bw) const;
  static HuffmanCode read_lengths(BitReader& br, int alphabet_size);

 private:
  void build_canonical();

  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
  // Decode acceleration: first code value / symbol index per length.
  std::vector<std::uint32_t> first_code_;
  std::vector<std::int32_t> first_symbol_index_;
  std::vector<std::int32_t> sorted_symbols_;
};

}  // namespace easz::entropy
