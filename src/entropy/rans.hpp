// Byte-wise range asymmetric numeral system (rANS) coder with static
// per-buffer frequency tables.
//
// This is the entropy-coding workhorse for the BPG-style codec and the
// neural codecs' latent bottleneck: callers build a FrequencyTable over the
// symbols they are about to emit (two-pass), serialise the table, then code.
// Symbols are encoded in reverse and decoded forward, the usual rANS trick.
#pragma once

#include <cstdint>
#include <vector>

namespace easz::entropy {

/// Normalised cumulative frequency table over `alphabet_size` symbols.
/// Total probability mass is 2^kProbBits. Every symbol that will be encoded
/// must have non-zero frequency; normalisation guarantees a floor of 1 for
/// observed symbols.
class FrequencyTable {
 public:
  static constexpr int kProbBits = 14;
  static constexpr std::uint32_t kProbScale = 1U << kProbBits;

  /// Builds from raw counts. Symbols with zero count receive zero mass unless
  /// `laplace_floor` is set, which gives every symbol at least one slot
  /// (needed when the decoder may see unseen symbols, e.g. latent coding).
  static FrequencyTable from_counts(const std::vector<std::uint64_t>& counts,
                                    bool laplace_floor = false);

  [[nodiscard]] std::uint32_t freq(int symbol) const { return freq_[symbol]; }
  [[nodiscard]] std::uint32_t cum_freq(int symbol) const { return cum_[symbol]; }
  [[nodiscard]] int alphabet_size() const {
    return static_cast<int>(freq_.size());
  }

  /// Maps a slot value in [0, kProbScale) back to its symbol.
  [[nodiscard]] int symbol_from_slot(std::uint32_t slot) const;

  /// Compact serialisation of the frequency table.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static FrequencyTable deserialize(const std::uint8_t* data, std::size_t size,
                                    std::size_t* consumed);

  /// Shannon entropy of the normalised distribution in bits/symbol.
  [[nodiscard]] double entropy_bits() const;

 private:
  void build_lookup();

  std::vector<std::uint32_t> freq_;
  std::vector<std::uint32_t> cum_;  // cum_[s] = sum of freq_[0..s-1]; size n+1
  std::vector<std::uint16_t> slot_to_symbol_;
};

/// Encodes a symbol sequence with a single static table.
std::vector<std::uint8_t> rans_encode(const std::vector<int>& symbols,
                                      const FrequencyTable& table);

/// Decodes `count` symbols.
std::vector<int> rans_decode(const std::uint8_t* data, std::size_t size,
                             std::size_t count, const FrequencyTable& table);

/// Convenience: builds a table (with Laplace floor), serialises
/// table + payload into one buffer. Decode side reads the table back.
std::vector<std::uint8_t> rans_encode_with_table(const std::vector<int>& symbols,
                                                 int alphabet_size);
std::vector<int> rans_decode_with_table(const std::uint8_t* data,
                                        std::size_t size, std::size_t count);

}  // namespace easz::entropy
