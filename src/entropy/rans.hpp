// Range asymmetric numeral system (rANS) coders with static per-buffer
// frequency tables.
//
// This is the entropy-coding workhorse for the BPG-style codec and the
// neural codecs' latent bottleneck: callers build a FrequencyTable over the
// symbols they are about to emit (two-pass), serialise the table, then code.
// Symbols are encoded in reverse and decoded forward, the usual rANS trick.
//
// Two stream formats share one table format:
//
//  * scalar v1 (`rans_encode` / `rans_decode`): one 32-bit state,
//    byte-at-a-time renormalisation. Every pre-existing bitstream in the
//    wild is v1; the decoder is kept bit-exact forever.
//  * interleaved v2 (`rans_encode_interleaved` / `rans_decode_interleaved`):
//    kRansLanes (4) independent 32-bit states, 16-bit word renormalisation,
//    symbol i owned by lane i % 4. Each lane is its own byte stream; the
//    payload header carries explicit lane offsets so the decoder can point
//    one cursor at each lane and run all four dependency chains in
//    parallel — scalar interleaved on any CPU, AVX2 gather-based where
//    available (runtime-dispatched like tensor::kern). Both paths produce
//    identical symbols; the encoder is deterministic, so v2 streams are
//    byte-stable across machines.
//
// Decode-side lookup is a cache-compact packed layout built lazily on first
// decode (encode-only tables never pay for it): a slot->symbol table with
// one byte per slot (16 KB for the 14-bit probability space; two bytes when
// the alphabet exceeds 256) plus one packed `freq << 16 | cum` uint32 per
// symbol (1 KB at alphabet 256). One load into the 16 KB table + one load
// into the L1-resident packed array replaces the seed's 32 KB uint16 walk
// followed by two more indexed reads. (symbol, freq, cum) per slot cannot
// fit a single uint32 at 14-bit precision — 8 + 14 + 14 = 36 bits — so the
// per-symbol fc array is the compact remainder.
#pragma once

#include <cstdint>
#include <vector>

namespace easz::entropy {

/// Normalised cumulative frequency table over `alphabet_size` symbols.
/// Total probability mass is 2^kProbBits. Every symbol that will be encoded
/// must have non-zero frequency; normalisation guarantees a floor of 1 for
/// observed symbols.
class FrequencyTable {
 public:
  static constexpr int kProbBits = 14;
  static constexpr std::uint32_t kProbScale = 1U << kProbBits;

  /// Builds from raw counts. Symbols with zero count receive zero mass unless
  /// `laplace_floor` is set, which gives every symbol at least one slot
  /// (needed when the decoder may see unseen symbols, e.g. latent coding).
  static FrequencyTable from_counts(const std::vector<std::uint64_t>& counts,
                                    bool laplace_floor = false);

  [[nodiscard]] std::uint32_t freq(int symbol) const { return freq_[symbol]; }
  [[nodiscard]] std::uint32_t cum_freq(int symbol) const { return cum_[symbol]; }
  [[nodiscard]] int alphabet_size() const {
    return static_cast<int>(freq_.size());
  }

  /// Maps a slot value in [0, kProbScale) back to its symbol. Builds the
  /// decode lookup on first use (see ensure_lookup()).
  [[nodiscard]] int symbol_from_slot(std::uint32_t slot) const;

  /// Compact serialisation of the frequency table.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static FrequencyTable deserialize(const std::uint8_t* data, std::size_t size,
                                    std::size_t* consumed);

  /// Shannon entropy of the normalised distribution in bits/symbol.
  [[nodiscard]] double entropy_bits() const;

  /// Builds the packed decode lookup if not built yet. Lazy so encode-only
  /// tables never pay the table-construction cost; the decoders call it once
  /// up front. Idempotent but NOT thread-safe on the first call — build it
  /// before sharing one table object across decoding threads.
  void ensure_lookup() const;
  [[nodiscard]] bool lookup_built() const { return !sym_fc_.empty(); }

  // Hot decode accessors (valid after ensure_lookup()).
  /// One byte per slot; null when the alphabet exceeds 256 (use slot_sym16).
  /// Padded by 4 bytes so 32-bit gathers at any slot stay in bounds.
  [[nodiscard]] const std::uint8_t* slot_sym8() const {
    return slot_sym8_.empty() ? nullptr : slot_sym8_.data();
  }
  [[nodiscard]] const std::uint16_t* slot_sym16() const {
    return slot_sym16_.empty() ? nullptr : slot_sym16_.data();
  }
  /// Per symbol: freq << 16 | cum (freq <= 2^14 and cum < 2^14 both fit).
  [[nodiscard]] const std::uint32_t* sym_fc() const { return sym_fc_.data(); }

 private:
  std::vector<std::uint32_t> freq_;
  std::vector<std::uint32_t> cum_;  // cum_[s] = sum of freq_[0..s-1]; size n+1

  // Lazily-built packed decode lookup (see header comment).
  mutable std::vector<std::uint8_t> slot_sym8_;
  mutable std::vector<std::uint16_t> slot_sym16_;
  mutable std::vector<std::uint32_t> sym_fc_;
};

// ---- scalar v1 stream ------------------------------------------------------

/// Encodes a symbol sequence with a single static table (v1 stream: one
/// state, byte renormalisation). Output capacity is reserved from the
/// table's entropy estimate and bytes are emitted back to front, so the
/// encoder neither reallocates per byte nor reverses the buffer afterwards.
std::vector<std::uint8_t> rans_encode(const std::vector<int>& symbols,
                                      const FrequencyTable& table);

/// Decodes `count` symbols from a v1 stream.
std::vector<int> rans_decode(const std::uint8_t* data, std::size_t size,
                             std::size_t count, const FrequencyTable& table);

/// Convenience: builds a table (no Laplace floor), serialises
/// table + payload into one buffer. Decode side reads the table back.
std::vector<std::uint8_t> rans_encode_with_table(const std::vector<int>& symbols,
                                                 int alphabet_size);
std::vector<int> rans_decode_with_table(const std::uint8_t* data,
                                        std::size_t size, std::size_t count);

// ---- interleaved v2 stream -------------------------------------------------

/// Interleave width of the v2 stream format.
inline constexpr int kRansLanes = 4;

/// Encodes into the interleaved v2 layout:
///   [u32 off1][u32 off2][u32 off3]  byte offsets of lanes 1..3, relative to
///                                   the end of this 12-byte header (lane 0
///                                   starts at 0, lane 3 ends at payload end)
///   lane 0 .. lane 3                each: [u32 initial decoder state]
///                                         [u16 renormalisation words]
/// Symbol i belongs to lane i % kRansLanes. Deterministic byte output.
std::vector<std::uint8_t> rans_encode_interleaved(
    const std::vector<int>& symbols, const FrequencyTable& table);

/// Decodes `count` symbols from an interleaved v2 payload. Dispatches to an
/// AVX2 gather-based kernel when the CPU supports it, else the scalar
/// 4-lane kernel; both produce identical output. Throws std::out_of_range
/// on truncated lanes and std::runtime_error on corrupt lane offsets.
std::vector<int> rans_decode_interleaved(const std::uint8_t* data,
                                         std::size_t size, std::size_t count,
                                         const FrequencyTable& table);

/// Convenience pair mirroring rans_{encode,decode}_with_table but with an
/// interleaved payload.
std::vector<std::uint8_t> rans_encode_interleaved_with_table(
    const std::vector<int>& symbols, int alphabet_size);
std::vector<int> rans_decode_interleaved_with_table(const std::uint8_t* data,
                                                    std::size_t size,
                                                    std::size_t count);

namespace detail {

/// Force-scalar interleaved decode. Test/bench hook: the public entry point
/// dispatches; this pins the portable kernel so byte-exactness between the
/// two can be asserted.
std::vector<int> rans_decode_interleaved_scalar(const std::uint8_t* data,
                                                std::size_t size,
                                                std::size_t count,
                                                const FrequencyTable& table);

/// True when the running CPU dispatches to the AVX2 decode kernel.
bool rans_interleaved_avx2_available();

}  // namespace detail

}  // namespace easz::entropy
