#include "entropy/huffman.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace easz::entropy {
namespace {

struct Node {
  std::uint64_t weight;
  int index;  // < 0 for internal nodes
  int left = -1;
  int right = -1;
};

// Computes unrestricted Huffman code lengths via a pairing heap over indices.
std::vector<std::uint8_t> huffman_lengths(
    const std::vector<std::uint64_t>& freq) {
  const int n = static_cast<int>(freq.size());
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;  // (weight, node id)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (int s = 0; s < n; ++s) {
    if (freq[s] > 0) {
      nodes.push_back({freq[s], s});
      heap.emplace(freq[s], static_cast<int>(nodes.size()) - 1);
    }
  }
  if (heap.empty()) {
    throw std::invalid_argument("huffman: all frequencies are zero");
  }
  if (heap.size() == 1) {
    std::vector<std::uint8_t> lengths(n, 0);
    lengths[nodes[0].index] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, -1, a, b});
    heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
  }

  std::vector<std::uint8_t> lengths(n, 0);
  // Iterative depth-first traversal assigning depths to leaves.
  std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[id];
    if (node.index >= 0) {
      lengths[node.index] = static_cast<std::uint8_t>(std::max(depth, 1));
    } else {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }
  return lengths;
}

// Standard heuristic: repeatedly shorten the deepest over-long leaf by
// deepening the shallowest one until the Kraft sum fits kMaxCodeLength.
void limit_lengths(std::vector<std::uint8_t>& lengths, int max_len) {
  std::vector<int> count(max_len + 1, 0);
  for (auto& len : lengths) {
    if (len == 0) continue;
    if (len > max_len) len = static_cast<std::uint8_t>(max_len);
    ++count[len];
  }
  // Kraft sum in units of 2^-max_len.
  std::int64_t kraft = 0;
  for (int l = 1; l <= max_len; ++l) {
    kraft += static_cast<std::int64_t>(count[l]) << (max_len - l);
  }
  const std::int64_t budget = 1LL << max_len;
  while (kraft > budget) {
    // Find a leaf at the deepest level and move it up; compensate by moving
    // a shallower leaf down one level.
    for (int l = max_len - 1; l >= 1; --l) {
      if (count[l] > 0) {
        --count[l];
        ++count[l + 1];
        kraft -= (1LL << (max_len - l)) - (1LL << (max_len - l - 1));
        break;
      }
    }
  }
  // Re-distribute lengths deterministically: sort symbols by (old length,
  // symbol index) and assign new level counts in order.
  std::vector<int> symbols;
  for (int s = 0; s < static_cast<int>(lengths.size()); ++s) {
    if (lengths[s] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::size_t i = 0;
  for (int l = 1; l <= max_len; ++l) {
    for (int k = 0; k < count[l]; ++k) {
      lengths[symbols[i++]] = static_cast<std::uint8_t>(l);
    }
  }
}

}  // namespace

HuffmanCode HuffmanCode::from_frequencies(
    const std::vector<std::uint64_t>& freq) {
  HuffmanCode code;
  code.lengths_ = huffman_lengths(freq);
  limit_lengths(code.lengths_, kMaxCodeLength);
  code.build_canonical();
  return code;
}

HuffmanCode HuffmanCode::from_lengths(const std::vector<std::uint8_t>& lengths) {
  HuffmanCode code;
  code.lengths_ = lengths;
  code.build_canonical();
  return code;
}

void HuffmanCode::build_canonical() {
  const int n = static_cast<int>(lengths_.size());
  codes_.assign(n, 0);
  sorted_symbols_.clear();

  std::vector<int> count(kMaxCodeLength + 1, 0);
  for (int s = 0; s < n; ++s) {
    if (lengths_[s] > kMaxCodeLength) {
      throw std::invalid_argument("huffman: length exceeds limit");
    }
    if (lengths_[s] > 0) ++count[lengths_[s]];
  }

  first_code_.assign(kMaxCodeLength + 2, 0);
  first_symbol_index_.assign(kMaxCodeLength + 2, 0);
  std::uint32_t code = 0;
  int index = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    first_code_[l] = code;
    first_symbol_index_[l] = index;
    code += static_cast<std::uint32_t>(count[l]);
    index += count[l];
    code <<= 1U;
  }

  std::vector<int> next_index(kMaxCodeLength + 1);
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    next_index[l] = first_symbol_index_[l];
  }
  sorted_symbols_.assign(index, -1);
  for (int s = 0; s < n; ++s) {
    const int l = lengths_[s];
    if (l == 0) continue;
    const int pos = next_index[l]++;
    sorted_symbols_[pos] = s;
    codes_[s] =
        first_code_[l] + static_cast<std::uint32_t>(pos - first_symbol_index_[l]);
  }
}

void HuffmanCode::encode_symbol(BitWriter& bw, int symbol) const {
  const int len = lengths_[symbol];
  if (len == 0) throw std::invalid_argument("huffman: symbol has no code");
  bw.write_bits(codes_[symbol], len);
}

int HuffmanCode::decode_symbol(BitReader& br) const {
  std::uint32_t code = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    code = (code << 1U) | (br.read_bit() ? 1U : 0U);
    const std::int64_t offset =
        static_cast<std::int64_t>(code) - first_code_[l];
    const std::int64_t count =
        (l < kMaxCodeLength ? first_symbol_index_[l + 1]
                            : static_cast<std::int32_t>(sorted_symbols_.size())) -
        first_symbol_index_[l];
    if (offset >= 0 && offset < count) {
      return sorted_symbols_[first_symbol_index_[l] + offset];
    }
  }
  throw std::out_of_range("huffman: invalid code in stream");
}

void HuffmanCode::write_lengths(BitWriter& bw) const {
  for (const std::uint8_t len : lengths_) bw.write_bits(len, 5);
}

HuffmanCode HuffmanCode::read_lengths(BitReader& br, int alphabet_size) {
  std::vector<std::uint8_t> lengths(alphabet_size);
  for (auto& len : lengths) len = static_cast<std::uint8_t>(br.read_bits(5));
  return from_lengths(lengths);
}

}  // namespace easz::entropy
