#include "entropy/rans.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace easz::entropy {
namespace {

constexpr std::uint32_t kRansLowerBound = 1U << 23U;  // v1 renormalisation bound

}  // namespace

FrequencyTable FrequencyTable::from_counts(
    const std::vector<std::uint64_t>& counts, bool laplace_floor) {
  const int n = static_cast<int>(counts.size());
  if (n <= 0 || n > 65536) {
    throw std::invalid_argument("FrequencyTable: bad alphabet size");
  }
  std::vector<std::uint64_t> adjusted(counts);
  if (laplace_floor) {
    for (auto& c : adjusted) c += 1;
  }
  std::uint64_t total = 0;
  for (const auto c : adjusted) total += c;
  if (total == 0) {
    throw std::invalid_argument("FrequencyTable: no symbols observed");
  }

  FrequencyTable table;
  table.freq_.assign(n, 0);
  // Largest-remainder scaling with a floor of 1 for every observed symbol.
  std::uint64_t assigned = 0;
  std::vector<std::pair<double, int>> remainders;
  remainders.reserve(n);
  for (int s = 0; s < n; ++s) {
    if (adjusted[s] == 0) continue;
    const double exact = static_cast<double>(adjusted[s]) *
                         static_cast<double>(kProbScale) /
                         static_cast<double>(total);
    auto q = static_cast<std::uint32_t>(exact);
    if (q == 0) q = 1;
    table.freq_[s] = q;
    assigned += q;
    remainders.emplace_back(exact - static_cast<double>(q), s);
  }
  std::int64_t leftover =
      static_cast<std::int64_t>(kProbScale) - static_cast<std::int64_t>(assigned);
  if (leftover < 0) {
    // The floor-of-1 clamps oversubscribed the budget. Shrink every symbol
    // proportionally to the real budget in ONE pass (the old code re-ran
    // std::max_element per surplus slot, O(n * leftover)); the
    // largest-remainder fixup below settles the residual few slots.
    std::uint64_t shrunk = 0;
    remainders.clear();
    for (int s = 0; s < n; ++s) {
      if (table.freq_[s] == 0) continue;
      const double exact = static_cast<double>(table.freq_[s]) *
                           static_cast<double>(kProbScale) /
                           static_cast<double>(assigned);
      auto q = static_cast<std::uint32_t>(exact);
      if (q == 0) q = 1;
      table.freq_[s] = q;
      shrunk += q;
      remainders.emplace_back(exact - static_cast<double>(q), s);
    }
    leftover = static_cast<std::int64_t>(kProbScale) -
               static_cast<std::int64_t>(shrunk);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t idx = 0;
  while (leftover > 0) {
    // Top up the symbols that lost the most to flooring, cyclically.
    table.freq_[remainders[idx % remainders.size()].second] += 1;
    --leftover;
    ++idx;
  }
  if (leftover < 0) {
    // Proportional shrink can still overshoot by a few slots when many
    // symbols sit at the floor of 1. Take them back from the symbols that
    // kept the most fractional headroom (smallest remainder first), never
    // below 1.
    idx = remainders.size();
    bool progressed = false;
    while (leftover < 0) {
      if (idx == 0) {
        if (!progressed) {
          throw std::runtime_error("FrequencyTable: cannot normalise");
        }
        idx = remainders.size();
        progressed = false;
      }
      --idx;
      auto& f = table.freq_[remainders[idx].second];
      if (f > 1) {
        f -= 1;
        ++leftover;
        progressed = true;
      }
    }
  }

  table.cum_.assign(n + 1, 0);
  for (int s = 0; s < n; ++s) table.cum_[s + 1] = table.cum_[s] + table.freq_[s];
  return table;
}

void FrequencyTable::ensure_lookup() const {
  if (lookup_built()) return;
  const int n = alphabet_size();
  sym_fc_.resize(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    sym_fc_[s] = (freq_[s] << 16U) | cum_[s];
  }
  if (n <= 256) {
    // +4 bytes of padding so 32-bit gathers addressed at any slot never read
    // past the allocation.
    slot_sym8_.assign(kProbScale + 4, 0);
    for (int s = 0; s < n; ++s) {
      for (std::uint32_t k = cum_[s]; k < cum_[s + 1]; ++k) {
        slot_sym8_[k] = static_cast<std::uint8_t>(s);
      }
    }
  } else {
    slot_sym16_.assign(kProbScale + 2, 0);
    for (int s = 0; s < n; ++s) {
      for (std::uint32_t k = cum_[s]; k < cum_[s + 1]; ++k) {
        slot_sym16_[k] = static_cast<std::uint16_t>(s);
      }
    }
  }
}

int FrequencyTable::symbol_from_slot(std::uint32_t slot) const {
  ensure_lookup();
  return slot_sym8_.empty() ? slot_sym16_[slot] : slot_sym8_[slot];
}

std::vector<std::uint8_t> FrequencyTable::serialize() const {
  // Sparse layout: 16-bit alphabet size, presence bitmap, then 16-bit
  // (freq - 1) for present symbols only. kProbBits <= 14 so freq-1 fits,
  // except a degenerate one-symbol table (freq == kProbScale) which still
  // fits in 16 bits as kProbScale - 1.
  std::vector<std::uint8_t> out;
  const auto push16 = [&out](std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xFFU));
    out.push_back(static_cast<std::uint8_t>((v >> 8U) & 0xFFU));
  };
  push16(static_cast<std::uint32_t>(alphabet_size()));
  for (int s = 0; s < alphabet_size(); s += 8) {
    std::uint8_t byte = 0;
    for (int b = 0; b < 8 && s + b < alphabet_size(); ++b) {
      if (freq_[s + b] > 0) byte |= static_cast<std::uint8_t>(1U << b);
    }
    out.push_back(byte);
  }
  for (int s = 0; s < alphabet_size(); ++s) {
    if (freq_[s] > 0) push16(freq_[s] - 1U);
  }
  return out;
}

FrequencyTable FrequencyTable::deserialize(const std::uint8_t* data,
                                           std::size_t size,
                                           std::size_t* consumed) {
  std::size_t pos = 0;
  const auto read16 = [&]() -> std::uint32_t {
    if (pos + 2 > size) throw std::out_of_range("FrequencyTable: truncated");
    const std::uint32_t v = data[pos] | (static_cast<std::uint32_t>(data[pos + 1]) << 8U);
    pos += 2;
    return v;
  };
  const int n = static_cast<int>(read16());
  if (n <= 0 || n > 65536) {
    throw std::runtime_error("FrequencyTable: bad serialized alphabet");
  }
  std::vector<bool> present(n, false);
  for (int s = 0; s < n; s += 8) {
    if (pos >= size) throw std::out_of_range("FrequencyTable: truncated bitmap");
    const std::uint8_t byte = data[pos++];
    for (int b = 0; b < 8 && s + b < n; ++b) {
      present[s + b] = ((byte >> b) & 1U) != 0U;
    }
  }
  FrequencyTable table;
  table.freq_.assign(n, 0);
  for (int s = 0; s < n; ++s) {
    if (present[s]) table.freq_[s] = read16() + 1U;
  }
  table.cum_.assign(n + 1, 0);
  for (int s = 0; s < n; ++s) table.cum_[s + 1] = table.cum_[s] + table.freq_[s];
  if (table.cum_[n] != kProbScale) {
    throw std::runtime_error("FrequencyTable: corrupt table sum");
  }
  if (consumed != nullptr) *consumed = pos;
  return table;
}

double FrequencyTable::entropy_bits() const {
  double h = 0.0;
  for (const auto f : freq_) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / kProbScale;
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<std::uint8_t> rans_encode(const std::vector<int>& symbols,
                                      const FrequencyTable& table) {
  // Reserve from the entropy estimate and emit back to front: the stream is
  // naturally produced last-byte-first, so writing downward from the end of
  // the buffer replaces the old push_back-then-std::reverse.
  std::size_t cap = static_cast<std::size_t>(
                        table.entropy_bits() *
                        static_cast<double>(symbols.size()) / 8.0) +
                    symbols.size() / 16 + 64;
  std::vector<std::uint8_t> buf(cap);
  std::size_t pos = cap;
  const auto emit = [&buf, &pos](std::uint8_t byte) {
    if (pos == 0) {
      // Estimate fell short (pathological table/content mismatch): grow at
      // the front, keeping the already-written tail in place.
      std::vector<std::uint8_t> bigger(buf.size() * 2 + 64);
      std::copy(buf.begin(), buf.end(), bigger.end() - buf.size());
      pos = bigger.size() - buf.size();
      buf.swap(bigger);
    }
    buf[--pos] = byte;
  };

  std::uint32_t state = kRansLowerBound;
  // Encode in reverse so the decoder emits in forward order.
  for (auto it = symbols.rbegin(); it != symbols.rend(); ++it) {
    const int s = *it;
    const std::uint32_t f = table.freq(s);
    if (f == 0) throw std::invalid_argument("rans_encode: zero-freq symbol");
    // Renormalise: stream out low bytes until state fits the encode step.
    const std::uint32_t x_max =
        ((kRansLowerBound >> FrequencyTable::kProbBits) << 8U) * f;
    while (state >= x_max) {
      emit(static_cast<std::uint8_t>(state & 0xFFU));
      state >>= 8U;
    }
    state = ((state / f) << FrequencyTable::kProbBits) + (state % f) +
            table.cum_freq(s);
  }
  // Flush final 4-byte state.
  for (int i = 0; i < 4; ++i) {
    emit(static_cast<std::uint8_t>(state & 0xFFU));
    state >>= 8U;
  }
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(pos));
  return buf;
}

std::vector<int> rans_decode(const std::uint8_t* data, std::size_t size,
                             std::size_t count, const FrequencyTable& table) {
  if (size < 4) throw std::out_of_range("rans_decode: buffer too small");
  table.ensure_lookup();
  std::size_t pos = 0;
  std::uint32_t state = 0;
  for (int i = 0; i < 4; ++i) {
    state = (state << 8U) | data[pos++];
  }

  std::vector<int> symbols(count);
  const std::uint32_t* fc = table.sym_fc();
  const std::uint8_t* sym8 = table.slot_sym8();
  const std::uint16_t* sym16 = table.slot_sym16();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t slot = state & (FrequencyTable::kProbScale - 1U);
    const int s = sym8 != nullptr ? sym8[slot] : sym16[slot];
    symbols[i] = s;
    const std::uint32_t v = fc[s];
    state = (v >> 16U) * (state >> FrequencyTable::kProbBits) + slot -
            (v & 0xFFFFU);
    while (state < kRansLowerBound) {
      if (pos >= size) throw std::out_of_range("rans_decode: truncated stream");
      state = (state << 8U) | data[pos++];
    }
  }
  return symbols;
}

namespace {

FrequencyTable table_from_symbols(const std::vector<int>& symbols,
                                  int alphabet_size, const char* who) {
  std::vector<std::uint64_t> counts(alphabet_size, 0);
  for (const int s : symbols) {
    if (s < 0 || s >= alphabet_size) {
      throw std::invalid_argument(std::string(who) + ": symbol out of range");
    }
    ++counts[s];
  }
  // No Laplace floor: every symbol the decoder will request was observed
  // here, and flooring a wide alphabet wastes table mass and table bytes.
  return FrequencyTable::from_counts(counts, false);
}

}  // namespace

std::vector<std::uint8_t> rans_encode_with_table(const std::vector<int>& symbols,
                                                 int alphabet_size) {
  const FrequencyTable table =
      table_from_symbols(symbols, alphabet_size, "rans_encode_with_table");
  std::vector<std::uint8_t> out = table.serialize();
  const std::vector<std::uint8_t> payload = rans_encode(symbols, table);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<int> rans_decode_with_table(const std::uint8_t* data,
                                        std::size_t size, std::size_t count) {
  std::size_t consumed = 0;
  const FrequencyTable table = FrequencyTable::deserialize(data, size, &consumed);
  return rans_decode(data + consumed, size - consumed, count, table);
}

std::vector<std::uint8_t> rans_encode_interleaved_with_table(
    const std::vector<int>& symbols, int alphabet_size) {
  const FrequencyTable table = table_from_symbols(
      symbols, alphabet_size, "rans_encode_interleaved_with_table");
  std::vector<std::uint8_t> out = table.serialize();
  const std::vector<std::uint8_t> payload =
      rans_encode_interleaved(symbols, table);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<int> rans_decode_interleaved_with_table(const std::uint8_t* data,
                                                    std::size_t size,
                                                    std::size_t count) {
  std::size_t consumed = 0;
  const FrequencyTable table = FrequencyTable::deserialize(data, size, &consumed);
  return rans_decode_interleaved(data + consumed, size - consumed, count, table);
}

}  // namespace easz::entropy
