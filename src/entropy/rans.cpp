#include "entropy/rans.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace easz::entropy {
namespace {

constexpr std::uint32_t kRansLowerBound = 1U << 23U;  // renormalisation bound

}  // namespace

FrequencyTable FrequencyTable::from_counts(
    const std::vector<std::uint64_t>& counts, bool laplace_floor) {
  const int n = static_cast<int>(counts.size());
  if (n <= 0 || n > 65536) {
    throw std::invalid_argument("FrequencyTable: bad alphabet size");
  }
  std::vector<std::uint64_t> adjusted(counts);
  if (laplace_floor) {
    for (auto& c : adjusted) c += 1;
  }
  std::uint64_t total = 0;
  for (const auto c : adjusted) total += c;
  if (total == 0) {
    throw std::invalid_argument("FrequencyTable: no symbols observed");
  }

  FrequencyTable table;
  table.freq_.assign(n, 0);
  // Largest-remainder scaling with a floor of 1 for every observed symbol.
  std::uint64_t assigned = 0;
  std::vector<std::pair<double, int>> remainders;
  remainders.reserve(n);
  for (int s = 0; s < n; ++s) {
    if (adjusted[s] == 0) continue;
    const double exact = static_cast<double>(adjusted[s]) *
                         static_cast<double>(kProbScale) /
                         static_cast<double>(total);
    auto q = static_cast<std::uint32_t>(exact);
    if (q == 0) q = 1;
    table.freq_[s] = q;
    assigned += q;
    remainders.emplace_back(exact - static_cast<double>(q), s);
  }
  // Distribute the leftover (positive or negative) mass.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::int64_t leftover =
      static_cast<std::int64_t>(kProbScale) - static_cast<std::int64_t>(assigned);
  std::size_t idx = 0;
  while (leftover > 0) {
    table.freq_[remainders[idx % remainders.size()].second] += 1;
    --leftover;
    ++idx;
  }
  idx = 0;
  while (leftover < 0) {
    // Shrink the most-frequent symbols, never below 1.
    auto max_it = std::max_element(table.freq_.begin(), table.freq_.end());
    if (*max_it <= 1) {
      throw std::runtime_error("FrequencyTable: cannot normalise");
    }
    *max_it -= 1;
    ++leftover;
  }

  table.cum_.assign(n + 1, 0);
  for (int s = 0; s < n; ++s) table.cum_[s + 1] = table.cum_[s] + table.freq_[s];
  table.build_lookup();
  return table;
}

void FrequencyTable::build_lookup() {
  slot_to_symbol_.assign(kProbScale, 0);
  for (int s = 0; s < alphabet_size(); ++s) {
    for (std::uint32_t k = cum_[s]; k < cum_[s + 1]; ++k) {
      slot_to_symbol_[k] = static_cast<std::uint16_t>(s);
    }
  }
}

int FrequencyTable::symbol_from_slot(std::uint32_t slot) const {
  return slot_to_symbol_[slot];
}

std::vector<std::uint8_t> FrequencyTable::serialize() const {
  // Sparse layout: 16-bit alphabet size, presence bitmap, then 16-bit
  // (freq - 1) for present symbols only. kProbBits <= 14 so freq-1 fits,
  // except a degenerate one-symbol table (freq == kProbScale) which still
  // fits in 16 bits as kProbScale - 1.
  std::vector<std::uint8_t> out;
  const auto push16 = [&out](std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xFFU));
    out.push_back(static_cast<std::uint8_t>((v >> 8U) & 0xFFU));
  };
  push16(static_cast<std::uint32_t>(alphabet_size()));
  for (int s = 0; s < alphabet_size(); s += 8) {
    std::uint8_t byte = 0;
    for (int b = 0; b < 8 && s + b < alphabet_size(); ++b) {
      if (freq_[s + b] > 0) byte |= static_cast<std::uint8_t>(1U << b);
    }
    out.push_back(byte);
  }
  for (int s = 0; s < alphabet_size(); ++s) {
    if (freq_[s] > 0) push16(freq_[s] - 1U);
  }
  return out;
}

FrequencyTable FrequencyTable::deserialize(const std::uint8_t* data,
                                           std::size_t size,
                                           std::size_t* consumed) {
  std::size_t pos = 0;
  const auto read16 = [&]() -> std::uint32_t {
    if (pos + 2 > size) throw std::out_of_range("FrequencyTable: truncated");
    const std::uint32_t v = data[pos] | (static_cast<std::uint32_t>(data[pos + 1]) << 8U);
    pos += 2;
    return v;
  };
  const int n = static_cast<int>(read16());
  if (n <= 0 || n > 65536) {
    throw std::runtime_error("FrequencyTable: bad serialized alphabet");
  }
  std::vector<bool> present(n, false);
  for (int s = 0; s < n; s += 8) {
    if (pos >= size) throw std::out_of_range("FrequencyTable: truncated bitmap");
    const std::uint8_t byte = data[pos++];
    for (int b = 0; b < 8 && s + b < n; ++b) {
      present[s + b] = ((byte >> b) & 1U) != 0U;
    }
  }
  FrequencyTable table;
  table.freq_.assign(n, 0);
  for (int s = 0; s < n; ++s) {
    if (present[s]) table.freq_[s] = read16() + 1U;
  }
  table.cum_.assign(n + 1, 0);
  for (int s = 0; s < n; ++s) table.cum_[s + 1] = table.cum_[s] + table.freq_[s];
  if (table.cum_[n] != kProbScale) {
    throw std::runtime_error("FrequencyTable: corrupt table sum");
  }
  table.build_lookup();
  if (consumed != nullptr) *consumed = pos;
  return table;
}

double FrequencyTable::entropy_bits() const {
  double h = 0.0;
  for (const auto f : freq_) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / kProbScale;
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<std::uint8_t> rans_encode(const std::vector<int>& symbols,
                                      const FrequencyTable& table) {
  std::vector<std::uint8_t> out;
  std::uint32_t state = kRansLowerBound;
  // Encode in reverse so the decoder emits in forward order.
  for (auto it = symbols.rbegin(); it != symbols.rend(); ++it) {
    const int s = *it;
    const std::uint32_t f = table.freq(s);
    if (f == 0) throw std::invalid_argument("rans_encode: zero-freq symbol");
    // Renormalise: stream out low bytes until state fits the encode step.
    const std::uint32_t x_max =
        ((kRansLowerBound >> FrequencyTable::kProbBits) << 8U) * f;
    while (state >= x_max) {
      out.push_back(static_cast<std::uint8_t>(state & 0xFFU));
      state >>= 8U;
    }
    state = ((state / f) << FrequencyTable::kProbBits) + (state % f) +
            table.cum_freq(s);
  }
  // Flush final 4-byte state.
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(state & 0xFFU));
    state >>= 8U;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<int> rans_decode(const std::uint8_t* data, std::size_t size,
                             std::size_t count, const FrequencyTable& table) {
  if (size < 4) throw std::out_of_range("rans_decode: buffer too small");
  std::size_t pos = 0;
  std::uint32_t state = 0;
  for (int i = 0; i < 4; ++i) {
    state = (state << 8U) | data[pos++];
  }

  std::vector<int> symbols(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t slot = state & (FrequencyTable::kProbScale - 1U);
    const int s = table.symbol_from_slot(slot);
    symbols[i] = s;
    state = table.freq(s) * (state >> FrequencyTable::kProbBits) + slot -
            table.cum_freq(s);
    while (state < kRansLowerBound) {
      if (pos >= size) throw std::out_of_range("rans_decode: truncated stream");
      state = (state << 8U) | data[pos++];
    }
  }
  return symbols;
}

std::vector<std::uint8_t> rans_encode_with_table(const std::vector<int>& symbols,
                                                 int alphabet_size) {
  std::vector<std::uint64_t> counts(alphabet_size, 0);
  for (const int s : symbols) {
    if (s < 0 || s >= alphabet_size) {
      throw std::invalid_argument("rans_encode_with_table: symbol out of range");
    }
    ++counts[s];
  }
  // No Laplace floor: every symbol the decoder will request was observed
  // here, and flooring a wide alphabet wastes table mass and table bytes.
  const FrequencyTable table = FrequencyTable::from_counts(counts, false);
  std::vector<std::uint8_t> out = table.serialize();
  const std::vector<std::uint8_t> payload = rans_encode(symbols, table);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<int> rans_decode_with_table(const std::uint8_t* data,
                                        std::size_t size, std::size_t count) {
  std::size_t consumed = 0;
  const FrequencyTable table = FrequencyTable::deserialize(data, size, &consumed);
  return rans_decode(data + consumed, size - consumed, count, table);
}

}  // namespace easz::entropy
