// Adaptive binary arithmetic coding (CABAC-style core).
//
// Complements the static-table rANS coder: probabilities adapt per-context
// as symbols stream through, so no table transmission is needed and skewed,
// locally varying sources (significance flags, sign bits) code near their
// conditional entropy. This is the entropy engine HEVC/BPG actually use;
// exposed here both as a library facility and as an alternative backend for
// experiments on the BPG-style codec.
#pragma once

#include <cstdint>
#include <vector>

namespace easz::entropy {

/// One adaptive binary context: probability state for a single bin kind.
/// Counts-based estimator with exponential forgetting (window ~2^kShift).
class BinContext {
 public:
  /// Probability of the bit being 1, in [kMin, kMax] 16-bit fixed point.
  [[nodiscard]] std::uint16_t prob_one() const { return prob_; }

  /// Updates the estimate after coding `bit`.
  void update(bool bit);

 private:
  static constexpr int kShift = 5;  // adaptation rate
  std::uint16_t prob_ = 1U << 15U;  // start at p(1) = 0.5
};

/// Range encoder over adaptive contexts. Usage:
///   ArithmeticEncoder enc;
///   enc.encode_bit(ctx, bit); ...
///   std::vector<std::uint8_t> out = enc.finish();
class ArithmeticEncoder {
 public:
  void encode_bit(BinContext& ctx, bool bit);

  /// Bypass bin: fixed p = 0.5, no context (signs, escapes).
  void encode_bypass(bool bit);

  /// Unsigned value as `bits` bypass bins, MSB first.
  void encode_bypass_bits(std::uint32_t value, int bits);

  /// Flushes the final range state and returns the bitstream.
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  void renormalize();
  void emit_byte();

  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFU;
  std::vector<std::uint8_t> bytes_;
  // Carry handling: count of 0xFF bytes pending resolution.
  int pending_ff_ = 0;
  std::int32_t cache_ = -1;
};

/// Matching decoder. Contexts must be created and consulted in the same
/// order as on the encode side.
class ArithmeticDecoder {
 public:
  ArithmeticDecoder(const std::uint8_t* data, std::size_t size);
  explicit ArithmeticDecoder(const std::vector<std::uint8_t>& buf)
      : ArithmeticDecoder(buf.data(), buf.size()) {}

  bool decode_bit(BinContext& ctx);
  bool decode_bypass();
  std::uint32_t decode_bypass_bits(int bits);

 private:
  void renormalize();

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::uint64_t value_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFU;
};

/// Convenience: adaptive coding of a bounded non-negative integer sequence
/// with per-magnitude-bin contexts (unary-exp-Golomb binarisation). Used by
/// tests and available to codec experiments.
std::vector<std::uint8_t> arithmetic_encode_values(
    const std::vector<std::uint32_t>& values);
std::vector<std::uint32_t> arithmetic_decode_values(
    const std::vector<std::uint8_t>& bytes, std::size_t count);

}  // namespace easz::entropy
