#include "data/synth.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "image/color.hpp"

namespace easz::data {
namespace {

float smoothstep(float t) { return t * t * (3.0F - 2.0F * t); }

// One octave of value noise: bilinear interpolation of a coarse random grid
// with smoothstep easing.
void add_octave(image::Image& img, int period, float amplitude,
                util::Pcg32& rng) {
  const int gw = img.width() / period + 2;
  const int gh = img.height() / period + 2;
  std::vector<float> grid(static_cast<std::size_t>(gw) * gh);
  for (auto& v : grid) v = rng.next_float();

  for (int y = 0; y < img.height(); ++y) {
    const float fy = static_cast<float>(y) / static_cast<float>(period);
    const int iy = static_cast<int>(fy);
    const float ty = smoothstep(fy - static_cast<float>(iy));
    for (int x = 0; x < img.width(); ++x) {
      const float fx = static_cast<float>(x) / static_cast<float>(period);
      const int ix = static_cast<int>(fx);
      const float tx = smoothstep(fx - static_cast<float>(ix));
      const float v00 = grid[static_cast<std::size_t>(iy) * gw + ix];
      const float v01 = grid[static_cast<std::size_t>(iy) * gw + ix + 1];
      const float v10 = grid[static_cast<std::size_t>(iy + 1) * gw + ix];
      const float v11 = grid[static_cast<std::size_t>(iy + 1) * gw + ix + 1];
      const float v = (1 - ty) * ((1 - tx) * v00 + tx * v01) +
                      ty * ((1 - tx) * v10 + tx * v11);
      img.at(0, y, x) += amplitude * (v - 0.5F);
    }
  }
}

}  // namespace

image::Image value_noise(int width, int height, int base_period, int octaves,
                         util::Pcg32& rng) {
  image::Image img(width, height, 1);
  std::fill(img.data().begin(), img.data().end(), 0.5F);
  float amplitude = 0.5F;
  int period = base_period;
  for (int o = 0; o < octaves && period >= 1; ++o) {
    add_octave(img, period, amplitude, rng);
    amplitude *= 0.55F;
    period = std::max(1, period / 2);
  }
  img.clamp01();
  return img;
}

image::Image synth_photo(int width, int height, util::Pcg32& rng) {
  // Luminance: broad structure + mid detail.
  image::Image luma = value_noise(width, height, std::max(width, height) / 4,
                                  6, rng);

  // Global illumination gradient with a random direction.
  const float angle = rng.next_float() * 6.2831853F;
  const float gx = std::cos(angle);
  const float gy = std::sin(angle);
  const float strength = 0.15F + 0.2F * rng.next_float();
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const float u = (static_cast<float>(x) / width - 0.5F) * gx +
                      (static_cast<float>(y) / height - 0.5F) * gy;
      luma.at(0, y, x) += strength * u;
    }
  }

  // Soft-edged elliptical "objects": shift luminance inside each region.
  const int objects = 3 + rng.next_int(0, 3);
  for (int o = 0; o < objects; ++o) {
    const float cx = rng.next_float() * static_cast<float>(width);
    const float cy = rng.next_float() * static_cast<float>(height);
    const float rx = (0.08F + 0.2F * rng.next_float()) * static_cast<float>(width);
    const float ry = (0.08F + 0.2F * rng.next_float()) * static_cast<float>(height);
    const float delta = (rng.next_float() - 0.5F) * 0.5F;
    const float edge = 0.08F;  // soft-edge width relative to radius
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        const float dx = (static_cast<float>(x) - cx) / rx;
        const float dy = (static_cast<float>(y) - cy) / ry;
        const float d = std::sqrt(dx * dx + dy * dy);
        if (d < 1.0F + edge) {
          const float t = std::clamp((1.0F + edge - d) / edge, 0.0F, 1.0F);
          luma.at(0, y, x) += delta * smoothstep(t);
        }
      }
    }
  }

  // Fine texture field.
  util::Pcg32 tex_rng = rng.split();
  image::Image texture = value_noise(width, height, 3, 2, tex_rng);
  for (std::size_t i = 0; i < luma.data().size(); ++i) {
    luma.data()[i] += 0.06F * (texture.data()[i] - 0.5F);
  }
  luma.clamp01();

  // Chroma: slow-varying low-saturation fields.
  util::Pcg32 chroma_rng = rng.split();
  image::Image cb = value_noise(width, height, std::max(width, height) / 3, 3,
                                chroma_rng);
  image::Image cr = value_noise(width, height, std::max(width, height) / 3, 3,
                                chroma_rng);

  image::Image ycbcr(width, height, 3);
  for (std::size_t i = 0; i < luma.data().size(); ++i) {
    ycbcr.plane(0)[i] = luma.data()[i];
    ycbcr.plane(1)[i] = 0.5F + 0.25F * (cb.data()[i] - 0.5F);
    ycbcr.plane(2)[i] = 0.5F + 0.25F * (cr.data()[i] - 0.5F);
  }
  return image::ycbcr_to_rgb(ycbcr);
}

image::Image synth_cartoon(int width, int height, util::Pcg32& rng) {
  image::Image img(width, height, 3);
  // Background.
  float bg[3] = {rng.next_float(), rng.next_float(), rng.next_float()};
  for (int c = 0; c < 3; ++c) {
    std::fill_n(img.plane(c), img.pixel_count(), 0.3F + 0.4F * bg[c]);
  }
  // Hard-edged rectangles and ellipses.
  const int shapes = 6 + rng.next_int(0, 6);
  for (int s = 0; s < shapes; ++s) {
    const bool ellipse = rng.next_float() < 0.5F;
    const int cx = rng.next_int(0, width - 1);
    const int cy = rng.next_int(0, height - 1);
    const int rx = std::max(4, rng.next_int(width / 16, width / 4));
    const int ry = std::max(4, rng.next_int(height / 16, height / 4));
    const float col[3] = {rng.next_float(), rng.next_float(), rng.next_float()};
    for (int y = std::max(0, cy - ry); y < std::min(height, cy + ry); ++y) {
      for (int x = std::max(0, cx - rx); x < std::min(width, cx + rx); ++x) {
        bool inside = true;
        if (ellipse) {
          const float dx = static_cast<float>(x - cx) / static_cast<float>(rx);
          const float dy = static_cast<float>(y - cy) / static_cast<float>(ry);
          inside = dx * dx + dy * dy <= 1.0F;
        }
        if (inside) {
          for (int c = 0; c < 3; ++c) img.at(c, y, x) = col[c];
        }
      }
    }
  }
  return img;
}

image::Image synth_texture(int width, int height, util::Pcg32& rng) {
  // Oriented sinusoidal weave modulated by noise — fabric-like. The weave
  // frequency is high enough that 4x decimation aliases it, like real
  // fabric/grass detail that super-resolution cannot recover.
  image::Image noise = value_noise(width, height, 8, 4, rng);
  const float theta = rng.next_float() * 3.14159265F;
  const float freq = 0.9F + 0.8F * rng.next_float();
  image::Image img(width, height, 3);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const float u = std::cos(theta) * static_cast<float>(x) +
                      std::sin(theta) * static_cast<float>(y);
      const float v = -std::sin(theta) * static_cast<float>(x) +
                      std::cos(theta) * static_cast<float>(y);
      const float weave =
          0.5F + 0.2F * std::sin(freq * u) * std::sin(freq * v);
      const float value =
          std::clamp(0.6F * weave + 0.4F * noise.at(0, y, x), 0.0F, 1.0F);
      img.at(0, y, x) = value;
      img.at(1, y, x) = std::clamp(value * 0.9F + 0.05F, 0.0F, 1.0F);
      img.at(2, y, x) = std::clamp(value * 0.8F + 0.08F, 0.0F, 1.0F);
    }
  }
  return img;
}

}  // namespace easz::data
