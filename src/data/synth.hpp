// Procedural natural-image synthesis.
//
// Substitute for the Kodak / CLIC / CIFAR-10 corpora (see DESIGN.md §2):
// multi-octave value noise gives the 1/f amplitude spectrum of natural
// images, composited with geometric structures (gradient skies, edges,
// textured regions) so that block codecs, the NSS quality metrics and the
// Easz reconstructor all see realistic local statistics.
#pragma once

#include "image/image.hpp"
#include "util/prng.hpp"

namespace easz::data {

/// Smooth value noise in [0,1] with `octaves` octaves starting at
/// `base_period` pixels, persistence 0.55.
image::Image value_noise(int width, int height, int base_period, int octaves,
                         util::Pcg32& rng);

/// Full synthetic "photograph": layered value-noise luminance, a global
/// illumination gradient, several soft-edged regions (object boundaries) and
/// a fine texture field; expanded to RGB with low-saturation chroma noise.
image::Image synth_photo(int width, int height, util::Pcg32& rng);

/// Piecewise-constant "cartoon" image with sharp edges — a stress case for
/// ringing/blocking artifacts.
image::Image synth_cartoon(int width, int height, util::Pcg32& rng);

/// Fine-grained texture (fabric/grass-like) — a stress case for erase-based
/// reconstruction.
image::Image synth_texture(int width, int height, util::Pcg32& rng);

}  // namespace easz::data
