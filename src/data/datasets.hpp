// Named synthetic datasets standing in for Kodak, CLIC and CIFAR-10.
//
// Each dataset is a deterministic function of (index, seed), so tests,
// benches and examples always see identical images. Default resolutions can
// be scaled down uniformly (scale parameter) to bound CPU runtimes; benches
// print the scale they used.
#pragma once

#include <string>
#include <vector>

#include "image/image.hpp"

namespace easz::data {

struct DatasetSpec {
  std::string name;
  int width = 0;
  int height = 0;
  int count = 0;
};

/// 24 "Kodak-like" 768x512 RGB photos (scale 1.0). The real Kodak set mixes
/// landscape/portrait orientation; we alternate to match.
DatasetSpec kodak_like_spec(float scale = 1.0F);

/// 32 "CLIC-like" higher-resolution photos.
DatasetSpec clic_like_spec(float scale = 1.0F);

/// CIFAR-like 32x32 crops used for pretraining.
DatasetSpec cifar_like_spec();

/// Deterministically generates image `index` of the given dataset.
/// Mixes photo / cartoon / texture content with photo dominating, the way
/// the real corpora do.
image::Image load_image(const DatasetSpec& spec, int index,
                        std::uint64_t seed = 2025);

/// Convenience: all images of a dataset.
std::vector<image::Image> load_all(const DatasetSpec& spec,
                                   std::uint64_t seed = 2025);

}  // namespace easz::data
