#include "data/datasets.hpp"

#include <algorithm>
#include <stdexcept>

#include "data/synth.hpp"
#include "util/prng.hpp"

namespace easz::data {
namespace {

int scaled(int dim, float scale) {
  // Keep dimensions even and at least 32 so 4:2:0 and patchify stay simple.
  const int v = std::max(32, static_cast<int>(static_cast<float>(dim) * scale));
  return v - (v % 2);
}

}  // namespace

DatasetSpec kodak_like_spec(float scale) {
  return {"kodak_like", scaled(768, scale), scaled(512, scale), 24};
}

DatasetSpec clic_like_spec(float scale) {
  return {"clic_like", scaled(1024, scale), scaled(683, scale) + 1, 32};
}

DatasetSpec cifar_like_spec() { return {"cifar_like", 32, 32, 1024}; }

image::Image load_image(const DatasetSpec& spec, int index,
                        std::uint64_t seed) {
  if (index < 0 || index >= spec.count) {
    throw std::invalid_argument("load_image: index out of range");
  }
  // Stable per-image stream: independent of generation order.
  util::Pcg32 rng(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)),
                  0xd1b54a32d192ed03ULL ^ index);

  // Alternate orientation like Kodak's portrait shots.
  int w = spec.width;
  int h = spec.height;
  if (spec.name == "kodak_like" && index % 5 == 4) std::swap(w, h);

  const int kind = index % 8;
  if (kind == 6) return synth_cartoon(w, h, rng);
  if (kind == 7) return synth_texture(w, h, rng);
  return synth_photo(w, h, rng);
}

std::vector<image::Image> load_all(const DatasetSpec& spec, std::uint64_t seed) {
  std::vector<image::Image> out;
  out.reserve(spec.count);
  for (int i = 0; i < spec.count; ++i) out.push_back(load_image(spec, i, seed));
  return out;
}

}  // namespace easz::data
