// Factorized entropy bottleneck for neural codecs.
//
// Latents are uniformly quantised (step = quality knob) and entropy-coded
// with rANS using a per-buffer frequency table over the clamped symbol range
// (Laplace floor so out-of-range decodes cannot occur). This is the
// practical core of Ballé-style factorized priors: a static learned prior is
// replaced by per-image histograms, which transmits a small table instead of
// carrying model-side CDFs — same code path, no pretrained prior needed.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace easz::neural_codec {

struct LatentCode {
  std::vector<std::uint8_t> bytes;
  tensor::Shape shape;  ///< latent tensor shape for decode
};

/// Quantises `latents` with `step` and entropy-codes the symbols.
LatentCode encode_latents(const tensor::Tensor& latents, float step);

/// Inverse: reconstructs the dequantised latent tensor.
tensor::Tensor decode_latents(const LatentCode& code, float step);

/// Empirical bits-per-latent of a quantised tensor (diagnostic).
double latent_entropy_bits(const tensor::Tensor& latents, float step);

}  // namespace easz::neural_codec
