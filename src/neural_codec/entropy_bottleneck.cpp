#include "neural_codec/entropy_bottleneck.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "entropy/rans.hpp"

namespace easz::neural_codec {
namespace {

constexpr int kMaxMagnitude = 255;  // clamped symbol range: [-255, 255]
constexpr int kAlphabet = 2 * kMaxMagnitude + 2;  // + escape-free headroom

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& data, std::size_t& pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
  }
  return v;
}

}  // namespace

LatentCode encode_latents(const tensor::Tensor& latents, float step) {
  if (step <= 0.0F) throw std::invalid_argument("encode_latents: step <= 0");
  std::vector<int> symbols;
  symbols.reserve(latents.numel());
  for (const float v : latents.data()) {
    int q = static_cast<int>(std::lround(v / step));
    q = std::clamp(q, -kMaxMagnitude, kMaxMagnitude);
    symbols.push_back(q + kMaxMagnitude);
  }
  LatentCode code;
  code.shape = latents.shape();
  append_u32(code.bytes, static_cast<std::uint32_t>(symbols.size()));
  const auto payload = entropy::rans_encode_with_table(symbols, kAlphabet);
  code.bytes.insert(code.bytes.end(), payload.begin(), payload.end());
  return code;
}

tensor::Tensor decode_latents(const LatentCode& code, float step) {
  std::size_t pos = 0;
  const std::uint32_t count = read_u32(code.bytes, pos);
  const std::vector<int> symbols = entropy::rans_decode_with_table(
      code.bytes.data() + pos, code.bytes.size() - pos, count);
  tensor::Tensor out(code.shape);
  if (out.numel() != symbols.size()) {
    throw std::runtime_error("decode_latents: symbol count mismatch");
  }
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    out.data()[i] = static_cast<float>(symbols[i] - kMaxMagnitude) * step;
  }
  return out;
}

double latent_entropy_bits(const tensor::Tensor& latents, float step) {
  std::vector<std::uint64_t> hist(kAlphabet, 0);
  for (const float v : latents.data()) {
    int q = static_cast<int>(std::lround(v / step));
    q = std::clamp(q, -kMaxMagnitude, kMaxMagnitude);
    ++hist[q + kMaxMagnitude];
  }
  const double n = static_cast<double>(latents.numel());
  double bits = 0.0;
  for (const auto h : hist) {
    if (h == 0) continue;
    const double p = static_cast<double>(h) / n;
    bits -= p * std::log2(p);
  }
  return bits;
}

}  // namespace easz::neural_codec
