// Convolutional neural codecs standing in for MBT (Minnen et al. 2018) and
// Cheng-anchor (Cheng et al. 2020) — see DESIGN.md §2.
//
// Both are conv autoencoders with a factorized entropy bottleneck:
//   MBT-lite:   2 stride-2 conv stages (x4 downsample), moderate width.
//   Cheng-lite: 3 stride-2 conv stages (x8 downsample), wider, one extra
//               residual conv per stage — deeper/heavier like the original
//               attention+GMM design relative to MBT.
// Rate control: the latent quantisation step maps from the [1,100] quality
// knob. encode_flops()/model_bytes() report the PAPER-SCALE architectures'
// analytic cost (not the lite networks'), so the testbed reproduces the
// paper's latency/size gaps while the lite networks exercise the real
// encode–entropy-code–decode code path.
#pragma once

#include <memory>

#include "codec/codec.hpp"
#include "nn/adam.hpp"
#include "nn/gdn.hpp"
#include "nn/module.hpp"

namespace easz::neural_codec {

struct ConvCodecSpec {
  std::string name;
  int stages = 2;           ///< stride-2 conv stages
  int width = 12;           ///< hidden channels of the lite network
  int latent_channels = 8;  ///< bottleneck channels
  bool residual_stage = false;  ///< Cheng-style extra conv per stage
  bool use_gdn = false;  ///< GDN/IGDN activations (Ballé-faithful) instead of
                         ///< leaky ReLU between stages
  // Paper-scale analytic cost model (per pixel) used by the testbed:
  double paper_encode_flops_per_px = 0.0;
  double paper_model_bytes = 0.0;
};

ConvCodecSpec mbt_lite_spec();
ConvCodecSpec cheng_lite_spec();

/// Trainable conv autoencoder codec.
class ConvAutoencoderCodec final : public codec::ImageCodec, public nn::Module {
 public:
  ConvAutoencoderCodec(ConvCodecSpec spec, int quality, std::uint64_t seed);

  /// Short self-supervised pretraining on synthetic patches (quantisation
  /// noise injected for robustness). Deterministic per seed.
  void pretrain(int steps, int patch = 48, int batch = 2);

  [[nodiscard]] std::string name() const override { return spec_.name; }
  [[nodiscard]] codec::Compressed encode(const image::Image& img) const override;
  [[nodiscard]] image::Image decode(const codec::Compressed& c) const override;
  void set_quality(int quality) override;
  [[nodiscard]] int quality() const override { return quality_; }
  [[nodiscard]] double encode_flops(int width, int height) const override;
  [[nodiscard]] double decode_flops(int width, int height) const override;
  [[nodiscard]] std::size_t model_bytes() const override;

  /// Lite-network forward passes (shared by encode/decode/pretrain).
  [[nodiscard]] tensor::Tensor encode_net(const tensor::Tensor& x) const;
  [[nodiscard]] tensor::Tensor decode_net(const tensor::Tensor& z) const;

  [[nodiscard]] int downsample_factor() const { return 1 << spec_.stages; }

 private:
  [[nodiscard]] float quant_step() const;

  ConvCodecSpec spec_;
  int quality_;
  // Encoder/decoder parameter tensors, stage by stage.
  struct Stage {
    tensor::Tensor w;
    tensor::Tensor b;
    tensor::Tensor res_w;  // defined only when residual_stage
    tensor::Tensor res_b;
  };
  std::vector<Stage> enc_;
  std::vector<Stage> dec_;
  // GDN (encoder) / IGDN (decoder) after each non-final stage when enabled.
  std::vector<std::unique_ptr<nn::Gdn>> enc_gdn_;
  std::vector<std::unique_ptr<nn::Gdn>> dec_gdn_;
};

/// Process-wide pretrained instances (trained once per process, then reused
/// by tests/benches — pretraining is deterministic).
ConvAutoencoderCodec& shared_mbt_lite();
ConvAutoencoderCodec& shared_cheng_lite();

}  // namespace easz::neural_codec
