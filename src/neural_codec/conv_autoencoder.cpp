#include "neural_codec/conv_autoencoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/synth.hpp"
#include "neural_codec/entropy_bottleneck.hpp"
#include "tensor/ops.hpp"

namespace easz::neural_codec {
namespace {

constexpr int kKernel = 3;
constexpr int kPad = 1;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& data, std::size_t& pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
  }
  return v;
}

tensor::Tensor image_to_nchw(const image::Image& img) {
  tensor::Tensor t({1, img.channels(), img.height(), img.width()});
  std::copy(img.data().begin(), img.data().end(), t.data().begin());
  return t;
}

image::Image nchw_to_image(const tensor::Tensor& t) {
  image::Image img(t.dim(3), t.dim(2), t.dim(1));
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    img.data()[i] = std::clamp(t.data()[i], 0.0F, 1.0F);
  }
  return img;
}

}  // namespace

ConvCodecSpec mbt_lite_spec() {
  ConvCodecSpec s;
  s.name = "mbt";
  s.stages = 2;
  s.width = 12;
  s.latent_channels = 8;
  s.residual_stage = false;
  // Minnen 2018: 4 conv stages of 192ch 5x5 + hyperprior + autoregressive
  // context model. ~ 450 kFLOPs/px encode; ~98 MB of fp32 weights (~24.6 M
  // params with context model).
  s.paper_encode_flops_per_px = 450e3;
  s.paper_model_bytes = 98.0 * 1024 * 1024;
  return s;
}

ConvCodecSpec cheng_lite_spec() {
  ConvCodecSpec s;
  s.name = "cheng";
  s.stages = 3;
  s.width = 16;
  s.latent_channels = 10;
  s.residual_stage = true;
  // Cheng 2020 anchor: residual blocks + attention + GMM entropy model;
  // heavier encode (~700 kFLOPs/px) and ~120 MB fp32.
  s.paper_encode_flops_per_px = 700e3;
  s.paper_model_bytes = 120.0 * 1024 * 1024;
  return s;
}

ConvAutoencoderCodec::ConvAutoencoderCodec(ConvCodecSpec spec, int quality,
                                           std::uint64_t seed)
    : spec_(std::move(spec)), quality_(std::clamp(quality, 1, 100)) {
  util::Pcg32 rng(seed);
  const auto make_stage = [&](int cin, int cout, bool transposed) {
    Stage st;
    const float stddev =
        1.0F / std::sqrt(static_cast<float>(cin) * kKernel * kKernel);
    if (transposed) {
      st.w = register_param(tensor::Tensor::randn({cin, cout, kKernel + 1, kKernel + 1},
                                                  rng, stddev, true));
    } else {
      st.w = register_param(tensor::Tensor::randn({cout, cin, kKernel, kKernel},
                                                  rng, stddev, true));
    }
    st.b = register_param(tensor::Tensor({cout}, true));
    if (spec_.residual_stage) {
      st.res_w = register_param(tensor::Tensor::randn(
          {cout, cout, kKernel, kKernel}, rng, stddev, true));
      st.res_b = register_param(tensor::Tensor({cout}, true));
    }
    return st;
  };

  int cin = 3;
  for (int s = 0; s < spec_.stages; ++s) {
    const int cout =
        s == spec_.stages - 1 ? spec_.latent_channels : spec_.width;
    enc_.push_back(make_stage(cin, cout, false));
    if (spec_.use_gdn && s + 1 < spec_.stages) {
      enc_gdn_.push_back(std::make_unique<nn::Gdn>(cout, false, rng));
      absorb(*enc_gdn_.back());
    }
    cin = cout;
  }
  cin = spec_.latent_channels;
  for (int s = 0; s < spec_.stages; ++s) {
    const int cout = s == spec_.stages - 1 ? 3 : spec_.width;
    dec_.push_back(make_stage(cin, cout, true));
    if (spec_.use_gdn && s + 1 < spec_.stages) {
      dec_gdn_.push_back(std::make_unique<nn::Gdn>(cout, true, rng));
      absorb(*dec_gdn_.back());
    }
    cin = cout;
  }
}

tensor::Tensor ConvAutoencoderCodec::encode_net(const tensor::Tensor& x) const {
  tensor::Tensor h = x;
  for (std::size_t s = 0; s < enc_.size(); ++s) {
    h = tensor::conv2d(h, enc_[s].w, enc_[s].b, /*stride=*/2, kPad);
    if (s + 1 < enc_.size()) {
      h = spec_.use_gdn ? enc_gdn_[s]->forward(h) : tensor::leaky_relu(h, 0.1F);
    }
    if (spec_.residual_stage) {
      tensor::Tensor r =
          tensor::conv2d(h, enc_[s].res_w, enc_[s].res_b, 1, kPad);
      h = tensor::add(h, tensor::leaky_relu(r, 0.1F));
    }
  }
  return h;
}

tensor::Tensor ConvAutoencoderCodec::decode_net(const tensor::Tensor& z) const {
  tensor::Tensor h = z;
  for (std::size_t s = 0; s < dec_.size(); ++s) {
    h = tensor::conv2d_transpose(h, dec_[s].w, dec_[s].b, /*stride=*/2, kPad);
    if (s + 1 < dec_.size()) {
      h = spec_.use_gdn ? dec_gdn_[s]->forward(h) : tensor::leaky_relu(h, 0.1F);
    }
    if (spec_.residual_stage && s + 1 < dec_.size()) {
      tensor::Tensor r =
          tensor::conv2d(h, dec_[s].res_w, dec_[s].res_b, 1, kPad);
      h = tensor::add(h, tensor::leaky_relu(r, 0.1F));
    }
  }
  return tensor::sigmoid(h);
}

void ConvAutoencoderCodec::pretrain(int steps, int patch, int batch) {
  util::Pcg32 rng(0xC0DEC ^ static_cast<std::uint64_t>(spec_.stages));
  nn::Adam opt(parameters(), {.lr = 2e-3F, .weight_decay = 0.0F});
  const float step_noise = quant_step();
  for (int s = 0; s < steps; ++s) {
    tensor::Tensor x({batch, 3, patch, patch});
    for (int b = 0; b < batch; ++b) {
      const image::Image img = data::synth_photo(patch, patch, rng);
      std::copy(img.data().begin(), img.data().end(),
                x.data().begin() + static_cast<std::ptrdiff_t>(b) *
                                       static_cast<std::ptrdiff_t>(img.data().size()));
    }
    tensor::Tensor z = encode_net(x);
    // Quantisation-noise injection (straight-through surrogate).
    tensor::Tensor noise(z.shape());
    for (auto& v : noise.data()) {
      v = (rng.next_float() - 0.5F) * step_noise;
    }
    z = tensor::add(z, noise);
    const tensor::Tensor recon = decode_net(z);
    tensor::Tensor loss = tensor::mse_loss(recon, x);
    loss.backward();
    opt.step();
  }
}

float ConvAutoencoderCodec::quant_step() const {
  // quality 1 -> very coarse latents, 100 -> fine. Latents live at roughly
  // unit scale after training, so steps span [0.03, 3].
  const float t = static_cast<float>(quality_ - 1) / 99.0F;
  return 3.0F * std::pow(0.01F, t);
}

void ConvAutoencoderCodec::set_quality(int quality) {
  quality_ = std::clamp(quality, 1, 100);
}

codec::Compressed ConvAutoencoderCodec::encode(const image::Image& img) const {
  // Pad to a multiple of the downsample factor.
  const int f = downsample_factor();
  const int pw = (img.width() + f - 1) / f * f;
  const int ph = (img.height() + f - 1) / f * f;
  const image::Image padded = img.pad_to(pw, ph);

  const tensor::Tensor z = encode_net(image_to_nchw(padded));
  const LatentCode code = encode_latents(z.detach(), quant_step());

  codec::Compressed out;
  append_u32(out.bytes, static_cast<std::uint32_t>(img.width()));
  append_u32(out.bytes, static_cast<std::uint32_t>(img.height()));
  append_u32(out.bytes, static_cast<std::uint32_t>(z.dim(2)));
  append_u32(out.bytes, static_cast<std::uint32_t>(z.dim(3)));
  out.bytes.push_back(static_cast<std::uint8_t>(quality_));
  out.bytes.insert(out.bytes.end(), code.bytes.begin(), code.bytes.end());
  out.width = img.width();
  out.height = img.height();
  out.channels = img.channels();
  return out;
}

image::Image ConvAutoencoderCodec::decode(const codec::Compressed& c) const {
  std::size_t pos = 0;
  const int width = static_cast<int>(read_u32(c.bytes, pos));
  const int height = static_cast<int>(read_u32(c.bytes, pos));
  const int zh = static_cast<int>(read_u32(c.bytes, pos));
  const int zw = static_cast<int>(read_u32(c.bytes, pos));
  const int q = c.bytes[pos++];

  LatentCode code;
  code.bytes.assign(c.bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                    c.bytes.end());
  code.shape = {1, spec_.latent_channels, zh, zw};
  // Reproduce the encoder's step for this bitstream's quality.
  ConvCodecSpec spec_copy = spec_;
  (void)spec_copy;
  const float t = static_cast<float>(q - 1) / 99.0F;
  const float step = 3.0F * std::pow(0.01F, t);
  const tensor::Tensor z = decode_latents(code, step);
  const tensor::Tensor recon = decode_net(z);
  image::Image img = nchw_to_image(recon);
  if (img.width() != width || img.height() != height) {
    img = img.crop(0, 0, width, height);
  }
  return img;
}

double ConvAutoencoderCodec::encode_flops(int width, int height) const {
  return spec_.paper_encode_flops_per_px * width * height;
}

double ConvAutoencoderCodec::decode_flops(int width, int height) const {
  return 0.8 * spec_.paper_encode_flops_per_px * width * height;
}

std::size_t ConvAutoencoderCodec::model_bytes() const {
  return static_cast<std::size_t>(spec_.paper_model_bytes);
}

ConvAutoencoderCodec& shared_mbt_lite() {
  static ConvAutoencoderCodec* kInstance = [] {
    auto* c = new ConvAutoencoderCodec(mbt_lite_spec(), 50, 0x3B7ULL);
    c->pretrain(60);
    return c;
  }();
  return *kInstance;
}

ConvAutoencoderCodec& shared_cheng_lite() {
  static ConvAutoencoderCodec* kInstance = [] {
    auto* c = new ConvAutoencoderCodec(cheng_lite_spec(), 50, 0xC4E6ULL);
    c->pretrain(60);
    return c;
  }();
  return *kInstance;
}

}  // namespace easz::neural_codec
