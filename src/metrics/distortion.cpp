#include "metrics/distortion.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "image/resize.hpp"

namespace easz::metrics {
namespace {

void check_match(const image::Image& a, const image::Image& b) {
  if (a.width() != b.width() || a.height() != b.height() ||
      a.channels() != b.channels()) {
    throw std::invalid_argument("metrics: image shape mismatch");
  }
}

// 11-tap Gaussian (sigma = 1.5), normalised.
const std::vector<float>& gaussian11() {
  static const std::vector<float> kKernel = [] {
    std::vector<float> k(11);
    float sum = 0.0F;
    for (int i = 0; i < 11; ++i) {
      const float x = static_cast<float>(i - 5);
      k[i] = std::exp(-x * x / (2.0F * 1.5F * 1.5F));
      sum += k[i];
    }
    for (auto& v : k) v /= sum;
    return k;
  }();
  return kKernel;
}

image::Image blur11(const image::Image& img) {
  const auto& k = gaussian11();
  image::Image tmp(img.width(), img.height(), 1);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      float acc = 0.0F;
      for (int i = -5; i <= 5; ++i) {
        acc += k[i + 5] * img.at_clamped(0, y, x + i);
      }
      tmp.at(0, y, x) = acc;
    }
  }
  image::Image out(img.width(), img.height(), 1);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      float acc = 0.0F;
      for (int i = -5; i <= 5; ++i) {
        acc += k[i + 5] * tmp.at_clamped(0, y + i, x);
      }
      out.at(0, y, x) = acc;
    }
  }
  return out;
}

struct SsimParts {
  double mean_ssim = 0.0;      // luminance * contrast * structure
  double mean_cs = 0.0;        // contrast * structure only (for MS-SSIM)
};

SsimParts ssim_parts(const image::Image& ga, const image::Image& gb) {
  constexpr double kC1 = 0.01 * 0.01;
  constexpr double kC2 = 0.03 * 0.03;

  const image::Image mu_a = blur11(ga);
  const image::Image mu_b = blur11(gb);

  image::Image a2(ga.width(), ga.height(), 1);
  image::Image b2(ga.width(), ga.height(), 1);
  image::Image ab(ga.width(), ga.height(), 1);
  for (std::size_t i = 0; i < ga.data().size(); ++i) {
    a2.data()[i] = ga.data()[i] * ga.data()[i];
    b2.data()[i] = gb.data()[i] * gb.data()[i];
    ab.data()[i] = ga.data()[i] * gb.data()[i];
  }
  const image::Image s_a2 = blur11(a2);
  const image::Image s_b2 = blur11(b2);
  const image::Image s_ab = blur11(ab);

  SsimParts parts;
  const std::size_t n = ga.data().size();
  for (std::size_t i = 0; i < n; ++i) {
    const double ma = mu_a.data()[i];
    const double mb = mu_b.data()[i];
    const double va = std::max(0.0, static_cast<double>(s_a2.data()[i]) - ma * ma);
    const double vb = std::max(0.0, static_cast<double>(s_b2.data()[i]) - mb * mb);
    const double cov = s_ab.data()[i] - ma * mb;
    const double lum = (2.0 * ma * mb + kC1) / (ma * ma + mb * mb + kC1);
    const double cs = (2.0 * cov + kC2) / (va + vb + kC2);
    parts.mean_ssim += lum * cs;
    parts.mean_cs += cs;
  }
  parts.mean_ssim /= static_cast<double>(n);
  parts.mean_cs /= static_cast<double>(n);
  return parts;
}

}  // namespace

double mse(const image::Image& a, const image::Image& b) {
  check_match(a, b);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.data().size());
}

double psnr(const image::Image& a, const image::Image& b) {
  const double m = mse(a, b);
  if (m <= 1e-12) return 99.0;
  return std::min(99.0, 10.0 * std::log10(1.0 / m));
}

double ssim(const image::Image& a, const image::Image& b) {
  check_match(a, b);
  return ssim_parts(a.to_gray(), b.to_gray()).mean_ssim;
}

double ms_ssim(const image::Image& a, const image::Image& b) {
  check_match(a, b);
  static constexpr std::array<double, 5> kWeights = {0.0448, 0.2856, 0.3001,
                                                     0.2363, 0.1333};
  image::Image ga = a.to_gray();
  image::Image gb = b.to_gray();

  // Use as many scales as the resolution supports (>= 16 px after halving).
  int scales = 5;
  {
    int short_side = std::min(ga.width(), ga.height());
    int s = 1;
    while (s < 5 && short_side / 2 >= 16) {
      ++s;
      short_side /= 2;
    }
    scales = s;
  }
  double weight_sum = 0.0;
  for (int s = 0; s < scales; ++s) weight_sum += kWeights[s];

  double result = 1.0;
  for (int s = 0; s < scales; ++s) {
    const SsimParts parts = ssim_parts(ga, gb);
    const double w = kWeights[s] / weight_sum;
    if (s == scales - 1) {
      result *= std::pow(std::max(parts.mean_ssim, 1e-6), w);
    } else {
      result *= std::pow(std::max(parts.mean_cs, 1e-6), w);
      ga = image::resize(ga, ga.width() / 2, ga.height() / 2,
                         image::Filter::kBilinear);
      gb = image::resize(gb, gb.width() / 2, gb.height() / 2,
                         image::Filter::kBilinear);
    }
  }
  return result;
}

}  // namespace easz::metrics
