// Natural scene statistics features (BRISQUE/NIQE family).
//
// MSCN coefficients (locally mean-subtracted, contrast-normalised samples)
// of natural images follow a generalised Gaussian; compression artifacts
// perturb that distribution. Per scale we extract 18 features — 2 from a GGD
// fit of the MSCN map and 4 from AGGD fits of each of the 4 orientation
// pairwise products — at 2 scales: a 36-D descriptor per image, exactly the
// BRISQUE feature set. The no-reference proxies in noref.hpp score images by
// distance from pristine statistics in this space.
#pragma once

#include <array>

#include "image/image.hpp"

namespace easz::metrics {

/// Generalised Gaussian fit (moment matching).
struct GgdFit {
  double alpha = 2.0;  ///< shape (2 = Gaussian, smaller = heavier tails)
  double sigma = 1.0;  ///< scale
};
GgdFit fit_ggd(const std::vector<float>& samples);

/// Asymmetric GGD fit.
struct AggdFit {
  double alpha = 2.0;
  double mean = 0.0;
  double sigma_l = 1.0;
  double sigma_r = 1.0;
};
AggdFit fit_aggd(const std::vector<float>& samples);

/// MSCN transform of the luma plane (7x7 Gaussian local stats, C = 1/255).
image::Image mscn(const image::Image& gray);

constexpr int kNssFeatureCount = 36;
using NssFeatures = std::array<double, kNssFeatureCount>;

/// The full 2-scale, 18-per-scale feature vector.
NssFeatures nss_features(const image::Image& img);

/// Mean gradient magnitude of the luma plane — a simple sharpness cue used
/// by the Pi/TReS proxies.
double sharpness(const image::Image& img);

}  // namespace easz::metrics
