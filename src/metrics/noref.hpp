// No-reference quality proxies for BRISQUE, Pi and TReS (see DESIGN.md §2).
//
// The originals need pretrained regressors (BRISQUE: SVR; TReS: transformer;
// Pi blends NIQE with the learned Ma score). The proxies here keep the part
// that drives the paper's comparisons — monotone response to compression
// artifacts — by measuring NSS-feature deviation from pristine statistics
// calibrated on an uncompressed synthetic corpus:
//
//   brisque_proxy : 0 (pristine) .. ~100 (destroyed), lower better
//   pi_proxy      : ~2 .. ~10 scale like Pi, lower better
//   tres_proxy    : ~100 (pristine) .. low, higher better
//
// All three are deterministic functions of the image and the calibration.
#pragma once

#include "metrics/nss.hpp"

namespace easz::metrics {

/// Pristine-corpus statistics: per-feature mean and standard deviation of
/// the 36-D NSS descriptor plus mean sharpness.
struct NoRefCalibration {
  NssFeatures mean{};
  NssFeatures stddev{};
  double mean_sharpness = 0.0;
  /// Mean raw deviation of a held-out pristine set; nss_deviation divides by
  /// this so pristine images score ~1 regardless of corpus granularity.
  double deviation_scale = 1.0;

  /// Calibrates on `count` pristine synthetic photos (deterministic seed).
  static NoRefCalibration from_synthetic_corpus(int count = 12,
                                                int width = 256,
                                                int height = 192);

  /// Process-wide lazily built default calibration.
  static const NoRefCalibration& standard();
};

/// Normalised NSS-space deviation (mean absolute z-score) — the shared core
/// of all three proxies.
double nss_deviation(const image::Image& img, const NoRefCalibration& cal);

double brisque_proxy(const image::Image& img,
                     const NoRefCalibration& cal = NoRefCalibration::standard());
double pi_proxy(const image::Image& img,
                const NoRefCalibration& cal = NoRefCalibration::standard());
double tres_proxy(const image::Image& img,
                  const NoRefCalibration& cal = NoRefCalibration::standard());

}  // namespace easz::metrics
