// Full-reference distortion metrics: MSE, PSNR, SSIM, MS-SSIM.
//
// SSIM follows Wang et al. 2004 (11x11 Gaussian window, K1=0.01, K2=0.03);
// MS-SSIM uses the standard 5-scale weights. Color images are evaluated on
// the BT.601 luma channel, the common convention.
#pragma once

#include "image/image.hpp"

namespace easz::metrics {

/// Mean squared error over all samples (images must match in shape).
double mse(const image::Image& a, const image::Image& b);

/// Peak signal-to-noise ratio in dB for unit-range images.
/// Returns +inf-ish (capped at 99 dB) for identical images.
double psnr(const image::Image& a, const image::Image& b);

/// Structural similarity on the luma plane, in [-1, 1].
double ssim(const image::Image& a, const image::Image& b);

/// Multi-scale SSIM (5 scales, Wang et al. 2003 weights). Images must be at
/// least 176 pixels on the short side for all 5 scales; smaller inputs use
/// fewer scales with renormalised weights.
double ms_ssim(const image::Image& a, const image::Image& b);

}  // namespace easz::metrics
