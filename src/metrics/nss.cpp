#include "metrics/nss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "image/resize.hpp"

namespace easz::metrics {
namespace {

// r(alpha) = Gamma(1/a)Gamma(3/a)/Gamma(2/a)^2, precomputed on a grid for the
// inverse lookup both GGD and AGGD moment estimators need.
struct AlphaTable {
  std::vector<double> alpha;
  std::vector<double> r;
};

const AlphaTable& alpha_table() {
  static const AlphaTable kTable = [] {
    AlphaTable t;
    for (double a = 0.2; a <= 10.0; a += 0.001) {
      t.alpha.push_back(a);
      t.r.push_back(std::exp(std::lgamma(1.0 / a) + std::lgamma(3.0 / a) -
                             2.0 * std::lgamma(2.0 / a)));
    }
    return t;
  }();
  return kTable;
}

double solve_alpha(double rho) {
  const AlphaTable& t = alpha_table();
  // r(alpha) is monotonically decreasing; binary search the closest entry.
  std::size_t lo = 0;
  std::size_t hi = t.r.size() - 1;
  if (rho >= t.r[lo]) return t.alpha[lo];
  if (rho <= t.r[hi]) return t.alpha[hi];
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (t.r[mid] > rho) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return t.alpha[(t.r[lo] - rho < rho - t.r[hi]) ? hi : lo];
}

const std::vector<float>& gaussian7() {
  static const std::vector<float> kKernel = [] {
    std::vector<float> k(7);
    float sum = 0.0F;
    for (int i = 0; i < 7; ++i) {
      const float x = static_cast<float>(i - 3);
      k[i] = std::exp(-x * x / (2.0F * (7.0F / 6.0F) * (7.0F / 6.0F)));
      sum += k[i];
    }
    for (auto& v : k) v /= sum;
    return k;
  }();
  return kKernel;
}

image::Image blur7(const image::Image& img) {
  const auto& k = gaussian7();
  image::Image tmp(img.width(), img.height(), 1);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      float acc = 0.0F;
      for (int i = -3; i <= 3; ++i) acc += k[i + 3] * img.at_clamped(0, y, x + i);
      tmp.at(0, y, x) = acc;
    }
  }
  image::Image out(img.width(), img.height(), 1);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      float acc = 0.0F;
      for (int i = -3; i <= 3; ++i) acc += k[i + 3] * tmp.at_clamped(0, y + i, x);
      out.at(0, y, x) = acc;
    }
  }
  return out;
}

// 18 features of one scale: GGD(MSCN) + AGGD of 4 orientation products.
void scale_features(const image::Image& gray, double* out) {
  const image::Image m = mscn(gray);
  const int w = m.width();
  const int h = m.height();

  std::vector<float> coeffs(m.data());
  const GgdFit ggd = fit_ggd(coeffs);
  out[0] = ggd.alpha;
  out[1] = ggd.sigma * ggd.sigma;

  // Orientation products: H, V, D1 (main diag), D2 (anti diag).
  const std::array<std::pair<int, int>, 4> kShifts = {
      {{0, 1}, {1, 0}, {1, 1}, {1, -1}}};
  for (int o = 0; o < 4; ++o) {
    const auto [dy, dx] = kShifts[o];
    std::vector<float> prod;
    prod.reserve(static_cast<std::size_t>(w) * h);
    for (int y = 0; y + dy < h; ++y) {
      for (int x = std::max(0, -dx); x + dx < w && x < w; ++x) {
        prod.push_back(m.at(0, y, x) * m.at(0, y + dy, x + dx));
      }
    }
    const AggdFit fit = fit_aggd(prod);
    out[2 + o * 4 + 0] = fit.alpha;
    out[2 + o * 4 + 1] = fit.mean;
    out[2 + o * 4 + 2] = fit.sigma_l * fit.sigma_l;
    out[2 + o * 4 + 3] = fit.sigma_r * fit.sigma_r;
  }
}

}  // namespace

GgdFit fit_ggd(const std::vector<float>& samples) {
  if (samples.empty()) throw std::invalid_argument("fit_ggd: empty input");
  double abs_mean = 0.0;
  double sq_mean = 0.0;
  for (const float v : samples) {
    abs_mean += std::fabs(v);
    sq_mean += static_cast<double>(v) * v;
  }
  abs_mean /= static_cast<double>(samples.size());
  sq_mean /= static_cast<double>(samples.size());
  GgdFit fit;
  if (sq_mean < 1e-12) return fit;
  const double rho = sq_mean / (abs_mean * abs_mean + 1e-12);
  fit.alpha = solve_alpha(rho);
  fit.sigma = std::sqrt(sq_mean);
  return fit;
}

AggdFit fit_aggd(const std::vector<float>& samples) {
  if (samples.empty()) throw std::invalid_argument("fit_aggd: empty input");
  double sq_l = 0.0;
  double sq_r = 0.0;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  std::size_t n_l = 0;
  std::size_t n_r = 0;
  for (const float v : samples) {
    abs_sum += std::fabs(v);
    sq_sum += static_cast<double>(v) * v;
    if (v < 0.0F) {
      sq_l += static_cast<double>(v) * v;
      ++n_l;
    } else {
      sq_r += static_cast<double>(v) * v;
      ++n_r;
    }
  }
  AggdFit fit;
  const double n = static_cast<double>(samples.size());
  const double beta_l = n_l > 0 ? std::sqrt(sq_l / static_cast<double>(n_l)) : 1e-6;
  const double beta_r = n_r > 0 ? std::sqrt(sq_r / static_cast<double>(n_r)) : 1e-6;
  const double gamma = beta_l / (beta_r + 1e-12);
  const double rhat = (abs_sum / n) * (abs_sum / n) / (sq_sum / n + 1e-12);
  const double rhat_mod = rhat * (gamma * gamma * gamma + 1.0) * (gamma + 1.0) /
                          ((gamma * gamma + 1.0) * (gamma * gamma + 1.0));
  fit.alpha = solve_alpha(1.0 / (rhat_mod + 1e-12));
  fit.sigma_l = beta_l;
  fit.sigma_r = beta_r;
  const double g1 = std::exp(std::lgamma(2.0 / fit.alpha) -
                             std::lgamma(1.0 / fit.alpha));
  fit.mean = (beta_r - beta_l) * g1;
  return fit;
}

image::Image mscn(const image::Image& gray) {
  if (gray.channels() != 1) {
    throw std::invalid_argument("mscn: expects a single-channel image");
  }
  constexpr float kC = 1.0F / 255.0F;
  const image::Image mu = blur7(gray);
  image::Image sq(gray.width(), gray.height(), 1);
  for (std::size_t i = 0; i < gray.data().size(); ++i) {
    sq.data()[i] = gray.data()[i] * gray.data()[i];
  }
  const image::Image mu_sq = blur7(sq);
  image::Image out(gray.width(), gray.height(), 1);
  for (std::size_t i = 0; i < gray.data().size(); ++i) {
    const float m = mu.data()[i];
    const float var = std::max(0.0F, mu_sq.data()[i] - m * m);
    out.data()[i] = (gray.data()[i] - m) / (std::sqrt(var) + kC);
  }
  return out;
}

NssFeatures nss_features(const image::Image& img) {
  image::Image gray = img.to_gray();
  if (gray.width() < 32 || gray.height() < 32) {
    throw std::invalid_argument("nss_features: image too small (min 32)");
  }
  NssFeatures f{};
  scale_features(gray, f.data());
  const image::Image half = image::resize(
      gray, gray.width() / 2, gray.height() / 2, image::Filter::kBilinear);
  scale_features(half, f.data() + 18);
  return f;
}

double sharpness(const image::Image& img) {
  const image::Image gray = img.to_gray();
  double acc = 0.0;
  std::size_t count = 0;
  for (int y = 1; y + 1 < gray.height(); ++y) {
    for (int x = 1; x + 1 < gray.width(); ++x) {
      const double gx = gray.at(0, y, x + 1) - gray.at(0, y, x - 1);
      const double gy = gray.at(0, y + 1, x) - gray.at(0, y - 1, x);
      acc += std::sqrt(gx * gx + gy * gy);
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

}  // namespace easz::metrics
