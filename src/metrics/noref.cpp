#include "metrics/noref.hpp"

#include <algorithm>
#include <cmath>

#include "data/synth.hpp"
#include "util/prng.hpp"

namespace easz::metrics {

NoRefCalibration NoRefCalibration::from_synthetic_corpus(int count, int width,
                                                         int height) {
  util::Pcg32 rng(0xCA11B7A7E5EEDULL);
  std::vector<NssFeatures> feats;
  feats.reserve(count);
  double sharp_sum = 0.0;
  for (int i = 0; i < count; ++i) {
    const image::Image img = data::synth_photo(width, height, rng);
    feats.push_back(nss_features(img));
    sharp_sum += sharpness(img);
  }

  NoRefCalibration cal;
  for (int k = 0; k < kNssFeatureCount; ++k) {
    double mu = 0.0;
    for (const auto& f : feats) mu += f[k];
    mu /= count;
    double var = 0.0;
    for (const auto& f : feats) var += (f[k] - mu) * (f[k] - mu);
    var /= std::max(1, count - 1);
    cal.mean[k] = mu;
    // Floor the deviation so near-constant features cannot dominate.
    cal.stddev[k] = std::max(std::sqrt(var), 0.05 * (std::fabs(mu) + 0.1));
  }
  cal.mean_sharpness = sharp_sum / count;

  // Held-out pristine images (fresh content, mixed resolutions) set the
  // deviation unit: a clean photo should score ~1.
  util::Pcg32 holdout_rng(0x0DD07ULL ^ 0xBEEF);
  double dev_sum = 0.0;
  int dev_count = 0;
  for (const auto& [w, h] : {std::pair{width, height},
                            std::pair{width * 3 / 4, height * 3 / 4},
                            std::pair{width / 2, height / 2}}) {
    for (int i = 0; i < 3; ++i) {
      const image::Image img = data::synth_photo(std::max(64, w),
                                                 std::max(64, h), holdout_rng);
      const NssFeatures f = nss_features(img);
      double acc = 0.0;
      for (int k = 0; k < kNssFeatureCount; ++k) {
        acc += std::fabs(f[k] - cal.mean[k]) / cal.stddev[k];
      }
      dev_sum += acc / kNssFeatureCount;
      ++dev_count;
    }
  }
  cal.deviation_scale = std::max(dev_sum / dev_count, 1e-6);
  return cal;
}

const NoRefCalibration& NoRefCalibration::standard() {
  static const NoRefCalibration kCal = from_synthetic_corpus();
  return kCal;
}

double nss_deviation(const image::Image& img, const NoRefCalibration& cal) {
  const NssFeatures f = nss_features(img);
  double acc = 0.0;
  for (int k = 0; k < kNssFeatureCount; ++k) {
    acc += std::fabs(f[k] - cal.mean[k]) / cal.stddev[k];
  }
  return acc / kNssFeatureCount / cal.deviation_scale;
}

double brisque_proxy(const image::Image& img, const NoRefCalibration& cal) {
  // Saturating map of deviation onto BRISQUE's usual 0..100 band; pristine
  // synthetic photos land in the teens like real BRISQUE on clean photos.
  const double d = nss_deviation(img, cal);
  return 100.0 * (1.0 - std::exp(-d / 3.5));
}

double pi_proxy(const image::Image& img, const NoRefCalibration& cal) {
  // Pi = 0.5 ((10 - Ma) + NIQE): one naturalness term + one quality term.
  // Proxy: NIQE-like deviation scaled to its ~2..8 band, plus a sharpness
  // penalty standing in for (10 - Ma).
  const double d = nss_deviation(img, cal);
  const double niqe_like = 2.0 + 6.0 * (1.0 - std::exp(-d / 4.0));
  const double sharp = sharpness(img);
  const double sharp_penalty =
      5.0 * std::clamp(1.0 - sharp / (cal.mean_sharpness + 1e-9), 0.0, 1.0);
  return 0.5 * (niqe_like + 2.0 + sharp_penalty);
}

double tres_proxy(const image::Image& img, const NoRefCalibration& cal) {
  // TReS is higher-better (~90+ on clean Kodak). Blend inverse deviation
  // with relative sharpness so blur and blocking both lower the score.
  const double d = nss_deviation(img, cal);
  const double base = 120.0 * std::exp(-d / 4.0);
  const double sharp_ratio =
      std::clamp(sharpness(img) / (cal.mean_sharpness + 1e-9), 0.0, 1.2);
  return std::clamp(base * (0.7 + 0.3 * sharp_ratio), 0.0, 100.0);
}

}  // namespace easz::metrics
