// SLO-aware degradation ladder (DESIGN.md §10).
//
// Under sustained overload the server should degrade OUTPUT QUALITY before it
// degrades AVAILABILITY: force int8 inference, then skip the deblocking pass,
// then fall back to coarse nearest-neighbour reconstruction, and only shed as
// the final rung. Each tenant walks its own ladder, driven by the pressure
// its requests observe against its p95 latency SLO.
//
// Determinism contract: every input to the ladder is read on the server's
// injectable scheduler clock (ServerConfig::sched_clock), decisions happen
// only at submit time when a sample window rotates, and the walk moves at
// most one rung per rotation. A scripted overload in `workers = 0` + step()
// mode therefore yields an exact, replayable rung trajectory — the same
// submissions at the same virtual-clock instants always produce the same
// rung sequence (tests/serve_sched_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

namespace easz::serve {

/// Degradation rungs, mildest first. Rungs are CUMULATIVE: each one keeps
/// the cheaper substitutions of the rungs below it (kNoDeblock also runs
/// int8 where available; kCoarse skips the forward pass entirely, making
/// precision moot). Requests served at rung R are byte-identical to a
/// sequential EaszPipeline::decode at R's DecodeOptions.
enum class LadderRung : int {
  kFull = 0,       ///< fp32 (or configured precision) + deblocking
  kInt8 = 1,       ///< force int8 inference (fp32 if no quantized model)
  kNoDeblock = 2,  ///< + skip the edge-deblocking pass of assemble
  kCoarse = 3,     ///< nearest-neighbour fill; no transformer forward at all
  kShed = 4,       ///< reject new work (SubmitStatus::kOverloaded)
};

inline constexpr int kLadderRungs = 5;

[[nodiscard]] const char* ladder_rung_name(LadderRung r);

struct LadderConfig {
  /// Per-tenant p95 latency target in sched-clock seconds. <= 0 disables
  /// the ladder (rung stays kFull forever).
  double slo_p95_s = 0.0;
  /// Sample window; the rung is reconsidered each time a window closes.
  double window_s = 0.25;
  /// Climb one rung when pressure >= climb_ratio (pressure 1.0 == at SLO).
  double climb_ratio = 1.0;
  /// Descend one rung when pressure <= descend_ratio. The gap between the
  /// two ratios is the hysteresis band that stops rung flapping.
  double descend_ratio = 0.7;
  /// Below this many latency samples in a window, the p95 term is ignored
  /// and only queue-wait pressure counts (early windows would otherwise
  /// compute a p95 from one or two requests).
  int min_samples = 4;
  /// Highest rung the walk may reach (set below kShed to forbid shedding).
  LadderRung max_rung = LadderRung::kShed;
};

/// What the scheduler substitutes at a rung. Derived purely from the rung;
/// the server intersects `use_int8` with model quantization and tenant
/// precision policy.
struct RungPlan {
  bool use_int8 = false;
  bool deblock = true;
  bool coarse_fill = false;
  bool shed = false;
};

[[nodiscard]] RungPlan rung_plan(LadderRung r);

/// Per-tenant deterministic ladder state machine. NOT internally locked:
/// the server mutates it only under its scheduler mutex.
class TenantLadder {
 public:
  TenantLadder() = default;
  explicit TenantLadder(LadderConfig config) : config_(config) {}

  [[nodiscard]] const LadderConfig& config() const { return config_; }
  [[nodiscard]] bool enabled() const { return config_.slo_p95_s > 0.0; }
  [[nodiscard]] LadderRung rung() const { return rung_; }

  /// Feed one completed request's submit->settle latency (sched clock).
  /// Cache hits are excluded by the caller: they say nothing about decode
  /// pressure and would dilute the p95 toward zero.
  void record_latency(double seconds);

  /// Rotate the window if due and walk at most one rung. `now` is the sched
  /// clock; `oldest_wait_s` is the age of the oldest queued request (0 when
  /// the queue is empty) — the leading indicator that lets the ladder climb
  /// before any slow request completes. Returns the (possibly new) rung.
  LadderRung observe(double now, double oldest_wait_s);

  /// Pressure computed at the last window rotation (max of p95/slo and
  /// oldest-wait/slo); 0 before the first rotation. For stats export.
  [[nodiscard]] double last_pressure() const { return last_pressure_; }
  /// Total rung transitions since construction. For stats export.
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

 private:
  LadderConfig config_;
  LadderRung rung_ = LadderRung::kFull;
  std::vector<double> samples_;
  bool window_open_ = false;
  double window_start_ = 0.0;
  double last_pressure_ = 0.0;
  std::uint64_t transitions_ = 0;
};

}  // namespace easz::serve
