// Binary wire protocol for the networked serving tier (DESIGN.md §11).
//
// Edge clients and the replica router talk to easz_serve over TCP in
// length-prefixed binary frames:
//
//   [u32 body_len][body]
//   body = [u32 magic 'EZW1'][u8 kind][kind-specific fields ...]
//
// A REQUEST carries everything submit() needs: tenant, a per-request
// precision override, the inner-codec name and the EaszCompressed blob
// (geometry + mask side channel + payload) — the same fields as the EAZC
// file container minus the patchify config, which the deployed model fixes.
// A RESPONSE carries the outcome: ok (raw float32 pixels — BIT-identical to
// the in-process ServeResponse image, so loopback equality is exact), shed
// (the SubmitStatus reason) or failed (the error text), plus the request id,
// ladder rung and model version the in-process API reports.
//
// Parsing is strict in the style of core::parse_container (fuzzed the same
// way, tests/wire_test.cpp): every read is bounds-checked, enum bytes
// outside their range throw, announced lengths are validated against what
// actually follows, trailing bytes throw, and the deframer rejects an
// announced body length above `max_frame_bytes` BEFORE allocating for it —
// a hostile 4-GB length prefix costs the server 4 bytes of buffering, not
// 4 GB. A frame that parses re-encodes to the identical bytes
// (round-trip-faithful), which is what the bit-flip corpus asserts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "image/image.hpp"
#include "serve/server.hpp"

namespace easz::serve::wire {

/// All wire parse failures throw this (a std::runtime_error like the
/// container parser's, but a distinct type so transports can tell a corrupt
/// frame from an internal error).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x31575A45;  // "EZW1" little-endian
inline constexpr std::size_t kLengthPrefixBytes = 4;
/// Default ceiling on one frame's body. Generous next to real request
/// payloads (a few hundred KB) and response pixels (<= ~48 MB at the 16M
/// side bound would not fit anyway — images that large are rejected by the
/// geometry checks first).
inline constexpr std::size_t kMaxFrameBytes = 64ULL << 20;

enum class FrameKind : std::uint8_t { kRequest = 1, kResponse = 2 };

/// Per-request numeric-path override carried on the wire. kDefault rides
/// the tenant/server policy; kFp32/kInt8 behave like a tenant precision pin
/// for this request's cache/batch keying on the replica.
enum class WirePrecision : std::uint8_t { kDefault = 0, kFp32 = 1, kInt8 = 2 };

enum class ResponseStatus : std::uint8_t { kOk = 0, kShed = 1, kFailed = 2 };

struct WireRequest {
  /// Client-chosen correlation token, echoed verbatim in the response.
  /// Responses complete in SETTLE order, not submit order (cache hits
  /// return inline, batches finish whenever they finish), so a pipelining
  /// client — the router above all — must demux by tag, not by position.
  /// Deliberately excluded from routing_hash.
  std::uint64_t client_tag = 0;
  std::string tenant;  ///< "" rides the default tenant
  WirePrecision precision = WirePrecision::kDefault;
  std::string codec = "jpeg";
  core::EaszCompressed compressed;

  /// View as the in-process submit() request type (tenant, codec, blob AND
  /// the precision override — the server resolves it after tenant pins).
  [[nodiscard]] ServeRequest to_serve_request() const;
};

struct WireResponse {
  /// WireRequest::client_tag of the request this answers, echoed verbatim.
  std::uint64_t client_tag = 0;
  ResponseStatus status = ResponseStatus::kOk;
  /// SubmitStatus as a byte; the shed reason when status == kShed,
  /// kAccepted (0) otherwise.
  std::uint8_t submit_status = 0;
  std::uint8_t cache_hit = 0;  ///< 0/1 (strict — anything else throws)
  std::uint8_t rung = 0;       ///< degradation-ladder rung served at
  std::uint64_t request_id = 0;
  std::uint64_t model_version = 0;
  // status == kOk: reconstructed image as raw float32 little-endian CHW
  // samples (exactly width * height * channels * 4 bytes).
  int width = 0;
  int height = 0;
  int channels = 0;
  std::vector<std::uint8_t> pixels;
  // status == kFailed: the server-side exception text. Empty for sheds.
  std::string error;

  [[nodiscard]] image::Image to_image() const;
};

/// Builds an ok-response from a settled in-process ServeResponse. The pixel
/// bytes are the image's float samples memcpy'd little-endian, so a client
/// that reassembles them holds the BIT-identical image.
WireResponse make_ok_response(const ServeResponse& response);
/// Shed response (submit_async returned without accepting).
WireResponse make_shed_response(SubmitStatus status, std::uint64_t request_id);
/// Failure response carrying the exception text.
WireResponse make_failed_response(const std::string& error,
                                  std::uint64_t request_id);

/// Serialises a full frame (length prefix included).
std::vector<std::uint8_t> encode_request(const WireRequest& request);
std::vector<std::uint8_t> encode_response(const WireResponse& response);

/// Kind byte of a deframed body (throws WireError on bad magic/kind — the
/// transport's first-line garbage rejection).
FrameKind frame_kind(const std::vector<std::uint8_t>& body);

/// Strict parsers for a deframed BODY (no length prefix). Throw WireError
/// on truncation, trailing bytes, bad magic/kind/enum bytes or implausible
/// geometry. A successful parse re-encodes byte-identically.
WireRequest parse_request(const std::vector<std::uint8_t>& body);
WireResponse parse_response(const std::vector<std::uint8_t>& body);

/// Consistent-routing key of a request: a stable 64-bit hash over exactly
/// the fields of the replica's result-cache key (payload bytes, mask bytes,
/// codec, geometry) plus the wire precision override. Identical uploads
/// hash identically, so a router keying replica choice on this keeps every
/// repeat on the replica whose cache shard already holds it.
std::uint64_t routing_hash(const WireRequest& request);

/// Incremental frame splitter for a non-blocking byte stream. feed() raw
/// socket bytes, then pop complete frame bodies with next(). The announced
/// body length is validated against `max_frame_bytes` as soon as the 4-byte
/// prefix is readable — BEFORE any body allocation — and a violation throws
/// WireError (the transport closes the connection).
class Deframer {
 public:
  explicit Deframer(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n);

  /// Next complete frame body, or nullopt when more bytes are needed.
  std::optional<std::vector<std::uint8_t>> next();

  [[nodiscard]] std::size_t buffered_bytes() const {
    return buf_.size() - pos_;
  }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
};

}  // namespace easz::serve::wire
